// Hierarchical FL: a two-tier aggregation tree under edge failure
// (DESIGN.md §13).
//
// Clients report to edge aggregators (home edge = client_id % num_edges);
// each edge folds its cohort with its own aggregation rule and forwards one
// partial aggregate to the root over a lossy inter-tier link. Edges crash,
// black out and turn Byzantine; the recovery policy — deterministic failover
// to the next live sibling edge, crash cooldowns, root-side re-validation of
// forwarded partials — decides how gracefully the round degrades. Three
// arms: the flat star baseline, the tree with failover off (a down edge's
// cohort is orphaned for the round), and the tree with failover on.
#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/fl/sync_engine.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.num_clients = 80;
  config.clients_per_round = 20;
  config.rounds = 60;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.seed = 23;
  return config;
}

// The tree: 4 edges, 15% per-round edge crashes (2-round cooldown), 5%
// transient blackouts, one-in-four Byzantine edges forwarding out-of-band
// partials, and a 5%-chunk-loss uplink to the root.
ExperimentConfig TreeConfig(bool failover) {
  ExperimentConfig config = BaseConfig();
  config.topology.num_edges = 4;
  config.topology.failover = failover;
  config.topology.edge_retry_cooldown_rounds = 2;
  config.topology.edge_crash_prob = 0.15;
  config.topology.edge_blackout_prob = 0.05;
  config.topology.edge_byzantine_mode = ByzantineMode::kScaledReplacement;
  config.topology.edge_byzantine_fraction = 0.25;
  config.topology.edge_link_loss_prob = 0.05;
  return config;
}

ExperimentResult Run(const ExperimentConfig& config) {
  RandomSelector selector(config.seed);
  SyncEngine engine(config, &selector, nullptr);
  return engine.Run();
}

void AddRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.edge_crashes + r.edge_blackouts))
      .Cell(static_cast<long long>(r.orphaned_clients))
      .Cell(static_cast<long long>(r.reparented_clients))
      .Cell(static_cast<long long>(r.partials_lost))
      .Cell(static_cast<long long>(r.tampered_rejections))
      .Cell(r.wall_clock_hours, 1)
      .EndRow();
}

}  // namespace

int main() {
  std::cout << "=== Hierarchical FL: clients -> 4 edges -> root, edges failing ===\n\n";
  TablePrinter table({"arm", "acc%", "done", "edge_down", "orphaned", "reparented",
                      "lost", "tampered_rej", "hours"});
  AddRow(table, "star (flat)", Run(BaseConfig()));
  AddRow(table, "tree, orphan", Run(TreeConfig(/*failover=*/false)));
  AddRow(table, "tree, foster", Run(TreeConfig(/*failover=*/true)));
  table.Print(std::cout);

  std::cout << "\n'edge_down' counts edge-rounds lost to crashes and blackouts,\n"
               "'orphaned' the selected clients no live edge could take, 'reparented'\n"
               "the ones failover moved to a sibling edge, 'lost' the partial\n"
               "aggregates the inter-tier link dropped (every update behind them),\n"
               "and 'tampered_rej' the Byzantine-edge contributions the root's\n"
               "validation refused. The star arm shows the no-failure ceiling; the\n"
               "foster arm recovers most of the gap the orphan arm leaves on the\n"
               "table, at the price of some partials lost on the uplink either way.\n";
  return 0;
}
