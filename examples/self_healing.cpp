// Self-healing training under a sleeper model-replacement attack.
//
// A fifth of the population behaves honestly for 20 rounds — long enough for
// the run to look healthy and for the guard to bank last-known-good
// snapshots — then switches to scaled model replacement against a plain
// FedAvg server with no robust aggregation. The undefended run collapses
// and stays collapsed. The identical run with the divergence watchdog
// enabled (DESIGN.md §11) detects each collapse, rolls the model back to
// the snapshot ring, and quarantines technique decisions while in safe
// mode, so training keeps re-converging instead of diverging for good.
#include <algorithm>
#include <iostream>

#include "src/common/table.h"
#include "src/fl/sync_engine.h"
#include "src/fl/tuning_policy.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig AttackedConfig() {
  ExperimentConfig config;
  config.num_clients = 40;
  config.clients_per_round = 8;
  config.rounds = 40;
  config.seed = 321;
  config.assume_no_dropouts = true;  // isolate the adversary from benign churn
  config.faults.byzantine_mode = ByzantineMode::kScaledReplacement;
  config.faults.byzantine_fraction = 0.2;
  config.faults.byzantine_scale = 4.0;
  config.faults.byzantine_start_round = 20;  // sleepers wake at round 20
  return config;
}

ExperimentResult Run(const ExperimentConfig& config) {
  RandomSelector selector(config.seed);
  StaticPolicy policy(TechniqueKind::kQuant8);
  SyncEngine engine(config, &selector, &policy);
  return engine.Run();
}

}  // namespace

int main() {
  const ExperimentConfig unguarded_config = AttackedConfig();
  ExperimentConfig guarded_config = unguarded_config;
  guarded_config.guard.enabled = true;
  guarded_config.guard.collapse_threshold = 0.02;
  guarded_config.guard.snapshot_ring = 4;
  guarded_config.guard.safe_mode_rounds = 4;

  const ExperimentResult off = Run(unguarded_config);
  const ExperimentResult on = Run(guarded_config);

  std::cout << "Sleeper scaled-replacement attack (20% colluders, wake at round 20)\n"
               "against plain FedAvg, with and without the training guard.\n\n";
  TablePrinter table({"round", "unguarded acc%", "guarded acc%"});
  for (size_t r = 0; r < off.accuracy_history.size(); r += 4) {
    table.Cell(static_cast<long long>(r + 1))
        .Cell(100.0 * off.accuracy_history[r], 1)
        .Cell(100.0 * on.accuracy_history[r], 1)
        .EndRow();
  }
  table.Print(std::cout);

  const double off_peak =
      *std::max_element(off.accuracy_history.begin(), off.accuracy_history.end());
  std::cout << "\nUnguarded: peak " << 100.0 * off_peak << "%, final "
            << 100.0 * off.global_accuracy << "% — the collapse is permanent.\n";
  std::cout << "Guarded:   final " << 100.0 * on.global_accuracy << "% after "
            << on.guard_snapshots << " snapshots, " << on.watchdog_triggers
            << " watchdog triggers, " << on.rollbacks << " rollbacks, "
            << on.quarantined_actions << " quarantined decisions across "
            << on.safe_mode_rounds << " safe-mode rounds.\n";
  std::cout << "With guard.enabled = false (the default) every engine byte-matches\n"
               "its pre-guard behaviour; enabling it only changes what happens\n"
               "after the watchdog declares a round unhealthy.\n";
  return 0;
}
