// Scenario example: attaching FLOAT to asynchronous FL (FedBuff).
//
// FedBuff trains up to 60 clients concurrently and aggregates every 20
// buffered updates. The example contrasts plain FedBuff with FLOAT(FedBuff):
// the async protocol is already resilient to stragglers (over-selection),
// so FLOAT's accuracy gain is small — but it sharply cuts the resources
// wasted on updates that arrive too stale or never arrive (the paper's
// Figure 12 FedBuff columns).
#include <iostream>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/fl/async_engine.h"

using namespace floatfl;

int main() {
  ExperimentConfig config;
  config.num_clients = 150;
  config.rounds = 120;  // aggregations
  config.async_concurrency = 60;
  config.async_buffer = 20;
  config.dataset = DatasetId::kCifar10;
  config.model = ModelId::kResNet34;
  config.alpha = 0.1;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 33;

  AsyncEngine base_engine(config, nullptr);
  const ExperimentResult base = base_engine.Run();

  auto controller = FloatController::MakeDefault(config.seed, config.rounds);
  AsyncEngine float_engine(config, controller.get());
  const ExperimentResult with_float = float_engine.Run();

  TablePrinter table({"system", "acc%", "bottom10%", "accepted-updates", "discarded/dropped",
                      "wall-clock(h)", "wasted-comp(h)", "wasted-mem(TB)"});
  auto add = [&](const std::string& name, const ExperimentResult& r) {
    table.Cell(name)
        .Cell(100.0 * r.accuracy_avg, 1)
        .Cell(100.0 * r.accuracy_bottom10, 1)
        .Cell(static_cast<long long>(r.total_completed))
        .Cell(static_cast<long long>(r.total_dropouts))
        .Cell(r.wall_clock_hours, 1)
        .Cell(r.wasted.compute_hours, 1)
        .Cell(r.wasted.memory_tb, 2)
        .EndRow();
  };
  add("FedBuff", base);
  add("FLOAT (FedBuff)", with_float);
  table.Print(std::cout);

  std::cout << "\nFLOAT reduces FedBuff's wasted compute by "
            << FormatDouble(base.wasted.compute_hours /
                                std::max(1e-9, with_float.wasted.compute_hours),
                            2)
            << "x while matching wall-clock ("
            << FormatDouble(with_float.wall_clock_hours, 1) << "h vs "
            << FormatDouble(base.wall_clock_hours, 1) << "h).\n";
  return 0;
}
