// Flaky networks: FedAvg vs FLOAT over a lossy transport (DESIGN.md §10).
//
// Every client-server exchange goes through the chunked transport: 5 % of
// chunks are lost and 3 % of attempts hit a mid-transfer link blackout, so
// transfers retry with exponential backoff and — when resumable uploads are
// on — salvage the chunks the server already acknowledged. Four arms:
// FedAvg / FLOAT, each with restart-from-scratch vs resumable uploads.
// The tables show where the time went (dropout breakdown including the new
// transfer-timeout reason) and where the bytes went (retransmitted vs
// salvaged MB), plus the adaptive-deadline variant that tightens the round
// clock to the observed population.
#include <iostream>
#include <memory>
#include <string>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/fl/sync_engine.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig MakeConfig(bool resumable_uploads, bool adaptive_deadline) {
  ExperimentConfig config;
  config.num_clients = 100;
  config.clients_per_round = 20;
  config.rounds = 60;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 11;
  config.faults.chunk_loss_prob = 0.05;     // 5 % of 1 MB chunks vanish
  config.faults.link_blackout_prob = 0.03;  // 3 % of attempts die mid-transfer
  config.faults.resumable_uploads = resumable_uploads;
  config.adaptive_deadline.enabled = adaptive_deadline;
  return config;
}

ExperimentResult RunArm(const ExperimentConfig& config, bool with_float) {
  RandomSelector selector(config.seed);
  std::unique_ptr<FloatController> controller;
  if (with_float) {
    controller = FloatController::MakeDefault(config.seed, config.rounds);
  }
  SyncEngine engine(config, &selector, controller.get());
  return engine.Run();
}

void AddRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.dropout_breakdown.missed_deadline))
      .Cell(static_cast<long long>(r.dropout_breakdown.transfer_timed_out))
      .Cell(static_cast<long long>(r.total_dropouts))
      .Cell(r.retransmitted_mb, 0)
      .Cell(r.salvaged_mb, 0)
      .Cell(r.wall_clock_hours, 1)
      .EndRow();
}

}  // namespace

int main() {
  std::cout << "=== Lossy links: 5% chunk loss, 3% mid-transfer blackouts ===\n\n";
  TablePrinter table({"arm", "acc%", "done", "deadline", "xfer_to", "dropouts",
                      "retx_mb", "salvage_mb", "hours"});

  AddRow(table, "FedAvg restart", RunArm(MakeConfig(false, false), /*with_float=*/false));
  AddRow(table, "FedAvg resume", RunArm(MakeConfig(true, false), /*with_float=*/false));
  AddRow(table, "FLOAT restart", RunArm(MakeConfig(false, false), /*with_float=*/true));
  AddRow(table, "FLOAT resume", RunArm(MakeConfig(true, false), /*with_float=*/true));
  table.Print(std::cout);

  std::cout << "\n'deadline' = clients whose download+train+upload overran the round\n"
               "clock, 'xfer_to' = transfers that exhausted their retries or budget\n"
               "(the new kTransferTimedOut dropout reason), 'retx_mb' = wire bytes\n"
               "that had to be sent again, 'salvage_mb' = acknowledged bytes that\n"
               "resumable retries did NOT resend. Resumable uploads cut both the\n"
               "dropouts and the wasted bytes; FLOAT's smaller uploads shrink the\n"
               "retransmission surface on top.\n";

  std::cout << "\n=== Adaptive deadline: tighten the clock to the observed fleet ===\n\n";
  TablePrinter adaptive({"arm", "acc%", "done", "deadline", "xfer_to", "dropouts",
                         "retx_mb", "salvage_mb", "hours"});
  AddRow(adaptive, "FLOAT static", RunArm(MakeConfig(true, false), /*with_float=*/true));
  AddRow(adaptive, "FLOAT adaptive", RunArm(MakeConfig(true, true), /*with_float=*/true));
  adaptive.Print(std::cout);

  std::cout << "\nThe controller re-estimates per-client round time and transfer\n"
               "throughput (EWMA, shared profile constants) and sets each round's\n"
               "deadline to headroom x the population median, clamped to\n"
               "[0.5, 3.0] x the static calibration.\n";
  return 0;
}
