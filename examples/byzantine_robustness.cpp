// Byzantine-robust aggregation on the real-training engine.
//
// A fifth of the population colludes: each attacker reverses and amplifies
// its honest update (sign-flip), crafted to stay finite and within realistic
// norms so server-side validation cannot catch it — only the aggregation
// rule can. This example trains the same federation three times — no attack,
// attacked FedAvg, attacked Multi-Krum — and prints the accuracy
// trajectories side by side, then shows the defense accounting.
#include <iostream>

#include "src/common/table.h"
#include "src/fl/real_engine.h"

using namespace floatfl;

namespace {

RealFlConfig BaseConfig() {
  RealFlConfig config;
  config.num_clients = 20;
  config.clients_per_round = 8;
  config.num_classes = 5;
  config.input_dim = 16;
  config.hidden_dims = {24};
  config.test_samples_per_class = 40;
  config.seed = 42;
  return config;
}

}  // namespace

int main() {
  RealFlConfig clean = BaseConfig();

  RealFlConfig attacked = clean;
  attacked.faults.byzantine_mode = ByzantineMode::kSignFlip;
  attacked.faults.byzantine_fraction = 0.2;
  attacked.faults.byzantine_scale = 4.0;

  RealFlConfig defended = attacked;
  defended.aggregator.kind = AggregatorKind::kKrum;

  RealFlEngine clean_engine(clean);
  RealFlEngine attacked_engine(attacked);
  RealFlEngine defended_engine(defended);

  std::cout << "Real FedAvg training, 20 clients, 20% sign-flip colluders (scale 4).\n\n";
  TablePrinter table({"round", "clean acc%", "attacked fedavg%", "attacked krum%"});
  constexpr int kRounds = 25;
  size_t byzantine_updates = 0;
  for (int round = 1; round <= kRounds; ++round) {
    const RealRoundStats c = clean_engine.RunRound(TechniqueKind::kNone);
    const RealRoundStats a = attacked_engine.RunRound(TechniqueKind::kNone);
    const RealRoundStats d = defended_engine.RunRound(TechniqueKind::kNone);
    byzantine_updates += d.byzantine_selected;
    if (round % 5 == 0 || round == 1) {
      table.Cell(static_cast<long long>(round))
          .Cell(100.0 * c.test_accuracy, 1)
          .Cell(100.0 * a.test_accuracy, 1)
          .Cell(100.0 * d.test_accuracy, 1)
          .EndRow();
    }
  }
  table.Print(std::cout);

  const auto& tracker = defended_engine.aggregation_tracker();
  std::cout << "\nDefense accounting (Krum arm): " << byzantine_updates
            << " Byzantine updates submitted, " << tracker.TotalKrumRejections()
            << " updates rejected by Multi-Krum across " << tracker.rounds() << " rounds.\n";
  std::cout << "Attack-free runs are bit-identical to the historical engine: the\n"
               "default AggregatorConfig (FedAvg) and ByzantineMode::kNone are\n"
               "strict no-ops.\n";
  return 0;
}
