// Quickstart: attach FLOAT to a vanilla FedAvg federation and compare.
//
// Builds a 100-client population with dynamic on-device interference,
// runs 100 synchronous rounds with plain FedAvg and with FLOAT attached,
// and prints the headline metrics (accuracy, dropouts, wasted resources).
#include <iostream>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/core/heuristic_policy.h"
#include "src/fl/sync_engine.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig MakeConfig() {
  ExperimentConfig config;
  config.num_clients = 100;
  config.clients_per_round = 20;
  config.rounds = 100;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.alpha = 0.1;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 7;
  return config;
}

void AddRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(100.0 * r.accuracy_bottom10, 1)
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.total_dropouts))
      .Cell(r.wasted.compute_hours, 1)
      .Cell(r.wasted.comm_hours, 2)
      .Cell(r.wasted.memory_tb, 2)
      .EndRow();
}

}  // namespace

int main() {
  const ExperimentConfig config = MakeConfig();

  // Vanilla FedAvg: random selection, no acceleration.
  RandomSelector baseline_selector(config.seed);
  SyncEngine baseline(config, &baseline_selector, /*policy=*/nullptr);
  const ExperimentResult base_result = baseline.Run();

  // Static single-technique baseline (Section 4.3).
  RandomSelector static_selector(config.seed);
  StaticPolicy static_policy(TechniqueKind::kPrune75);
  SyncEngine with_static(config, &static_selector, &static_policy);
  const ExperimentResult static_result = with_static.Run();

  // Rule-based heuristic baseline (Section 4.4).
  RandomSelector heuristic_selector(config.seed);
  HeuristicPolicy heuristic(config.seed + 1);
  SyncEngine with_heuristic(config, &heuristic_selector, &heuristic);
  const ExperimentResult heuristic_result = with_heuristic.Run();

  // FLOAT (FedAvg): same selection, RLHF-tuned per-client acceleration.
  RandomSelector float_selector(config.seed);
  auto controller = FloatController::MakeDefault(config.seed, config.rounds);
  SyncEngine with_float(config, &float_selector, controller.get());
  const ExperimentResult float_result = with_float.Run();

  TablePrinter table({"system", "acc%", "bottom10%", "completed", "dropouts", "wasted-compute-h",
                      "wasted-comm-h", "wasted-mem-TB"});
  AddRow(table, "FedAvg", base_result);
  AddRow(table, "FedAvg+prune75", static_result);
  AddRow(table, "FedAvg+heuristic", heuristic_result);
  AddRow(table, "FLOAT (FedAvg)", float_result);
  table.Print(std::cout);

  auto print_breakdown = [](const std::string& name, const DropoutBreakdown& b) {
    std::cout << name << " dropouts by cause: unavailable=" << b.unavailable
              << " oom=" << b.out_of_memory << " deadline=" << b.missed_deadline
              << " departed=" << b.departed << "\n";
  };
  std::cout << "\n";
  print_breakdown("FedAvg", base_result.dropout_breakdown);
  print_breakdown("FLOAT (FedAvg)", float_result.dropout_breakdown);

  std::cout << "\nRLHF agent: " << controller->agent().NumStates() << " states x "
            << controller->agent().NumActions() << " actions, "
            << controller->agent().MemoryBytes() / 1024.0 << " KiB, avg reward (last 200) = "
            << controller->agent().AverageRewardOver(200) << "\n";
  return 0;
}
