// Fault tolerance: FedAvg vs FLOAT under injected failures, plus
// checkpoint/resume.
//
// Part 1 runs 80 synchronous rounds with a 10 % per-client-round crash rate
// and a 5 % corrupted-update rate, with and without FLOAT, and with the
// server-side defenses (1.5x over-selection, 2-round retry cooldown) toggled
// on, printing the dropout breakdown and quarantine counts for each arm.
//
// Part 2 demonstrates crash recovery of the *experiment itself*: it runs half
// the rounds, saves a checkpoint, "kills" the process state by constructing a
// brand-new engine, restores, finishes — and verifies the result is
// bit-for-bit identical to an uninterrupted run.
#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/failure/checkpointer.h"
#include "src/fl/sync_engine.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig MakeConfig() {
  ExperimentConfig config;
  config.num_clients = 100;
  config.clients_per_round = 20;
  config.rounds = 80;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 7;
  config.faults.crash_prob = 0.10;    // 10 % of client-rounds die mid-training
  config.faults.corrupt_prob = 0.05;  // 5 % upload a poisoned update
  return config;
}

ExperimentResult RunArm(const ExperimentConfig& config, bool with_float) {
  RandomSelector selector(config.seed);
  std::unique_ptr<FloatController> controller;
  if (with_float) {
    controller = FloatController::MakeDefault(config.seed, config.rounds);
  }
  SyncEngine engine(config, &selector, controller.get());
  return engine.Run();
}

void AddRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.dropout_breakdown.crashed))
      .Cell(static_cast<long long>(r.rejected_updates))
      .Cell(static_cast<long long>(r.dropout_breakdown.rejected))
      .Cell(static_cast<long long>(r.total_dropouts))
      .Cell(r.wall_clock_hours, 1)
      .Cell(r.wasted.compute_hours, 1)
      .EndRow();
}

}  // namespace

int main() {
  const ExperimentConfig faulty = MakeConfig();

  std::cout << "=== FedAvg vs FLOAT, 10% crashes / 5% corrupted updates ===\n\n";
  TablePrinter table({"arm", "acc%", "done", "crash", "quarantined", "abandoned",
                      "dropouts", "hours", "wasted_h"});

  AddRow(table, "FedAvg", RunArm(faulty, /*with_float=*/false));
  AddRow(table, "FLOAT", RunArm(faulty, /*with_float=*/true));

  // Same faults, defenses on: over-select 1.5x and close the round at the
  // first K valid completions; bench crashed/quarantined clients 2 rounds.
  ExperimentConfig defended = faulty;
  defended.faults.overcommit = 1.5;
  defended.faults.retry_cooldown_rounds = 2;
  AddRow(table, "FedAvg+defenses", RunArm(defended, /*with_float=*/false));
  AddRow(table, "FLOAT+defenses", RunArm(defended, /*with_float=*/true));
  table.Print(std::cout);

  std::cout << "\n'crash' = injected mid-training crashes, 'quarantined' = updates\n"
               "rejected by server-side validation, 'abandoned' = stragglers the\n"
               "over-selection close charged as waste. Defenses trade extra client\n"
               "spend (wasted_h) for shorter rounds (hours).\n";

  // --- Part 2: kill and resume the experiment itself ----------------------
  std::cout << "\n=== Checkpoint/resume: kill at round " << faulty.rounds / 2
            << ", restore, finish ===\n\n";
  const std::string path = "fault_tolerance_demo.ckpt";

  const ExperimentResult uninterrupted = RunArm(faulty, /*with_float=*/true);

  RandomSelector first_selector(faulty.seed);
  auto first_controller = FloatController::MakeDefault(faulty.seed, faulty.rounds);
  SyncEngine first_life(faulty, &first_selector, first_controller.get());
  for (size_t round = 0; round < faulty.rounds / 2; ++round) {
    first_life.RunRound(round);
  }
  if (!Checkpointer::Save(path, first_life)) {
    std::cerr << "checkpoint save failed\n";
    return 1;
  }
  std::cout << "saved checkpoint after " << first_life.RoundsRun() << " rounds\n";

  // "Process restart": everything rebuilt from config, state from the file.
  RandomSelector second_selector(faulty.seed);
  auto second_controller = FloatController::MakeDefault(faulty.seed, faulty.rounds);
  SyncEngine second_life(faulty, &second_selector, second_controller.get());
  if (!Checkpointer::Restore(path, second_life)) {
    std::cerr << "checkpoint restore failed\n";
    return 1;
  }
  std::cout << "restored at round " << second_life.RoundsRun() << ", finishing...\n";
  const ExperimentResult resumed = second_life.Run();

  const bool identical = resumed.accuracy_avg == uninterrupted.accuracy_avg &&
                         resumed.wall_clock_hours == uninterrupted.wall_clock_hours &&
                         resumed.total_completed == uninterrupted.total_completed &&
                         resumed.total_dropouts == uninterrupted.total_dropouts &&
                         resumed.accuracy_history == uninterrupted.accuracy_history;
  std::cout << "resumed run " << (identical ? "IS" : "IS NOT")
            << " bit-for-bit identical to the uninterrupted run ("
            << 100.0 * resumed.accuracy_avg << "% vs " << 100.0 * uninterrupted.accuracy_avg
            << "% accuracy, " << resumed.total_dropouts << " vs "
            << uninterrupted.total_dropouts << " dropouts)\n";
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
