// Fault tolerance: FedAvg vs FLOAT under injected failures, plus
// checkpoint/resume.
//
// Part 1 runs 80 synchronous rounds with a 10 % per-client-round crash rate
// and a 5 % corrupted-update rate, with and without FLOAT, and with the
// server-side defenses (1.5x over-selection, 2-round retry cooldown) toggled
// on, printing the dropout breakdown and quarantine counts for each arm.
//
// Part 2 demonstrates crash recovery of the *experiment itself* through the
// RunSupervisor (DESIGN.md §14): a supervised run auto-checkpoints into a
// bounded on-disk ring, gets "killed" mid-run, is relaunched from scratch —
// and even after the newest archive is corrupted on disk, recovery falls
// back to an older ring entry, replays the missing rounds, and finishes
// bit-for-bit identical to an uninterrupted run.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/fl/sync_engine.h"
#include "src/recovery/run_supervisor.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig MakeConfig() {
  ExperimentConfig config;
  config.num_clients = 100;
  config.clients_per_round = 20;
  config.rounds = 80;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 7;
  config.faults.crash_prob = 0.10;    // 10 % of client-rounds die mid-training
  config.faults.corrupt_prob = 0.05;  // 5 % upload a poisoned update
  return config;
}

ExperimentResult RunArm(const ExperimentConfig& config, bool with_float) {
  RandomSelector selector(config.seed);
  std::unique_ptr<FloatController> controller;
  if (with_float) {
    controller = FloatController::MakeDefault(config.seed, config.rounds);
  }
  SyncEngine engine(config, &selector, controller.get());
  return engine.Run();
}

void AddRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.dropout_breakdown.crashed))
      .Cell(static_cast<long long>(r.rejected_updates))
      .Cell(static_cast<long long>(r.dropout_breakdown.rejected))
      .Cell(static_cast<long long>(r.total_dropouts))
      .Cell(r.wall_clock_hours, 1)
      .Cell(r.wasted.compute_hours, 1)
      .EndRow();
}

}  // namespace

int main() {
  const ExperimentConfig faulty = MakeConfig();

  std::cout << "=== FedAvg vs FLOAT, 10% crashes / 5% corrupted updates ===\n\n";
  TablePrinter table({"arm", "acc%", "done", "crash", "quarantined", "abandoned",
                      "dropouts", "hours", "wasted_h"});

  AddRow(table, "FedAvg", RunArm(faulty, /*with_float=*/false));
  AddRow(table, "FLOAT", RunArm(faulty, /*with_float=*/true));

  // Same faults, defenses on: over-select 1.5x and close the round at the
  // first K valid completions; bench crashed/quarantined clients 2 rounds.
  ExperimentConfig defended = faulty;
  defended.faults.overcommit = 1.5;
  defended.faults.retry_cooldown_rounds = 2;
  AddRow(table, "FedAvg+defenses", RunArm(defended, /*with_float=*/false));
  AddRow(table, "FLOAT+defenses", RunArm(defended, /*with_float=*/true));
  table.Print(std::cout);

  std::cout << "\n'crash' = injected mid-training crashes, 'quarantined' = updates\n"
               "rejected by server-side validation, 'abandoned' = stragglers the\n"
               "over-selection close charged as waste. Defenses trade extra client\n"
               "spend (wasted_h) for shorter rounds (hours).\n";

  // --- Part 2: kill and resume the experiment itself ----------------------
  std::cout << "\n=== Supervised recovery: auto-checkpoint ring, kill at round "
            << faulty.rounds / 2 << ", corrupt the newest archive, relaunch ===\n\n";

  const ExperimentResult uninterrupted = RunArm(faulty, /*with_float=*/true);

  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = "fault_tolerance_ring";
  recovery.checkpoint_every = 10;  // auto-save cadence, in rounds
  recovery.ring_depth = 3;         // newest 3 archives are retained

  // Life 1: the supervisor auto-saves every 10 rounds while we run the first
  // half, then the "process dies" — we simply abandon the engine, exactly
  // what a kill leaves behind: nothing but the ring on disk.
  {
    RandomSelector selector(faulty.seed);
    auto controller = FloatController::MakeDefault(faulty.seed, faulty.rounds);
    SyncEngine engine(faulty, &selector, controller.get());
    RunSupervisor<SyncEngine> supervisor(recovery, engine);
    supervisor.Recover();  // empty ring: fresh start
    supervisor.Run(faulty.rounds / 2);
    std::cout << "life 1: ran " << engine.RoundsRun() << " rounds, wrote "
              << supervisor.report().checkpoints_written
              << " ring archives, then died\n";
  }

  // Sabotage: flip a byte in the newest archive. Recovery must detect the
  // damage via the payload hash, skip it, and fall back to an older entry.
  {
    const std::string newest = "fault_tolerance_ring/ckpt-0000000040.flck";
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    const char byte = static_cast<char>(f.get());
    f.seekp(64);
    f.put(static_cast<char>(byte ^ 0x5A));
  }

  // Life 2: rebuilt from config alone. Recover() scans the ring newest →
  // oldest, skips the corrupt archive, restores round 30, and the replayed
  // rounds re-run deterministically to the same bytes.
  RandomSelector selector(faulty.seed);
  auto controller = FloatController::MakeDefault(faulty.seed, faulty.rounds);
  SyncEngine engine(faulty, &selector, controller.get());
  RunSupervisor<SyncEngine> supervisor(recovery, engine);
  supervisor.Recover();
  const RecoveryReport& report = supervisor.report();
  std::cout << "life 2: restored at round " << report.rounds_restored << " (skipped "
            << report.archives_skipped << " corrupt archive, replaying "
            << report.rounds_replayed << " rounds), finishing...\n";
  if (supervisor.Run(faulty.rounds) != SupervisedOutcome::kCompleted) {
    std::cerr << "supervised run did not complete\n";
    return 1;
  }
  const ExperimentResult resumed = engine.Snapshot();

  const bool identical = resumed.accuracy_avg == uninterrupted.accuracy_avg &&
                         resumed.wall_clock_hours == uninterrupted.wall_clock_hours &&
                         resumed.total_completed == uninterrupted.total_completed &&
                         resumed.total_dropouts == uninterrupted.total_dropouts &&
                         resumed.accuracy_history == uninterrupted.accuracy_history;
  std::cout << "recovered run " << (identical ? "IS" : "IS NOT")
            << " bit-for-bit identical to the uninterrupted run ("
            << 100.0 * resumed.accuracy_avg << "% vs " << 100.0 * uninterrupted.accuracy_avg
            << "% accuracy, " << resumed.total_dropouts << " vs "
            << uninterrupted.total_dropouts << " dropouts); the engine's own "
            << "recovery accounting reports " << resumed.recovery_restarts
            << " restart, " << resumed.recovery_archives_skipped
            << " archive skipped, " << resumed.recovery_rounds_replayed
            << " rounds replayed\n";

  // Clean up the demo's ring directory.
  for (size_t round : supervisor.ring().Rounds()) {
    std::remove(supervisor.ring().PathFor(round).c_str());
  }
  ::rmdir(recovery.dir.c_str());
  return identical ? 0 : 1;
}
