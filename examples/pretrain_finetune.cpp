// Scenario example: ship a pre-trained RLHF agent and fine-tune it on a new
// deployment (the paper's RQ3 reusability workflow, Figure 9).
//
// Phase 1 pre-trains FLOAT's agent on a FEMNIST + ResNet-18 federation and
// persists the learned Q-table to disk. Phase 2 simulates a fresh deployment
// on CIFAR10 + ResNet-50: the saved table is loaded into a new controller,
// fine-tuned for a handful of rounds, and compared against training an agent
// from scratch on the same budget.
#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/fl/sync_engine.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig DeploymentConfig(DatasetId dataset, ModelId model, size_t rounds,
                                  uint64_t seed) {
  ExperimentConfig config;
  config.num_clients = 120;
  config.clients_per_round = 20;
  config.rounds = rounds;
  config.dataset = dataset;
  config.model = model;
  config.alpha = 0.1;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = seed;
  return config;
}

}  // namespace

int main() {
  const std::string qtable_path = "/tmp/floatfl_pretrained_qtable.txt";

  // ---- Phase 1: pre-train on FEMNIST + ResNet-18 and persist the agent.
  {
    const ExperimentConfig config =
        DeploymentConfig(DatasetId::kFemnist, ModelId::kResNet18, 150, 7);
    RandomSelector selector(config.seed);
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    SyncEngine engine(config, &selector, controller.get());
    (void)engine.Run();
    if (!controller->agent().table().Save(qtable_path)) {
      std::cerr << "failed to save Q-table to " << qtable_path << "\n";
      return 1;
    }
    std::cout << "Pre-trained on FEMNIST/ResNet-18; Q-table ("
              << controller->agent().table().MemoryBytes() / 1024.0 << " KiB) saved to "
              << qtable_path << "\n";
  }

  // ---- Phase 2: new deployment on CIFAR10 + ResNet-50.
  const ExperimentConfig config =
      DeploymentConfig(DatasetId::kCifar10, ModelId::kResNet50, 30, 8);

  RandomSelector scratch_selector(config.seed);
  auto scratch = FloatController::MakeDefault(config.seed, config.rounds);
  SyncEngine scratch_engine(config, &scratch_selector, scratch.get());
  const ExperimentResult scratch_result = scratch_engine.Run();

  RandomSelector finetune_selector(config.seed);
  auto finetuned = FloatController::MakeDefault(config.seed, config.rounds);
  if (!finetuned->agent().mutable_table().Load(qtable_path)) {
    std::cerr << "failed to load Q-table from " << qtable_path << "\n";
    return 1;
  }
  SyncEngine finetune_engine(config, &finetune_selector, finetuned.get());
  const ExperimentResult finetune_result = finetune_engine.Run();

  TablePrinter table({"agent", "acc%", "completed", "dropouts", "avg-reward", "positive-reward%"});
  auto add = [&](const std::string& name, const ExperimentResult& r, const RlhfAgent& agent) {
    table.Cell(name)
        .Cell(100.0 * r.accuracy_avg, 1)
        .Cell(static_cast<long long>(r.total_completed))
        .Cell(static_cast<long long>(r.total_dropouts))
        .Cell(agent.AverageRewardOver(600), 3)
        .Cell(100.0 * agent.PositiveRewardFraction(600), 1)
        .EndRow();
  };
  add("from scratch (30 rounds)", scratch_result, scratch->agent());
  add("pre-trained + fine-tune", finetune_result, finetuned->agent());
  table.Print(std::cout);

  std::remove(qtable_path.c_str());
  return 0;
}
