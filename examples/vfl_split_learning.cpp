// Scenario example: FLOAT-style communication optimization in Vertical FL
// (Section 7, "FLOAT for non-horizontal FL").
//
// Three parties hold disjoint feature slices of the same samples and train a
// split model (party-side encoders + server-side classifier). The
// embedding/gradient exchange each step is the communication bottleneck of
// VFL; the example shows the accuracy/traffic trade-off of leaving it in
// fp32, 16-bit, or 8-bit — the same quantization actions FLOAT tunes for
// horizontal FL, applied without any structural change to the protocol.
#include <iostream>

#include "src/common/table.h"
#include "src/fl/vfl_engine.h"

using namespace floatfl;

int main() {
  VflConfig config;
  config.num_parties = 3;
  config.features_per_party = 6;
  config.embedding_dim = 8;
  config.num_classes = 5;
  config.train_samples = 400;
  config.test_samples = 250;
  config.class_separation = 1.6;
  config.seed = 9;

  constexpr int kEpochs = 12;

  TablePrinter table({"exchange", "final-acc%", "traffic-MB/epoch", "vs-fp32"});
  double dense_traffic = 0.0;
  for (TechniqueKind kind :
       {TechniqueKind::kNone, TechniqueKind::kQuant16, TechniqueKind::kQuant8}) {
    VflEngine engine(config);
    VflRoundStats stats;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      stats = engine.TrainEpoch(kind);
    }
    const double traffic_mb = stats.traffic_bytes / (1024.0 * 1024.0);
    if (kind == TechniqueKind::kNone) {
      dense_traffic = traffic_mb;
    }
    table.Cell(kind == TechniqueKind::kNone ? "fp32" : ToString(kind))
        .Cell(100.0 * stats.test_accuracy, 1)
        .Cell(traffic_mb, 3)
        .Cell(traffic_mb > 0.0 ? dense_traffic / traffic_mb : 0.0, 2)
        .EndRow();
  }
  table.Print(std::cout);
  std::cout << "\nExpected shapes: 16-bit exchange matches fp32 accuracy at half the\n"
               "traffic; 8-bit quarters the traffic with a small accuracy dip.\n";
  return 0;
}
