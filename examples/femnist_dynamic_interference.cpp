// Scenario example: the paper's FEMNIST workload under dynamic on-device
// interference (the setting the paper's motivation is built on).
//
// Runs every synchronous client-selection baseline (FedAvg, Oort, REFL) with
// and without FLOAT attached, on a mid-sized federation, and prints the
// per-system accuracy / participation / waste summary plus FLOAT's per-round
// accuracy trajectory against the vanilla baseline.
#include <iostream>
#include <memory>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/fl/sync_engine.h"
#include "src/selection/oort_selector.h"
#include "src/selection/random_selector.h"
#include "src/selection/refl_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig MakeConfig() {
  ExperimentConfig config;
  config.num_clients = 150;
  config.clients_per_round = 25;
  config.rounds = 150;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.alpha = 0.1;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 21;
  return config;
}

std::unique_ptr<Selector> MakeSelector(const std::string& name, const ExperimentConfig& config) {
  if (name == "oort") {
    return std::make_unique<OortSelector>(config.seed, config.num_clients);
  }
  if (name == "refl") {
    return std::make_unique<ReflSelector>(config.seed, config.num_clients);
  }
  return std::make_unique<RandomSelector>(config.seed);
}

}  // namespace

int main() {
  const ExperimentConfig config = MakeConfig();
  TablePrinter table({"system", "acc%", "bottom10%", "completed", "dropouts", "wasted-comp(h)"});

  std::vector<double> vanilla_curve;
  std::vector<double> float_curve;

  for (const std::string name : {"fedavg", "oort", "refl"}) {
    auto base_selector = MakeSelector(name, config);
    SyncEngine base_engine(config, base_selector.get(), nullptr);
    const ExperimentResult base = base_engine.Run();
    table.Cell(name)
        .Cell(100.0 * base.accuracy_avg, 1)
        .Cell(100.0 * base.accuracy_bottom10, 1)
        .Cell(static_cast<long long>(base.total_completed))
        .Cell(static_cast<long long>(base.total_dropouts))
        .Cell(base.wasted.compute_hours, 1)
        .EndRow();
    if (name == "fedavg") {
      vanilla_curve = base.accuracy_history;
    }

    // REFL is not combined with FLOAT (incompatible availability-prediction
    // assumptions, Section 6.1).
    if (name == "refl") {
      continue;
    }
    auto float_selector = MakeSelector(name, config);
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    SyncEngine float_engine(config, float_selector.get(), controller.get());
    const ExperimentResult with_float = float_engine.Run();
    table.Cell("FLOAT(" + name + ")")
        .Cell(100.0 * with_float.accuracy_avg, 1)
        .Cell(100.0 * with_float.accuracy_bottom10, 1)
        .Cell(static_cast<long long>(with_float.total_completed))
        .Cell(static_cast<long long>(with_float.total_dropouts))
        .Cell(with_float.wasted.compute_hours, 1)
        .EndRow();
    if (name == "fedavg") {
      float_curve = with_float.accuracy_history;
    }
  }
  table.Print(std::cout);

  std::cout << "\nGlobal accuracy trajectory (FedAvg vs FLOAT(FedAvg)):\n";
  TablePrinter curve({"round", "fedavg", "float(fedavg)"});
  for (size_t round : {size_t{10}, size_t{25}, size_t{50}, size_t{75}, size_t{100}, size_t{150}}) {
    if (round > vanilla_curve.size()) {
      break;
    }
    curve.Cell(static_cast<long long>(round))
        .Cell(100.0 * vanilla_curve[round - 1], 1)
        .Cell(100.0 * float_curve[round - 1], 1)
        .EndRow();
  }
  curve.Print(std::cout);
  return 0;
}
