// Scenario example: *real* federated training with real optimizations.
//
// A 20-client federation trains an actual MLP (src/nn) with SGD on
// Dirichlet-partitioned synthetic data; uploads go through the real
// tensor-level implementations of each acceleration (affine quantization,
// magnitude pruning + sparse encoding, frozen-layer partial training,
// lossless RLE compression) and the server aggregates real weights with
// FedAvg. The printed table shows the measured accuracy/bytes trade-off of
// every technique — the ground truth behind the cost multipliers the
// trace-driven simulator charges.
#include <iostream>

#include "src/common/table.h"
#include "src/fl/real_engine.h"

using namespace floatfl;

int main() {
  RealFlConfig config;
  config.num_clients = 20;
  config.clients_per_round = 6;
  config.num_classes = 8;
  config.input_dim = 12;
  config.class_separation = 1.1;  // hard task: technique accuracy costs show
  config.alpha = 0.3;
  config.hidden_dims = {32};
  config.sgd.learning_rate = 0.08f;
  config.sgd.batch_size = 16;
  config.sgd.epochs = 2;
  config.seed = 11;

  constexpr size_t kRounds = 25;

  TablePrinter table(
      {"technique", "final-acc%", "upload-KiB", "vs-fp32", "max-injected-error"});
  for (TechniqueKind kind :
       {TechniqueKind::kNone, TechniqueKind::kQuant16, TechniqueKind::kQuant8,
        TechniqueKind::kPrune50, TechniqueKind::kPrune75, TechniqueKind::kPartial50,
        TechniqueKind::kCompressLossless}) {
    RealFlEngine engine(config);
    RealRoundStats stats;
    for (size_t round = 0; round < kRounds; ++round) {
      stats = engine.RunRound(kind);
    }
    const double dense_kib = static_cast<double>(engine.DenseUpdateBytes()) / 1024.0;
    const double upload_kib = stats.mean_upload_bytes / 1024.0;
    table.Cell(ToString(kind))
        .Cell(100.0 * stats.test_accuracy, 1)
        .Cell(upload_kib, 2)
        .Cell(upload_kib > 0 ? dense_kib / upload_kib : 0.0, 2)
        .Cell(stats.mean_update_error, 5)
        .EndRow();
  }
  table.Print(std::cout);

  std::cout << "\nExpected shapes: quant16/compress match fp32 accuracy at ~2x smaller\n"
               "uploads; quant8 ~4x smaller with a small accuracy dip; prune75 ~2x\n"
               "smaller (sparse index+value encoding breaks even at 50% sparsity)\n"
               "with the largest accuracy dip; partial training changes no bytes.\n";
  return 0;
}
