// Divergence-recovery sweep: collapse threshold x snapshot-ring depth
// (DESIGN.md §11).
//
// A sleeper scaled-replacement collusion (20%, wake at round 20) attacks a
// plain FedAvg server; the guard is the only defense. Sweeps the watchdog's
// collapse threshold over {1, 2, 5, 10} accuracy points and the snapshot
// ring over {1, 2, 4, 8} entries, printing rollbacks, watchdog triggers,
// safe-mode rounds and final accuracy per cell, next to the unguarded
// baseline. The recipe behind EXPERIMENTS.md's divergence-recovery section:
// a tighter threshold reacts faster (more rollbacks, higher final accuracy)
// and a deeper ring keeps escalation useful under repeated triggers, at the
// cost of one model copy per entry.
#include <iostream>

#include "bench/bench_util.h"
#include "src/fl/tuning_policy.h"

using namespace floatfl_bench;

namespace {

ExperimentConfig AttackedConfig() {
  ExperimentConfig config;
  config.num_clients = 40;
  config.clients_per_round = 8;
  config.rounds = 40;
  config.seed = 321;
  config.assume_no_dropouts = true;
  config.faults.byzantine_mode = ByzantineMode::kScaledReplacement;
  config.faults.byzantine_fraction = 0.2;
  config.faults.byzantine_scale = 4.0;
  config.faults.byzantine_start_round = 20;
  return config;
}

ExperimentResult RunGuarded(double collapse_threshold, uint32_t ring) {
  ExperimentConfig config = AttackedConfig();
  if (collapse_threshold > 0.0) {
    config.guard.enabled = true;
    config.guard.collapse_threshold = collapse_threshold;
    config.guard.snapshot_ring = ring;
    config.guard.safe_mode_rounds = 4;
  }
  RandomSelector selector(config.seed);
  StaticPolicy policy(TechniqueKind::kQuant8);
  SyncEngine engine(config, &selector, &policy);
  return engine.Run();
}

}  // namespace

int main() {
  std::cout << "Divergence-recovery sweep: 20% scaled-replacement sleepers (wake at\n"
               "round 20) vs plain FedAvg; only the guard defends. threshold = 0\n"
               "is the unguarded baseline.\n\n";
  TablePrinter table(
      {"threshold%", "ring", "rollbacks", "triggers", "safe_rounds", "final acc%"});
  const ExperimentResult off = RunGuarded(0.0, 0);
  table.Cell("off")
      .Cell("-")
      .Cell(static_cast<long long>(off.rollbacks))
      .Cell(static_cast<long long>(off.watchdog_triggers))
      .Cell(static_cast<long long>(off.safe_mode_rounds))
      .Cell(100.0 * off.global_accuracy, 1)
      .EndRow();
  for (const double threshold : {0.01, 0.02, 0.05, 0.10}) {
    for (const uint32_t ring : {1u, 2u, 4u, 8u}) {
      const ExperimentResult r = RunGuarded(threshold, ring);
      table.Cell(100.0 * threshold, 0)
          .Cell(static_cast<long long>(ring))
          .Cell(static_cast<long long>(r.rollbacks))
          .Cell(static_cast<long long>(r.watchdog_triggers))
          .Cell(static_cast<long long>(r.safe_mode_rounds))
          .Cell(100.0 * r.global_accuracy, 1)
          .EndRow();
    }
  }
  table.Print(std::cout);
  std::cout << "\nEvery guarded cell should end above the unguarded baseline; the\n"
               "sweep is deterministic, so rerunning reproduces it bit-for-bit.\n";
  return 0;
}
