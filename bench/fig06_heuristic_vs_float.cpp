// Figure 6: heuristic-based tuning vs FLOAT (FedAvg baseline).
//
// Left panel: accuracy and successful/dropped clients for vanilla FedAvg,
// the Section-4.4 heuristic, and FLOAT, on non-IID FEMNIST (Dirichlet alpha
// 0.01) under dynamic on-device interference.
// Middle panel: compute/communication/memory inefficiency (wasted resources
// of dropped clients).
// Right panel: per-technique selection success/failure counts for the
// heuristic and for FLOAT, showing FLOAT's adeptness at picking the right
// optimization and configuration.
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

void PrintPerTechnique(const std::string& name, const ExperimentResult& r) {
  std::cout << "\n" << name << " per-technique success/failure:\n";
  TablePrinter table({"technique", "success", "failure"});
  for (const auto& [kind, stats] : r.per_technique) {
    table.Cell(ToString(kind))
        .Cell(static_cast<long long>(stats.success))
        .Cell(static_cast<long long>(stats.failure))
        .EndRow();
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 6: heuristic vs FLOAT on FEMNIST (alpha=0.01,\n"
               "dynamic interference). Expected shapes: heuristic beats vanilla\n"
               "FedAvg on accuracy and participation, FLOAT beats the heuristic by\n"
               "a further wide margin (paper: ~20% accuracy) with fewer dropouts\n"
               "and a better per-technique success-to-failure ratio.\n\n";
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.alpha = 0.01;

  const ExperimentResult vanilla = RunSync(config, "fedavg", nullptr);
  HeuristicPolicy heuristic_policy(config.seed + 17);
  const ExperimentResult heuristic = RunSync(config, "fedavg", &heuristic_policy);
  auto controller = FloatController::MakeDefault(config.seed, config.rounds);
  const ExperimentResult with_float = RunSync(config, "fedavg", controller.get());

  TablePrinter table(ResultHeaders());
  AddResultRow(table, "FedAvg", vanilla);
  AddResultRow(table, "Heuristic", heuristic);
  AddResultRow(table, "FLOAT", with_float);
  table.Print(std::cout);

  PrintPerTechnique("Heuristic", heuristic);
  PrintPerTechnique("FLOAT", with_float);

  std::cout << "\nFLOAT vs heuristic accuracy gain: "
            << FormatDouble(100.0 * (with_float.accuracy_avg - heuristic.accuracy_avg), 1)
            << " points; dropout reduction: "
            << FormatDouble(Ratio(static_cast<double>(heuristic.total_dropouts),
                                  static_cast<double>(with_float.total_dropouts)),
                            2)
            << "x\n";
  return 0;
}
