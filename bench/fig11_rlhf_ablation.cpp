// Figure 11: human-feedback ablation — FLOAT-RL (no HF) vs FLOAT-RLHF.
//
// Same workload as Figure 6 (FEMNIST, dynamic on-device interference).
// FLOAT-RL removes the deadline-difference state dimension and the dropout
// feedback cache. Expected shapes (paper): RLHF gains ~10% accuracy and ~2x
// fewer dropouts, with better compute/communication/memory efficiency and a
// better per-technique success-to-dropout ratio; FLOAT-RL over-selects
// mid-strength optimizations.
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

void PrintPerTechnique(const std::string& name, const ExperimentResult& r) {
  std::cout << "\n" << name << " per-technique success/failure:\n";
  TablePrinter table({"technique", "success", "failure"});
  for (const auto& [kind, stats] : r.per_technique) {
    table.Cell(ToString(kind))
        .Cell(static_cast<long long>(stats.success))
        .Cell(static_cast<long long>(stats.failure))
        .EndRow();
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 11: RLHF ablation (FLOAT-RL vs FLOAT-RLHF) on\n"
               "FEMNIST with dynamic interference.\n\n";
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);

  auto rl = FloatController::MakeWithoutHumanFeedback(config.seed, config.rounds);
  const ExperimentResult rl_result = RunSync(config, "fedavg", rl.get());
  auto rlhf = FloatController::MakeDefault(config.seed, config.rounds);
  const ExperimentResult rlhf_result = RunSync(config, "fedavg", rlhf.get());

  TablePrinter table(ResultHeaders());
  AddResultRow(table, "FLOAT-RL", rl_result);
  AddResultRow(table, "FLOAT-RLHF", rlhf_result);
  table.Print(std::cout);

  PrintPerTechnique("FLOAT-RL", rl_result);
  PrintPerTechnique("FLOAT-RLHF", rlhf_result);

  std::cout << "\nRLHF vs RL: accuracy +"
            << FormatDouble(100.0 * (rlhf_result.accuracy_avg - rl_result.accuracy_avg), 1)
            << " points, dropouts "
            << FormatDouble(Ratio(static_cast<double>(rl_result.total_dropouts),
                                  static_cast<double>(rlhf_result.total_dropouts)),
                            2)
            << "x fewer, wasted compute "
            << FormatDouble(Ratio(rl_result.wasted.compute_hours,
                                  rlhf_result.wasted.compute_hours),
                            2)
            << "x less, wasted comm "
            << FormatDouble(Ratio(rl_result.wasted.comm_hours, rlhf_result.wasted.comm_hours), 2)
            << "x less, wasted memory "
            << FormatDouble(Ratio(rl_result.wasted.memory_tb, rlhf_result.wasted.memory_tb), 2)
            << "x less\n";
  return 0;
}
