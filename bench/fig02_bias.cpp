// Figure 2: limitations of existing frameworks (motivation experiment).
//
// Setup from Section 4.1: 200 clients, 20 selected per round, 300 rounds,
// EMNIST-like dataset, Dirichlet alpha = 0.05, dynamic resource traces.
//
// Panel (a): participation bias — for each strategy, the distribution of
// per-client selection (C) and successful-completion (S) counts, plus how
// many clients were never selected / never completed (REFL worst, FedBuff
// next, FedAvg and Oort comparatively unbiased).
// Panel (b): accumulated client resource usage and FL wall-clock time —
// FedBuff finishes in a fraction of the synchronous wall-clock but burns a
// multiple of the client resources.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"

using namespace floatfl_bench;

namespace {

ExperimentConfig MotivationConfig() {
  ExperimentConfig config = PaperConfig(DatasetId::kEmnist, ModelId::kResNet34);
  config.clients_per_round = 20;
  config.alpha = 0.05;
  return config;
}

void AddBiasRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  std::vector<double> selected(r.per_client_selected.begin(), r.per_client_selected.end());
  std::vector<double> completed(r.per_client_completed.begin(), r.per_client_completed.end());
  table.Cell(name)
      .Cell(static_cast<long long>(r.total_selected))
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.never_selected))
      .Cell(static_cast<long long>(r.never_completed))
      .Cell(Percentile(selected, 50.0), 1)
      .Cell(Percentile(selected, 90.0), 1)
      .Cell(Percentile(completed, 50.0), 1)
      .Cell(Percentile(completed, 90.0), 1)
      .EndRow();
}

void AddResourceRow(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  const ResourceTotals total = [&] {
    ResourceTotals t = r.useful;
    t += r.wasted;
    return t;
  }();
  table.Cell(name)
      .Cell(total.compute_hours, 1)
      .Cell(total.comm_hours, 1)
      .Cell(total.memory_tb, 2)
      .Cell(r.wall_clock_hours, 1)
      .EndRow();
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 2 (motivation): participation bias (a) and\n"
               "resource usage vs wall-clock (b). Expected shapes: REFL excludes the\n"
               "most clients; FedBuff also biased; FedAvg/Oort comparatively\n"
               "unbiased. FedBuff's wall-clock is a fraction of synchronous methods\n"
               "but its aggregate client resource usage is several times higher.\n\n";
  const ExperimentConfig config = MotivationConfig();

  const ExperimentResult fedavg = RunSync(config, "fedavg", nullptr);
  const ExperimentResult oort = RunSync(config, "oort", nullptr);
  const ExperimentResult refl = RunSync(config, "refl", nullptr);
  const ExperimentResult fedbuff = RunAsync(config, nullptr);

  std::cout << "Panel (a): participation bias (selected C vs completed S)\n";
  TablePrinter bias({"system", "C-total", "S-total", "never-C", "never-S", "C-p50", "C-p90",
                     "S-p50", "S-p90"});
  AddBiasRow(bias, "fedavg", fedavg);
  AddBiasRow(bias, "oort", oort);
  AddBiasRow(bias, "refl", refl);
  AddBiasRow(bias, "fedbuff", fedbuff);
  bias.Print(std::cout);

  std::cout << "\nPanel (b): accumulated resource usage and wall-clock FL time\n";
  TablePrinter res({"system", "compute(h)", "comm(h)", "memory(TB)", "wall-clock(h)"});
  AddResourceRow(res, "fedavg", fedavg);
  AddResourceRow(res, "oort", oort);
  AddResourceRow(res, "refl", refl);
  AddResourceRow(res, "fedbuff", fedbuff);
  res.Print(std::cout);

  std::cout << "\nfedbuff resource usage vs fedavg: "
            << FormatDouble(Ratio(fedbuff.useful.compute_hours + fedbuff.wasted.compute_hours,
                                  1.0) /
                                std::max(1e-9, fedavg.useful.compute_hours +
                                                   fedavg.wasted.compute_hours),
                            2)
            << "x compute; wall-clock ratio fedavg/fedbuff: "
            << FormatDouble(Ratio(fedavg.wall_clock_hours, fedbuff.wall_clock_hours), 2) << "x\n";
  return 0;
}
