// Shared plumbing for the continuous performance harness (DESIGN.md §12).
//
// A PerfSample is one measured scenario: an (area, case, scale, variant)
// key plus its measurements. The harness binaries emit arrays of samples as
// BENCH_<area>.json at the repo root; perf_check diffs a freshly produced
// file against the committed baseline — strict equality on deterministic
// fields (work_units, sim_seconds, bytes_moved_mb), a one-sided tolerance
// on wall time, everything else informational.
//
// The JSON here is deliberately hand-rolled for exactly this flat schema:
// an array of objects whose values are strings or doubles. No dependency,
// no general-purpose parser.
#ifndef BENCH_PERF_UTIL_H_
#define BENCH_PERF_UTIL_H_

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace floatfl_bench {

// Global allocation counter. The counting operator new/delete live in
// bench/alloc_hook.cc and are linked only into the perf binaries; every
// other binary sees this inline variable stay at zero. Relaxed ordering is
// enough — the harness only reads deltas around single-threaded sections.
inline std::atomic<uint64_t> g_perf_alloc_count{0};

inline uint64_t AllocCount() { return g_perf_alloc_count.load(std::memory_order_relaxed); }

// True when the counting allocator is linked in (the counter moves at all).
// Cheap probe: one heap allocation must bump the counter.
inline bool AllocHookActive() {
  const uint64_t before = AllocCount();
  { std::vector<int> probe(16); (void)probe; }
  return AllocCount() != before;
}

// Peak resident set size in MiB from /proc/self/status (VmHWM). Returns 0
// when the pseudo-file is unavailable (non-Linux hosts); callers treat the
// field as informational.
inline double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      std::string unit;
      fields >> kb >> unit;
      return kb / 1024.0;
    }
  }
  return 0.0;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct PerfSample {
  // Key (unique per file): measurement area, scenario, problem size, and
  // the code path under test (e.g. reference vs blocked, memo_off vs
  // memo_on, fresh_alloc vs pooled).
  std::string area;
  std::string case_name;
  std::string scale;
  std::string variant;

  // Measurements. work_units, sim_seconds and bytes_moved_mb are fully
  // deterministic (simulated clock / wire accounting, never wall time) and
  // are compared strictly; wall_seconds gets a tolerance; the rest are
  // informational. allocations is deterministic whenever the counting
  // allocator is linked and the section is single-threaded.
  double wall_seconds = 0.0;
  double work_units = 0.0;
  double sim_seconds = 0.0;
  double det_rounds_per_sec = 0.0;   // work_units / sim_seconds (0 when no sim clock)
  double wall_rounds_per_sec = 0.0;  // work_units / wall_seconds
  double peak_rss_mb = 0.0;
  double bytes_moved_mb = 0.0;
  double allocations = 0.0;
  double speedup = 0.0;  // parallel area only; 0 elsewhere

  std::string Key() const { return area + "/" + case_name + "/" + scale + "/" + variant; }

  // Fills the derived throughput fields from the primary measurements.
  void FinalizeRates() {
    det_rounds_per_sec = sim_seconds > 0.0 ? work_units / sim_seconds : 0.0;
    wall_rounds_per_sec = wall_seconds > 0.0 ? work_units / wall_seconds : 0.0;
  }
};

namespace perf_json {

inline void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

inline void AppendField(std::string& out, const char* name, double value, bool last = false) {
  char buf[64];
  // %.17g round-trips doubles exactly, keeping strict comparisons honest.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += "    \"";
  out += name;
  out += "\": ";
  out += buf;
  out += last ? "\n" : ",\n";
}

inline void AppendField(std::string& out, const char* name, const std::string& value) {
  out += "    \"";
  out += name;
  out += "\": \"";
  AppendEscaped(out, value);
  out += "\",\n";
}

}  // namespace perf_json

// Serializes samples as a pretty-printed JSON array (stable field order, so
// committed baselines diff cleanly).
inline std::string ToJson(const std::vector<PerfSample>& samples) {
  std::string out = "[\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const PerfSample& s = samples[i];
    out += "  {\n";
    perf_json::AppendField(out, "area", s.area);
    perf_json::AppendField(out, "case", s.case_name);
    perf_json::AppendField(out, "scale", s.scale);
    perf_json::AppendField(out, "variant", s.variant);
    perf_json::AppendField(out, "wall_seconds", s.wall_seconds);
    perf_json::AppendField(out, "work_units", s.work_units);
    perf_json::AppendField(out, "sim_seconds", s.sim_seconds);
    perf_json::AppendField(out, "det_rounds_per_sec", s.det_rounds_per_sec);
    perf_json::AppendField(out, "wall_rounds_per_sec", s.wall_rounds_per_sec);
    perf_json::AppendField(out, "peak_rss_mb", s.peak_rss_mb);
    perf_json::AppendField(out, "bytes_moved_mb", s.bytes_moved_mb);
    perf_json::AppendField(out, "allocations", s.allocations);
    perf_json::AppendField(out, "speedup", s.speedup, /*last=*/true);
    out += i + 1 < samples.size() ? "  },\n" : "  }\n";
  }
  out += "]\n";
  return out;
}

// Parses the exact dialect ToJson emits (flat array of objects with string
// or number values). Returns false on any structural surprise; `error`
// gets a human-readable reason.
inline bool FromJson(const std::string& text, std::vector<PerfSample>* samples,
                     std::string* error) {
  samples->clear();
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why + " at offset " + std::to_string(i);
    }
    return false;
  };
  const auto parse_string = [&](std::string* out) {
    if (i >= text.size() || text[i] != '"') {
      return false;
    }
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        ++i;
      }
      out->push_back(text[i]);
      ++i;
    }
    if (i >= text.size()) {
      return false;
    }
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '[') {
    return fail("expected '['");
  }
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == ']') {
    ++i;
    return true;
  }
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '{') {
      return fail("expected '{'");
    }
    ++i;
    PerfSample s;
    while (true) {
      skip_ws();
      std::string name;
      if (!parse_string(&name)) {
        return fail("expected field name");
      }
      skip_ws();
      if (i >= text.size() || text[i] != ':') {
        return fail("expected ':'");
      }
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        std::string value;
        if (!parse_string(&value)) {
          return fail("unterminated string");
        }
        if (name == "area") {
          s.area = value;
        } else if (name == "case") {
          s.case_name = value;
        } else if (name == "scale") {
          s.scale = value;
        } else if (name == "variant") {
          s.variant = value;
        }  // unknown string fields are ignored (schema growth)
      } else {
        size_t end = i;
        while (end < text.size() && text[end] != ',' && text[end] != '}' &&
               !std::isspace(static_cast<unsigned char>(text[end]))) {
          ++end;
        }
        double value = 0.0;
        try {
          value = std::stod(text.substr(i, end - i));
        } catch (...) {
          return fail("bad number for field '" + name + "'");
        }
        i = end;
        if (name == "wall_seconds") {
          s.wall_seconds = value;
        } else if (name == "work_units") {
          s.work_units = value;
        } else if (name == "sim_seconds") {
          s.sim_seconds = value;
        } else if (name == "det_rounds_per_sec") {
          s.det_rounds_per_sec = value;
        } else if (name == "wall_rounds_per_sec") {
          s.wall_rounds_per_sec = value;
        } else if (name == "peak_rss_mb") {
          s.peak_rss_mb = value;
        } else if (name == "bytes_moved_mb") {
          s.bytes_moved_mb = value;
        } else if (name == "allocations") {
          s.allocations = value;
        } else if (name == "speedup") {
          s.speedup = value;
        }  // unknown numeric fields are ignored
      }
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
    samples->push_back(s);
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == ']') {
      ++i;
      return true;
    }
    return fail("expected ',' or ']'");
  }
}

inline bool WriteJsonFile(const std::string& path, const std::vector<PerfSample>& samples) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << ToJson(samples);
  return static_cast<bool>(out);
}

inline bool ReadJsonFile(const std::string& path, std::vector<PerfSample>* samples,
                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str(), samples, error);
}

// One baseline-vs-fresh sample comparison verdict.
struct PerfDiff {
  std::string key;
  bool ok = true;
  std::string detail;  // empty when ok
  // Names of every field that failed, in check order (so callers can print
  // a JSON path per failing field, not just the first mismatch).
  std::vector<std::string> failed_fields;
};

// Compares a fresh sample against its committed baseline. Deterministic
// fields must match exactly; wall time may regress by at most `wall_tol`
// (fractional, one-sided — getting faster never fails). Wall checks are
// skipped when both runs are under `wall_floor_s` (pure noise territory)
// and for the machine-dependent `parallel` area. RSS and allocations are
// informational here (allocation *ordering* properties are asserted by the
// harness itself, where the alloc hook is guaranteed present).
inline PerfDiff ComparePerfSamples(const PerfSample& baseline, const PerfSample& fresh,
                                   double wall_tol = 0.15, double wall_floor_s = 0.05) {
  PerfDiff diff;
  diff.key = baseline.Key();
  std::ostringstream why;
  const auto exact = [&](const char* name, double expect, double got) {
    if (expect != got) {
      diff.ok = false;
      diff.failed_fields.push_back(name);
      why << name << " changed: baseline " << expect << " vs fresh " << got << "; ";
    }
  };
  exact("work_units", baseline.work_units, fresh.work_units);
  exact("sim_seconds", baseline.sim_seconds, fresh.sim_seconds);
  exact("bytes_moved_mb", baseline.bytes_moved_mb, fresh.bytes_moved_mb);
  exact("det_rounds_per_sec", baseline.det_rounds_per_sec, fresh.det_rounds_per_sec);
  if (baseline.area != "parallel" &&
      (baseline.wall_seconds >= wall_floor_s || fresh.wall_seconds >= wall_floor_s) &&
      fresh.wall_seconds > baseline.wall_seconds * (1.0 + wall_tol)) {
    diff.ok = false;
    diff.failed_fields.push_back("wall_seconds");
    why << "wall_seconds regressed: baseline " << baseline.wall_seconds << " vs fresh "
        << fresh.wall_seconds << " (tolerance " << wall_tol * 100.0 << "%); ";
  }
  diff.detail = why.str();
  return diff;
}

}  // namespace floatfl_bench

#endif  // BENCH_PERF_UTIL_H_
