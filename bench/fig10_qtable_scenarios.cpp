// Figure 10: fine-tuned multi-objective Q-tables under three resource
// scenarios.
//
// A pre-trained agent is fine-tuned in three distinct FL environments and
// its per-action Q-table aggregates (participation-success and
// accuracy-improvement moving averages) are printed:
//  (a) IID data, no interference — accuracy impact is flat across actions
//      (dropouts lose little information when data is IID); participation
//      rises with more aggressive optimization.
//  (b) constrained compute (static interference) — aggressive
//      compute-relieving actions dominate participation success.
//  (c) unstable network (heavy model on 4G-dominated dynamic links) —
//      partial training has the LOWEST participation success of the
//      aggressive configs because it does not relieve communication, while
//      quantization and pruning shine.
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

// Applies every action uniformly at random — an unbiased probe that measures
// each action's causal participation success on the scenario's state mix
// (the fine-tuned agent's own per-action tallies are conditioned on its
// policy, which routes aggressive actions into hard states).
class UniformRandomPolicy final : public TuningPolicy {
 public:
  explicit UniformRandomPolicy(uint64_t seed) : rng_(seed) {}
  TechniqueKind Decide(size_t, const ClientObservation&, const GlobalObservation&) override {
    return ActionTechniques()[rng_.UniformInt(ActionTechniques().size())];
  }
  void Report(size_t, const ClientObservation&, const GlobalObservation&, TechniqueKind, bool,
              double) override {}
  std::string Name() const override { return "uniform-probe"; }

 private:
  Rng rng_;
};

void PrintScenario(const std::string& title, const ExperimentConfig& config,
                   const FloatController& pretrained) {
  // Causal probe: uniform-random action choice.
  UniformRandomPolicy probe_policy(config.seed + 5000);
  const ExperimentResult probe = RunSync(config, "fedavg", &probe_policy);

  // Fine-tuned agent: what the Q-table learned to prefer.
  auto agent = FloatController::MakeDefault(config.seed, config.rounds);
  agent->agent().InitializeFrom(pretrained.agent());
  (void)RunSync(config, "fedavg", agent.get());
  const std::vector<RlhfAgent::ActionSummary> summaries = agent->agent().SummarizePerAction();

  std::cout << "\n" << title << "\n";
  TablePrinter table({"action", "probe-success-rate", "probe-acc-quality", "agent-visits",
                      "agent-avg-Q"});
  for (const auto& summary : summaries) {
    const auto it = probe.per_technique.find(summary.technique);
    double success_rate = 0.0;
    if (it != probe.per_technique.end()) {
      const auto& stats = it->second;
      const size_t total = stats.success + stats.failure;
      if (total > 0) {
        success_rate = static_cast<double>(stats.success) / static_cast<double>(total);
      }
    }
    table.Cell(ToString(summary.technique))
        .Cell(success_rate, 3)
        .Cell(1.0 - EffectOf(summary.technique).accuracy_impact, 3)
        .Cell(static_cast<long long>(summary.visits))
        .Cell(summary.avg_q, 3)
        .EndRow();
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 10: per-scenario fine-tuned Q-tables.\n";

  // Shared pre-training (FEMNIST + ResNet-18, dynamic interference).
  ExperimentConfig pretrain_config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet18);
  pretrain_config.rounds = 200;
  auto pretrained = FloatController::MakeDefault(pretrain_config.seed, pretrain_config.rounds);
  (void)RunSync(pretrain_config, "fedavg", pretrained.get());

  // (a) IID data, stable resources.
  {
    ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet18, 311);
    config.alpha = 100.0;  // IID
    config.interference = InterferenceScenario::kNone;
    config.rounds = 100;
    PrintScenario("(a) IID data, no interference", config, *pretrained);
  }
  // (b) Constrained compute.
  {
    ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet18, 312);
    config.interference = InterferenceScenario::kStatic;
    config.rounds = 100;
    PrintScenario("(b) constrained compute (static interference)", config, *pretrained);
  }
  // (c) Unstable network: a communication-bound workload — the large
  // ResNet-50 update over dynamic links with a compute-light (speech-sized)
  // local task, so round time is dominated by the network.
  {
    ExperimentConfig config = PaperConfig(DatasetId::kSpeech, ModelId::kResNet50, 313);
    config.interference = InterferenceScenario::kDynamic;
    config.rounds = 100;
    config.batch_size = 8;  // keep activations small and local work short:
    config.epochs = 1;      // the 97 MB ResNet-50 update over fluctuating
                            // links, not compute or memory, binds the round
    PrintScenario("(c) unstable network (communication-bound)", config, *pretrained);
  }
  return 0;
}
