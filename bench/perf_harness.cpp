// Continuous performance harness (DESIGN.md §12).
//
// Runs fixed-scale scenarios for the three optimized areas and emits one
// machine-readable trajectory file per area:
//
//   BENCH_agg.json        reference vs blocked aggregation, all five rules
//   BENCH_trace.json      trace queries with the same-timestamp memo off/on
//   BENCH_round_loop.json full engine round loops, fresh-alloc vs pooled
//
// Every before/after pair is also *checked* here: the optimized variant
// must produce bit-identical results to its baseline (aggregate outputs,
// trace value checksums, engine accuracy and wire bytes), and the pooled
// round loops must allocate no more than the fresh-allocation ones. A
// harness run that measures a non-equivalent optimization aborts — the
// JSON never records numbers from a wrong computation.
//
// Usage: perf_harness [--out DIR] [--scale-factor N]
//   --out DIR        directory for the BENCH_*.json files (default ".")
//   --scale-factor N divide workloads by N for CI smoke runs (default 1)
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/perf_util.h"
#include "src/agg/aggregator.h"
#include "src/agg/reference.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/fl/real_engine.h"
#include "src/fl/vfl_engine.h"
#include "src/trace/compute_trace.h"
#include "src/trace/interference.h"
#include "src/trace/network_trace.h"
#include "src/trace/trace_memo.h"

namespace floatfl_bench {
namespace {

using namespace floatfl;

size_t g_scale_factor = 1;

size_t Scaled(size_t n) { return std::max<size_t>(1, n / g_scale_factor); }

// Runs `body` once and fills the sample's wall/alloc/RSS fields around it.
template <typename Body>
void Measure(PerfSample& sample, const Body& body) {
  // Best-of-N wall time: the minimum over identical deterministic reps is
  // the run least disturbed by the scheduler, which is what makes the
  // ±15% CI tolerance hold on noisy shared hosts. Allocations are counted
  // on the first rep only (reps repeat the identical work).
  constexpr int kWallReps = 5;
  const uint64_t allocs_before = AllocCount();
  const WallTimer first;
  body();
  double best = first.Seconds();
  sample.allocations = static_cast<double>(AllocCount() - allocs_before);
  for (int rep = 1; rep < kWallReps; ++rep) {
    const WallTimer timer;
    body();
    best = std::min(best, timer.Seconds());
  }
  sample.wall_seconds = best;
  sample.peak_rss_mb = PeakRssMb();
  sample.FinalizeRates();
}

// ---------------------------------------------------------------------------
// Area "agg": reference vs blocked aggregation rules.
// ---------------------------------------------------------------------------

struct AggScale {
  const char* name;
  size_t updates;
  size_t dim;
  size_t iters;
};

std::vector<std::vector<float>> MakeUpdates(size_t n, size_t dim, Rng& rng) {
  std::vector<std::vector<float>> updates(n);
  for (auto& u : updates) {
    u.resize(dim);
    for (float& x : u) {
      x = static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
  return updates;
}

void BenchAgg(std::vector<PerfSample>& out) {
  const AggScale scales[] = {
      {"small", 10, 4096, Scaled(12)},
      {"large", 20, 16384, Scaled(8)},
  };
  struct Rule {
    const char* name;
    AggregatorKind kind;
  };
  const Rule rules[] = {
      {"fedavg", AggregatorKind::kFedAvg},       {"median", AggregatorKind::kMedian},
      {"trimmed", AggregatorKind::kTrimmedMean}, {"krum", AggregatorKind::kKrum},
      {"normclip", AggregatorKind::kNormClip},
  };
  for (const AggScale& scale : scales) {
    Rng rng(20260808);
    const std::vector<std::vector<float>> updates = MakeUpdates(scale.updates, scale.dim, rng);
    std::vector<double> weights(scale.updates);
    for (double& w : weights) {
      w = rng.Uniform(10.0, 100.0);
    }
    std::vector<float> global(scale.dim);
    for (float& g : global) {
      g = static_cast<float>(rng.Normal(0.0, 0.5));
    }
    for (const Rule& rule : rules) {
      AggregatorConfig config;
      config.kind = rule.kind;
      const double work =
          static_cast<double>(scale.updates) * static_cast<double>(scale.dim) *
          static_cast<double>(scale.iters);

      std::vector<float> ref_result;
      PerfSample ref;
      ref.area = "agg";
      ref.case_name = rule.name;
      ref.scale = scale.name;
      ref.variant = "reference";
      ref.work_units = work;
      Measure(ref, [&] {
        for (size_t i = 0; i < scale.iters; ++i) {
          AggregatorStats stats;
          ref_result = ReferenceAggregate(config, updates, weights, global, &stats);
        }
      });
      out.push_back(ref);

      std::vector<float> opt_result;
      PerfSample opt;
      opt.area = "agg";
      opt.case_name = rule.name;
      opt.scale = scale.name;
      opt.variant = "blocked";
      opt.work_units = work;
      const std::unique_ptr<Aggregator> aggregator = MakeAggregator(config);
      Measure(opt, [&] {
        for (size_t i = 0; i < scale.iters; ++i) {
          AggregatorStats stats;
          opt_result = aggregator->Aggregate(updates, weights, global, &stats);
        }
      });
      out.push_back(opt);

      FLOATFL_CHECK_MSG(ref_result == opt_result,
                        "blocked aggregation diverged from the reference rule");
      std::cout << "agg/" << rule.name << "/" << scale.name << ": reference "
                << ref.wall_seconds << "s, blocked " << opt.wall_seconds << "s\n";
    }
  }
}

// ---------------------------------------------------------------------------
// Area "trace": repeated same-timestamp queries with the memo off/on.
// ---------------------------------------------------------------------------

struct TraceScale {
  const char* name;
  size_t steps;            // distinct timestamps visited
  size_t queries_per_step; // repeated queries at each timestamp
};

// Drives `query(t)` over the scale's timestamp ladder and returns the sum
// of every returned value (the bit-exactness checksum).
template <typename Query>
double DriveTrace(const TraceScale& scale, const Query& query) {
  double checksum = 0.0;
  double t = 0.0;
  for (size_t s = 0; s < scale.steps; ++s) {
    for (size_t q = 0; q < scale.queries_per_step; ++q) {
      checksum += query(t);
    }
    t += 7.5;  // deliberately off the traces' internal step grids
  }
  return checksum;
}

template <typename MakeTrace, typename Query>
void BenchOneTrace(std::vector<PerfSample>& out, const char* case_name,
                   const TraceScale& scale, const MakeTrace& make_trace, const Query& query) {
  const double work =
      static_cast<double>(scale.steps) * static_cast<double>(scale.queries_per_step);
  double checksum_off = 0.0;
  double checksum_on = 0.0;
  for (const bool memo : {false, true}) {
    SetTraceQueryMemo(memo);
    PerfSample sample;
    sample.area = "trace";
    sample.case_name = case_name;
    sample.scale = scale.name;
    sample.variant = memo ? "memo_on" : "memo_off";
    sample.work_units = work;
    double checksum = 0.0;
    // The trace is rebuilt per rep: queries are contractually monotonic in
    // time, so a rep cannot re-drive the ladder on an advanced trace.
    Measure(sample, [&] {
      auto trace = make_trace();
      checksum = DriveTrace(scale, [&](double t) { return query(trace, t); });
    });
    (memo ? checksum_on : checksum_off) = checksum;
    out.push_back(sample);
  }
  SetTraceQueryMemo(true);
  FLOATFL_CHECK_MSG(checksum_off == checksum_on,
                    "trace memo changed query results (checksum mismatch)");
  std::cout << "trace/" << case_name << "/" << scale.name << ": memo_off "
            << out[out.size() - 2].wall_seconds << "s, memo_on "
            << out[out.size() - 1].wall_seconds << "s\n";
}

void BenchTrace(std::vector<PerfSample>& out) {
  const TraceScale scales[] = {
      {"small", Scaled(20000), 8},
      {"large", Scaled(80000), 8},
  };
  for (const TraceScale& scale : scales) {
    BenchOneTrace(
        out, "network", scale, [] { return NetworkTrace(NetworkKind::kFourG, 7); },
        [](NetworkTrace& trace, double t) { return trace.BandwidthMbpsAt(t); });
    BenchOneTrace(
        out, "compute", scale, [] { return ComputeTrace::SampleDevice(11); },
        [](ComputeTrace& trace, double t) { return trace.GflopsAt(t); });
    BenchOneTrace(
        out, "interference", scale,
        [] { return InterferenceModel(InterferenceScenario::kDynamic, 13); },
        [](InterferenceModel& model, double t) {
          const ResourceAvailability a = model.At(t);
          return a.cpu + a.memory + a.network;
        });
  }
}

// ---------------------------------------------------------------------------
// Area "round_loop": full engines, fresh-alloc vs pooled scratch.
// ---------------------------------------------------------------------------

// Shared scenario knobs: single-threaded (so allocation counts are
// deterministic), deterministic zero-loss transport on (so bytes-moved is
// real wire accounting, not zero).
ExperimentConfig RoundLoopConfig(bool large, bool pooled) {
  ExperimentConfig config = PaperConfig();
  config.num_clients = large ? 120 : 60;
  config.clients_per_round = large ? 20 : 10;
  config.rounds = Scaled(large ? 40 : 20);
  config.num_threads = 1;
  config.pool_round_scratch = pooled;
  config.faults.transport = true;  // chunked wire accounting, zero loss
  return config;
}

struct EngineRunResult {
  double accuracy = 0.0;
  double wire_mb = 0.0;
  double sim_seconds = 0.0;
};

template <typename RunFn>
void BenchEngine(std::vector<PerfSample>& out, const char* case_name, const char* scale_name,
                 double rounds, const RunFn& run) {
  EngineRunResult fresh_result, pooled_result;
  for (const bool pooled : {false, true}) {
    PerfSample sample;
    sample.area = "round_loop";
    sample.case_name = case_name;
    sample.scale = scale_name;
    sample.variant = pooled ? "pooled" : "fresh_alloc";
    sample.work_units = rounds;
    EngineRunResult result;
    Measure(sample, [&] { result = run(pooled); });
    sample.sim_seconds = result.sim_seconds;
    sample.bytes_moved_mb = result.wire_mb;
    sample.FinalizeRates();
    (pooled ? pooled_result : fresh_result) = result;
    out.push_back(sample);
  }
  const PerfSample& fresh = out[out.size() - 2];
  const PerfSample& pooled = out[out.size() - 1];
  FLOATFL_CHECK_MSG(fresh_result.accuracy == pooled_result.accuracy &&
                        fresh_result.wire_mb == pooled_result.wire_mb &&
                        fresh_result.sim_seconds == pooled_result.sim_seconds,
                    "scratch pooling changed engine results");
  if (AllocHookActive()) {
    FLOATFL_CHECK_MSG(pooled.allocations <= fresh.allocations,
                      "pooled round loop allocated more than fresh-alloc");
  }
  std::cout << "round_loop/" << case_name << "/" << scale_name << ": fresh "
            << fresh.wall_seconds << "s / " << fresh.allocations << " allocs, pooled "
            << pooled.wall_seconds << "s / " << pooled.allocations << " allocs\n";
}

void BenchRoundLoop(std::vector<PerfSample>& out) {
  for (const bool large : {false, true}) {
    const char* scale_name = large ? "large" : "small";

    {
      const ExperimentConfig config = RoundLoopConfig(large, false);
      BenchEngine(out, "sync", scale_name, static_cast<double>(config.rounds),
                  [&](bool pooled) {
                    ExperimentConfig c = RoundLoopConfig(large, pooled);
                    const std::unique_ptr<Selector> selector = MakeSelector("fedavg", c);
                    SyncEngine engine(c, selector.get(), nullptr);
                    const ExperimentResult r = engine.Run();
                    return EngineRunResult{r.global_accuracy, r.wire_mb, engine.now()};
                  });
    }
    {
      ExperimentConfig config = RoundLoopConfig(large, false);
      config.rounds = Scaled(large ? 20 : 10);
      BenchEngine(out, "async", scale_name, static_cast<double>(config.rounds),
                  [&](bool pooled) {
                    ExperimentConfig c = config;
                    c.pool_round_scratch = pooled;
                    AsyncEngine engine(c, nullptr);
                    const ExperimentResult r = engine.Run();
                    return EngineRunResult{r.global_accuracy, r.wire_mb,
                                           r.wall_clock_hours * 3600.0};
                  });
    }
    {
      RealFlConfig config;
      config.num_clients = large ? 20 : 12;
      config.clients_per_round = large ? 6 : 4;
      config.num_threads = 1;
      config.seed = 42;
      config.faults.transport = true;
      const size_t rounds = Scaled(large ? 5 : 3);
      BenchEngine(out, "real", scale_name, static_cast<double>(rounds),
                  [&](bool pooled) {
                    RealFlConfig c = config;
                    c.pool_round_scratch = pooled;
                    RealFlEngine engine(c);
                    RealRoundStats stats;
                    for (size_t i = 0; i < rounds; ++i) {
                      stats = engine.RunRound(TechniqueKind::kNone);
                    }
                    return EngineRunResult{stats.test_accuracy,
                                           engine.transport_tracker().TotalWireMb(), 0.0};
                  });
    }
    {
      VflConfig config;
      config.train_samples = large ? 240 : 120;
      config.seed = 42;
      config.faults.transport = true;
      const size_t epochs = Scaled(large ? 6 : 3);
      BenchEngine(out, "vfl", scale_name, static_cast<double>(epochs),
                  [&](bool pooled) {
                    VflConfig c = config;
                    c.pool_round_scratch = pooled;
                    VflEngine engine(c);
                    VflRoundStats stats;
                    for (size_t i = 0; i < epochs; ++i) {
                      stats = engine.TrainEpoch(TechniqueKind::kNone);
                    }
                    return EngineRunResult{stats.test_accuracy,
                                           engine.transport_tracker().TotalWireMb(), 0.0};
                  });
    }
  }
}

int Main(int argc, char** argv) {
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--scale-factor") == 0 && i + 1 < argc) {
      g_scale_factor = static_cast<size_t>(std::atoll(argv[++i]));
      if (g_scale_factor == 0) {
        g_scale_factor = 1;
      }
    } else {
      std::cerr << "usage: perf_harness [--out DIR] [--scale-factor N]\n";
      return 2;
    }
  }
  if (!AllocHookActive()) {
    std::cout << "note: counting allocator not linked; allocations will read 0\n";
  }

  std::vector<PerfSample> agg, trace, round_loop;
  BenchAgg(agg);
  BenchTrace(trace);
  BenchRoundLoop(round_loop);

  const auto write = [&](const char* name, const std::vector<PerfSample>& samples) {
    const std::string path = out_dir + "/" + name;
    if (!WriteJsonFile(path, samples)) {
      std::cerr << "failed to write " << path << "\n";
      std::exit(1);
    }
    std::cout << "wrote " << path << " (" << samples.size() << " samples)\n";
  };
  write("BENCH_agg.json", agg);
  write("BENCH_trace.json", trace);
  write("BENCH_round_loop.json", round_loop);
  return 0;
}

}  // namespace
}  // namespace floatfl_bench

int main(int argc, char** argv) { return floatfl_bench::Main(argc, argv); }
