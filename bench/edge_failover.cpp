// Edge-failover sweep (DESIGN.md §13): completed client updates, orphaned /
// reparented counts and final accuracy vs edge-crash rate and tree fan-out,
// with deterministic failover on and off. The recipe behind EXPERIMENTS.md's
// edge-failure section: at any non-zero crash rate, failover converts
// orphans into fostered clients and strictly beats orphaning on both
// completed updates and final accuracy, with the gap widening as the crash
// rate grows. Small fan-outs are the fragile regime even with failover:
// with only 2 edges, one crash cascade takes the whole tier down and
// orphans clients no matter the policy.
//
//   edge_failover [--smoke]
//
// --smoke runs the smallest cell twice and exits non-zero unless the two
// runs are bit-identical — the CI determinism assertion for the tree path.
#include <cstring>
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

ExperimentResult RunTree(double crash_prob, size_t fan_out, bool failover, size_t rounds) {
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.num_clients = 80;
  config.clients_per_round = 20;
  config.rounds = rounds;
  config.topology.num_edges = fan_out;
  config.topology.failover = failover;
  config.topology.edge_retry_cooldown_rounds = 2;
  config.topology.edge_crash_prob = crash_prob;
  return RunSync(config, "fedavg", nullptr);
}

int SmokeDeterminism() {
  const ExperimentResult a = RunTree(0.2, 4, true, 15);
  const ExperimentResult b = RunTree(0.2, 4, true, 15);
  if (a.total_completed != b.total_completed || a.global_accuracy != b.global_accuracy ||
      a.edge_crashes != b.edge_crashes || a.reparented_clients != b.reparented_clients ||
      a.orphaned_clients != b.orphaned_clients || a.wall_clock_hours != b.wall_clock_hours ||
      a.accuracy_history != b.accuracy_history) {
    std::cerr << "edge_failover --smoke: two identical runs diverged\n";
    return 1;
  }
  std::cout << "edge_failover --smoke: deterministic (" << a.total_completed
            << " completed, " << a.edge_crashes << " edge crashes, "
            << a.reparented_clients << " reparented)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return SmokeDeterminism();
  }

  std::cout << "Edge-failover sweep: FedAvg on a two-tier tree, edge crash rate and\n"
               "fan-out swept; 'foster' reparents a down edge's cohort to the next\n"
               "live sibling, 'orphan' drops it for the round.\n\n";
  TablePrinter table({"crash%", "edges", "arm", "done", "orphaned", "reparented",
                      "acc%", "hours"});
  for (const double crash : {0.0, 0.10, 0.20}) {
    for (const size_t fan_out : {2u, 4u, 8u}) {
      for (const bool failover : {false, true}) {
        const ExperimentResult r = RunTree(crash, fan_out, failover, 60);
        table.Cell(100.0 * crash, 0)
            .Cell(static_cast<long long>(fan_out))
            .Cell(failover ? "foster" : "orphan")
            .Cell(static_cast<long long>(r.total_completed))
            .Cell(static_cast<long long>(r.orphaned_clients))
            .Cell(static_cast<long long>(r.reparented_clients))
            .Cell(100.0 * r.global_accuracy, 1)
            .Cell(r.wall_clock_hours, 1)
            .EndRow();
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nAt 0% the arms are identical (failover never fires). From 10% up,\n"
               "foster strictly beats orphan on completed updates and accuracy. At\n"
               "fan-out 2 even foster orphans some clients — a crash cascade can\n"
               "take both edges down at once — while from fan-out 4 up there is\n"
               "almost always a live sibling and failover recovers everything.\n";
  return 0;
}
