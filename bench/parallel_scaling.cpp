// Parallel client-execution scaling: wall-clock per round versus
// num_threads, with the speedup over the sequential path — recorded into
// BENCH_parallel.json (DESIGN.md §12), not just printed.
//
// Two workloads:
//  * a 100-client synchronous trace-driven round (the paper-scale
//    simulation hot loop), and
//  * a real-training round (per-client SGD on MLPs — the compute-bound
//    path where parallelism pays most).
//
// Determinism is asserted on the fly: every thread count must produce the
// same round-accuracy as the num_threads=1 baseline, so this bench doubles
// as a quick invariance smoke test at benchmark scale.
//
// On single-core hosts multi-thread speedups are timesharing artifacts, so
// thread counts above hardware_concurrency are SKIPPED (recorded with
// variant "skipped", speedup 0) rather than measured as noise or failed —
// the bench degrades gracefully instead of lying.
//
// Usage: parallel_scaling [--out DIR] [thread counts...]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/perf_util.h"
#include "src/fl/real_engine.h"

namespace floatfl_bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kSyncRounds = 30;
constexpr size_t kRealRounds = 3;

struct Measurement {
  double seconds = 0.0;
  double final_accuracy = 0.0;
};

Measurement MeasureSync(size_t num_threads) {
  ExperimentConfig config = PaperConfig();
  config.num_clients = 200;
  config.clients_per_round = 100;
  config.rounds = kSyncRounds;
  config.num_threads = num_threads;
  RandomSelector selector(config.seed);
  SyncEngine engine(config, &selector, nullptr);
  const auto start = Clock::now();
  const ExperimentResult result = engine.Run();
  const auto stop = Clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.final_accuracy = result.global_accuracy;
  return m;
}

Measurement MeasureReal(size_t num_threads) {
  RealFlConfig config;
  config.num_clients = 32;
  config.clients_per_round = 16;
  config.num_classes = 6;
  config.input_dim = 24;
  config.hidden_dims = {48, 24};
  config.sgd.epochs = 2;
  config.seed = 42;
  config.num_threads = num_threads;
  RealFlEngine engine(config);
  const auto start = Clock::now();
  RealRoundStats stats;
  for (size_t round = 0; round < kRealRounds; ++round) {
    stats = engine.RunRound(TechniqueKind::kNone);
  }
  const auto stop = Clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.final_accuracy = stats.test_accuracy;
  return m;
}

// Runs one workload across the thread counts, printing the table and
// appending one sample per thread count (work_units = rounds the workload
// runs; speedup = sequential wall over this wall).
void RunScaling(const char* name, const char* case_name, double rounds,
                Measurement (*measure)(size_t), const std::vector<size_t>& thread_counts,
                unsigned hw_threads, std::vector<PerfSample>& out) {
  std::printf("\n== %s ==\n", name);
  std::printf("%-12s %12s %10s %s\n", "num_threads", "seconds", "speedup", "deterministic");
  bool have_base = false;
  double base_seconds = 0.0;
  double base_accuracy = 0.0;
  for (size_t threads : thread_counts) {
    PerfSample sample;
    sample.area = "parallel";
    sample.case_name = case_name;
    sample.scale = "t" + std::to_string(threads);
    sample.work_units = rounds;
    if (threads > 1 && hw_threads > 0 && threads > hw_threads) {
      // Not enough hardware to measure this honestly; skip, don't fail.
      sample.variant = "skipped";
      out.push_back(sample);
      std::printf("%-12zu %12s %10s (skipped: only %u hardware threads)\n", threads, "-", "-",
                  hw_threads);
      continue;
    }
    const Measurement m = measure(threads);
    if (!have_base) {
      have_base = true;
      base_seconds = m.seconds;
      base_accuracy = m.final_accuracy;
    }
    const bool same = m.final_accuracy == base_accuracy;
    sample.variant = "measured";
    sample.wall_seconds = m.seconds;
    sample.speedup = m.seconds > 0.0 ? base_seconds / m.seconds : 0.0;
    sample.peak_rss_mb = PeakRssMb();
    sample.FinalizeRates();
    out.push_back(sample);
    std::printf("%-12zu %12.3f %9.2fx %s\n", threads, m.seconds,
                base_seconds > 0.0 ? base_seconds / m.seconds : 0.0, same ? "yes" : "NO!");
    if (!same) {
      std::fprintf(stderr, "DETERMINISM VIOLATION at num_threads=%zu\n", threads);
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace floatfl_bench

int main(int argc, char** argv) {
  // Pass explicit thread counts as args, e.g. `parallel_scaling 1 2 4 8`.
  std::string out_dir = ".";
  std::vector<size_t> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      thread_counts.push_back(static_cast<size_t>(std::atoll(argv[i])));
    }
  }
  if (thread_counts.empty()) {
    thread_counts = {1, 2, 4, 8};
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", hw);
  if (hw < 8) {
    std::printf("note: fewer than 8 hardware threads; counts above %u are skipped\n", hw);
  }
  std::vector<floatfl_bench::PerfSample> samples;
  floatfl_bench::RunScaling("sync engine, 100-client round", "sync",
                            static_cast<double>(floatfl_bench::kSyncRounds),
                            floatfl_bench::MeasureSync, thread_counts, hw, samples);
  floatfl_bench::RunScaling("real-training engine round", "real",
                            static_cast<double>(floatfl_bench::kRealRounds),
                            floatfl_bench::MeasureReal, thread_counts, hw, samples);
  const std::string path = out_dir + "/BENCH_parallel.json";
  if (!floatfl_bench::WriteJsonFile(path, samples)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu samples)\n", path.c_str(), samples.size());
  return 0;
}
