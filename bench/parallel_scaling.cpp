// Parallel client-execution scaling: wall-clock per round versus
// num_threads, with the speedup over the sequential path.
//
// Two workloads:
//  * a 100-client synchronous trace-driven round (the paper-scale
//    simulation hot loop), and
//  * a real-training round (per-client SGD on MLPs — the compute-bound
//    path where parallelism pays most).
//
// Determinism is asserted on the fly: every thread count must produce the
// same round-accuracy as the num_threads=1 baseline, so this bench doubles
// as a quick invariance smoke test at benchmark scale.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/fl/real_engine.h"

namespace floatfl_bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kSyncRounds = 30;
constexpr size_t kRealRounds = 3;

struct Measurement {
  double seconds = 0.0;
  double final_accuracy = 0.0;
};

Measurement MeasureSync(size_t num_threads) {
  ExperimentConfig config = PaperConfig();
  config.num_clients = 200;
  config.clients_per_round = 100;
  config.rounds = kSyncRounds;
  config.num_threads = num_threads;
  RandomSelector selector(config.seed);
  SyncEngine engine(config, &selector, nullptr);
  const auto start = Clock::now();
  const ExperimentResult result = engine.Run();
  const auto stop = Clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.final_accuracy = result.global_accuracy;
  return m;
}

Measurement MeasureReal(size_t num_threads) {
  RealFlConfig config;
  config.num_clients = 32;
  config.clients_per_round = 16;
  config.num_classes = 6;
  config.input_dim = 24;
  config.hidden_dims = {48, 24};
  config.sgd.epochs = 2;
  config.seed = 42;
  config.num_threads = num_threads;
  RealFlEngine engine(config);
  const auto start = Clock::now();
  RealRoundStats stats;
  for (size_t round = 0; round < kRealRounds; ++round) {
    stats = engine.RunRound(TechniqueKind::kNone);
  }
  const auto stop = Clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.final_accuracy = stats.test_accuracy;
  return m;
}

void RunScaling(const char* name, Measurement (*measure)(size_t),
                const std::vector<size_t>& thread_counts) {
  std::printf("\n== %s ==\n", name);
  std::printf("%-12s %12s %10s %s\n", "num_threads", "seconds", "speedup", "deterministic");
  // Baseline is the first entry; pass 1 first to get speedup over sequential.
  bool have_base = false;
  double base_seconds = 0.0;
  double base_accuracy = 0.0;
  for (size_t threads : thread_counts) {
    const Measurement m = measure(threads);
    if (!have_base) {
      have_base = true;
      base_seconds = m.seconds;
      base_accuracy = m.final_accuracy;
    }
    const bool same = m.final_accuracy == base_accuracy;
    std::printf("%-12zu %12.3f %9.2fx %s\n", threads, m.seconds,
                base_seconds > 0.0 ? base_seconds / m.seconds : 0.0, same ? "yes" : "NO!");
    if (!same) {
      std::fprintf(stderr, "DETERMINISM VIOLATION at num_threads=%zu\n", threads);
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace floatfl_bench

int main(int argc, char** argv) {
  // Pass explicit thread counts as args, e.g. `parallel_scaling 1 2 4 8`.
  std::vector<size_t> thread_counts;
  for (int i = 1; i < argc; ++i) {
    thread_counts.push_back(static_cast<size_t>(std::atoll(argv[i])));
  }
  if (thread_counts.empty()) {
    thread_counts = {1, 2, 4, 8};
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", hw);
  if (hw < 8) {
    std::printf("note: fewer than 8 hardware threads; speedups above %u-way are "
                "timesharing artifacts on this host\n",
                hw);
  }
  floatfl_bench::RunScaling("sync engine, 100-client round", floatfl_bench::MeasureSync,
                            thread_counts);
  floatfl_bench::RunScaling("real-training engine round", floatfl_bench::MeasureReal,
                            thread_counts);
  return 0;
}
