// Design-choice ablations for FLOAT's agent (DESIGN.md §5, supporting the
// paper's RQ2 / RQ5 / RQ6 discussions):
//  * reward shaping: moving-average objectives vs raw instantaneous reward;
//  * learning-rate schedule: dynamic (low -> 1.0) vs fixed;
//  * exploration: count-balanced vs uniform epsilon;
//  * state granularity (RQ5): 3 vs 5 vs 9 bins per runtime-variance metric;
//  * deployment (RQ2): collective aggregator-side table vs per-client local
//    tables.
// All variants run the Figure-6 workload (FEMNIST, dynamic interference,
// FedAvg selection) and report accuracy / dropouts / wasted compute.
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/per_client_controller.h"

using namespace floatfl_bench;

namespace {

std::unique_ptr<FloatController> MakeVariant(const ExperimentConfig& config,
                                             size_t moving_average_window,
                                             double min_learning_rate,
                                             bool balanced_exploration, size_t resource_bins) {
  StateEncoderConfig encoder;
  encoder.include_human_feedback = true;
  encoder.resource_bins = resource_bins;
  RlhfConfig rlhf;
  rlhf.seed = config.seed;
  rlhf.total_rounds = config.rounds;
  rlhf.moving_average_window = moving_average_window;
  rlhf.min_learning_rate = min_learning_rate;
  rlhf.balanced_exploration = balanced_exploration;
  return std::make_unique<FloatController>(encoder, rlhf);
}

void Report(TablePrinter& table, const std::string& name, const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(100.0 * r.accuracy_bottom10, 1)
      .Cell(static_cast<long long>(r.total_dropouts))
      .Cell(r.wasted.compute_hours, 1)
      .EndRow();
}

}  // namespace

int main() {
  std::cout << "FLOAT design ablations (FEMNIST, dynamic interference, FedAvg, 300\n"
               "rounds). 'default' = moving-average reward (window 10), dynamic\n"
               "learning rate, balanced exploration, 5 state bins, collective table.\n\n";
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);

  TablePrinter table({"variant", "acc%", "bottom10%", "dropouts", "waste-comp(h)"});

  {
    auto policy = MakeVariant(config, 10, 0.25, true, 5);
    Report(table, "default", RunSync(config, "fedavg", policy.get()));
  }
  {
    // Raw reward: window 1 disables the moving average (RQ6 first fix).
    auto policy = MakeVariant(config, 1, 0.25, true, 5);
    Report(table, "raw-reward (no moving avg)", RunSync(config, "fedavg", policy.get()));
  }
  {
    // Fixed learning rate: min == max == 1.0 (RQ6 second fix disabled).
    auto policy = MakeVariant(config, 10, 1.0, true, 5);
    Report(table, "fixed lr=1.0", RunSync(config, "fedavg", policy.get()));
  }
  {
    // Uniform exploration instead of count-balanced (RQ6 third fix).
    auto policy = MakeVariant(config, 10, 0.25, false, 5);
    Report(table, "uniform exploration", RunSync(config, "fedavg", policy.get()));
  }
  {
    // RQ5: coarser and finer discretization than the chosen 5 bins.
    auto coarse = MakeVariant(config, 10, 0.25, true, 3);
    Report(table, "3 state bins (coarse)", RunSync(config, "fedavg", coarse.get()));
    auto fine = MakeVariant(config, 10, 0.25, true, 9);
    Report(table, "9 state bins (fine)", RunSync(config, "fedavg", fine.get()));
  }
  {
    // RQ2: per-client local tables (privacy mode) vs the collective table.
    auto per_client = PerClientController::MakeDefault(config.num_clients, config.seed,
                                                       config.rounds);
    Report(table, "per-client tables (RQ2)", RunSync(config, "fedavg", per_client.get()));
    std::cout << "per-client total agent memory: "
              << FormatDouble(static_cast<double>(per_client->TotalMemoryBytes()) /
                                  (1024.0 * 1024.0),
                              2)
              << " MiB across " << config.num_clients << " clients\n\n";
  }
  table.Print(std::cout);
  std::cout << "\nExpected shapes: the default wins or ties every ablation; 3 bins\n"
               "lose information, 9 bins dilute experience (RQ5's 5-bin sweet\n"
               "spot); per-client tables trail the collective table at equal\n"
               "rounds (each client sees only its own feedback).\n";
  return 0;
}
