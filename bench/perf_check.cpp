// Tolerance-checked comparison of two BENCH_*.json trajectory files
// (DESIGN.md §12). CI runs the harness at smoke scale and diffs the fresh
// file against the committed baseline:
//
//   perf_check <baseline.json> <fresh.json> [--wall-tol FRACTION]
//
// Deterministic fields (work_units, sim_seconds, bytes_moved_mb and the
// derived det_rounds_per_sec) must match the baseline exactly — a change
// there means the measured computation itself changed, not the machine.
// wall_seconds may regress by at most the tolerance (default 15%); getting
// faster never fails. Samples present in the baseline but missing from the
// fresh file (or vice versa) fail the check: the trajectory's coverage is
// part of the contract. Every failing field across every sample is reported
// in one run, each with its JSON path into the fresh file ($[index].field),
// so one re-run shows the whole damage instead of the first mismatch. Exit
// 0 = within tolerance, 1 = regression, 2 = bad invocation or
// unreadable/unparseable input.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/perf_util.h"

namespace floatfl_bench {
namespace {

int Main(int argc, char** argv) {
  std::string baseline_path, fresh_path;
  double wall_tol = 0.15;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wall-tol") == 0 && i + 1 < argc) {
      wall_tol = std::atof(argv[++i]);
      if (wall_tol < 0.0) {
        std::cerr << "perf_check: --wall-tol must be non-negative\n";
        return 2;
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "usage: perf_check <baseline.json> <fresh.json> [--wall-tol FRACTION]\n";
    return 2;
  }
  baseline_path = positional[0];
  fresh_path = positional[1];

  std::vector<PerfSample> baseline, fresh;
  std::string error;
  if (!ReadJsonFile(baseline_path, &baseline, &error)) {
    std::cerr << "perf_check: " << baseline_path << ": " << error << "\n";
    return 2;
  }
  if (!ReadJsonFile(fresh_path, &fresh, &error)) {
    std::cerr << "perf_check: " << fresh_path << ": " << error << "\n";
    return 2;
  }

  // Key -> (sample, index in the fresh file's array), so failures can name
  // the exact JSON path of every offending field.
  std::map<std::string, std::pair<PerfSample, size_t>> fresh_by_key;
  for (size_t i = 0; i < fresh.size(); ++i) {
    fresh_by_key[fresh[i].Key()] = {fresh[i], i};
  }

  bool ok = true;
  for (const PerfSample& base : baseline) {
    const auto it = fresh_by_key.find(base.Key());
    if (it == fresh_by_key.end()) {
      std::cerr << "FAIL " << base.Key() << ": missing from " << fresh_path << "\n";
      ok = false;
      continue;
    }
    const PerfSample& got = it->second.first;
    const size_t fresh_index = it->second.second;
    const PerfDiff diff = ComparePerfSamples(base, got, wall_tol);
    if (!diff.ok) {
      std::cerr << "FAIL " << diff.key << ": " << diff.detail << "at";
      for (const std::string& field : diff.failed_fields) {
        std::cerr << " $[" << fresh_index << "]." << field;
      }
      std::cerr << "\n";
      ok = false;
    } else {
      std::cout << "ok   " << diff.key << " (wall " << base.wall_seconds << "s -> "
                << got.wall_seconds << "s)\n";
    }
    fresh_by_key.erase(it);
  }
  for (const auto& [key, entry] : fresh_by_key) {
    std::cerr << "FAIL " << key << ": present in " << fresh_path << " but not in baseline"
              << " at $[" << entry.second << "]\n";
    ok = false;
  }

  if (!ok) {
    std::cerr << "perf_check: " << fresh_path << " regressed against " << baseline_path << "\n";
    return 1;
  }
  std::cout << "perf_check: " << baseline.size() << " samples within tolerance\n";
  return 0;
}

}  // namespace
}  // namespace floatfl_bench

int main(int argc, char** argv) { return floatfl_bench::Main(argc, argv); }
