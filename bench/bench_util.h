// Shared helpers for the per-figure bench binaries.
//
// Each bench regenerates one paper figure/table as text rows. The helpers
// here build the paper's standard experiment configurations, construct
// selectors/policies by name, and format results uniformly.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/core/float_controller.h"
#include "src/core/heuristic_policy.h"
#include "src/fl/async_engine.h"
#include "src/fl/sync_engine.h"
#include "src/selection/oort_selector.h"
#include "src/selection/random_selector.h"
#include "src/selection/refl_selector.h"

namespace floatfl_bench {

using namespace floatfl;

// The paper's Section-6.1 default setup: 200 clients, 30 per round, 300
// rounds, ResNet-34, batch 20, 5 local epochs, Dirichlet alpha 0.1, dynamic
// on-device interference. FedBuff runs 100 concurrent with a buffer of 30.
inline ExperimentConfig PaperConfig(DatasetId dataset = DatasetId::kFemnist,
                                    ModelId model = ModelId::kResNet34, uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_clients = 200;
  config.clients_per_round = 30;
  config.rounds = 300;
  config.epochs = 5;
  config.batch_size = 20;
  config.dataset = dataset;
  config.model = model;
  config.alpha = 0.1;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = seed;
  config.async_concurrency = 100;
  config.async_buffer = 30;
  return config;
}

inline std::unique_ptr<Selector> MakeSelector(const std::string& name,
                                              const ExperimentConfig& config) {
  if (name == "fedavg") {
    return std::make_unique<RandomSelector>(config.seed + 101);
  }
  if (name == "oort") {
    return std::make_unique<OortSelector>(config.seed + 202, config.num_clients);
  }
  if (name == "refl") {
    return std::make_unique<ReflSelector>(config.seed + 303, config.num_clients);
  }
  std::cerr << "unknown selector: " << name << "\n";
  std::abort();
}

// Runs a synchronous experiment with an optional tuning policy.
inline ExperimentResult RunSync(const ExperimentConfig& config, const std::string& selector_name,
                                TuningPolicy* policy) {
  const std::unique_ptr<Selector> selector = MakeSelector(selector_name, config);
  SyncEngine engine(config, selector.get(), policy);
  return engine.Run();
}

// Runs FedBuff (async) with an optional tuning policy.
inline ExperimentResult RunAsync(const ExperimentConfig& config, TuningPolicy* policy) {
  AsyncEngine engine(config, policy);
  return engine.Run();
}

inline void AddResultRow(TablePrinter& table, const std::string& name,
                         const ExperimentResult& r) {
  table.Cell(name)
      .Cell(100.0 * r.accuracy_top10, 1)
      .Cell(100.0 * r.accuracy_avg, 1)
      .Cell(100.0 * r.accuracy_bottom10, 1)
      .Cell(static_cast<long long>(r.total_completed))
      .Cell(static_cast<long long>(r.total_dropouts))
      .Cell(r.wasted.compute_hours, 1)
      .Cell(r.wasted.comm_hours, 2)
      .Cell(r.wasted.memory_tb, 2)
      .EndRow();
}

inline std::vector<std::string> ResultHeaders() {
  return {"system",   "top10%",        "acc%",          "bottom10%",    "completed",
          "dropouts", "waste-comp(h)", "waste-comm(h)", "waste-mem(TB)"};
}

inline double Ratio(double base, double improved) {
  if (improved <= 0.0) {
    return 0.0;
  }
  return base / improved;
}

}  // namespace floatfl_bench

#endif  // BENCH_BENCH_UTIL_H_
