// Figure 5: static optimizations under three interference scenarios.
//
// Top row of the figure: each static technique (including "none") applied to
// every client-round, under no / static / dynamic on-device interference —
// accuracy, successful and dropped client-rounds.
// Bottom row: the pruning configuration sweep (25/50/75 %), showing that the
// best static configuration changes with the scenario (25 % under no
// interference, 75 % under static, 50 % under dynamic, per the paper).
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

void RunScenario(InterferenceScenario scenario) {
  std::cout << "\n--- interference: " << ToString(scenario) << " ---\n";
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.rounds = 200;
  config.interference = scenario;

  TablePrinter table({"technique", "acc%", "bottom10%", "successful", "dropped"});
  for (TechniqueKind kind : AllTechniques()) {
    StaticPolicy policy(kind);
    const ExperimentResult r = RunSync(config, "fedavg", &policy);
    table.Cell(ToString(kind))
        .Cell(100.0 * r.accuracy_avg, 1)
        .Cell(100.0 * r.accuracy_bottom10, 1)
        .Cell(static_cast<long long>(r.total_completed))
        .Cell(static_cast<long long>(r.total_dropouts))
        .EndRow();
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 5: static optimizations vs interference scenarios.\n"
               "Expected shapes: under no interference mild configs (25%) suffice and\n"
               "preserve accuracy; static interference needs aggressive configs (75%)\n"
               "for participation; dynamic interference has no single best static\n"
               "config - the motivation for FLOAT's per-round tuning.\n";
  RunScenario(InterferenceScenario::kNone);
  RunScenario(InterferenceScenario::kStatic);
  RunScenario(InterferenceScenario::kDynamic);
  return 0;
}
