// Figure 4: compute and communication resource variations across the three
// on-device interference scenarios.
//
// For a 200-client population we sample, over 24 simulated hours, the
// effective compute throughput (GFLOP/s after interference) and effective
// bandwidth (Mbps after interference) of every client, and print the
// distribution percentiles per scenario. Expected shapes: "none" has ample
// resources; "static" shifts the whole distribution down; "dynamic" spans
// the widest range (it covers all possibilities, the paper's realistic
// focus).
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"

using namespace floatfl_bench;

namespace {

void RunScenario(InterferenceScenario scenario) {
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.interference = scenario;
  std::vector<Client> clients = BuildPopulation(
      GetDatasetSpec(config.dataset), config.num_clients, config.alpha, scenario, config.seed);

  std::vector<double> compute;
  std::vector<double> bandwidth;
  constexpr double kHorizonS = 24.0 * 3600.0;
  constexpr double kSampleEveryS = 600.0;
  for (Client& client : clients) {
    for (double t = 0.0; t < kHorizonS; t += kSampleEveryS) {
      const ResourceAvailability avail = client.interference().At(t);
      compute.push_back(client.compute().GflopsAt(t) * avail.cpu);
      bandwidth.push_back(client.network().BandwidthMbpsAt(t) * avail.network);
    }
  }

  auto row = [](TablePrinter& table, const std::string& name, std::vector<double>& v) {
    table.Cell(name)
        .Cell(Percentile(v, 5.0), 2)
        .Cell(Percentile(v, 25.0), 2)
        .Cell(Percentile(v, 50.0), 2)
        .Cell(Percentile(v, 75.0), 2)
        .Cell(Percentile(v, 95.0), 2)
        .EndRow();
  };
  std::cout << "\n--- interference: " << ToString(scenario) << " ---\n";
  TablePrinter table({"resource", "p5", "p25", "p50", "p75", "p95"});
  row(table, "effective compute (GFLOP/s)", compute);
  row(table, "effective bandwidth (Mbps)", bandwidth);
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 4: compute and communication resource variations\n"
               "under no / static / dynamic on-device interference.\n";
  RunScenario(InterferenceScenario::kNone);
  RunScenario(InterferenceScenario::kStatic);
  RunScenario(InterferenceScenario::kDynamic);
  return 0;
}
