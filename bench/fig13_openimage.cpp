// Figure 13: performance on the complex OpenImage dataset (1.6M images)
// with ShuffleNet, all other settings as in Figure 12.
//
// Expected shapes: FedAvg picks dropout-prone clients; Oort improves by
// preferring likely finishers; REFL is most vulnerable to dropouts; FedBuff
// matches Oort via over-selection at the cost of resource inefficiency;
// FLOAT improves both accuracy (paper: 8-39%) and resource efficiency,
// especially with FedAvg and FedBuff.
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

int main() {
  std::cout << "Reproduces Figure 13: OpenImage + ShuffleNet end-to-end.\n\n";
  ExperimentConfig config = PaperConfig(DatasetId::kOpenImage, ModelId::kShuffleNetV2);

  TablePrinter table(ResultHeaders());
  for (const std::string selector : {"fedavg", "oort"}) {
    const ExperimentResult base = RunSync(config, selector, nullptr);
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    const ExperimentResult with_float = RunSync(config, selector, controller.get());
    AddResultRow(table, selector, base);
    AddResultRow(table, "FLOAT(" + selector + ")", with_float);
  }
  {
    const ExperimentResult refl = RunSync(config, "refl", nullptr);
    AddResultRow(table, "refl", refl);
  }
  {
    const ExperimentResult base = RunAsync(config, nullptr);
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    const ExperimentResult with_float = RunAsync(config, controller.get());
    AddResultRow(table, "fedbuff", base);
    AddResultRow(table, "FLOAT(fedbuff)", with_float);
  }
  table.Print(std::cout);
  return 0;
}
