// Byzantine robustness: server aggregation rules under a 20% sign-flip
// collusion (DESIGN.md §9).
//
// Part 1 is the ground-truth arm: the real-training engine with a fifth of
// the population submitting reversed, amplified updates, once per
// aggregation rule. Plain FedAvg is dragged away from the optimum; the
// robust rules (coordinate-wise median, trimmed mean, Multi-Krum, norm
// clipping) bound the damage, each with a different exclusion signature.
//
// Part 2 repeats the sweep at paper scale on the trace-driven synchronous
// engine, where the attack acts on contribution qualities and the rules
// apply their quality-space analogues.
#include <iostream>

#include "bench/bench_util.h"
#include "src/fl/real_engine.h"

using namespace floatfl_bench;

namespace {

struct Arm {
  const char* name;
  AggregatorKind kind;
};

constexpr Arm kArms[] = {
    {"fedavg", AggregatorKind::kFedAvg},
    {"median", AggregatorKind::kMedian},
    {"trimmed", AggregatorKind::kTrimmedMean},
    {"krum", AggregatorKind::kKrum},
    {"normclip", AggregatorKind::kNormClip},
};

AggregatorConfig MakeAggregatorConfig(AggregatorKind kind) {
  AggregatorConfig aggregator;
  aggregator.kind = kind;
  aggregator.trim_fraction = 0.3;  // cover up to ~2 attackers per 8-cohort tail
  aggregator.clip_norm = 0.5;
  return aggregator;
}

RealFlConfig RealConfig(AggregatorKind kind) {
  RealFlConfig config;
  config.num_clients = 20;
  config.clients_per_round = 8;
  config.num_classes = 5;
  config.input_dim = 16;
  config.hidden_dims = {24};
  config.test_samples_per_class = 40;
  config.seed = 42;
  config.faults.byzantine_mode = ByzantineMode::kSignFlip;
  config.faults.byzantine_fraction = 0.2;
  config.faults.byzantine_scale = 4.0;
  config.aggregator = MakeAggregatorConfig(kind);
  return config;
}

void RunRealSweep() {
  std::cout << "=== Real training: 20% sign-flip collusion (scale 4), 25 rounds ===\n\n";
  TablePrinter table({"aggregator", "acc%", "byz-updates", "clipped", "krum-rej", "trimmed"});
  for (const Arm& arm : kArms) {
    RealFlEngine engine(RealConfig(arm.kind));
    RealRoundStats stats;
    size_t byzantine = 0;
    for (int round = 0; round < 25; ++round) {
      stats = engine.RunRound(TechniqueKind::kNone);
      byzantine += stats.byzantine_selected;
    }
    const auto& tracker = engine.aggregation_tracker();
    table.Cell(arm.name)
        .Cell(100.0 * stats.test_accuracy, 1)
        .Cell(static_cast<long long>(byzantine))
        .Cell(static_cast<long long>(tracker.TotalClipped()))
        .Cell(static_cast<long long>(tracker.TotalKrumRejections()))
        .Cell(static_cast<long long>(tracker.TotalTrimmed()))
        .EndRow();
  }
  table.Print(std::cout);
}

void RunSurrogateSweep() {
  std::cout << "\n=== Trace-driven sync engine, paper scale, same collusion ===\n\n";
  TablePrinter table({"aggregator", "acc%", "byz-updates", "krum-rej", "winsorized"});
  for (const Arm& arm : kArms) {
    ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
    config.faults.byzantine_mode = ByzantineMode::kSignFlip;
    config.faults.byzantine_fraction = 0.2;
    config.aggregator = MakeAggregatorConfig(arm.kind);
    // Quality space is bounded below, so an excluded honest client costs more
    // than a kept attacker; keep a selection budget that still fires on the
    // post-dropout cohort (~16 of the nominal 30) instead of the conservative
    // n - f - 2 default.
    config.aggregator.multi_krum_m = 16;
    const ExperimentResult r = RunSync(config, "fedavg", nullptr);
    table.Cell(arm.name)
        .Cell(100.0 * r.global_accuracy, 1)
        .Cell(static_cast<long long>(r.byzantine_selected))
        .Cell(static_cast<long long>(r.krum_rejections))
        .Cell(static_cast<long long>(r.updates_trimmed))
        .EndRow();
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Byzantine defense sweep: aggregation rules vs a 20% sign-flip\n"
               "collusion, on real training and at trace-driven paper scale.\n\n";
  RunRealSweep();
  RunSurrogateSweep();
  return 0;
}
