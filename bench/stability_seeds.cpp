// Seed-stability check for the headline comparison (FLOAT vs FedAvg vs the
// heuristic on FEMNIST under dynamic interference): runs the Figure-6 core
// across independent seeds and reports mean +/- stddev of accuracy and
// dropouts, so the claimed ordering is demonstrably not a single-seed
// artifact.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"

using namespace floatfl_bench;

namespace {

constexpr uint64_t kSeeds[] = {42, 1042, 2042, 3042, 4042};

struct Aggregate {
  RunningStat accuracy;
  RunningStat dropouts;
  RunningStat wasted_compute;
};

void Row(TablePrinter& table, const std::string& name, const Aggregate& agg) {
  table.Cell(name)
      .Cell(100.0 * agg.accuracy.Mean(), 1)
      .Cell(100.0 * agg.accuracy.StdDev(), 1)
      .Cell(agg.dropouts.Mean(), 0)
      .Cell(agg.dropouts.StdDev(), 0)
      .Cell(agg.wasted_compute.Mean(), 0)
      .EndRow();
}

}  // namespace

int main() {
  std::cout << "Seed stability of the headline FEMNIST comparison (" << std::size(kSeeds)
            << " seeds, 150 rounds each).\n\n";
  Aggregate fedavg;
  Aggregate heuristic;
  Aggregate with_float;
  for (uint64_t seed : kSeeds) {
    ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34, seed);
    config.rounds = 150;

    const ExperimentResult base = RunSync(config, "fedavg", nullptr);
    fedavg.accuracy.Add(base.accuracy_avg);
    fedavg.dropouts.Add(static_cast<double>(base.total_dropouts));
    fedavg.wasted_compute.Add(base.wasted.compute_hours);

    HeuristicPolicy heuristic_policy(seed + 5);
    const ExperimentResult h = RunSync(config, "fedavg", &heuristic_policy);
    heuristic.accuracy.Add(h.accuracy_avg);
    heuristic.dropouts.Add(static_cast<double>(h.total_dropouts));
    heuristic.wasted_compute.Add(h.wasted.compute_hours);

    auto controller = FloatController::MakeDefault(seed, config.rounds);
    const ExperimentResult f = RunSync(config, "fedavg", controller.get());
    with_float.accuracy.Add(f.accuracy_avg);
    with_float.dropouts.Add(static_cast<double>(f.total_dropouts));
    with_float.wasted_compute.Add(f.wasted.compute_hours);
  }

  TablePrinter table({"system", "acc%-mean", "acc%-std", "dropouts-mean", "dropouts-std",
                      "waste-comp(h)-mean"});
  Row(table, "FedAvg", fedavg);
  Row(table, "Heuristic", heuristic);
  Row(table, "FLOAT", with_float);
  table.Print(std::cout);

  const bool ordering_holds =
      with_float.accuracy.Mean() > heuristic.accuracy.Mean() &&
      heuristic.accuracy.Mean() > fedavg.accuracy.Mean() &&
      with_float.dropouts.Mean() < heuristic.dropouts.Mean() &&
      heuristic.dropouts.Mean() < fedavg.dropouts.Mean();
  std::cout << "\nOrdering FLOAT > Heuristic > FedAvg (accuracy) and FLOAT < Heuristic <\n"
               "FedAvg (dropouts) across seed means: " << (ordering_holds ? "HOLDS" : "VIOLATED")
            << "\n";
  return ordering_holds ? 0 : 1;
}
