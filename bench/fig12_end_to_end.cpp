// Figure 12: end-to-end comparison on FEMNIST, CIFAR10 and Speech.
//
// For each dataset and each baseline client-selection algorithm (FedAvg,
// Oort, REFL synchronous; FedBuff asynchronous) this bench runs the paper's
// standard 200-client / 300-round setup with and without FLOAT attached and
// prints, per system: top-10% / average / bottom-10% client accuracy (first
// row of the figure), completed and dropped client-rounds, and the wasted
// compute / communication / memory from dropouts (second row of the figure).
// REFL is reported without FLOAT only, as in the paper (Section 6.1 explains
// FLOAT is not combined with REFL).
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

void RunDataset(DatasetId dataset, ModelId model) {
  const DatasetSpec& spec = GetDatasetSpec(dataset);
  std::cout << "\n=== Figure 12: " << spec.name << " (" << GetModelProfile(model).name
            << ") ===\n";
  ExperimentConfig config = PaperConfig(dataset, model);

  TablePrinter table(ResultHeaders());

  for (const std::string selector : {"fedavg", "oort"}) {
    const ExperimentResult base = RunSync(config, selector, nullptr);
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    const ExperimentResult with_float = RunSync(config, selector, controller.get());
    AddResultRow(table, selector, base);
    AddResultRow(table, "FLOAT(" + selector + ")", with_float);
  }
  {
    const ExperimentResult refl = RunSync(config, "refl", nullptr);
    AddResultRow(table, "refl", refl);
  }
  {
    const ExperimentResult base = RunAsync(config, nullptr);
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    const ExperimentResult with_float = RunAsync(config, controller.get());
    AddResultRow(table, "fedbuff", base);
    AddResultRow(table, "FLOAT(fedbuff)", with_float);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 12 (accuracy row + inefficiency row) for the three\n"
               "main datasets. Expected shapes: FLOAT improves accuracy and cuts\n"
               "dropouts/waste most for FedAvg and Oort, least for FedBuff and the\n"
               "Speech dataset; REFL has the worst accuracy and bias.\n";
  RunDataset(DatasetId::kFemnist, ModelId::kResNet34);
  RunDataset(DatasetId::kCifar10, ModelId::kResNet34);
  RunDataset(DatasetId::kSpeech, ModelId::kSpeechCnn);
  return 0;
}
