// Figure 8: RLHF agent overhead as the state space grows.
//
// google-benchmark microbenchmarks of the agent's per-decision cost
// (ChooseActionIndex) and per-feedback cost (FeedbackIndexed — the full
// Q-table update with moving-average rewards), plus the memory footprint of
// the learned state, for state counts from the paper's 125-state operating
// point (red line in the figure) up to 10^5 states. Expected shapes: memory
// under 0.2 MB and per-round training time well under a millisecond at the
// operating point; linear growth in states.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/rlhf_agent.h"

using namespace floatfl;

namespace {

// resource_bins^3 states (runtime-variance dimensions only, no HF / global).
RlhfAgent MakeAgent(size_t resource_bins, size_t actions = 8) {
  StateEncoderConfig encoder;
  encoder.include_human_feedback = false;
  encoder.resource_bins = resource_bins;
  RlhfConfig config;
  config.seed = 99;
  return RlhfAgent(encoder, config, actions);
}

void BM_ChooseAction(benchmark::State& state) {
  RlhfAgent agent = MakeAgent(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  size_t round = 0;
  for (auto _ : state) {
    const size_t s = static_cast<size_t>(rng.UniformInt(agent.NumStates()));
    benchmark::DoNotOptimize(agent.ChooseActionIndex(s, round++ % 300));
  }
  state.counters["states"] = static_cast<double>(agent.NumStates());
  state.counters["memory_kb"] = static_cast<double>(agent.MemoryBytes()) / 1024.0;
}

void BM_Feedback(benchmark::State& state) {
  RlhfAgent agent = MakeAgent(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  size_t round = 0;
  for (auto _ : state) {
    const size_t s = static_cast<size_t>(rng.UniformInt(agent.NumStates()));
    const size_t a = static_cast<size_t>(rng.UniformInt(agent.NumActions()));
    agent.FeedbackIndexed(s, a, rng.Bernoulli(0.8), rng.NextDouble() * 0.01, round++ % 300);
  }
  state.counters["states"] = static_cast<double>(agent.NumStates());
  state.counters["memory_kb"] = static_cast<double>(agent.MemoryBytes()) / 1024.0;
}

// One full agent round at the paper's operating point: K decisions + K
// feedbacks for K = 30 participants. The paper reports < 1 ms.
void BM_FullRound(benchmark::State& state) {
  RlhfAgent agent = MakeAgent(5);  // 125 states
  Rng rng(7);
  size_t round = 0;
  for (auto _ : state) {
    for (int k = 0; k < 30; ++k) {
      const size_t s = static_cast<size_t>(rng.UniformInt(agent.NumStates()));
      const size_t a = agent.ChooseActionIndex(s, round % 300);
      agent.FeedbackIndexed(s, a, rng.Bernoulli(0.8), rng.NextDouble() * 0.01, round % 300);
    }
    ++round;
  }
  state.counters["states"] = static_cast<double>(agent.NumStates());
  state.counters["memory_kb"] = static_cast<double>(agent.MemoryBytes()) / 1024.0;
}

}  // namespace

// 5^3=125 (paper operating point), 10^3=1000, 22^3=10648, 46^3=97336.
BENCHMARK(BM_ChooseAction)->Arg(5)->Arg(10)->Arg(22)->Arg(46);
BENCHMARK(BM_Feedback)->Arg(5)->Arg(10)->Arg(22)->Arg(46);
BENCHMARK(BM_FullRound);

BENCHMARK_MAIN();
