// Straggler sweep (DESIGN.md §16): accuracy, wasted compute and dropout
// composition vs mid-round interruption rate, across three arms — the
// all-or-nothing baseline, partial-work salvage, and salvage plus
// speculative re-execution. The recipe behind EXPERIMENTS.md's
// straggler-salvage section: as the interruption rate climbs, the baseline
// forfeits every interrupted client's spend; salvage converts the
// step-weighted partials back into useful work at the same total cost;
// speculation additionally covers predicted deadline misses for a bounded
// (<= max_backup_fraction) over-dispatch.
//
//   straggler [--smoke]
//
// --smoke runs the smallest cell twice with both salvage arms and exits
// non-zero unless the runs are bit-identical — the CI determinism assertion
// for the salvage path.
#include <cstring>
#include <iostream>
#include <string>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

// Arm knobs: interruption pressure via mid-training crashes plus a lossy
// upload link, deadline pressure via dynamic interference (PaperConfig).
ExperimentResult RunArm(double interrupt_prob, bool salvage, bool speculation, size_t rounds,
                        size_t num_clients, size_t cohort) {
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.num_clients = num_clients;
  config.clients_per_round = cohort;
  config.rounds = rounds;
  config.faults.crash_prob = interrupt_prob;
  config.faults.chunk_loss_prob = interrupt_prob / 3.0;
  config.faults.max_transfer_retries = 1;
  config.salvage.enabled = salvage;
  config.salvage.speculation = speculation;
  config.salvage.speculation_margin = 0.0;
  config.salvage.max_backup_fraction = 0.25;
  return RunSync(config, "oort", nullptr);
}

bool Identical(const ExperimentResult& a, const ExperimentResult& b) {
  return a.total_selected == b.total_selected && a.total_completed == b.total_completed &&
         a.global_accuracy == b.global_accuracy && a.accuracy_history == b.accuracy_history &&
         a.partials_salvaged == b.partials_salvaged && a.salvaged_steps == b.salvaged_steps &&
         a.salvaged_progress_mb == b.salvaged_progress_mb &&
         a.backups_planned == b.backups_planned && a.backups_won == b.backups_won &&
         a.backups_redundant == b.backups_redundant &&
         a.deadline_misses_averted == b.deadline_misses_averted &&
         a.wasted.compute_hours == b.wasted.compute_hours &&
         a.wall_clock_hours == b.wall_clock_hours;
}

int SmokeDeterminism() {
  int failures = 0;
  for (const bool speculation : {false, true}) {
    const ExperimentResult a = RunArm(0.3, true, speculation, 15, 60, 12);
    const ExperimentResult b = RunArm(0.3, true, speculation, 15, 60, 12);
    if (!Identical(a, b)) {
      std::cerr << "straggler --smoke: two identical runs diverged (speculation="
                << (speculation ? "on" : "off") << ")\n";
      ++failures;
      continue;
    }
    std::cout << "straggler --smoke: deterministic (speculation=" << (speculation ? "on" : "off")
              << ", " << a.partials_salvaged << " partials salvaged, " << a.backups_planned
              << " backups planned, " << a.deadline_misses_averted << " misses averted)\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return SmokeDeterminism();
  }

  std::cout << "Straggler sweep: FedAvg under mid-round interruptions; the salvage\n"
               "arms recover partial work (and speculate on predicted deadline\n"
               "misses) instead of forfeiting every interrupted client.\n\n";
  TablePrinter table({"interrupt%", "arm", "acc%", "completed", "missed-ddl", "salvaged",
                      "salv steps", "backups", "averted", "waste-comp(h)"});
  for (const double rate : {0.1, 0.3, 0.5}) {
    struct Arm {
      const char* name;
      bool salvage;
      bool speculation;
    };
    for (const Arm& arm : {Arm{"baseline", false, false}, Arm{"salvage", true, false},
                           Arm{"salvage+spec", true, true}}) {
      const ExperimentResult r = RunArm(rate, arm.salvage, arm.speculation, 120, 100, 20);
      table.Cell(100.0 * rate, 0)
          .Cell(arm.name)
          .Cell(100.0 * r.global_accuracy, 1)
          .Cell(static_cast<long long>(r.total_completed))
          .Cell(static_cast<long long>(r.dropout_breakdown.missed_deadline))
          .Cell(static_cast<long long>(r.partials_salvaged))
          .Cell(static_cast<long long>(r.salvaged_steps))
          .Cell(static_cast<long long>(r.backups_planned))
          .Cell(static_cast<long long>(r.deadline_misses_averted))
          .Cell(r.wasted.compute_hours, 1)
          .EndRow();
    }
  }
  table.Print(std::cout);
  std::cout << "\nSalvage converts the interrupted clients' already-spent compute into\n"
               "step-weighted contributions: wasted hours fall and accuracy rises at\n"
               "every interruption rate, most at the heaviest. The speculation arm\n"
               "additionally trades a bounded over-dispatch (<= 25% extra cohort)\n"
               "for fewer missed-deadline dropouts; its wasted hours include the\n"
               "redundant racers, so it pays off where deadline misses — not\n"
               "crashes — dominate the dropout mix.\n";
  return 0;
}
