// Lossy-link sweep: dropout and waste vs chunk-loss rate (DESIGN.md §10).
//
// Sweeps the transport's chunk-loss probability over {0, 2, 5, 10, 20} % and
// runs each point with restart-from-scratch and with resumable uploads,
// printing completed client-rounds, the deadline-loss count
// (missed_deadline + transfer_timed_out), retransmitted and salvaged MB, and
// wall-clock hours. The recipe behind EXPERIMENTS.md's lossy-link section:
// resumable uploads should dominate restart on both dropouts and wasted
// bytes at every non-zero loss rate, with the gap widening as loss grows.
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

ExperimentResult RunLossy(double chunk_loss, bool resumable) {
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.clients_per_round = 20;
  config.rounds = 40;
  config.faults.chunk_loss_prob = chunk_loss;
  config.faults.link_blackout_prob = 0.02;
  config.faults.resumable_uploads = resumable;
  return RunSync(config, "fedavg", nullptr);
}

}  // namespace

int main() {
  std::cout << "Lossy-link sweep: FedAvg, 2% mid-transfer blackouts, chunk loss\n"
               "swept; 'restart' re-uploads from scratch on retry, 'resume'\n"
               "salvages acknowledged chunks.\n\n";
  TablePrinter table({"loss%", "arm", "done", "deadline_losses", "retx_mb", "salvage_mb",
                      "hours"});
  for (const double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    for (const bool resumable : {false, true}) {
      const ExperimentResult r = RunLossy(loss, resumable);
      table.Cell(100.0 * loss, 0)
          .Cell(resumable ? "resume" : "restart")
          .Cell(static_cast<long long>(r.total_completed))
          .Cell(static_cast<long long>(r.dropout_breakdown.missed_deadline +
                                       r.dropout_breakdown.transfer_timed_out))
          .Cell(r.retransmitted_mb, 0)
          .Cell(r.salvaged_mb, 0)
          .Cell(r.wall_clock_hours, 1)
          .EndRow();
    }
  }
  table.Print(std::cout);
  std::cout << "\nAt 0% chunk loss only the rare blackout retries separate the arms;\n"
               "from 2% up, resume strictly beats restart on every column.\n";
  return 0;
}
