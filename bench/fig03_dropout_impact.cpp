// Figure 3: accuracy of client-selection techniques, no-dropouts (ND) vs
// dropouts under practical (dynamic-interference) resource constraints (D).
//
// Section 4.2's experiment: same setup as Figure 2; for each strategy we run
// once pretending every selected client completes (ND) and once for real
// (D), and report Top-10% / average / Bottom-10% client accuracy. Expected
// shapes: every method loses accuracy to dropouts; REFL suffers the most
// (its availability predictions fail under dynamic resources); FedBuff is
// the most resilient (over-selection buffers the losses).
#include <iostream>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

ExperimentConfig MotivationConfig(bool no_dropouts) {
  ExperimentConfig config = PaperConfig(DatasetId::kEmnist, ModelId::kResNet34);
  config.clients_per_round = 20;
  config.alpha = 0.05;
  config.assume_no_dropouts = no_dropouts;
  return config;
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 3: accuracy with no dropouts (ND) vs with dropouts\n"
               "(D) under dynamic interference.\n\n";
  TablePrinter table({"system", "ND-top10%", "ND-avg%", "ND-bot10%", "D-top10%", "D-avg%",
                      "D-bot10%", "avg-drop(pts)"});
  for (const std::string selector : {"fedavg", "oort", "refl"}) {
    const ExperimentResult nd = RunSync(MotivationConfig(true), selector, nullptr);
    const ExperimentResult d = RunSync(MotivationConfig(false), selector, nullptr);
    table.Cell(selector)
        .Cell(100.0 * nd.accuracy_top10, 1)
        .Cell(100.0 * nd.accuracy_avg, 1)
        .Cell(100.0 * nd.accuracy_bottom10, 1)
        .Cell(100.0 * d.accuracy_top10, 1)
        .Cell(100.0 * d.accuracy_avg, 1)
        .Cell(100.0 * d.accuracy_bottom10, 1)
        .Cell(100.0 * (nd.accuracy_avg - d.accuracy_avg), 1)
        .EndRow();
  }
  {
    const ExperimentResult nd = RunAsync(MotivationConfig(true), nullptr);
    const ExperimentResult d = RunAsync(MotivationConfig(false), nullptr);
    table.Cell("fedbuff")
        .Cell(100.0 * nd.accuracy_top10, 1)
        .Cell(100.0 * nd.accuracy_avg, 1)
        .Cell(100.0 * nd.accuracy_bottom10, 1)
        .Cell(100.0 * d.accuracy_top10, 1)
        .Cell(100.0 * d.accuracy_avg, 1)
        .Cell(100.0 * d.accuracy_bottom10, 1)
        .Cell(100.0 * (nd.accuracy_avg - d.accuracy_avg), 1)
        .EndRow();
  }
  table.Print(std::cout);
  return 0;
}
