// Overload sweep (DESIGN.md §15): admitted / shed / folded deliveries,
// wasted communication and final accuracy vs completion-stampede rate,
// ingress queue depth and shedding policy, under a fixed duplicate + replay
// storm. The recipe behind EXPERIMENTS.md's overload section: the ungated
// arm re-processes every redundant delivery (wasted comm grows with the
// stampede rate and the accuracy ceiling sags under stale replays); a
// bounded queue with headroom for the cohort zeroes the waste at full
// accuracy, while an over-tight cap starts shedding originals and pays
// for it in accuracy — the sweep shows where that cliff sits.
//
//   overload [--smoke]
//
// --smoke runs the smallest cell twice and exits non-zero unless the two
// runs are bit-identical — the CI determinism assertion for the admission
// path.
#include <cstring>
#include <iostream>
#include <string>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

ExperimentResult RunStorm(double stampede_prob, size_t queue_capacity, SheddingPolicy policy,
                          size_t rounds) {
  ExperimentConfig config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet34);
  config.num_clients = 80;
  config.clients_per_round = 16;
  config.rounds = rounds;
  config.faults.duplicate_prob = 0.4;
  config.faults.replay_prob = 0.5;
  config.faults.reorder_prob = 0.3;
  config.faults.stampede_prob = stampede_prob;
  config.faults.stampede_factor = 4;
  if (queue_capacity > 0) {
    config.admission.queue_capacity = queue_capacity;
    config.admission.shed_policy = policy;
    config.admission.dedup = true;
    config.admission.dedup_window_rounds = 4;
    config.admission.reject_replays = true;
    config.admission.max_update_age = 0;
  }
  return RunSync(config, "oort", nullptr);
}

const char* PolicyName(SheddingPolicy policy) {
  switch (policy) {
    case SheddingPolicy::kDropNewest:
      return "newest";
    case SheddingPolicy::kDropOldest:
      return "oldest";
    case SheddingPolicy::kDropStalest:
      return "stalest";
    case SheddingPolicy::kUtilityPriority:
      return "utility";
  }
  return "?";
}

int SmokeDeterminism() {
  const ExperimentResult a = RunStorm(0.5, 12, SheddingPolicy::kDropStalest, 15);
  const ExperimentResult b = RunStorm(0.5, 12, SheddingPolicy::kDropStalest, 15);
  if (a.total_completed != b.total_completed || a.global_accuracy != b.global_accuracy ||
      a.admission_admitted != b.admission_admitted ||
      a.admission_deduplicated != b.admission_deduplicated ||
      a.admission_shed != b.admission_shed ||
      a.admission_replay_rejected != b.admission_replay_rejected ||
      a.admission_peak_queue_depth != b.admission_peak_queue_depth ||
      a.redundant_mb != b.redundant_mb || a.wall_clock_hours != b.wall_clock_hours ||
      a.accuracy_history != b.accuracy_history) {
    std::cerr << "overload --smoke: two identical runs diverged\n";
    return 1;
  }
  std::cout << "overload --smoke: deterministic (" << a.admission_admitted << " admitted, "
            << a.admission_deduplicated << " folded, " << a.admission_shed << " shed, "
            << a.admission_replay_rejected << " replays refused)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return SmokeDeterminism();
  }

  std::cout << "Overload sweep: FedAvg under a duplicate/replay storm; stampede rate,\n"
               "ingress queue depth and shedding policy swept. cap=0 is the ungated\n"
               "server (every redundant delivery fully re-processed).\n\n";
  TablePrinter table({"stampede%", "cap", "policy", "admitted", "folded", "shed", "replays",
                      "peakQ", "redund MB", "acc%"});
  for (const double stampede : {0.0, 0.3, 0.6}) {
    // The ungated baseline first, then the gated arms.
    const ExperimentResult ungated = RunStorm(stampede, 0, SheddingPolicy::kDropNewest, 120);
    table.Cell(100.0 * stampede, 0)
        .Cell("off")
        .Cell("-")
        .Cell(static_cast<long long>(ungated.total_completed))
        .Cell(static_cast<long long>(0))
        .Cell(static_cast<long long>(0))
        .Cell(static_cast<long long>(0))
        .Cell(static_cast<long long>(0))
        .Cell(ungated.redundant_mb, 1)
        .Cell(100.0 * ungated.global_accuracy, 1)
        .EndRow();
    for (const size_t cap : {8u, 16u, 32u}) {
      for (const SheddingPolicy policy :
           {SheddingPolicy::kDropNewest, SheddingPolicy::kDropOldest,
            SheddingPolicy::kDropStalest, SheddingPolicy::kUtilityPriority}) {
        const ExperimentResult r = RunStorm(stampede, cap, policy, 120);
        table.Cell(100.0 * stampede, 0)
            .Cell(static_cast<long long>(cap))
            .Cell(PolicyName(policy))
            .Cell(static_cast<long long>(r.admission_admitted))
            .Cell(static_cast<long long>(r.admission_deduplicated))
            .Cell(static_cast<long long>(r.admission_shed))
            .Cell(static_cast<long long>(r.admission_replay_rejected))
            .Cell(static_cast<long long>(r.admission_peak_queue_depth))
            .Cell(r.redundant_mb, 1)
            .Cell(100.0 * r.global_accuracy, 1)
            .EndRow();
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nThe ungated arm's redundant MB grows with the stampede rate and its\n"
               "accuracy sags: stale replays depress the quality the surrogate can\n"
               "sustain. Every gated arm zeroes the redundant re-processing at the\n"
               "doorstep, and any cap with headroom for the cohort (>= 16 here)\n"
               "beats the ungated server outright. An over-tight cap (8) sheds\n"
               "originals and pays in accuracy; with same-round sync arrivals the\n"
               "staleness-blind policies degenerate to drop-newest, so the policy\n"
               "choice only matters once arrivals differ in age or utility.\n";
  return 0;
}
