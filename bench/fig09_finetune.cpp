// Figure 9: reusability of the RLHF agent (RQ3).
//
// Pre-trains FLOAT's agent on FEMNIST + ResNet-18 (200 rounds), then
// transfers it to (a) CIFAR10 + ResNet-18 and (b) CIFAR10 + ResNet-50, and
// compares the fine-tuning reward trajectory against training an agent from
// scratch on the same workload. Expected shapes: the pre-trained agent
// starts with a much higher reward and converges within ~20 rounds, versus
// a slow ramp from scratch — pre-train-then-fine-tune is cheap (RQ3).
#include <iostream>
#include <vector>

#include "bench/bench_util.h"

using namespace floatfl_bench;

namespace {

// Average reward of the agent's feedback stream, grouped per round.
std::vector<double> PerRoundRewards(const RlhfAgent& agent, size_t per_round) {
  const std::vector<double>& history = agent.RewardHistory();
  std::vector<double> rounds;
  for (size_t start = 0; start + per_round <= history.size(); start += per_round) {
    double sum = 0.0;
    for (size_t i = 0; i < per_round; ++i) {
      sum += history[start + i];
    }
    rounds.push_back(sum / static_cast<double>(per_round));
  }
  return rounds;
}

constexpr size_t kSeeds = 5;

// Runs the fine-tune workload for several seeds, from scratch or initialized
// from `pretrained`, and returns the seed-averaged per-round reward curve.
std::vector<double> AveragedCurve(const ExperimentConfig& base_config,
                                  const FloatController* pretrained) {
  std::vector<double> sum;
  for (size_t s = 0; s < kSeeds; ++s) {
    ExperimentConfig config = base_config;
    config.seed = base_config.seed + 1000 * s;
    auto controller = FloatController::MakeDefault(config.seed, config.rounds);
    if (pretrained != nullptr) {
      controller->agent().InitializeFrom(pretrained->agent());
    }
    (void)RunSync(config, "fedavg", controller.get());
    const std::vector<double> curve =
        PerRoundRewards(controller->agent(), config.clients_per_round);
    if (sum.empty()) {
      sum.assign(curve.size(), 0.0);
    }
    for (size_t i = 0; i < sum.size() && i < curve.size(); ++i) {
      sum[i] += curve[i];
    }
  }
  for (auto& v : sum) {
    v /= static_cast<double>(kSeeds);
  }
  return sum;
}

void PrintRewardCurve(const std::string& title, const std::vector<double>& scratch,
                      const std::vector<double>& finetuned) {
  std::cout << "\n" << title << "\n";
  TablePrinter table({"round", "scratch-reward", "finetuned-reward"});
  for (size_t round : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{10}, size_t{15},
                       size_t{20}, size_t{30}, size_t{40}}) {
    if (round > scratch.size() || round > finetuned.size()) {
      break;
    }
    table.Cell(static_cast<long long>(round))
        .Cell(scratch[round - 1], 3)
        .Cell(finetuned[round - 1], 3)
        .EndRow();
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduces Figure 9: RLHF agent reusability. Pre-train on FEMNIST +\n"
               "ResNet-18, fine-tune on CIFAR10 (+ ResNet-50).\n";

  // --- Pre-training phase (FEMNIST, ResNet-18, 200 rounds).
  ExperimentConfig pretrain_config = PaperConfig(DatasetId::kFemnist, ModelId::kResNet18);
  pretrain_config.rounds = 200;
  auto pretrained = FloatController::MakeDefault(pretrain_config.seed, pretrain_config.rounds);
  (void)RunSync(pretrain_config, "fedavg", pretrained.get());
  std::cout << "\nPre-trained agent: avg reward over last 50 feedbacks = "
            << FormatDouble(pretrained->agent().AverageRewardOver(50), 3) << "\n";

  // --- Transfer (a): CIFAR10 + ResNet-34 (the paper's standard model), 40
  // fine-tune rounds, averaged over seeds.
  {
    ExperimentConfig config = PaperConfig(DatasetId::kCifar10, ModelId::kResNet34, /*seed=*/91);
    config.rounds = 40;
    PrintRewardCurve("Transfer (a): CIFAR10 + ResNet-34, per-round average reward (5 seeds)",
                     AveragedCurve(config, nullptr), AveragedCurve(config, pretrained.get()));
  }

  // --- Transfer (b): CIFAR10 + ResNet-50, 40 fine-tune rounds. The paper
  // reports positive rewards ("absolute rewards") within ~20 rounds.
  {
    ExperimentConfig config = PaperConfig(DatasetId::kCifar10, ModelId::kResNet50, /*seed=*/92);
    config.rounds = 40;
    PrintRewardCurve("Transfer (b): CIFAR10 + ResNet-50, per-round average reward (5 seeds)",
                     AveragedCurve(config, nullptr), AveragedCurve(config, pretrained.get()));
  }
  return 0;
}
