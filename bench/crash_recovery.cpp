// Crash-recovery sweep (DESIGN.md §14): supervised runs under stochastic
// process kills, swept over kill rate × checkpoint cadence × ring depth.
// Every cell must converge to the uninterrupted golden bit-for-bit; the
// interesting output is the *cost* of each durability setting — how many
// process lives a run burns, how many rounds get replayed, and how many
// archives the ring writes — as the kill rate climbs and the cadence
// coarsens. The recipe behind EXPERIMENTS.md's crash-recovery section.
//
//   crash_recovery [--smoke]
//
// --smoke runs the smallest cell twice and exits non-zero unless both runs
// converge to the same golden bit-for-bit — the CI determinism assertion
// for the recovery path.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/common/table.h"
#include "src/failure/checkpoint_io.h"
#include "src/fl/sync_engine.h"
#include "src/recovery/checkpoint_ring.h"
#include "src/recovery/crash_plan.h"
#include "src/recovery/run_supervisor.h"
#include "src/selection/random_selector.h"

using namespace floatfl;

namespace {

ExperimentConfig SweepConfig() {
  ExperimentConfig config;
  config.num_clients = 60;
  config.clients_per_round = 12;
  config.rounds = 40;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kResNet34;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 42;
  config.faults.crash_prob = 0.10;  // client-level faults, for realism
  config.num_threads = 1;
  return config;
}

// Serialized engine state minus the trailing RecoveryTracker section — the
// bytes that must match the golden (the tracker legitimately differs: it
// counts the restarts).
std::string TrainingState(const SyncEngine& engine) {
  CheckpointWriter full;
  engine.SaveState(full);
  CheckpointWriter tail;
  engine.recovery_tracker().SaveState(tail);
  return full.buffer().substr(0, full.buffer().size() - tail.buffer().size());
}

void WipeRing(const std::string& dir) {
  CheckpointRing ring(dir, 0);
  ring.SweepTemps();
  for (size_t round : ring.Rounds()) {
    std::remove(ring.PathFor(round).c_str());
  }
  ::rmdir(dir.c_str());
}

struct CellResult {
  size_t lives = 0;
  size_t kills = 0;
  size_t restarts = 0;
  size_t rounds_replayed = 0;
  size_t checkpoints_written = 0;
  size_t checkpoints_failed = 0;
  bool identical = false;
  bool converged = false;
};

// One sweep cell: stochastic soft kills at `kill_prob` per (round, site),
// relaunch-from-ring until the run completes, compare against `golden`.
CellResult RunCell(const ExperimentConfig& config, const std::string& golden,
                   double kill_prob, size_t cadence, size_t ring_depth) {
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = "crash_recovery_ring";
  recovery.checkpoint_every = cadence;
  recovery.ring_depth = ring_depth;
  WipeRing(recovery.dir);

  CrashPlanConfig plan_config;
  plan_config.seed = config.seed;
  plan_config.crash_prob = kill_prob;
  plan_config.short_write_prob = kill_prob / 2.0;  // disk faults ride along
  CrashPlan plan(plan_config);

  CellResult cell;
  constexpr size_t kMaxLives = 500;
  std::unique_ptr<RandomSelector> selector;
  std::unique_ptr<SyncEngine> engine;
  for (; cell.lives < kMaxLives; ++cell.lives) {
    selector = std::make_unique<RandomSelector>(config.seed);
    engine = std::make_unique<SyncEngine>(config, selector.get(), nullptr);
    RunSupervisor<SyncEngine> supervisor(recovery, *engine);
    supervisor.SetCrashPlan(&plan);
    supervisor.Recover();
    if (supervisor.Run(config.rounds) == SupervisedOutcome::kCompleted) {
      ++cell.lives;
      cell.converged = true;
      break;
    }
  }
  if (cell.converged) {
    const RecoveryTracker& tracker = engine->recovery_tracker();
    cell.kills = plan.KillsFired();
    cell.restarts = tracker.Restarts();
    cell.rounds_replayed = tracker.RoundsReplayed();
    cell.checkpoints_written = tracker.CheckpointsWritten();
    cell.checkpoints_failed = tracker.CheckpointsFailed();
    cell.identical = TrainingState(*engine) == golden;
  }
  WipeRing(recovery.dir);
  return cell;
}

std::string GoldenState(const ExperimentConfig& config) {
  RandomSelector selector(config.seed);
  SyncEngine engine(config, &selector, nullptr);
  RunSupervisor<SyncEngine> supervisor(RecoveryConfig{}, engine);
  supervisor.RecoverAndRun(config.rounds);
  return TrainingState(engine);
}

int SmokeDeterminism() {
  ExperimentConfig config = SweepConfig();
  config.rounds = 12;
  const std::string golden = GoldenState(config);
  const CellResult a = RunCell(config, golden, 0.05, 2, 3);
  const CellResult b = RunCell(config, golden, 0.05, 2, 3);
  if (!a.converged || !b.converged || !a.identical || !b.identical ||
      a.lives != b.lives || a.kills != b.kills || a.restarts != b.restarts ||
      a.rounds_replayed != b.rounds_replayed ||
      a.checkpoints_written != b.checkpoints_written) {
    std::cerr << "crash_recovery --smoke: recovery diverged from golden or "
                 "between identical runs\n";
    return 1;
  }
  std::cout << "crash_recovery --smoke: deterministic and bit-identical to the "
               "uninterrupted golden ("
            << a.lives << " lives, " << a.kills << " kills, " << a.rounds_replayed
            << " rounds replayed)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return SmokeDeterminism();
  }

  const ExperimentConfig config = SweepConfig();
  std::cout << "Crash-recovery sweep: FedAvg, " << config.rounds
            << " rounds, stochastic process kills at every crashpoint of the\n"
               "save sequence; each cell relaunches from the checkpoint ring "
               "until the\nrun completes and checks the result against an "
               "uninterrupted golden.\n\n";
  const std::string golden = GoldenState(config);

  TablePrinter table({"kill%", "every", "depth", "lives", "kills", "restarts",
                      "replayed", "saved", "failed", "bit==golden"});
  for (const double kill_prob : {0.02, 0.05, 0.10}) {
    for (const size_t cadence : {2u, 5u, 10u}) {
      for (const size_t depth : {1u, 3u}) {
        const CellResult cell = RunCell(config, golden, kill_prob, cadence, depth);
        table.Cell(100.0 * kill_prob, 0)
            .Cell(static_cast<long long>(cadence))
            .Cell(static_cast<long long>(depth))
            .Cell(static_cast<long long>(cell.lives))
            .Cell(static_cast<long long>(cell.kills))
            .Cell(static_cast<long long>(cell.restarts))
            .Cell(static_cast<long long>(cell.rounds_replayed))
            .Cell(static_cast<long long>(cell.checkpoints_written))
            .Cell(static_cast<long long>(cell.checkpoints_failed))
            .Cell(cell.converged ? (cell.identical ? "yes" : "NO") : "n/a")
            .EndRow();
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nEvery converged cell must say yes: recovery is bit-exact at any\n"
               "kill rate. The cost dial is visible in 'replayed' — a coarser\n"
               "cadence re-runs more rounds per restart — and in 'saved' vs the\n"
               "kill rate: more kills, more lives, more ring churn. Ring depth\n"
               "does not change results (newest-good wins); it buys tolerance\n"
               "to corrupt newest archives, which this sweep's disk faults\n"
               "exercise via short writes.\n";
  return 0;
}
