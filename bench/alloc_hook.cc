// Opt-in counting allocator for the perf harness.
//
// Linking this translation unit replaces the global operator new/delete
// with thin wrappers that bump floatfl_bench::g_perf_alloc_count on every
// allocation. Only the perf binaries link it (see bench/CMakeLists.txt);
// everything else keeps the stock allocator and reads the counter as zero.
// Counting is allocation *events*, not bytes — the harness compares pooled
// vs fresh-allocation round loops, where the event count is the signal.
#include <cstdlib>
#include <new>

#include "bench/perf_util.h"

namespace {

void* CountedAlloc(std::size_t size) {
  floatfl_bench::g_perf_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) {
    size = 1;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocAligned(std::size_t size, std::align_val_t align) {
  floatfl_bench::g_perf_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  size = (size + a - 1) / a * a;
  if (size == 0) {
    size = a;
  }
  void* p = std::aligned_alloc(a, size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  floatfl_bench::g_perf_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  floatfl_bench::g_perf_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
