#include "src/data/dataset.h"

#include <cmath>

#include "src/common/check.h"

namespace floatfl {
namespace {

// Parameters are calibrated to the qualitative properties reported in the
// paper and its referenced benchmarks: FEMNIST converges fast to high
// accuracy, CIFAR10 is harder, OpenImage (1.6M images, ShuffleNet) is the
// heaviest per sample, and Speech has low resource needs and converges fast
// (which is why FLOAT helps it least — Section 6.2).
constexpr size_t kNumSpecs = 5;

const DatasetSpec kSpecs[kNumSpecs] = {
    {DatasetId::kFemnist, "FEMNIST", 62, 140.0, 0.6, 0.82, 1.0 / 62.0, 0.035, 1.0, 32},
    {DatasetId::kCifar10, "CIFAR10", 10, 250.0, 0.5, 0.78, 0.10, 0.025, 1.6, 32},
    {DatasetId::kOpenImage, "OpenImage", 596, 320.0, 0.8, 0.62, 1.0 / 596.0, 0.018, 2.4, 48},
    {DatasetId::kSpeech, "Speech", 35, 110.0, 0.5, 0.86, 1.0 / 35.0, 0.060, 0.45, 24},
    {DatasetId::kEmnist, "EMNIST", 47, 160.0, 0.6, 0.84, 1.0 / 47.0, 0.040, 0.9, 32},
};

}  // namespace

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const auto& spec : kSpecs) {
    if (spec.id == id) {
      return spec;
    }
  }
  FLOATFL_CHECK_MSG(false, "unknown dataset id");
  return kSpecs[0];
}

std::vector<double> ClientShard::LabelDistribution() const {
  std::vector<double> dist(class_counts.size(), 0.0);
  if (total == 0) {
    if (!dist.empty()) {
      const double u = 1.0 / static_cast<double>(dist.size());
      for (auto& d : dist) {
        d = u;
      }
    }
    return dist;
  }
  for (size_t i = 0; i < class_counts.size(); ++i) {
    dist[i] = static_cast<double>(class_counts[i]) / static_cast<double>(total);
  }
  return dist;
}

double LabelDivergence(const ClientShard& shard, const std::vector<double>& global_dist) {
  FLOATFL_CHECK(shard.class_counts.size() == global_dist.size());
  const std::vector<double> local = shard.LabelDistribution();
  double l1 = 0.0;
  for (size_t i = 0; i < local.size(); ++i) {
    l1 += std::fabs(local[i] - global_dist[i]);
  }
  return l1;
}

std::vector<double> GlobalLabelDistribution(const std::vector<ClientShard>& shards) {
  FLOATFL_CHECK(!shards.empty());
  std::vector<double> dist(shards[0].class_counts.size(), 0.0);
  double total = 0.0;
  for (const auto& shard : shards) {
    FLOATFL_CHECK(shard.class_counts.size() == dist.size());
    for (size_t i = 0; i < dist.size(); ++i) {
      dist[i] += static_cast<double>(shard.class_counts[i]);
    }
    total += static_cast<double>(shard.total);
  }
  if (total > 0.0) {
    for (auto& d : dist) {
      d /= total;
    }
  }
  return dist;
}

}  // namespace floatfl
