// Dataset descriptors for the federated workloads used in the paper's
// evaluation, plus heterogeneity metrics over client shards.
//
// The real datasets (FEMNIST, CIFAR10, OpenImage, Google Speech Commands)
// are not shipped; each spec captures the properties that drive the
// simulation — class count, per-sample compute/communication relevance,
// total corpus size, convergence difficulty — and the synthetic generator in
// synthetic.h creates class-conditional data with the same shape for the
// real-training mode.
#ifndef SRC_DATA_DATASET_H_
#define SRC_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

namespace floatfl {

enum class DatasetId {
  kFemnist,
  kCifar10,
  kOpenImage,
  kSpeech,
  kEmnist,
};

struct DatasetSpec {
  DatasetId id;
  std::string name;
  size_t num_classes;
  // Mean/dispersion of per-client sample counts (log-normal).
  double samples_per_client_median;
  double samples_per_client_sigma;
  // Convergence-curve parameters for the surrogate accuracy model.
  double max_accuracy;       // asymptotic accuracy under ideal conditions
  double initial_accuracy;   // round-0 (random guess) accuracy
  double convergence_rate;   // per-effective-round fractional approach
  // Relative per-sample training cost (multiplier over the model's nominal
  // FLOPs/sample; e.g. OpenImage samples are bigger than FEMNIST's).
  double sample_cost_scale;
  // Input dimensionality of the synthetic stand-in for real training.
  size_t synthetic_dim;
};

// Returns the spec for a dataset id. All specs are compile-time constants.
const DatasetSpec& GetDatasetSpec(DatasetId id);

// A client's local shard: how many samples of each class it holds.
struct ClientShard {
  std::vector<size_t> class_counts;
  size_t total = 0;

  size_t NumClasses() const { return class_counts.size(); }
  // Normalized label distribution (all zeros -> uniform).
  std::vector<double> LabelDistribution() const;
};

// L1 distance between the client's label distribution and the global one,
// in [0, 2]. 0 = perfectly IID client.
double LabelDivergence(const ClientShard& shard, const std::vector<double>& global_dist);

// Global label distribution over a population of shards.
std::vector<double> GlobalLabelDistribution(const std::vector<ClientShard>& shards);

}  // namespace floatfl

#endif  // SRC_DATA_DATASET_H_
