#include "src/data/dirichlet.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

std::vector<ClientShard> PartitionDirichlet(const PartitionConfig& config, Rng& rng) {
  FLOATFL_CHECK(config.num_clients > 0);
  FLOATFL_CHECK(config.num_classes > 0);
  FLOATFL_CHECK(config.alpha > 0.0);
  std::vector<ClientShard> shards;
  shards.reserve(config.num_clients);
  for (size_t c = 0; c < config.num_clients; ++c) {
    const double raw = rng.LogNormal(config.samples_median, config.samples_sigma);
    const size_t n = std::max<size_t>(config.min_samples, static_cast<size_t>(raw));
    const std::vector<double> dist = rng.Dirichlet(config.alpha, config.num_classes);
    ClientShard shard;
    shard.class_counts.assign(config.num_classes, 0);
    // Multinomial draw via sequential weighted sampling.
    for (size_t s = 0; s < n; ++s) {
      const size_t k = rng.WeightedIndex(dist);
      ++shard.class_counts[k];
    }
    shard.total = n;
    shards.push_back(std::move(shard));
  }
  return shards;
}

std::vector<ClientShard> PartitionDataset(const DatasetSpec& spec, size_t num_clients,
                                          double alpha, Rng& rng) {
  PartitionConfig config;
  config.num_clients = num_clients;
  config.num_classes = spec.num_classes;
  config.alpha = alpha;
  config.samples_median = spec.samples_per_client_median;
  config.samples_sigma = spec.samples_per_client_sigma;
  return PartitionDirichlet(config, rng);
}

}  // namespace floatfl
