// Synthetic class-conditional data for the real-training mode.
//
// Each class is an anisotropic Gaussian blob in R^dim; a client materializes
// its shard (per dirichlet.h class counts) as actual tensors, so the MLP in
// src/nn trains on genuinely non-IID local data and FedAvg aggregation of
// real weights can be demonstrated end to end.
#ifndef SRC_DATA_SYNTHETIC_H_
#define SRC_DATA_SYNTHETIC_H_

#include <cstddef>
#include <vector>

#include "src/data/dataset.h"
#include "src/nn/tensor.h"

namespace floatfl {

class Rng;

class SyntheticTaskData {
 public:
  // Creates `num_classes` Gaussian class centers in R^dim. `separation`
  // controls task difficulty (distance between centers relative to noise).
  SyntheticTaskData(size_t num_classes, size_t dim, double separation, Rng& rng);

  size_t num_classes() const { return num_classes_; }
  size_t dim() const { return dim_; }

  // Draws one sample of the given class.
  std::vector<float> Sample(size_t cls, Rng& rng) const;

  // Materializes a whole shard: inputs (total x dim) and labels.
  void MaterializeShard(const ClientShard& shard, Rng& rng, Tensor* inputs,
                        std::vector<int>* labels) const;

  // Builds a balanced IID test set of `per_class` samples per class.
  void MakeTestSet(size_t per_class, Rng& rng, Tensor* inputs, std::vector<int>* labels) const;

 private:
  size_t num_classes_;
  size_t dim_;
  double noise_;
  std::vector<std::vector<float>> centers_;
};

}  // namespace floatfl

#endif  // SRC_DATA_SYNTHETIC_H_
