#include "src/data/synthetic.h"

#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

SyntheticTaskData::SyntheticTaskData(size_t num_classes, size_t dim, double separation, Rng& rng)
    : num_classes_(num_classes), dim_(dim), noise_(1.0) {
  FLOATFL_CHECK(num_classes > 0);
  FLOATFL_CHECK(dim > 0);
  FLOATFL_CHECK(separation > 0.0);
  centers_.resize(num_classes_);
  for (auto& center : centers_) {
    center.resize(dim_);
    for (auto& x : center) {
      x = static_cast<float>(rng.Normal(0.0, separation));
    }
  }
}

std::vector<float> SyntheticTaskData::Sample(size_t cls, Rng& rng) const {
  FLOATFL_CHECK(cls < num_classes_);
  std::vector<float> out(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    out[j] = centers_[cls][j] + static_cast<float>(rng.Normal(0.0, noise_));
  }
  return out;
}

void SyntheticTaskData::MaterializeShard(const ClientShard& shard, Rng& rng, Tensor* inputs,
                                         std::vector<int>* labels) const {
  FLOATFL_CHECK(inputs != nullptr && labels != nullptr);
  FLOATFL_CHECK(shard.class_counts.size() == num_classes_);
  *inputs = Tensor(shard.total, dim_);
  labels->clear();
  labels->reserve(shard.total);
  size_t row = 0;
  for (size_t cls = 0; cls < num_classes_; ++cls) {
    for (size_t s = 0; s < shard.class_counts[cls]; ++s) {
      const std::vector<float> x = Sample(cls, rng);
      for (size_t j = 0; j < dim_; ++j) {
        inputs->At(row, j) = x[j];
      }
      labels->push_back(static_cast<int>(cls));
      ++row;
    }
  }
  FLOATFL_CHECK(row == shard.total);
}

void SyntheticTaskData::MakeTestSet(size_t per_class, Rng& rng, Tensor* inputs,
                                    std::vector<int>* labels) const {
  FLOATFL_CHECK(inputs != nullptr && labels != nullptr);
  ClientShard shard;
  shard.class_counts.assign(num_classes_, per_class);
  shard.total = per_class * num_classes_;
  MaterializeShard(shard, rng, inputs, labels);
}

}  // namespace floatfl
