// Dirichlet non-IID partitioner.
//
// Standard FL benchmark practice (Hsu et al. [26]; used throughout the
// paper's motivation and evaluation): each client's label distribution is a
// draw from Dirichlet(alpha); small alpha (0.01–0.1 in the paper) makes
// shards extremely skewed.
#ifndef SRC_DATA_DIRICHLET_H_
#define SRC_DATA_DIRICHLET_H_

#include <cstddef>
#include <vector>

#include "src/data/dataset.h"

namespace floatfl {

class Rng;

struct PartitionConfig {
  size_t num_clients = 0;
  size_t num_classes = 0;
  double alpha = 0.1;
  // Log-normal per-client sample counts.
  double samples_median = 150.0;
  double samples_sigma = 0.5;
  size_t min_samples = 8;
};

// Draws one shard per client: sample count ~ LogNormal, label distribution
// ~ Dirichlet(alpha), class counts multinomial given both.
std::vector<ClientShard> PartitionDirichlet(const PartitionConfig& config, Rng& rng);

// Convenience: partition using a DatasetSpec's population parameters.
std::vector<ClientShard> PartitionDataset(const DatasetSpec& spec, size_t num_clients,
                                          double alpha, Rng& rng);

}  // namespace floatfl

#endif  // SRC_DATA_DIRICHLET_H_
