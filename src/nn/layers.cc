#include "src/nn/layers.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, bool relu, Rng& rng)
    : weights_(Tensor::GlorotUniform(in_dim, out_dim, rng)),
      bias_(1, out_dim),
      grad_w_(in_dim, out_dim),
      grad_b_(1, out_dim),
      relu_(relu) {}

Tensor DenseLayer::Forward(const Tensor& input) {
  FLOATFL_CHECK(input.cols() == weights_.rows());
  last_input_ = input;
  Tensor out = input.MatMul(weights_);
  out.AddRowBroadcast(bias_);
  last_pre_activation_ = out;
  if (relu_) {
    for (auto& x : out.flat()) {
      x = std::max(x, 0.0f);
    }
  }
  return out;
}

Tensor DenseLayer::Backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  if (relu_) {
    FLOATFL_CHECK(grad.SameShape(last_pre_activation_));
    for (size_t i = 0; i < grad.flat().size(); ++i) {
      if (last_pre_activation_.flat()[i] <= 0.0f) {
        grad.flat()[i] = 0.0f;
      }
    }
  }
  grad_w_.AddInPlace(last_input_.TransposedMatMul(grad));
  grad_b_.AddInPlace(grad.ColSum());
  return grad.MatMulTransposed(weights_);
}

void DenseLayer::Step(float lr, bool frozen) {
  if (!frozen) {
    Tensor dw = grad_w_;
    dw.ScaleInPlace(lr);
    weights_.SubInPlace(dw);
    Tensor db = grad_b_;
    db.ScaleInPlace(lr);
    bias_.SubInPlace(db);
  }
  grad_w_ = Tensor(grad_w_.rows(), grad_w_.cols());
  grad_b_ = Tensor(grad_b_.rows(), grad_b_.cols());
}

double SoftmaxXent::Loss(const Tensor& logits, const std::vector<int>& labels, Tensor* probs) {
  FLOATFL_CHECK(logits.rows() == labels.size());
  FLOATFL_CHECK(probs != nullptr);
  *probs = logits;
  double total = 0.0;
  for (size_t i = 0; i < logits.rows(); ++i) {
    float maxv = logits.At(i, 0);
    for (size_t j = 1; j < logits.cols(); ++j) {
      maxv = std::max(maxv, logits.At(i, j));
    }
    double sum = 0.0;
    for (size_t j = 0; j < logits.cols(); ++j) {
      const double e = std::exp(static_cast<double>(logits.At(i, j) - maxv));
      probs->At(i, j) = static_cast<float>(e);
      sum += e;
    }
    for (size_t j = 0; j < logits.cols(); ++j) {
      probs->At(i, j) = static_cast<float>(probs->At(i, j) / sum);
    }
    const int y = labels[i];
    FLOATFL_CHECK(y >= 0 && static_cast<size_t>(y) < logits.cols());
    total += -std::log(std::max(1e-12, static_cast<double>(probs->At(i, y))));
  }
  return total / static_cast<double>(logits.rows());
}

Tensor SoftmaxXent::Gradient(const Tensor& probs, const std::vector<int>& labels) {
  FLOATFL_CHECK(probs.rows() == labels.size());
  Tensor grad = probs;
  const float inv_batch = 1.0f / static_cast<float>(probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    grad.At(i, static_cast<size_t>(labels[i])) -= 1.0f;
  }
  grad.ScaleInPlace(inv_batch);
  return grad;
}

double SoftmaxXent::Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  FLOATFL_CHECK(logits.rows() == labels.size());
  if (logits.rows() == 0) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < logits.rows(); ++i) {
    size_t best = 0;
    for (size_t j = 1; j < logits.cols(); ++j) {
      if (logits.At(i, j) > logits.At(i, best)) {
        best = j;
      }
    }
    if (static_cast<int>(best) == labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

}  // namespace floatfl
