#include "src/nn/optimizer.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

TrainResult TrainSgd(Mlp& model, const Tensor& inputs, const std::vector<int>& labels,
                     const SgdConfig& config, Rng& rng) {
  FLOATFL_CHECK(inputs.rows() == labels.size());
  FLOATFL_CHECK(config.batch_size > 0);
  TrainResult result;
  const size_t n = inputs.rows();
  if (n == 0) {
    return result;
  }
  const size_t dim = inputs.cols();
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<size_t> order = rng.Permutation(n);
    for (size_t start = 0; start < n; start += config.batch_size) {
      if (config.max_steps > 0 && result.batches >= config.max_steps) {
        return result;
      }
      const size_t count = std::min(config.batch_size, n - start);
      Tensor batch(count, dim);
      std::vector<int> batch_labels(count);
      for (size_t b = 0; b < count; ++b) {
        const size_t src = order[start + b];
        for (size_t j = 0; j < dim; ++j) {
          batch.At(b, j) = inputs.At(src, j);
        }
        batch_labels[b] = labels[src];
      }
      result.final_loss = model.TrainBatch(batch, batch_labels,
                                           config.learning_rate, config.frozen_layers);
      ++result.batches;
      result.samples += count;
    }
  }
  return result;
}

}  // namespace floatfl
