// Layers for the miniature training stack: Dense (fully connected) with ReLU
// activations and a softmax cross-entropy head. Enough to train real MLP
// classifiers on the synthetic federated datasets and to give the
// optimization techniques real tensors to transform.
#ifndef SRC_NN_LAYERS_H_
#define SRC_NN_LAYERS_H_

#include <cstddef>
#include <vector>

#include "src/nn/tensor.h"

namespace floatfl {

class Rng;

// Fully connected layer: y = x W + b, with optional ReLU.
class DenseLayer {
 public:
  DenseLayer(size_t in_dim, size_t out_dim, bool relu, Rng& rng);

  // Forward for a batch (batch x in_dim) -> (batch x out_dim). Caches the
  // input and pre-activation needed for Backward.
  Tensor Forward(const Tensor& input);

  // Backward pass: takes dL/dy, accumulates weight/bias gradients and returns
  // dL/dx. Must be called after Forward on the same batch.
  Tensor Backward(const Tensor& grad_output);

  // Applies an SGD step with the given learning rate and clears gradients.
  // If `frozen` is true the parameters are left untouched (partial training).
  void Step(float lr, bool frozen);

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }
  size_t ParamCount() const { return weights_.size() + bias_.size(); }
  bool relu() const { return relu_; }

 private:
  Tensor weights_;  // in_dim x out_dim
  Tensor bias_;     // 1 x out_dim
  Tensor grad_w_;
  Tensor grad_b_;
  Tensor last_input_;
  Tensor last_pre_activation_;
  bool relu_;
};

// Softmax + cross-entropy loss head.
//
// Forward returns per-batch mean loss; Gradient returns dL/dlogits for
// Backward through the network. Labels are class indices.
struct SoftmaxXent {
  // probs is filled with softmax(logits).
  static double Loss(const Tensor& logits, const std::vector<int>& labels, Tensor* probs);
  static Tensor Gradient(const Tensor& probs, const std::vector<int>& labels);
  // Fraction of argmax predictions matching labels.
  static double Accuracy(const Tensor& logits, const std::vector<int>& labels);
};

}  // namespace floatfl

#endif  // SRC_NN_LAYERS_H_
