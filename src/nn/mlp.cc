#include "src/nn/mlp.h"

#include "src/agg/aggregator.h"
#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

Mlp::Mlp(const std::vector<size_t>& dims, Rng& rng) {
  FLOATFL_CHECK(dims.size() >= 2);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool relu = (i + 2 < dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], relu, rng);
  }
}

Tensor Mlp::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer.Forward(x);
  }
  return x;
}

double Mlp::TrainBatch(const Tensor& input, const std::vector<int>& labels, float lr,
                       size_t frozen_layers) {
  FLOATFL_CHECK(frozen_layers <= layers_.size());
  const Tensor logits = Forward(input);
  Tensor probs;
  const double loss = SoftmaxXent::Loss(logits, labels, &probs);
  Tensor grad = SoftmaxXent::Gradient(probs, labels);
  for (size_t i = layers_.size(); i-- > 0;) {
    grad = layers_[i].Backward(grad);
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].Step(lr, /*frozen=*/i < frozen_layers);
  }
  return loss;
}

double Mlp::EvaluateAccuracy(const Tensor& input, const std::vector<int>& labels) {
  return SoftmaxXent::Accuracy(Forward(input), labels);
}

double Mlp::EvaluateLoss(const Tensor& input, const std::vector<int>& labels) {
  Tensor probs;
  return SoftmaxXent::Loss(Forward(input), labels, &probs);
}

size_t Mlp::ParamCount() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.ParamCount();
  }
  return n;
}

std::vector<float> Mlp::GetParameters() const {
  std::vector<float> out;
  out.reserve(ParamCount());
  for (const auto& layer : layers_) {
    const auto& w = layer.weights().flat();
    const auto& b = layer.bias().flat();
    out.insert(out.end(), w.begin(), w.end());
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

void Mlp::SetParameters(const std::vector<float>& params) {
  FLOATFL_CHECK(params.size() == ParamCount());
  size_t pos = 0;
  for (auto& layer : layers_) {
    auto& w = layer.weights().flat();
    for (auto& x : w) {
      x = params[pos++];
    }
    auto& b = layer.bias().flat();
    for (auto& x : b) {
      x = params[pos++];
    }
  }
}

std::vector<float> Mlp::Aggregate(const std::vector<std::vector<float>>& parameter_sets,
                                  const std::vector<double>& weights) {
  return WeightedMeanAggregate(parameter_sets, weights);
}

}  // namespace floatfl
