// Local-training loop: mini-batch SGD over a client's shard, with the knobs
// the FL engine needs (epochs, batch size, learning rate, frozen-layer count
// for partial training).
#ifndef SRC_NN_OPTIMIZER_H_
#define SRC_NN_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "src/nn/mlp.h"
#include "src/nn/tensor.h"

namespace floatfl {

class Rng;

struct SgdConfig {
  float learning_rate = 0.05f;
  size_t batch_size = 20;
  size_t epochs = 1;
  // Number of leading layers excluded from updates (partial training).
  size_t frozen_layers = 0;
  // Stop after this many mini-batch steps across all epochs (0 = unlimited).
  // Models a mid-training interruption for partial-work salvage (DESIGN.md
  // §16): the same shuffled batch sequence is consumed, just cut short, so
  // the first max_steps batches are bit-identical to an uninterrupted run.
  size_t max_steps = 0;
};

struct TrainResult {
  double final_loss = 0.0;
  size_t batches = 0;
  size_t samples = 0;
};

// Runs `config.epochs` shuffled passes over (inputs, labels).
// inputs is (num_samples x dim); labels has num_samples entries.
TrainResult TrainSgd(Mlp& model, const Tensor& inputs, const std::vector<int>& labels,
                     const SgdConfig& config, Rng& rng);

}  // namespace floatfl

#endif  // SRC_NN_OPTIMIZER_H_
