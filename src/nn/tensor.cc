#include "src/nn/tensor.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

Tensor::Tensor(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::FromVector(const std::vector<float>& v) {
  Tensor t(1, v.size());
  t.data_ = v;
  return t;
}

Tensor Tensor::GlorotUniform(size_t rows, size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return t;
}

float& Tensor::At(size_t r, size_t c) {
  FLOATFL_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::At(size_t r, size_t c) const {
  FLOATFL_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Tensor Tensor::MatMul(const Tensor& other) const {
  FLOATFL_CHECK(cols_ == other.rows_);
  Tensor out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const float a = data_[i * cols_ + k];
      if (a == 0.0f) {
        continue;
      }
      const float* brow = &other.data_[k * other.cols_];
      float* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

Tensor Tensor::MatMulTransposed(const Tensor& other) const {
  FLOATFL_CHECK(cols_ == other.cols_);
  Tensor out(rows_, other.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < other.rows_; ++j) {
      float acc = 0.0f;
      const float* arow = &data_[i * cols_];
      const float* brow = &other.data_[j * other.cols_];
      for (size_t k = 0; k < cols_; ++k) {
        acc += arow[k] * brow[k];
      }
      out.data_[i * other.rows_ + j] = acc;
    }
  }
  return out;
}

Tensor Tensor::TransposedMatMul(const Tensor& other) const {
  FLOATFL_CHECK(rows_ == other.rows_);
  Tensor out(cols_, other.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const float* arow = &data_[k * cols_];
    const float* brow = &other.data_[k * other.cols_];
    for (size_t i = 0; i < cols_; ++i) {
      const float a = arow[i];
      if (a == 0.0f) {
        continue;
      }
      float* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  FLOATFL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::SubInPlace(const Tensor& other) {
  FLOATFL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
}

void Tensor::MulInPlace(const Tensor& other) {
  FLOATFL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= other.data_[i];
  }
}

void Tensor::ScaleInPlace(float s) {
  for (auto& x : data_) {
    x *= s;
  }
}

void Tensor::AddRowBroadcast(const Tensor& row) {
  FLOATFL_CHECK(row.rows_ == 1 && row.cols_ == cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      data_[i * cols_ + j] += row.data_[j];
    }
  }
}

Tensor Tensor::ColSum() const {
  Tensor out(1, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out.data_[j] += data_[i * cols_ + j];
    }
  }
  return out;
}

double Tensor::L2Norm() const {
  double acc = 0.0;
  for (float x : data_) {
    acc += static_cast<double>(x) * x;
  }
  return std::sqrt(acc);
}

double Tensor::MaxAbs() const {
  double m = 0.0;
  for (float x : data_) {
    m = std::max(m, std::fabs(static_cast<double>(x)));
  }
  return m;
}

}  // namespace floatfl
