// Minimal dense tensor used by the real training substrate.
//
// The simulator's large-scale experiments use an analytic convergence model,
// but the optimization techniques (quantization, pruning, partial training)
// and FedAvg aggregation are implemented against real weights; this tensor
// backs those implementations and the trainable MLP in src/nn.
#ifndef SRC_NN_TENSOR_H_
#define SRC_NN_TENSOR_H_

#include <cstddef>
#include <vector>

namespace floatfl {

class Rng;

// Row-major 2-D tensor of floats. A vector is represented as 1 x n.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(size_t rows, size_t cols, float fill = 0.0f);

  static Tensor FromVector(const std::vector<float>& v);  // 1 x n
  // Glorot/Xavier-uniform initialization for a (rows x cols) weight matrix.
  static Tensor GlorotUniform(size_t rows, size_t cols, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& At(size_t r, size_t c);
  float At(size_t r, size_t c) const;
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& flat() { return data_; }
  const std::vector<float>& flat() const { return data_; }

  // out = this * other  (matrix product). Dimensions must agree.
  Tensor MatMul(const Tensor& other) const;
  // out = this * other^T.
  Tensor MatMulTransposed(const Tensor& other) const;
  // out = this^T * other.
  Tensor TransposedMatMul(const Tensor& other) const;

  // Element-wise, in place. Shapes must match exactly (AddRowBroadcast
  // broadcasts a 1 x cols row over all rows).
  void AddInPlace(const Tensor& other);
  void SubInPlace(const Tensor& other);
  void MulInPlace(const Tensor& other);
  void ScaleInPlace(float s);
  void AddRowBroadcast(const Tensor& row);

  // Column-wise sum producing 1 x cols.
  Tensor ColSum() const;

  double L2Norm() const;
  double MaxAbs() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace floatfl

#endif  // SRC_NN_TENSOR_H_
