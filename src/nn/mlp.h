// Multi-layer perceptron classifier built from DenseLayers.
//
// Supports everything the FL engine and the optimization techniques need
// from a real model: forward/backward training, flattened parameter
// get/set (FedAvg aggregation, quantization, pruning) and per-layer
// freezing (partial training).
#ifndef SRC_NN_MLP_H_
#define SRC_NN_MLP_H_

#include <cstddef>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/tensor.h"

namespace floatfl {

class Rng;

class Mlp {
 public:
  // dims = {input, hidden..., classes}. All hidden layers use ReLU; the last
  // layer is linear (logits).
  Mlp(const std::vector<size_t>& dims, Rng& rng);

  Tensor Forward(const Tensor& input);

  // One SGD step over a batch. `frozen_layers` freezes the *first* k layers
  // (partial training trains only the top of the network, matching partial
  // training schemes that update a fraction of the model). Returns mean loss.
  double TrainBatch(const Tensor& input, const std::vector<int>& labels, float lr,
                    size_t frozen_layers = 0);

  double EvaluateAccuracy(const Tensor& input, const std::vector<int>& labels);
  double EvaluateLoss(const Tensor& input, const std::vector<int>& labels);

  size_t NumLayers() const { return layers_.size(); }
  size_t ParamCount() const;

  // Flattened parameter vector in a fixed layer order (weights then bias per
  // layer). SetParameters requires the exact same length.
  std::vector<float> GetParameters() const;
  void SetParameters(const std::vector<float>& params);

  DenseLayer& layer(size_t i) { return layers_[i]; }
  const DenseLayer& layer(size_t i) const { return layers_[i]; }

  // Weighted in-place average of parameter vectors (FedAvg aggregation).
  // `weights` must sum to a positive value; models must agree in shape.
  static std::vector<float> Aggregate(const std::vector<std::vector<float>>& parameter_sets,
                                      const std::vector<double>& weights);

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace floatfl

#endif  // SRC_NN_MLP_H_
