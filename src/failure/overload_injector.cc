#include "src/failure/overload_injector.h"

#include <algorithm>

namespace floatfl {

bool OverloadInjector::IsStampede(uint64_t round) const {
  if (!enabled_ || config_.stampede_prob <= 0.0) {
    return false;
  }
  Rng draw = root_.ForkKeyed(Rng::StreamKey(round, 0) ^ kKindStampede);
  return draw.Bernoulli(config_.stampede_prob);
}

size_t OverloadInjector::SlotsThisRound(uint64_t round) const {
  return IsStampede(round) ? std::max<size_t>(1, config_.stampede_factor) : 1;
}

size_t OverloadInjector::CountFiring(uint64_t round, size_t client_id, uint64_t kind,
                                     double prob) const {
  if (prob <= 0.0) {
    return 0;
  }
  Rng draw = root_.ForkKeyed(Rng::StreamKey(round, client_id) ^ kind);
  const size_t slots = SlotsThisRound(round);
  size_t fired = 0;
  for (size_t s = 0; s < slots; ++s) {
    if (draw.Bernoulli(prob)) {
      ++fired;
    }
  }
  return fired;
}

size_t OverloadInjector::DuplicateCopies(uint64_t round, size_t client_id) const {
  if (!enabled_) {
    return 0;
  }
  return CountFiring(round, client_id, kKindDuplicate, config_.duplicate_prob);
}

size_t OverloadInjector::ReplaySlots(uint64_t round, size_t client_id) const {
  if (!enabled_) {
    return 0;
  }
  return CountFiring(round, client_id, kKindReplay, config_.replay_prob);
}

void OverloadInjector::MaybeReorder(uint64_t round, std::vector<size_t>& order) const {
  if (!enabled_ || config_.reorder_prob <= 0.0 || order.size() < 2) {
    return;
  }
  Rng draw = root_.ForkKeyed(Rng::StreamKey(round, 0) ^ kKindReorder);
  if (!draw.Bernoulli(config_.reorder_prob)) {
    return;
  }
  const std::vector<size_t> perm = draw.Permutation(order.size());
  std::vector<size_t> reordered(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    reordered[i] = order[perm[i]];
  }
  order.swap(reordered);
}

}  // namespace floatfl
