#include "src/failure/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace floatfl {
namespace {

// Domain-separation salts so the eligibility, Markov and per-round fault
// streams never collide even for equal (round, client) keys.
constexpr uint64_t kEligibilitySalt = 0x5EED0F17A7B3C9D1ULL;
constexpr uint64_t kFlakySalt = 0x9D2C5680F1E3A7B5ULL;
constexpr uint64_t kFaultSalt = 0xC3A5C85C97CB3127ULL;
constexpr uint64_t kByzantineSalt = 0xB1A5EDC0117D3A70ULL;
constexpr uint64_t kAttackSalt = 0xA77AC4B5D2E9F163ULL;
constexpr uint64_t kInterruptSalt = 0x1F7E2D9B6C4A5E38ULL;

}  // namespace

bool IsValidUpdateQuality(double quality) {
  return std::isfinite(quality) && quality >= 0.0 && quality <= 1.0;
}

double PoisonedQuality(uint32_t corrupt_kind) {
  switch (corrupt_kind % 3) {
    case 0:
      return std::nan("");
    case 1:
      return std::numeric_limits<double>::infinity();
    default:
      return 1e9;  // exploding magnitude, finite but far out of band
  }
}

FaultInjector::FaultInjector(const FaultConfig& config, uint64_t seed, size_t num_clients)
    : config_(config),
      seed_(seed),
      enabled_(config.InjectionEnabled() || config.AttacksEnabled()) {
  FLOATFL_CHECK_MSG(config.crash_prob >= 0.0 && config.crash_prob <= 1.0,
                    "crash_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.corrupt_prob >= 0.0 && config.corrupt_prob <= 1.0,
                    "corrupt_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.flaky_fraction >= 0.0 && config.flaky_fraction <= 1.0,
                    "flaky_fraction must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.byzantine_fraction >= 0.0 && config.byzantine_fraction <= 1.0,
                    "byzantine_fraction must be in [0, 1]");
  if (!enabled_) {
    return;
  }
  flaky_eligible_.assign(num_clients, 0);
  flaky_.assign(num_clients, 0);
  if (config_.flaky_fraction > 0.0) {
    Rng root(seed_ ^ kEligibilitySalt);
    for (size_t id = 0; id < num_clients; ++id) {
      Rng stream = root.ForkKeyed(id);
      flaky_eligible_[id] = stream.NextDouble() < config_.flaky_fraction ? 1 : 0;
    }
  }
  if (config_.AttacksEnabled()) {
    byzantine_eligible_.assign(num_clients, 0);
    const Rng root(seed_ ^ kByzantineSalt);
    for (size_t id = 0; id < num_clients; ++id) {
      Rng stream = root.ForkKeyed(id);
      byzantine_eligible_[id] = stream.NextDouble() < config_.byzantine_fraction ? 1 : 0;
    }
  }
}

void FaultInjector::BeginRound(size_t round) {
  if (!enabled_ || config_.flaky_fraction <= 0.0) {
    return;
  }
  // Advance each eligible client's two-state chain through every round up to
  // and including `round`, one keyed draw per (round, client) — the same
  // trajectory regardless of thread count or of checkpoint boundaries.
  const Rng root(seed_ ^ kFlakySalt);
  for (size_t r = rounds_advanced_; r <= round; ++r) {
    for (size_t id = 0; id < flaky_.size(); ++id) {
      if (!flaky_eligible_[id]) {
        continue;
      }
      Rng stream = root.ForkKeyed(Rng::StreamKey(r, id));
      const double u = stream.NextDouble();
      if (flaky_[id]) {
        if (u < config_.flaky_exit_prob) {
          flaky_[id] = 0;
        }
      } else if (u < config_.flaky_enter_prob) {
        flaky_[id] = 1;
      }
    }
  }
  rounds_advanced_ = round + 1;
}

bool FaultInjector::InBlackout(double now_s) const {
  if (!enabled_ || config_.blackout_period_s <= 0.0 || config_.blackout_duration_s <= 0.0) {
    return false;
  }
  const double phase = std::fmod(now_s, config_.blackout_period_s);
  return phase < config_.blackout_duration_s;
}

FaultDecision FaultInjector::Decide(size_t round, size_t client_id, double now_s) const {
  FaultDecision decision;
  if (!enabled_) {
    return decision;
  }
  decision.blackout = InBlackout(now_s);
  const Rng root(seed_ ^ kFaultSalt);
  Rng stream = root.ForkKeyed(Rng::StreamKey(round, client_id));
  // Fixed draw order keeps every decision a pure function of (seed, round,
  // client), independent of which faults actually fire.
  const double crash_u = stream.NextDouble();
  decision.crash_fraction = stream.Uniform(0.05, 0.95);
  const double corrupt_u = stream.NextDouble();
  decision.corrupt_kind = static_cast<uint32_t>(stream.UniformInt(3));
  double crash_prob = config_.crash_prob;
  if (IsFlaky(client_id)) {
    crash_prob += config_.flaky_crash_prob;
  }
  decision.crash = crash_u < crash_prob;
  decision.corrupt = !decision.crash && corrupt_u < config_.corrupt_prob;
  decision.byzantine = !decision.crash && !decision.corrupt &&
                       round >= config_.byzantine_start_round && IsByzantine(client_id);
  return decision;
}

bool FaultInjector::IsFlakyEligible(size_t client_id) const {
  return client_id < flaky_eligible_.size() && flaky_eligible_[client_id] != 0;
}

bool FaultInjector::IsFlaky(size_t client_id) const {
  return client_id < flaky_.size() && flaky_[client_id] != 0;
}

bool FaultInjector::IsByzantine(size_t client_id) const {
  return client_id < byzantine_eligible_.size() && byzantine_eligible_[client_id] != 0;
}

Rng FaultInjector::AttackRng(size_t round, size_t client_id) const {
  const Rng root(seed_ ^ kAttackSalt);
  return root.ForkKeyed(Rng::StreamKey(round, client_id));
}

double FaultInjector::InterruptionPoint(size_t round, size_t client_id) const {
  const Rng root(seed_ ^ kInterruptSalt);
  Rng stream = root.ForkKeyed(Rng::StreamKey(round, client_id));
  return stream.NextDouble();
}

double FaultInjector::AttackedQuality(double quality, size_t round, size_t client_id) const {
  switch (config_.byzantine_mode) {
    case ByzantineMode::kSignFlip:
      // A worthless contribution that still passes IsValidUpdateQuality —
      // the quality-space shadow of an update crafted to evade validation.
      return 0.0;
    case ByzantineMode::kScaledReplacement:
      // Model replacement's quality-space shadow: a *negative* quality whose
      // magnitude is the amplification factor. The surrogate convergence
      // model turns it into active accuracy damage
      // (SurrogateAccuracyModel::RoundUpdate); robust quality aggregators see
      // an extreme low outlier they can trim.
      return -config_.byzantine_scale;
    case ByzantineMode::kGaussianNoise: {
      Rng rng = AttackRng(round, client_id);
      const double noisy = quality + rng.Normal(0.0, 0.3 * config_.byzantine_scale);
      return std::min(1.0, std::max(0.0, noisy));
    }
    case ByzantineMode::kNone:
    default:
      return quality;
  }
}

void FaultInjector::SaveState(CheckpointWriter& w) const {
  w.Size(rounds_advanced_);
  w.U8Vec(flaky_eligible_);
  w.U8Vec(flaky_);
  w.U8Vec(byzantine_eligible_);
}

bool FaultInjector::LoadState(CheckpointReader& r) {
  rounds_advanced_ = r.Size();
  flaky_eligible_ = r.U8Vec();
  flaky_ = r.U8Vec();
  byzantine_eligible_ = r.U8Vec();
  return r.ok();
}

}  // namespace floatfl
