// Configuration of the deterministic fault model and the server-side
// failure defenses (DESIGN.md §8).
//
// The fault layer sits on top of the benign trace-driven dropout causes
// (offline, OOM, deadline, departure): it injects mid-training crashes,
// periodic network blackouts, Markov two-state "flaky client" episodes and
// corrupted updates. Every draw is keyed by (seed, round, client_id), so
// injection is bit-for-bit thread-count-invariant and resumable. A
// default-constructed FaultConfig disables every fault and every defense —
// the layer is a strict no-op then.
#ifndef SRC_FAILURE_FAULT_CONFIG_H_
#define SRC_FAILURE_FAULT_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace floatfl {

// Adversarial (Byzantine) client behavior. Unlike the benign fault kinds
// above, Byzantine clients complete the round and submit updates crafted to
// *pass* server validation while dragging the aggregate away from the
// optimum — the threat model the robust aggregators (src/agg) defend
// against.
enum class ByzantineMode : uint32_t {
  kNone = 0,
  // Submit g - scale * (p - g): the client's honest delta, reversed and
  // amplified, pointing the aggregate away from descent.
  kSignFlip = 1,
  // Submit g + scale * (p - g): model replacement — the honest delta boosted
  // so a single attacker dominates a plain mean.
  kScaledReplacement = 2,
  // Add N(0, scale) noise to every parameter of the honest update.
  kGaussianNoise = 3,
};

struct FaultConfig {
  // --- Injected client faults -------------------------------------------
  // Per client-round probability of a mid-training process crash. The crash
  // strikes at a seeded uniform fraction of the client's round time; the
  // spend up to that point is charged as waste.
  double crash_prob = 0.0;
  // Per client-round probability of a corrupted update: NaN / Inf /
  // exploding-norm parameters in the real engine, quality-poisoned
  // contributions in the surrogate engines. Corrupted updates complete and
  // are charged full spend; server validation quarantines them.
  double corrupt_prob = 0.0;
  // Periodic network blackout: while blackout_period_s > 0, the window
  // [k * period, k * period + blackout_duration_s) is unreachable for every
  // client (selected clients drop as unavailable; the async engine launches
  // nobody).
  double blackout_period_s = 0.0;
  double blackout_duration_s = 0.0;
  // Markov two-state flaky clients: a seeded flaky_fraction of the
  // population is eligible; eligible clients enter/leave the flaky state
  // with the given per-round probabilities and suffer flaky_crash_prob
  // *additional* crash probability while flaky.
  double flaky_fraction = 0.0;
  double flaky_enter_prob = 0.0;
  double flaky_exit_prob = 0.0;
  double flaky_crash_prob = 0.0;

  // --- Lossy transport (src/net, DESIGN.md §10) -------------------------
  // When the transport layer is active, every model download/upload becomes
  // a chunked transfer integrated over the client's time-varying bandwidth,
  // with per-chunk loss, mid-transfer link blackouts, and retransmission
  // with exponential backoff. All draws are keyed by
  // (seed, round, client, leg, attempt), so transfers are bit-for-bit
  // thread-count invariant and resumable.
  //
  // Force the chunked transport path even with zero loss (useful to study
  // the time-varying-bandwidth effect in isolation). Loss or blackout
  // probabilities > 0 enable it implicitly.
  bool transport = false;
  // Per-chunk probability that a transmitted chunk is lost and must be
  // retransmitted (its wire bytes are charged but not acknowledged).
  double chunk_loss_prob = 0.0;
  // Per-attempt probability that the link blacks out partway through the
  // attempt: chunks past a seeded cut point never transmit and the sender
  // backs off.
  double link_blackout_prob = 0.0;
  // Transfer chunk granularity, MB.
  double transport_chunk_mb = 1.0;
  // Retransmission attempts after the first (exponential backoff with
  // deterministic jitter between attempts). Exhausting them fails the
  // transfer: DropoutReason::kTransferTimedOut.
  size_t max_transfer_retries = 4;
  // Resumable uploads: a retried upload salvages already-acknowledged
  // chunks and pays only the missing tail. Off = restart from scratch.
  // Downloads are always resumable (range requests are free on the
  // serving side).
  bool resumable_uploads = true;

  // --- Adversarial clients ----------------------------------------------
  // Attack crafted by the seeded byzantine_fraction of the population.
  // kNone disables the adversary entirely (strict no-op).
  ByzantineMode byzantine_mode = ByzantineMode::kNone;
  // Fraction of clients that are colluding attackers. Membership is drawn
  // once from the experiment seed (like flaky_fraction) so the same clients
  // attack in every round they participate in — the colluding-fraction
  // model.
  double byzantine_fraction = 0.0;
  // Attack magnitude: the delta amplification for sign-flip / scaled
  // replacement, the noise standard deviation for Gaussian noise.
  double byzantine_scale = 3.0;
  // First round (async: version) at which colluders actually attack; they
  // behave honestly before it. Lets an experiment build a healthy
  // trajectory (and a guard snapshot ring) before the attack lands —
  // matching the "sleeper attacker" threat model. 0 = attack from the
  // start (the exact pre-existing behavior).
  size_t byzantine_start_round = 0;

  // --- Server-overload faults (src/admission, DESIGN.md §15) ------------
  // Ingestion failure modes on the server side of the wire. All draws are
  // keyed (seed, round, client, kind), stateless and thread-count invariant
  // (src/failure/overload_injector.h). All-zero = strict no-op.
  //
  // Per delivered upload: probability that the transport re-delivers it
  // (at-least-once duplicate carrying the same (client, round, attempt) key).
  double duplicate_prob = 0.0;
  // Per client-round: probability that the client's last accepted upload is
  // re-delivered as a stale replay.
  double replay_prob = 0.0;
  // Per round: probability the within-round arrival order is permuted.
  double reorder_prob = 0.0;
  // Completion-stampede episodes: with stampede_prob per round, the
  // duplicate/replay gates draw stampede_factor slots instead of one, so
  // arrivals spike far above ingress-queue capacity.
  double stampede_prob = 0.0;
  size_t stampede_factor = 4;

  // --- Server-side defenses ---------------------------------------------
  // Synchronous over-selection: select ceil(K * overcommit) clients and
  // close the round at the first K valid completions; the abandoned
  // stragglers' spend is charged as waste (DropoutReason::kRejected).
  // 1.0 = exact selection (today's behavior).
  double overcommit = 1.0;
  // Rounds a client that crashed or had an update quarantined is
  // deprioritized by selectors before it may be retried. 0 disables.
  size_t retry_cooldown_rounds = 0;
  // Real-engine update validation: reject uploads whose parameter L2 norm
  // exceeds this (exploding gradients) or that contain non-finite values.
  double reject_norm_threshold = 1e4;
  // Magnitude of the injected exploding-norm corruption in the real engine.
  double corrupt_scale = 1e6;

  // True when any fault can fire. Defenses (overcommit, validation) are
  // governed separately so they also work against naturally bad updates.
  bool InjectionEnabled() const {
    return crash_prob > 0.0 || corrupt_prob > 0.0 ||
           (blackout_period_s > 0.0 && blackout_duration_s > 0.0) ||
           (flaky_fraction > 0.0 && flaky_crash_prob > 0.0);
  }

  // True when engine communication must route through the chunked
  // transport layer instead of the one-shot point-sample cost model.
  bool TransportEnabled() const {
    return transport || chunk_loss_prob > 0.0 || link_blackout_prob > 0.0;
  }

  // True when the server-overload fault side (duplicates, replays,
  // reordering, stampedes) can fire. A stampede alone does nothing — it only
  // multiplies the duplicate/replay draw slots.
  bool OverloadEnabled() const {
    return duplicate_prob > 0.0 || replay_prob > 0.0 || reorder_prob > 0.0;
  }

  // True when the Byzantine adversary can act.
  bool AttacksEnabled() const {
    return byzantine_mode != ByzantineMode::kNone && byzantine_fraction > 0.0 &&
           byzantine_scale > 0.0;
  }
};

}  // namespace floatfl

#endif  // SRC_FAILURE_FAULT_CONFIG_H_
