#include "src/failure/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace floatfl {
namespace {

// Directory part of `path` ("." when the path has no slash), for the
// post-rename directory fsync that makes the new entry itself durable.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

bool WriteAllFd(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool DurableFile::Write(const std::string& path, const std::string& bytes) {
  if (path.empty()) {
    return false;
  }
  // Refuse a target that is a directory up front: the temp would be created
  // and the rename would fail anyway, but failing early keeps the error path
  // free of stray temps.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return false;
  }
  const std::string tmp = path + TempSuffix();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  const bool wrote = WriteAllFd(fd, bytes.data(), bytes.size());
  // The fsync is the durability step: after it returns, the temp's bytes are
  // on stable storage and the rename below can only ever expose a complete
  // archive, never a torn one.
  const bool synced = wrote && ::fsync(fd) == 0;
  if (::close(fd) != 0 || !synced) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the directory entry durable too; best-effort on filesystems that
  // refuse O_DIRECTORY fsync (the rename above is already atomic).
  const int dir_fd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

DurableFile& DefaultDurableFile() {
  static DurableFile instance;
  return instance;
}

}  // namespace floatfl
