#include "src/failure/checkpoint_io.h"

#include <sys/stat.h>

#include <fstream>

#include "src/failure/durable_file.h"

namespace floatfl {

bool CheckpointWriter::WriteFile(const std::string& path) const {
  return WriteFile(path, DefaultDurableFile());
}

bool CheckpointWriter::WriteFile(const std::string& path, DurableFile& io) const {
  return io.Write(path, buf_);
}

bool CheckpointReader::FromFile(const std::string& path, CheckpointReader* out) {
  // Refuse degenerate paths outright: an empty name, or a directory (reading
  // one through ifstream "succeeds" with zero bytes on some libstdc++
  // versions, which would surface as a confusing header mismatch instead of
  // an I/O error).
  struct stat st;
  if (path.empty() || ::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    *out = CheckpointReader("");
    out->ok_ = false;
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *out = CheckpointReader("");
    out->ok_ = false;
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    *out = CheckpointReader("");
    out->ok_ = false;
    return false;
  }
  *out = CheckpointReader(std::move(data));
  return true;
}

}  // namespace floatfl
