#include "src/failure/checkpoint_io.h"

#include <cstdio>
#include <fstream>

namespace floatfl {

bool CheckpointWriter::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool CheckpointReader::FromFile(const std::string& path, CheckpointReader* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *out = CheckpointReader("");
    out->ok_ = false;
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    *out = CheckpointReader("");
    out->ok_ = false;
    return false;
  }
  *out = CheckpointReader(std::move(data));
  return true;
}

}  // namespace floatfl
