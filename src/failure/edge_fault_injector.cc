#include "src/failure/edge_fault_injector.h"

#include "src/common/check.h"

namespace floatfl {
namespace {

// Domain-separation salts so the edge-tier eligibility, Markov, fault and
// attack streams never collide with each other or with the client-tier
// injector's, which keys the same (round, index) coordinate space.
constexpr uint64_t kEdgeEligibilitySalt = 0x452821E638D01377ULL;
constexpr uint64_t kEdgeFlakySalt = 0xBE5466CF34E90C6CULL;
constexpr uint64_t kEdgeFaultSalt = 0xC0AC29B7C97C50DDULL;
constexpr uint64_t kEdgeByzantineSalt = 0x3F84D5B5B5470917ULL;
constexpr uint64_t kEdgeAttackSalt = 0x9216D5D98979FB1BULL;

}  // namespace

EdgeFaultInjector::EdgeFaultInjector(const TopologyConfig& config, uint64_t seed,
                                     size_t num_edges)
    : config_(config),
      seed_(seed),
      enabled_(config.EdgeFaultsEnabled() || config.EdgeAttacksEnabled()) {
  FLOATFL_CHECK_MSG(num_edges == config.num_edges, "edge injector / topology size mismatch");
  if (!enabled_) {
    return;
  }
  flaky_eligible_.assign(num_edges, 0);
  flaky_.assign(num_edges, 0);
  if (config_.edge_flaky_fraction > 0.0) {
    const Rng root(seed_ ^ kEdgeEligibilitySalt);
    for (size_t edge = 0; edge < num_edges; ++edge) {
      Rng stream = root.ForkKeyed(edge);
      flaky_eligible_[edge] = stream.NextDouble() < config_.edge_flaky_fraction ? 1 : 0;
    }
  }
  if (config_.EdgeAttacksEnabled()) {
    byzantine_eligible_.assign(num_edges, 0);
    const Rng root(seed_ ^ kEdgeByzantineSalt);
    for (size_t edge = 0; edge < num_edges; ++edge) {
      Rng stream = root.ForkKeyed(edge);
      byzantine_eligible_[edge] = stream.NextDouble() < config_.edge_byzantine_fraction ? 1 : 0;
    }
  }
}

void EdgeFaultInjector::BeginRound(size_t round) {
  if (!enabled_ || config_.edge_flaky_fraction <= 0.0) {
    return;
  }
  // One keyed draw per (round, edge) per missing round — the same chain
  // trajectory regardless of thread count or checkpoint boundaries.
  const Rng root(seed_ ^ kEdgeFlakySalt);
  for (size_t r = rounds_advanced_; r <= round; ++r) {
    for (size_t edge = 0; edge < flaky_.size(); ++edge) {
      if (!flaky_eligible_[edge]) {
        continue;
      }
      Rng stream = root.ForkKeyed(Rng::StreamKey(r, edge));
      const double u = stream.NextDouble();
      if (flaky_[edge]) {
        if (u < config_.edge_flaky_exit_prob) {
          flaky_[edge] = 0;
        }
      } else if (u < config_.edge_flaky_enter_prob) {
        flaky_[edge] = 1;
      }
    }
  }
  rounds_advanced_ = round + 1;
}

EdgeFaultDecision EdgeFaultInjector::Decide(size_t round, size_t edge) const {
  EdgeFaultDecision decision;
  if (!enabled_) {
    return decision;
  }
  const Rng root(seed_ ^ kEdgeFaultSalt);
  Rng stream = root.ForkKeyed(Rng::StreamKey(round, edge));
  // Fixed draw order keeps every decision a pure function of (seed, round,
  // edge), independent of which faults actually fire.
  const double crash_u = stream.NextDouble();
  const double blackout_u = stream.NextDouble();
  double crash_prob = config_.edge_crash_prob;
  if (IsFlaky(edge)) {
    crash_prob += config_.edge_flaky_crash_prob;
  }
  decision.crash = crash_u < crash_prob;
  decision.blackout = !decision.crash && blackout_u < config_.edge_blackout_prob;
  // A down edge forwards nothing, so there is nothing to tamper with.
  decision.byzantine = !decision.crash && !decision.blackout && IsByzantineEdge(edge);
  return decision;
}

bool EdgeFaultInjector::IsFlakyEligible(size_t edge) const {
  return edge < flaky_eligible_.size() && flaky_eligible_[edge] != 0;
}

bool EdgeFaultInjector::IsFlaky(size_t edge) const {
  return edge < flaky_.size() && flaky_[edge] != 0;
}

bool EdgeFaultInjector::IsByzantineEdge(size_t edge) const {
  return edge < byzantine_eligible_.size() && byzantine_eligible_[edge] != 0;
}

Rng EdgeFaultInjector::AttackRng(size_t round, size_t edge) const {
  const Rng root(seed_ ^ kEdgeAttackSalt);
  return root.ForkKeyed(Rng::StreamKey(round, edge));
}

double EdgeFaultInjector::TamperedQuality(double quality, size_t round, size_t edge) const {
  switch (config_.edge_byzantine_mode) {
    case ByzantineMode::kSignFlip:
      // Worthless but inside the [0, 1] validation band: slips past the
      // root's range check; only a robust root aggregation rule limits it.
      return 0.0;
    case ByzantineMode::kScaledReplacement:
      // Blatant replacement: negative, far out of band — the root's
      // IsValidUpdateQuality re-validation rejects the forwarded
      // contribution (a tampered-partial rejection).
      return -config_.edge_byzantine_scale * (quality + 1.0);
    case ByzantineMode::kGaussianNoise: {
      // Deliberately NOT re-clamped into [0, 1]: large excursions get caught
      // by the root validation, small ones slip through as in-band noise.
      Rng rng = AttackRng(round, edge);
      return quality + rng.Normal(0.0, 0.3 * config_.edge_byzantine_scale);
    }
    case ByzantineMode::kNone:
    default:
      return quality;
  }
}

void EdgeFaultInjector::SaveState(CheckpointWriter& w) const {
  w.Size(rounds_advanced_);
  w.U8Vec(flaky_eligible_);
  w.U8Vec(flaky_);
  w.U8Vec(byzantine_eligible_);
}

bool EdgeFaultInjector::LoadState(CheckpointReader& r) {
  rounds_advanced_ = r.Size();
  flaky_eligible_ = r.U8Vec();
  flaky_ = r.U8Vec();
  byzantine_eligible_ = r.U8Vec();
  return r.ok();
}

}  // namespace floatfl
