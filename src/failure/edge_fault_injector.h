// Deterministic fault injection for the edge-aggregator tier (DESIGN.md
// §13), mirroring the client-tier FaultInjector contract.
//
// Every draw comes from a stream keyed by (seed, round, edge) via
// Rng::ForkKeyed — never from an advancing shared stream — so an edge fault
// decision depends only on the experiment seed and the (round, edge)
// coordinate: not on thread count, not on how many client faults fired, and
// not on where a checkpoint boundary fell. Decide() is const; the only
// mutable state is the per-edge Markov flaky vector, advanced once per round
// from sequential code and serialized into checkpoints.
#ifndef SRC_FAILURE_EDGE_FAULT_INJECTOR_H_
#define SRC_FAILURE_EDGE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"
#include "src/topology/topology_config.h"

namespace floatfl {

// Outcome of the fault draws for one (round, edge) coordinate.
struct EdgeFaultDecision {
  // The edge process dies: its cohort fails over (or orphans) and the edge
  // cools down before rejoining.
  bool crash = false;
  // Transient outage: same in-round effect, no cooldown.
  bool blackout = false;
  // The edge tampers with the partial aggregate it forwards this round.
  bool byzantine = false;
};

class EdgeFaultInjector {
 public:
  // Disabled injector: never fires, BeginRound is a no-op.
  EdgeFaultInjector() = default;
  EdgeFaultInjector(const TopologyConfig& config, uint64_t seed, size_t num_edges);

  bool enabled() const { return enabled_; }

  // Advances the per-edge flaky Markov chains to `round`. Call once at the
  // start of each round, from sequential code. Safe with non-consecutive
  // rounds after a resume (one (round, edge)-keyed draw per missing round).
  void BeginRound(size_t round);

  // Pure draw for one (round, edge): thread-safe, order-independent.
  EdgeFaultDecision Decide(size_t round, size_t edge) const;

  bool IsFlakyEligible(size_t edge) const;
  bool IsFlaky(size_t edge) const;

  // True when edge attacks are configured and `edge` belongs to the seeded
  // tampering fraction (drawn once at construction). Byzantine edges tamper
  // in every round they are up.
  bool IsByzantineEdge(size_t edge) const;

  // Independent per-(round, edge) stream for tampering randomness.
  Rng AttackRng(size_t round, size_t edge) const;

  // Quality-space tampering for the surrogate engines, applied to each
  // forwarded contribution quality of a Byzantine edge's partial: sign-flip
  // zeroes the quality (worthless but in-band — only a robust root rule
  // limits it), scaled replacement forwards a negative quality of magnitude
  // edge_byzantine_scale * q (out of band — the root's range validation
  // rejects it), Gaussian noise perturbs without re-clamping (sometimes out
  // of band, sometimes slipping through).
  double TamperedQuality(double quality, size_t round, size_t edge) const;

  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  TopologyConfig config_;
  uint64_t seed_ = 0;
  bool enabled_ = false;
  // Next round BeginRound expects (chains advanced up to rounds_advanced_).
  size_t rounds_advanced_ = 0;
  std::vector<uint8_t> flaky_eligible_;
  std::vector<uint8_t> flaky_;
  std::vector<uint8_t> byzantine_eligible_;
};

}  // namespace floatfl

#endif  // SRC_FAILURE_EDGE_FAULT_INJECTOR_H_
