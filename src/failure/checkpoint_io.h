// Bit-exact binary archive for checkpoint/resume.
//
// Checkpoints must restore an experiment to the *identical* process state —
// the resume contract is bit-for-bit equality with an uninterrupted run — so
// the archive stores doubles and floats as their raw IEEE-754 bit patterns
// (no text round-tripping) and every integer as a fixed-width
// little-endian-on-write value. The writer accumulates into a memory buffer
// and flushes to disk atomically (write temp, rename); the reader validates
// length on every primitive and latches a failure flag instead of throwing,
// so a truncated or corrupted checkpoint is reported, never trusted.
#ifndef SRC_FAILURE_CHECKPOINT_IO_H_
#define SRC_FAILURE_CHECKPOINT_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace floatfl {

class DurableFile;

class CheckpointWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Size(size_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void F32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U32(bits);
  }

  void F64Vec(const std::vector<double>& v) {
    Size(v.size());
    for (double x : v) F64(x);
  }
  void F32Vec(const std::vector<float>& v) {
    Size(v.size());
    for (float x : v) F32(x);
  }
  void SizeVec(const std::vector<size_t>& v) {
    Size(v.size());
    for (size_t x : v) Size(x);
  }
  void U32Vec(const std::vector<uint32_t>& v) {
    Size(v.size());
    for (uint32_t x : v) U32(x);
  }
  void U8Vec(const std::vector<uint8_t>& v) {
    Size(v.size());
    for (uint8_t x : v) U8(x);
  }
  void BoolVec(const std::vector<bool>& v) {
    Size(v.size());
    for (bool x : v) Bool(x);
  }
  // Length-prefixed byte string; carries nested archive blobs (the guard's
  // snapshot ring stores whole serialized states as opaque payloads).
  void Str(const std::string& s) {
    Size(s.size());
    buf_.append(s);
  }

  const std::string& buffer() const { return buf_; }

  // Crash-consistent file write (fsync'd temp + rename + directory fsync,
  // src/failure/durable_file.h). Returns false on any I/O failure — an empty
  // path, an unwritable or missing parent directory, a directory as the
  // target, a short write — without ever leaving a partial final file. The
  // second overload routes the bytes through an injected writer so tests can
  // tear the write or kill the process at named crashpoints.
  bool WriteFile(const std::string& path) const;
  bool WriteFile(const std::string& path, DurableFile& io) const;

 private:
  void Raw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.append(c, n);
  }
  std::string buf_;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(std::string data) : buf_(std::move(data)) {}

  // Reads an entire file into a reader. Returns false if the file cannot be
  // read; the reader is left failed in that case.
  static bool FromFile(const std::string& path, CheckpointReader* out);

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  size_t Size() { return static_cast<size_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  float F32() {
    const uint32_t bits = U32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::vector<double> F64Vec() { return Vec<double>(&CheckpointReader::F64); }
  std::vector<float> F32Vec() { return Vec<float>(&CheckpointReader::F32); }
  std::vector<size_t> SizeVec() { return Vec<size_t>(&CheckpointReader::Size); }
  std::vector<uint32_t> U32Vec() { return Vec<uint32_t>(&CheckpointReader::U32); }
  std::vector<uint8_t> U8Vec() { return Vec<uint8_t>(&CheckpointReader::U8); }
  std::vector<bool> BoolVec() {
    const size_t n = SaneCount();
    std::vector<bool> v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok(); ++i) v.push_back(Bool());
    return v;
  }
  std::string Str() {
    const size_t n = SaneCount();
    std::string s;
    if (!ok_ || n == 0) return s;
    s.assign(buf_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  // True while every read so far stayed in bounds.
  bool ok() const { return ok_; }
  // True when the payload was consumed exactly (call after the last field).
  bool AtEnd() const { return ok_ && pos_ == buf_.size(); }

 private:
  void Raw(void* p, size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  // Element count with an overrun guard: a corrupted length field cannot ask
  // for more elements than bytes remaining.
  size_t SaneCount() {
    const size_t n = Size();
    if (n > buf_.size() - std::min(pos_, buf_.size())) {
      ok_ = false;
      return 0;
    }
    return n;
  }
  template <typename T>
  std::vector<T> Vec(T (CheckpointReader::*read)()) {
    const size_t n = SaneCount();
    std::vector<T> v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok(); ++i) v.push_back((this->*read)());
    return v;
  }

  std::string buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace floatfl

#endif  // SRC_FAILURE_CHECKPOINT_IO_H_
