// Deterministic, seeded fault injection layered on the trace-driven
// simulator (DESIGN.md §8).
//
// All randomness is drawn from streams keyed by (seed, round, client_id)
// via Rng::ForkKeyed, never from an advancing shared stream, so a fault
// decision depends only on the experiment seed and the (round, client)
// coordinate — not on thread count, scheduling, or how many other faults
// fired. Decide() is const and touches no mutable state, making it safe to
// call from the engines' parallel client fan-out. The only mutable state is
// the per-client Markov flaky vector, advanced once per round in the
// engines' sequential phase and serialized into checkpoints.
#ifndef SRC_FAILURE_FAULT_INJECTOR_H_
#define SRC_FAILURE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"
#include "src/failure/fault_config.h"

namespace floatfl {

// Outcome of the fault draws for one (round, client) coordinate.
struct FaultDecision {
  // The server cannot reach the client at all (network blackout window).
  bool blackout = false;
  // The client process dies mid-round, at crash_fraction of its round time.
  bool crash = false;
  double crash_fraction = 0.5;
  // The client completes but its update is corrupted.
  bool corrupt = false;
  // 0 = NaN values, 1 = Inf values, 2 = exploding norm.
  uint32_t corrupt_kind = 0;
  // The client is a colluding Byzantine attacker this round: it completes,
  // passes validation, and submits a crafted update (FaultConfig
  // byzantine_*). Mutually exclusive with crash/corrupt — those faults
  // pre-empt the attack.
  bool byzantine = false;
};

// Server-side update validation (quarantine). A contribution quality is
// valid when finite and within the physically meaningful [0, 1] band the
// surrogate engines produce; poisoned qualities fall far outside it.
bool IsValidUpdateQuality(double quality);
// The poisoned quality value a corrupted surrogate update carries.
double PoisonedQuality(uint32_t corrupt_kind);

class FaultInjector {
 public:
  // Disabled injector: never fires, BeginRound is a no-op.
  FaultInjector() = default;
  FaultInjector(const FaultConfig& config, uint64_t seed, size_t num_clients);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }

  // Advances the per-client flaky Markov chains to `round`. Call once at the
  // start of each round/aggregation, from sequential code. Safe to call with
  // non-consecutive rounds after a resume (the chain is advanced per missing
  // round, each with its own (round, client)-keyed draw).
  void BeginRound(size_t round);

  // True while `now_s` falls inside a configured blackout window.
  bool InBlackout(double now_s) const;

  // Pure draw for one (round, client): thread-safe, order-independent.
  // `now_s` feeds the blackout check.
  FaultDecision Decide(size_t round, size_t client_id, double now_s) const;

  bool IsFlakyEligible(size_t client_id) const;
  bool IsFlaky(size_t client_id) const;

  // True when attacks are configured and `client_id` belongs to the seeded
  // colluding fraction (drawn once at construction, like flaky
  // eligibility). Colluders attack in every round they complete.
  bool IsByzantine(size_t client_id) const;

  // Independent per-(round, client) stream for attack randomness (Gaussian
  // noise). Keyed like Decide()'s draws, so attacks are thread-count
  // invariant and survive checkpoint/resume.
  Rng AttackRng(size_t round, size_t client_id) const;

  // Interruption-point draw for graceful degradation (DESIGN.md §16): where
  // inside its local work a client was when an injected fault cut it short,
  // as a fraction in [0, 1). Drawn from its own salted (round, client) key —
  // independent of Decide()'s fixed draw sequence — so the salvage layer can
  // consult it only when armed without perturbing any other stream. Pure and
  // const: safe to call from the sequential phase of any engine.
  double InterruptionPoint(size_t round, size_t client_id) const;

  // Quality-space attack for the surrogate engines: sign-flip submits a
  // worthless-but-valid contribution (quality 0, inside the [0, 1]
  // validation band), scaled replacement submits a negative quality of
  // magnitude byzantine_scale (active poisoning pressure the surrogate
  // convergence model converts into accuracy damage), Gaussian noise
  // perturbs the honest quality and clamps back into the band.
  double AttackedQuality(double quality, size_t round, size_t client_id) const;

  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  FaultConfig config_;
  uint64_t seed_ = 0;
  bool enabled_ = false;
  // Next round BeginRound expects (chains advanced up to rounds_advanced_).
  size_t rounds_advanced_ = 0;
  std::vector<uint8_t> flaky_eligible_;
  std::vector<uint8_t> flaky_;
  std::vector<uint8_t> byzantine_eligible_;
};

}  // namespace floatfl

#endif  // SRC_FAILURE_FAULT_INJECTOR_H_
