// Deterministic server-overload fault injection (DESIGN.md §15).
//
// Models the ingestion failure modes a healthy-client fault model misses:
// at-least-once duplicate delivery (the transport re-delivers an upload the
// server already has), replayed stale uploads (a retransmit buffer pushes a
// past round's update again), within-round arrival reordering, and
// completion-stampede episodes that multiply the duplicate/replay draw slots
// so arrivals spike far above queue capacity. Every draw forks a keyed
// stream from a never-advanced root — (round, client, kind)-addressed — so
// injection is stateless, bit-for-bit thread-count invariant, and needs no
// checkpoint state of its own.
#ifndef SRC_FAILURE_OVERLOAD_INJECTOR_H_
#define SRC_FAILURE_OVERLOAD_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/failure/fault_config.h"

namespace floatfl {

class OverloadInjector {
 public:
  // Per-subsystem salt so overload draws never collide with the client
  // fault injector or transport streams sharing the experiment seed.
  static constexpr uint64_t kOverloadSeedSalt = 0x8F1D96A5C3E07B42ULL;

  OverloadInjector() = default;
  OverloadInjector(const FaultConfig& config, uint64_t seed)
      : config_(config), root_(seed ^ kOverloadSeedSalt), enabled_(config.OverloadEnabled()) {}

  bool enabled() const { return enabled_; }

  // True when this round is a completion-stampede episode: the duplicate and
  // replay gates below draw stampede_factor slots instead of one.
  bool IsStampede(uint64_t round) const;

  // Number of extra at-least-once copies of a delivered upload (0 = none).
  size_t DuplicateCopies(uint64_t round, size_t client_id) const;

  // Number of replay slots firing for this client this round; each firing
  // slot re-delivers the client's last accepted upload.
  size_t ReplaySlots(uint64_t round, size_t client_id) const;

  // Applies this round's reorder draw to the arrival order (identity when
  // the draw does not fire).
  void MaybeReorder(uint64_t round, std::vector<size_t>& order) const;

 private:
  // Kind salts keep the per-(round, client) streams of the four draw kinds
  // decorrelated.
  static constexpr uint64_t kKindDuplicate = 0x9E3779B97F4A7C15ULL;
  static constexpr uint64_t kKindReplay = 0xC2B2AE3D27D4EB4FULL;
  static constexpr uint64_t kKindStampede = 0x165667B19E3779F9ULL;
  static constexpr uint64_t kKindReorder = 0x27D4EB2F165667C5ULL;

  size_t SlotsThisRound(uint64_t round) const;
  size_t CountFiring(uint64_t round, size_t client_id, uint64_t kind, double prob) const;

  FaultConfig config_;
  Rng root_;
  bool enabled_ = false;
};

}  // namespace floatfl

#endif  // SRC_FAILURE_OVERLOAD_INJECTOR_H_
