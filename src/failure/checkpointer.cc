#include "src/failure/checkpointer.h"

#include "src/failure/checkpoint_io.h"
#include "src/failure/durable_file.h"
#include "src/fl/async_engine.h"
#include "src/fl/real_engine.h"
#include "src/fl/sync_engine.h"
#include "src/fl/vfl_engine.h"

namespace floatfl {
namespace {

// FNV-1a over a serialized field buffer: stable across runs and platforms
// of the same endianness (the archive is raw little-endian on x86/ARM).
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void WriteFaultConfig(CheckpointWriter& w, const FaultConfig& f) {
  w.F64(f.crash_prob);
  w.F64(f.corrupt_prob);
  w.F64(f.blackout_period_s);
  w.F64(f.blackout_duration_s);
  w.F64(f.flaky_fraction);
  w.F64(f.flaky_enter_prob);
  w.F64(f.flaky_exit_prob);
  w.F64(f.flaky_crash_prob);
  w.F64(f.overcommit);
  w.Size(f.retry_cooldown_rounds);
  w.F64(f.reject_norm_threshold);
  w.F64(f.corrupt_scale);
  w.U32(static_cast<uint32_t>(f.byzantine_mode));
  w.F64(f.byzantine_fraction);
  w.F64(f.byzantine_scale);
  w.Bool(f.transport);
  w.F64(f.chunk_loss_prob);
  w.F64(f.link_blackout_prob);
  w.F64(f.transport_chunk_mb);
  w.Size(f.max_transfer_retries);
  w.Bool(f.resumable_uploads);
  w.Size(f.byzantine_start_round);
  w.F64(f.duplicate_prob);
  w.F64(f.replay_prob);
  w.F64(f.reorder_prob);
  w.F64(f.stampede_prob);
  w.Size(f.stampede_factor);
}

void WriteAdmissionConfig(CheckpointWriter& w, const AdmissionConfig& a) {
  w.Size(a.queue_capacity);
  w.U32(static_cast<uint32_t>(a.shed_policy));
  w.Bool(a.dedup);
  w.Size(a.dedup_window_rounds);
  w.Bool(a.reject_replays);
  w.Size(a.max_update_age);
  w.F64(a.rate_tokens_per_round);
  w.F64(a.rate_bucket_cap);
  w.F64(a.async_max_staleness);
  w.Bool(a.staleness_downweight);
  w.F64(a.staleness_decay);
}

void WriteSalvageConfig(CheckpointWriter& w, const SalvageConfig& s) {
  w.Bool(s.enabled);
  w.F64(s.min_progress);
  w.Bool(s.speculation);
  w.F64(s.speculation_margin);
  w.F64(s.max_backup_fraction);
}

void WriteGuardConfig(CheckpointWriter& w, const GuardConfig& g) {
  w.Bool(g.enabled);
  w.F64(g.collapse_threshold);
  w.Size(g.patience);
  w.F64(g.stall_epsilon);
  w.Size(g.snapshot_ring);
  w.Size(g.snapshot_every);
  w.F64(g.min_snapshot_coverage);
  w.Size(g.safe_mode_rounds);
  w.Size(g.quarantine_min_trials);
  w.F64(g.quarantine_failure_rate);
  w.Size(g.quarantine_cooldown_rounds);
  w.Size(g.quarantine_max_strikes);
}

void WriteAggregatorConfig(CheckpointWriter& w, const AggregatorConfig& a) {
  w.U32(static_cast<uint32_t>(a.kind));
  w.F64(a.trim_fraction);
  w.Size(a.krum_assumed_byzantine);
  w.Size(a.multi_krum_m);
  w.F64(a.clip_norm);
}

void WriteTopologyConfig(CheckpointWriter& w, const TopologyConfig& t) {
  w.Size(t.num_edges);
  w.Bool(t.failover);
  w.Size(t.edge_retry_cooldown_rounds);
  w.F64(t.edge_overcommit);
  w.F64(t.edge_crash_prob);
  w.F64(t.edge_blackout_prob);
  w.F64(t.edge_flaky_fraction);
  w.F64(t.edge_flaky_enter_prob);
  w.F64(t.edge_flaky_exit_prob);
  w.F64(t.edge_flaky_crash_prob);
  w.U32(static_cast<uint32_t>(t.edge_byzantine_mode));
  w.F64(t.edge_byzantine_fraction);
  w.F64(t.edge_byzantine_scale);
  w.F64(t.edge_link_loss_prob);
  w.F64(t.edge_link_blackout_prob);
  w.F64(t.edge_chunk_mb);
  w.Size(t.edge_max_retries);
  WriteAggregatorConfig(w, t.edge_aggregator);
  w.Bool(t.edge_adaptive_deadline.enabled);
  w.F64(t.edge_adaptive_deadline.min_factor);
  w.F64(t.edge_adaptive_deadline.max_factor);
  w.F64(t.edge_adaptive_deadline.headroom);
}

template <typename Engine>
bool SaveEngine(const std::string& path, const Engine& engine, Checkpointer::EngineTag tag,
                DurableFile& io) {
  // The payload is serialized separately so the header can carry its hash;
  // Restore verifies the bytes in full before any LoadState touches the
  // engine.
  CheckpointWriter payload;
  engine.SaveState(payload);
  CheckpointWriter w;
  w.U32(Checkpointer::kMagic);
  w.U32(Checkpointer::kVersion);
  w.U32(static_cast<uint32_t>(tag));
  w.U64(FingerprintConfig(engine.config()));
  w.U64(Fnv1a(payload.buffer()));
  w.Str(payload.buffer());
  return w.WriteFile(path, io);
}

template <typename Engine>
bool RestoreEngine(const std::string& path, Engine& engine, Checkpointer::EngineTag tag) {
  CheckpointReader r("");
  if (!CheckpointReader::FromFile(path, &r)) {
    return false;
  }
  if (r.U32() != Checkpointer::kMagic || r.U32() != Checkpointer::kVersion ||
      r.U32() != static_cast<uint32_t>(tag) || !r.ok()) {
    return false;
  }
  if (r.U64() != FingerprintConfig(engine.config())) {
    return false;
  }
  // Hash-check the whole payload before loading anything: a truncated or
  // bit-flipped archive is refused with the engine untouched, never loaded
  // partway.
  const uint64_t payload_hash = r.U64();
  const std::string payload = r.Str();
  if (!r.ok() || !r.AtEnd() || Fnv1a(payload) != payload_hash) {
    return false;
  }
  CheckpointReader pr(payload);
  engine.LoadState(pr);
  return pr.ok() && pr.AtEnd();
}

}  // namespace

uint64_t FingerprintConfig(const ExperimentConfig& config) {
  CheckpointWriter w;
  w.Size(config.num_clients);
  w.Size(config.clients_per_round);
  w.Size(config.rounds);
  w.Size(config.epochs);
  w.Size(config.batch_size);
  w.F64(config.deadline_s);
  w.U32(static_cast<uint32_t>(config.dataset));
  w.U32(static_cast<uint32_t>(config.model));
  w.F64(config.alpha);
  w.U32(static_cast<uint32_t>(config.interference));
  w.U64(config.seed);
  w.Bool(config.assume_no_dropouts);
  w.Size(config.async_concurrency);
  w.Size(config.async_buffer);
  WriteFaultConfig(w, config.faults);
  WriteAggregatorConfig(w, config.aggregator);
  w.Bool(config.adaptive_deadline.enabled);
  w.F64(config.adaptive_deadline.min_factor);
  w.F64(config.adaptive_deadline.max_factor);
  w.F64(config.adaptive_deadline.headroom);
  WriteGuardConfig(w, config.guard);
  WriteTopologyConfig(w, config.topology);
  WriteAdmissionConfig(w, config.admission);
  WriteSalvageConfig(w, config.salvage);
  return Fnv1a(w.buffer());
}

uint64_t FingerprintConfig(const RealFlConfig& config) {
  CheckpointWriter w;
  w.Size(config.num_clients);
  w.Size(config.clients_per_round);
  w.Size(config.num_classes);
  w.Size(config.input_dim);
  w.F64(config.class_separation);
  w.F64(config.alpha);
  w.SizeVec(config.hidden_dims);
  w.F32(config.sgd.learning_rate);
  w.Size(config.sgd.batch_size);
  w.Size(config.sgd.epochs);
  w.Size(config.sgd.frozen_layers);
  w.Size(config.sgd.max_steps);
  w.Size(config.test_samples_per_class);
  w.U64(config.seed);
  WriteFaultConfig(w, config.faults);
  WriteAggregatorConfig(w, config.aggregator);
  WriteGuardConfig(w, config.guard);
  WriteTopologyConfig(w, config.topology);
  WriteAdmissionConfig(w, config.admission);
  WriteSalvageConfig(w, config.salvage);
  return Fnv1a(w.buffer());
}

uint64_t FingerprintConfig(const VflConfig& config) {
  CheckpointWriter w;
  w.Size(config.num_parties);
  w.Size(config.features_per_party);
  w.Size(config.embedding_dim);
  w.Size(config.num_classes);
  w.Size(config.train_samples);
  w.Size(config.test_samples);
  w.F64(config.class_separation);
  w.F32(config.learning_rate);
  w.Size(config.batch_size);
  w.U64(config.seed);
  WriteFaultConfig(w, config.faults);
  WriteGuardConfig(w, config.guard);
  return Fnv1a(w.buffer());
}

bool Checkpointer::Save(const std::string& path, const SyncEngine& engine) {
  return SaveEngine(path, engine, EngineTag::kSync, DefaultDurableFile());
}
bool Checkpointer::Save(const std::string& path, const AsyncEngine& engine) {
  return SaveEngine(path, engine, EngineTag::kAsync, DefaultDurableFile());
}
bool Checkpointer::Save(const std::string& path, const RealFlEngine& engine) {
  return SaveEngine(path, engine, EngineTag::kReal, DefaultDurableFile());
}
bool Checkpointer::Save(const std::string& path, const VflEngine& engine) {
  return SaveEngine(path, engine, EngineTag::kVfl, DefaultDurableFile());
}

bool Checkpointer::Save(const std::string& path, const SyncEngine& engine, DurableFile& io) {
  return SaveEngine(path, engine, EngineTag::kSync, io);
}
bool Checkpointer::Save(const std::string& path, const AsyncEngine& engine, DurableFile& io) {
  return SaveEngine(path, engine, EngineTag::kAsync, io);
}
bool Checkpointer::Save(const std::string& path, const RealFlEngine& engine, DurableFile& io) {
  return SaveEngine(path, engine, EngineTag::kReal, io);
}
bool Checkpointer::Save(const std::string& path, const VflEngine& engine, DurableFile& io) {
  return SaveEngine(path, engine, EngineTag::kVfl, io);
}

bool Checkpointer::Restore(const std::string& path, SyncEngine& engine) {
  return RestoreEngine(path, engine, EngineTag::kSync);
}
bool Checkpointer::Restore(const std::string& path, AsyncEngine& engine) {
  return RestoreEngine(path, engine, EngineTag::kAsync);
}
bool Checkpointer::Restore(const std::string& path, RealFlEngine& engine) {
  return RestoreEngine(path, engine, EngineTag::kReal);
}
bool Checkpointer::Restore(const std::string& path, VflEngine& engine) {
  return RestoreEngine(path, engine, EngineTag::kVfl);
}

}  // namespace floatfl
