// Crash-consistent file writes for the checkpoint path (DESIGN.md §14).
//
// A checkpoint that survives `kill -9` at any instant needs more than
// temp + rename: the temp's bytes must be fsync'd before the rename (or the
// rename can land while the data is still only in the page cache, leaving a
// durable name over torn bytes after a power cut), and the directory entry
// must be fsync'd after it (or the rename itself can be lost). DurableFile
// implements exactly that sequence and is *injectable*: the recovery tests
// substitute a fault-injecting subclass (src/recovery/crash_plan.h) that
// tears the write at byte k, simulates ENOSPC, or kills the process at a
// named crashpoint — so every torn-write window the real sequence has is
// exercised deterministically, not hoped about.
#ifndef SRC_FAILURE_DURABLE_FILE_H_
#define SRC_FAILURE_DURABLE_FILE_H_

#include <string>

namespace floatfl {

class DurableFile {
 public:
  virtual ~DurableFile() = default;

  // Writes `bytes` to `path` crash-consistently: create `path + ".tmp"`,
  // write everything, fsync the temp, rename it over `path`, fsync the
  // parent directory. Returns false on any I/O failure — empty path, a
  // parent directory that does not exist or cannot be written, a target that
  // is a directory, a short write (disk full) — and never leaves a partial
  // *final* file behind (a torn temp may remain; readers never look at
  // temps, and the checkpoint ring sweeps them on recovery).
  virtual bool Write(const std::string& path, const std::string& bytes);

  // Suffix of the in-flight temp file next to the final path. Part of the
  // contract: recovery scanners must skip (and may sweep) "*.tmp" entries.
  static const char* TempSuffix() { return ".tmp"; }
};

// Shared default instance used when no writer is injected.
DurableFile& DefaultDurableFile();

}  // namespace floatfl

#endif  // SRC_FAILURE_DURABLE_FILE_H_
