// Versioned whole-engine checkpoints (DESIGN.md §8).
//
// A checkpoint file is a small header — magic, format version, engine tag,
// a fingerprint of the engine's configuration, and an FNV-1a hash of the
// payload — followed by the engine's own SaveState payload as one
// length-prefixed blob. Restore refuses (returns false) on a bad magic,
// unknown version, wrong engine type, mismatched configuration fingerprint,
// a truncated/overlong archive, or a payload whose bytes no longer hash to
// the recorded value — so a stale, foreign, truncated, or bit-flipped
// checkpoint can never be silently (or partially) loaded into a fresh
// engine: the payload is verified in full *before* any engine state is
// touched. The resume contract is bit-for-bit: run N rounds == run M,
// checkpoint, restore into a freshly constructed engine, run N-M more.
#ifndef SRC_FAILURE_CHECKPOINTER_H_
#define SRC_FAILURE_CHECKPOINTER_H_

#include <cstdint>
#include <string>

namespace floatfl {

class DurableFile;
class SyncEngine;
class AsyncEngine;
class RealFlEngine;
class VflEngine;
struct ExperimentConfig;
struct RealFlConfig;
struct VflConfig;

// Stable fingerprints of the result-determining configuration fields
// (num_threads is deliberately excluded: a checkpoint taken at one thread
// count restores at any other — results are thread-count invariant).
uint64_t FingerprintConfig(const ExperimentConfig& config);
uint64_t FingerprintConfig(const RealFlConfig& config);
uint64_t FingerprintConfig(const VflConfig& config);

class Checkpointer {
 public:
  static constexpr uint32_t kMagic = 0x464C434BU;  // "FLCK"
  // v2: Byzantine fault fields and the aggregator config joined the
  // fingerprints; engine payloads grew aggregator/tracker state. v3: the
  // lossy-transport fault fields and the adaptive-deadline config joined the
  // fingerprints; engine payloads grew transport/deadline-controller/tracker
  // state and the selector net-factor EWMAs. v4: the guard config and the
  // byzantine_start_round fault field joined the fingerprints; engine
  // payloads grew the self-healing guard state (watchdog, snapshot ring,
  // quarantine, tracker) and, for the real engine, an attached-policy
  // section. v5: TransportTracker serializes its cumulative wire_mb
  // (bytes-moved accounting for the perf harness, DESIGN.md §12). v6: the
  // topology config joined the sync/real fingerprints (and
  // min_snapshot_coverage the guard section); sync/real payloads grew the
  // aggregation-tree state (edge injector, up/foster masks, topology
  // tracker, edge aggregator / deadline controller); the header gained a
  // payload hash and the payload became a length-prefixed blob verified
  // against it before LoadState runs. v7: engine payloads grew a
  // RecoveryTracker section (cumulative restart/replay accounting that rides
  // inside the engine so the totals survive process kills, DESIGN.md §14).
  // v8: the overload fault fields and the admission config joined the
  // sync/real/async fingerprints; engine payloads grew the server-ingestion
  // admission section (dedup set, token buckets, update log, admission
  // tracker — DESIGN.md §15) and four new dropout-breakdown counters.
  // v9: the salvage config joined the sync/real/async fingerprints; engine
  // payloads grew the graceful-degradation section (SalvageTracker,
  // SpeculativeScheduler cursor/counters — DESIGN.md §16), two new
  // dropout-breakdown counters (backup_covered, backup_redundant), the
  // TransportTracker's unique-progress bytes, the surrogate contribution
  // weight in the async buffer, and the salvage metadata on in-flight async
  // outcomes. Older checkpoints are refused (the version field mismatches).
  static constexpr uint32_t kVersion = 9;
  enum class EngineTag : uint32_t { kSync = 1, kAsync = 2, kReal = 3, kVfl = 4 };

  // Crash-consistent save (fsync'd temp file + rename). Returns false on
  // I/O failure — including an empty/unwritable/directory path — and never
  // crashes the caller.
  static bool Save(const std::string& path, const SyncEngine& engine);
  static bool Save(const std::string& path, const AsyncEngine& engine);
  static bool Save(const std::string& path, const RealFlEngine& engine);
  static bool Save(const std::string& path, const VflEngine& engine);

  // Same, writing through an injectable DurableFile (fault injection, custom
  // storage). The default overloads above use the process-wide fsync'd one.
  static bool Save(const std::string& path, const SyncEngine& engine, DurableFile& io);
  static bool Save(const std::string& path, const AsyncEngine& engine, DurableFile& io);
  static bool Save(const std::string& path, const RealFlEngine& engine, DurableFile& io);
  static bool Save(const std::string& path, const VflEngine& engine, DurableFile& io);

  // Restores into an engine freshly constructed with the *same* config the
  // checkpoint was taken under. Returns false on header mismatch or a
  // corrupt (truncated / bit-flipped) payload; corruption is detected by the
  // payload hash before LoadState runs, so on a hash mismatch the engine is
  // untouched — never partially loaded.
  static bool Restore(const std::string& path, SyncEngine& engine);
  static bool Restore(const std::string& path, AsyncEngine& engine);
  static bool Restore(const std::string& path, RealFlEngine& engine);
  static bool Restore(const std::string& path, VflEngine& engine);
};

}  // namespace floatfl

#endif  // SRC_FAILURE_CHECKPOINTER_H_
