// Shared helpers for serializing common component state into checkpoints.
#ifndef SRC_FAILURE_CHECKPOINT_UTIL_H_
#define SRC_FAILURE_CHECKPOINT_UTIL_H_

#include <array>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

inline void SaveRng(CheckpointWriter& w, const Rng& rng) {
  for (uint64_t v : rng.SaveRaw()) {
    w.U64(v);
  }
}

inline void LoadRng(CheckpointReader& r, Rng& rng) {
  std::array<uint64_t, 6> raw;
  for (auto& v : raw) {
    v = r.U64();
  }
  rng.RestoreRaw(raw);
}

}  // namespace floatfl

#endif  // SRC_FAILURE_CHECKPOINT_UTIL_H_
