// Table-1 state encoding for FLOAT's Q-learning RLHF agent (RQ5).
//
// Continuous client metrics are reduced to 5 discrete bins each (the paper's
// statistically chosen sweet spot): CPU, memory and network availability
// ("Runtime Variance") and, when human feedback is enabled, the client's
// deadline difference. Global training parameters (batch size, local epochs,
// participant count) add 3-bin dimensions when enabled. The default paper
// configuration — runtime variance only — yields 5^3 = 125 state
// combinations with 8 actions (the red line in Figure 8).
#ifndef SRC_CORE_STATE_ENCODER_H_
#define SRC_CORE_STATE_ENCODER_H_

#include <cstddef>
#include <vector>

#include "src/common/discretizer.h"
#include "src/failure/checkpoint_io.h"
#include "src/fl/tuning_policy.h"

namespace floatfl {

struct StateEncoderConfig {
  bool include_global = false;        // G_B, G_E, G_K dimensions
  bool include_human_feedback = false;  // deadline-difference dimension
  size_t resource_bins = 5;           // bins per runtime-variance metric
};

class StateEncoder {
 public:
  explicit StateEncoder(const StateEncoderConfig& config);

  size_t NumStates() const { return num_states_; }

  size_t Encode(const ClientObservation& client, const GlobalObservation& global) const;

  // Replaces the fixed Table-1 ranges with statistical (quantile) bin
  // boundaries fitted to observed client metrics — the paper's
  // variance-driven dimensionality reduction.
  void FitResourceBins(const std::vector<double>& cpu_samples,
                       const std::vector<double>& mem_samples,
                       const std::vector<double>& net_samples,
                       const std::vector<double>& deadline_samples);

  const StateEncoderConfig& config() const { return config_; }

  // Checkpoint/resume of the bin boundaries (calibration via FitResourceBins
  // mutates them, so the fixed construction-time defaults are not enough).
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  StateEncoderConfig config_;
  Discretizer cpu_bins_;
  Discretizer mem_bins_;
  Discretizer net_bins_;
  Discretizer deadline_bins_;
  Discretizer batch_bins_;
  Discretizer epoch_bins_;
  Discretizer participant_bins_;
  size_t num_states_;

  void RecomputeNumStates();
};

}  // namespace floatfl

#endif  // SRC_CORE_STATE_ENCODER_H_
