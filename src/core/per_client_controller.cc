#include "src/core/per_client_controller.h"

#include "src/common/check.h"

namespace floatfl {

PerClientController::PerClientController(size_t num_clients,
                                         const StateEncoderConfig& encoder_config,
                                         const RlhfConfig& rlhf_config)
    : rounds_(num_clients, 0) {
  FLOATFL_CHECK(num_clients > 0);
  agents_.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    RlhfConfig config = rlhf_config;
    config.seed = rlhf_config.seed + 0x9E37ULL * (i + 1);
    agents_.push_back(std::make_unique<RlhfAgent>(encoder_config, config));
  }
}

std::unique_ptr<PerClientController> PerClientController::MakeDefault(size_t num_clients,
                                                                      uint64_t seed,
                                                                      size_t total_rounds) {
  StateEncoderConfig encoder_config;
  encoder_config.include_human_feedback = true;
  RlhfConfig rlhf_config;
  rlhf_config.seed = seed;
  // A single client sees only a fraction of the rounds; scale its local
  // learning-rate schedule accordingly.
  rlhf_config.total_rounds = std::max<size_t>(1, total_rounds / 10);
  return std::make_unique<PerClientController>(num_clients, encoder_config, rlhf_config);
}

TechniqueKind PerClientController::Decide(size_t client_id, const ClientObservation& client,
                                          const GlobalObservation& global) {
  FLOATFL_CHECK(client_id < agents_.size());
  return agents_[client_id]->ChooseTechnique(client, global, rounds_[client_id]);
}

void PerClientController::Report(size_t client_id, const ClientObservation& client,
                                 const GlobalObservation& global, TechniqueKind technique,
                                 bool participated, double accuracy_improvement) {
  FLOATFL_CHECK(client_id < agents_.size());
  agents_[client_id]->Feedback(client, global, technique, participated, accuracy_improvement,
                               rounds_[client_id]);
  ++rounds_[client_id];
}

RlhfAgent& PerClientController::agent(size_t client_id) {
  FLOATFL_CHECK(client_id < agents_.size());
  return *agents_[client_id];
}

size_t PerClientController::TotalMemoryBytes() const {
  size_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->MemoryBytes();
  }
  return total;
}

void PerClientController::SaveState(CheckpointWriter& w) const {
  w.Size(agents_.size());
  for (const auto& agent : agents_) {
    agent->SaveState(w);
  }
  w.SizeVec(rounds_);
}

void PerClientController::LoadState(CheckpointReader& r) {
  const size_t n = r.Size();
  FLOATFL_CHECK_MSG(n == agents_.size() || !r.ok(),
                    "checkpoint policy shape mismatch: per-client agent count differs");
  if (n != agents_.size()) {
    return;
  }
  for (auto& agent : agents_) {
    agent->LoadState(r);
  }
  rounds_ = r.SizeVec();
}

}  // namespace floatfl
