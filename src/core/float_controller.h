// FLOAT's non-intrusive integration point.
//
// FloatController adapts the RLHF agent to the TuningPolicy interface the FL
// engines consume, so FLOAT can be attached to any client-selection
// algorithm (FedAvg, Oort, FedBuff, ...) without touching the training loop
// — the property the paper calls non-intrusiveness. It also tracks the
// aggregation round for the agent's dynamic learning-rate schedule.
#ifndef SRC_CORE_FLOAT_CONTROLLER_H_
#define SRC_CORE_FLOAT_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/rlhf_agent.h"
#include "src/fl/tuning_policy.h"

namespace floatfl {

class FloatController final : public TuningPolicy {
 public:
  // `calibration_samples` > 0 enables the paper's statistical dimensionality
  // reduction (RQ5): the controller collects that many client observations,
  // fits quantile bin boundaries to the observed resource variance, and only
  // then starts learning (the fixed Table-1 ranges are used during the
  // calibration window and replaced on fit).
  FloatController(const StateEncoderConfig& encoder_config, const RlhfConfig& rlhf_config,
                  size_t calibration_samples = 0);

  // Builds the paper's default FLOAT configuration: runtime-variance state
  // with human feedback enabled.
  static std::unique_ptr<FloatController> MakeDefault(uint64_t seed, size_t total_rounds);

  // FLOAT-RL ablation (Figure 11): no human-feedback state dimension and no
  // dropout feedback cache.
  static std::unique_ptr<FloatController> MakeWithoutHumanFeedback(uint64_t seed,
                                                                   size_t total_rounds);

  TechniqueKind Decide(size_t client_id, const ClientObservation& client,
                       const GlobalObservation& global) override;
  void Report(size_t client_id, const ClientObservation& client, const GlobalObservation& global,
              TechniqueKind technique, bool participated, double accuracy_improvement) override;
  std::string Name() const override;

  void SaveState(CheckpointWriter& w) const override;
  void LoadState(CheckpointReader& r) override;

  RlhfAgent& agent() { return agent_; }
  const RlhfAgent& agent() const { return agent_; }
  size_t CurrentRound() const { return round_; }

  bool CalibrationDone() const {
    return calibration_samples_ == 0 || cpu_samples_.size() >= calibration_samples_;
  }

 private:
  void MaybeCollectCalibration(const ClientObservation& client);

  RlhfAgent agent_;
  size_t round_ = 0;
  size_t reports_this_round_ = 0;
  // RQ5 calibration state.
  size_t calibration_samples_ = 0;
  bool calibrated_ = false;
  std::vector<double> cpu_samples_;
  std::vector<double> mem_samples_;
  std::vector<double> net_samples_;
  std::vector<double> deadline_samples_;
};

}  // namespace floatfl

#endif  // SRC_CORE_FLOAT_CONTROLLER_H_
