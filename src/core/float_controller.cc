#include "src/core/float_controller.h"

namespace floatfl {

FloatController::FloatController(const StateEncoderConfig& encoder_config,
                                 const RlhfConfig& rlhf_config, size_t calibration_samples)
    : agent_(encoder_config, rlhf_config, ActionTechniques().size()),
      calibration_samples_(calibration_samples) {}

void FloatController::MaybeCollectCalibration(const ClientObservation& client) {
  if (calibration_samples_ == 0 || calibrated_) {
    return;
  }
  cpu_samples_.push_back(client.cpu_avail);
  mem_samples_.push_back(client.mem_avail);
  net_samples_.push_back(client.net_avail);
  deadline_samples_.push_back(client.deadline_diff);
  if (cpu_samples_.size() >= calibration_samples_) {
    // RQ5: replace the fixed Table-1 ranges with percentile boundaries fitted
    // to the observed variance of each metric.
    agent_.mutable_encoder().FitResourceBins(cpu_samples_, mem_samples_, net_samples_,
                                             deadline_samples_);
    calibrated_ = true;
    cpu_samples_.shrink_to_fit();
  }
}

std::unique_ptr<FloatController> FloatController::MakeDefault(uint64_t seed, size_t total_rounds) {
  StateEncoderConfig encoder_config;
  encoder_config.include_human_feedback = true;
  RlhfConfig rlhf_config;
  rlhf_config.seed = seed;
  rlhf_config.total_rounds = total_rounds;
  return std::make_unique<FloatController>(encoder_config, rlhf_config);
}

std::unique_ptr<FloatController> FloatController::MakeWithoutHumanFeedback(uint64_t seed,
                                                                           size_t total_rounds) {
  StateEncoderConfig encoder_config;
  encoder_config.include_human_feedback = false;
  RlhfConfig rlhf_config;
  rlhf_config.seed = seed;
  rlhf_config.total_rounds = total_rounds;
  rlhf_config.cache_dropout_feedback = false;
  return std::make_unique<FloatController>(encoder_config, rlhf_config);
}

TechniqueKind FloatController::Decide(size_t client_id, const ClientObservation& client,
                                      const GlobalObservation& global) {
  (void)client_id;
  MaybeCollectCalibration(client);
  return agent_.ChooseTechnique(client, global, round_);
}

void FloatController::Report(size_t client_id, const ClientObservation& client,
                             const GlobalObservation& global, TechniqueKind technique,
                             bool participated, double accuracy_improvement) {
  (void)client_id;
  agent_.Feedback(client, global, technique, participated, accuracy_improvement, round_);
  // Advance the learning-rate round counter once a round's worth of
  // feedback has arrived (the engines report once per selected client).
  ++reports_this_round_;
  if (reports_this_round_ >= global.participants) {
    reports_this_round_ = 0;
    ++round_;
  }
}

std::string FloatController::Name() const {
  return agent_.encoder().config().include_human_feedback ? "float-rlhf" : "float-rl";
}

void FloatController::SaveState(CheckpointWriter& w) const {
  agent_.SaveState(w);
  w.Size(round_);
  w.Size(reports_this_round_);
  w.Size(calibration_samples_);
  w.Bool(calibrated_);
  w.F64Vec(cpu_samples_);
  w.F64Vec(mem_samples_);
  w.F64Vec(net_samples_);
  w.F64Vec(deadline_samples_);
}

void FloatController::LoadState(CheckpointReader& r) {
  agent_.LoadState(r);
  round_ = r.Size();
  reports_this_round_ = r.Size();
  calibration_samples_ = r.Size();
  calibrated_ = r.Bool();
  cpu_samples_ = r.F64Vec();
  mem_samples_ = r.F64Vec();
  net_samples_ = r.F64Vec();
  deadline_samples_ = r.F64Vec();
}

}  // namespace floatfl
