#include "src/core/state_encoder.h"

#include "src/common/check.h"

namespace floatfl {
namespace {

// Table-1 fixed ranges, expressed over fractional availabilities in [0, 1].
// CPU/MEM: None (0), Low (1-20 %), Moderate (21-40 %), High (41-60 %),
// Very High (61-80+ %). Network starts at Low (there is no "no network
// selected client"). Deadline difference: None (0), <10 %, <20 %, <30 %,
// >=30 %.
Discretizer DefaultCpuMemBins(size_t bins) {
  if (bins == 5) {
    return Discretizer({0.005, 0.205, 0.405, 0.605});
  }
  return Discretizer::Uniform(0.0, 1.0, bins);
}

Discretizer DefaultNetBins(size_t bins) {
  if (bins == 5) {
    return Discretizer({0.205, 0.405, 0.605, 0.805});
  }
  return Discretizer::Uniform(0.0, 1.0, bins);
}

Discretizer DefaultDeadlineBins(size_t bins) {
  if (bins == 5) {
    return Discretizer({0.001, 0.10, 0.20, 0.30});
  }
  return Discretizer::Uniform(0.0, 0.5, bins);
}

}  // namespace

StateEncoder::StateEncoder(const StateEncoderConfig& config)
    : config_(config),
      cpu_bins_(DefaultCpuMemBins(config.resource_bins)),
      mem_bins_(DefaultCpuMemBins(config.resource_bins)),
      net_bins_(DefaultNetBins(config.resource_bins)),
      deadline_bins_(DefaultDeadlineBins(config.resource_bins)),
      batch_bins_(Discretizer({7.5, 31.5})),        // small <8, medium 8-31, large >=32
      epoch_bins_(Discretizer({4.5, 9.5})),         // small <5, medium 5-9, large >=10
      participant_bins_(Discretizer({9.5, 49.5})),  // small <10, medium 10-49, large >=50
      num_states_(0) {
  FLOATFL_CHECK(config.resource_bins >= 2);
  RecomputeNumStates();
}

void StateEncoder::RecomputeNumStates() {
  size_t n = cpu_bins_.NumBins() * mem_bins_.NumBins() * net_bins_.NumBins();
  if (config_.include_human_feedback) {
    n *= deadline_bins_.NumBins();
  }
  if (config_.include_global) {
    n *= batch_bins_.NumBins() * epoch_bins_.NumBins() * participant_bins_.NumBins();
  }
  num_states_ = n;
}

size_t StateEncoder::Encode(const ClientObservation& client,
                            const GlobalObservation& global) const {
  size_t idx = cpu_bins_.BinOf(client.cpu_avail);
  idx = idx * mem_bins_.NumBins() + mem_bins_.BinOf(client.mem_avail);
  idx = idx * net_bins_.NumBins() + net_bins_.BinOf(client.net_avail);
  if (config_.include_human_feedback) {
    idx = idx * deadline_bins_.NumBins() + deadline_bins_.BinOf(client.deadline_diff);
  }
  if (config_.include_global) {
    idx = idx * batch_bins_.NumBins() +
          batch_bins_.BinOf(static_cast<double>(global.batch_size));
    idx = idx * epoch_bins_.NumBins() + epoch_bins_.BinOf(static_cast<double>(global.epochs));
    idx = idx * participant_bins_.NumBins() +
          participant_bins_.BinOf(static_cast<double>(global.participants));
  }
  FLOATFL_CHECK(idx < num_states_);
  return idx;
}

void StateEncoder::FitResourceBins(const std::vector<double>& cpu_samples,
                                   const std::vector<double>& mem_samples,
                                   const std::vector<double>& net_samples,
                                   const std::vector<double>& deadline_samples) {
  const size_t bins = config_.resource_bins;
  if (!cpu_samples.empty()) {
    cpu_bins_ = Discretizer::FromQuantiles(cpu_samples, bins);
  }
  if (!mem_samples.empty()) {
    mem_bins_ = Discretizer::FromQuantiles(mem_samples, bins);
  }
  if (!net_samples.empty()) {
    net_bins_ = Discretizer::FromQuantiles(net_samples, bins);
  }
  if (!deadline_samples.empty()) {
    deadline_bins_ = Discretizer::FromQuantiles(deadline_samples, bins);
  }
  RecomputeNumStates();
}

void StateEncoder::SaveState(CheckpointWriter& w) const {
  w.F64Vec(cpu_bins_.boundaries());
  w.F64Vec(mem_bins_.boundaries());
  w.F64Vec(net_bins_.boundaries());
  w.F64Vec(deadline_bins_.boundaries());
  w.F64Vec(batch_bins_.boundaries());
  w.F64Vec(epoch_bins_.boundaries());
  w.F64Vec(participant_bins_.boundaries());
}

void StateEncoder::LoadState(CheckpointReader& r) {
  cpu_bins_ = Discretizer(r.F64Vec());
  mem_bins_ = Discretizer(r.F64Vec());
  net_bins_ = Discretizer(r.F64Vec());
  deadline_bins_ = Discretizer(r.F64Vec());
  batch_bins_ = Discretizer(r.F64Vec());
  epoch_bins_ = Discretizer(r.F64Vec());
  participant_bins_ = Discretizer(r.F64Vec());
  RecomputeNumStates();
}

}  // namespace floatfl
