#include "src/core/rlhf_agent.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/failure/checkpoint_util.h"

namespace floatfl {

RlhfAgent::RlhfAgent(const StateEncoderConfig& encoder_config, const RlhfConfig& config,
                     size_t num_actions)
    : encoder_(encoder_config),
      config_(config),
      rng_(config.seed),
      table_(encoder_.NumStates(), num_actions, rng_, /*init_scale=*/0.01),
      ma_participation_(encoder_.NumStates() * num_actions, 0.0),
      ma_accuracy_(encoder_.NumStates() * num_actions, 0.0),
      ma_seen_(encoder_.NumStates() * num_actions, 0),
      cached_accuracy_(encoder_.NumStates() * num_actions, 0.0),
      cache_valid_(encoder_.NumStates() * num_actions, 0),
      global_action_value_(num_actions, 0.0),
      global_action_count_(num_actions, 0),
      run_action_count_(num_actions, 0),
      run_action_success_(num_actions, 0.0),
      run_action_accuracy_(num_actions, 0.0) {
  FLOATFL_CHECK(config.moving_average_window > 0);
  FLOATFL_CHECK(config.total_rounds > 0);
  FLOATFL_CHECK(config.w_participation >= 0.0 && config.w_accuracy >= 0.0);
  FLOATFL_CHECK(config.w_participation + config.w_accuracy > 0.0);
}

int RlhfAgent::ActionIndexOf(TechniqueKind kind) {
  const auto& actions = ActionTechniques();
  for (size_t i = 0; i < actions.size(); ++i) {
    if (actions[i] == kind) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t RlhfAgent::ChooseActionIndex(size_t state, size_t round) {
  FLOATFL_CHECK(state < table_.num_states());
  const double progress =
      std::min(1.0, static_cast<double>(round) / static_cast<double>(config_.total_rounds));
  const double epsilon = std::max(config_.epsilon_min, config_.epsilon * (1.0 - progress));
  if (rng_.NextDouble() < epsilon) {
    // Exploration. Balanced exploration (RQ6) deliberately visits the action
    // this state has tried the least, instead of a uniform draw that keeps
    // re-sampling popular configurations.
    if (config_.balanced_exploration) {
      return table_.LeastVisitedAction(state);
    }
    return static_cast<size_t>(rng_.UniformInt(table_.num_actions()));
  }
  // Exploitation with hierarchical shrinkage: each cell's value is blended
  // with the state-agnostic per-action average using pseudo-counts, so a
  // young table generalizes ("75% pruning usually works") and a
  // well-visited cell dominates its own estimate.
  constexpr double kPseudoCounts = 3.0;
  size_t best = 0;
  double best_value = -1e300;
  for (size_t a = 0; a < table_.num_actions(); ++a) {
    const double n = static_cast<double>(table_.Visits(state, a));
    const double value = (n * table_.Q(state, a) + kPseudoCounts * global_action_value_[a]) /
                         (n + kPseudoCounts);
    if (value > best_value) {
      best_value = value;
      best = a;
    }
  }
  return best;
}

ClientObservation RlhfAgent::SanitizeObservation(const ClientObservation& client) {
  if (std::isfinite(client.cpu_avail) && std::isfinite(client.mem_avail) &&
      std::isfinite(client.net_avail) && std::isfinite(client.deadline_diff)) {
    return client;
  }
  ++rejected_observations_;
  ClientObservation clean = client;
  if (!std::isfinite(clean.cpu_avail)) clean.cpu_avail = 1.0;
  if (!std::isfinite(clean.mem_avail)) clean.mem_avail = 1.0;
  if (!std::isfinite(clean.net_avail)) clean.net_avail = 1.0;
  if (!std::isfinite(clean.deadline_diff)) clean.deadline_diff = 0.0;
  return clean;
}

TechniqueKind RlhfAgent::ChooseTechnique(const ClientObservation& client,
                                         const GlobalObservation& global, size_t round) {
  FLOATFL_CHECK(table_.num_actions() == ActionTechniques().size());
  const size_t state = encoder_.Encode(SanitizeObservation(client), global);
  const size_t action = ChooseActionIndex(state, round);
  return ActionTechniques()[action];
}

double RlhfAgent::LearningRateFor(size_t round) const {
  const double progress = static_cast<double>(round) / static_cast<double>(config_.total_rounds);
  return std::clamp(progress, config_.min_learning_rate, 1.0);
}

void RlhfAgent::FeedbackIndexed(size_t state, size_t action, bool participated,
                                double accuracy_improvement, size_t round) {
  FLOATFL_CHECK(state < table_.num_states());
  FLOATFL_CHECK(action < table_.num_actions());
  // Boundary validation: a NaN improvement would propagate through the
  // accuracy score into the moving averages, the reward and SetQ — poisoning
  // every value it touches permanently — and a +Inf would lock
  // max_improvement_seen_ at infinity, zeroing all future accuracy scores.
  // Reject and learn participation-only instead (the improvement becomes 0,
  // which the clamp below treats as "no measurable gain").
  constexpr double kMaxCredibleImprovement = 1e3;  // accuracies live in [0, 1]
  if (!std::isfinite(accuracy_improvement) ||
      std::fabs(accuracy_improvement) > kMaxCredibleImprovement) {
    ++rejected_rewards_;
    accuracy_improvement = 0.0;
  }
  const size_t cell = state * table_.num_actions() + action;

  // Run-local tallies for the per-action Q-table views (Figure 10); these
  // record what actually happened regardless of whether the agent can learn
  // from it below.
  ++run_action_count_[action];
  run_action_success_[action] += participated ? 1.0 : 0.0;

  if (!participated && !config_.cache_dropout_feedback) {
    // RQ7: a dropped-out client never reports back, so without the feedback
    // cache this (state, action) receives NO training signal at all — the
    // plain-RL ablation learns only from survivors and systematically
    // over-trusts mild actions that quietly fail (Figure 11).
    reward_history_.push_back(0.0);
    return;
  }

  // Normalize the accuracy objective to [0, 1] against the best improvement
  // observed so far (accuracy gains shrink over rounds; raw values would
  // make early feedback dominate).
  double accuracy_score = 0.0;
  if (participated) {
    if (accuracy_improvement > max_improvement_seen_) {
      max_improvement_seen_ = accuracy_improvement;
    }
    accuracy_score =
        std::clamp(accuracy_improvement / max_improvement_seen_, 0.0, 1.0);
    // Refresh the similar-client cache (RQ7).
    cached_accuracy_[cell] = accuracy_score;
    cache_valid_[cell] = 1;
  } else if (config_.cache_dropout_feedback && cache_valid_[cell] != 0) {
    // The dropped client produced no validation feedback; estimate it from
    // cached feedback of similar (same-state, same-action) clients, damped
    // because the estimate is secondhand.
    accuracy_score = 0.5 * cached_accuracy_[cell];
  }

  const double participation_score = participated ? 1.0 : 0.0;

  // Moving-average objectives (RQ6), exponential with beta = 1/window.
  const double beta = 1.0 / static_cast<double>(config_.moving_average_window);
  if (ma_seen_[cell] == 0) {
    ma_participation_[cell] = participation_score;
    ma_accuracy_[cell] = accuracy_score;
    ma_seen_[cell] = 1;
  } else {
    ma_participation_[cell] += beta * (participation_score - ma_participation_[cell]);
    ma_accuracy_[cell] += beta * (accuracy_score - ma_accuracy_[cell]);
  }

  const double w_sum = config_.w_participation + config_.w_accuracy;
  const double reward =
      (config_.w_participation * ma_participation_[cell] + config_.w_accuracy * ma_accuracy_[cell]) /
      w_sum;
  const double instant_reward =
      (config_.w_participation * participation_score + config_.w_accuracy * accuracy_score) / w_sum;
  reward_history_.push_back(instant_reward);

  // Bellman update with the paper's gamma->0 adjustment: the successor state
  // is driven by random resource fluctuations, so its contribution is kept
  // near zero (config_.discount) and evaluated at the current state.
  const double lr = LearningRateFor(round);
  const double target = reward + config_.discount * table_.MaxQ(state);
  const double q = table_.Q(state, action);
  table_.SetQ(state, action, q + lr * (target - q));
  table_.AddVisit(state, action);

  // Update the hierarchical fallback estimate for the action.
  ++global_action_count_[action];
  global_action_value_[action] +=
      (instant_reward - global_action_value_[action]) /
      static_cast<double>(global_action_count_[action]);

  run_action_accuracy_[action] += accuracy_score;
}

void RlhfAgent::Feedback(const ClientObservation& client, const GlobalObservation& global,
                         TechniqueKind technique, bool participated, double accuracy_improvement,
                         size_t round) {
  const int action = ActionIndexOf(technique);
  if (action < 0) {
    return;  // kNone / compression are outside the tunable action space
  }
  const size_t state = encoder_.Encode(SanitizeObservation(client), global);
  FeedbackIndexed(state, static_cast<size_t>(action), participated, accuracy_improvement, round);
}

double RlhfAgent::AverageRewardOver(size_t last_n) const {
  if (reward_history_.empty()) {
    return 0.0;
  }
  const size_t n = std::min(last_n, reward_history_.size());
  double sum = 0.0;
  for (size_t i = reward_history_.size() - n; i < reward_history_.size(); ++i) {
    sum += reward_history_[i];
  }
  return sum / static_cast<double>(n);
}

double RlhfAgent::PositiveRewardFraction(size_t last_n) const {
  if (reward_history_.empty()) {
    return 0.0;
  }
  const size_t n = std::min(last_n, reward_history_.size());
  size_t positive = 0;
  for (size_t i = reward_history_.size() - n; i < reward_history_.size(); ++i) {
    if (reward_history_[i] > 0.0) {
      ++positive;
    }
  }
  return static_cast<double>(positive) / static_cast<double>(n);
}

void RlhfAgent::InitializeFrom(const RlhfAgent& pretrained) {
  table_.InitializeFrom(pretrained.table_);
  ma_participation_ = pretrained.ma_participation_;
  ma_accuracy_ = pretrained.ma_accuracy_;
  ma_seen_ = pretrained.ma_seen_;
  cached_accuracy_ = pretrained.cached_accuracy_;
  cache_valid_ = pretrained.cache_valid_;
  // The accuracy-reward normalizer is workload-specific (per-round accuracy
  // deltas differ across datasets/models); re-fit it on the new deployment.
  max_improvement_seen_ = 1e-6;
  global_action_value_ = pretrained.global_action_value_;
  global_action_count_ = pretrained.global_action_count_;
  run_action_count_.assign(run_action_count_.size(), 0);
  run_action_success_.assign(run_action_success_.size(), 0.0);
  run_action_accuracy_.assign(run_action_accuracy_.size(), 0.0);
  reward_history_.clear();
}

std::vector<RlhfAgent::ActionSummary> RlhfAgent::SummarizePerAction() const {
  std::vector<ActionSummary> out(table_.num_actions());
  const bool standard_actions = table_.num_actions() == ActionTechniques().size();
  for (size_t a = 0; a < table_.num_actions(); ++a) {
    ActionSummary& summary = out[a];
    if (standard_actions) {
      summary.technique = ActionTechniques()[a];
    }
    summary.visits = run_action_count_[a];
    if (summary.visits > 0) {
      const double n = static_cast<double>(summary.visits);
      summary.avg_participation = run_action_success_[a] / n;
      summary.avg_accuracy = run_action_accuracy_[a] / n;
    }
    // Average learned Q over the cells this action has ever been tried in.
    double q_sum = 0.0;
    size_t visited_cells = 0;
    for (size_t s = 0; s < table_.num_states(); ++s) {
      if (table_.Visits(s, a) > 0) {
        q_sum += table_.Q(s, a);
        ++visited_cells;
      }
    }
    if (visited_cells > 0) {
      summary.avg_q = q_sum / static_cast<double>(visited_cells);
    }
  }
  return out;
}

size_t RlhfAgent::MemoryBytes() const {
  return table_.MemoryBytes() + ma_participation_.size() * sizeof(double) +
         ma_accuracy_.size() * sizeof(double) + ma_seen_.size() +
         cached_accuracy_.size() * sizeof(double) + cache_valid_.size();
}

void RlhfAgent::SaveState(CheckpointWriter& w) const {
  encoder_.SaveState(w);
  SaveRng(w, rng_);
  table_.SaveState(w);
  w.F64Vec(ma_participation_);
  w.F64Vec(ma_accuracy_);
  w.U8Vec(ma_seen_);
  w.F64Vec(cached_accuracy_);
  w.U8Vec(cache_valid_);
  w.F64(max_improvement_seen_);
  w.F64Vec(global_action_value_);
  w.U32Vec(global_action_count_);
  w.U32Vec(run_action_count_);
  w.F64Vec(run_action_success_);
  w.F64Vec(run_action_accuracy_);
  w.F64Vec(reward_history_);
  w.Size(rejected_rewards_);
  w.Size(rejected_observations_);
}

void RlhfAgent::LoadState(CheckpointReader& r) {
  encoder_.LoadState(r);
  LoadRng(r, rng_);
  table_.LoadState(r);
  ma_participation_ = r.F64Vec();
  ma_accuracy_ = r.F64Vec();
  ma_seen_ = r.U8Vec();
  cached_accuracy_ = r.F64Vec();
  cache_valid_ = r.U8Vec();
  max_improvement_seen_ = r.F64();
  global_action_value_ = r.F64Vec();
  global_action_count_ = r.U32Vec();
  run_action_count_ = r.U32Vec();
  run_action_success_ = r.F64Vec();
  run_action_accuracy_ = r.F64Vec();
  reward_history_ = r.F64Vec();
  rejected_rewards_ = r.Size();
  rejected_observations_ = r.Size();
}

}  // namespace floatfl
