// FLOAT's multi-objective Q-learning agent with human feedback (Section 5).
//
// Implements Algorithm 1 with the paper's RQ6 refinements:
//  * multi-objective reward R = w_p * P + w_a * Acc (Equation 2), where each
//    objective enters as a moving average rather than a raw Bellman
//    accumulation, so frequently explored actions are not inflated;
//  * a dynamic learning rate that starts low and grows with training
//    progress, capped at 1.0 (accuracy gains are front-loaded across
//    rounds);
//  * a near-zero discount: the successor state depends on random client
//    resource fluctuations, not on the chosen action, so the gamma-weighted
//    successor term is shrunk toward zero;
//  * balanced exploration that prefers the least-visited action instead of a
//    uniform draw;
//  * a feedback cache (RQ7) that substitutes cached accuracy feedback from
//    similar clients when a dropped-out client cannot report its own.
#ifndef SRC_CORE_RLHF_AGENT_H_
#define SRC_CORE_RLHF_AGENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/q_table.h"
#include "src/core/state_encoder.h"
#include "src/failure/checkpoint_io.h"
#include "src/opt/technique.h"

namespace floatfl {

struct RlhfConfig {
  // Equation-2 objective weights.
  double w_participation = 0.6;
  double w_accuracy = 0.4;
  // Probability of exploring instead of exploiting, decayed linearly with
  // training progress down to epsilon_min.
  double epsilon = 0.25;
  double epsilon_min = 0.02;
  // Successor-state discount (mu in Algorithm 1); kept near zero per RQ1.
  double discount = 0.05;
  // Dynamic learning-rate schedule: lr(r) = clamp(r / total_rounds,
  // min_learning_rate, 1.0).
  size_t total_rounds = 300;
  double min_learning_rate = 0.25;
  // Window of the per-objective moving averages (RQ6). Implemented as an
  // exponential moving average with beta = 1 / window.
  size_t moving_average_window = 10;
  bool balanced_exploration = true;
  // RQ7 feedback cache; disabled in the FLOAT-RL ablation.
  bool cache_dropout_feedback = true;
  uint64_t seed = 1;
};

class RlhfAgent {
 public:
  // The action space defaults to ActionTechniques() (none + the paper's 8
  // accelerations); `num_actions` only varies in the Figure-8 overhead
  // sweeps.
  RlhfAgent(const StateEncoderConfig& encoder_config, const RlhfConfig& config,
            size_t num_actions = 9);

  size_t NumStates() const { return encoder_.NumStates(); }
  size_t NumActions() const { return table_.num_actions(); }

  // Epsilon-greedy action choice for an encoded state.
  size_t ChooseActionIndex(size_t state, size_t round);

  // Full pipeline: encode the observation, pick an action, map it to a
  // technique. Only valid when the action space is ActionTechniques().
  TechniqueKind ChooseTechnique(const ClientObservation& client, const GlobalObservation& global,
                                size_t round);

  // Records the outcome of (state, action): participation success and the
  // accuracy improvement of the aggregation the update fed (normalized
  // internally against the best improvement seen so far). For dropouts,
  // accuracy feedback is estimated from the cache when enabled.
  void FeedbackIndexed(size_t state, size_t action, bool participated,
                       double accuracy_improvement, size_t round);
  void Feedback(const ClientObservation& client, const GlobalObservation& global,
                TechniqueKind technique, bool participated, double accuracy_improvement,
                size_t round);

  double LearningRateFor(size_t round) const;

  // Reward diagnostics (Figure 9's convergence curves).
  const std::vector<double>& RewardHistory() const { return reward_history_; }
  double AverageRewardOver(size_t last_n) const;
  // Fraction of the last `last_n` feedbacks with strictly positive reward —
  // the paper's "absolute reward" view of fine-tuning progress.
  double PositiveRewardFraction(size_t last_n) const;

  // Boundary-validation counters: non-finite (or absurd-magnitude) rewards
  // and non-finite observation fields are rejected/neutralized at the agent
  // boundary instead of poisoning the Q-table (a single NaN
  // accuracy_improvement would otherwise corrupt the moving averages, the
  // reward normalizer and every Q-cell it touches, permanently).
  size_t RejectedRewards() const { return rejected_rewards_; }
  size_t RejectedObservations() const { return rejected_observations_; }

  // Transfers a pre-trained agent's learned state (Figure 9 / RQ3).
  void InitializeFrom(const RlhfAgent& pretrained);

  // Approximate memory footprint of the learned state (Figure 8).
  size_t MemoryBytes() const;

  // Per-action aggregate of the feedback received since construction or the
  // last InitializeFrom (Figure 10's fine-tuned Q-table views): success
  // rate, mean accuracy score and mean Q of the action's visited cells.
  struct ActionSummary {
    TechniqueKind technique = TechniqueKind::kNone;
    size_t visits = 0;          // feedbacks for this action in this run
    double avg_participation = 0.0;
    double avg_accuracy = 0.0;
    double avg_q = 0.0;
  };
  std::vector<ActionSummary> SummarizePerAction() const;

  // Checkpoint/resume of the full learned state, including the exploration
  // RNG, so a resumed agent continues the exact same decision sequence.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

  const QTable& table() const { return table_; }
  QTable& mutable_table() { return table_; }
  const StateEncoder& encoder() const { return encoder_; }
  StateEncoder& mutable_encoder() { return encoder_; }
  const RlhfConfig& config() const { return config_; }

 private:
  static int ActionIndexOf(TechniqueKind kind);
  // Replaces non-finite observation fields with neutral defaults (counted in
  // rejected_observations_) so a poisoned trace cannot derail state encoding.
  ClientObservation SanitizeObservation(const ClientObservation& client);

  StateEncoder encoder_;
  RlhfConfig config_;
  Rng rng_;
  QTable table_;
  // Per-(state, action) exponential moving averages of each objective.
  std::vector<double> ma_participation_;
  std::vector<double> ma_accuracy_;
  std::vector<uint8_t> ma_seen_;
  // Per-(state, action) cached accuracy feedback from successful clients in
  // the same state (RQ7).
  std::vector<double> cached_accuracy_;
  std::vector<uint8_t> cache_valid_;
  double max_improvement_seen_ = 1e-6;
  // Hierarchical fallback: state-agnostic per-action value estimates used in
  // place of never-visited (state, action) cells, so the agent generalizes
  // "prune75 usually works" before it has visited every state.
  std::vector<double> global_action_value_;
  std::vector<uint32_t> global_action_count_;
  // Run-local per-action feedback tallies (reset by InitializeFrom).
  std::vector<uint32_t> run_action_count_;
  std::vector<double> run_action_success_;
  std::vector<double> run_action_accuracy_;
  std::vector<double> reward_history_;
  size_t rejected_rewards_ = 0;
  size_t rejected_observations_ = 0;
};

}  // namespace floatfl

#endif  // SRC_CORE_RLHF_AGENT_H_
