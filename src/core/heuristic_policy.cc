#include "src/core/heuristic_policy.h"

namespace floatfl {
namespace {

// Table-1 "Moderate" band starts at 21 % availability.
constexpr double kModerate = 0.21;

const TechniqueKind kExtreme[] = {TechniqueKind::kPrune75, TechniqueKind::kPartial75,
                                  TechniqueKind::kQuant8};
const TechniqueKind kMild[] = {TechniqueKind::kPrune25, TechniqueKind::kPartial25,
                               TechniqueKind::kQuant16};

}  // namespace

HeuristicPolicy::HeuristicPolicy(uint64_t seed) : rng_(seed) {}

TechniqueKind HeuristicPolicy::Decide(size_t client_id, const ClientObservation& client,
                                      const GlobalObservation& global) {
  (void)client_id;
  (void)global;
  const bool constrained = client.cpu_avail < kModerate && client.net_avail < kModerate;
  const auto& band = constrained ? kExtreme : kMild;
  return band[rng_.UniformInt(3)];
}

}  // namespace floatfl
