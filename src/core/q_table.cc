#include "src/core/q_table.h"

#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace floatfl {

QTable::QTable(size_t num_states, size_t num_actions, Rng& rng, double init_scale)
    : num_states_(num_states),
      num_actions_(num_actions),
      q_(num_states * num_actions, 0.0),
      visits_(num_states * num_actions, 0) {
  FLOATFL_CHECK(num_states > 0 && num_actions > 0);
  if (init_scale > 0.0) {
    for (auto& v : q_) {
      v = rng.Uniform(0.0, init_scale);
    }
  }
}

size_t QTable::Index(size_t state, size_t action) const {
  FLOATFL_CHECK(state < num_states_ && action < num_actions_);
  return state * num_actions_ + action;
}

double QTable::Q(size_t state, size_t action) const { return q_[Index(state, action)]; }

void QTable::SetQ(size_t state, size_t action, double value) {
  // A single NaN/Inf here would spread through MaxQ/BestAction into every
  // future Bellman update; callers must reject bad rewards at their own
  // boundary (RlhfAgent does), so a non-finite value reaching the table is a
  // programming error, not data.
  FLOATFL_CHECK_MSG(std::isfinite(value), "QTable::SetQ value must be finite");
  q_[Index(state, action)] = value;
}

uint32_t QTable::Visits(size_t state, size_t action) const { return visits_[Index(state, action)]; }

void QTable::AddVisit(size_t state, size_t action) { ++visits_[Index(state, action)]; }

size_t QTable::BestAction(size_t state) const {
  size_t best = 0;
  for (size_t a = 1; a < num_actions_; ++a) {
    if (Q(state, a) > Q(state, best)) {
      best = a;
    }
  }
  return best;
}

double QTable::MaxQ(size_t state) const { return Q(state, BestAction(state)); }

size_t QTable::LeastVisitedAction(size_t state) const {
  size_t least = 0;
  for (size_t a = 1; a < num_actions_; ++a) {
    if (Visits(state, a) < Visits(state, least)) {
      least = a;
    }
  }
  return least;
}

size_t QTable::MemoryBytes() const {
  return q_.size() * sizeof(double) + visits_.size() * sizeof(uint32_t);
}

void QTable::InitializeFrom(const QTable& pretrained) {
  FLOATFL_CHECK(pretrained.num_states_ == num_states_);
  FLOATFL_CHECK(pretrained.num_actions_ == num_actions_);
  q_ = pretrained.q_;
  visits_.assign(visits_.size(), 0);
}

bool QTable::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "%zu %zu\n", num_states_, num_actions_);
  for (size_t i = 0; i < q_.size(); ++i) {
    std::fprintf(f, "%.17g %u\n", q_[i], visits_[i]);
  }
  std::fclose(f);
  return true;
}

bool QTable::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  size_t states = 0;
  size_t actions = 0;
  if (std::fscanf(f, "%zu %zu", &states, &actions) != 2 || states != num_states_ ||
      actions != num_actions_) {
    std::fclose(f);
    return false;
  }
  for (size_t i = 0; i < q_.size(); ++i) {
    double q = 0.0;
    uint32_t v = 0;
    if (std::fscanf(f, "%lg %u", &q, &v) != 2) {
      std::fclose(f);
      return false;
    }
    q_[i] = q;
    visits_[i] = v;
  }
  std::fclose(f);
  return true;
}

void QTable::SaveState(CheckpointWriter& w) const {
  w.F64Vec(q_);
  w.U32Vec(visits_);
}

void QTable::LoadState(CheckpointReader& r) {
  q_ = r.F64Vec();
  visits_ = r.U32Vec();
}

}  // namespace floatfl
