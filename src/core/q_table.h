// Flat Q-table with visit counts, persistence, and fine-tune transfer.
//
// The agent's entire learned state is (num_states x num_actions) doubles
// plus visit counts, which is what keeps FLOAT's memory overhead under
// 0.2 MB at the paper's 125-state / 8-action operating point (Figure 8) and
// what makes pre-train -> fine-tune transfer (Figure 9) a simple copy.
#ifndef SRC_CORE_Q_TABLE_H_
#define SRC_CORE_Q_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

class Rng;

class QTable {
 public:
  // Values initialized uniformly in [0, init_scale) (Algorithm 1 starts from
  // random Q values); pass init_scale = 0 for a zero table.
  QTable(size_t num_states, size_t num_actions, Rng& rng, double init_scale = 0.01);

  size_t num_states() const { return num_states_; }
  size_t num_actions() const { return num_actions_; }

  double Q(size_t state, size_t action) const;
  void SetQ(size_t state, size_t action, double value);
  uint32_t Visits(size_t state, size_t action) const;
  void AddVisit(size_t state, size_t action);

  // Action with the largest Q in `state` (lowest index wins ties).
  size_t BestAction(size_t state) const;
  double MaxQ(size_t state) const;
  // Least-visited action in `state` (balanced exploration, RQ6).
  size_t LeastVisitedAction(size_t state) const;

  // Approximate resident size of the learned state, bytes.
  size_t MemoryBytes() const;

  // Copies Q values (not visit counts) from a pre-trained table; shapes must
  // match. Visit counts reset so fine-tuning re-explores cheaply.
  void InitializeFrom(const QTable& pretrained);

  // Text persistence. Returns false on I/O failure or shape mismatch.
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);

  // Binary checkpoint of the learned values and visit counts; the shape is
  // rebuilt from config at construction, so only the payload is stored.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t Index(size_t state, size_t action) const;

  size_t num_states_;
  size_t num_actions_;
  std::vector<double> q_;
  std::vector<uint32_t> visits_;
};

}  // namespace floatfl

#endif  // SRC_CORE_Q_TABLE_H_
