// The rule-based tuning baseline of Section 4.4.
//
// (1) When CPU and network availability are both below "Moderate" (the
//     Table-1 21-40 % band), apply an extreme optimization: 75 % pruning,
//     75 % partial training, or 8-bit quantization.
// (2) Otherwise apply a mild one: 25 % pruning, 25 % partial training, or
//     16-bit quantization.
// The technique within each band is chosen at random; only the
// configuration level is chosen by the rules — exactly the heuristic FLOAT
// is compared against in Figure 6.
#ifndef SRC_CORE_HEURISTIC_POLICY_H_
#define SRC_CORE_HEURISTIC_POLICY_H_

#include <string>

#include "src/common/rng.h"
#include "src/failure/checkpoint_util.h"
#include "src/fl/tuning_policy.h"

namespace floatfl {

class HeuristicPolicy final : public TuningPolicy {
 public:
  explicit HeuristicPolicy(uint64_t seed);

  TechniqueKind Decide(size_t client_id, const ClientObservation& client,
                       const GlobalObservation& global) override;
  void Report(size_t, const ClientObservation&, const GlobalObservation&, TechniqueKind, bool,
              double) override {}
  std::string Name() const override { return "heuristic"; }

  void SaveState(CheckpointWriter& w) const override { SaveRng(w, rng_); }
  void LoadState(CheckpointReader& r) override { LoadRng(r, rng_); }

 private:
  Rng rng_;
};

}  // namespace floatfl

#endif  // SRC_CORE_HEURISTIC_POLICY_H_
