// Per-client lookup-table variant of FLOAT (RQ2).
//
// Privacy-conscious clients need not share system-usage data with the
// aggregator: each client trains its own Q-table locally (sub-millisecond,
// <0.2 MB — Figure 8), at the cost of no cross-client generalization. This
// controller manages one RlhfAgent per client behind the same TuningPolicy
// interface, so the engines cannot tell the difference; the default
// FloatController is the centralized collective-table variant.
#ifndef SRC_CORE_PER_CLIENT_CONTROLLER_H_
#define SRC_CORE_PER_CLIENT_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/rlhf_agent.h"
#include "src/fl/tuning_policy.h"

namespace floatfl {

class PerClientController final : public TuningPolicy {
 public:
  PerClientController(size_t num_clients, const StateEncoderConfig& encoder_config,
                      const RlhfConfig& rlhf_config);

  static std::unique_ptr<PerClientController> MakeDefault(size_t num_clients, uint64_t seed,
                                                          size_t total_rounds);

  TechniqueKind Decide(size_t client_id, const ClientObservation& client,
                       const GlobalObservation& global) override;
  void Report(size_t client_id, const ClientObservation& client, const GlobalObservation& global,
              TechniqueKind technique, bool participated, double accuracy_improvement) override;
  std::string Name() const override { return "float-per-client"; }

  void SaveState(CheckpointWriter& w) const override;
  void LoadState(CheckpointReader& r) override;

  RlhfAgent& agent(size_t client_id);
  size_t NumClients() const { return agents_.size(); }

  // Aggregate memory across all local tables (scales linearly in clients).
  size_t TotalMemoryBytes() const;

 private:
  std::vector<std::unique_ptr<RlhfAgent>> agents_;
  std::vector<size_t> rounds_;  // per-client local round counters
};

}  // namespace floatfl

#endif  // SRC_CORE_PER_CLIENT_CONTROLLER_H_
