// Bounded on-disk ring of round-stamped checkpoint archives (DESIGN.md §14).
//
// Layout: one directory holding `ckpt-<10-digit round>.flck` archives plus
// whatever `*.tmp` wreckage killed writers left behind. The round number in
// the name is load-bearing twice over: retention GC keeps the newest
// `depth` archives by round, and recovery uses the largest round named
// *anywhere* in the directory (archives and torn temps alike) as proof of
// how far a previous life got — the basis of the rounds-replayed accounting.
// The ring never trusts a name for *content*: every candidate archive is
// verified by the checkpointer's payload hash before it is restored.
#ifndef SRC_RECOVERY_CHECKPOINT_RING_H_
#define SRC_RECOVERY_CHECKPOINT_RING_H_

#include <cstddef>
#include <string>
#include <vector>

namespace floatfl {

class CheckpointRing {
 public:
  CheckpointRing() = default;
  CheckpointRing(std::string dir, size_t depth);

  // Creates the ring directory (one level) if missing. Returns false when it
  // cannot exist as a directory.
  bool EnsureDir() const;

  // Archive path for a checkpoint taken after `rounds_done` rounds.
  std::string PathFor(size_t rounds_done) const;

  // Round stamps of the archives currently on disk, ascending. Torn temps
  // and foreign files are not listed. Empty when the directory is missing.
  std::vector<size_t> Rounds() const;

  // Largest round stamp named anywhere in the directory — final archives
  // *and* in-flight `*.tmp` files — or 0 when nothing is stamped. Evidence
  // of the furthest round any previous life provably reached.
  size_t FurthestNamedRound() const;

  // Deletes leftover `*.tmp` files (killed writers). Returns how many.
  size_t SweepTemps() const;

  // Deletes the oldest archives beyond `depth`. Returns how many.
  size_t Collect() const;

  const std::string& dir() const { return dir_; }
  size_t depth() const { return depth_; }

 private:
  std::string dir_;
  size_t depth_ = 0;
};

}  // namespace floatfl

#endif  // SRC_RECOVERY_CHECKPOINT_RING_H_
