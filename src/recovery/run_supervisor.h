// Crash-consistent run supervisor (DESIGN.md §14).
//
// Wraps any of the four engines' stepping APIs and drives a run durably:
// every `checkpoint_every` rounds the whole engine state is written through
// an injectable DurableFile (fsync'd temp + rename) into a bounded on-disk
// checkpoint ring; on startup Recover() scans the ring, verifies candidates
// newest -> oldest via the checkpointer's payload hash, skips corrupt or
// torn archives, restores the newest good one and leaves the engine ready to
// replay the lost rounds bit-exactly. The contract is kill-anywhere: for
// every named crashpoint (src/recovery/crash_plan.h) a killed-and-relaunched
// run completes with results bit-identical to an uninterrupted one — tested,
// not assumed (tests/recovery/crash_sweep_test.cc, kill_harness_test.cc).
//
// A disabled RecoveryConfig (the default) makes the supervisor a strict
// no-op pass-through: zero filesystem I/O, results byte-identical to calling
// the engine's own Run loop.
#ifndef SRC_RECOVERY_RUN_SUPERVISOR_H_
#define SRC_RECOVERY_RUN_SUPERVISOR_H_

#include <cstddef>
#include <functional>

#include "src/failure/durable_file.h"
#include "src/recovery/checkpoint_ring.h"
#include "src/recovery/crash_plan.h"
#include "src/recovery/recovery_config.h"

namespace floatfl {

class SyncEngine;
class AsyncEngine;
class RealFlEngine;
class VflEngine;

// What one process life observed; per-life counterpart of the cumulative
// RecoveryTracker the engine carries across lives.
struct RecoveryReport {
  bool recovered = false;      // this life restored state from the ring
  size_t rounds_restored = 0;  // engine round counter right after restore
  size_t archives_scanned = 0;
  size_t archives_skipped = 0;  // refused as corrupt/torn/foreign
  size_t rounds_replayed = 0;   // work a previous life did past the restore
  size_t temps_swept = 0;
  size_t checkpoints_written = 0;
  size_t checkpoints_failed = 0;
  size_t checkpoints_collected = 0;
};

enum class SupervisedOutcome {
  kCompleted,
  // A soft crash plan fired: the engine is dead mid-run exactly as a kill
  // would leave it. Abandon the engine, construct a fresh one, Recover().
  kKilled,
};

template <typename Engine>
class RunSupervisor {
 public:
  using StepFn = std::function<void(Engine&, size_t round)>;

  // `engine` is not owned and must be freshly constructed (Recover restores
  // into it). The default step runs one round of the engine's natural loop:
  // sync RunRound(round), async RunUntil(round + 1), real RunRound(kNone),
  // VFL TrainEpoch(kNone); SetStep overrides it (policy-driven rounds,
  // technique schedules).
  RunSupervisor(const RecoveryConfig& config, Engine& engine);

  void SetStep(StepFn step) { step_ = std::move(step); }
  // Injects the checkpoint writer (not owned; default = the fsync'd
  // DurableFile). Ignored while a crash plan is set — the plan's
  // fault-injecting writer takes over so torn writes land where a kill
  // would put them.
  void SetDurableFile(DurableFile* io) { io_ = io; }
  // Arms deterministic process-fault injection (not owned; null disarms).
  void SetCrashPlan(CrashPlan* plan);

  // Scans the ring and restores the newest verifiable archive, counting
  // skipped corrupt ones and sweeping torn temps. Returns the engine's
  // round counter after recovery (0 on a fresh start). No-op when disabled.
  size_t Recover();

  // Drives the engine from its current round to `total_rounds`, saving a
  // ring checkpoint (and garbage-collecting the ring) at every cadence
  // boundary and after the final round. A failed save (disk fault) is
  // counted and survived; a fired soft crash plan returns kKilled with the
  // engine abandoned mid-run.
  SupervisedOutcome Run(size_t total_rounds);

  // Recover() + Run(): the whole lifecycle of one process life.
  SupervisedOutcome RecoverAndRun(size_t total_rounds) {
    Recover();
    return Run(total_rounds);
  }

  const RecoveryReport& report() const { return report_; }
  const CheckpointRing& ring() const { return ring_; }
  const RecoveryConfig& config() const { return config_; }

 private:
  // Saves one ring checkpoint stamped `rounds_done`. Returns false when a
  // soft kill fired inside the save (the caller must unwind).
  bool SaveRingCheckpoint(size_t rounds_done);
  DurableFile& ActiveIo();

  RecoveryConfig config_;
  Engine& engine_;
  StepFn step_;
  CheckpointRing ring_;
  DurableFile* io_ = nullptr;
  CrashPlan* plan_ = nullptr;
  FaultyDurableFile faulty_io_{nullptr};
  RecoveryReport report_;
};

}  // namespace floatfl

#endif  // SRC_RECOVERY_RUN_SUPERVISOR_H_
