#include "src/recovery/checkpoint_ring.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "src/failure/durable_file.h"

namespace floatfl {
namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
constexpr char kSuffix[] = ".flck";
constexpr size_t kRoundDigits = 10;

// Parses "ckpt-0000000042.flck" (optionally "+ .tmp") into its round stamp.
// Returns false for anything else — foreign files are never touched.
bool ParseStamp(const std::string& name, bool allow_temp, size_t* round) {
  std::string base = name;
  const std::string temp_suffix = DurableFile::TempSuffix();
  if (base.size() > temp_suffix.size() &&
      base.compare(base.size() - temp_suffix.size(), temp_suffix.size(), temp_suffix) == 0) {
    if (!allow_temp) {
      return false;
    }
    base.resize(base.size() - temp_suffix.size());
  }
  const std::string suffix = kSuffix;
  if (base.size() != kPrefixLen + kRoundDigits + suffix.size() ||
      base.compare(0, kPrefixLen, kPrefix) != 0 ||
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  size_t value = 0;
  for (size_t i = kPrefixLen; i < kPrefixLen + kRoundDigits; ++i) {
    const char c = base[i];
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *round = value;
  return true;
}

bool IsTempName(const std::string& name) {
  const std::string temp_suffix = DurableFile::TempSuffix();
  return name.size() > temp_suffix.size() &&
         name.compare(name.size() - temp_suffix.size(), temp_suffix.size(), temp_suffix) == 0;
}

// Calls `visit(name)` for every regular entry in `dir`; missing directory is
// an empty listing, not an error.
template <typename Visitor>
void ListDir(const std::string& dir, Visitor visit) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    visit(name);
  }
  ::closedir(d);
}

}  // namespace

CheckpointRing::CheckpointRing(std::string dir, size_t depth)
    : dir_(std::move(dir)), depth_(depth) {}

bool CheckpointRing::EnsureDir() const {
  if (dir_.empty()) {
    return false;
  }
  struct stat st;
  if (::stat(dir_.c_str(), &st) == 0) {
    return S_ISDIR(st.st_mode);
  }
  return ::mkdir(dir_.c_str(), 0755) == 0;
}

std::string CheckpointRing::PathFor(size_t rounds_done) const {
  char stamp[kRoundDigits + 1];
  std::snprintf(stamp, sizeof(stamp), "%010zu", rounds_done);
  return dir_ + "/" + kPrefix + stamp + kSuffix;
}

std::vector<size_t> CheckpointRing::Rounds() const {
  std::vector<size_t> rounds;
  ListDir(dir_, [&rounds](const std::string& name) {
    size_t round = 0;
    if (!IsTempName(name) && ParseStamp(name, /*allow_temp=*/false, &round)) {
      rounds.push_back(round);
    }
  });
  std::sort(rounds.begin(), rounds.end());
  return rounds;
}

size_t CheckpointRing::FurthestNamedRound() const {
  size_t furthest = 0;
  ListDir(dir_, [&furthest](const std::string& name) {
    size_t round = 0;
    if (ParseStamp(name, /*allow_temp=*/true, &round)) {
      furthest = std::max(furthest, round);
    }
  });
  return furthest;
}

size_t CheckpointRing::SweepTemps() const {
  std::vector<std::string> temps;
  ListDir(dir_, [&temps](const std::string& name) {
    size_t round = 0;
    if (IsTempName(name) && ParseStamp(name, /*allow_temp=*/true, &round)) {
      temps.push_back(name);
    }
  });
  size_t swept = 0;
  for (const std::string& name : temps) {
    if (::unlink((dir_ + "/" + name).c_str()) == 0) {
      ++swept;
    }
  }
  return swept;
}

size_t CheckpointRing::Collect() const {
  const std::vector<size_t> rounds = Rounds();
  if (rounds.size() <= depth_) {
    return 0;
  }
  size_t collected = 0;
  for (size_t i = 0; i + depth_ < rounds.size(); ++i) {
    if (::unlink(PathFor(rounds[i]).c_str()) == 0) {
      ++collected;
    }
  }
  return collected;
}

}  // namespace floatfl
