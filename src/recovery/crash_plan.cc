#include "src/recovery/crash_plan.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>

#include "src/common/rng.h"

namespace floatfl {
namespace {

// Seed salts separating the kill draws from the disk-fault draws (the same
// (round, site) key must not correlate them).
constexpr uint64_t kKillSalt = 0x6B696C6C9E3779B9ULL;        // "kill"
constexpr uint64_t kShortWriteSalt = 0x73687274C2B2AE35ULL;  // "shrt"
constexpr uint64_t kEnospcSalt = 0x656E6F73D6E8FEB8ULL;      // "enos"

// Pure-function Bernoulli keyed on (seed ^ salt, round, site): no chain
// state, so a relaunched life re-draws identically for replayed rounds.
bool KeyedDraw(uint64_t seed, uint64_t salt, size_t round, size_t site, double p) {
  if (p <= 0.0) {
    return false;
  }
  Rng draw = Rng(seed ^ salt).ForkKeyed(Rng::StreamKey(round, site));
  return draw.Bernoulli(p);
}

// Writes the first `count` bytes of `bytes` to `path` and stops — the torn
// temp a kill or a full disk leaves mid-write. Best effort by design: the
// caller is about to report a crash or an I/O failure either way.
void WriteTorn(const std::string& path, const std::string& bytes, size_t count) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return;
  }
  const size_t n = count < bytes.size() ? count : bytes.size();
  if (n > 0) {
    [[maybe_unused]] const ssize_t written = ::write(fd, bytes.data(), n);
  }
  ::close(fd);
}

}  // namespace

const char* CrashSiteName(CrashSite site) {
  switch (site) {
    case CrashSite::kBeforeSave:
      return "before-save";
    case CrashSite::kMidWrite:
      return "mid-write";
    case CrashSite::kAfterTempBeforeRename:
      return "after-temp-before-rename";
    case CrashSite::kAfterRename:
      return "after-rename";
    case CrashSite::kMidRound:
      return "mid-round";
  }
  return "unknown";
}

const char* DiskFaultName(DiskFault fault) {
  switch (fault) {
    case DiskFault::kNone:
      return "none";
    case DiskFault::kShortWrite:
      return "short-write";
    case DiskFault::kEnospc:
      return "enospc";
    case DiskFault::kUnwritableDir:
      return "unwritable-dir";
  }
  return "unknown";
}

CrashPlan::CrashPlan(const CrashPlanConfig& config) : config_(config) {}

bool CrashPlan::FiresAt(size_t round, CrashSite site) {
  bool fires = false;
  if (config_.directed) {
    if (config_.trigger_kill && !directed_kill_spent_ && site == config_.trigger_site &&
        round >= config_.trigger_round) {
      directed_kill_spent_ = true;
      fires = true;
    }
  } else {
    // The kill ordinal joins the key: a relaunched life replays the killed
    // round with one more kill behind it and re-draws, so a stochastic plan
    // cannot pin the same (round, site) forever and starve progress. Still
    // fully deterministic given the kill history.
    const uint64_t life_seed = config_.seed + 0x9E3779B97F4A7C15ULL * (kills_fired_ + 1);
    fires = KeyedDraw(life_seed, kKillSalt, round, static_cast<size_t>(site),
                      config_.crash_prob);
  }
  if (!fires) {
    return false;
  }
  ++kills_fired_;
  return true;
}

void CrashPlan::Kill() const {
  if (config_.hard_kill) {
    // SIGKILL semantics: no destructors, no stream flushes, no atexit hooks
    // — the process image vanishes with whatever the kernel already has.
    std::_Exit(kKillExitCode);
  }
}

DiskFault CrashPlan::DiskFaultAt(size_t round) {
  if (config_.directed) {
    if (config_.trigger_disk_fault != DiskFault::kNone && !directed_fault_spent_ &&
        round >= config_.trigger_round) {
      directed_fault_spent_ = true;
      return config_.trigger_disk_fault;
    }
    return DiskFault::kNone;
  }
  if (KeyedDraw(config_.seed, kShortWriteSalt, round, 0, config_.short_write_prob)) {
    return DiskFault::kShortWrite;
  }
  if (KeyedDraw(config_.seed, kEnospcSalt, round, 0, config_.enospc_prob)) {
    return DiskFault::kEnospc;
  }
  return DiskFault::kNone;
}

bool FaultyDurableFile::Write(const std::string& path, const std::string& bytes) {
  if (plan_ == nullptr) {
    return DurableFile::Write(path, bytes);
  }
  const std::string tmp = path + TempSuffix();

  // Non-fatal disk faults first: the save fails, the process lives on.
  switch (plan_->DiskFaultAt(round_)) {
    case DiskFault::kUnwritableDir:
      // open() of the temp fails: nothing touches the disk at all.
      return false;
    case DiskFault::kEnospc:
      // The first write() fails: an empty temp is left behind.
      WriteTorn(tmp, bytes, 0);
      return false;
    case DiskFault::kShortWrite:
      // The device fills mid-write: a torn temp is left behind.
      WriteTorn(tmp, bytes, plan_->torn_byte());
      return false;
    case DiskFault::kNone:
      break;
  }

  // Kill windows inside the write sequence, in the order the sequence
  // visits them. Each branch first puts the disk into exactly the state a
  // kill at that instant leaves, then dies (hard) or unwinds (soft).
  if (plan_->FiresAt(round_, CrashSite::kMidWrite)) {
    WriteTorn(tmp, bytes, plan_->torn_byte());
    plan_->Kill();
    crashed_ = true;
    return false;
  }
  if (plan_->FiresAt(round_, CrashSite::kAfterTempBeforeRename)) {
    WriteTorn(tmp, bytes, bytes.size());
    plan_->Kill();
    crashed_ = true;
    return false;
  }
  const bool ok = DurableFile::Write(path, bytes);
  if (plan_->FiresAt(round_, CrashSite::kAfterRename)) {
    plan_->Kill();
    crashed_ = true;
    return false;
  }
  return ok;
}

}  // namespace floatfl
