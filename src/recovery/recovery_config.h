// Configuration of the crash-consistent run supervisor (DESIGN.md §14).
//
// Deliberately *not* part of ExperimentConfig / RealFlConfig: the checkpoint
// cadence and ring depth are operational knobs of one process life, like
// num_threads — a run checkpointed every 5 rounds must restore into a
// supervisor checkpointing every 20, so none of these fields may join the
// config fingerprint. Keeping them out of the engine configs makes that
// impossible to get wrong.
//
// A default-constructed RecoveryConfig (enabled == false) is a strict no-op:
// the supervisor performs zero filesystem I/O, never scans or writes a ring,
// and drives the engine byte-identically to calling its Run loop directly.
#ifndef SRC_RECOVERY_RECOVERY_CONFIG_H_
#define SRC_RECOVERY_RECOVERY_CONFIG_H_

#include <cstddef>
#include <string>

namespace floatfl {

struct RecoveryConfig {
  // Off = the supervisor is a transparent pass-through (strict no-op).
  bool enabled = false;
  // Directory holding the checkpoint ring. Created (one level) on first use.
  // Required non-empty when enabled.
  std::string dir;
  // Rounds between ring checkpoints. A kill loses at most this many rounds
  // of work (they are replayed bit-exactly on recovery).
  size_t checkpoint_every = 5;
  // Archives retained on disk; older ones are garbage-collected after each
  // successful save. Depth >= 2 is what makes recovery survive a *corrupt*
  // newest archive (torn by a kill mid-write) by falling back one slot.
  size_t ring_depth = 3;
};

// Aborts the process with a descriptive message when `config` violates a
// supervisor invariant (enabled with an empty dir, zero cadence, zero
// depth). Called at supervisor construction so misconfigurations fail
// before any round runs.
void ValidateRecoveryConfig(const RecoveryConfig& config);

}  // namespace floatfl

#endif  // SRC_RECOVERY_RECOVERY_CONFIG_H_
