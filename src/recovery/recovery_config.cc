#include "src/recovery/recovery_config.h"

#include "src/common/check.h"

namespace floatfl {

void ValidateRecoveryConfig(const RecoveryConfig& config) {
  if (!config.enabled) {
    return;
  }
  FLOATFL_CHECK_MSG(!config.dir.empty(), "recovery.dir must be set when recovery is enabled");
  FLOATFL_CHECK_MSG(config.checkpoint_every >= 1, "recovery.checkpoint_every must be >= 1");
  FLOATFL_CHECK_MSG(config.ring_depth >= 1, "recovery.ring_depth must be >= 1");
}

}  // namespace floatfl
