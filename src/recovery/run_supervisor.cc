#include "src/recovery/run_supervisor.h"

#include "src/failure/checkpointer.h"
#include "src/fl/async_engine.h"
#include "src/fl/real_engine.h"
#include "src/fl/sync_engine.h"
#include "src/fl/vfl_engine.h"

namespace floatfl {
namespace {

// Round-counter and default-step traits mapping the four engines' stepping
// APIs onto the supervisor's uniform "rounds done" clock (async versions and
// VFL epochs are those engines' round analogues, the same convention the
// fault injector and guard use).
size_t RoundsDone(const SyncEngine& engine) { return engine.RoundsRun(); }
size_t RoundsDone(const AsyncEngine& engine) { return engine.Version(); }
size_t RoundsDone(const RealFlEngine& engine) { return engine.RoundsRun(); }
size_t RoundsDone(const VflEngine& engine) { return engine.EpochsRun(); }

void DefaultStep(SyncEngine& engine, size_t round) { engine.RunRound(round); }
void DefaultStep(AsyncEngine& engine, size_t round) { engine.RunUntil(round + 1); }
void DefaultStep(RealFlEngine& engine, size_t) { engine.RunRound(TechniqueKind::kNone); }
void DefaultStep(VflEngine& engine, size_t) { engine.TrainEpoch(TechniqueKind::kNone); }

}  // namespace

template <typename Engine>
RunSupervisor<Engine>::RunSupervisor(const RecoveryConfig& config, Engine& engine)
    : config_(config),
      engine_(engine),
      step_([](Engine& e, size_t round) { DefaultStep(e, round); }),
      ring_(config.dir, config.ring_depth) {
  ValidateRecoveryConfig(config_);
}

template <typename Engine>
void RunSupervisor<Engine>::SetCrashPlan(CrashPlan* plan) {
  plan_ = plan;
  faulty_io_ = FaultyDurableFile(plan);
}

template <typename Engine>
DurableFile& RunSupervisor<Engine>::ActiveIo() {
  if (plan_ != nullptr) {
    return faulty_io_;
  }
  return io_ != nullptr ? *io_ : DefaultDurableFile();
}

template <typename Engine>
size_t RunSupervisor<Engine>::Recover() {
  if (!config_.enabled) {
    return RoundsDone(engine_);
  }
  ring_.EnsureDir();
  // Evidence first, cleanup second: the furthest round stamped anywhere in
  // the directory — torn temps included — proves how far a previous life
  // got, and is the basis of the rounds-replayed accounting.
  const size_t furthest = ring_.FurthestNamedRound();
  const size_t temps = ring_.SweepTemps();
  const std::vector<size_t> rounds = ring_.Rounds();

  size_t skipped = 0;
  bool restored = false;
  size_t restored_round = 0;
  for (auto it = rounds.rbegin(); it != rounds.rend(); ++it) {
    // Restore hash-verifies the payload in full before touching the engine,
    // so a refused candidate leaves it pristine for the next-older one.
    if (Checkpointer::Restore(ring_.PathFor(*it), engine_)) {
      restored = true;
      restored_round = *it;
      break;
    }
    ++skipped;
  }

  report_.recovered = restored;
  report_.archives_scanned = skipped + (restored ? 1 : 0);
  report_.archives_skipped = skipped;
  report_.temps_swept = temps;
  report_.rounds_restored = RoundsDone(engine_);
  report_.rounds_replayed = furthest > restored_round ? furthest - restored_round : 0;

  // The cumulative tracker rides inside the engine state, so everything
  // recorded now is itself durable from the next checkpoint on.
  RecoveryTracker& tracker = engine_.recovery_tracker();
  if (restored) {
    tracker.RecordRestart();
  }
  tracker.RecordArchivesSkipped(skipped);
  tracker.RecordRoundsReplayed(report_.rounds_replayed);
  tracker.RecordTempsSwept(temps);
  return RoundsDone(engine_);
}

template <typename Engine>
bool RunSupervisor<Engine>::SaveRingCheckpoint(size_t rounds_done) {
  if (plan_ != nullptr && plan_->FiresAt(rounds_done, CrashSite::kBeforeSave)) {
    // Nothing written yet: the kill loses everything since the last archive.
    plan_->Kill();
    return false;
  }
  ring_.EnsureDir();
  DurableFile& io = ActiveIo();
  if (plan_ != nullptr) {
    faulty_io_.Arm(rounds_done);
  }
  const bool saved = Checkpointer::Save(ring_.PathFor(rounds_done), engine_, io);
  if (plan_ != nullptr && faulty_io_.crashed()) {
    return false;
  }
  RecoveryTracker& tracker = engine_.recovery_tracker();
  if (saved) {
    tracker.RecordCheckpointWritten();
    ++report_.checkpoints_written;
    const size_t collected = ring_.Collect();
    tracker.RecordCheckpointsCollected(collected);
    report_.checkpoints_collected += collected;
  } else {
    // Disk fault (unwritable dir, ENOSPC, short write): the run limps on
    // with the previous archive one cadence staler — never crashes.
    tracker.RecordCheckpointFailed();
    ++report_.checkpoints_failed;
  }
  return true;
}

template <typename Engine>
SupervisedOutcome RunSupervisor<Engine>::Run(size_t total_rounds) {
  while (RoundsDone(engine_) < total_rounds) {
    const size_t round = RoundsDone(engine_);
    step_(engine_, round);
    if (plan_ != nullptr && plan_->FiresAt(round, CrashSite::kMidRound)) {
      // The round's work exists only in memory and dies with the process.
      plan_->Kill();
      return SupervisedOutcome::kKilled;
    }
    const size_t done = RoundsDone(engine_);
    if (config_.enabled && (done % config_.checkpoint_every == 0 || done >= total_rounds)) {
      // Cadence on the absolute round stamp, not a per-life counter: a
      // relaunched life re-saves at the same boundaries it would have hit
      // uninterrupted, so the ring's layout is independent of kill history.
      if (!SaveRingCheckpoint(done)) {
        return SupervisedOutcome::kKilled;
      }
    }
  }
  return SupervisedOutcome::kCompleted;
}

template class RunSupervisor<SyncEngine>;
template class RunSupervisor<AsyncEngine>;
template class RunSupervisor<RealFlEngine>;
template class RunSupervisor<VflEngine>;

}  // namespace floatfl
