// Deterministic process-fault injection for the run supervisor
// (DESIGN.md §14).
//
// The durability claim — "kill the process at any instant, relaunch, finish
// with bit-identical results" — is only testable if the kill instants are
// named and reachable on demand. CrashPlan enumerates every window the
// checkpoint write sequence has (before anything is written; mid-write with
// the temp torn at byte k; temp durable but the rename not done; archive
// durable with the death right after; and between rounds with work not yet
// persisted) plus the non-fatal disk faults a save can hit (short write,
// device full, unwritable directory), and decides deterministically —
// either by a directed one-shot trigger (the crashpoint-sweep tests) or by
// (seed, round, site)-keyed Bernoulli draws (the bench's crash-rate sweeps)
// — whether each visited site fires.
//
// A fired kill comes in two flavors: `hard_kill` calls std::_Exit, which for
// durability purposes is SIGKILL (no destructors, no flushes, no atexit) and
// is what the fork/relaunch harness uses on real child processes; soft mode
// records the kill and unwinds through RunSupervisor::Run, which abandons
// the engine exactly as a kill would abandon the process image — same bytes
// on disk either way, so the in-process sweep covers every site cheaply and
// sanitizer-friendly.
#ifndef SRC_RECOVERY_CRASH_PLAN_H_
#define SRC_RECOVERY_CRASH_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/failure/durable_file.h"

namespace floatfl {

// Named instants a kill can arrive at, ordered as the save sequence visits
// them. kMidRound is the between-saves window: the round's work exists only
// in memory and dies with the process.
enum class CrashSite : uint32_t {
  kBeforeSave = 0,
  kMidWrite,                // temp torn at torn_byte, then death
  kAfterTempBeforeRename,   // temp fully durable, final name never appears
  kAfterRename,             // archive fully durable, death right after
  kMidRound,                // after the engine stepped, before the cadence check
};
inline constexpr size_t kNumCrashSites = 5;
const char* CrashSiteName(CrashSite site);

// Non-fatal save failures: Save returns false, the run limps on with the
// previous archive one cadence staler.
enum class DiskFault : uint32_t {
  kNone = 0,
  kShortWrite,      // only the first torn_byte bytes reach the temp
  kEnospc,          // the write fails outright (device full)
  kUnwritableDir,   // the temp cannot even be created
};
inline constexpr size_t kNumDiskFaults = 3;  // excluding kNone
const char* DiskFaultName(DiskFault fault);

struct CrashPlanConfig {
  uint64_t seed = 0;
  // Keyed per-(round, site) kill probability for stochastic sweeps. Draws
  // are pure functions of (seed, kill ordinal, round, site): deterministic
  // given the kill history, but a replayed round re-draws under the next
  // ordinal after each kill, so a stochastic plan can never pin the same
  // site forever and starve progress.
  double crash_prob = 0.0;
  // Keyed per-round disk-fault probabilities, drawn at each save attempt.
  double short_write_prob = 0.0;
  double enospc_prob = 0.0;

  // Directed one-shot kill: fire exactly once, at the first visit to
  // `trigger_site` with round >= trigger_round. The crashpoint-sweep tests
  // aim one of these at every site in turn. `trigger_kill = false` keeps a
  // directed plan fault-only (disk faults fire, no kill ever does).
  bool directed = false;
  bool trigger_kill = true;
  size_t trigger_round = 0;
  CrashSite trigger_site = CrashSite::kBeforeSave;
  // Directed one-shot disk fault at the first save with round >=
  // trigger_round (independent of the kill trigger).
  DiskFault trigger_disk_fault = DiskFault::kNone;

  // Bytes of the payload that reach the temp before a torn or short write
  // gives out.
  size_t torn_byte = 16;
  // true: a fired kill calls std::_Exit(kKillExitCode) on the spot (the
  // fork/relaunch harness). false: the kill is recorded and the supervisor
  // unwinds, abandoning the engine (the in-process sweep).
  bool hard_kill = false;
};

class CrashPlan {
 public:
  // The exit code a hard kill dies with; the relaunch harness asserts it to
  // distinguish a planned kill from a genuine crash.
  static constexpr int kKillExitCode = 87;

  CrashPlan() = default;  // never fires
  explicit CrashPlan(const CrashPlanConfig& config);

  // True when the plan kills the process at (round, site). Only the
  // *decision*: the caller stages the disk into the state a kill at that
  // instant leaves (torn temp, durable temp, renamed archive), then calls
  // Kill() — which dies via std::_Exit in hard mode and is a no-op in soft
  // mode, where the caller unwinds instead.
  bool FiresAt(size_t round, CrashSite site);
  // Dies on the spot in hard mode (std::_Exit(kKillExitCode), SIGKILL
  // semantics); returns in soft mode.
  void Kill() const;
  // The disk fault (if any) afflicting the save attempted at `round`.
  DiskFault DiskFaultAt(size_t round);

  size_t torn_byte() const { return config_.torn_byte; }
  bool hard_kill() const { return config_.hard_kill; }
  // Soft kills recorded so far (a hard kill leaves no one to ask).
  size_t KillsFired() const { return kills_fired_; }

 private:
  CrashPlanConfig config_;
  bool directed_kill_spent_ = false;
  bool directed_fault_spent_ = false;
  size_t kills_fired_ = 0;
};

// DurableFile that consults a CrashPlan at every crashpoint and disk-fault
// window of the write sequence. Arm(round) keys the next Write; after a
// Write that "crashed" in soft mode, crashed() is true and the file state on
// disk is byte-for-byte what a real kill at that instant would leave.
class FaultyDurableFile : public DurableFile {
 public:
  // Neither pointer is owned; `plan` may be null (plain durable writes).
  explicit FaultyDurableFile(CrashPlan* plan) : plan_(plan) {}

  void Arm(size_t round) {
    round_ = round;
    crashed_ = false;
  }
  bool crashed() const { return crashed_; }

  bool Write(const std::string& path, const std::string& bytes) override;

 private:
  CrashPlan* plan_;
  size_t round_ = 0;
  bool crashed_ = false;
};

}  // namespace floatfl

#endif  // SRC_RECOVERY_CRASH_PLAN_H_
