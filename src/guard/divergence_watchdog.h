// Per-round health checks on the global training trajectory.
//
// The watchdog sees one HealthSignal per aggregation round — the same fields
// on every engine (test accuracy + test loss on the real engines, surrogate
// global accuracy with a zero loss otherwise) — and classifies the round as
// healthy or as one of three divergence modes. It is pure bookkeeping: no
// RNG, no floating-point accumulation across threads, so verdicts are
// bit-identical for any thread count.
#ifndef SRC_GUARD_DIVERGENCE_WATCHDOG_H_
#define SRC_GUARD_DIVERGENCE_WATCHDOG_H_

#include <cstddef>
#include <cstdint>

#include "src/guard/guard_config.h"

namespace floatfl {

class CheckpointWriter;
class CheckpointReader;

// One round's health snapshot. `loss` is optional context (0 when the engine
// has no loss notion); a non-finite value in either field is a trigger.
struct HealthSignal {
  double metric = 0.0;  // higher is better (accuracy-like)
  double loss = 0.0;    // lower is better; only checked for finiteness
  // Per-tier delivery health (DESIGN.md §13): the fraction of this round's
  // completed client updates whose contributions actually reached the root
  // (1.0 on star topologies and when nothing was lost in the tree). Not a
  // divergence trigger — a starved round can still be metrically "healthy" —
  // but the guard refuses to snapshot rounds below
  // GuardConfig::min_snapshot_coverage, so coverage-starved states never
  // become rollback targets.
  double coverage = 1.0;
};

enum class WatchdogVerdict : uint32_t {
  kHealthy = 0,
  kNonFinite = 1,  // NaN/Inf metric or loss
  kCollapse = 2,   // metric < best - collapse_threshold
  kStall = 3,      // no improvement > stall_epsilon for `patience` rounds
};

class DivergenceWatchdog {
 public:
  DivergenceWatchdog() = default;
  explicit DivergenceWatchdog(const GuardConfig& config) : config_(config) {}

  // Classifies one round. A healthy round updates the best-seen metric and
  // the stall counter; an unhealthy one leaves them for ResetAfterRollback.
  WatchdogVerdict Check(const HealthSignal& health);

  // Called after a rollback restored a snapshot with `restored_metric`: the
  // best-seen baseline snaps to the restored state and the stall counter
  // clears, but the watchdog stays armed — a second collapse from the
  // restored state triggers again.
  void ResetAfterRollback(double restored_metric);

  bool HasBest() const { return has_best_; }
  double Best() const { return best_; }
  size_t StallRounds() const { return stall_rounds_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  GuardConfig config_;
  bool has_best_ = false;
  double best_ = 0.0;
  size_t stall_rounds_ = 0;
};

}  // namespace floatfl

#endif  // SRC_GUARD_DIVERGENCE_WATCHDOG_H_
