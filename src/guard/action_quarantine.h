// Per-technique failure attribution and deterministic action quarantine.
//
// Every technique decision an engine makes is a trial; dropouts with an
// attributable reason (crash, corruption, rejection, transfer timeout, OOM,
// deadline miss — not plain unavailability or departure, which no technique
// causes) count as failures. Once a technique accumulates enough trials and
// its failure rate crosses the configured threshold, the technique is masked
// for a cooldown window that doubles with each repeat offense (capped
// strikes) — a decaying re-trial schedule. All counting is integer, all
// thresholds are compared in a fixed order, and there is no RNG, so the
// quarantine state is bit-identical for any thread count.
//
// Quarantine is keyed by TechniqueKind alone. The issue's (state-bucket,
// technique) pairing is deliberately coarsened: the engines call Observe from
// their sequential bookkeeping phase where the encoded agent state is not in
// scope, and a per-technique key already isolates the harmful action (see
// DESIGN.md §11).
#ifndef SRC_GUARD_ACTION_QUARANTINE_H_
#define SRC_GUARD_ACTION_QUARANTINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/guard/guard_config.h"
#include "src/opt/technique.h"

namespace floatfl {

class CheckpointWriter;
class CheckpointReader;
enum class DropoutReason : uint32_t;

class ActionQuarantine {
 public:
  ActionQuarantine();
  explicit ActionQuarantine(const GuardConfig& config);

  // True when `reason` is a failure a technique choice can plausibly cause.
  static bool Attributable(DropoutReason reason);

  // True when `technique` is masked at `round`. kNone is never masked.
  bool Blocked(TechniqueKind technique, size_t round) const;

  // Records one trial of `technique` at `round`. Returns true when this
  // observation tripped a new quarantine window (counters reset, strikes
  // escalate, cooldown doubles per strike).
  bool Observe(TechniqueKind technique, bool completed, DropoutReason reason, size_t round);

  // First round at which `technique` is allowed again (0 = never blocked).
  size_t QuarantinedUntil(TechniqueKind technique) const;
  size_t Strikes(TechniqueKind technique) const;
  // Number of techniques currently inside a cooldown window at `round`.
  size_t BlockedCount(size_t round) const;

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  struct Cell {
    size_t trials = 0;
    size_t failures = 0;
    size_t until_round = 0;  // blocked while round < until_round
    size_t strikes = 0;
  };

  const Cell& CellFor(TechniqueKind technique) const;
  Cell& CellFor(TechniqueKind technique);

  GuardConfig config_;
  std::vector<Cell> cells_;  // indexed by static_cast<size_t>(TechniqueKind)
};

}  // namespace floatfl

#endif  // SRC_GUARD_ACTION_QUARANTINE_H_
