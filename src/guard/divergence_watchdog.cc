#include "src/guard/divergence_watchdog.h"

#include <algorithm>
#include <cmath>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

WatchdogVerdict DivergenceWatchdog::Check(const HealthSignal& health) {
  if (!std::isfinite(health.metric) || !std::isfinite(health.loss)) {
    return WatchdogVerdict::kNonFinite;
  }
  if (has_best_ && config_.collapse_threshold > 0.0 &&
      health.metric < best_ - config_.collapse_threshold) {
    return WatchdogVerdict::kCollapse;
  }
  // Healthy so far: fold the round into the baseline before the stall check
  // so `patience` counts rounds since the last real improvement.
  const bool improved = !has_best_ || health.metric > best_ + config_.stall_epsilon;
  if (!has_best_ || health.metric > best_) {
    best_ = health.metric;
    has_best_ = true;
  }
  if (improved) {
    stall_rounds_ = 0;
  } else {
    ++stall_rounds_;
  }
  if (config_.patience > 0 && stall_rounds_ >= config_.patience) {
    stall_rounds_ = 0;  // one trigger per stalled window, not one per round
    return WatchdogVerdict::kStall;
  }
  return WatchdogVerdict::kHealthy;
}

void DivergenceWatchdog::ResetAfterRollback(double restored_metric) {
  best_ = restored_metric;
  has_best_ = true;
  stall_rounds_ = 0;
}

void DivergenceWatchdog::SaveState(CheckpointWriter& w) const {
  w.Bool(has_best_);
  w.F64(best_);
  w.Size(stall_rounds_);
}

void DivergenceWatchdog::LoadState(CheckpointReader& r) {
  has_best_ = r.Bool();
  best_ = r.F64();
  stall_rounds_ = r.Size();
}

}  // namespace floatfl
