#include "src/guard/training_guard.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

TrainingGuard::TrainingGuard(const GuardConfig& config)
    : config_(config),
      watchdog_(config),
      ring_(config.snapshot_ring),
      quarantine_(config),
      last_round_begun_(SIZE_MAX) {}

void TrainingGuard::BeginRound(size_t round) {
  if (!config_.enabled || round == last_round_begun_) {
    return;
  }
  last_round_begun_ = round;
  if (InSafeMode(round)) {
    tracker_.RecordSafeModeRound();
  }
}

TechniqueKind TrainingGuard::Filter(TechniqueKind decision, size_t round) {
  if (!config_.enabled || decision == TechniqueKind::kNone) {
    return decision;
  }
  if (InSafeMode(round) || quarantine_.Blocked(decision, round)) {
    tracker_.RecordMaskedAction();
    return TechniqueKind::kNone;
  }
  return decision;
}

void TrainingGuard::Observe(TechniqueKind technique, bool completed, DropoutReason reason,
                            size_t round) {
  if (!config_.enabled) {
    return;
  }
  if (quarantine_.Observe(technique, completed, reason, round)) {
    tracker_.RecordQuarantineOpened();
  }
}

double TrainingGuard::SanitizeReward(double credit) {
  if (!config_.enabled) {
    return credit;
  }
  if (!std::isfinite(credit)) {
    tracker_.RecordRejectedReward();
    return 0.0;
  }
  return credit;
}

bool TrainingGuard::EndRound(size_t round, const HealthSignal& health, const SaveFn& save,
                             const RestoreFn& restore) {
  if (!config_.enabled) {
    return false;
  }
  const WatchdogVerdict verdict = watchdog_.Check(health);
  if (verdict == WatchdogVerdict::kHealthy) {
    consecutive_triggers_ = 0;
    // Snapshot only states at (or above) the best seen so far: during a slow
    // decay every round is individually "healthy" but still tainted, and the
    // ring must never learn to prefer it. Coverage-starved rounds (partials
    // lost in the aggregation tree) are likewise never ring candidates.
    if (health.metric >= watchdog_.Best() && round >= next_snapshot_round_ &&
        health.coverage >= config_.min_snapshot_coverage) {
      CheckpointWriter w;
      save(w);
      ring_.Push(round, health.metric, w.buffer());
      next_snapshot_round_ = round + config_.snapshot_every;
      tracker_.RecordSnapshot();
    }
    return false;
  }
  switch (verdict) {
    case WatchdogVerdict::kNonFinite:
      tracker_.RecordNonFiniteTrigger();
      break;
    case WatchdogVerdict::kCollapse:
      tracker_.RecordCollapseTrigger();
      break;
    case WatchdogVerdict::kStall:
      tracker_.RecordStallTrigger();
      break;
    case WatchdogVerdict::kHealthy:
      break;
  }
  // "Do no harm" even with nothing to restore: an empty ring (divergence
  // before the first healthy round) still arms safe mode.
  safe_mode_until_round_ = std::max(safe_mode_until_round_, round + 1 + config_.safe_mode_rounds);
  if (ring_.Empty()) {
    ++consecutive_triggers_;
    return false;
  }
  // Peek, never pop: under a persistent attack the same good state keeps
  // getting restored. Consecutive triggers escalate to older entries in case
  // the newest snapshot itself is somehow tainted.
  const size_t depth = std::min(consecutive_triggers_, ring_.Size() - 1);
  ++consecutive_triggers_;
  const SnapshotRing::Entry& entry = ring_.FromNewest(depth);
  CheckpointReader r(entry.blob);
  restore(r);
  watchdog_.ResetAfterRollback(entry.metric);
  tracker_.RecordRollback();
  return true;
}

void TrainingGuard::SaveState(CheckpointWriter& w) const {
  watchdog_.SaveState(w);
  ring_.SaveState(w);
  quarantine_.SaveState(w);
  tracker_.SaveState(w);
  w.Size(safe_mode_until_round_);
  w.Size(consecutive_triggers_);
  w.Size(next_snapshot_round_);
  w.Size(last_round_begun_);
}

void TrainingGuard::LoadState(CheckpointReader& r) {
  watchdog_.LoadState(r);
  ring_.LoadState(r);
  quarantine_.LoadState(r);
  tracker_.LoadState(r);
  safe_mode_until_round_ = r.Size();
  consecutive_triggers_ = r.Size();
  next_snapshot_round_ = r.Size();
  last_round_begun_ = r.Size();
}

}  // namespace floatfl
