// Façade tying the self-healing pieces together for the FL engines.
//
// Per-round protocol (all calls from the engine's sequential phases — the
// guard owns no locks and no RNG, so it is trivially thread-count-invariant):
//
//   BeginRound(round)           once per aggregation round (idempotent per
//                               round value; the async engine calls it every
//                               StepOnce for the same version)
//   Filter(decision, round)     wraps every TuningPolicy::Decide result; masks
//                               to kNone under safe mode or quarantine
//   Observe(technique, ...)     per finished client, feeds failure attribution
//   SanitizeReward(credit)      wraps the accuracy credit fed to Report
//   EndRound(round, health,     health check + snapshot-or-rollback; returns
//            save, restore)     true when a rollback restored older state
//
// When `config.enabled` is false every call is a strict pass-through with no
// state change, so pre-guard goldens stay byte-identical. SaveState/LoadState
// still serialize (a fixed all-zero layout when disabled) so the checkpoint
// payload shape does not depend on the config.
#ifndef SRC_GUARD_TRAINING_GUARD_H_
#define SRC_GUARD_TRAINING_GUARD_H_

#include <cstddef>
#include <functional>

#include "src/guard/action_quarantine.h"
#include "src/guard/divergence_watchdog.h"
#include "src/guard/guard_config.h"
#include "src/guard/snapshot_ring.h"
#include "src/metrics/guard_tracker.h"
#include "src/opt/technique.h"

namespace floatfl {

class TrainingGuard {
 public:
  // Engine-provided state capture/restore. The blob must round-trip the
  // exact state a rollback should rewind: global model parameters or the
  // surrogate quality model, plus the attached TuningPolicy (so the Q-table
  // cannot keep the decisions that caused the divergence).
  using SaveFn = std::function<void(CheckpointWriter&)>;
  using RestoreFn = std::function<void(CheckpointReader&)>;

  TrainingGuard() : TrainingGuard(GuardConfig{}) {}
  explicit TrainingGuard(const GuardConfig& config);

  bool enabled() const { return config_.enabled; }

  void BeginRound(size_t round);

  TechniqueKind Filter(TechniqueKind decision, size_t round);

  void Observe(TechniqueKind technique, bool completed, DropoutReason reason, size_t round);

  double SanitizeReward(double credit);

  // Health check for the finished round. Healthy rounds may snapshot (only
  // on improvement, never mid-decay, so the ring holds known-good states);
  // unhealthy rounds roll back to the newest ring entry, escalating to older
  // entries on consecutive triggers, and arm safe mode. Returns true when
  // `restore` was invoked.
  bool EndRound(size_t round, const HealthSignal& health, const SaveFn& save,
                const RestoreFn& restore);

  bool InSafeMode(size_t round) const { return config_.enabled && round < safe_mode_until_round_; }

  const GuardTracker& tracker() const { return tracker_; }
  const DivergenceWatchdog& watchdog() const { return watchdog_; }
  const ActionQuarantine& quarantine() const { return quarantine_; }
  const SnapshotRing& ring() const { return ring_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  GuardConfig config_;
  DivergenceWatchdog watchdog_;
  SnapshotRing ring_;
  ActionQuarantine quarantine_;
  GuardTracker tracker_;
  // First round at which techniques are allowed again after a rollback.
  size_t safe_mode_until_round_ = 0;
  // Unhealthy verdicts since the last healthy round; escalates restore depth.
  size_t consecutive_triggers_ = 0;
  // Earliest round eligible for the next snapshot (cadence control).
  size_t next_snapshot_round_ = 0;
  // BeginRound idempotency sentinel (SIZE_MAX = no round begun yet).
  size_t last_round_begun_;
};

}  // namespace floatfl

#endif  // SRC_GUARD_TRAINING_GUARD_H_
