// Configuration for the self-healing training guard (DESIGN.md §11).
//
// The guard watches the global training trajectory for divergence (non-finite
// health metrics, accuracy collapse, stalls), keeps an in-memory ring of the
// last-known-good states (global model or surrogate quality state plus the
// attached TuningPolicy), rolls back automatically on a watchdog trigger, and
// quarantines optimization actions whose failure attribution says they keep
// producing dropouts. The default-constructed config is a strict no-op: no
// health checks run, no snapshots are taken, Decide() results pass through
// untouched, and every pre-guard golden stays byte-identical.
#ifndef SRC_GUARD_GUARD_CONFIG_H_
#define SRC_GUARD_GUARD_CONFIG_H_

#include <cstddef>

namespace floatfl {

struct GuardConfig {
  // Master switch. false = strict no-op regardless of the other knobs.
  bool enabled = false;

  // --- Divergence watchdog -------------------------------------------------
  // Trigger a rollback when the health metric (test accuracy on the real
  // engines, surrogate global accuracy otherwise) drops more than this below
  // the best value seen so far. 0 disables the collapse check (the
  // non-finite check stays armed whenever the guard is enabled).
  double collapse_threshold = 0.1;
  // Trigger when the metric fails to improve by more than `stall_epsilon`
  // for `patience` consecutive rounds. 0 disables the stall check.
  size_t patience = 0;
  double stall_epsilon = 1e-4;

  // --- Last-known-good snapshot ring ---------------------------------------
  // Number of healthy states retained. Rollback restores the newest entry;
  // consecutive triggers escalate to older entries.
  size_t snapshot_ring = 4;
  // Minimum round spacing between snapshots (1 = every improving round).
  size_t snapshot_every = 1;
  // Per-tier health gate (DESIGN.md §13): refuse to snapshot a round whose
  // HealthSignal::coverage — the fraction of completed client updates that
  // reached the root through the aggregation tree — is below this. 0 (the
  // default) disables the gate: every pre-topology golden stays
  // byte-identical.
  double min_snapshot_coverage = 0.0;

  // --- Safe-mode action quarantine -----------------------------------------
  // After a rollback, every non-kNone technique decision is masked to
  // TechniqueKind::kNone for this many rounds ("do no harm" mode).
  size_t safe_mode_rounds = 5;
  // Per-technique failure attribution: once a technique has at least
  // `quarantine_min_trials` decisions and its attributable-failure rate
  // (crashes, corruption, rejections, transfer timeouts, OOM, deadline
  // misses) reaches `quarantine_failure_rate`, the technique is masked for
  // `quarantine_cooldown_rounds << (strikes - 1)` rounds — a deterministic
  // decaying re-trial schedule. 0 min_trials disables attribution quarantine.
  size_t quarantine_min_trials = 0;
  double quarantine_failure_rate = 0.6;
  size_t quarantine_cooldown_rounds = 8;
  size_t quarantine_max_strikes = 4;
};

// Aborts with a descriptive message when `config` violates a guard
// invariant. Called by every engine constructor (guard enabled or not, so a
// bad config fails fast even before someone flips `enabled`).
void ValidateGuardConfig(const GuardConfig& config);

}  // namespace floatfl

#endif  // SRC_GUARD_GUARD_CONFIG_H_
