#include "src/guard/snapshot_ring.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

void SnapshotRing::Push(size_t round, double metric, std::string blob) {
  FLOATFL_CHECK_MSG(capacity_ > 0, "SnapshotRing::Push on a zero-capacity ring");
  Entry entry;
  entry.round = round;
  entry.metric = metric;
  entry.blob = std::move(blob);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

const SnapshotRing::Entry& SnapshotRing::FromNewest(size_t depth) const {
  FLOATFL_CHECK_MSG(!entries_.empty(), "SnapshotRing::FromNewest on an empty ring");
  const size_t clamped = std::min(depth, entries_.size() - 1);
  return entries_[entries_.size() - 1 - clamped];
}

void SnapshotRing::SaveState(CheckpointWriter& w) const {
  w.Size(entries_.size());
  for (const Entry& e : entries_) {
    w.Size(e.round);
    w.F64(e.metric);
    w.Str(e.blob);
  }
}

void SnapshotRing::LoadState(CheckpointReader& r) {
  entries_.clear();
  const size_t n = r.Size();
  for (size_t i = 0; i < n && r.ok(); ++i) {
    Entry e;
    e.round = r.Size();
    e.metric = r.F64();
    e.blob = r.Str();
    entries_.push_back(std::move(e));
  }
}

}  // namespace floatfl
