#include "src/guard/action_quarantine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/failure/checkpoint_io.h"
#include "src/fl/experiment.h"

namespace floatfl {

ActionQuarantine::ActionQuarantine() : ActionQuarantine(GuardConfig{}) {}

ActionQuarantine::ActionQuarantine(const GuardConfig& config)
    : config_(config), cells_(AllTechniques().size()) {}

bool ActionQuarantine::Attributable(DropoutReason reason) {
  switch (reason) {
    case DropoutReason::kOutOfMemory:
    case DropoutReason::kMissedDeadline:
    case DropoutReason::kCrashed:
    case DropoutReason::kCorrupted:
    case DropoutReason::kRejected:
    case DropoutReason::kTransferTimedOut:
      return true;
    case DropoutReason::kNone:
    case DropoutReason::kUnavailable:
    case DropoutReason::kDeparted:
    // Losing every edge in the failover chain is infrastructure weather, not
    // something the client's technique caused.
    case DropoutReason::kEdgeOrphaned:
    // Server-ingestion rejections (shed under overload, folded duplicates,
    // stale replays, rate limiting) blame the delivery path, not the
    // technique the client trained with.
    case DropoutReason::kShed:
    case DropoutReason::kDuplicate:
    case DropoutReason::kReplayed:
    case DropoutReason::kRateLimited:
    // Speculation outcomes (DESIGN.md §16): a covered primary's interruption
    // was already not the technique's doing, and a redundant backup lost a
    // race the scheduler created — neither indicts the technique.
    case DropoutReason::kBackupCovered:
    case DropoutReason::kBackupRedundant:
      return false;
  }
  return false;
}

const ActionQuarantine::Cell& ActionQuarantine::CellFor(TechniqueKind technique) const {
  const size_t index = static_cast<size_t>(technique);
  FLOATFL_CHECK(index < cells_.size());
  return cells_[index];
}

ActionQuarantine::Cell& ActionQuarantine::CellFor(TechniqueKind technique) {
  const size_t index = static_cast<size_t>(technique);
  FLOATFL_CHECK(index < cells_.size());
  return cells_[index];
}

bool ActionQuarantine::Blocked(TechniqueKind technique, size_t round) const {
  if (technique == TechniqueKind::kNone) {
    return false;  // the fallback action must always stay available
  }
  return round < CellFor(technique).until_round;
}

bool ActionQuarantine::Observe(TechniqueKind technique, bool completed, DropoutReason reason,
                               size_t round) {
  if (technique == TechniqueKind::kNone || config_.quarantine_min_trials == 0) {
    return false;
  }
  Cell& cell = CellFor(technique);
  ++cell.trials;
  if (!completed && Attributable(reason)) {
    ++cell.failures;
  }
  if (round < cell.until_round) {
    return false;  // already cooling down; don't stack windows
  }
  if (cell.trials < config_.quarantine_min_trials) {
    return false;
  }
  const double rate = static_cast<double>(cell.failures) / static_cast<double>(cell.trials);
  if (rate < config_.quarantine_failure_rate) {
    return false;
  }
  cell.strikes = std::min(cell.strikes + 1, config_.quarantine_max_strikes);
  const size_t cooldown = config_.quarantine_cooldown_rounds << (cell.strikes - 1);
  cell.until_round = round + 1 + cooldown;
  // Fresh trial window after re-admission: the technique re-earns (or
  // re-loses) its standing from scratch, so one bad era cannot ban it forever.
  cell.trials = 0;
  cell.failures = 0;
  return true;
}

size_t ActionQuarantine::QuarantinedUntil(TechniqueKind technique) const {
  return CellFor(technique).until_round;
}

size_t ActionQuarantine::Strikes(TechniqueKind technique) const {
  return CellFor(technique).strikes;
}

size_t ActionQuarantine::BlockedCount(size_t round) const {
  size_t count = 0;
  for (TechniqueKind kind : AllTechniques()) {
    if (Blocked(kind, round)) {
      ++count;
    }
  }
  return count;
}

void ActionQuarantine::SaveState(CheckpointWriter& w) const {
  w.Size(cells_.size());
  for (const Cell& cell : cells_) {
    w.Size(cell.trials);
    w.Size(cell.failures);
    w.Size(cell.until_round);
    w.Size(cell.strikes);
  }
}

void ActionQuarantine::LoadState(CheckpointReader& r) {
  const size_t n = r.Size();
  // A failed reader (truncated/corrupted archive) returns zeros; that is the
  // caller's error to report, not a process-aborting invariant violation.
  FLOATFL_CHECK_MSG(n == cells_.size() || !r.ok(), "guard quarantine cell count mismatch");
  if (n != cells_.size()) {
    return;
  }
  for (Cell& cell : cells_) {
    cell.trials = r.Size();
    cell.failures = r.Size();
    cell.until_round = r.Size();
    cell.strikes = r.Size();
  }
}

}  // namespace floatfl
