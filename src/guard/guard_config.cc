#include "src/guard/guard_config.h"

#include "src/common/check.h"

namespace floatfl {

void ValidateGuardConfig(const GuardConfig& config) {
  FLOATFL_CHECK_MSG(config.collapse_threshold >= 0.0, "guard.collapse_threshold must be >= 0");
  FLOATFL_CHECK_MSG(config.stall_epsilon >= 0.0, "guard.stall_epsilon must be >= 0");
  FLOATFL_CHECK_MSG(config.snapshot_ring >= 1, "guard.snapshot_ring must be >= 1");
  FLOATFL_CHECK_MSG(config.snapshot_every >= 1, "guard.snapshot_every must be >= 1");
  FLOATFL_CHECK_MSG(
      config.min_snapshot_coverage >= 0.0 && config.min_snapshot_coverage <= 1.0,
      "guard.min_snapshot_coverage must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.quarantine_failure_rate > 0.0 && config.quarantine_failure_rate <= 1.0,
                    "guard.quarantine_failure_rate must be in (0, 1]");
  FLOATFL_CHECK_MSG(config.quarantine_cooldown_rounds >= 1,
                    "guard.quarantine_cooldown_rounds must be >= 1");
  FLOATFL_CHECK_MSG(config.quarantine_max_strikes >= 1,
                    "guard.quarantine_max_strikes must be >= 1");
  // The left shift in the cooldown schedule must not overflow.
  FLOATFL_CHECK_MSG(config.quarantine_max_strikes <= 32,
                    "guard.quarantine_max_strikes must be <= 32");
}

}  // namespace floatfl
