// In-memory ring of last-known-good state snapshots.
//
// Each entry is an opaque CheckpointWriter blob produced by the owning
// engine's save callback (global model parameters or surrogate quality state,
// plus the attached TuningPolicy's serialized state), tagged with the round
// it was taken at and its health metric. Rollback PEEKS — it never pops — so
// a persistent attack that re-triggers every round keeps restoring from the
// same good history instead of draining it; escalation to older entries is
// the caller's job (TrainingGuard tracks consecutive triggers).
#ifndef SRC_GUARD_SNAPSHOT_RING_H_
#define SRC_GUARD_SNAPSHOT_RING_H_

#include <cstddef>
#include <deque>
#include <string>

namespace floatfl {

class CheckpointWriter;
class CheckpointReader;

class SnapshotRing {
 public:
  struct Entry {
    size_t round = 0;
    double metric = 0.0;
    std::string blob;
  };

  SnapshotRing() = default;
  explicit SnapshotRing(size_t capacity) : capacity_(capacity) {}

  // Appends a snapshot, evicting the oldest entry beyond capacity.
  void Push(size_t round, double metric, std::string blob);

  bool Empty() const { return entries_.empty(); }
  size_t Size() const { return entries_.size(); }

  // depth 0 = newest entry, depth Size()-1 = oldest; deeper requests clamp
  // to the oldest entry.
  const Entry& FromNewest(size_t depth) const;

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t capacity_ = 0;
  std::deque<Entry> entries_;  // oldest at front, newest at back
};

}  // namespace floatfl

#endif  // SRC_GUARD_SNAPSHOT_RING_H_
