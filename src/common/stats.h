// Streaming and batch statistics used across the simulator and the agent.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <deque>
#include <vector>

namespace floatfl {

// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);
  size_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (0 for fewer than 2 samples).
  double Variance() const;
  double StdDev() const;
  double Min() const { return count_ > 0 ? min_ : 0.0; }
  double Max() const { return count_ > 0 ? max_ : 0.0; }
  double Sum() const { return sum_; }
  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-window moving average. FLOAT's RLHF reward uses a moving average of
// the per-objective scores instead of raw Bellman accumulation (RQ6).
class MovingAverage {
 public:
  explicit MovingAverage(size_t window);
  void Add(double x);
  double Value() const;
  size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

 private:
  size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

// Linear-interpolation percentile of an unsorted sample, p in [0, 100].
// Returns 0 for an empty sample.
double Percentile(std::vector<double> values, double p);

double Mean(const std::vector<double>& values);

// Average of the top `frac` (e.g. 0.10) of values; 0 if empty.
double TopFractionMean(std::vector<double> values, double frac);

// Average of the bottom `frac` of values; 0 if empty.
double BottomFractionMean(std::vector<double> values, double frac);

}  // namespace floatfl

#endif  // SRC_COMMON_STATS_H_
