#include "src/common/discretizer.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace floatfl {

Discretizer::Discretizer(std::vector<double> boundaries) : boundaries_(std::move(boundaries)) {
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    FLOATFL_CHECK_MSG(boundaries_[i] > boundaries_[i - 1], "boundaries must strictly increase");
  }
}

Discretizer Discretizer::Uniform(double lo, double hi, size_t num_bins) {
  FLOATFL_CHECK(num_bins >= 1);
  FLOATFL_CHECK(hi > lo);
  std::vector<double> b;
  b.reserve(num_bins - 1);
  for (size_t i = 1; i < num_bins; ++i) {
    b.push_back(lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(num_bins));
  }
  return Discretizer(std::move(b));
}

Discretizer Discretizer::FromQuantiles(const std::vector<double>& samples, size_t num_bins) {
  FLOATFL_CHECK(num_bins >= 1);
  if (samples.empty() || num_bins == 1) {
    return Discretizer({});
  }
  std::vector<double> b;
  b.reserve(num_bins - 1);
  for (size_t i = 1; i < num_bins; ++i) {
    const double q =
        Percentile(samples, 100.0 * static_cast<double>(i) / static_cast<double>(num_bins));
    b.push_back(q);
  }
  // Enforce strictly increasing boundaries: nudge duplicates by an epsilon
  // scaled to the data range so every requested bin survives.
  double range = b.back() - b.front();
  if (range <= 0.0) {
    range = std::max(1.0, std::fabs(b.front()));
  }
  const double eps = range * 1e-9 + 1e-12;
  for (size_t i = 1; i < b.size(); ++i) {
    if (b[i] <= b[i - 1]) {
      b[i] = b[i - 1] + eps;
    }
  }
  return Discretizer(std::move(b));
}

size_t Discretizer::BinOf(double value) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<size_t>(it - boundaries_.begin());
}

}  // namespace floatfl
