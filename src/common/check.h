// Lightweight invariant checking for library code.
//
// The library does not throw exceptions; violated invariants indicate
// programming errors and abort the process with a source location.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define FLOATFL_CHECK(cond)                                                          \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "FLOATFL_CHECK failed: %s at %s:%d\n", #cond, __FILE__,   \
                   __LINE__);                                                        \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define FLOATFL_CHECK_MSG(cond, msg)                                                 \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "FLOATFL_CHECK failed: %s (%s) at %s:%d\n", #cond, (msg), \
                   __FILE__, __LINE__);                                              \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
