#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace floatfl {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

void RunningStat::Reset() { *this = RunningStat(); }

MovingAverage::MovingAverage(size_t window) : window_(window) { FLOATFL_CHECK(window > 0); }

void MovingAverage::Add(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double MovingAverage::Value() const {
  if (values_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(values_.size());
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  FLOATFL_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double TopFractionMean(std::vector<double> values, double frac) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end(), std::greater<>());
  const size_t n = std::max<size_t>(1, static_cast<size_t>(values.size() * frac));
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += values[i];
  }
  return sum / static_cast<double>(n);
}

double BottomFractionMean(std::vector<double> values, double frac) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t n = std::max<size_t>(1, static_cast<size_t>(values.size() * frac));
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += values[i];
  }
  return sum / static_cast<double>(n);
}

}  // namespace floatfl
