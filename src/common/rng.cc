#include "src/common/rng.h"

#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace floatfl {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::UniformInt(uint64_t n) {
  FLOATFL_CHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double median, double sigma) {
  FLOATFL_CHECK(median > 0.0);
  return median * std::exp(sigma * Normal());
}

double Rng::Exponential(double mean) {
  FLOATFL_CHECK(mean > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  FLOATFL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    }
  }
  if (total <= 0.0) {
    return static_cast<size_t>(UniformInt(weights.size()));
  }
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) {
      return i;
    }
    r -= w;
  }
  return weights.size() - 1;
}

double Rng::Gamma(double shape) {
  FLOATFL_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = std::max(NextDouble(), 1e-300);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) {
      continue;
    }
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(double alpha, size_t k) {
  FLOATFL_CHECK(alpha > 0.0);
  FLOATFL_CHECK(k > 0);
  std::vector<double> out(k);
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    out[i] = Gamma(alpha);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Extremely small alpha can underflow every marginal; fall back to a
    // one-hot draw, which is the correct limiting behaviour.
    const size_t hot = static_cast<size_t>(UniformInt(k));
    for (size_t i = 0; i < k; ++i) {
      out[i] = (i == hot) ? 1.0 : 0.0;
    }
    return out;
  }
  for (auto& v : out) {
    v /= sum;
  }
  return out;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> p(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = i;
  }
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::ForkKeyed(uint64_t key) const {
  // Hash the full parent state together with the key through a SplitMix64
  // chain so distinct keys (and distinct parents) seed unrelated streams.
  uint64_t acc = key ^ 0xD1B54A32D192ED03ULL;
  for (uint64_t s : s_) {
    acc = SplitMix64(acc) ^ s;
  }
  return Rng(SplitMix64(acc));
}

std::array<uint64_t, 6> Rng::SaveRaw() const {
  std::array<uint64_t, 6> raw;
  for (size_t i = 0; i < 4; ++i) {
    raw[i] = s_[i];
  }
  raw[4] = has_cached_normal_ ? 1 : 0;
  std::memcpy(&raw[5], &cached_normal_, sizeof(raw[5]));
  return raw;
}

void Rng::RestoreRaw(const std::array<uint64_t, 6>& raw) {
  for (size_t i = 0; i < 4; ++i) {
    s_[i] = raw[i];
  }
  has_cached_normal_ = raw[4] != 0;
  std::memcpy(&cached_normal_, &raw[5], sizeof(cached_normal_));
}

}  // namespace floatfl
