// Fixed-width text table printer for the benchmark harnesses.
//
// Every bench binary regenerates a paper figure/table as rows of text; this
// keeps the output uniform and diff-able.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace floatfl {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Convenience: formats doubles with the given precision.
  void AddRow(std::vector<std::string> cells);
  TablePrinter& Cell(const std::string& s);
  TablePrinter& Cell(double v, int precision = 2);
  TablePrinter& Cell(long long v);
  void EndRow();

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

// Formats a double with fixed precision (helper shared with benches).
std::string FormatDouble(double v, int precision = 2);

}  // namespace floatfl

#endif  // SRC_COMMON_TABLE_H_
