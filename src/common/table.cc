#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace floatfl {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FLOATFL_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FLOATFL_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

TablePrinter& TablePrinter::Cell(const std::string& s) {
  pending_.push_back(s);
  return *this;
}

TablePrinter& TablePrinter::Cell(double v, int precision) {
  pending_.push_back(FormatDouble(v, precision));
  return *this;
}

TablePrinter& TablePrinter::Cell(long long v) {
  pending_.push_back(std::to_string(v));
  return *this;
}

void TablePrinter::EndRow() {
  AddRow(std::move(pending_));
  pending_.clear();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        for (size_t pad = row[c].size(); pad < widths[c] + 2; ++pad) {
          os << ' ';
        }
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  for (size_t i = 0; i + 2 < total; ++i) {
    os << '-';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace floatfl
