// Continuous-to-discrete binning used by FLOAT's state encoder (RQ5).
//
// The paper reduces continuous client metrics (CPU/memory/network
// availability, deadline difference) to 5 discrete states using statistical
// (variance/percentile-driven) bin boundaries. This header provides both
// uniform bins (the fixed Table-1 ranges) and quantile bins fitted from
// observed samples.
#ifndef SRC_COMMON_DISCRETIZER_H_
#define SRC_COMMON_DISCRETIZER_H_

#include <cstddef>
#include <vector>

namespace floatfl {

class Discretizer {
 public:
  // `boundaries` must be strictly increasing; a value v maps to the number of
  // boundaries strictly below it, giving boundaries.size() + 1 bins.
  explicit Discretizer(std::vector<double> boundaries);

  // num_bins uniform bins over [lo, hi].
  static Discretizer Uniform(double lo, double hi, size_t num_bins);

  // Boundaries at the (100*i/num_bins)-th percentiles of `samples`.
  // Degenerate (duplicate) percentiles are nudged to stay strictly
  // increasing, so the bin count is always exactly num_bins.
  static Discretizer FromQuantiles(const std::vector<double>& samples, size_t num_bins);

  size_t NumBins() const { return boundaries_.size() + 1; }
  size_t BinOf(double value) const;
  const std::vector<double>& boundaries() const { return boundaries_; }

 private:
  std::vector<double> boundaries_;
};

}  // namespace floatfl

#endif  // SRC_COMMON_DISCRETIZER_H_
