// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component of the simulation draws from an Rng seeded from
// the experiment seed, so whole experiments are reproducible bit-for-bit.
// The generator is xoshiro256++ (public-domain algorithm by Blackman &
// Vigna), seeded through SplitMix64 so that nearby seeds give independent
// streams.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace floatfl {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box–Muller (cached pair).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal such that the *median* of the distribution is `median` and the
  // underlying normal has standard deviation `sigma` (in log space).
  double LogNormal(double median, double sigma);

  // Exponential with the given mean. Requires mean > 0.
  double Exponential(double mean);

  // Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Non-positive weights are treated as zero; if all weights are zero the
  // index is uniform.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Samples from a symmetric Dirichlet distribution with concentration
  // `alpha` over `k` categories (via Gamma(alpha, 1) marginals).
  std::vector<double> Dirichlet(double alpha, size_t k);

  // Gamma(shape, 1) sample (Marsaglia–Tsang, with boost for shape < 1).
  double Gamma(double shape);

  // Fisher–Yates shuffle of indices [0, n); returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  // Forks an independent stream; deterministic given this stream's state.
  // Advances this stream by one draw, so successive Fork() calls yield
  // distinct children in a fixed order.
  Rng Fork();

  // Forks an independent stream addressed by `key` WITHOUT advancing this
  // stream: the same (parent state, key) pair always yields the same child,
  // and distinct keys yield decorrelated children. The engines key
  // per-client streams by StreamKey(round, client_id), which is what makes
  // parallel client simulation independent of the order — and the thread —
  // in which clients run.
  Rng ForkKeyed(uint64_t key) const;

  // Injective (a, b) -> key packing for ForkKeyed, for a, b < 2^32 (rounds
  // and client ids in any realistic experiment).
  static uint64_t StreamKey(uint64_t a, uint64_t b) { return (a << 32) ^ b; }

  // Raw engine state for checkpoint/resume: the four xoshiro words plus the
  // Box–Muller cache. RestoreRaw reproduces the stream bit-for-bit.
  std::array<uint64_t, 6> SaveRaw() const;
  void RestoreRaw(const std::array<uint64_t, 6>& raw);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace floatfl

#endif  // SRC_COMMON_RNG_H_
