#include "src/opt/compress.h"

#include "src/common/check.h"

namespace floatfl {
namespace {

// Delta transform: out[i] = in[i] - in[i-1] (mod 256). Makes slowly varying
// byte streams (sorted indices, similar quant codes) run-heavy.
std::vector<uint8_t> DeltaEncode(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out(input.size());
  uint8_t prev = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    out[i] = static_cast<uint8_t>(input[i] - prev);
    prev = input[i];
  }
  return out;
}

std::vector<uint8_t> DeltaDecode(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out(input.size());
  uint8_t prev = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    prev = static_cast<uint8_t>(prev + input[i]);
    out[i] = prev;
  }
  return out;
}

}  // namespace

std::vector<uint8_t> RleCompress(const std::vector<uint8_t>& input) {
  const std::vector<uint8_t> delta = DeltaEncode(input);
  std::vector<uint8_t> out;
  out.reserve(delta.size() / 2 + 8);
  size_t i = 0;
  while (i < delta.size()) {
    const uint8_t value = delta[i];
    size_t run = 1;
    while (i + run < delta.size() && delta[i + run] == value && run < 255) {
      ++run;
    }
    out.push_back(static_cast<uint8_t>(run));
    out.push_back(value);
    i += run;
  }
  return out;
}

std::vector<uint8_t> RleDecompress(const std::vector<uint8_t>& input) {
  FLOATFL_CHECK(input.size() % 2 == 0);
  std::vector<uint8_t> delta;
  delta.reserve(input.size() * 4);
  for (size_t i = 0; i < input.size(); i += 2) {
    const size_t run = input[i];
    const uint8_t value = input[i + 1];
    delta.insert(delta.end(), run, value);
  }
  return DeltaDecode(delta);
}

double CompressionRatio(const std::vector<uint8_t>& input) {
  if (input.empty()) {
    return 1.0;
  }
  return static_cast<double>(RleCompress(input).size()) / static_cast<double>(input.size());
}

}  // namespace floatfl
