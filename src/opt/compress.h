// Real lossless compression of serialized updates.
//
// Byte-level run-length encoding over a zigzag-delta transform. Quantized or
// pruned updates contain long runs (zeros, repeated codes), which is exactly
// where the paper's "lossless compression reduces bandwidth at extra compute
// cost" trade-off comes from.
#ifndef SRC_OPT_COMPRESS_H_
#define SRC_OPT_COMPRESS_H_

#include <cstdint>
#include <vector>

namespace floatfl {

// RLE over delta-encoded bytes. Round-trips exactly.
std::vector<uint8_t> RleCompress(const std::vector<uint8_t>& input);
std::vector<uint8_t> RleDecompress(const std::vector<uint8_t>& input);

// Convenience: compressed_size / original_size (1.0 for empty input).
double CompressionRatio(const std::vector<uint8_t>& input);

}  // namespace floatfl

#endif  // SRC_OPT_COMPRESS_H_
