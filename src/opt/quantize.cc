#include "src/opt/quantize.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace floatfl {

QuantizedBlob Quantize(const std::vector<float>& values, int bits) {
  FLOATFL_CHECK(bits == 8 || bits == 16);
  QuantizedBlob blob;
  blob.bits = bits;
  blob.count = values.size();
  float lo = 0.0f;
  float hi = 0.0f;
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const uint32_t levels = (bits == 8) ? 255u : 65535u;
  float range = hi - lo;
  if (range <= 0.0f) {
    range = 1.0f;
  }
  blob.scale = range / static_cast<float>(levels);
  blob.zero_point = lo;
  blob.data.reserve(values.size() * static_cast<size_t>(bits / 8));
  for (float v : values) {
    const float q = (v - blob.zero_point) / blob.scale;
    const uint32_t code =
        static_cast<uint32_t>(std::clamp(std::lround(q), 0L, static_cast<long>(levels)));
    blob.data.push_back(static_cast<uint8_t>(code & 0xFF));
    if (bits == 16) {
      blob.data.push_back(static_cast<uint8_t>((code >> 8) & 0xFF));
    }
  }
  return blob;
}

std::vector<float> Dequantize(const QuantizedBlob& blob) {
  std::vector<float> out;
  out.reserve(blob.count);
  const size_t stride = static_cast<size_t>(blob.bits / 8);
  FLOATFL_CHECK(blob.data.size() == blob.count * stride);
  for (size_t i = 0; i < blob.count; ++i) {
    uint32_t code = blob.data[i * stride];
    if (blob.bits == 16) {
      code |= static_cast<uint32_t>(blob.data[i * stride + 1]) << 8;
    }
    out.push_back(blob.zero_point + blob.scale * static_cast<float>(code));
  }
  return out;
}

double QuantizeDequantize(std::vector<float>& values, int bits) {
  const QuantizedBlob blob = Quantize(values, bits);
  const std::vector<float> restored = Dequantize(blob);
  double max_err = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(values[i]) - restored[i]));
  }
  values = restored;
  return max_err;
}

}  // namespace floatfl
