// Straggler-acceleration optimization techniques (Section 4.3).
//
// Each technique trades communication / computation / memory cost against
// update quality. The FL engine charges the cost multipliers against the
// client's simulated resources; the `accuracy_impact` feeds the surrogate
// convergence model (and mirrors the measured degradation of each technique).
// Real tensor-level implementations live in quantize.h / prune.h /
// compress.h and are exercised by the nn-backed examples and tests.
#ifndef SRC_OPT_TECHNIQUE_H_
#define SRC_OPT_TECHNIQUE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace floatfl {

enum class TechniqueKind {
  kNone = 0,
  kQuant16,
  kQuant8,
  kPrune25,
  kPrune50,
  kPrune75,
  kPartial25,
  kPartial50,
  kPartial75,
  kCompressLossless,
};

std::string ToString(TechniqueKind kind);

// Multipliers applied to the client's nominal round costs, plus the quality
// penalty of the resulting model update.
struct CostEffect {
  double compute_mult = 1.0;  // local-training FLOPs
  double comm_mult = 1.0;     // upload/download bytes
  double memory_mult = 1.0;   // peak training memory
  double accuracy_impact = 0.0;  // fraction of update quality lost, [0, 1]
};

const CostEffect& EffectOf(TechniqueKind kind);

// FLOAT's action space: the 8 tunable accelerations (RQ5: "8 actions") plus
// the explicit no-acceleration action.
const std::vector<TechniqueKind>& ActionTechniques();

// Every kind including kNone and lossless compression.
const std::vector<TechniqueKind>& AllTechniques();

// Classification helpers used by the heuristic baseline and analyses.
bool IsQuantization(TechniqueKind kind);
bool IsPruning(TechniqueKind kind);
bool IsPartialTraining(TechniqueKind kind);

// For partial training: fraction of the model excluded from updates.
double PartialTrainingFraction(TechniqueKind kind);
// For pruning: fraction of weights removed.
double PruningFraction(TechniqueKind kind);
// For quantization: bit width (32 when not a quantization technique).
int QuantizationBits(TechniqueKind kind);

}  // namespace floatfl

#endif  // SRC_OPT_TECHNIQUE_H_
