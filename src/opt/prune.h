// Real magnitude pruning of model parameters.
#ifndef SRC_OPT_PRUNE_H_
#define SRC_OPT_PRUNE_H_

#include <cstddef>
#include <vector>

namespace floatfl {

// Zeroes the `fraction` of entries with smallest |value|. Returns the number
// of entries zeroed. fraction in [0, 1].
size_t MagnitudePrune(std::vector<float>& values, double fraction);

// Fraction of exactly-zero entries (post-pruning sparsity).
double Sparsity(const std::vector<float>& values);

// Sparse (index, value) encoding size in bytes for a pruned vector, the
// serialization a pruned update would ship (4-byte index + 4-byte value per
// survivor). Used to validate the pruning comm-cost multipliers.
size_t SparseEncodingBytes(const std::vector<float>& values);

}  // namespace floatfl

#endif  // SRC_OPT_PRUNE_H_
