#include "src/opt/technique.h"

#include "src/common/check.h"

namespace floatfl {
namespace {

struct TechniqueRow {
  TechniqueKind kind;
  const char* name;
  CostEffect effect;
};

// Cost/quality calibration (Sections 4.3, RQ3/Fig 10):
//  * quantization mostly relieves communication (16-bit halves, 8-bit
//    quarters the update) at a small compute overhead — ideal when the
//    network is the bottleneck;
//  * pruning relieves computation AND communication (sparse updates) and
//    memory, with quality loss growing sharply at 75 %;
//  * partial training only relieves computation (the full model is still
//    exchanged), so it underperforms under unstable networks;
//  * lossless compression shrinks traffic ~35 % for extra compute and no
//    quality loss.
constexpr TechniqueRow kRows[] = {
    {TechniqueKind::kNone, "none", {1.00, 1.00, 1.00, 0.000}},
    {TechniqueKind::kQuant16, "quant16", {1.03, 0.50, 0.90, 0.010}},
    {TechniqueKind::kQuant8, "quant8", {1.05, 0.25, 0.80, 0.040}},
    {TechniqueKind::kPrune25, "prune25", {0.78, 0.75, 0.85, 0.015}},
    {TechniqueKind::kPrune50, "prune50", {0.55, 0.50, 0.70, 0.045}},
    {TechniqueKind::kPrune75, "prune75", {0.30, 0.28, 0.55, 0.100}},
    {TechniqueKind::kPartial25, "partial25", {0.75, 1.00, 0.90, 0.020}},
    {TechniqueKind::kPartial50, "partial50", {0.50, 1.00, 0.80, 0.050}},
    {TechniqueKind::kPartial75, "partial75", {0.25, 1.00, 0.70, 0.110}},
    {TechniqueKind::kCompressLossless, "compress", {1.08, 0.65, 1.00, 0.000}},
};

const TechniqueRow& RowOf(TechniqueKind kind) {
  for (const auto& row : kRows) {
    if (row.kind == kind) {
      return row;
    }
  }
  FLOATFL_CHECK_MSG(false, "unknown technique kind");
  return kRows[0];
}

}  // namespace

std::string ToString(TechniqueKind kind) { return RowOf(kind).name; }

const CostEffect& EffectOf(TechniqueKind kind) { return RowOf(kind).effect; }

const std::vector<TechniqueKind>& ActionTechniques() {
  // The paper's 8 tunable accelerations plus the implicit "leave the client
  // alone" choice, which FLOAT needs so resource-rich clients are not
  // penalized with unnecessary update-quality loss.
  static const std::vector<TechniqueKind> kActions = {
      TechniqueKind::kNone,      TechniqueKind::kQuant16,   TechniqueKind::kQuant8,
      TechniqueKind::kPrune25,   TechniqueKind::kPrune50,   TechniqueKind::kPrune75,
      TechniqueKind::kPartial25, TechniqueKind::kPartial50, TechniqueKind::kPartial75,
  };
  return kActions;
}

const std::vector<TechniqueKind>& AllTechniques() {
  static const std::vector<TechniqueKind> kAll = {
      TechniqueKind::kNone,      TechniqueKind::kQuant16,   TechniqueKind::kQuant8,
      TechniqueKind::kPrune25,   TechniqueKind::kPrune50,   TechniqueKind::kPrune75,
      TechniqueKind::kPartial25, TechniqueKind::kPartial50, TechniqueKind::kPartial75,
      TechniqueKind::kCompressLossless,
  };
  return kAll;
}

bool IsQuantization(TechniqueKind kind) {
  return kind == TechniqueKind::kQuant16 || kind == TechniqueKind::kQuant8;
}

bool IsPruning(TechniqueKind kind) {
  return kind == TechniqueKind::kPrune25 || kind == TechniqueKind::kPrune50 ||
         kind == TechniqueKind::kPrune75;
}

bool IsPartialTraining(TechniqueKind kind) {
  return kind == TechniqueKind::kPartial25 || kind == TechniqueKind::kPartial50 ||
         kind == TechniqueKind::kPartial75;
}

double PartialTrainingFraction(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kPartial25:
      return 0.25;
    case TechniqueKind::kPartial50:
      return 0.50;
    case TechniqueKind::kPartial75:
      return 0.75;
    default:
      return 0.0;
  }
}

double PruningFraction(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kPrune25:
      return 0.25;
    case TechniqueKind::kPrune50:
      return 0.50;
    case TechniqueKind::kPrune75:
      return 0.75;
    default:
      return 0.0;
  }
}

int QuantizationBits(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kQuant16:
      return 16;
    case TechniqueKind::kQuant8:
      return 8;
    default:
      return 32;
  }
}

}  // namespace floatfl
