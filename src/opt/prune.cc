#include "src/opt/prune.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/check.h"

namespace floatfl {

size_t MagnitudePrune(std::vector<float>& values, double fraction) {
  FLOATFL_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (values.empty() || fraction == 0.0) {
    return 0;
  }
  const size_t k = static_cast<size_t>(std::llround(fraction * static_cast<double>(values.size())));
  if (k == 0) {
    return 0;
  }
  std::vector<float> magnitudes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    magnitudes[i] = std::fabs(values[i]);
  }
  std::vector<float> sorted = magnitudes;
  const size_t cutoff_index = std::min(k, sorted.size()) - 1;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(cutoff_index),
                   sorted.end());
  const float threshold = sorted[cutoff_index];
  size_t zeroed = 0;
  for (size_t i = 0; i < values.size() && zeroed < k; ++i) {
    if (magnitudes[i] <= threshold && values[i] != 0.0f) {
      values[i] = 0.0f;
      ++zeroed;
    }
  }
  return zeroed;
}

double Sparsity(const std::vector<float>& values) {
  if (values.empty()) {
    return 0.0;
  }
  size_t zeros = 0;
  for (float v : values) {
    if (v == 0.0f) {
      ++zeros;
    }
  }
  return static_cast<double>(zeros) / static_cast<double>(values.size());
}

size_t SparseEncodingBytes(const std::vector<float>& values) {
  size_t nonzero = 0;
  for (float v : values) {
    if (v != 0.0f) {
      ++nonzero;
    }
  }
  return nonzero * 8 + sizeof(uint32_t);
}

}  // namespace floatfl
