// Real uniform affine quantization of model parameters.
//
// Used by the nn-backed path: a client quantizes its update before upload,
// the server dequantizes before aggregation. QuantizeDequantize round-trips
// in place so tests can measure the induced error directly.
#ifndef SRC_OPT_QUANTIZE_H_
#define SRC_OPT_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace floatfl {

struct QuantizedBlob {
  std::vector<uint8_t> data;   // packed codes, little-endian per value
  float scale = 1.0f;
  float zero_point = 0.0f;
  int bits = 8;                // 8 or 16
  size_t count = 0;

  size_t ByteSize() const { return data.size() + sizeof(float) * 2 + sizeof(int); }
};

// Quantizes `values` to `bits` (8 or 16) with a symmetric-range affine map.
QuantizedBlob Quantize(const std::vector<float>& values, int bits);

// Inverse of Quantize.
std::vector<float> Dequantize(const QuantizedBlob& blob);

// Round-trips values through quantization; returns max absolute error.
double QuantizeDequantize(std::vector<float>& values, int bits);

}  // namespace floatfl

#endif  // SRC_OPT_QUANTIZE_H_
