#include "src/net/adaptive_deadline.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/fl/client.h"

namespace floatfl {

AdaptiveDeadlineController::AdaptiveDeadlineController(const AdaptiveDeadlineConfig& config,
                                                       size_t num_clients,
                                                       double base_deadline_s)
    : config_(config),
      base_deadline_s_(base_deadline_s),
      round_time_ewma_(num_clients, 0.0),
      throughput_ewma_(num_clients, 0.0),
      seen_(num_clients, 0) {
  FLOATFL_CHECK_MSG(!config.enabled || base_deadline_s > 0.0,
                    "adaptive deadline needs a positive base deadline");
}

void AdaptiveDeadlineController::Observe(size_t client_id, double round_time_s,
                                         double throughput_mbps) {
  FLOATFL_CHECK(client_id < round_time_ewma_.size());
  if (!seen_[client_id]) {
    seen_[client_id] = 1;
    round_time_ewma_[client_id] = round_time_s;
    throughput_ewma_[client_id] = std::max(0.0, throughput_mbps);
    return;
  }
  round_time_ewma_[client_id] = Client::kProfileEwmaRetain * round_time_ewma_[client_id] +
                                Client::kProfileEwmaObserve * round_time_s;
  if (throughput_mbps > 0.0) {
    throughput_ewma_[client_id] = Client::kProfileEwmaRetain * throughput_ewma_[client_id] +
                                  Client::kProfileEwmaObserve * throughput_mbps;
  }
}

double AdaptiveDeadlineController::CurrentDeadline() const {
  std::vector<double> estimates;
  estimates.reserve(round_time_ewma_.size());
  for (size_t i = 0; i < round_time_ewma_.size(); ++i) {
    if (seen_[i]) {
      estimates.push_back(round_time_ewma_[i]);
    }
  }
  if (estimates.empty()) {
    return base_deadline_s_;
  }
  const double proposed = config_.headroom * Percentile(estimates, 50.0);
  return std::clamp(proposed, config_.min_factor * base_deadline_s_,
                    config_.max_factor * base_deadline_s_);
}

double AdaptiveDeadlineController::ThroughputEstimate(size_t client_id) const {
  FLOATFL_CHECK(client_id < throughput_ewma_.size());
  return throughput_ewma_[client_id];
}

void AdaptiveDeadlineController::SaveState(CheckpointWriter& w) const {
  w.F64(base_deadline_s_);
  w.F64Vec(round_time_ewma_);
  w.F64Vec(throughput_ewma_);
  w.U8Vec(seen_);
}

void AdaptiveDeadlineController::LoadState(CheckpointReader& r) {
  base_deadline_s_ = r.F64();
  round_time_ewma_ = r.F64Vec();
  throughput_ewma_ = r.F64Vec();
  seen_ = r.U8Vec();
}

}  // namespace floatfl
