// Server-side adaptive synchronous deadline (DESIGN.md §10).
//
// AutoDeadlineSeconds calibrates one static deadline from nominal
// (provisioning-time) link speeds; under lossy transport the *effective*
// round time drifts away from that estimate — retransmissions slow clients
// down, quiet links speed them up. The controller maintains per-client EWMA
// estimates of observed round time and transfer throughput (the EWMA
// constants are shared with Client::UpdateDeadlineDiff so every per-client
// profile signal ages at the same rate), and each round proposes
// headroom x median(round-time estimates), clamped to
// [min_factor, max_factor] x the base deadline so one pathological round
// cannot collapse or explode the schedule. Default off: the engines then
// never consult it and behave byte-identically to the static
// AutoDeadlineSeconds calibration.
#ifndef SRC_NET_ADAPTIVE_DEADLINE_H_
#define SRC_NET_ADAPTIVE_DEADLINE_H_

#include <cstddef>
#include <vector>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

struct AdaptiveDeadlineConfig {
  bool enabled = false;
  // Clamp bounds as fractions of the base (auto-calibrated or explicit)
  // deadline: the controller may tighten to min_factor x base and relax to
  // max_factor x base.
  double min_factor = 0.5;
  double max_factor = 3.0;
  // Deadline = headroom x the population-median round-time estimate; 2.5
  // matches AutoDeadlineSeconds' static headroom.
  double headroom = 2.5;
};

class AdaptiveDeadlineController {
 public:
  AdaptiveDeadlineController() = default;
  AdaptiveDeadlineController(const AdaptiveDeadlineConfig& config, size_t num_clients,
                             double base_deadline_s);

  bool enabled() const { return config_.enabled; }

  // Folds one observed client round into the estimates. `round_time_s` is
  // the client's wall time this round; `throughput_mbps` its effective
  // transfer throughput (wire bytes / wire time), <= 0 when no transfer
  // happened. Call from sequential bookkeeping code.
  void Observe(size_t client_id, double round_time_s, double throughput_mbps);

  // The deadline for the next round: headroom x median round-time estimate
  // over observed clients, clamped to the configured bounds. Base deadline
  // until any client has been observed.
  double CurrentDeadline() const;

  // Smoothed effective transfer throughput of `client_id`, Mbps (0 until
  // observed).
  double ThroughputEstimate(size_t client_id) const;

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  AdaptiveDeadlineConfig config_;
  double base_deadline_s_ = 0.0;
  std::vector<double> round_time_ewma_;
  std::vector<double> throughput_ewma_;
  std::vector<uint8_t> seen_;
};

}  // namespace floatfl

#endif  // SRC_NET_ADAPTIVE_DEADLINE_H_
