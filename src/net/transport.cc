#include "src/net/transport.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"

namespace floatfl {
namespace {

// Size of chunk `c` out of `num_chunks` for a `payload_mb` transfer split at
// `chunk_mb` granularity (every chunk full-size except the tail).
double ChunkMb(size_t c, size_t num_chunks, double payload_mb, double chunk_mb) {
  if (c + 1 < num_chunks) {
    return chunk_mb;
  }
  return payload_mb - chunk_mb * static_cast<double>(num_chunks - 1);
}

}  // namespace

Transport::Transport(const FaultConfig& faults, uint64_t seed)
    : faults_(faults), root_(seed ^ kTransportSalt), enabled_(faults.TransportEnabled()) {}

TransferResult Transport::Transfer(size_t round, size_t client_id, const NetworkTrace& trace,
                                   const TransferOptions& opts) const {
  FLOATFL_CHECK(opts.payload_mb >= 0.0 && opts.budget_s >= 0.0);
  TransferResult out;
  if (opts.payload_mb <= 0.0) {
    out.delivered = true;
    return out;
  }

  const double chunk_mb = std::max(1e-6, faults_.transport_chunk_mb);
  const size_t num_chunks =
      static_cast<size_t>(std::ceil(opts.payload_mb / chunk_mb));
  // Integrate over a private copy: the shared trace's bandwidth path (and
  // its monotonic-query contract) must not see this transfer's look-ahead.
  NetworkTrace link = trace;
  const Rng transfer_root = root_.ForkKeyed(Rng::StreamKey(round, client_id));

  std::vector<uint8_t> acked(num_chunks, 0);
  size_t acked_count = 0;
  double acked_mb = 0.0;
  double t = opts.start_s;
  // Closed-form fast-path bookkeeping: on a lossless single attempt over an
  // unchanging link the chunk sum telescopes to payload * 8 / rate — charge
  // that exact value so a zero-config transfer reproduces the cost model's
  // comm time bit-for-bit.
  bool constant_bw = true;
  bool any_lost = false;
  double first_bw = -1.0;

  const size_t max_attempts = faults_.max_transfer_retries + 1;
  for (size_t attempt = 0; attempt < max_attempts && !out.timed_out; ++attempt) {
    out.attempts = attempt + 1;
    // (seed, round, client, leg, attempt)-keyed stream: every draw below is
    // a pure function of those coordinates and the draw index.
    Rng rng = transfer_root.ForkKeyed(
        Rng::StreamKey(static_cast<uint64_t>(opts.leg), attempt));

    if (attempt > 0) {
      // Exponential backoff with deterministic jitter in [0.5, 1.5).
      const double backoff =
          std::min(kBackoffCapS, kBackoffBaseS * static_cast<double>(1ULL << (attempt - 1))) *
          (0.5 + rng.NextDouble());
      out.backoff_s += backoff;
      out.elapsed_s += backoff;
      t += backoff;
      if (out.elapsed_s >= opts.budget_s) {
        out.timed_out = true;
        out.elapsed_s = opts.budget_s;
        break;
      }
      if (opts.resumable) {
        // Graceful degradation: the retry pays only the missing tail. The
        // acked prefix only grows, so assigning (not accumulating) keeps
        // salvaged_mb the unique carried-forward bytes.
        out.salvaged_mb = acked_mb;
      } else {
        std::fill(acked.begin(), acked.end(), static_cast<uint8_t>(0));
        acked_count = 0;
        acked_mb = 0.0;
      }
    }

    // Mid-transfer link blackout: chunks past a seeded cut point never make
    // it onto the wire this attempt.
    const bool blackout = rng.Bernoulli(faults_.link_blackout_prob);
    const double cut_frac = rng.NextDouble();
    const size_t pending = num_chunks - acked_count;
    const size_t send_limit =
        blackout ? static_cast<size_t>(cut_frac * static_cast<double>(pending)) : pending;

    size_t sent = 0;
    for (size_t c = 0; c < num_chunks && sent < send_limit; ++c) {
      if (acked[c]) {
        continue;
      }
      const double mb = ChunkMb(c, num_chunks, opts.payload_mb, chunk_mb);
      const double bw = link.BandwidthMbpsAt(t);
      if (first_bw < 0.0) {
        first_bw = bw;
      } else if (bw != first_bw) {
        constant_bw = false;
      }
      const double rate = bw * std::max(kMinAvailability, opts.availability);
      const double dt = mb * 8.0 / rate;
      t += dt;
      out.elapsed_s += dt;
      out.wire_time_s += dt;
      out.wire_mb += mb;
      ++sent;
      if (out.elapsed_s >= opts.budget_s) {
        // The budget expires mid-chunk: the unfinished tail never hits the
        // wire. Clip the charge back to the horizon and give up.
        const double overshoot = out.elapsed_s - opts.budget_s;
        out.elapsed_s = opts.budget_s;
        out.wire_time_s = std::max(0.0, out.wire_time_s - overshoot);
        out.timed_out = true;
        break;
      }
      if (rng.Bernoulli(faults_.chunk_loss_prob)) {
        any_lost = true;
      } else {
        acked[c] = 1;
        ++acked_count;
        acked_mb += mb;
      }
    }
    if (acked_count == num_chunks) {
      out.delivered = true;
      break;
    }
  }

  if (!out.delivered) {
    out.timed_out = true;
  }
  out.retransmitted_mb = out.wire_mb - acked_mb;
  out.progress_mb = out.delivered ? opts.payload_mb : acked_mb;

  if (out.delivered && out.attempts == 1 && constant_bw && !any_lost) {
    const double rate = first_bw * std::max(kMinAvailability, opts.availability);
    out.wire_time_s = opts.payload_mb * 8.0 / rate;
    out.elapsed_s = out.wire_time_s;
    out.wire_mb = opts.payload_mb;
    out.retransmitted_mb = 0.0;
  }
  return out;
}

TransferResult Transport::TryDeliver(size_t round, size_t client_id, double payload_mb,
                                     TransferLeg leg, bool resumable) const {
  FLOATFL_CHECK(payload_mb >= 0.0);
  TransferResult out;
  if (payload_mb <= 0.0) {
    out.delivered = true;
    return out;
  }
  const double chunk_mb = std::max(1e-6, faults_.transport_chunk_mb);
  const size_t num_chunks = static_cast<size_t>(std::ceil(payload_mb / chunk_mb));
  const Rng transfer_root = root_.ForkKeyed(Rng::StreamKey(round, client_id));

  std::vector<uint8_t> acked(num_chunks, 0);
  size_t acked_count = 0;
  double acked_mb = 0.0;

  const size_t max_attempts = faults_.max_transfer_retries + 1;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    out.attempts = attempt + 1;
    Rng rng =
        transfer_root.ForkKeyed(Rng::StreamKey(static_cast<uint64_t>(leg), attempt));
    if (attempt > 0) {
      if (resumable) {
        // Unique carried-forward bytes, as in Transfer(): assign, never sum.
        out.salvaged_mb = acked_mb;
      } else {
        std::fill(acked.begin(), acked.end(), static_cast<uint8_t>(0));
        acked_count = 0;
        acked_mb = 0.0;
      }
    }
    const bool blackout = rng.Bernoulli(faults_.link_blackout_prob);
    const double cut_frac = rng.NextDouble();
    const size_t pending = num_chunks - acked_count;
    const size_t send_limit =
        blackout ? static_cast<size_t>(cut_frac * static_cast<double>(pending)) : pending;
    size_t sent = 0;
    for (size_t c = 0; c < num_chunks && sent < send_limit; ++c) {
      if (acked[c]) {
        continue;
      }
      const double mb = ChunkMb(c, num_chunks, payload_mb, chunk_mb);
      out.wire_mb += mb;
      ++sent;
      if (!rng.Bernoulli(faults_.chunk_loss_prob)) {
        acked[c] = 1;
        ++acked_count;
        acked_mb += mb;
      }
    }
    if (acked_count == num_chunks) {
      out.delivered = true;
      break;
    }
  }
  if (!out.delivered) {
    out.timed_out = true;
  }
  out.retransmitted_mb = out.wire_mb - acked_mb;
  out.progress_mb = out.delivered ? payload_mb : acked_mb;
  return out;
}

}  // namespace floatfl
