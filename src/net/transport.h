// Deterministic lossy transport layer (DESIGN.md §10).
//
// Replaces the cost model's one-shot "traffic / bandwidth-at-round-start"
// communication charge with a chunked transfer integrated over the client's
// time-varying NetworkTrace bandwidth. Each chunk can be lost
// (chunk_loss_prob) and each attempt can hit a mid-transfer link blackout
// (link_blackout_prob); lost chunks are retransmitted on the next attempt
// after exponential backoff with deterministic jitter, up to
// max_transfer_retries. Resumable transfers salvage already-acknowledged
// chunks across attempts, so a retry pays only the missing tail.
//
// Determinism: all randomness comes from streams keyed by
// (seed, round, client, leg, attempt) via Rng::ForkKeyed — never from an
// advancing shared stream — so a transfer's outcome depends only on those
// coordinates, not on thread count, scheduling, or other transfers.
// Transfer() is const and advances a private *copy* of the caller's
// NetworkTrace; the shared trace is never rewound or perturbed, preserving
// both its monotonic-query contract and the legacy engines' bit-exact
// bandwidth paths.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/rng.h"
#include "src/failure/fault_config.h"
#include "src/trace/network_trace.h"

namespace floatfl {

// Which communication leg a transfer models; part of the RNG key so the
// download and upload of one (round, client) draw independent streams.
enum class TransferLeg : uint32_t { kDownload = 0, kUpload = 1 };

struct TransferOptions {
  double payload_mb = 0.0;  // bytes that must arrive for delivery
  double start_s = 0.0;     // transfer start on the simulation clock
  // Give-up horizon, seconds from start_s (the sync round deadline;
  // infinity for async FL). Exceeding it mid-transfer fails the transfer.
  double budget_s = 0.0;
  TransferLeg leg = TransferLeg::kDownload;
  // Salvage acknowledged chunks across retry attempts.
  bool resumable = true;
  // Interference multiplier on the link (ResourceAvailability::network).
  double availability = 1.0;
};

struct TransferResult {
  // Wall time from start to delivery or give-up: wire time + backoff.
  double elapsed_s = 0.0;
  // Radio-active transmission time (what resource accounting charges).
  double wire_time_s = 0.0;
  // Total bytes put on the wire, MB (payload + every retransmission).
  double wire_mb = 0.0;
  // Wire bytes that did not produce a first-time acknowledgment: lost
  // chunks plus restart-from-scratch resends. wire_mb - unique acked MB.
  double retransmitted_mb = 0.0;
  // Unique acknowledged bytes the resumable retries carried forward instead
  // of resending — the acked prefix as of the final retry. (Historically
  // this was accumulated per attempt, re-counting the same bytes on every
  // retry; it is now the unique figure so salvage accounting and
  // redundant_mb never double-charge a byte.)
  double salvaged_mb = 0.0;
  // Unique payload bytes acknowledged by the end of the transfer: the full
  // payload on delivery, the salvageable partial-progress bytes on a
  // give-up. This is what the graceful-degradation layer (DESIGN.md §16)
  // turns into a partial update after an exhausted upload.
  double progress_mb = 0.0;
  // Time spent waiting in exponential backoff between attempts.
  double backoff_s = 0.0;
  size_t attempts = 1;
  bool delivered = false;
  // Budget exhausted or retries exhausted before full delivery.
  bool timed_out = false;
};

class Transport {
 public:
  // Disabled transport: engines fall back to the point-sample cost model.
  Transport() = default;
  Transport(const FaultConfig& faults, uint64_t seed);

  bool enabled() const { return enabled_; }
  const FaultConfig& faults() const { return faults_; }

  // Simulates one chunked transfer for (round, client_id). Thread-safe and
  // order-independent: const, keyed streams only, and the bandwidth path is
  // integrated over a private copy of `trace` advanced from opts.start_s.
  // With zero loss/blackout probabilities and a constant-bandwidth trace the
  // result collapses to the closed form payload_mb * 8 / (bw * max(0.02,
  // availability)) — exactly the cost model's comm time.
  TransferResult Transfer(size_t round, size_t client_id, const NetworkTrace& trace,
                          const TransferOptions& opts) const;

  // Bandwidth-free delivery for engines without a wall clock (real
  // training, VFL): same chunk-loss / blackout / retry semantics, but no
  // timing — only attempts, wire bytes and the delivered/timed-out verdict.
  TransferResult TryDeliver(size_t round, size_t client_id, double payload_mb, TransferLeg leg,
                            bool resumable) const;

 private:
  // Salt decorrelating transport streams from the fault injector's and the
  // engines', which key off the same (round, client) coordinates.
  static constexpr uint64_t kTransportSalt = 0x5EE7B6D1A3C4F982ULL;
  static constexpr double kBackoffBaseS = 1.0;
  static constexpr double kBackoffCapS = 30.0;
  // Interference floor shared with ComputeRoundCosts.
  static constexpr double kMinAvailability = 0.02;

  FaultConfig faults_;
  // Root of the per-(round, client) transfer streams; never advanced.
  Rng root_;
  bool enabled_ = false;
};

}  // namespace floatfl

#endif  // SRC_NET_TRANSPORT_H_
