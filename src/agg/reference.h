// Frozen textbook implementations of the five aggregation rules.
//
// These are the original (pre-optimization) loops from src/agg/aggregator.cc,
// kept verbatim as the serial golden: the production aggregators may be
// restructured for speed (cache blocking, selection instead of full sorts,
// fused clipping) but must stay bit-for-bit identical to these references.
// The `perf`-labelled regression tests (tests/perf/blocked_agg_test.cc)
// enforce that equivalence on every rule; DESIGN.md §12 documents the
// contract.
//
// Do not optimize this file. Its value is being the slow, obviously-correct
// spelling of each rule.
#ifndef SRC_AGG_REFERENCE_H_
#define SRC_AGG_REFERENCE_H_

#include <vector>

#include "src/agg/aggregator.h"
#include "src/agg/aggregator_config.h"

namespace floatfl {

// The original straight-line weighted mean: for each update s in order,
// out[i] += w_s * update_s[i] over the full coordinate range.
std::vector<float> ReferenceWeightedMean(const std::vector<std::vector<float>>& parameter_sets,
                                         const std::vector<double>& weights);

// Applies the rule selected by `config.kind` with the original full-sort /
// full-copy implementations. Semantics (including `stats` counts) match
// Aggregator::Aggregate exactly, minus the cumulative totals bookkeeping.
std::vector<float> ReferenceAggregate(const AggregatorConfig& config,
                                      const std::vector<std::vector<float>>& updates,
                                      const std::vector<double>& weights,
                                      const std::vector<float>& global, AggregatorStats* stats);

}  // namespace floatfl

#endif  // SRC_AGG_REFERENCE_H_
