// Pluggable server-side aggregation over real model parameter vectors
// (DESIGN.md §9).
//
// Determinism contract: every implementation is a pure, fixed-order
// reduction over the updates in the order the engine delivers them
// (selection order). No randomness, no reliance on container iteration
// order, ties broken by update index — so aggregation is bit-for-bit
// identical across thread counts and across checkpoint/resume boundaries.
// The only mutable state is the cumulative defense counters, which are
// serialized into checkpoints.
#ifndef SRC_AGG_AGGREGATOR_H_
#define SRC_AGG_AGGREGATOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/agg/aggregator_config.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

// Weighted in-place average of parameter vectors — the FedAvg rule that was
// historically Mlp::Aggregate, extracted so every aggregator (and Mlp, which
// delegates here) shares one bit-identical implementation. `weights` must
// sum to a positive value; vectors must agree in length.
std::vector<float> WeightedMeanAggregate(const std::vector<std::vector<float>>& parameter_sets,
                                         const std::vector<double>& weights);

// Per-round defense accounting produced by one Aggregate() call.
struct AggregatorStats {
  // kNormClip: updates whose delta exceeded clip_norm and was rescaled.
  size_t updates_clipped = 0;
  // kKrum: updates excluded by Multi-Krum selection (n - m).
  size_t krum_rejections = 0;
  // kTrimmedMean: updates excluded per coordinate (2 * trim count).
  size_t updates_trimmed = 0;
};

// Aborts on out-of-range knobs (trim_fraction outside [0, 0.5), clip_norm
// not positive). Called by every engine constructor.
void ValidateAggregatorConfig(const AggregatorConfig& config);

class Aggregator {
 public:
  explicit Aggregator(const AggregatorConfig& config) : config_(config) {}
  virtual ~Aggregator() = default;

  AggregatorKind kind() const { return config_.kind; }
  const AggregatorConfig& config() const { return config_; }

  // Reduces `updates` (full parameter vectors, selection order) into the new
  // global parameters. `global` is the pre-round model, so rules that work
  // in delta space (norm clipping) can recover each client's update
  // direction. `round_stats`, when non-null, receives this call's defense
  // counts; the same counts accumulate into totals().
  std::vector<float> Aggregate(const std::vector<std::vector<float>>& updates,
                               const std::vector<double>& weights,
                               const std::vector<float>& global, AggregatorStats* round_stats);

  // Cumulative defense counters across all rounds (checkpointed).
  const AggregatorStats& totals() const { return totals_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 protected:
  virtual std::vector<float> DoAggregate(const std::vector<std::vector<float>>& updates,
                                         const std::vector<double>& weights,
                                         const std::vector<float>& global,
                                         AggregatorStats& stats) = 0;

 private:
  AggregatorConfig config_;
  AggregatorStats totals_;
};

// Factory for the configured rule. Never returns null.
std::unique_ptr<Aggregator> MakeAggregator(const AggregatorConfig& config);

}  // namespace floatfl

#endif  // SRC_AGG_AGGREGATOR_H_
