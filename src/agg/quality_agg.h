// Quality-space analogues of the robust aggregation rules for the
// trace-driven surrogate engines (DESIGN.md §9).
//
// The surrogate engines have no parameter vectors — each accepted update is
// a scalar contribution quality in [0, 1] that the convergence model folds
// in. Robust aggregation therefore acts on the quality list: the
// coordinate-wise rules collapse to their 1-D forms (median, trimmed mean)
// and Krum to 1-D distance-based selection, so paper-scale experiments can
// express attack-vs-defense sweeps without real training. kFedAvg is a
// strict pass-through (the historical mean-style fold); kNormClip has no
// quality-space analogue (clipping is a parameter-space defense) and also
// passes through.
#ifndef SRC_AGG_QUALITY_AGG_H_
#define SRC_AGG_QUALITY_AGG_H_

#include <vector>

#include "src/agg/aggregator.h"
#include "src/agg/aggregator_config.h"
#include "src/models/surrogate_accuracy.h"

namespace floatfl {

// Applies the configured rule to the accepted contributions, in place, in a
// fixed order (stable tie-breaks by position). kMedian replaces every
// quality with the cohort median; kTrimmedMean Winsorizes — it clamps the k
// lowest/highest qualities to the interior instead of dropping them, since
// each contribution enters the fold individually and removal would forfeit
// honest credit; kKrum removes the rejected contributions from the list
// (their clients keep their completion credit — the aggregator, not the
// server validation, excluded them). `stats`, when non-null, receives the
// exclusion counts.
void ApplyQualityAggregation(const AggregatorConfig& config,
                             std::vector<ClientContribution>& contributions,
                             AggregatorStats* stats);

}  // namespace floatfl

#endif  // SRC_AGG_QUALITY_AGG_H_
