#include "src/agg/quality_agg.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace floatfl {
namespace {

double MedianQuality(const std::vector<ClientContribution>& contributions) {
  std::vector<double> qualities;
  qualities.reserve(contributions.size());
  for (const auto& c : contributions) {
    qualities.push_back(c.quality);
  }
  std::sort(qualities.begin(), qualities.end());
  const size_t n = qualities.size();
  return (n % 2 == 1) ? qualities[n / 2] : 0.5 * (qualities[n / 2 - 1] + qualities[n / 2]);
}

// Indices sorted by (quality, position): deterministic under equal
// qualities.
std::vector<size_t> OrderByQuality(const std::vector<ClientContribution>& contributions) {
  std::vector<size_t> order(contributions.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return contributions[a].quality < contributions[b].quality;
  });
  return order;
}

// Keeps only the contributions at `kept` indices, preserving their original
// relative (selection) order.
void KeepIndices(std::vector<ClientContribution>& contributions, std::vector<size_t> kept) {
  std::sort(kept.begin(), kept.end());
  std::vector<ClientContribution> out;
  out.reserve(kept.size());
  for (size_t idx : kept) {
    out.push_back(contributions[idx]);
  }
  contributions = std::move(out);
}

}  // namespace

void ApplyQualityAggregation(const AggregatorConfig& config,
                             std::vector<ClientContribution>& contributions,
                             AggregatorStats* stats) {
  if (stats != nullptr) {
    *stats = AggregatorStats();
  }
  if (contributions.empty()) {
    return;
  }
  switch (config.kind) {
    case AggregatorKind::kMedian: {
      const double median = MedianQuality(contributions);
      for (auto& c : contributions) {
        c.quality = median;
      }
      return;
    }
    case AggregatorKind::kTrimmedMean: {
      // Winsorize rather than drop: each contribution enters the surrogate
      // fold individually, so the quality-space analogue of trimming a tail
      // is clamping it to the interior — the cohort keeps its size while the
      // extremes lose their leverage (dropping would instead forfeit honest
      // credit, which a bounded-below attack never pays for).
      const size_t n = contributions.size();
      size_t k = static_cast<size_t>(config.trim_fraction * static_cast<double>(n));
      if (2 * k >= n) {
        k = (n - 1) / 2;
      }
      if (k == 0) {
        return;
      }
      const std::vector<size_t> order = OrderByQuality(contributions);
      const double low = contributions[order[k]].quality;
      const double high = contributions[order[n - k - 1]].quality;
      for (size_t j = 0; j < k; ++j) {
        contributions[order[j]].quality = low;
        contributions[order[n - 1 - j]].quality = high;
      }
      if (stats != nullptr) {
        stats->updates_trimmed = 2 * k;
      }
      return;
    }
    case AggregatorKind::kKrum: {
      const size_t n = contributions.size();
      if (n < 3) {
        return;
      }
      size_t f = config.krum_assumed_byzantine;
      const size_t f_max = (n - 3) / 2;
      if (f == 0 || f > f_max) {
        f = f_max;
      }
      const size_t neighbours = std::max<size_t>(1, n - f - 2);
      size_t m = config.multi_krum_m;
      if (m == 0) {
        m = std::max<size_t>(1, n - f - 2);
      }
      m = std::min(m, n);
      std::vector<std::pair<double, size_t>> scored(n);
      std::vector<double> neighbour_dists(n - 1);
      for (size_t a = 0; a < n; ++a) {
        size_t count = 0;
        for (size_t b = 0; b < n; ++b) {
          if (b != a) {
            const double d = contributions[a].quality - contributions[b].quality;
            neighbour_dists[count++] = d * d;
          }
        }
        std::sort(neighbour_dists.begin(), neighbour_dists.end());
        double score = 0.0;
        for (size_t j = 0; j < std::min(neighbours, count); ++j) {
          score += neighbour_dists[j];
        }
        scored[a] = {score, a};
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const auto& x, const auto& y) { return x.first < y.first; });
      std::vector<size_t> kept;
      kept.reserve(m);
      for (size_t j = 0; j < m; ++j) {
        kept.push_back(scored[j].second);
      }
      KeepIndices(contributions, std::move(kept));
      if (stats != nullptr) {
        stats->krum_rejections = n - m;
      }
      return;
    }
    case AggregatorKind::kFedAvg:
    case AggregatorKind::kNormClip:
    default:
      return;
  }
}

}  // namespace floatfl
