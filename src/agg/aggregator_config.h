// Configuration of the server-side aggregation rule (DESIGN.md §9).
//
// The default (kFedAvg with default knobs) reproduces the historical plain
// weighted mean bit-for-bit — selecting it is a strict no-op relative to the
// pre-subsystem engines. The robust rules trade a little clean-run accuracy
// for resistance to Byzantine clients (FaultConfig::byzantine_*): a bounded
// fraction of colluding attackers cannot drag the aggregate arbitrarily far.
#ifndef SRC_AGG_AGGREGATOR_CONFIG_H_
#define SRC_AGG_AGGREGATOR_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace floatfl {

enum class AggregatorKind : uint32_t {
  kFedAvg = 0,       // weighted mean (historical behavior, extracted)
  kMedian = 1,       // coordinate-wise median, unweighted
  kTrimmedMean = 2,  // coordinate-wise mean after trimming both tails
  kKrum = 3,         // (Multi-)Krum distance-based update selection
  kNormClip = 4,     // clip update L2 norm in delta space, then weighted mean
};

struct AggregatorConfig {
  AggregatorKind kind = AggregatorKind::kFedAvg;
  // kTrimmedMean: fraction of updates trimmed from *each* tail per
  // coordinate, in [0, 0.5). When trimming would consume every update the
  // rule degrades to the coordinate-wise median.
  double trim_fraction = 0.2;
  // kKrum: assumed number of Byzantine updates f. 0 = derive the maximum
  // admissible (n - 3) / 2 from the cohort size each round.
  size_t krum_assumed_byzantine = 0;
  // kKrum: how many lowest-scoring updates Multi-Krum averages. 0 = derive
  // max(1, n - f - 2) each round (classic Multi-Krum selection bound).
  size_t multi_krum_m = 0;
  // kNormClip: L2 radius, in delta space (update minus current global
  // model), that each update is clipped to before the weighted mean.
  double clip_norm = 10.0;

  bool IsDefault() const { return kind == AggregatorKind::kFedAvg; }
};

}  // namespace floatfl

#endif  // SRC_AGG_AGGREGATOR_CONFIG_H_
