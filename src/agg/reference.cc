#include "src/agg/reference.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace floatfl {

std::vector<float> ReferenceWeightedMean(const std::vector<std::vector<float>>& parameter_sets,
                                         const std::vector<double>& weights) {
  FLOATFL_CHECK(!parameter_sets.empty());
  FLOATFL_CHECK(parameter_sets.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    FLOATFL_CHECK(w >= 0.0);
    total += w;
  }
  FLOATFL_CHECK(total > 0.0);
  const size_t n = parameter_sets[0].size();
  std::vector<float> out(n, 0.0f);
  for (size_t s = 0; s < parameter_sets.size(); ++s) {
    FLOATFL_CHECK(parameter_sets[s].size() == n);
    const float w = static_cast<float>(weights[s] / total);
    for (size_t i = 0; i < n; ++i) {
      out[i] += w * parameter_sets[s][i];
    }
  }
  return out;
}

namespace {

std::vector<float> ReferenceMedian(const std::vector<std::vector<float>>& updates) {
  const size_t dim = updates[0].size();
  const size_t n = updates.size();
  std::vector<float> out(dim, 0.0f);
  std::vector<float> column(n);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t s = 0; s < n; ++s) {
      FLOATFL_CHECK(updates[s].size() == dim);
      column[s] = updates[s][i];
    }
    std::sort(column.begin(), column.end());
    out[i] = (n % 2 == 1) ? column[n / 2] : 0.5f * (column[n / 2 - 1] + column[n / 2]);
  }
  return out;
}

std::vector<float> ReferenceTrimmedMean(const AggregatorConfig& config,
                                        const std::vector<std::vector<float>>& updates,
                                        AggregatorStats& stats) {
  const size_t dim = updates[0].size();
  const size_t n = updates.size();
  size_t k = static_cast<size_t>(config.trim_fraction * static_cast<double>(n));
  if (2 * k >= n) {
    k = (n - 1) / 2;
  }
  stats.updates_trimmed = 2 * k;
  std::vector<float> out(dim, 0.0f);
  std::vector<float> column(n);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t s = 0; s < n; ++s) {
      FLOATFL_CHECK(updates[s].size() == dim);
      column[s] = updates[s][i];
    }
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    for (size_t s = k; s < n - k; ++s) {
      sum += static_cast<double>(column[s]);
    }
    out[i] = static_cast<float>(sum / static_cast<double>(n - 2 * k));
  }
  return out;
}

std::vector<float> ReferenceKrum(const AggregatorConfig& config,
                                 const std::vector<std::vector<float>>& updates,
                                 const std::vector<double>& weights, AggregatorStats& stats) {
  const size_t n = updates.size();
  if (n < 3) {
    return ReferenceWeightedMean(updates, weights);
  }
  size_t f = config.krum_assumed_byzantine;
  const size_t f_max = (n - 3) / 2;
  if (f == 0 || f > f_max) {
    f = f_max;
  }
  const size_t neighbours = std::max<size_t>(1, n - f - 2);
  size_t m = config.multi_krum_m;
  if (m == 0) {
    m = std::max<size_t>(1, n - f - 2);
  }
  m = std::min(m, n);

  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      FLOATFL_CHECK(updates[b].size() == updates[a].size());
      double sq = 0.0;
      for (size_t i = 0; i < updates[a].size(); ++i) {
        const double d = static_cast<double>(updates[a][i]) - updates[b][i];
        sq += d * d;
      }
      dist[a][b] = sq;
      dist[b][a] = sq;
    }
  }
  std::vector<std::pair<double, size_t>> scored(n);
  std::vector<double> neighbour_dists(n - 1);
  for (size_t a = 0; a < n; ++a) {
    size_t count = 0;
    for (size_t b = 0; b < n; ++b) {
      if (b != a) {
        neighbour_dists[count++] = dist[a][b];
      }
    }
    std::sort(neighbour_dists.begin(), neighbour_dists.end());
    double score = 0.0;
    for (size_t j = 0; j < std::min(neighbours, count); ++j) {
      score += neighbour_dists[j];
    }
    scored[a] = {score, a};
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });

  std::vector<size_t> kept;
  kept.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    kept.push_back(scored[j].second);
  }
  std::sort(kept.begin(), kept.end());
  std::vector<std::vector<float>> selected;
  std::vector<double> selected_weights;
  selected.reserve(m);
  selected_weights.reserve(m);
  for (size_t idx : kept) {
    selected.push_back(updates[idx]);
    selected_weights.push_back(weights[idx]);
  }
  stats.krum_rejections = n - m;
  return ReferenceWeightedMean(selected, selected_weights);
}

std::vector<float> ReferenceNormClip(const AggregatorConfig& config,
                                     const std::vector<std::vector<float>>& updates,
                                     const std::vector<double>& weights,
                                     const std::vector<float>& global, AggregatorStats& stats) {
  const size_t dim = updates[0].size();
  FLOATFL_CHECK(global.size() == dim);
  std::vector<std::vector<float>> clipped = updates;
  for (auto& update : clipped) {
    FLOATFL_CHECK(update.size() == dim);
    double sq = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(update[i]) - global[i];
      sq += d * d;
    }
    const double norm = std::sqrt(sq);
    if (norm > config.clip_norm) {
      const double scale = config.clip_norm / norm;
      for (size_t i = 0; i < dim; ++i) {
        const double d = static_cast<double>(update[i]) - global[i];
        update[i] = static_cast<float>(global[i] + scale * d);
      }
      ++stats.updates_clipped;
    }
  }
  return ReferenceWeightedMean(clipped, weights);
}

}  // namespace

std::vector<float> ReferenceAggregate(const AggregatorConfig& config,
                                      const std::vector<std::vector<float>>& updates,
                                      const std::vector<double>& weights,
                                      const std::vector<float>& global, AggregatorStats* stats) {
  FLOATFL_CHECK(!updates.empty());
  FLOATFL_CHECK(updates.size() == weights.size());
  AggregatorStats local;
  std::vector<float> out;
  switch (config.kind) {
    case AggregatorKind::kMedian:
      out = ReferenceMedian(updates);
      break;
    case AggregatorKind::kTrimmedMean:
      out = ReferenceTrimmedMean(config, updates, local);
      break;
    case AggregatorKind::kKrum:
      out = ReferenceKrum(config, updates, weights, local);
      break;
    case AggregatorKind::kNormClip:
      out = ReferenceNormClip(config, updates, weights, global, local);
      break;
    case AggregatorKind::kFedAvg:
    default:
      out = ReferenceWeightedMean(updates, weights);
      break;
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

}  // namespace floatfl
