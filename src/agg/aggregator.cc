// Optimized fixed-order implementations of the five aggregation rules.
//
// Every rule here is restructured for speed — cache-blocked reductions,
// order-statistic selection instead of full sorts, fused clipping without
// update copies — under one hard constraint: the result must stay
// bit-for-bit identical to the frozen textbook loops in src/agg/reference.cc
// (enforced by tests/perf/blocked_agg_test.cc, contract in DESIGN.md §12).
//
// The blocking trick used throughout: processing coordinates in L1-sized
// blocks changes *which* coordinate is touched when, but never the order of
// floating-point operations applied to any single accumulator — each out[i]
// (and each pairwise-distance scalar) still sees its operands in exactly the
// reference order, so the arithmetic is unchanged.
#include "src/agg/aggregator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace floatfl {
namespace {

// Coordinates per cache block: 2048 floats = 8 KiB, so an output block plus
// one streamed input block stay resident in a 32 KiB L1D.
constexpr size_t kCoordBlock = 2048;

// Columns gathered per transpose block in the coordinate-wise rules. One
// block is kGatherCols * n floats of scratch.
constexpr size_t kGatherCols = 64;

// Below this cohort size a full sort of the column beats order-statistic
// selection: nth_element's partition bookkeeping costs more than an
// insertion sort of a handful of floats. The sorted column exposes the
// identical values at every rank, so switching strategies by size can never
// change a result.
constexpr size_t kSelectMin = 64;

// Blocked weighted mean over row pointers. Bit-identical to
// ReferenceWeightedMean: per coordinate i the adds land in row order
// s = 0..S-1, only grouped into coordinate blocks that keep out[] hot.
std::vector<float> BlockedWeightedMean(const std::vector<const std::vector<float>*>& rows,
                                       const std::vector<double>& weights) {
  FLOATFL_CHECK(!rows.empty());
  FLOATFL_CHECK(rows.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    FLOATFL_CHECK(w >= 0.0);
    total += w;
  }
  FLOATFL_CHECK(total > 0.0);
  const size_t n = rows[0]->size();
  std::vector<float> scaled(rows.size());
  for (size_t s = 0; s < rows.size(); ++s) {
    FLOATFL_CHECK(rows[s]->size() == n);
    scaled[s] = static_cast<float>(weights[s] / total);
  }
  std::vector<float> out(n, 0.0f);
  for (size_t i0 = 0; i0 < n; i0 += kCoordBlock) {
    const size_t i1 = std::min(n, i0 + kCoordBlock);
    const size_t len = i1 - i0;
    float* __restrict dst = out.data() + i0;
    for (size_t s = 0; s < rows.size(); ++s) {
      const float w = scaled[s];
      const float* __restrict src = rows[s]->data() + i0;
      for (size_t i = 0; i < len; ++i) {
        dst[i] += w * src[i];
      }
    }
  }
  return out;
}

// Gathers columns [i0, i1) of the update matrix into `scratch`, transposed:
// scratch[(i - i0) * n + s] = updates[s][i]. Each update row is read once,
// sequentially — the cache-friendly replacement for the reference's one
// strided gather per coordinate.
void GatherColumns(const std::vector<std::vector<float>>& updates, size_t dim, size_t i0,
                   size_t i1, std::vector<float>& scratch) {
  const size_t n = updates.size();
  for (size_t s = 0; s < n; ++s) {
    FLOATFL_CHECK(updates[s].size() == dim);
    const float* row = updates[s].data();
    for (size_t i = i0; i < i1; ++i) {
      scratch[(i - i0) * n + s] = row[i];
    }
  }
}

}  // namespace

std::vector<float> WeightedMeanAggregate(const std::vector<std::vector<float>>& parameter_sets,
                                         const std::vector<double>& weights) {
  std::vector<const std::vector<float>*> rows;
  rows.reserve(parameter_sets.size());
  for (const auto& set : parameter_sets) {
    rows.push_back(&set);
  }
  return BlockedWeightedMean(rows, weights);
}

void ValidateAggregatorConfig(const AggregatorConfig& config) {
  FLOATFL_CHECK_MSG(config.trim_fraction >= 0.0 && config.trim_fraction < 0.5,
                    "aggregator.trim_fraction must be in [0, 0.5)");
  FLOATFL_CHECK_MSG(config.clip_norm > 0.0, "aggregator.clip_norm must be positive");
}

std::vector<float> Aggregator::Aggregate(const std::vector<std::vector<float>>& updates,
                                         const std::vector<double>& weights,
                                         const std::vector<float>& global,
                                         AggregatorStats* round_stats) {
  FLOATFL_CHECK(!updates.empty());
  FLOATFL_CHECK(updates.size() == weights.size());
  AggregatorStats stats;
  std::vector<float> out = DoAggregate(updates, weights, global, stats);
  totals_.updates_clipped += stats.updates_clipped;
  totals_.krum_rejections += stats.krum_rejections;
  totals_.updates_trimmed += stats.updates_trimmed;
  if (round_stats != nullptr) {
    *round_stats = stats;
  }
  return out;
}

void Aggregator::SaveState(CheckpointWriter& w) const {
  w.Size(totals_.updates_clipped);
  w.Size(totals_.krum_rejections);
  w.Size(totals_.updates_trimmed);
}

void Aggregator::LoadState(CheckpointReader& r) {
  totals_.updates_clipped = r.Size();
  totals_.krum_rejections = r.Size();
  totals_.updates_trimmed = r.Size();
}

namespace {

class FedAvgAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

 protected:
  std::vector<float> DoAggregate(const std::vector<std::vector<float>>& updates,
                                 const std::vector<double>& weights,
                                 const std::vector<float>& /*global*/,
                                 AggregatorStats& /*stats*/) override {
    return WeightedMeanAggregate(updates, weights);
  }
};

// Coordinate-wise median via order-statistic selection over transposed
// column blocks. The reference fully sorts every column; a sorted column and
// a selected column expose the identical order-statistic *values*, so the
// emitted medians are bit-identical.
class MedianAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

 protected:
  std::vector<float> DoAggregate(const std::vector<std::vector<float>>& updates,
                                 const std::vector<double>& /*weights*/,
                                 const std::vector<float>& /*global*/,
                                 AggregatorStats& /*stats*/) override {
    const size_t dim = updates[0].size();
    const size_t n = updates.size();
    std::vector<float> out(dim, 0.0f);
    std::vector<float> scratch(std::min(dim, kGatherCols) * n);
    for (size_t i0 = 0; i0 < dim; i0 += kGatherCols) {
      const size_t i1 = std::min(dim, i0 + kGatherCols);
      GatherColumns(updates, dim, i0, i1, scratch);
      for (size_t i = i0; i < i1; ++i) {
        float* column = scratch.data() + (i - i0) * n;
        if (n < kSelectMin) {
          std::sort(column, column + n);
          out[i] = (n % 2 == 1) ? column[n / 2] : 0.5f * (column[n / 2 - 1] + column[n / 2]);
          continue;
        }
        std::nth_element(column, column + n / 2, column + n);
        if (n % 2 == 1) {
          out[i] = column[n / 2];
        } else {
          // Lower middle = largest of the partitioned low half; the same
          // value the full sort puts at n/2 - 1.
          const float lo = *std::max_element(column, column + n / 2);
          out[i] = 0.5f * (lo + column[n / 2]);
        }
      }
    }
    return out;
  }
};

// Coordinate-wise trimmed mean: partition the tails off with nth_element,
// sort only the kept middle, and accumulate it low-to-high — the exact value
// sequence the reference's full sort feeds its double accumulator.
class TrimmedMeanAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

 protected:
  std::vector<float> DoAggregate(const std::vector<std::vector<float>>& updates,
                                 const std::vector<double>& /*weights*/,
                                 const std::vector<float>& /*global*/,
                                 AggregatorStats& stats) override {
    const size_t dim = updates[0].size();
    const size_t n = updates.size();
    size_t k = static_cast<size_t>(config().trim_fraction * static_cast<double>(n));
    if (2 * k >= n) {
      k = (n - 1) / 2;
    }
    stats.updates_trimmed = 2 * k;
    std::vector<float> out(dim, 0.0f);
    std::vector<float> scratch(std::min(dim, kGatherCols) * n);
    for (size_t i0 = 0; i0 < dim; i0 += kGatherCols) {
      const size_t i1 = std::min(dim, i0 + kGatherCols);
      GatherColumns(updates, dim, i0, i1, scratch);
      for (size_t i = i0; i < i1; ++i) {
        float* column = scratch.data() + (i - i0) * n;
        if (k > 0 && n >= kSelectMin) {
          std::nth_element(column, column + k, column + n);
          std::nth_element(column + k, column + (n - k - 1), column + n);
          std::sort(column + k, column + (n - k));
        } else {
          // Small cohort (or nothing trimmed): one insertion-grade sort of
          // the whole column is cheaper than two partitions plus a sort.
          std::sort(column, column + n);
        }
        double sum = 0.0;
        for (size_t s = k; s < n - k; ++s) {
          sum += static_cast<double>(column[s]);
        }
        out[i] = static_cast<float>(sum / static_cast<double>(n - 2 * k));
      }
    }
    return out;
  }
};

// (Multi-)Krum with cache-blocked distance accumulation and partial-sort
// neighbour selection. Each pairwise squared distance is still a strictly
// sequential fold over coordinates 0..dim-1 (the block loop only interleaves
// *which pair* advances next), and a partial_sort prefix carries the same
// ascending values as the reference's full sort, so scores — and therefore
// the kept set and the final mean — are bit-identical. The kept updates feed
// the weighted mean as row pointers instead of copies.
class KrumAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

 protected:
  std::vector<float> DoAggregate(const std::vector<std::vector<float>>& updates,
                                 const std::vector<double>& weights,
                                 const std::vector<float>& /*global*/,
                                 AggregatorStats& stats) override {
    const size_t n = updates.size();
    if (n < 3) {
      // Too small a cohort for distance-based selection: fall back to the
      // plain weighted mean rather than rejecting arbitrarily.
      return WeightedMeanAggregate(updates, weights);
    }
    size_t f = config().krum_assumed_byzantine;
    const size_t f_max = (n - 3) / 2;
    if (f == 0 || f > f_max) {
      f = f_max;
    }
    const size_t neighbours = std::max<size_t>(1, n - f - 2);
    size_t m = config().multi_krum_m;
    if (m == 0) {
      m = std::max<size_t>(1, n - f - 2);
    }
    m = std::min(m, n);

    const size_t dim = updates[0].size();
    // Pairwise squared L2 distances: for each anchor a, accumulate all
    // partners b > a together over coordinate blocks, keeping the anchor's
    // block resident while partner rows stream through.
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    std::vector<double> sq(n);
    for (size_t a = 0; a < n; ++a) {
      FLOATFL_CHECK(updates[a].size() == dim);
      const size_t partners = n - a - 1;
      if (partners == 0) {
        break;
      }
      std::fill(sq.begin(), sq.begin() + static_cast<ptrdiff_t>(partners), 0.0);
      const float* row_a = updates[a].data();
      for (size_t i0 = 0; i0 < dim; i0 += kCoordBlock) {
        const size_t i1 = std::min(dim, i0 + kCoordBlock);
        for (size_t b = a + 1; b < n; ++b) {
          const float* row_b = updates[b].data();
          double acc = sq[b - a - 1];
          for (size_t i = i0; i < i1; ++i) {
            const double d = static_cast<double>(row_a[i]) - row_b[i];
            acc += d * d;
          }
          sq[b - a - 1] = acc;
        }
      }
      for (size_t b = a + 1; b < n; ++b) {
        dist[a][b] = sq[b - a - 1];
        dist[b][a] = sq[b - a - 1];
      }
    }
    std::vector<std::pair<double, size_t>> scored(n);
    std::vector<double> neighbour_dists(n - 1);
    for (size_t a = 0; a < n; ++a) {
      size_t count = 0;
      for (size_t b = 0; b < n; ++b) {
        if (b != a) {
          neighbour_dists[count++] = dist[a][b];
        }
      }
      const size_t take = std::min(neighbours, count);
      std::partial_sort(neighbour_dists.begin(),
                        neighbour_dists.begin() + static_cast<ptrdiff_t>(take),
                        neighbour_dists.end());
      double score = 0.0;
      for (size_t j = 0; j < take; ++j) {
        score += neighbour_dists[j];
      }
      scored[a] = {score, a};
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& x, const auto& y) { return x.first < y.first; });

    std::vector<size_t> kept;
    kept.reserve(m);
    for (size_t j = 0; j < m; ++j) {
      kept.push_back(scored[j].second);
    }
    // Weighted mean over the selected updates in their original (selection)
    // order, so the reduction order is independent of the score ordering.
    std::sort(kept.begin(), kept.end());
    std::vector<const std::vector<float>*> selected;
    std::vector<double> selected_weights;
    selected.reserve(m);
    selected_weights.reserve(m);
    for (size_t idx : kept) {
      selected.push_back(&updates[idx]);
      selected_weights.push_back(weights[idx]);
    }
    stats.krum_rejections = n - m;
    return BlockedWeightedMean(selected, selected_weights);
  }
};

// Norm clipping fused into the weighted mean: one pass computes each
// update's delta norm (the reference's exact coordinate-order fold), a
// second blocked pass applies the clip rescale on the fly — including the
// reference's intermediate round-trip through float — instead of
// materializing a clipped copy of every update.
class NormClipAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

 protected:
  std::vector<float> DoAggregate(const std::vector<std::vector<float>>& updates,
                                 const std::vector<double>& weights,
                                 const std::vector<float>& global,
                                 AggregatorStats& stats) override {
    const size_t dim = updates[0].size();
    const size_t n = updates.size();
    FLOATFL_CHECK(global.size() == dim);
    std::vector<double> scale(n, 1.0);
    std::vector<uint8_t> clip(n, 0);
    for (size_t s = 0; s < n; ++s) {
      FLOATFL_CHECK(updates[s].size() == dim);
      const float* row = updates[s].data();
      double sq = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        const double d = static_cast<double>(row[i]) - global[i];
        sq += d * d;
      }
      const double norm = std::sqrt(sq);
      if (norm > config().clip_norm) {
        scale[s] = config().clip_norm / norm;
        clip[s] = 1;
        ++stats.updates_clipped;
      }
    }
    double total = 0.0;
    for (double w : weights) {
      FLOATFL_CHECK(w >= 0.0);
      total += w;
    }
    FLOATFL_CHECK(total > 0.0);
    std::vector<float> scaled_w(n);
    for (size_t s = 0; s < n; ++s) {
      scaled_w[s] = static_cast<float>(weights[s] / total);
    }
    std::vector<float> out(dim, 0.0f);
    for (size_t i0 = 0; i0 < dim; i0 += kCoordBlock) {
      const size_t i1 = std::min(dim, i0 + kCoordBlock);
      for (size_t s = 0; s < n; ++s) {
        const float w = scaled_w[s];
        const float* row = updates[s].data();
        if (clip[s]) {
          const double sc = scale[s];
          for (size_t i = i0; i < i1; ++i) {
            const double d = static_cast<double>(row[i]) - global[i];
            const float clipped = static_cast<float>(global[i] + sc * d);
            out[i] += w * clipped;
          }
        } else {
          for (size_t i = i0; i < i1; ++i) {
            out[i] += w * row[i];
          }
        }
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Aggregator> MakeAggregator(const AggregatorConfig& config) {
  ValidateAggregatorConfig(config);
  switch (config.kind) {
    case AggregatorKind::kMedian:
      return std::make_unique<MedianAggregator>(config);
    case AggregatorKind::kTrimmedMean:
      return std::make_unique<TrimmedMeanAggregator>(config);
    case AggregatorKind::kKrum:
      return std::make_unique<KrumAggregator>(config);
    case AggregatorKind::kNormClip:
      return std::make_unique<NormClipAggregator>(config);
    case AggregatorKind::kFedAvg:
    default:
      return std::make_unique<FedAvgAggregator>(config);
  }
}

}  // namespace floatfl
