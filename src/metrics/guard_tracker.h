// Bookkeeping for the self-healing guard (src/guard, DESIGN.md §11).
//
// Counts what the guard did — snapshots taken, watchdog triggers by verdict,
// rollbacks, masked (quarantined) actions, quarantine windows opened,
// rejected rewards, safe-mode rounds — so experiments can report recovery
// behavior without digging into guard internals. Recorded only from the
// engines' sequential bookkeeping phases; not thread-safe by design.
#ifndef SRC_METRICS_GUARD_TRACKER_H_
#define SRC_METRICS_GUARD_TRACKER_H_

#include <cstddef>

namespace floatfl {

class CheckpointWriter;
class CheckpointReader;

class GuardTracker {
 public:
  void RecordSnapshot() { ++snapshots_; }
  void RecordNonFiniteTrigger() { ++nonfinite_triggers_; }
  void RecordCollapseTrigger() { ++collapse_triggers_; }
  void RecordStallTrigger() { ++stall_triggers_; }
  void RecordRollback() { ++rollbacks_; }
  // A Decide() result masked to kNone by safe mode or a quarantine window.
  void RecordMaskedAction() { ++masked_actions_; }
  void RecordQuarantineOpened() { ++quarantine_openings_; }
  void RecordRejectedReward() { ++rejected_rewards_; }
  void RecordSafeModeRound() { ++safe_mode_rounds_; }

  size_t Snapshots() const { return snapshots_; }
  size_t NonFiniteTriggers() const { return nonfinite_triggers_; }
  size_t CollapseTriggers() const { return collapse_triggers_; }
  size_t StallTriggers() const { return stall_triggers_; }
  size_t WatchdogTriggers() const {
    return nonfinite_triggers_ + collapse_triggers_ + stall_triggers_;
  }
  size_t Rollbacks() const { return rollbacks_; }
  size_t MaskedActions() const { return masked_actions_; }
  size_t QuarantineOpenings() const { return quarantine_openings_; }
  size_t RejectedRewards() const { return rejected_rewards_; }
  size_t SafeModeRounds() const { return safe_mode_rounds_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t snapshots_ = 0;
  size_t nonfinite_triggers_ = 0;
  size_t collapse_triggers_ = 0;
  size_t stall_triggers_ = 0;
  size_t rollbacks_ = 0;
  size_t masked_actions_ = 0;
  size_t quarantine_openings_ = 0;
  size_t rejected_rewards_ = 0;
  size_t safe_mode_rounds_ = 0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_GUARD_TRACKER_H_
