#include "src/metrics/recovery_tracker.h"

#include "src/failure/checkpoint_io.h"

namespace floatfl {

void RecoveryTracker::SaveState(CheckpointWriter& w) const {
  w.Size(restarts_);
  w.Size(archives_skipped_);
  w.Size(rounds_replayed_);
  w.Size(checkpoints_written_);
  w.Size(checkpoints_failed_);
  w.Size(checkpoints_collected_);
  w.Size(temps_swept_);
}

void RecoveryTracker::LoadState(CheckpointReader& r) {
  restarts_ = r.Size();
  archives_skipped_ = r.Size();
  rounds_replayed_ = r.Size();
  checkpoints_written_ = r.Size();
  checkpoints_failed_ = r.Size();
  checkpoints_collected_ = r.Size();
  temps_swept_ = r.Size();
}

}  // namespace floatfl
