// Graceful-degradation accounting (DESIGN.md §16): how many interrupted
// clients yielded a salvageable partial update, how much completed work the
// partials carried (local steps, progress fractions, acked payload bytes),
// and how the speculative backups fared (planned / won the race / charged
// as redundant, deadline misses averted). All counters are cumulative and
// ride inside engine checkpoints for bit-exact resume. Call from sequential
// bookkeeping code only (not thread-safe; the engines record after the
// per-round fan-out has joined).
#ifndef SRC_METRICS_SALVAGE_TRACKER_H_
#define SRC_METRICS_SALVAGE_TRACKER_H_

#include <cstddef>
#include <cstdint>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

class SalvageTracker {
 public:
  // One interrupted client whose partial was accepted into the aggregate.
  // `steps` is the completed-local-steps metadata, `fraction` the completed
  // work fraction in [0, 1], `progress_mb` the unique acked payload bytes a
  // transfer interruption preserved (0 for training interruptions).
  void RecordPartialSalvaged(uint64_t steps, double fraction, double progress_mb) {
    ++partials_salvaged_;
    salvaged_steps_ += steps;
    salvaged_fraction_sum_ += fraction;
    salvaged_progress_mb_ += progress_mb;
  }
  // An interrupted client whose progress fell below salvage.min_progress.
  void RecordPartialBelowMin() { ++partials_below_min_; }
  // A qualifying partial the server refused (admission gate or validation).
  void RecordPartialRejected() { ++partials_rejected_; }

  void RecordBackupsPlanned(size_t n) { backups_planned_ += n; }
  // A backup whose completion covered an interrupted (or slower) primary.
  void RecordBackupWin() { ++backups_won_; }
  // A backup (or out-raced primary) charged as redundant work.
  void RecordBackupRedundant() { ++backups_redundant_; }
  // A primary that would have been a missed-deadline dropout but for its
  // backup — the figure speculation exists to cut.
  void RecordDeadlineMissAverted() { ++deadline_misses_averted_; }

  size_t PartialsSalvaged() const { return partials_salvaged_; }
  size_t PartialsBelowMin() const { return partials_below_min_; }
  size_t PartialsRejected() const { return partials_rejected_; }
  uint64_t SalvagedSteps() const { return salvaged_steps_; }
  double SalvagedFractionSum() const { return salvaged_fraction_sum_; }
  double SalvagedProgressMb() const { return salvaged_progress_mb_; }
  size_t BackupsPlanned() const { return backups_planned_; }
  size_t BackupsWon() const { return backups_won_; }
  size_t BackupsRedundant() const { return backups_redundant_; }
  size_t DeadlineMissesAverted() const { return deadline_misses_averted_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t partials_salvaged_ = 0;
  size_t partials_below_min_ = 0;
  size_t partials_rejected_ = 0;
  uint64_t salvaged_steps_ = 0;
  double salvaged_fraction_sum_ = 0.0;
  double salvaged_progress_mb_ = 0.0;
  size_t backups_planned_ = 0;
  size_t backups_won_ = 0;
  size_t backups_redundant_ = 0;
  size_t deadline_misses_averted_ = 0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_SALVAGE_TRACKER_H_
