#include "src/metrics/transport_tracker.h"

namespace floatfl {

void TransportTracker::Record(size_t attempts, double wire_mb, double retransmitted_mb,
                              double salvaged_mb, double progress_mb, double backoff_s,
                              bool timed_out) {
  ++transfers_;
  attempts_ += attempts;
  if (timed_out) {
    ++timeouts_;
  }
  wire_mb_ += wire_mb;
  retransmitted_mb_ += retransmitted_mb;
  salvaged_mb_ += salvaged_mb;
  progress_mb_ += progress_mb;
  backoff_s_ += backoff_s;
}

void TransportTracker::SaveState(CheckpointWriter& w) const {
  w.Size(transfers_);
  w.Size(attempts_);
  w.Size(timeouts_);
  w.F64(wire_mb_);
  w.F64(retransmitted_mb_);
  w.F64(salvaged_mb_);
  w.F64(progress_mb_);
  w.F64(backoff_s_);
}

void TransportTracker::LoadState(CheckpointReader& r) {
  transfers_ = r.Size();
  attempts_ = r.Size();
  timeouts_ = r.Size();
  wire_mb_ = r.F64();
  retransmitted_mb_ = r.F64();
  salvaged_mb_ = r.F64();
  progress_mb_ = r.F64();
  backoff_s_ = r.F64();
}

}  // namespace floatfl
