// Hierarchical-topology accounting (DESIGN.md §13): how often edges went
// down and why, how many clients failed over or were orphaned, what happened
// to the forwarded partial aggregates (lost on the inter-tier link, tampered
// by Byzantine edges, rejected by the root's validation, abandoned as late),
// and the tier-1 (edge -> root) wire-byte totals.
#ifndef SRC_METRICS_TOPOLOGY_TRACKER_H_
#define SRC_METRICS_TOPOLOGY_TRACKER_H_

#include <cstddef>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

class TopologyTracker {
 public:
  // All recording happens from the engines' sequential phases (not
  // thread-safe, like every other tracker).
  void RecordEdgeCrash() { ++edge_crashes_; }
  void RecordEdgeBlackout() { ++edge_blackouts_; }
  void RecordReparented(size_t clients) { reparented_clients_ += clients; }
  void RecordOrphaned(size_t clients) { orphaned_clients_ += clients; }
  // One partial aggregate forwarded up the tree (after edge-tier
  // aggregation), with its inter-tier transfer accounting. `delivered` false
  // means the lossy link exhausted its retries and the partial — every
  // client update behind it — was lost for the round.
  void RecordPartial(bool delivered, size_t attempts, double wire_mb, double retransmitted_mb) {
    ++partials_forwarded_;
    if (!delivered) {
      ++partials_lost_;
    }
    edge_transfer_attempts_ += attempts;
    tier1_wire_mb_ += wire_mb;
    tier1_retransmitted_mb_ += retransmitted_mb;
  }
  void RecordTampered() { ++tampered_partials_; }
  // Forwarded contributions the root's validation rejected as tampered.
  void RecordTamperedRejections(size_t rejections) { tampered_rejections_ += rejections; }
  // Partials abandoned by the root's deadline / over-selection close.
  void RecordLatePartial() { ++late_partials_; }
  // Contributions the edge-tier aggregation rule excluded before forwarding.
  void RecordEdgeAggExclusions(size_t exclusions) { edge_agg_exclusions_ += exclusions; }

  size_t EdgeCrashes() const { return edge_crashes_; }
  size_t EdgeBlackouts() const { return edge_blackouts_; }
  size_t ReparentedClients() const { return reparented_clients_; }
  size_t OrphanedClients() const { return orphaned_clients_; }
  size_t PartialsForwarded() const { return partials_forwarded_; }
  size_t PartialsLost() const { return partials_lost_; }
  size_t TamperedPartials() const { return tampered_partials_; }
  size_t TamperedRejections() const { return tampered_rejections_; }
  size_t LatePartials() const { return late_partials_; }
  size_t EdgeAggExclusions() const { return edge_agg_exclusions_; }
  size_t EdgeTransferAttempts() const { return edge_transfer_attempts_; }
  double Tier1WireMb() const { return tier1_wire_mb_; }
  double Tier1RetransmittedMb() const { return tier1_retransmitted_mb_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t edge_crashes_ = 0;
  size_t edge_blackouts_ = 0;
  size_t reparented_clients_ = 0;
  size_t orphaned_clients_ = 0;
  size_t partials_forwarded_ = 0;
  size_t partials_lost_ = 0;
  size_t tampered_partials_ = 0;
  size_t tampered_rejections_ = 0;
  size_t late_partials_ = 0;
  size_t edge_agg_exclusions_ = 0;
  size_t edge_transfer_attempts_ = 0;
  double tier1_wire_mb_ = 0.0;
  double tier1_retransmitted_mb_ = 0.0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_TOPOLOGY_TRACKER_H_
