#include "src/metrics/aggregation_tracker.h"

namespace floatfl {

void AggregationTracker::Record(size_t byzantine_selected, const AggregatorStats& round_stats) {
  AggregationRoundRecord record;
  record.byzantine_selected = byzantine_selected;
  record.updates_clipped = round_stats.updates_clipped;
  record.krum_rejections = round_stats.krum_rejections;
  record.updates_trimmed = round_stats.updates_trimmed;
  history_.push_back(record);
}

size_t AggregationTracker::TotalByzantineSelected() const {
  size_t total = 0;
  for (const auto& r : history_) {
    total += r.byzantine_selected;
  }
  return total;
}

size_t AggregationTracker::TotalClipped() const {
  size_t total = 0;
  for (const auto& r : history_) {
    total += r.updates_clipped;
  }
  return total;
}

size_t AggregationTracker::TotalKrumRejections() const {
  size_t total = 0;
  for (const auto& r : history_) {
    total += r.krum_rejections;
  }
  return total;
}

size_t AggregationTracker::TotalTrimmed() const {
  size_t total = 0;
  for (const auto& r : history_) {
    total += r.updates_trimmed;
  }
  return total;
}

void AggregationTracker::SaveState(CheckpointWriter& w) const {
  w.Size(history_.size());
  for (const auto& r : history_) {
    w.Size(r.byzantine_selected);
    w.Size(r.updates_clipped);
    w.Size(r.krum_rejections);
    w.Size(r.updates_trimmed);
  }
}

void AggregationTracker::LoadState(CheckpointReader& r) {
  history_.clear();
  const size_t n = r.Size();
  history_.reserve(n);
  for (size_t i = 0; i < n && r.ok(); ++i) {
    AggregationRoundRecord record;
    record.byzantine_selected = r.Size();
    record.updates_clipped = r.Size();
    record.krum_rejections = r.Size();
    record.updates_trimmed = r.Size();
    history_.push_back(record);
  }
}

}  // namespace floatfl
