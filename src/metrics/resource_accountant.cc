#include "src/metrics/resource_accountant.h"

#include "src/common/check.h"

namespace floatfl {

void ResourceAccountant::Record(double train_time_s, double comm_time_s, double peak_memory_mb,
                                bool completed) {
  FLOATFL_CHECK(train_time_s >= 0.0 && comm_time_s >= 0.0 && peak_memory_mb >= 0.0);
  ResourceTotals delta;
  delta.compute_hours = train_time_s / 3600.0;
  delta.comm_hours = comm_time_s / 3600.0;
  delta.memory_tb = peak_memory_mb / (1024.0 * 1024.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (completed) {
    useful_ += delta;
  } else {
    wasted_ += delta;
  }
  ++records_;
}

ResourceTotals ResourceAccountant::Total() const {
  ResourceTotals t = useful_;
  t += wasted_;
  return t;
}

void ResourceAccountant::SaveState(CheckpointWriter& w) const {
  w.F64(useful_.compute_hours);
  w.F64(useful_.comm_hours);
  w.F64(useful_.memory_tb);
  w.F64(wasted_.compute_hours);
  w.F64(wasted_.comm_hours);
  w.F64(wasted_.memory_tb);
  w.Size(records_);
}

void ResourceAccountant::LoadState(CheckpointReader& r) {
  useful_.compute_hours = r.F64();
  useful_.comm_hours = r.F64();
  useful_.memory_tb = r.F64();
  wasted_.compute_hours = r.F64();
  wasted_.comm_hours = r.F64();
  wasted_.memory_tb = r.F64();
  records_ = r.Size();
}

}  // namespace floatfl
