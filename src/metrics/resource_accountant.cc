#include "src/metrics/resource_accountant.h"

#include "src/common/check.h"

namespace floatfl {

void ResourceAccountant::Record(double train_time_s, double comm_time_s, double peak_memory_mb,
                                bool completed) {
  FLOATFL_CHECK(train_time_s >= 0.0 && comm_time_s >= 0.0 && peak_memory_mb >= 0.0);
  ResourceTotals delta;
  delta.compute_hours = train_time_s / 3600.0;
  delta.comm_hours = comm_time_s / 3600.0;
  delta.memory_tb = peak_memory_mb / (1024.0 * 1024.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (completed) {
    useful_ += delta;
  } else {
    wasted_ += delta;
  }
  ++records_;
}

ResourceTotals ResourceAccountant::Total() const {
  ResourceTotals t = useful_;
  t += wasted_;
  return t;
}

}  // namespace floatfl
