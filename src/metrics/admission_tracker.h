// Cumulative accounting of the server-ingestion (admission) layer
// (DESIGN.md §15): what the gate admitted and what it turned away, by
// verdict, plus the deepest the bounded ingress queue ever got. Recorded
// from sequential engine code only; rides inside engine checkpoints so the
// totals are bit-exact across resumes.
#ifndef SRC_METRICS_ADMISSION_TRACKER_H_
#define SRC_METRICS_ADMISSION_TRACKER_H_

#include <cstddef>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

class AdmissionTracker {
 public:
  void RecordAdmitted(size_t n) { admitted_ += n; }
  void RecordDeduplicated() { ++deduplicated_; }
  void RecordShed() { ++shed_; }
  void RecordRateLimited() { ++rate_limited_; }
  void RecordReplayRejected() { ++replay_rejected_; }
  void RecordQueueDepth(size_t depth) {
    if (depth > peak_queue_depth_) {
      peak_queue_depth_ = depth;
    }
  }

  size_t Admitted() const { return admitted_; }
  size_t Deduplicated() const { return deduplicated_; }
  size_t Shed() const { return shed_; }
  size_t RateLimited() const { return rate_limited_; }
  size_t ReplayRejected() const { return replay_rejected_; }
  size_t PeakQueueDepth() const { return peak_queue_depth_; }
  size_t TotalRejected() const {
    return deduplicated_ + shed_ + rate_limited_ + replay_rejected_;
  }

  void SaveState(CheckpointWriter& w) const {
    w.Size(admitted_);
    w.Size(deduplicated_);
    w.Size(shed_);
    w.Size(rate_limited_);
    w.Size(replay_rejected_);
    w.Size(peak_queue_depth_);
  }
  void LoadState(CheckpointReader& r) {
    admitted_ = r.Size();
    deduplicated_ = r.Size();
    shed_ = r.Size();
    rate_limited_ = r.Size();
    replay_rejected_ = r.Size();
    peak_queue_depth_ = r.Size();
  }

 private:
  size_t admitted_ = 0;
  size_t deduplicated_ = 0;
  size_t shed_ = 0;
  size_t rate_limited_ = 0;
  size_t replay_rejected_ = 0;
  size_t peak_queue_depth_ = 0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_ADMISSION_TRACKER_H_
