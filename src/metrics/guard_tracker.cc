#include "src/metrics/guard_tracker.h"

#include "src/failure/checkpoint_io.h"

namespace floatfl {

void GuardTracker::SaveState(CheckpointWriter& w) const {
  w.Size(snapshots_);
  w.Size(nonfinite_triggers_);
  w.Size(collapse_triggers_);
  w.Size(stall_triggers_);
  w.Size(rollbacks_);
  w.Size(masked_actions_);
  w.Size(quarantine_openings_);
  w.Size(rejected_rewards_);
  w.Size(safe_mode_rounds_);
}

void GuardTracker::LoadState(CheckpointReader& r) {
  snapshots_ = r.Size();
  nonfinite_triggers_ = r.Size();
  collapse_triggers_ = r.Size();
  stall_triggers_ = r.Size();
  rollbacks_ = r.Size();
  masked_actions_ = r.Size();
  quarantine_openings_ = r.Size();
  rejected_rewards_ = r.Size();
  safe_mode_rounds_ = r.Size();
}

}  // namespace floatfl
