// Transport-layer accounting (DESIGN.md §10): how many transfers the lossy
// transport attempted, how many attempts they took, how many wire bytes were
// retransmissions, how many acknowledged bytes resumable retries salvaged,
// and how much time was spent backing off between attempts.
#ifndef SRC_METRICS_TRANSPORT_TRACKER_H_
#define SRC_METRICS_TRANSPORT_TRACKER_H_

#include <cstddef>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

class TransportTracker {
 public:
  // Records one finished transfer (download or upload leg). `wire_mb` is the
  // total bytes the transfer put on the wire (payload + retransmissions) —
  // the bytes-moved denominator the perf harness reports (DESIGN.md §12).
  // `salvaged_mb` is the unique acked bytes resumable retries carried
  // forward (never re-counted per attempt); `progress_mb` is the unique
  // payload bytes acknowledged overall — on a timed-out transfer, the
  // salvageable partial progress the graceful-degradation layer can turn
  // into a partial update (DESIGN.md §16). Call from sequential bookkeeping
  // code only (not thread-safe; the engines record after the per-round
  // fan-out has joined).
  void Record(size_t attempts, double wire_mb, double retransmitted_mb, double salvaged_mb,
              double progress_mb, double backoff_s, bool timed_out);

  size_t TotalTransfers() const { return transfers_; }
  size_t TotalAttempts() const { return attempts_; }
  size_t TotalTimeouts() const { return timeouts_; }
  double TotalWireMb() const { return wire_mb_; }
  double TotalRetransmittedMb() const { return retransmitted_mb_; }
  double TotalSalvagedMb() const { return salvaged_mb_; }
  double TotalProgressMb() const { return progress_mb_; }
  double TotalBackoffS() const { return backoff_s_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t transfers_ = 0;
  size_t attempts_ = 0;
  size_t timeouts_ = 0;
  double wire_mb_ = 0.0;
  double retransmitted_mb_ = 0.0;
  double salvaged_mb_ = 0.0;
  double progress_mb_ = 0.0;
  double backoff_s_ = 0.0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_TRANSPORT_TRACKER_H_
