#include "src/metrics/participation_tracker.h"

#include "src/common/check.h"

namespace floatfl {

ParticipationTracker::ParticipationTracker(size_t num_clients)
    : selected_(num_clients, 0), completed_(num_clients, 0) {}

void ParticipationTracker::Record(size_t client_id, TechniqueKind technique, bool completed) {
  Record(client_id, technique, completed, static_cast<DropoutReason>(0));
}

void ParticipationTracker::Record(size_t client_id, TechniqueKind technique, bool completed,
                                  DropoutReason reason) {
  FLOATFL_CHECK(client_id < selected_.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++selected_[client_id];
  auto& stats = per_technique_[technique];
  if (completed) {
    ++completed_[client_id];
    ++stats.success;
  } else {
    ++stats.failure;
    // Reason 0 == DropoutReason::kNone: the caller did not attribute the
    // failure, so record nothing rather than a bogus bucket.
    if (static_cast<uint32_t>(reason) != 0) {
      ++dropouts_by_technique_[technique][static_cast<uint32_t>(reason)];
    }
  }
}

size_t ParticipationTracker::DropoutCount(TechniqueKind technique, DropoutReason reason) const {
  const auto it = dropouts_by_technique_.find(technique);
  if (it == dropouts_by_technique_.end()) {
    return 0;
  }
  const auto jt = it->second.find(static_cast<uint32_t>(reason));
  return jt == it->second.end() ? 0 : jt->second;
}

size_t ParticipationTracker::SelectedCount(size_t client_id) const {
  FLOATFL_CHECK(client_id < selected_.size());
  return selected_[client_id];
}

size_t ParticipationTracker::CompletedCount(size_t client_id) const {
  FLOATFL_CHECK(client_id < completed_.size());
  return completed_[client_id];
}

size_t ParticipationTracker::TotalSelected() const {
  size_t total = 0;
  for (size_t s : selected_) {
    total += s;
  }
  return total;
}

size_t ParticipationTracker::TotalCompleted() const {
  size_t total = 0;
  for (size_t c : completed_) {
    total += c;
  }
  return total;
}

size_t ParticipationTracker::NeverSelected() const {
  size_t count = 0;
  for (size_t s : selected_) {
    if (s == 0) {
      ++count;
    }
  }
  return count;
}

size_t ParticipationTracker::NeverCompleted() const {
  size_t count = 0;
  for (size_t c : completed_) {
    if (c == 0) {
      ++count;
    }
  }
  return count;
}

void ParticipationTracker::SaveState(CheckpointWriter& w) const {
  w.SizeVec(selected_);
  w.SizeVec(completed_);
  w.Size(per_technique_.size());
  for (const auto& [kind, stats] : per_technique_) {
    w.U32(static_cast<uint32_t>(kind));
    w.Size(stats.success);
    w.Size(stats.failure);
  }
  w.Size(dropouts_by_technique_.size());
  for (const auto& [kind, reasons] : dropouts_by_technique_) {
    w.U32(static_cast<uint32_t>(kind));
    w.Size(reasons.size());
    for (const auto& [reason, count] : reasons) {
      w.U32(reason);
      w.Size(count);
    }
  }
}

void ParticipationTracker::LoadState(CheckpointReader& r) {
  selected_ = r.SizeVec();
  completed_ = r.SizeVec();
  per_technique_.clear();
  const size_t n = r.Size();
  for (size_t i = 0; i < n && r.ok(); ++i) {
    const TechniqueKind kind = static_cast<TechniqueKind>(r.U32());
    TechniqueStats stats;
    stats.success = r.Size();
    stats.failure = r.Size();
    per_technique_[kind] = stats;
  }
  dropouts_by_technique_.clear();
  const size_t kinds = r.Size();
  for (size_t i = 0; i < kinds && r.ok(); ++i) {
    const TechniqueKind kind = static_cast<TechniqueKind>(r.U32());
    ReasonCounts& reasons = dropouts_by_technique_[kind];
    const size_t entries = r.Size();
    for (size_t j = 0; j < entries && r.ok(); ++j) {
      const uint32_t reason = r.U32();
      reasons[reason] = r.Size();
    }
  }
}

}  // namespace floatfl
