#include "src/metrics/participation_tracker.h"

#include "src/common/check.h"

namespace floatfl {

ParticipationTracker::ParticipationTracker(size_t num_clients)
    : selected_(num_clients, 0), completed_(num_clients, 0) {}

void ParticipationTracker::Record(size_t client_id, TechniqueKind technique, bool completed) {
  FLOATFL_CHECK(client_id < selected_.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++selected_[client_id];
  auto& stats = per_technique_[technique];
  if (completed) {
    ++completed_[client_id];
    ++stats.success;
  } else {
    ++stats.failure;
  }
}

size_t ParticipationTracker::SelectedCount(size_t client_id) const {
  FLOATFL_CHECK(client_id < selected_.size());
  return selected_[client_id];
}

size_t ParticipationTracker::CompletedCount(size_t client_id) const {
  FLOATFL_CHECK(client_id < completed_.size());
  return completed_[client_id];
}

size_t ParticipationTracker::TotalSelected() const {
  size_t total = 0;
  for (size_t s : selected_) {
    total += s;
  }
  return total;
}

size_t ParticipationTracker::TotalCompleted() const {
  size_t total = 0;
  for (size_t c : completed_) {
    total += c;
  }
  return total;
}

size_t ParticipationTracker::NeverSelected() const {
  size_t count = 0;
  for (size_t s : selected_) {
    if (s == 0) {
      ++count;
    }
  }
  return count;
}

size_t ParticipationTracker::NeverCompleted() const {
  size_t count = 0;
  for (size_t c : completed_) {
    if (c == 0) {
      ++count;
    }
  }
  return count;
}

void ParticipationTracker::SaveState(CheckpointWriter& w) const {
  w.SizeVec(selected_);
  w.SizeVec(completed_);
  w.Size(per_technique_.size());
  for (const auto& [kind, stats] : per_technique_) {
    w.U32(static_cast<uint32_t>(kind));
    w.Size(stats.success);
    w.Size(stats.failure);
  }
}

void ParticipationTracker::LoadState(CheckpointReader& r) {
  selected_ = r.SizeVec();
  completed_ = r.SizeVec();
  per_technique_.clear();
  const size_t n = r.Size();
  for (size_t i = 0; i < n && r.ok(); ++i) {
    const TechniqueKind kind = static_cast<TechniqueKind>(r.U32());
    TechniqueStats stats;
    stats.success = r.Size();
    stats.failure = r.Size();
    per_technique_[kind] = stats;
  }
}

}  // namespace floatfl
