// Bookkeeping for the crash-consistent run supervisor (src/recovery,
// DESIGN.md §14).
//
// Counts what durability cost and what recovery did: ring checkpoints
// written / failed (disk faults) / garbage-collected, process lives that
// restored from the ring, corrupt or torn archives the recovery scan had to
// skip, and rounds replayed because a kill lost work since the last durable
// archive. The tracker lives *inside* each engine and is serialized with it,
// so the totals accumulate across process lives: the final result of a run
// that died five times reports all five restarts. Recorded only from the
// supervisor's sequential drive loop; not thread-safe by design.
#ifndef SRC_METRICS_RECOVERY_TRACKER_H_
#define SRC_METRICS_RECOVERY_TRACKER_H_

#include <cstddef>

namespace floatfl {

class CheckpointWriter;
class CheckpointReader;

class RecoveryTracker {
 public:
  // A process life that restored engine state from the ring (recorded after
  // the restore, so it persists with the recovered state from then on).
  void RecordRestart() { ++restarts_; }
  // Ring archives the recovery scan refused (torn, bit-flipped, truncated,
  // foreign config) before finding a good one — or before giving up.
  void RecordArchivesSkipped(size_t archives) { archives_skipped_ += archives; }
  // Rounds a previous life had provably completed (newest round number named
  // in the ring, archives and torn temps alike) that the restored state is
  // behind on and this life must re-run.
  void RecordRoundsReplayed(size_t rounds) { rounds_replayed_ += rounds; }
  void RecordCheckpointWritten() { ++checkpoints_written_; }
  // Save returned false (unwritable directory, disk full, torn write): the
  // run continues on the previous archive, one cadence more exposed.
  void RecordCheckpointFailed() { ++checkpoints_failed_; }
  // Archives deleted by the ring's retention GC.
  void RecordCheckpointsCollected(size_t archives) { checkpoints_collected_ += archives; }
  // Leftover "*.tmp" files from killed writers swept on recovery.
  void RecordTempsSwept(size_t temps) { temps_swept_ += temps; }

  size_t Restarts() const { return restarts_; }
  size_t ArchivesSkipped() const { return archives_skipped_; }
  size_t RoundsReplayed() const { return rounds_replayed_; }
  size_t CheckpointsWritten() const { return checkpoints_written_; }
  size_t CheckpointsFailed() const { return checkpoints_failed_; }
  size_t CheckpointsCollected() const { return checkpoints_collected_; }
  size_t TempsSwept() const { return temps_swept_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t restarts_ = 0;
  size_t archives_skipped_ = 0;
  size_t rounds_replayed_ = 0;
  size_t checkpoints_written_ = 0;
  size_t checkpoints_failed_ = 0;
  size_t checkpoints_collected_ = 0;
  size_t temps_swept_ = 0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_RECOVERY_TRACKER_H_
