#include "src/metrics/topology_tracker.h"

namespace floatfl {

void TopologyTracker::SaveState(CheckpointWriter& w) const {
  w.Size(edge_crashes_);
  w.Size(edge_blackouts_);
  w.Size(reparented_clients_);
  w.Size(orphaned_clients_);
  w.Size(partials_forwarded_);
  w.Size(partials_lost_);
  w.Size(tampered_partials_);
  w.Size(tampered_rejections_);
  w.Size(late_partials_);
  w.Size(edge_agg_exclusions_);
  w.Size(edge_transfer_attempts_);
  w.F64(tier1_wire_mb_);
  w.F64(tier1_retransmitted_mb_);
}

void TopologyTracker::LoadState(CheckpointReader& r) {
  edge_crashes_ = r.Size();
  edge_blackouts_ = r.Size();
  reparented_clients_ = r.Size();
  orphaned_clients_ = r.Size();
  partials_forwarded_ = r.Size();
  partials_lost_ = r.Size();
  tampered_partials_ = r.Size();
  tampered_rejections_ = r.Size();
  late_partials_ = r.Size();
  edge_agg_exclusions_ = r.Size();
  edge_transfer_attempts_ = r.Size();
  tier1_wire_mb_ = r.F64();
  tier1_retransmitted_mb_ = r.F64();
}

}  // namespace floatfl
