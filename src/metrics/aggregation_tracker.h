// Attack-vs-defense bookkeeping for the aggregation subsystem (DESIGN.md
// §9): how many selected clients were Byzantine and what the configured
// aggregator did about it (clipped, trimmed, Krum-rejected updates), per
// round and cumulatively.
#ifndef SRC_METRICS_AGGREGATION_TRACKER_H_
#define SRC_METRICS_AGGREGATION_TRACKER_H_

#include <cstddef>
#include <vector>

#include "src/agg/aggregator.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

// One round's attack-vs-defense ledger.
struct AggregationRoundRecord {
  size_t byzantine_selected = 0;
  size_t updates_clipped = 0;
  size_t krum_rejections = 0;
  size_t updates_trimmed = 0;
};

class AggregationTracker {
 public:
  // Records one round. Call from sequential bookkeeping code only (not
  // thread-safe; the engines record after the per-round fan-out has joined).
  void Record(size_t byzantine_selected, const AggregatorStats& round_stats);

  size_t rounds() const { return history_.size(); }
  const std::vector<AggregationRoundRecord>& history() const { return history_; }

  size_t TotalByzantineSelected() const;
  size_t TotalClipped() const;
  size_t TotalKrumRejections() const;
  size_t TotalTrimmed() const;

  // Checkpoint/resume.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  std::vector<AggregationRoundRecord> history_;
};

}  // namespace floatfl

#endif  // SRC_METRICS_AGGREGATION_TRACKER_H_
