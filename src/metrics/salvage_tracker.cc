#include "src/metrics/salvage_tracker.h"

namespace floatfl {

void SalvageTracker::SaveState(CheckpointWriter& w) const {
  w.Size(partials_salvaged_);
  w.Size(partials_below_min_);
  w.Size(partials_rejected_);
  w.U64(salvaged_steps_);
  w.F64(salvaged_fraction_sum_);
  w.F64(salvaged_progress_mb_);
  w.Size(backups_planned_);
  w.Size(backups_won_);
  w.Size(backups_redundant_);
  w.Size(deadline_misses_averted_);
}

void SalvageTracker::LoadState(CheckpointReader& r) {
  partials_salvaged_ = r.Size();
  partials_below_min_ = r.Size();
  partials_rejected_ = r.Size();
  salvaged_steps_ = r.U64();
  salvaged_fraction_sum_ = r.F64();
  salvaged_progress_mb_ = r.F64();
  backups_planned_ = r.Size();
  backups_won_ = r.Size();
  backups_redundant_ = r.Size();
  deadline_misses_averted_ = r.Size();
}

}  // namespace floatfl
