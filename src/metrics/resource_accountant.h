// Resource accounting for the paper's inefficiency metrics (Section 6.1).
//
// Every client-round consumes computation time (hours of device training),
// communication time (hours of round-trip model transfer) and memory
// (TB held during training/storage). When the client completes, the spend is
// "useful"; when it drops out, the spend is wasted — that waste is the
// compute/communication/memory *inefficiency* reported in Figures 6, 11, 12
// and 13.
#ifndef SRC_METRICS_RESOURCE_ACCOUNTANT_H_
#define SRC_METRICS_RESOURCE_ACCOUNTANT_H_

#include <cstddef>
#include <mutex>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

struct ResourceTotals {
  double compute_hours = 0.0;
  double comm_hours = 0.0;
  double memory_tb = 0.0;

  ResourceTotals& operator+=(const ResourceTotals& other) {
    compute_hours += other.compute_hours;
    comm_hours += other.comm_hours;
    memory_tb += other.memory_tb;
    return *this;
  }
};

class ResourceAccountant {
 public:
  // Records one client-round. Times in seconds; memory in MB.
  //
  // Safe to call from concurrent threads (internally serialized). Note that
  // concurrent recording makes the floating-point accumulation order — and
  // therefore the low bits of the totals — scheduling-dependent; for
  // bit-for-bit reproducible totals, record in a fixed order (the engines
  // collect per-client outcomes into an index-ordered buffer and record
  // sequentially after the parallel fan-out joins). Reads must not race with
  // in-flight Record calls.
  void Record(double train_time_s, double comm_time_s, double peak_memory_mb, bool completed);

  const ResourceTotals& Useful() const { return useful_; }
  const ResourceTotals& Wasted() const { return wasted_; }
  ResourceTotals Total() const;

  size_t RecordedRounds() const { return records_; }

  // Checkpoint/resume. Not thread-safe; call with no in-flight Record.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  std::mutex mu_;  // serializes Record
  ResourceTotals useful_;
  ResourceTotals wasted_;
  size_t records_ = 0;
};

}  // namespace floatfl

#endif  // SRC_METRICS_RESOURCE_ACCOUNTANT_H_
