// Participation bookkeeping: selected-vs-completed per client (Figure 2a's
// bias analysis) and success/failure counts per optimization technique
// (Figures 6 and 11, right panels).
#ifndef SRC_METRICS_PARTICIPATION_TRACKER_H_
#define SRC_METRICS_PARTICIPATION_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/failure/checkpoint_io.h"
#include "src/opt/technique.h"

namespace floatfl {

// Defined in src/fl/experiment.h; forward-declared (fixed underlying type)
// to keep the metrics layer below the engine layer.
enum class DropoutReason : uint32_t;

class ParticipationTracker {
 public:
  explicit ParticipationTracker(size_t num_clients);

  // Safe to call from concurrent threads (internally serialized); all counts
  // are order-insensitive, so concurrent recording stays deterministic. The
  // read accessors below must not race with in-flight Record calls — the
  // engines only read after the per-round fan-out has joined.
  void Record(size_t client_id, TechniqueKind technique, bool completed);
  // Attributing overload: a failed round additionally counts under
  // (technique, reason), feeding the guard's quarantine heuristic
  // (DESIGN.md §11) and the per_technique_dropouts result field. The 3-arg
  // overload records no attribution (reason unknown).
  void Record(size_t client_id, TechniqueKind technique, bool completed, DropoutReason reason);

  size_t SelectedCount(size_t client_id) const;
  size_t CompletedCount(size_t client_id) const;
  size_t TotalSelected() const;
  size_t TotalCompleted() const;
  size_t TotalDropouts() const { return TotalSelected() - TotalCompleted(); }

  // Number of clients never selected / never completing a round.
  size_t NeverSelected() const;
  size_t NeverCompleted() const;

  struct TechniqueStats {
    size_t success = 0;
    size_t failure = 0;
  };
  const std::map<TechniqueKind, TechniqueStats>& PerTechnique() const { return per_technique_; }

  // Dropout counts keyed by technique, then by raw DropoutReason value
  // (uint32_t so the incomplete enum never needs completing here).
  using ReasonCounts = std::map<uint32_t, size_t>;
  const std::map<TechniqueKind, ReasonCounts>& DropoutsByTechnique() const {
    return dropouts_by_technique_;
  }
  size_t DropoutCount(TechniqueKind technique, DropoutReason reason) const;

  const std::vector<size_t>& selected() const { return selected_; }
  const std::vector<size_t>& completed() const { return completed_; }

  // Checkpoint/resume. Not thread-safe; call with no in-flight Record.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  std::mutex mu_;  // serializes Record
  std::vector<size_t> selected_;
  std::vector<size_t> completed_;
  std::map<TechniqueKind, TechniqueStats> per_technique_;
  std::map<TechniqueKind, ReasonCounts> dropouts_by_technique_;
};

}  // namespace floatfl

#endif  // SRC_METRICS_PARTICIPATION_TRACKER_H_
