// Graceful-degradation layer for stragglers (DESIGN.md §16): partial-work
// salvage and speculative re-execution. A client interrupted mid-round
// (crash, deadline miss, departure, exhausted upload) no longer forfeits
// 100% of its work: it emits a partial update carrying completed-local-steps
// metadata, which the engines scale into the aggregate. A deterministic
// SpeculativeScheduler additionally over-dispatches backup executions for
// clients whose per-client EWMA deadline profiles predict a miss.
//
// The all-default config is a strict no-op: no partial is ever collected,
// no backup is ever planned, no extra RNG is drawn, and every pre-existing
// golden stays byte-identical.
#ifndef SRC_SALVAGE_SALVAGE_CONFIG_H_
#define SRC_SALVAGE_SALVAGE_CONFIG_H_

#include <cstdint>

namespace floatfl {

// Dedup-key namespace for partial uploads: a salvaged partial passes the
// same admission gates as a fresh upload but under its own attempt number,
// so an interrupted client's partial can never fold with (or be folded by)
// its own fresh delivery of the same round. Far above any real attempt
// counter (fresh sync uploads use attempt 0, async uses the launch count).
inline constexpr uint64_t kPartialUpdateAttempt = 1u << 20;

struct SalvageConfig {
  // Master switch for partial-work salvage. Off = all-or-nothing rounds,
  // bit-for-bit the pre-salvage behavior.
  bool enabled = false;

  // Minimum completed-work fraction (local steps for training interruptions,
  // acked payload bytes for upload interruptions) a partial must carry to be
  // salvaged. Below this the partial is discarded as noise.
  double min_progress = 0.25;

  // Speculative re-execution: dispatch deterministic backup executions for
  // selected clients whose EWMA deadline profile (Client::kProfileEwma*)
  // predicts a miss. First valid completion wins; the loser is charged as
  // redundant work. Sync engine only — the async engine has no round
  // deadline and refuses speculation at construction, like topology.
  bool speculation = false;

  // A primary is predicted to miss when its smoothed relative deadline
  // overshoot (last_deadline_diff, EWMA of (spent-deadline)/deadline)
  // exceeds this margin.
  double speculation_margin = 0.0;

  // Backups per round are capped at ceil(max_backup_fraction * cohort).
  double max_backup_fraction = 0.25;

  // True when any part of the layer is armed.
  bool active() const { return enabled || speculation; }
};

// Aborts with a descriptive message on an invalid config; called by the
// engine constructors so misconfigurations fail at construction.
void ValidateSalvageConfig(const SalvageConfig& config);

}  // namespace floatfl

#endif  // SRC_SALVAGE_SALVAGE_CONFIG_H_
