#include "src/salvage/salvage_config.h"

#include "src/common/check.h"

namespace floatfl {

void ValidateSalvageConfig(const SalvageConfig& config) {
  FLOATFL_CHECK_MSG(config.min_progress > 0.0 && config.min_progress <= 1.0,
                    "salvage.min_progress must be in (0, 1]");
  FLOATFL_CHECK_MSG(config.speculation_margin >= 0.0,
                    "salvage.speculation_margin must be non-negative");
  FLOATFL_CHECK_MSG(
      config.max_backup_fraction >= 0.0 && config.max_backup_fraction <= 1.0,
      "salvage.max_backup_fraction must be in [0, 1]");
  FLOATFL_CHECK_MSG(!config.speculation || config.max_backup_fraction > 0.0,
                    "salvage.speculation requires max_backup_fraction > 0");
}

}  // namespace floatfl
