// Deterministic speculative re-execution planner (DESIGN.md §16). Each
// round it inspects the selected cohort's per-client EWMA deadline profiles
// (Client::last_deadline_diff, smoothed with the shared kProfileEwma*
// weights) and assigns one backup client to every primary predicted to miss
// the deadline, up to ceil(max_backup_fraction * cohort). Backup candidates
// come from a pure ring scan over the population — no RNG draws — so the
// plan is a function of (round state, profiles) alone and thread-count
// invariant by construction. The only cross-round state is the ring cursor
// (spreads backup duty across the population) and cumulative counters; both
// serialize for bit-exact resume.
#ifndef SRC_SALVAGE_SPECULATIVE_SCHEDULER_H_
#define SRC_SALVAGE_SPECULATIVE_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/failure/checkpoint_io.h"
#include "src/salvage/salvage_config.h"

namespace floatfl {

class Client;

// One planned backup: re-execute primary `primary_slot`'s round (same
// technique decision flow, its own fault draws) on `backup_client_id`.
struct BackupPlan {
  size_t primary_slot = 0;       // index into the round's selected cohort
  size_t backup_client_id = 0;   // population id of the backup executor
};

class SpeculativeScheduler {
 public:
  SpeculativeScheduler() = default;
  explicit SpeculativeScheduler(const SalvageConfig& config) : config_(config) {}

  // Plans this round's backups. `selected` holds the cohort's client ids in
  // slot order; `clients` is the full population. Returns plans in primary
  // slot order. Empty (and draws nothing, touches nothing) when speculation
  // is off.
  std::vector<BackupPlan> Plan(size_t round, const std::vector<size_t>& selected,
                               const std::vector<Client>& clients);

  // Cumulative across the run; ride inside engine checkpoints.
  uint64_t BackupsPlanned() const { return backups_planned_; }
  uint64_t RoundsPlanned() const { return rounds_planned_; }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  SalvageConfig config_;
  // Ring-scan start offset; advances by the number of backups drafted so
  // consecutive rounds spread backup duty across the population instead of
  // hammering the clients right after the cohort.
  uint64_t cursor_ = 0;
  uint64_t backups_planned_ = 0;
  uint64_t rounds_planned_ = 0;
};

}  // namespace floatfl

#endif  // SRC_SALVAGE_SPECULATIVE_SCHEDULER_H_
