#include "src/salvage/speculative_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/fl/client.h"

namespace floatfl {

std::vector<BackupPlan> SpeculativeScheduler::Plan(size_t round,
                                                   const std::vector<size_t>& selected,
                                                   const std::vector<Client>& clients) {
  std::vector<BackupPlan> plans;
  if (!config_.speculation || selected.empty() || clients.empty()) {
    return plans;
  }
  const size_t cap = static_cast<size_t>(
      std::ceil(config_.max_backup_fraction * static_cast<double>(selected.size())));
  if (cap == 0) {
    return plans;
  }

  // Predicted stragglers, in slot order: clients whose smoothed deadline
  // overshoot exceeds the margin. A client never observed (times_selected ==
  // 0) has no profile and is never speculated on.
  std::vector<size_t> at_risk;
  for (size_t slot = 0; slot < selected.size(); ++slot) {
    const Client& primary = clients[selected[slot]];
    if (primary.times_selected > 0 && primary.last_deadline_diff > config_.speculation_margin) {
      at_risk.push_back(slot);
      if (at_risk.size() == cap) {
        break;
      }
    }
  }
  if (at_risk.empty()) {
    return plans;
  }

  // Fast membership test for "already busy this round".
  std::vector<uint8_t> busy(clients.size(), 0);
  for (size_t id : selected) {
    if (id < clients.size()) {
      busy[id] = 1;
    }
  }

  // Two-pass ring scan from the cursor: first draft idle clients whose own
  // profile is healthy (no point backing a straggler with a straggler),
  // then fall back to any idle, non-cooled-down client.
  const size_t n = clients.size();
  const size_t start = static_cast<size_t>(cursor_ % n);
  auto draft = [&](bool healthy_only) -> size_t {
    for (size_t step = 0; step < n; ++step) {
      const size_t id = (start + step) % n;
      if (busy[id]) {
        continue;
      }
      const Client& candidate = clients[id];
      if (candidate.cooldown_until_round > round) {
        continue;
      }
      if (healthy_only && candidate.last_deadline_diff > config_.speculation_margin) {
        continue;
      }
      return id;
    }
    return n;  // population exhausted
  };

  for (size_t slot : at_risk) {
    size_t backup = draft(/*healthy_only=*/true);
    if (backup == n) {
      backup = draft(/*healthy_only=*/false);
    }
    if (backup == n) {
      break;  // nobody left to draft
    }
    busy[backup] = 1;
    plans.push_back(BackupPlan{slot, backup});
  }

  cursor_ += plans.size();
  backups_planned_ += plans.size();
  if (!plans.empty()) {
    ++rounds_planned_;
  }
  return plans;
}

void SpeculativeScheduler::SaveState(CheckpointWriter& w) const {
  w.U64(cursor_);
  w.U64(backups_planned_);
  w.U64(rounds_planned_);
}

void SpeculativeScheduler::LoadState(CheckpointReader& r) {
  cursor_ = r.U64();
  backups_planned_ = r.U64();
  rounds_planned_ = r.U64();
}

}  // namespace floatfl
