// FedAvg's client selection: uniformly random K clients per round, with no
// regard for availability or resources (McMahan et al. [49]) — unbiased but
// dropout-prone, exactly the behaviour Figures 2a and 12 rely on.
#ifndef SRC_SELECTION_RANDOM_SELECTOR_H_
#define SRC_SELECTION_RANDOM_SELECTOR_H_

#include "src/common/rng.h"
#include "src/failure/checkpoint_util.h"
#include "src/selection/selector.h"

namespace floatfl {

class RandomSelector final : public Selector {
 public:
  explicit RandomSelector(uint64_t seed);

  std::vector<size_t> Select(size_t round, double now_s, size_t k,
                             std::vector<Client>& clients) override;
  std::string Name() const override { return "fedavg"; }

  void SaveState(CheckpointWriter& w) const override { SaveRng(w, rng_); }
  void LoadState(CheckpointReader& r) override { LoadRng(r, rng_); }

 private:
  Rng rng_;
};

}  // namespace floatfl

#endif  // SRC_SELECTION_RANDOM_SELECTOR_H_
