#include "src/selection/random_selector.h"

#include <algorithm>

namespace floatfl {

RandomSelector::RandomSelector(uint64_t seed) : rng_(seed) {}

std::vector<size_t> RandomSelector::Select(size_t round, double now_s, size_t k,
                                           std::vector<Client>& clients) {
  // Uniformly random among currently checked-in (available) clients; the
  // server only contacts online devices, as in FedScale. No resource
  // awareness beyond that. Clients in a failure cooldown window are skipped
  // (no cooldowns active -> the candidate list, and hence the RNG draw
  // sequence, is unchanged).
  std::vector<size_t> available;
  available.reserve(clients.size());
  for (auto& client : clients) {
    if (client.availability().IsAvailableAt(now_s) && client.cooldown_until_round <= round) {
      available.push_back(client.id());
    }
  }
  const std::vector<size_t> order = rng_.Permutation(available.size());
  std::vector<size_t> selected;
  selected.reserve(std::min(k, available.size()));
  for (size_t i = 0; i < order.size() && selected.size() < k; ++i) {
    selected.push_back(available[order[i]]);
  }
  return selected;
}

}  // namespace floatfl
