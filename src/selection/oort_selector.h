// Oort guided participant selection (Lai et al., OSDI '21 [39]).
//
// Utility = statistical utility (data size as the loss proxy) x a system
// penalty for clients whose last round exceeded the developer deadline, with
// epsilon-greedy exploration of unseen clients and blacklisting of clients
// that repeatedly fail. Reproduces Oort's efficiency *and* its bias toward
// fast clients under heavy heterogeneity (Section 4.1).
#ifndef SRC_SELECTION_OORT_SELECTOR_H_
#define SRC_SELECTION_OORT_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/selection/selector.h"

namespace floatfl {

struct OortParams {
  double exploration = 0.1;          // fraction of K reserved for unexplored clients
  double speed_penalty_alpha = 2.0;  // exponent of the (T/t)^alpha straggler penalty
  size_t blacklist_failures = 5;     // consecutive failures before blacklisting
};

class OortSelector final : public Selector {
 public:
  using Params = OortParams;

  OortSelector(uint64_t seed, size_t num_clients, Params params = Params());

  std::vector<size_t> Select(size_t round, double now_s, size_t k,
                             std::vector<Client>& clients) override;
  void OnOutcome(size_t client_id, bool completed, double duration_s,
                 double deadline_s) override;
  void OnTransfer(size_t client_id, double effective_mbps, double nominal_mbps) override;
  std::string Name() const override { return "oort"; }

  void SaveState(CheckpointWriter& w) const override;
  void LoadState(CheckpointReader& r) override;

  double UtilityOf(size_t client_id) const { return utility_[client_id]; }
  double IngestUtility(size_t client_id) const override { return utility_[client_id]; }
  bool IsBlacklisted(size_t client_id) const { return failures_[client_id] >= params_.blacklist_failures; }
  // Oort's pacer: the developer-preferred round duration as a fraction of
  // the deadline, relaxed when too few clients complete and tightened when
  // completion is easy.
  double PacerFraction() const { return pacer_fraction_; }
  // Smoothed effective/nominal bandwidth ratio (1.0 until transfer feedback
  // arrives; stays exactly 1.0 when the transport is disabled).
  double NetFactor(size_t client_id) const { return net_factor_[client_id]; }

 private:
  Rng rng_;
  Params params_;
  std::vector<double> utility_;
  std::vector<bool> explored_;
  std::vector<size_t> failures_;
  // EWMA of effective/nominal link throughput from OnTransfer; scales
  // utility so Oort ranks by the bandwidth clients actually deliver under
  // lossy transport, not the provisioned figure.
  std::vector<double> net_factor_;
  double pacer_fraction_ = 0.5;
  double completion_ewma_ = 0.8;
};

}  // namespace floatfl

#endif  // SRC_SELECTION_OORT_SELECTOR_H_
