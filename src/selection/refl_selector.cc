#include "src/selection/refl_selector.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/failure/checkpoint_util.h"
#include "src/fl/client.h"

namespace floatfl {
namespace {

// Optimistic priors so every client gets at least one chance; clients whose
// observed rounds run past the deadline drift to high duration estimates and
// are excluded — REFL's observed bias.
constexpr double kDefaultWindowS = 1800.0;
constexpr double kDefaultDurationS = 0.0;
constexpr double kEwma = 0.7;

}  // namespace

ReflSelector::ReflSelector(uint64_t seed, size_t num_clients)
    : rng_(seed),
      predicted_window_s_(num_clients, kDefaultWindowS),
      estimated_duration_s_(num_clients, kDefaultDurationS),
      last_participated_(num_clients, 0),
      seen_(num_clients, false),
      net_factor_(num_clients, 1.0) {}

std::vector<size_t> ReflSelector::Select(size_t round, double now_s, size_t k,
                                         std::vector<Client>& clients) {
  FLOATFL_CHECK(clients.size() == predicted_window_s_.size());
  // Refresh window predictions from what the server can observe: the
  // client's current remaining availability (only for available clients).
  std::vector<size_t> eligible;
  for (auto& client : clients) {
    const size_t id = client.id();
    if (!client.availability().IsAvailableAt(now_s)) {
      continue;
    }
    const double observed = client.availability().PeriodEndAfter(now_s) - now_s;
    // REFL treats availability as a fixed linear window learned from history
    // — the *smoothed* past, not the live value.
    predicted_window_s_[id] =
        seen_[id] ? kEwma * predicted_window_s_[id] + (1.0 - kEwma) * observed : observed;
    seen_[id] = true;
    // Eligible only if REFL predicts the client both completes within the
    // round deadline and stays available that long. Clients whose past
    // rounds were slow are excluded — the bias the paper demonstrates.
    // Under lossy transport the duration estimate is deflated by the
    // effective/nominal bandwidth ratio: a client whose link delivers half
    // its provisioned speed is judged as if twice as slow. net_factor_ is
    // exactly 1.0 without transfer feedback, so x / 1.0 == x bit-for-bit.
    const double effective_duration =
        estimated_duration_s_[id] / std::max(0.05, net_factor_[id]);
    const bool fits_deadline =
        last_deadline_s_ <= 0.0 || effective_duration <= 0.9 * last_deadline_s_;
    if (fits_deadline && predicted_window_s_[id] >= effective_duration &&
        client.cooldown_until_round <= round) {
      eligible.push_back(id);
    }
  }
  // Staleness priority: least-recently-participated first; random
  // tie-breaking so equal-staleness clients rotate.
  std::vector<double> staleness(eligible.size());
  for (size_t i = 0; i < eligible.size(); ++i) {
    staleness[i] = static_cast<double>(round - last_participated_[eligible[i]]) +
                   0.01 * rng_.NextDouble();
  }
  std::vector<size_t> order(eligible.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&staleness](size_t a, size_t b) { return staleness[a] > staleness[b]; });
  std::vector<size_t> selected;
  selected.reserve(std::min(k, eligible.size()));
  for (size_t i = 0; i < order.size() && selected.size() < k; ++i) {
    const size_t id = eligible[order[i]];
    selected.push_back(id);
    last_participated_[id] = round;
  }
  return selected;
}

void ReflSelector::OnOutcome(size_t client_id, bool completed, double duration_s,
                             double deadline_s) {
  FLOATFL_CHECK(client_id < estimated_duration_s_.size());
  double observed = duration_s;
  if (!completed) {
    // A failed round means the true duration exceeded what the client could
    // deliver; REFL inflates its estimate past the deadline.
    observed = std::max(duration_s, deadline_s) * 1.1;
  }
  estimated_duration_s_[client_id] =
      kEwma * estimated_duration_s_[client_id] + (1.0 - kEwma) * observed;
  last_deadline_s_ = deadline_s;
}

void ReflSelector::OnTransfer(size_t client_id, double effective_mbps, double nominal_mbps) {
  FLOATFL_CHECK(client_id < net_factor_.size());
  if (effective_mbps <= 0.0 || nominal_mbps <= 0.0) {
    return;
  }
  const double ratio = effective_mbps / nominal_mbps;
  net_factor_[client_id] = Client::kProfileEwmaRetain * net_factor_[client_id] +
                           Client::kProfileEwmaObserve * ratio;
}

void ReflSelector::SaveState(CheckpointWriter& w) const {
  SaveRng(w, rng_);
  w.F64Vec(predicted_window_s_);
  w.F64Vec(estimated_duration_s_);
  w.SizeVec(last_participated_);
  w.BoolVec(seen_);
  w.F64Vec(net_factor_);
  w.F64(last_deadline_s_);
}

void ReflSelector::LoadState(CheckpointReader& r) {
  LoadRng(r, rng_);
  predicted_window_s_ = r.F64Vec();
  estimated_duration_s_ = r.F64Vec();
  last_participated_ = r.SizeVec();
  seen_ = r.BoolVec();
  net_factor_ = r.F64Vec();
  last_deadline_s_ = r.F64();
}

}  // namespace floatfl
