// Client-selection interface shared by the synchronous engine.
//
// Implementations: RandomSelector (FedAvg), OortSelector, ReflSelector.
// FedBuff's over-selection lives in the async engine, which draws from a
// RandomSelector over available clients.
#ifndef SRC_SELECTION_SELECTOR_H_
#define SRC_SELECTION_SELECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/failure/checkpoint_io.h"
#include "src/fl/client.h"

namespace floatfl {

class Selector {
 public:
  virtual ~Selector() = default;

  // Chooses up to k client ids for the round starting at `now_s`. The
  // population is non-const because reading the stateful traces (e.g.
  // availability) advances them.
  virtual std::vector<size_t> Select(size_t round, double now_s, size_t k,
                                     std::vector<Client>& clients) = 0;

  // Outcome feedback for one selected client.
  virtual void OnOutcome(size_t client_id, bool completed, double duration_s, double deadline_s) {
    (void)client_id;
    (void)completed;
    (void)duration_s;
    (void)deadline_s;
  }

  // Transfer feedback (lossy transport only, DESIGN.md §10): the client's
  // *effective* throughput this round (wire bytes over wire time, after
  // retransmissions) vs its nominal provisioned link speed. Lets selectors
  // rank clients by the bandwidth they actually deliver. Engines only call
  // this when the transport is enabled, so default-config runs are
  // byte-identical with or without an implementation.
  virtual void OnTransfer(size_t client_id, double effective_mbps, double nominal_mbps) {
    (void)client_id;
    (void)effective_mbps;
    (void)nominal_mbps;
  }

  // The selector's current utility score for a client, consumed by the
  // admission layer's utility-priority load shedding (DESIGN.md §15).
  // Score-free selectors return 0 and the engines fall back to the arriving
  // update's quality.
  virtual double IngestUtility(size_t client_id) const {
    (void)client_id;
    return 0.0;
  }

  virtual std::string Name() const = 0;

  // Checkpoint/resume of the selector's mutable state (RNG, utilities,
  // pacing...). Stateless selectors keep the no-op defaults.
  virtual void SaveState(CheckpointWriter& w) const { (void)w; }
  virtual void LoadState(CheckpointReader& r) { (void)r; }
};

}  // namespace floatfl

#endif  // SRC_SELECTION_SELECTOR_H_
