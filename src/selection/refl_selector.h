// REFL's availability-window-predicting selection (Abdelmoniem et al.,
// EuroSys '23 [2]).
//
// REFL models each client's future availability as a fixed linear window
// predicted from past observations and admits only clients whose predicted
// window fits the client's estimated round duration, prioritizing the
// least-recently-participated among them (staleness-aware to spread
// participation). The paper's critique — that fixed-window prediction fails
// under dynamic resources and excludes ~50 % of (slower) clients — emerges
// from exactly this mechanism.
#ifndef SRC_SELECTION_REFL_SELECTOR_H_
#define SRC_SELECTION_REFL_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/selection/selector.h"

namespace floatfl {

class ReflSelector final : public Selector {
 public:
  ReflSelector(uint64_t seed, size_t num_clients);

  std::vector<size_t> Select(size_t round, double now_s, size_t k,
                             std::vector<Client>& clients) override;
  void OnOutcome(size_t client_id, bool completed, double duration_s,
                 double deadline_s) override;
  void OnTransfer(size_t client_id, double effective_mbps, double nominal_mbps) override;
  std::string Name() const override { return "refl"; }

  void SaveState(CheckpointWriter& w) const override;
  void LoadState(CheckpointReader& r) override;

  double PredictedWindow(size_t client_id) const { return predicted_window_s_[client_id]; }
  double EstimatedDuration(size_t client_id) const { return estimated_duration_s_[client_id]; }
  double NetFactor(size_t client_id) const { return net_factor_[client_id]; }

 private:
  Rng rng_;
  std::vector<double> predicted_window_s_;    // EWMA of observed on-periods
  std::vector<double> estimated_duration_s_;  // EWMA of observed round durations
  std::vector<size_t> last_participated_;     // round of last selection
  std::vector<bool> seen_;
  // EWMA of effective/nominal link throughput from OnTransfer (1.0 without
  // transfer feedback): deflates the deadline-fit check so clients whose
  // links deliver less than provisioned are judged on effective speed.
  std::vector<double> net_factor_;
  double last_deadline_s_ = 0.0;              // learned from outcome feedback
};

}  // namespace floatfl

#endif  // SRC_SELECTION_REFL_SELECTOR_H_
