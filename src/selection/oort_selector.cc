#include "src/selection/oort_selector.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/failure/checkpoint_util.h"
#include "src/fl/client.h"

namespace floatfl {

OortSelector::OortSelector(uint64_t seed, size_t num_clients, Params params)
    : rng_(seed),
      params_(params),
      utility_(num_clients, 0.0),
      explored_(num_clients, false),
      failures_(num_clients, 0),
      net_factor_(num_clients, 1.0) {}

std::vector<size_t> OortSelector::Select(size_t round, double now_s, size_t k,
                                         std::vector<Client>& clients) {
  FLOATFL_CHECK(clients.size() == utility_.size());
  // Oort checks in clients that are currently available, minus blacklisted
  // and failure-cooldown clients.
  std::vector<size_t> available;
  for (auto& client : clients) {
    if (client.availability().IsAvailableAt(now_s) && !IsBlacklisted(client.id()) &&
        client.cooldown_until_round <= round) {
      available.push_back(client.id());
    }
  }
  if (available.empty()) {
    return {};
  }

  std::vector<size_t> selected;
  selected.reserve(k);
  std::vector<bool> taken(clients.size(), false);

  // Exploration slice: uniformly among never-explored available clients.
  const size_t explore_target =
      static_cast<size_t>(std::ceil(params_.exploration * static_cast<double>(k)));
  std::vector<size_t> unexplored;
  for (size_t id : available) {
    if (!explored_[id]) {
      unexplored.push_back(id);
    }
  }
  {
    const std::vector<size_t> order = rng_.Permutation(unexplored.size());
    for (size_t i = 0; i < order.size() && selected.size() < explore_target; ++i) {
      const size_t id = unexplored[order[i]];
      selected.push_back(id);
      taken[id] = true;
    }
  }

  // Exploitation slice: highest-utility explored clients. Initial utility
  // for explored clients is their data size (statistical-utility proxy).
  std::vector<size_t> ranked;
  for (size_t id : available) {
    if (!taken[id] && explored_[id]) {
      ranked.push_back(id);
    }
  }
  // Rank by utility deflated to the bandwidth the client actually delivers
  // (net_factor_ is exactly 1.0 without transfer feedback, so the product —
  // and the sort order — is bit-identical to plain utility then).
  std::sort(ranked.begin(), ranked.end(), [this](size_t a, size_t b) {
    return utility_[a] * net_factor_[a] > utility_[b] * net_factor_[b];
  });
  for (size_t id : ranked) {
    if (selected.size() >= k) {
      break;
    }
    selected.push_back(id);
    taken[id] = true;
  }
  // Backfill with random available clients if still short (early rounds).
  if (selected.size() < k) {
    const std::vector<size_t> order = rng_.Permutation(available.size());
    for (size_t i = 0; i < order.size() && selected.size() < k; ++i) {
      const size_t id = available[order[i]];
      if (!taken[id]) {
        selected.push_back(id);
        taken[id] = true;
      }
    }
  }

  for (size_t id : selected) {
    if (!explored_[id]) {
      explored_[id] = true;
      // Statistical utility proxy: local data size.
      utility_[id] = static_cast<double>(clients[id].shard().total);
    }
  }
  return selected;
}

void OortSelector::OnOutcome(size_t client_id, bool completed, double duration_s,
                             double deadline_s) {
  FLOATFL_CHECK(client_id < utility_.size());
  // Pacer (Oort §: adaptive developer-preferred duration): when completions
  // are scarce, tolerate slower clients; when plentiful, demand speed.
  completion_ewma_ += 0.05 * ((completed ? 1.0 : 0.0) - completion_ewma_);
  if (completion_ewma_ < 0.6) {
    pacer_fraction_ = std::min(0.9, pacer_fraction_ + 0.002);
  } else if (completion_ewma_ > 0.85) {
    pacer_fraction_ = std::max(0.3, pacer_fraction_ - 0.002);
  }
  if (!completed) {
    ++failures_[client_id];
    utility_[client_id] *= 0.5;  // failed rounds sharply reduce utility
    return;
  }
  failures_[client_id] = 0;
  // System-speed penalty: clients slower than the developer-preferred round
  // duration lose utility by (T/t)^alpha.
  const double preferred = pacer_fraction_ * deadline_s;
  if (duration_s > preferred && duration_s > 0.0) {
    const double penalty = std::pow(preferred / duration_s, params_.speed_penalty_alpha);
    utility_[client_id] *= std::max(0.05, penalty);
  } else {
    // Fast completions slowly restore utility toward the data-size level.
    utility_[client_id] *= 1.05;
  }
}

void OortSelector::OnTransfer(size_t client_id, double effective_mbps, double nominal_mbps) {
  FLOATFL_CHECK(client_id < net_factor_.size());
  if (effective_mbps <= 0.0 || nominal_mbps <= 0.0) {
    return;
  }
  const double ratio = effective_mbps / nominal_mbps;
  net_factor_[client_id] = Client::kProfileEwmaRetain * net_factor_[client_id] +
                           Client::kProfileEwmaObserve * ratio;
}

void OortSelector::SaveState(CheckpointWriter& w) const {
  SaveRng(w, rng_);
  w.F64Vec(utility_);
  w.BoolVec(explored_);
  w.SizeVec(failures_);
  w.F64Vec(net_factor_);
  w.F64(pacer_fraction_);
  w.F64(completion_ewma_);
}

void OortSelector::LoadState(CheckpointReader& r) {
  LoadRng(r, rng_);
  utility_ = r.F64Vec();
  explored_ = r.BoolVec();
  failures_ = r.SizeVec();
  net_factor_ = r.F64Vec();
  pacer_fraction_ = r.F64();
  completion_ewma_ = r.F64();
}

}  // namespace floatfl
