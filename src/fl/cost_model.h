// Per-round client cost model: turns (model, dataset, hyper-parameters,
// optimization technique, instantaneous resource conditions) into training
// time, communication time, traffic and peak memory — the quantities the
// engines charge against deadlines, availability windows and device limits.
#ifndef SRC_FL_COST_MODEL_H_
#define SRC_FL_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/model_zoo.h"
#include "src/opt/technique.h"
#include "src/trace/interference.h"

namespace floatfl {

struct RoundCostInputs {
  const ModelProfile* model = nullptr;
  const DatasetSpec* dataset = nullptr;
  size_t local_samples = 0;
  size_t epochs = 1;
  size_t batch_size = 20;
  TechniqueKind technique = TechniqueKind::kNone;
  // Instantaneous device state.
  double device_gflops = 1.0;
  double bandwidth_mbps = 1.0;
  double device_memory_gb = 4.0;
  ResourceAvailability availability;
};

struct RoundCosts {
  double train_time_s = 0.0;
  double comm_time_s = 0.0;
  double total_time_s = 0.0;
  double traffic_mb = 0.0;       // download + (optimized) upload
  double peak_memory_mb = 0.0;
  bool out_of_memory = false;
};

RoundCosts ComputeRoundCosts(const RoundCostInputs& in);

// Total mini-batch steps one local round performs: epochs full passes over
// the shard at batch_size granularity. The completed-local-steps denominator
// for partial-work salvage (DESIGN.md §16).
size_t TotalLocalSteps(size_t local_samples, size_t epochs, size_t batch_size);

// Completed-work fraction after `trained_s` seconds of a `train_time_s`
// training phase, quantized to whole mini-batch steps out of `total_steps` —
// an interruption mid-step forfeits that step. Returns a value in [0, 1];
// degenerate inputs (no training time, no steps) yield 0. Pure arithmetic,
// no RNG: the partial-charging half of the salvage layer.
double CompletedStepFraction(double trained_s, double train_time_s, size_t total_steps);

class Client;
struct ExperimentConfig;

// Auto-calibrated synchronous round deadline: 2.5x the population-median
// nominal round time (un-interfered device at base speed and nominal
// bandwidth, no optimization). With this deadline the faster part of an
// interfered population completes unaided, and the acceleration techniques
// (compute/comm multipliers down to ~0.25x) can rescue clients several times
// slower than the median — the regime the paper operates in.
double AutoDeadlineSeconds(const ExperimentConfig& config, const std::vector<Client>& clients);

}  // namespace floatfl

#endif  // SRC_FL_COST_MODEL_H_
