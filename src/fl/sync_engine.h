// Synchronous FL engine (FedAvg-style deadline-driven rounds).
//
// Each round: the attached Selector picks K clients; each selected client's
// round is simulated against its traces (interference, compute, network,
// availability); the attached TuningPolicy (FLOAT, heuristic, static, or
// none) may apply an acceleration technique; completions are aggregated into
// the surrogate convergence model; outcomes feed back to the policy and the
// selector; the wall clock advances by the round duration.
#ifndef SRC_FL_SYNC_ENGINE_H_
#define SRC_FL_SYNC_ENGINE_H_

#include <memory>
#include <vector>

#include "src/admission/admission_controller.h"
#include "src/admission/update_log.h"
#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"
#include "src/failure/edge_fault_injector.h"
#include "src/failure/fault_injector.h"
#include "src/failure/overload_injector.h"
#include "src/fl/client.h"
#include "src/sim/thread_pool.h"
#include "src/fl/cost_model.h"
#include "src/fl/experiment.h"
#include "src/fl/observation.h"
#include "src/fl/tuning_policy.h"
#include "src/guard/training_guard.h"
#include "src/metrics/admission_tracker.h"
#include "src/metrics/aggregation_tracker.h"
#include "src/metrics/participation_tracker.h"
#include "src/metrics/recovery_tracker.h"
#include "src/metrics/resource_accountant.h"
#include "src/metrics/salvage_tracker.h"
#include "src/metrics/topology_tracker.h"
#include "src/metrics/transport_tracker.h"
#include "src/models/surrogate_accuracy.h"
#include "src/net/adaptive_deadline.h"
#include "src/net/transport.h"
#include "src/salvage/speculative_scheduler.h"
#include "src/selection/selector.h"
#include "src/topology/aggregation_tree.h"

namespace floatfl {

struct ClientRoundOutcome {
  size_t client_id = 0;
  TechniqueKind technique = TechniqueKind::kNone;
  bool completed = false;
  DropoutReason reason = DropoutReason::kNone;
  RoundCosts costs;
  // Time actually spent before completing / giving up, seconds.
  double time_spent_s = 0.0;
  double deadline_diff = 0.0;  // overshoot fraction, 0 when met
  // Injected corruption: the client "completed" but its update is poisoned;
  // server-side validation decides its fate.
  bool corrupted = false;
  uint32_t corrupt_kind = 0;
  // Byzantine attacker: the client completed and its update passes
  // validation, but its contribution quality is adversarially crafted; only
  // a robust aggregation rule can limit the damage.
  bool byzantine = false;
  // Lossy-transport accounting (DESIGN.md §10); all zero when the transport
  // is disabled or no transfer was attempted (blackout / offline / OOM).
  size_t transfer_attempts = 0;
  double retransmitted_mb = 0.0;
  double salvaged_mb = 0.0;
  double transfer_backoff_s = 0.0;
  // Unique acked payload bytes across this round's transfer legs: the full
  // payload for delivered legs, the carried-forward progress for timed-out
  // ones. Distinct from salvaged_mb (bytes a *retry* did not resend).
  double transfer_progress_mb = 0.0;
  // Effective link goodput this round: delivered payload megabits over total
  // transfer seconds (wire + backoff). 0 when nothing was delivered.
  double effective_mbps = 0.0;
  // Graceful-degradation metadata (DESIGN.md §16): the fraction of local
  // work completed before an interruption, quantized to whole local steps.
  // Pure arithmetic over quantities the simulation already computes — filled
  // in even when salvage is disabled (the engine then ignores it). Zero for
  // clean completions and for interruptions with nothing to salvage
  // (blackout, offline, OOM, failed download).
  double salvage_fraction = 0.0;
  size_t salvage_steps = 0;
  size_t salvage_total_steps = 0;
  // Set by the engine when this partial cleared the min-progress bar and the
  // admission gate and re-entered aggregation at step-count weight.
  bool salvaged = false;
};

class SyncEngine {
 public:
  // `selector` is required; `policy` may be null (vanilla baseline).
  // Neither is owned.
  SyncEngine(const ExperimentConfig& config, Selector* selector, TuningPolicy* policy);

  // Runs all configured rounds and returns the aggregate result.
  ExperimentResult Run();

  // Runs a single round (exposed for tests and the fine-tuning benches).
  void RunRound(size_t round);

  ExperimentResult Snapshot() const;

  const SurrogateAccuracyModel& accuracy_model() const { return *surrogate_; }
  std::vector<Client>& clients() { return clients_; }
  double now() const { return now_s_; }
  // Resolved configuration (auto-calibrated deadline included).
  const ExperimentConfig& config() const { return config_; }

  // Simulates one client's round at time `now_s` without recording it
  // (used by tests and by the async engine's shared logic).
  ClientRoundOutcome SimulateClient(Client& client, double now_s, TechniqueKind technique) const;
  // Fault-aware variant: `fault` layers injected failures over the natural
  // dropout checks. A default FaultDecision reproduces the plain overload.
  ClientRoundOutcome SimulateClient(Client& client, double now_s, TechniqueKind technique,
                                    const FaultDecision& fault) const;
  // Round-aware variant: `round` keys the lossy transport's per-transfer
  // random streams (irrelevant — and bit-identical — when the transport is
  // disabled). The overloads above forward with round = RoundsRun().
  ClientRoundOutcome SimulateClient(Client& client, size_t round, double now_s,
                                    TechniqueKind technique, const FaultDecision& fault) const;

  size_t RoundsRun() const { return rounds_run_; }
  size_t RejectedUpdates() const { return rejected_updates_; }
  const FaultInjector& injector() const { return injector_; }
  const AggregationTracker& aggregation_tracker() const { return agg_tracker_; }
  const TransportTracker& transport_tracker() const { return transport_tracker_; }
  const AdaptiveDeadlineController& deadline_controller() const { return deadline_ctrl_; }
  const TrainingGuard& guard() const { return guard_; }
  const EdgeFaultInjector& edge_injector() const { return edge_injector_; }
  const AggregationTree& tree() const { return tree_; }
  const TopologyTracker& topology_tracker() const { return topo_tracker_; }
  // Cumulative server-ingestion accounting (DESIGN.md §15).
  const AdmissionTracker& admission_tracker() const { return admission_tracker_; }
  // Crash-recovery accounting (DESIGN.md §14); recorded by the RunSupervisor
  // and serialized with the engine so totals survive process kills.
  RecoveryTracker& recovery_tracker() { return recovery_tracker_; }
  const RecoveryTracker& recovery_tracker() const { return recovery_tracker_; }
  // Graceful-degradation accounting and the backup planner (DESIGN.md §16).
  const SalvageTracker& salvage_tracker() const { return salvage_tracker_; }
  const SpeculativeScheduler& speculative_scheduler() const { return scheduler_; }
  // The deadline governing the current round: the static configured value,
  // or the adaptive controller's latest proposal when it is enabled.
  double CurrentRoundDeadline() const { return round_deadline_s_; }

  // Checkpoint/resume of all mutable engine state (DESIGN.md §8). The
  // population, surrogate tables and deadline are rebuilt from config at
  // construction; Save/Load cover everything that advances during Run().
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  ExperimentConfig config_;
  Selector* selector_;
  TuningPolicy* policy_;
  // Work pool for the per-client simulation fan-out; null when
  // num_threads resolves to 1 (fully sequential path).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Client> clients_;
  PopulationReference reference_;
  std::unique_ptr<SurrogateAccuracyModel> surrogate_;
  ResourceAccountant accountant_;
  ParticipationTracker tracker_;
  FaultInjector injector_;
  AggregationTracker agg_tracker_;
  // Lossy transport and its accounting (DESIGN.md §10); disabled (and the
  // engine byte-identical to the plain cost-model path) by default.
  Transport transport_;
  TransportTracker transport_tracker_;
  AdaptiveDeadlineController deadline_ctrl_;
  // Self-healing guard (DESIGN.md §11); a disabled guard is a strict no-op.
  TrainingGuard guard_;
  // Hierarchical aggregation tree (DESIGN.md §13); disabled (star topology,
  // byte-identical engine) by default. The edge transport carries the
  // edge -> root partial-aggregate uploads; the edge deadline controller
  // re-plans the root's patience over per-edge round times.
  EdgeFaultInjector edge_injector_;
  AggregationTree tree_;
  TopologyTracker topo_tracker_;
  Transport edge_transport_;
  AdaptiveDeadlineController edge_deadline_ctrl_;
  // Server-ingestion admission layer and its fault side (DESIGN.md §15);
  // both disabled (and the engine byte-identical) by default.
  OverloadInjector overload_;
  AdmissionController admission_;
  AdmissionTracker admission_tracker_;
  UpdateLog update_log_;
  // Wire volume of duplicate/replay deliveries the server fully
  // re-processed (zero when the admission gate rejected them at ingress).
  double redundant_mb_ = 0.0;
  RecoveryTracker recovery_tracker_;
  // Graceful degradation (DESIGN.md §16); both strict no-ops by default.
  SalvageTracker salvage_tracker_;
  SpeculativeScheduler scheduler_;
  DropoutBreakdown dropout_breakdown_;
  size_t rejected_updates_ = 0;
  std::vector<double> accuracy_history_;
  double now_s_ = 0.0;
  size_t rounds_run_ = 0;
  // Deadline in force this round; equals config_.deadline_s until the
  // adaptive controller (if enabled) proposes otherwise.
  double round_deadline_s_ = 0.0;
  // Pooled per-round scratch buffers (DESIGN.md §12): cleared at the top of
  // every RunRound and reused across rounds when config_.pool_round_scratch
  // (the default), so steady-state rounds allocate only when a round's
  // cohort outgrows every earlier one. Contents never outlive one round, so
  // pooling cannot change results; released each round when the toggle is
  // off so bench/perf_harness can measure the before/after.
  struct RoundScratch {
    std::vector<ClientObservation> observations;
    std::vector<TechniqueKind> techniques;
    std::vector<FaultDecision> faults;
    std::vector<ClientRoundOutcome> outcomes;
    std::vector<size_t> completed_idx;
    std::vector<ClientContribution> contributions;
    std::vector<EdgeFaultDecision> edge_decisions;
    // Slot i's primary slot when slot i is a speculative backup; kPrimary
    // for ordinary cohort slots (DESIGN.md §16).
    std::vector<size_t> backup_of;

    void Release() {
      observations = decltype(observations)();
      techniques = decltype(techniques)();
      faults = decltype(faults)();
      outcomes = decltype(outcomes)();
      completed_idx = decltype(completed_idx)();
      contributions = decltype(contributions)();
      edge_decisions = decltype(edge_decisions)();
      backup_of = decltype(backup_of)();
    }
  };
  RoundScratch scratch_;
};

}  // namespace floatfl

#endif  // SRC_FL_SYNC_ENGINE_H_
