// Interface between the FL engines and an optimization-tuning policy.
//
// A TuningPolicy decides, per selected client and round, which acceleration
// technique (if any) the client should apply, and receives the outcome as
// feedback. FLOAT's RLHF controller, the Section-4.4 heuristic and the
// static single-technique baselines all implement this interface, which is
// what makes FLOAT non-intrusive: engines and selectors never know which
// policy is attached.
#ifndef SRC_FL_TUNING_POLICY_H_
#define SRC_FL_TUNING_POLICY_H_

#include <cstddef>
#include <string>

#include "src/failure/checkpoint_io.h"
#include "src/opt/technique.h"

namespace floatfl {

// Global training state shared by all clients (Table 1, "Global Parameters").
struct GlobalObservation {
  size_t batch_size = 20;
  size_t epochs = 5;
  size_t participants = 30;
};

// Per-client runtime state (Table 1, "Runtime Variance" + "Human Feedback").
struct ClientObservation {
  double cpu_avail = 1.0;      // fraction of CPU available to FL
  double mem_avail = 1.0;      // fraction of memory available to FL
  double net_avail = 1.0;      // fraction of network available to FL
  double deadline_diff = 0.0;  // last overshoot as a fraction of the deadline
};

class TuningPolicy {
 public:
  virtual ~TuningPolicy() = default;

  virtual TechniqueKind Decide(size_t client_id, const ClientObservation& client,
                               const GlobalObservation& global) = 0;

  // Outcome feedback after the round: whether the client participated
  // successfully and the accuracy improvement attributable to the round.
  virtual void Report(size_t client_id, const ClientObservation& client,
                      const GlobalObservation& global, TechniqueKind technique, bool participated,
                      double accuracy_improvement) = 0;

  virtual std::string Name() const = 0;

  // Checkpoint/resume of the policy's mutable state. Stateless policies keep
  // the no-op defaults; learning policies serialize their learned state so a
  // resumed run replays the exact decision sequence.
  virtual void SaveState(CheckpointWriter& w) const { (void)w; }
  virtual void LoadState(CheckpointReader& r) { (void)r; }
};

// Always applies one fixed technique — the "static optimizations" of
// Section 4.3 / Figure 5.
class StaticPolicy final : public TuningPolicy {
 public:
  explicit StaticPolicy(TechniqueKind kind) : kind_(kind) {}

  TechniqueKind Decide(size_t, const ClientObservation&, const GlobalObservation&) override {
    return kind_;
  }
  void Report(size_t, const ClientObservation&, const GlobalObservation&, TechniqueKind, bool,
              double) override {}
  std::string Name() const override { return "static:" + ToString(kind_); }

 private:
  TechniqueKind kind_;
};

}  // namespace floatfl

#endif  // SRC_FL_TUNING_POLICY_H_
