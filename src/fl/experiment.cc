#include "src/fl/experiment.h"

#include "src/agg/aggregator.h"
#include "src/common/check.h"

namespace floatfl {

void ValidateExperimentConfig(const ExperimentConfig& config) {
  FLOATFL_CHECK_MSG(config.num_clients > 0, "num_clients must be positive");
  // clients_per_round may exceed num_clients: selectors clamp to the
  // population, matching the tolerant behavior the robustness suite pins.
  FLOATFL_CHECK_MSG(config.clients_per_round > 0, "clients_per_round must be positive");
  FLOATFL_CHECK_MSG(config.rounds > 0, "rounds must be positive");
  FLOATFL_CHECK_MSG(config.epochs > 0, "epochs must be positive");
  FLOATFL_CHECK_MSG(config.batch_size > 0, "batch_size must be positive");
  FLOATFL_CHECK_MSG(config.async_concurrency > 0, "async_concurrency must be positive");
  FLOATFL_CHECK_MSG(config.async_buffer > 0, "async_buffer must be positive");
  FLOATFL_CHECK_MSG(config.async_buffer <= config.async_concurrency,
                    "async_buffer cannot exceed async_concurrency");
  FLOATFL_CHECK_MSG(config.faults.overcommit >= 1.0, "faults.overcommit must be >= 1.0");
  FLOATFL_CHECK_MSG(config.faults.reject_norm_threshold > 0.0,
                    "faults.reject_norm_threshold must be positive");
  FLOATFL_CHECK_MSG(
      config.faults.byzantine_fraction >= 0.0 && config.faults.byzantine_fraction <= 1.0,
      "faults.byzantine_fraction must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.faults.byzantine_scale >= 0.0,
                    "faults.byzantine_scale must be non-negative");
  FLOATFL_CHECK_MSG(
      config.faults.chunk_loss_prob >= 0.0 && config.faults.chunk_loss_prob < 1.0,
      "faults.chunk_loss_prob must be in [0, 1)");
  FLOATFL_CHECK_MSG(
      config.faults.link_blackout_prob >= 0.0 && config.faults.link_blackout_prob < 1.0,
      "faults.link_blackout_prob must be in [0, 1)");
  FLOATFL_CHECK_MSG(config.faults.transport_chunk_mb > 0.0,
                    "faults.transport_chunk_mb must be positive");
  FLOATFL_CHECK_MSG(config.adaptive_deadline.min_factor > 0.0 &&
                        config.adaptive_deadline.min_factor <= config.adaptive_deadline.max_factor,
                    "adaptive_deadline factors must satisfy 0 < min_factor <= max_factor");
  FLOATFL_CHECK_MSG(config.adaptive_deadline.headroom > 0.0,
                    "adaptive_deadline.headroom must be positive");
  FLOATFL_CHECK_MSG(
      config.faults.duplicate_prob >= 0.0 && config.faults.duplicate_prob <= 1.0,
      "faults.duplicate_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.faults.replay_prob >= 0.0 && config.faults.replay_prob <= 1.0,
                    "faults.replay_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.faults.reorder_prob >= 0.0 && config.faults.reorder_prob <= 1.0,
                    "faults.reorder_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.faults.stampede_prob >= 0.0 && config.faults.stampede_prob <= 1.0,
                    "faults.stampede_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.faults.stampede_prob == 0.0 || config.faults.stampede_factor > 0,
                    "faults.stampede_factor must be positive when stampedes can fire");
  ValidateAggregatorConfig(config.aggregator);
  ValidateGuardConfig(config.guard);
  ValidateTopologyConfig(config.topology);
  ValidateAdmissionConfig(config.admission);
  ValidateSalvageConfig(config.salvage);
}

}  // namespace floatfl
