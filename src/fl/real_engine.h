// Real-training federated learning engine.
//
// The trace-driven engines replace DNN training with an analytic convergence
// model for paper-scale runs; this engine is the complementary ground-truth
// path: clients hold materialized synthetic shards, train real MLPs with
// SGD, apply the *actual* tensor-level optimizations (uniform affine
// quantization, magnitude pruning with sparse encoding, partial training via
// frozen layers, lossless RLE compression) to their uploads, and the server
// aggregates real weights with FedAvg. It demonstrates end to end that
// FLOAT's accelerations are real code with measurable accuracy/byte
// trade-offs, not just cost multipliers.
#ifndef SRC_FL_REAL_ENGINE_H_
#define SRC_FL_REAL_ENGINE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "src/admission/admission_config.h"
#include "src/admission/admission_controller.h"
#include "src/admission/update_log.h"
#include "src/agg/aggregator.h"
#include "src/agg/aggregator_config.h"
#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/failure/checkpoint_io.h"
#include "src/failure/edge_fault_injector.h"
#include "src/failure/fault_injector.h"
#include "src/failure/overload_injector.h"
#include "src/fl/tuning_policy.h"
#include "src/guard/guard_config.h"
#include "src/guard/training_guard.h"
#include "src/metrics/admission_tracker.h"
#include "src/metrics/aggregation_tracker.h"
#include "src/metrics/recovery_tracker.h"
#include "src/metrics/salvage_tracker.h"
#include "src/metrics/topology_tracker.h"
#include "src/metrics/transport_tracker.h"
#include "src/net/transport.h"
#include "src/nn/mlp.h"
#include "src/nn/optimizer.h"
#include "src/opt/technique.h"
#include "src/salvage/salvage_config.h"
#include "src/sim/thread_pool.h"
#include "src/topology/aggregation_tree.h"

namespace floatfl {

struct RealFlConfig {
  size_t num_clients = 20;
  size_t clients_per_round = 5;
  size_t num_classes = 5;
  size_t input_dim = 16;
  double class_separation = 2.5;
  double alpha = 0.3;              // Dirichlet non-IID-ness of the shards
  std::vector<size_t> hidden_dims = {32};
  SgdConfig sgd;
  size_t test_samples_per_class = 40;
  uint64_t seed = 1;
  // Worker threads for per-client local training. 0 = hardware_concurrency();
  // 1 = fully sequential. Results are bit-for-bit identical for every value:
  // each client trains on its own (round, client_id)-keyed RNG stream and
  // updates aggregate in selection order.
  size_t num_threads = 0;
  // Reuse per-round scratch vectors across rounds (see
  // ExperimentConfig::pool_round_scratch). Bit-invisible; bench-measurable.
  bool pool_round_scratch = true;
  // Fault injection (DESIGN.md §8). Crashes drop the client's update on the
  // floor; corruption poisons the uploaded tensor (NaN / Inf / exploding
  // norm), which the server-side validation quarantines. The real engine has
  // no wall clock, so blackout windows are interpreted in round units.
  FaultConfig faults;
  // Server-side aggregation rule (DESIGN.md §9). Default = plain weighted
  // FedAvg, bit-identical to the historical behavior.
  AggregatorConfig aggregator;
  // Self-healing guard (DESIGN.md §11). Default disabled = strict no-op.
  GuardConfig guard;
  // Hierarchical aggregation tree (DESIGN.md §13). Default (num_edges == 0)
  // keeps the flat star pipeline bit-for-bit. The engine has no wall clock,
  // so the sync-only knobs (edge_overcommit, edge_adaptive_deadline) are
  // ignored here; everything else — edge faults, failover, Byzantine edges,
  // the lossy inter-tier link, the per-edge aggregation rule — applies to
  // real parameter-space partials.
  TopologyConfig topology;
  // Server-ingestion admission layer (DESIGN.md §15). Default off: strict
  // byte-for-byte no-op. The async-only bounded-staleness knob is ignored
  // here (the real engine is synchronous).
  AdmissionConfig admission;
  // Graceful degradation (DESIGN.md §16). Default off: strict byte-for-byte
  // no-op. With salvage on, a crash-faulted client trains up to its drawn
  // interruption point (real SGD steps, capped via SgdConfig::max_steps) and
  // the server aggregates the partial at step-fraction weight; a timed-out
  // upload is salvaged as a prefix patch over the acked byte fraction.
  // Speculative re-execution is refused: the engine has no wall clock, so
  // there is no deadline race for a backup to win.
  SalvageConfig salvage;
};

// Per-round measurements of the real pipeline.
struct RealRoundStats {
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  size_t participants = 0;
  // Mean serialized upload size per participant, bytes (after the applied
  // optimization: quantized codes, sparse encoding, or compressed blob).
  double mean_upload_bytes = 0.0;
  // Mean max-abs reconstruction error the optimization injected into the
  // aggregated updates (0 for exact techniques).
  double mean_update_error = 0.0;
  // Injected-failure accounting: clients that crashed mid-round and updates
  // quarantined by the server's finite/norm validation.
  size_t crashed = 0;
  size_t rejected_updates = 0;
  // Attack-vs-defense accounting: selected clients that submitted a crafted
  // Byzantine update, and what the configured aggregator excluded/limited.
  size_t byzantine_selected = 0;
  size_t updates_clipped = 0;
  size_t krum_rejections = 0;
  size_t updates_trimmed = 0;
  // Lossy-transport accounting (DESIGN.md §10): uploads whose retries were
  // exhausted (the trained update never reached the server) and the wasted /
  // salvaged wire bytes behind the ones that did. All zero when the
  // transport is disabled.
  size_t transfer_timeouts = 0;
  double retransmitted_mb = 0.0;
  double salvaged_mb = 0.0;
  // True when the guard's watchdog fired and the round ended by restoring
  // the last known good model (test metrics reflect the restored state).
  bool rolled_back = false;
  // Hierarchical-topology accounting (DESIGN.md §13); all zero on the flat
  // star topology.
  size_t orphaned = 0;            // selected clients with no live edge
  size_t reparented = 0;          // selected clients served by a foster edge
  size_t partials_lost = 0;       // edge partials lost on the inter-tier link
  size_t tampered_partials = 0;   // partials a Byzantine edge tampered with
  size_t tampered_rejections = 0;  // partials the root's validation rejected
  // Server-ingestion accounting (DESIGN.md §15); all zero with the admission
  // layer off and no overload faults. redundant_upload_mb is the wire volume
  // of duplicate/replay deliveries the server fully re-processed this round
  // (zero when the admission gate turned them away at the doorstep).
  size_t admitted = 0;
  size_t deduplicated = 0;
  size_t shed = 0;
  size_t rate_limited = 0;
  size_t replay_rejected = 0;
  size_t peak_queue_depth = 0;
  double redundant_upload_mb = 0.0;
  // Graceful-degradation accounting (DESIGN.md §16); all zero with salvage
  // off. A salvaged client still counts in crashed / transfer_timeouts (it
  // is a dropout for the guard and the policy), but its partial update
  // re-entered aggregation at reduced weight.
  size_t partials_salvaged = 0;
  size_t partials_below_min = 0;
  size_t partials_rejected = 0;
  uint64_t salvaged_steps = 0;
};

class RealFlEngine {
 public:
  explicit RealFlEngine(const RealFlConfig& config);

  // Runs one round; `choose_technique(client_id)` picks the upload
  // optimization per client (use a lambda returning a constant for static
  // baselines). Returns post-aggregation test metrics.
  RealRoundStats RunRound(const std::function<TechniqueKind(size_t)>& choose_technique);

  // Convenience: same technique for every client.
  RealRoundStats RunRound(TechniqueKind technique);

  // Attaches a tuning policy (not owned; may be null to detach). The policy
  // decides each selected client's technique in RunRoundWithPolicy and
  // receives per-client Report feedback — participated=false with the real
  // dropout reason semantics (crash, blackout, lost transfer, quarantined
  // update) and an accuracy credit derived from the round's test-accuracy
  // delta. The real engine has no trace-driven observations, so clients are
  // presented to the policy with a neutral ClientObservation.
  void AttachPolicy(TuningPolicy* policy) { policy_ = policy; }
  RealRoundStats RunRoundWithPolicy();

  double EvaluateAccuracy();
  double EvaluateLoss();

  size_t NumClients() const { return shards_.size(); }
  const Mlp& global_model() const { return *global_; }
  const RealFlConfig& config() const { return config_; }
  // Serialized fp32 upload size, for compression-ratio comparisons.
  size_t DenseUpdateBytes() const;
  size_t RoundsRun() const { return rounds_run_; }
  const AggregationTracker& aggregation_tracker() const { return agg_tracker_; }
  const TransportTracker& transport_tracker() const { return transport_tracker_; }
  const TrainingGuard& guard() const { return guard_; }
  const EdgeFaultInjector& edge_injector() const { return edge_injector_; }
  const AggregationTree& tree() const { return tree_; }
  const TopologyTracker& topology_tracker() const { return topo_tracker_; }
  // Cumulative server-ingestion accounting (DESIGN.md §15).
  const AdmissionTracker& admission_tracker() const { return admission_tracker_; }
  // Crash-recovery accounting (DESIGN.md §14); recorded by the RunSupervisor
  // and serialized with the engine so totals survive process kills.
  RecoveryTracker& recovery_tracker() { return recovery_tracker_; }
  const RecoveryTracker& recovery_tracker() const { return recovery_tracker_; }
  // Graceful-degradation accounting (DESIGN.md §16).
  const SalvageTracker& salvage_tracker() const { return salvage_tracker_; }

  // Checkpoint/resume: the datasets and model topology are rebuilt
  // deterministically from config; only the mutable training state (RNGs,
  // round counter, global weights, flaky chains) is serialized.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  // Applies the technique to a trained parameter vector; returns the bytes
  // a real upload would ship and the max-abs error injected.
  struct ProcessedUpdate {
    std::vector<float> params;
    size_t upload_bytes = 0;
    double max_error = 0.0;
  };
  ProcessedUpdate ProcessUpload(std::vector<float> params, TechniqueKind technique) const;

  size_t FrozenLayersFor(TechniqueKind technique) const;

  // Shared round body. `report` (may be empty) receives per-client feedback
  // after aggregation: (client_id, technique, participated, accuracy_credit).
  RealRoundStats RunRoundImpl(
      const std::function<TechniqueKind(size_t)>& choose_technique,
      const std::function<void(size_t, TechniqueKind, bool, double)>& report);

  // Pooled per-round scratch (DESIGN.md §12): reset at the top of every
  // RunRoundImpl, reused across rounds when config_.pool_round_scratch.
  // Contents never outlive one round, so pooling is bit-invisible; released
  // each round when the toggle is off so the perf harness can measure both.
  struct RoundScratch {
    std::vector<TechniqueKind> techniques;
    std::vector<size_t> frozen_layers;
    std::vector<FaultDecision> faults;
    std::vector<ProcessedUpdate> processed;
    std::vector<uint8_t> delivered;
    std::vector<TransferResult> transfers;
    std::vector<std::vector<float>> updates;
    std::vector<double> weights;
    std::vector<uint8_t> participated;
    std::vector<DropoutReason> reasons;
    std::vector<EdgeFaultDecision> edge_decisions;
    // Per-slot interruption progress (DESIGN.md §16): the step-quantized
    // fraction of local training a crash-faulted client finished before its
    // drawn interruption point, and the matching whole-step count. Zero for
    // healthy clients and with salvage off.
    std::vector<double> salvage_fractions;
    std::vector<size_t> salvage_steps;

    void Release() {
      techniques = decltype(techniques)();
      frozen_layers = decltype(frozen_layers)();
      faults = decltype(faults)();
      processed = decltype(processed)();
      delivered = decltype(delivered)();
      transfers = decltype(transfers)();
      updates = decltype(updates)();
      weights = decltype(weights)();
      participated = decltype(participated)();
      reasons = decltype(reasons)();
      edge_decisions = decltype(edge_decisions)();
      salvage_fractions = decltype(salvage_fractions)();
      salvage_steps = decltype(salvage_steps)();
    }
  };

  RealFlConfig config_;
  TuningPolicy* policy_ = nullptr;
  FaultInjector injector_;
  std::unique_ptr<Aggregator> aggregator_;
  AggregationTracker agg_tracker_;
  // Bandwidth-free lossy delivery for real uploads (Transport::TryDeliver);
  // disabled by default.
  Transport transport_;
  TransportTracker transport_tracker_;
  // Self-healing guard (DESIGN.md §11); disabled by default.
  TrainingGuard guard_;
  // Hierarchical aggregation tree (DESIGN.md §13); disabled (star pipeline,
  // byte-identical engine) by default. One edge aggregator instance folds
  // every edge's cohort in edge order, so its internal totals accumulate
  // deterministically across edges and rounds.
  EdgeFaultInjector edge_injector_;
  AggregationTree tree_;
  TopologyTracker topo_tracker_;
  Transport edge_transport_;
  std::unique_ptr<Aggregator> edge_aggregator_;
  // Server-ingestion admission layer (DESIGN.md §15); disabled by default.
  OverloadInjector overload_;
  AdmissionController admission_;
  AdmissionTracker admission_tracker_;
  UpdateLog update_log_;
  RecoveryTracker recovery_tracker_;
  // Partial-work salvage accounting (DESIGN.md §16); no-op by default.
  SalvageTracker salvage_tracker_;
  Rng rng_;
  // Root of the per-(round, client) training streams; never advanced, only
  // ForkKeyed — so the streams are independent of simulation order.
  Rng client_stream_root_;
  // Work pool for per-client local training; null when num_threads
  // resolves to 1 (fully sequential path).
  std::unique_ptr<ThreadPool> pool_;
  size_t rounds_run_ = 0;
  std::unique_ptr<SyntheticTaskData> task_;
  std::vector<ClientShard> shards_;
  std::vector<Tensor> client_inputs_;
  std::vector<std::vector<int>> client_labels_;
  std::unique_ptr<Mlp> global_;
  Tensor test_inputs_;
  std::vector<int> test_labels_;
  std::vector<size_t> model_dims_;
  RoundScratch scratch_;
};

}  // namespace floatfl

#endif  // SRC_FL_REAL_ENGINE_H_
