#include "src/fl/vfl_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/data/synthetic.h"
#include "src/failure/checkpoint_util.h"
#include "src/fl/experiment.h"
#include "src/opt/quantize.h"

namespace floatfl {
namespace {

// Splits a full-feature sample matrix into per-party column slices.
std::vector<Tensor> SliceByParty(const Tensor& full, size_t parties, size_t per_party) {
  std::vector<Tensor> slices;
  slices.reserve(parties);
  for (size_t p = 0; p < parties; ++p) {
    Tensor slice(full.rows(), per_party);
    for (size_t r = 0; r < full.rows(); ++r) {
      for (size_t c = 0; c < per_party; ++c) {
        slice.At(r, c) = full.At(r, p * per_party + c);
      }
    }
    slices.push_back(std::move(slice));
  }
  return slices;
}

// A party is silent for the epoch: unreachable (blackout) or its process
// died (crash). Its embedding slice stays zero and its encoder skips the
// epoch.
bool PartySilent(const FaultDecision& fault) { return fault.crash || fault.blackout; }

bool AllFinite(const std::vector<float>& v) {
  for (float x : v) {
    if (!std::isfinite(x)) {
      return false;
    }
  }
  return true;
}

void SaveLayer(CheckpointWriter& w, const DenseLayer& layer) {
  w.F32Vec(layer.weights().flat());
  w.F32Vec(layer.bias().flat());
}

void LoadLayer(CheckpointReader& r, DenseLayer& layer) {
  const std::vector<float> weights = r.F32Vec();
  const std::vector<float> bias = r.F32Vec();
  FLOATFL_CHECK_MSG((weights.size() == layer.weights().flat().size() &&
                     bias.size() == layer.bias().flat().size()) ||
                        !r.ok(),
                    "checkpoint VFL layer shape mismatch");
  if (r.ok()) {
    layer.weights().flat() = weights;
    layer.bias().flat() = bias;
  }
}

}  // namespace

VflEngine::VflEngine(const VflConfig& config)
    : config_(config),
      injector_(config.faults, config.seed, config.num_parties),
      transport_(config.faults, config.seed),
      rng_(config.seed) {
  FLOATFL_CHECK(config.num_parties >= 2);
  FLOATFL_CHECK(config.features_per_party > 0);
  ValidateGuardConfig(config_.guard);
  guard_ = TrainingGuard(config_.guard);

  const size_t total_features = config.num_parties * config.features_per_party;
  SyntheticTaskData task(config.num_classes, total_features, config.class_separation, rng_);

  Tensor train_full;
  task.MakeTestSet(std::max<size_t>(1, config.train_samples / config.num_classes), rng_,
                   &train_full, &train_labels_);
  Tensor test_full;
  task.MakeTestSet(std::max<size_t>(1, config.test_samples / config.num_classes), rng_,
                   &test_full, &test_labels_);
  train_features_ = SliceByParty(train_full, config.num_parties, config.features_per_party);
  test_features_ = SliceByParty(test_full, config.num_parties, config.features_per_party);

  bottoms_.reserve(config.num_parties);
  for (size_t p = 0; p < config.num_parties; ++p) {
    bottoms_.emplace_back(config.features_per_party, config.embedding_dim, /*relu=*/true, rng_);
  }
  top_ = std::make_unique<DenseLayer>(config.num_parties * config.embedding_dim,
                                      config.num_classes, /*relu=*/false, rng_);
}

Tensor VflEngine::ForwardParties(const std::vector<Tensor>& inputs, size_t start, size_t count,
                                 TechniqueKind technique, double* traffic_bytes,
                                 const std::vector<FaultDecision>* faults) {
  const size_t embed = config_.embedding_dim;
  Tensor concat(count, bottoms_.size() * embed);
  const int bits = QuantizationBits(technique);
  for (size_t p = 0; p < bottoms_.size(); ++p) {
    if (faults != nullptr && PartySilent((*faults)[p])) {
      // Nothing arrives from a silent party: the server trains on a
      // zero-filled slice and no traffic is charged.
      continue;
    }
    Tensor slice(count, inputs[p].cols());
    for (size_t r = 0; r < count; ++r) {
      for (size_t c = 0; c < inputs[p].cols(); ++c) {
        slice.At(r, c) = inputs[p].At(start + r, c);
      }
    }
    Tensor embedding = bottoms_[p].Forward(slice);
    if (bits < 32) {
      // Party quantizes its embedding before sending it to the server.
      if (traffic_bytes != nullptr) {
        *traffic_bytes += static_cast<double>(Quantize(embedding.flat(), bits).ByteSize());
      }
      QuantizeDequantize(embedding.flat(), bits);
    } else if (traffic_bytes != nullptr) {
      *traffic_bytes += static_cast<double>(embedding.size() * sizeof(float));
    }
    if (faults != nullptr && (*faults)[p].corrupt) {
      // The corrupted upload still ships (and was charged above), but what
      // arrives is garbage.
      std::fill(embedding.flat().begin(), embedding.flat().end(),
                std::numeric_limits<float>::quiet_NaN());
    }
    if (faults != nullptr && !AllFinite(embedding.flat())) {
      // Server-side validation: a non-finite embedding is quarantined — the
      // slice stays zero, exactly as if the party were silent.
      continue;
    }
    for (size_t r = 0; r < count; ++r) {
      for (size_t c = 0; c < embed; ++c) {
        concat.At(r, p * embed + c) = embedding.At(r, c);
      }
    }
  }
  return concat;
}

VflRoundStats VflEngine::TrainEpoch(TechniqueKind comm_technique) {
  VflRoundStats stats;
  const size_t n = train_labels_.size();
  const size_t embed = config_.embedding_dim;
  const size_t epoch = epochs_run_++;
  guard_.BeginRound(epoch);
  // The guard may veto the requested communication optimization (safe mode
  // or a quarantined technique) and run the epoch unoptimized.
  comm_technique = guard_.Filter(comm_technique, epoch);
  const int bits = QuantizationBits(comm_technique);
  double loss_sum = 0.0;
  size_t batches = 0;
  // Per-party participation verdicts for the guard's failure attribution.
  std::vector<DropoutReason>& reasons = scratch_.reasons;
  reasons.assign(bottoms_.size(), DropoutReason::kNone);

  // Per-(epoch, party) fault draws, epoch standing in for both the round and
  // the wall clock (as in the real engine). A faulted party is out for the
  // whole epoch: silent (crash/blackout) or quarantined (corruption).
  std::vector<FaultDecision>& faults = scratch_.faults;
  std::vector<uint8_t>& party_out = scratch_.party_out;
  faults.clear();
  party_out.clear();
  size_t active_parties = bottoms_.size();
  if (injector_.enabled()) {
    injector_.BeginRound(epoch);
    faults.assign(bottoms_.size(), FaultDecision());
    party_out.assign(bottoms_.size(), 0);
    for (size_t p = 0; p < bottoms_.size(); ++p) {
      faults[p] = injector_.Decide(epoch, p, static_cast<double>(epoch));
      if (faults[p].crash || faults[p].blackout) {
        party_out[p] = 1;
        --active_parties;
        ++stats.parties_crashed;
        reasons[p] = faults[p].crash ? DropoutReason::kCrashed : DropoutReason::kUnavailable;
      } else if (faults[p].corrupt) {
        party_out[p] = 1;
        --active_parties;
        ++stats.parties_quarantined;
        reasons[p] = DropoutReason::kCorrupted;
      }
    }
  }
  if (transport_.enabled()) {
    // Lossy delivery of each surviving party's epoch-worth of embedding
    // uploads (fp32 estimate; the engine has no wall clock, so TryDeliver
    // charges bytes and retries, not time). A party whose uplink exhausts
    // its retries is silent for the epoch, exactly like a crash — modeled by
    // synthesizing a blackout decision so the forward pass zero-fills it.
    if (faults.empty()) {
      faults.assign(bottoms_.size(), FaultDecision());
      party_out.assign(bottoms_.size(), 0);
    }
    const double payload_mb = static_cast<double>(config_.train_samples) *
                              static_cast<double>(config_.embedding_dim) * sizeof(float) /
                              (1024.0 * 1024.0);
    for (size_t p = 0; p < bottoms_.size(); ++p) {
      if (party_out[p]) {
        continue;  // already silent/quarantined; nothing ships
      }
      const TransferResult transfer = transport_.TryDeliver(
          epoch, p, payload_mb, TransferLeg::kUpload, config_.faults.resumable_uploads);
      transport_tracker_.Record(transfer.attempts, transfer.wire_mb, transfer.retransmitted_mb,
                                transfer.salvaged_mb, transfer.progress_mb, transfer.backoff_s,
                                transfer.timed_out);
      stats.retransmitted_mb += transfer.retransmitted_mb;
      stats.salvaged_mb += transfer.salvaged_mb;
      if (!transfer.delivered) {
        faults[p].blackout = true;
        party_out[p] = 1;
        --active_parties;
        ++stats.parties_timed_out;
        reasons[p] = DropoutReason::kTransferTimedOut;
      }
    }
  }
  const std::vector<FaultDecision>* fault_view = faults.empty() ? nullptr : &faults;
  // The server only sends gradient slices to parties still in the epoch, so
  // the downlink leg is charged pro-rata (1.0 when nobody is out).
  const double downlink_fraction =
      static_cast<double>(active_parties) / static_cast<double>(bottoms_.size());

  for (size_t start = 0; start < n; start += config_.batch_size) {
    const size_t count = std::min(config_.batch_size, n - start);
    const Tensor concat = ForwardParties(train_features_, start, count, comm_technique,
                                         &stats.traffic_bytes, fault_view);
    const Tensor logits = top_->Forward(concat);
    std::vector<int>& batch_labels = scratch_.batch_labels;
    batch_labels.assign(train_labels_.begin() + static_cast<ptrdiff_t>(start),
                        train_labels_.begin() + static_cast<ptrdiff_t>(start + count));
    Tensor probs;
    loss_sum += SoftmaxXent::Loss(logits, batch_labels, &probs);
    ++batches;

    // Server backprop to the concatenated embedding, then split the gradient
    // back to parties (the downlink leg, also quantized).
    Tensor grad_concat = top_->Backward(SoftmaxXent::Gradient(probs, batch_labels));
    top_->Step(config_.learning_rate, /*frozen=*/false);
    if (bits < 32) {
      stats.traffic_bytes +=
          downlink_fraction * static_cast<double>(Quantize(grad_concat.flat(), bits).ByteSize());
      QuantizeDequantize(grad_concat.flat(), bits);
    } else {
      stats.traffic_bytes +=
          downlink_fraction * static_cast<double>(grad_concat.size() * sizeof(float));
    }
    for (size_t p = 0; p < bottoms_.size(); ++p) {
      if (!party_out.empty() && party_out[p]) {
        // The server sends no gradient to a silent or quarantined party; its
        // encoder does not train this epoch.
        continue;
      }
      // Reused across parties and batches; every (r, c) element is written
      // below before use, so the reshape-on-demand reuse is bit-invisible.
      Tensor& grad_p = scratch_.grad_p;
      if (grad_p.rows() != count || grad_p.cols() != embed) {
        grad_p = Tensor(count, embed);
      }
      for (size_t r = 0; r < count; ++r) {
        for (size_t c = 0; c < embed; ++c) {
          grad_p.At(r, c) = grad_concat.At(r, p * embed + c);
        }
      }
      bottoms_[p].Backward(grad_p);
      bottoms_[p].Step(config_.learning_rate, /*frozen=*/false);
    }
  }

  stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  stats.test_accuracy = EvaluateAccuracy();

  // Failure attribution (party order) and the self-healing health check
  // (DESIGN.md §11): snapshot the split model on improvement, restore the
  // last known good bottoms + top when the epoch diverges.
  for (size_t p = 0; p < bottoms_.size(); ++p) {
    guard_.Observe(comm_technique, reasons[p] == DropoutReason::kNone, reasons[p], epoch);
  }
  {
    HealthSignal health;
    health.metric = stats.test_accuracy;
    health.loss = stats.train_loss;
    const bool rolled_back = guard_.EndRound(
        epoch, health,
        [this](CheckpointWriter& w) {
          for (const auto& bottom : bottoms_) {
            SaveLayer(w, bottom);
          }
          SaveLayer(w, *top_);
        },
        [this](CheckpointReader& r) {
          for (auto& bottom : bottoms_) {
            LoadLayer(r, bottom);
          }
          LoadLayer(r, *top_);
        });
    if (rolled_back) {
      stats.rolled_back = true;
      stats.test_accuracy = EvaluateAccuracy();
    }
  }
  if (!config_.pool_round_scratch) {
    scratch_.Release();
  }
  return stats;
}

double VflEngine::EvaluateAccuracy() {
  const Tensor concat = ForwardParties(test_features_, 0, test_labels_.size(),
                                       TechniqueKind::kNone, nullptr);
  const Tensor logits = top_->Forward(concat);
  return SoftmaxXent::Accuracy(logits, test_labels_);
}

void VflEngine::SaveState(CheckpointWriter& w) const {
  w.Size(epochs_run_);
  SaveRng(w, rng_);
  w.Size(bottoms_.size());
  for (const auto& bottom : bottoms_) {
    SaveLayer(w, bottom);
  }
  SaveLayer(w, *top_);
  injector_.SaveState(w);
  transport_tracker_.SaveState(w);
  guard_.SaveState(w);
  recovery_tracker_.SaveState(w);
}

void VflEngine::LoadState(CheckpointReader& r) {
  epochs_run_ = r.Size();
  LoadRng(r, rng_);
  const size_t parties = r.Size();
  FLOATFL_CHECK_MSG(parties == bottoms_.size() || !r.ok(),
                    "checkpoint VFL party count mismatch");
  if (parties != bottoms_.size()) {
    return;
  }
  for (auto& bottom : bottoms_) {
    LoadLayer(r, bottom);
  }
  LoadLayer(r, *top_);
  injector_.LoadState(r);
  transport_tracker_.LoadState(r);
  guard_.LoadState(r);
  recovery_tracker_.LoadState(r);
}

}  // namespace floatfl
