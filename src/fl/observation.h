// Builds the agent-facing client observation (Table 1 "Runtime Variance").
//
// Following Table 1, S_CPU / S_MEM / S_Network are the *fractions* of each
// resource available to FL training (what on-device interference leaves
// over). A fraction alone does not reveal absolute adequacy — a budget
// phone with 80 % of its CPU free still has less capacity than a flagship
// at 40 % — which is exactly the gap the deadline-difference human feedback
// closes (RQ4): chronic stragglers reveal themselves through their typical
// deadline overshoot. The Figure-11 ablation hinges on this split.
// ObserveClientNormalized is provided as an alternative encoding that folds
// the device's capability relative to the population median into the
// fractions (used by ablation studies).
#ifndef SRC_FL_OBSERVATION_H_
#define SRC_FL_OBSERVATION_H_

#include <vector>

#include "src/fl/client.h"
#include "src/fl/experiment.h"
#include "src/fl/tuning_policy.h"

namespace floatfl {

struct PopulationReference {
  double gflops = 1.0;
  double mbps = 1.0;
  double memory_gb = 1.0;
};

// Population medians of base device capability (computed once per run).
PopulationReference ComputePopulationReference(const std::vector<Client>& clients);

// Snapshot of one client's Table-1 state at time `now_s`: raw availability
// fractions plus its typical deadline difference (the human-feedback
// signal).
ClientObservation ObserveClient(Client& client, double now_s, const PopulationReference& ref);

// Alternative encoding: interference-adjusted capacity normalized by the
// population median capability, clamped to [0, 1].
ClientObservation ObserveClientNormalized(Client& client, double now_s,
                                          const PopulationReference& ref);

// Tallies one dropout reason into the breakdown (kNone is a no-op). The one
// place the reason -> counter mapping lives; every engine routes through it.
void CountDropout(DropoutReason reason, DropoutBreakdown& breakdown);

}  // namespace floatfl

#endif  // SRC_FL_OBSERVATION_H_
