#include "src/fl/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/fl/client.h"
#include "src/fl/experiment.h"

namespace floatfl {

RoundCosts ComputeRoundCosts(const RoundCostInputs& in) {
  FLOATFL_CHECK(in.model != nullptr && in.dataset != nullptr);
  FLOATFL_CHECK(in.device_gflops > 0.0 && in.bandwidth_mbps > 0.0);
  const CostEffect& effect = EffectOf(in.technique);
  RoundCosts out;

  // --- Computation: epochs x samples x per-sample training FLOPs, scaled by
  // the technique's compute multiplier, executed at the CPU share left over
  // by co-located apps.
  const double gflop_total = static_cast<double>(in.epochs) *
                             static_cast<double>(in.local_samples) *
                             in.model->train_gflops_per_sample * in.dataset->sample_cost_scale *
                             effect.compute_mult;
  const double effective_gflops = in.device_gflops * std::max(0.02, in.availability.cpu);
  out.train_time_s = gflop_total / effective_gflops;

  // --- Communication: full model down, optimized update up.
  out.traffic_mb = in.model->weight_mb * (1.0 + effect.comm_mult);
  const double effective_mbps = in.bandwidth_mbps * std::max(0.02, in.availability.network);
  out.comm_time_s = out.traffic_mb * 8.0 / effective_mbps;

  // --- Memory: two model copies (global + local) plus activations for one
  // mini-batch, reduced by the technique's memory multiplier.
  out.peak_memory_mb = (in.model->weight_mb * 2.0 +
                        in.model->activation_mb_per_sample * static_cast<double>(in.batch_size)) *
                       effect.memory_mult;
  const double available_mb = in.device_memory_gb * 1024.0 * std::max(0.02, in.availability.memory);
  out.out_of_memory = out.peak_memory_mb > available_mb;

  out.total_time_s = out.train_time_s + out.comm_time_s;
  return out;
}

size_t TotalLocalSteps(size_t local_samples, size_t epochs, size_t batch_size) {
  if (local_samples == 0 || batch_size == 0) {
    return 0;
  }
  const size_t steps_per_epoch = (local_samples + batch_size - 1) / batch_size;
  return epochs * steps_per_epoch;
}

double CompletedStepFraction(double trained_s, double train_time_s, size_t total_steps) {
  if (total_steps == 0 || train_time_s <= 0.0 || trained_s <= 0.0) {
    return 0.0;
  }
  const double time_frac = std::min(1.0, trained_s / train_time_s);
  const double steps = std::floor(time_frac * static_cast<double>(total_steps));
  return steps / static_cast<double>(total_steps);
}

namespace {

// Provisioning floor for deadline calibration: a client whose nominal link
// is (near) zero Mbps would otherwise drive an infinite comm-time estimate
// (and trip ComputeRoundCosts' positive-bandwidth contract). Matches the
// outage-regime floor in NetworkTrace.
constexpr double kMinProvisioningMbps = 0.01;

}  // namespace

double AutoDeadlineSeconds(const ExperimentConfig& config, const std::vector<Client>& clients) {
  FLOATFL_CHECK(!clients.empty());
  const ModelProfile& model = GetModelProfile(config.model);
  const DatasetSpec& dataset = GetDatasetSpec(config.dataset);
  std::vector<double> estimates;
  estimates.reserve(clients.size());
  for (const Client& client : clients) {
    RoundCostInputs inputs;
    inputs.model = &model;
    inputs.dataset = &dataset;
    inputs.local_samples = client.shard().total;
    inputs.epochs = config.epochs;
    inputs.batch_size = config.batch_size;
    inputs.technique = TechniqueKind::kNone;
    inputs.device_gflops = client.compute().BaseGflops();
    inputs.bandwidth_mbps = std::max(kMinProvisioningMbps, client.network().NominalMbps());
    inputs.device_memory_gb = client.compute().MemoryGb();
    inputs.availability = ResourceAvailability{};  // un-interfered
    estimates.push_back(ComputeRoundCosts(inputs).total_time_s);
  }
  return 2.5 * Percentile(estimates, 50.0);
}

}  // namespace floatfl
