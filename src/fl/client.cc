#include "src/fl/client.h"

#include "src/common/rng.h"
#include "src/data/dirichlet.h"

namespace floatfl {

Client::Client(size_t id, ClientShard shard, ComputeTrace compute, NetworkTrace network,
               AvailabilityTrace availability, InterferenceModel interference)
    : id_(id),
      shard_(std::move(shard)),
      compute_(std::move(compute)),
      network_(std::move(network)),
      availability_(std::move(availability)),
      interference_(std::move(interference)) {}

void Client::SaveState(CheckpointWriter& w) const {
  w.Size(times_selected);
  w.Size(times_completed);
  w.F64(last_round_duration_s);
  w.F64(last_deadline_diff);
  w.F64(observed_window_s);
  w.Size(cooldown_until_round);
  compute_.SaveState(w);
  network_.SaveState(w);
  availability_.SaveState(w);
  interference_.SaveState(w);
}

void Client::LoadState(CheckpointReader& r) {
  times_selected = r.Size();
  times_completed = r.Size();
  last_round_duration_s = r.F64();
  last_deadline_diff = r.F64();
  observed_window_s = r.F64();
  cooldown_until_round = r.Size();
  compute_.LoadState(r);
  network_.LoadState(r);
  availability_.LoadState(r);
  interference_.LoadState(r);
}

std::vector<Client> BuildPopulation(const DatasetSpec& spec, size_t num_clients, double alpha,
                                    InterferenceScenario interference, uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientShard> shards = PartitionDataset(spec, num_clients, alpha, rng);
  std::vector<Client> clients;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    const NetworkKind kind = rng.Bernoulli(0.3) ? NetworkKind::kFiveG : NetworkKind::kFourG;
    clients.emplace_back(i, std::move(shards[i]), ComputeTrace::SampleDevice(rng.NextU64()),
                         NetworkTrace(kind, rng.NextU64()), AvailabilityTrace(rng.NextU64()),
                         InterferenceModel(interference, rng.NextU64()));
  }
  return clients;
}

}  // namespace floatfl
