// Vertical Federated Learning engine (Section 7, "FLOAT for non-horizontal
// FL").
//
// K parties hold disjoint feature slices of the same samples; each party
// owns a bottom encoder (its features -> embedding) and the server owns the
// top classifier over the concatenated embeddings (the split / top-bottom
// model formulation the paper cites). Per step, parties send embeddings up
// and receive embedding gradients back — both legs can be quantized, which
// is where FLOAT's communication accelerations plug into VFL without any
// structural change, exactly the claim of Section 7.
#ifndef SRC_FL_VFL_ENGINE_H_
#define SRC_FL_VFL_ENGINE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"
#include "src/failure/fault_injector.h"
#include "src/guard/guard_config.h"
#include "src/guard/training_guard.h"
#include "src/metrics/recovery_tracker.h"
#include "src/metrics/transport_tracker.h"
#include "src/net/transport.h"
#include "src/fl/experiment.h"
#include "src/nn/layers.h"
#include "src/opt/technique.h"

namespace floatfl {

struct VflConfig {
  size_t num_parties = 3;
  size_t features_per_party = 6;
  size_t embedding_dim = 8;
  size_t num_classes = 4;
  size_t train_samples = 300;
  size_t test_samples = 200;
  double class_separation = 2.0;
  float learning_rate = 0.05f;
  size_t batch_size = 32;
  uint64_t seed = 1;
  // Reuse per-epoch scratch vectors across epochs (see
  // ExperimentConfig::pool_round_scratch). Bit-invisible; bench-measurable.
  bool pool_round_scratch = true;
  // Fault injection (DESIGN.md §8), interpreted per (epoch, party): a
  // crashed or blacked-out party is silent for the epoch (its embedding
  // slice is zero-filled and its encoder does not train); a corrupting party
  // sends non-finite embeddings, which the server's validation quarantines
  // for the epoch. The default config is a strict no-op.
  FaultConfig faults;
  // Self-healing guard (DESIGN.md §11). Default disabled = strict no-op.
  GuardConfig guard;
};

struct VflRoundStats {
  double train_loss = 0.0;
  double test_accuracy = 0.0;
  // Total embedding + gradient traffic this round, bytes (after the applied
  // communication optimization).
  double traffic_bytes = 0.0;
  // Injected-failure accounting: parties silent this epoch (crash/blackout)
  // and parties whose embeddings the server quarantined (corruption).
  size_t parties_crashed = 0;
  size_t parties_quarantined = 0;
  // Lossy-transport accounting (DESIGN.md §10): parties whose embedding
  // uplink exhausted its retries this epoch (silent, like a crash), plus the
  // wasted / salvaged wire bytes of the uplinks that went through. All zero
  // when the transport is disabled.
  size_t parties_timed_out = 0;
  double retransmitted_mb = 0.0;
  double salvaged_mb = 0.0;
  // True when the guard's watchdog fired and the epoch ended by restoring
  // the last known good split model (test_accuracy reflects the restore).
  bool rolled_back = false;
};

class VflEngine {
 public:
  explicit VflEngine(const VflConfig& config);

  // One pass over the training data. `comm_technique` optionally quantizes
  // the embedding/gradient exchange (kNone, kQuant16 or kQuant8; other
  // techniques are treated as kNone since they target horizontal updates).
  VflRoundStats TrainEpoch(TechniqueKind comm_technique);

  double EvaluateAccuracy();
  size_t NumParties() const { return bottoms_.size(); }
  const VflConfig& config() const { return config_; }
  size_t EpochsRun() const { return epochs_run_; }
  const TransportTracker& transport_tracker() const { return transport_tracker_; }
  const TrainingGuard& guard() const { return guard_; }
  // Crash-recovery accounting (DESIGN.md §14); recorded by the RunSupervisor
  // and serialized with the engine so totals survive process kills.
  RecoveryTracker& recovery_tracker() { return recovery_tracker_; }
  const RecoveryTracker& recovery_tracker() const { return recovery_tracker_; }

  // Checkpoint/resume: datasets and model topology rebuild from config; the
  // mutable training state (epoch counter, RNG, every party encoder, the top
  // classifier, the injector's chains) is serialized. The resume contract is
  // the same bit-for-bit one the horizontal engines obey.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  // Forward all parties for rows [start, start+count) of `inputs`; returns
  // the concatenated (possibly quantize-dequantized) embedding batch and
  // accumulates traffic. `faults`, when non-null, holds this epoch's
  // per-party decisions: silent parties leave their slice zeroed, corrupting
  // parties send poisoned embeddings the server zeroes after its finite
  // check.
  Tensor ForwardParties(const std::vector<Tensor>& inputs, size_t start, size_t count,
                        TechniqueKind technique, double* traffic_bytes,
                        const std::vector<FaultDecision>* faults = nullptr);

  VflConfig config_;
  FaultInjector injector_;
  // Bandwidth-free lossy delivery for the per-epoch embedding uplink
  // (Transport::TryDeliver); disabled by default.
  Transport transport_;
  TransportTracker transport_tracker_;
  // Self-healing guard (DESIGN.md §11); disabled by default.
  TrainingGuard guard_;
  RecoveryTracker recovery_tracker_;
  Rng rng_;
  size_t epochs_run_ = 0;
  std::vector<DenseLayer> bottoms_;       // one encoder per party
  std::unique_ptr<DenseLayer> top_;       // server classifier
  std::vector<Tensor> train_features_;    // per-party feature slices
  std::vector<int> train_labels_;
  std::vector<Tensor> test_features_;
  std::vector<int> test_labels_;
  // Pooled per-epoch scratch (DESIGN.md §12): reset at the top of every
  // TrainEpoch, reused across epochs when config_.pool_round_scratch.
  // Contents never outlive one epoch, so pooling is bit-invisible; released
  // each epoch when the toggle is off so the perf harness can measure both.
  struct EpochScratch {
    std::vector<DropoutReason> reasons;
    std::vector<FaultDecision> faults;
    std::vector<uint8_t> party_out;
    std::vector<int> batch_labels;
    Tensor grad_p;  // per-(batch, party) gradient slice, reshaped on demand

    void Release() {
      reasons = decltype(reasons)();
      faults = decltype(faults)();
      party_out = decltype(party_out)();
      batch_labels = decltype(batch_labels)();
      grad_p = Tensor();
    }
  };
  EpochScratch scratch_;
};

}  // namespace floatfl

#endif  // SRC_FL_VFL_ENGINE_H_
