#include "src/fl/observation.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace floatfl {

PopulationReference ComputePopulationReference(const std::vector<Client>& clients) {
  FLOATFL_CHECK(!clients.empty());
  std::vector<double> gflops;
  std::vector<double> mbps;
  std::vector<double> mem;
  gflops.reserve(clients.size());
  mbps.reserve(clients.size());
  mem.reserve(clients.size());
  for (const Client& client : clients) {
    gflops.push_back(client.compute().BaseGflops());
    mbps.push_back(client.network().NominalMbps());
    mem.push_back(client.compute().MemoryGb());
  }
  PopulationReference ref;
  ref.gflops = std::max(1e-9, Percentile(gflops, 50.0));
  ref.mbps = std::max(1e-9, Percentile(mbps, 50.0));
  ref.memory_gb = std::max(1e-9, Percentile(mem, 50.0));
  return ref;
}

ClientObservation ObserveClient(Client& client, double now_s, const PopulationReference& ref) {
  (void)ref;
  const ResourceAvailability avail = client.interference().At(now_s);
  ClientObservation obs;
  obs.cpu_avail = avail.cpu;
  obs.net_avail = avail.network;
  obs.mem_avail = avail.memory;
  obs.deadline_diff = client.last_deadline_diff;
  return obs;
}

ClientObservation ObserveClientNormalized(Client& client, double now_s,
                                          const PopulationReference& ref) {
  const ResourceAvailability avail = client.interference().At(now_s);
  ClientObservation obs;
  obs.cpu_avail =
      std::clamp(avail.cpu * client.compute().GflopsAt(now_s) / ref.gflops, 0.0, 1.0);
  obs.net_avail =
      std::clamp(avail.network * client.network().BandwidthMbpsAt(now_s) / ref.mbps, 0.0, 1.0);
  obs.mem_avail =
      std::clamp(avail.memory * client.compute().MemoryGb() / ref.memory_gb, 0.0, 1.0);
  obs.deadline_diff = client.last_deadline_diff;
  return obs;
}

void CountDropout(DropoutReason reason, DropoutBreakdown& breakdown) {
  switch (reason) {
    case DropoutReason::kUnavailable:
      ++breakdown.unavailable;
      break;
    case DropoutReason::kOutOfMemory:
      ++breakdown.out_of_memory;
      break;
    case DropoutReason::kMissedDeadline:
      ++breakdown.missed_deadline;
      break;
    case DropoutReason::kDeparted:
      ++breakdown.departed;
      break;
    case DropoutReason::kCrashed:
      ++breakdown.crashed;
      break;
    case DropoutReason::kCorrupted:
      ++breakdown.corrupted;
      break;
    case DropoutReason::kRejected:
      ++breakdown.rejected;
      break;
    case DropoutReason::kTransferTimedOut:
      ++breakdown.transfer_timed_out;
      break;
    case DropoutReason::kEdgeOrphaned:
      ++breakdown.edge_orphaned;
      break;
    case DropoutReason::kShed:
      ++breakdown.shed;
      break;
    case DropoutReason::kDuplicate:
      ++breakdown.duplicate;
      break;
    case DropoutReason::kReplayed:
      ++breakdown.replayed;
      break;
    case DropoutReason::kRateLimited:
      ++breakdown.rate_limited;
      break;
    case DropoutReason::kBackupCovered:
      ++breakdown.backup_covered;
      break;
    case DropoutReason::kBackupRedundant:
      ++breakdown.backup_redundant;
      break;
    case DropoutReason::kNone:
      break;
  }
}

}  // namespace floatfl
