// Asynchronous FL engine modeling FedBuff (Nguyen et al. [51]).
//
// Up to `async_concurrency` clients train concurrently; completed updates
// enter a buffer and every `async_buffer` updates are aggregated into a new
// model version. Slow clients keep training on stale versions; staleness
// discounts their contribution, and updates staler than the configured
// bound (AdmissionConfig::async_max_staleness, DESIGN.md §15) are
// discarded. Over-selection makes FedBuff fast in wall-clock but heavy in
// aggregate client resource spend — the trade-off of Figure 2b.
#ifndef SRC_FL_ASYNC_ENGINE_H_
#define SRC_FL_ASYNC_ENGINE_H_

#include <memory>
#include <vector>

#include "src/admission/admission_controller.h"
#include "src/admission/update_log.h"
#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"
#include "src/failure/fault_injector.h"
#include "src/failure/overload_injector.h"
#include "src/fl/client.h"
#include "src/fl/experiment.h"
#include "src/fl/observation.h"
#include "src/fl/sync_engine.h"
#include "src/fl/tuning_policy.h"
#include "src/guard/training_guard.h"
#include "src/metrics/admission_tracker.h"
#include "src/metrics/aggregation_tracker.h"
#include "src/metrics/participation_tracker.h"
#include "src/metrics/recovery_tracker.h"
#include "src/metrics/resource_accountant.h"
#include "src/metrics/salvage_tracker.h"
#include "src/metrics/transport_tracker.h"
#include "src/models/surrogate_accuracy.h"
#include "src/net/transport.h"
#include "src/sim/thread_pool.h"

namespace floatfl {

class AsyncEngine {
 public:
  // `policy` may be null. Not owned.
  AsyncEngine(const ExperimentConfig& config, TuningPolicy* policy);

  // Runs until `config.rounds` aggregations have happened.
  ExperimentResult Run();

  // Runs until `target_version` aggregations have happened (no-op when
  // already past). Exposed for checkpoint/resume tests.
  void RunUntil(size_t target_version);

  // Processes one scheduler step: launch available clients, then retire the
  // earliest finisher (or just advance time when nobody is in flight).
  void StepOnce();

  ExperimentResult Snapshot() const;

  const SurrogateAccuracyModel& accuracy_model() const { return *surrogate_; }
  // Resolved configuration (auto-calibrated deadline included).
  const ExperimentConfig& config() const { return config_; }
  size_t Version() const { return version_; }
  size_t RejectedUpdates() const { return rejected_updates_; }
  const AggregationTracker& aggregation_tracker() const { return agg_tracker_; }
  const TransportTracker& transport_tracker() const { return transport_tracker_; }
  const TrainingGuard& guard() const { return guard_; }
  // Cumulative server-ingestion accounting (DESIGN.md §15).
  const AdmissionTracker& admission_tracker() const { return admission_tracker_; }
  // Crash-recovery accounting (DESIGN.md §14); recorded by the RunSupervisor
  // and serialized with the engine so totals survive process kills.
  RecoveryTracker& recovery_tracker() { return recovery_tracker_; }
  const RecoveryTracker& recovery_tracker() const { return recovery_tracker_; }
  // Graceful-degradation accounting (DESIGN.md §16).
  const SalvageTracker& salvage_tracker() const { return salvage_tracker_; }

  // Checkpoint/resume of all mutable engine state (DESIGN.md §8).
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  struct InFlight {
    size_t client_id;
    double finish_time_s;
    size_t start_version;
    TechniqueKind technique;
    ClientRoundOutcome outcome;
    ClientObservation observation;
  };

  void LaunchClients();
  // Thread-safe for distinct clients: touches only `client` and config_.
  // `transfer_round` keys the lossy transport's per-transfer random streams:
  // the client's launch count (its `times_selected` before this launch),
  // async FL's per-client round analogue — the same key the fault injector
  // uses, so transfers stay invariant across thread counts and resumes.
  ClientRoundOutcome SimulateAsyncClient(Client& client, size_t transfer_round, double now_s,
                                         TechniqueKind technique,
                                         const FaultDecision& fault) const;

  ExperimentConfig config_;
  TuningPolicy* policy_;
  // Work pool for the launch-batch simulation fan-out; null when
  // num_threads resolves to 1 (fully sequential path).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Client> clients_;
  PopulationReference reference_;
  std::unique_ptr<SurrogateAccuracyModel> surrogate_;
  ResourceAccountant accountant_;
  ParticipationTracker tracker_;
  FaultInjector injector_;
  AggregationTracker agg_tracker_;
  // Lossy transport and its accounting (DESIGN.md §10); disabled by default.
  Transport transport_;
  TransportTracker transport_tracker_;
  // Self-healing guard (DESIGN.md §11); rounds are keyed by the aggregation
  // version (async FL's round analogue). A disabled guard is a strict no-op.
  TrainingGuard guard_;
  // Server-ingestion admission layer and its fault side (DESIGN.md §15);
  // both disabled (and the engine byte-identical) by default. Bursts are
  // keyed by the aggregation version.
  OverloadInjector overload_;
  AdmissionController admission_;
  AdmissionTracker admission_tracker_;
  UpdateLog update_log_;
  // Wire volume of duplicate/replay deliveries the server fully
  // re-processed (zero when the admission gate rejected them at ingress).
  double redundant_mb_ = 0.0;
  RecoveryTracker recovery_tracker_;
  // Partial-work salvage accounting (DESIGN.md §16); no-op by default.
  SalvageTracker salvage_tracker_;
  DropoutBreakdown dropout_breakdown_;
  size_t rejected_updates_ = 0;
  // Byzantine completers retired since the last aggregation (folded into the
  // tracker record at each buffer flush).
  size_t pending_byzantine_ = 0;
  std::vector<double> accuracy_history_;
  Rng rng_;
  std::vector<InFlight> in_flight_;
  std::vector<bool> busy_;
  std::vector<ClientContribution> buffer_;
  size_t version_ = 0;
  double now_s_ = 0.0;
  double last_accuracy_delta_ = 0.0;
  // Pooled per-step scratch for LaunchClients (DESIGN.md §12): cleared on
  // entry, reused across steps when config_.pool_round_scratch. Contents
  // never outlive one launch batch, so pooling is bit-invisible; released
  // each step when the toggle is off so the perf harness can measure both.
  struct LaunchScratch {
    std::vector<size_t> candidates;
    std::vector<InFlight> launches;
    std::vector<FaultDecision> faults;
    std::vector<size_t> transfer_rounds;

    void Release() {
      candidates = decltype(candidates)();
      launches = decltype(launches)();
      faults = decltype(faults)();
      transfer_rounds = decltype(transfer_rounds)();
    }
  };
  LaunchScratch scratch_;
};

}  // namespace floatfl

#endif  // SRC_FL_ASYNC_ENGINE_H_
