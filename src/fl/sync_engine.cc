#include "src/fl/sync_engine.h"

#include <algorithm>
#include <cmath>

#include "src/agg/quality_agg.h"
#include "src/common/check.h"
#include "src/common/stats.h"

namespace floatfl {
namespace {

// Server-side aggregation and bookkeeping gap between rounds, seconds.
constexpr double kRoundOverheadS = 10.0;

// backup_of marker for ordinary (non-backup) cohort slots.
constexpr size_t kPrimarySlot = static_cast<size_t>(-1);

}  // namespace

SyncEngine::SyncEngine(const ExperimentConfig& config, Selector* selector, TuningPolicy* policy)
    : config_(config),
      selector_(selector),
      policy_(policy),
      clients_(BuildPopulation(GetDatasetSpec(config.dataset), config.num_clients, config.alpha,
                               config.interference, config.seed)),
      tracker_(config.num_clients) {
  const size_t threads = ResolveThreadCount(config.num_threads);
  if (threads > 1) {
    // The calling thread participates in every ParallelFor, so `threads`
    // total threads do client work.
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  FLOATFL_CHECK(selector_ != nullptr);
  ValidateExperimentConfig(config_);
  injector_ = FaultInjector(config_.faults, config_.seed, config_.num_clients);
  guard_ = TrainingGuard(config_.guard);
  if (config_.deadline_s <= 0.0) {
    config_.deadline_s = AutoDeadlineSeconds(config_, clients_);
  }
  transport_ = Transport(config_.faults, config_.seed);
  deadline_ctrl_ = AdaptiveDeadlineController(config_.adaptive_deadline, config_.num_clients,
                                              config_.deadline_s);
  edge_injector_ = EdgeFaultInjector(config_.topology, config_.seed, config_.topology.num_edges);
  tree_ = AggregationTree(config_.topology, config_.num_clients);
  edge_transport_ = Transport(config_.topology.LinkFaultConfig(),
                              config_.seed ^ TopologyConfig::kEdgeLinkSeedSalt);
  edge_deadline_ctrl_ = AdaptiveDeadlineController(config_.topology.edge_adaptive_deadline,
                                                   config_.topology.num_edges, config_.deadline_s);
  overload_ = OverloadInjector(config_.faults, config_.seed);
  admission_ = AdmissionController(config_.admission);
  scheduler_ = SpeculativeScheduler(config_.salvage);
  update_log_ = UpdateLog(config_.num_clients);
  round_deadline_s_ = config_.deadline_s;
  reference_ = ComputePopulationReference(clients_);
  std::vector<ClientShard> shards;
  shards.reserve(clients_.size());
  for (const auto& c : clients_) {
    shards.push_back(c.shard());
  }
  surrogate_ = std::make_unique<SurrogateAccuracyModel>(
      SurrogateConfigFor(GetDatasetSpec(config.dataset),
                         static_cast<double>(config.clients_per_round)),
      shards);
}

ClientRoundOutcome SyncEngine::SimulateClient(Client& client, double now_s,
                                              TechniqueKind technique) const {
  return SimulateClient(client, rounds_run_, now_s, technique, FaultDecision());
}

ClientRoundOutcome SyncEngine::SimulateClient(Client& client, double now_s,
                                              TechniqueKind technique,
                                              const FaultDecision& fault) const {
  return SimulateClient(client, rounds_run_, now_s, technique, fault);
}

ClientRoundOutcome SyncEngine::SimulateClient(Client& client, size_t round, double now_s,
                                              TechniqueKind technique,
                                              const FaultDecision& fault) const {
  ClientRoundOutcome outcome;
  outcome.client_id = client.id();
  outcome.technique = technique;

  const ModelProfile& model = GetModelProfile(config_.model);
  const DatasetSpec& dataset = GetDatasetSpec(config_.dataset);
  const ResourceAvailability avail = client.interference().At(now_s);

  RoundCostInputs inputs;
  inputs.model = &model;
  inputs.dataset = &dataset;
  inputs.local_samples = client.shard().total;
  inputs.epochs = config_.epochs;
  inputs.batch_size = config_.batch_size;
  inputs.technique = technique;
  inputs.device_gflops = client.compute().GflopsAt(now_s);
  inputs.bandwidth_mbps = client.network().BandwidthMbpsAt(now_s);
  inputs.device_memory_gb = client.compute().MemoryGb();
  inputs.availability = avail;
  outcome.costs = ComputeRoundCosts(inputs);

  // Salvage metadata (DESIGN.md §16): whole local steps this round would run
  // uninterrupted, and a quantizer mapping an interruption's trained seconds
  // onto completed whole steps. Pure arithmetic over quantities the
  // simulation computes anyway — no RNG, so filling it in unconditionally
  // keeps the salvage-off engine bit-identical.
  outcome.salvage_total_steps =
      TotalLocalSteps(inputs.local_samples, config_.epochs, config_.batch_size);
  auto mark_salvage = [&outcome](double trained_s, double train_time_s) {
    outcome.salvage_fraction =
        CompletedStepFraction(trained_s, train_time_s, outcome.salvage_total_steps);
    outcome.salvage_steps = static_cast<size_t>(std::llround(
        outcome.salvage_fraction * static_cast<double>(outcome.salvage_total_steps)));
  };

  const double deadline = round_deadline_s_;
  if (fault.blackout) {
    // The server cannot reach the client during a network blackout: the task
    // push never happens and nothing runs on the device.
    outcome.reason = DropoutReason::kUnavailable;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s = 0.0;
    outcome.costs.peak_memory_mb = 0.0;
    outcome.time_spent_s = 0.0;
    return outcome;
  }
  if (config_.assume_no_dropouts) {
    // Injected faults still apply in the counterfactual: the Figure-3
    // what-if removes *natural* dropouts, not deliberately injected ones
    // (and fault-scenario tests rely on this to isolate the injector).
    if (fault.crash) {
      const double crash_time = fault.crash_fraction * outcome.costs.total_time_s;
      // The download (half the comm budget) precedes training; whatever ran
      // after it and before the crash is salvageable progress.
      mark_salvage(crash_time - 0.5 * outcome.costs.comm_time_s, outcome.costs.train_time_s);
      outcome.reason = DropoutReason::kCrashed;
      outcome.costs.train_time_s *= fault.crash_fraction;
      outcome.costs.comm_time_s *= fault.crash_fraction;
      outcome.time_spent_s = std::min(crash_time, deadline);
      return outcome;
    }
    outcome.completed = true;
    outcome.time_spent_s = std::min(outcome.costs.total_time_s, deadline);
    if (fault.corrupt) {
      outcome.corrupted = true;
      outcome.corrupt_kind = fault.corrupt_kind;
    }
    outcome.byzantine = fault.byzantine;
    return outcome;
  }

  if (!client.availability().IsAvailableAt(now_s)) {
    // Selected while offline: the server pushed a task that is never picked
    // up; only the model download attempt is charged.
    outcome.reason = DropoutReason::kUnavailable;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s *= 0.5;  // download leg only
    outcome.costs.peak_memory_mb = 0.0;
    outcome.time_spent_s = outcome.costs.comm_time_s;
    return outcome;
  }
  if (outcome.costs.out_of_memory) {
    // Training never starts; the model download is wasted.
    outcome.reason = DropoutReason::kOutOfMemory;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s *= 0.5;
    outcome.time_spent_s = outcome.costs.comm_time_s;
    return outcome;
  }

  if (transport_.enabled()) {
    // Lossy-transport path (DESIGN.md §10): the cost model's point-sampled
    // comm time is replaced by explicit chunked download/upload legs
    // integrated over the client's bandwidth trace, with per-chunk loss,
    // link blackouts, retransmission backoff and (for uploads, optionally)
    // resumable retries. Train time and the memory check above still come
    // from the cost model.
    const CostEffect& effect = EffectOf(technique);
    TransferOptions download_opts;
    download_opts.payload_mb = model.weight_mb;
    download_opts.start_s = now_s;
    download_opts.budget_s = deadline;
    download_opts.leg = TransferLeg::kDownload;
    download_opts.resumable = true;  // the server always re-serves only missing chunks
    download_opts.availability = avail.network;
    const TransferResult download =
        transport_.Transfer(round, client.id(), client.network(), download_opts);
    outcome.transfer_attempts = download.attempts;
    outcome.retransmitted_mb = download.retransmitted_mb;
    outcome.salvaged_mb = download.salvaged_mb;
    outcome.transfer_progress_mb = download.progress_mb;
    outcome.transfer_backoff_s = download.backoff_s;
    if (!download.delivered) {
      // Retries (or the round budget) exhausted before the model arrived:
      // training never starts.
      outcome.reason = DropoutReason::kTransferTimedOut;
      outcome.costs.train_time_s = 0.0;
      outcome.costs.comm_time_s = download.wire_time_s;
      outcome.costs.traffic_mb = download.wire_mb;
      outcome.costs.peak_memory_mb = 0.0;
      outcome.time_spent_s = download.elapsed_s;
      return outcome;
    }
    const double train_time = outcome.costs.train_time_s;
    const double upload_budget = deadline - download.elapsed_s - train_time;
    if (upload_budget <= 0.0) {
      // Download + training alone overran the deadline: the upload never
      // starts and the round closes without this client.
      outcome.reason = DropoutReason::kMissedDeadline;
      outcome.deadline_diff = (download.elapsed_s + train_time - deadline) / deadline;
      mark_salvage(deadline - download.elapsed_s, train_time);
      outcome.costs.train_time_s = std::max(0.0, deadline - download.elapsed_s);
      outcome.costs.comm_time_s = download.wire_time_s;
      outcome.costs.traffic_mb = download.wire_mb;
      outcome.time_spent_s = deadline;
      return outcome;
    }
    TransferOptions upload_opts;
    upload_opts.payload_mb = model.weight_mb * effect.comm_mult;
    upload_opts.start_s = now_s + download.elapsed_s + train_time;
    upload_opts.budget_s = upload_budget;
    upload_opts.leg = TransferLeg::kUpload;
    upload_opts.resumable = config_.faults.resumable_uploads;
    upload_opts.availability = avail.network;
    const TransferResult upload =
        transport_.Transfer(round, client.id(), client.network(), upload_opts);
    outcome.transfer_attempts += upload.attempts;
    outcome.retransmitted_mb += upload.retransmitted_mb;
    outcome.salvaged_mb += upload.salvaged_mb;
    outcome.transfer_progress_mb += upload.progress_mb;
    outcome.transfer_backoff_s += upload.backoff_s;
    const double total_time = download.elapsed_s + train_time + upload.elapsed_s;
    outcome.costs.comm_time_s = download.wire_time_s + upload.wire_time_s;
    outcome.costs.traffic_mb = download.wire_mb + upload.wire_mb;
    outcome.costs.total_time_s = total_time;
    if (fault.crash) {
      const double crash_time = fault.crash_fraction * total_time;
      if (crash_time <= deadline && client.availability().AvailableFor(now_s, crash_time)) {
        mark_salvage(crash_time - download.elapsed_s, train_time);
        outcome.reason = DropoutReason::kCrashed;
        outcome.costs.train_time_s *= fault.crash_fraction;
        outcome.costs.comm_time_s *= fault.crash_fraction;
        outcome.time_spent_s = crash_time;
        return outcome;
      }
    }
    if (!upload.delivered) {
      // Training finished; the salvageable partial is the acked prefix of
      // the upload the server already holds, measured in payload bytes.
      outcome.salvage_fraction =
          upload_opts.payload_mb > 0.0
              ? std::min(1.0, upload.progress_mb / upload_opts.payload_mb)
              : 0.0;
      outcome.salvage_steps =
          outcome.salvage_fraction > 0.0 ? outcome.salvage_total_steps : 0;
      outcome.reason = DropoutReason::kTransferTimedOut;
      outcome.deadline_diff = std::max(0.0, (total_time - deadline) / deadline);
      outcome.time_spent_s = total_time;
      return outcome;
    }
    if (!client.availability().AvailableFor(now_s, total_time)) {
      outcome.reason = DropoutReason::kDeparted;
      const double available =
          std::max(0.0, client.availability().PeriodEndAfter(now_s) - now_s);
      mark_salvage(available - download.elapsed_s, train_time);
      const double frac = std::min(1.0, available / std::max(1e-9, total_time));
      outcome.costs.train_time_s *= frac;
      outcome.costs.comm_time_s *= frac;
      outcome.time_spent_s = available;
      outcome.deadline_diff = (total_time - available) / deadline;
      return outcome;
    }
    outcome.completed = true;
    outcome.time_spent_s = total_time;
    const double transfer_secs = outcome.costs.comm_time_s + outcome.transfer_backoff_s;
    if (transfer_secs > 0.0) {
      outcome.effective_mbps =
          (download_opts.payload_mb + upload_opts.payload_mb) * 8.0 / transfer_secs;
    }
    if (fault.corrupt) {
      outcome.corrupted = true;
      outcome.corrupt_kind = fault.corrupt_kind;
    }
    outcome.byzantine = fault.byzantine;
    return outcome;
  }

  if (fault.crash) {
    // The process dies at crash_fraction of the round — but only if the
    // client would actually get that far (the deadline or an availability
    // departure would otherwise end the round first, benignly).
    const double crash_time = fault.crash_fraction * outcome.costs.total_time_s;
    if (crash_time <= deadline && client.availability().AvailableFor(now_s, crash_time)) {
      // The download (half the comm budget) precedes training.
      mark_salvage(crash_time - 0.5 * outcome.costs.comm_time_s, outcome.costs.train_time_s);
      outcome.reason = DropoutReason::kCrashed;
      outcome.costs.train_time_s *= fault.crash_fraction;
      outcome.costs.comm_time_s *= fault.crash_fraction;
      outcome.time_spent_s = crash_time;
      return outcome;
    }
  }
  if (outcome.costs.total_time_s > deadline) {
    // Straggler: works until the deadline, then the round closes without it.
    outcome.reason = DropoutReason::kMissedDeadline;
    outcome.deadline_diff = (outcome.costs.total_time_s - deadline) / deadline;
    const double frac = deadline / outcome.costs.total_time_s;
    mark_salvage(frac * outcome.costs.train_time_s, outcome.costs.train_time_s);
    outcome.costs.train_time_s *= frac;
    outcome.costs.comm_time_s *= frac;
    outcome.time_spent_s = deadline;
    return outcome;
  }
  if (!client.availability().AvailableFor(now_s, outcome.costs.total_time_s)) {
    // The device leaves (battery, user activity) mid-round.
    outcome.reason = DropoutReason::kDeparted;
    const double available = std::max(0.0, client.availability().PeriodEndAfter(now_s) - now_s);
    const double frac = std::min(1.0, available / outcome.costs.total_time_s);
    mark_salvage(frac * outcome.costs.train_time_s, outcome.costs.train_time_s);
    outcome.costs.train_time_s *= frac;
    outcome.costs.comm_time_s *= frac;
    outcome.time_spent_s = available;
    outcome.deadline_diff = (outcome.costs.total_time_s - available) / deadline;
    return outcome;
  }
  outcome.completed = true;
  outcome.time_spent_s = outcome.costs.total_time_s;
  if (fault.corrupt) {
    outcome.corrupted = true;
    outcome.corrupt_kind = fault.corrupt_kind;
  }
  outcome.byzantine = fault.byzantine;
  return outcome;
}

void SyncEngine::RunRound(size_t round) {
  injector_.BeginRound(round);
  guard_.BeginRound(round);
  // Hierarchical topology (DESIGN.md §13): draw this round's edge fault
  // decisions and fold them (plus crash cooldowns) into the up/down mask and
  // failover assignment before any client is tasked.
  const bool tree_on = tree_.enabled();
  if (tree_on) {
    edge_injector_.BeginRound(round);
    std::vector<EdgeFaultDecision>& edge_decisions = scratch_.edge_decisions;
    edge_decisions.assign(tree_.num_edges(), EdgeFaultDecision());
    for (size_t edge = 0; edge < edge_decisions.size(); ++edge) {
      edge_decisions[edge] = edge_injector_.Decide(round, edge);
      if (edge_decisions[edge].crash) {
        topo_tracker_.RecordEdgeCrash();
      } else if (edge_decisions[edge].blackout) {
        topo_tracker_.RecordEdgeBlackout();
      }
    }
    tree_.BeginRound(round, edge_decisions);
  }
  if (deadline_ctrl_.enabled()) {
    // Re-plan the sync deadline from the population's observed round times
    // (clamped to the configured bounds around the base deadline).
    round_deadline_s_ = deadline_ctrl_.CurrentDeadline();
  }

  // Over-selection: select ceil(K x overcommit) and close the round at the
  // first K completions; the extras hedge against injected failures.
  const size_t base_k = config_.clients_per_round;
  size_t select_k = base_k;
  if (injector_.enabled() && config_.faults.overcommit > 1.0) {
    select_k = static_cast<size_t>(
        std::ceil(static_cast<double>(base_k) * config_.faults.overcommit));
    select_k = std::min(select_k, config_.num_clients);
  }
  std::vector<size_t> selected = selector_->Select(round, now_s_, select_k, clients_);

  // Speculative re-execution (DESIGN.md §16): deterministically draft one
  // backup executor for every primary whose EWMA deadline profile predicts a
  // miss, and run the backups through the same observe/decide/simulate path
  // as the cohort (their own fault draws included). Resolution — first valid
  // upload wins, the loser charged as redundant — happens after server-side
  // validation below. `needed` stays pinned to the primary cohort so
  // speculation can never relax the round-close bar.
  const size_t num_primaries = selected.size();
  std::vector<size_t>& backup_of = scratch_.backup_of;
  backup_of.assign(num_primaries, kPrimarySlot);
  if (config_.salvage.speculation) {
    const std::vector<BackupPlan> plans = scheduler_.Plan(round, selected, clients_);
    salvage_tracker_.RecordBackupsPlanned(plans.size());
    for (const BackupPlan& plan : plans) {
      backup_of.push_back(plan.primary_slot);
      selected.push_back(plan.backup_client_id);
    }
  }

  GlobalObservation global;
  global.batch_size = config_.batch_size;
  global.epochs = config_.epochs;
  global.participants = config_.clients_per_round;

  // Phase 1 (sequential): observe each client and let the policy decide,
  // preserving the policy's internal draw order across thread counts. Fault
  // decisions are drawn here too — each from its own (round, client)-keyed
  // stream, so their order is irrelevant, but batching them keeps phase 2
  // free of injector calls.
  std::vector<ClientObservation>& observations = scratch_.observations;
  std::vector<TechniqueKind>& techniques = scratch_.techniques;
  std::vector<FaultDecision>& faults = scratch_.faults;
  observations.clear();
  techniques.clear();
  faults.assign(selected.size(), FaultDecision());
  observations.reserve(selected.size());
  techniques.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    const size_t id = selected[i];
    FLOATFL_CHECK(id < clients_.size());
    Client& client = clients_[id];
    observations.push_back(ObserveClient(client, now_s_, reference_));
    // The policy always gets its Decide call (preserving its internal draw
    // order); the guard may then veto the chosen action (safe mode or
    // quarantine) and substitute kNone.
    techniques.push_back(
        guard_.Filter(policy_ != nullptr ? policy_->Decide(id, observations.back(), global)
                                         : TechniqueKind::kNone,
                      round));
    if (injector_.enabled()) {
      faults[i] = injector_.Decide(round, id, now_s_);
    }
  }

  // Phase 2 (parallel): simulate the selected clients. Each task touches
  // only its own client's trace state (selectors sample without
  // replacement), and outcomes land in an index-ordered buffer.
  std::vector<ClientRoundOutcome>& outcomes = scratch_.outcomes;
  outcomes.assign(selected.size(), ClientRoundOutcome());
  ParallelFor(pool_.get(), selected.size(), [&](size_t i) {
    if (tree_on && tree_.EffectiveEdge(selected[i]) == AggregationTree::kOrphaned) {
      // Every edge in the client's failover chain is down: the task push has
      // nowhere to land, the client never runs, and nothing is charged.
      ClientRoundOutcome orphan;
      orphan.client_id = selected[i];
      orphan.technique = techniques[i];
      orphan.reason = DropoutReason::kEdgeOrphaned;
      outcomes[i] = orphan;
      return;
    }
    outcomes[i] = SimulateClient(clients_[selected[i]], round, now_s_, techniques[i], faults[i]);
  });

  // Server-side validation (quarantine): a corrupted update carries a
  // non-finite or absurd quality and is rejected before aggregation. The
  // client spent its full round; the spend becomes waste.
  for (auto& outcome : outcomes) {
    if (outcome.completed && outcome.corrupted &&
        !IsValidUpdateQuality(PoisonedQuality(outcome.corrupt_kind))) {
      outcome.completed = false;
      outcome.reason = DropoutReason::kCorrupted;
      ++rejected_updates_;
    }
  }

  // Backup resolution (DESIGN.md §16): for each (primary, backup) pair the
  // first valid upload wins and the other execution is charged as redundant
  // work. A corrupted party keeps kCorrupted (rejected_updates_ already
  // counted it), and a backup's own deadline miss is re-labeled so
  // speculation can never inflate the miss statistics it exists to reduce.
  for (size_t i = num_primaries; i < outcomes.size(); ++i) {
    ClientRoundOutcome& backup = outcomes[i];
    ClientRoundOutcome& primary = outcomes[backup_of[i]];
    if (backup.completed && primary.completed) {
      ClientRoundOutcome& loser =
          backup.time_spent_s < primary.time_spent_s ? primary : backup;
      loser.completed = false;
      loser.reason = DropoutReason::kBackupRedundant;
      if (&loser == &primary) {
        salvage_tracker_.RecordBackupWin();
      } else {
        salvage_tracker_.RecordBackupRedundant();
      }
    } else if (backup.completed) {
      // The primary was interrupted and the backup delivered: the cohort
      // slot is covered.
      if (primary.reason == DropoutReason::kMissedDeadline) {
        salvage_tracker_.RecordDeadlineMissAverted();
      }
      if (primary.reason != DropoutReason::kCorrupted) {
        primary.reason = DropoutReason::kBackupCovered;
      }
      salvage_tracker_.RecordBackupWin();
    } else {
      if (backup.reason == DropoutReason::kMissedDeadline) {
        backup.reason = DropoutReason::kBackupRedundant;
      }
      salvage_tracker_.RecordBackupRedundant();
    }
  }

  // Over-selection round close: accept the first `needed` valid completions
  // (by finish time, selection order breaking ties); later ones are
  // abandoned and their spend charged as waste.
  const size_t needed = std::min(base_k, num_primaries);
  {
    std::vector<size_t>& completed_idx = scratch_.completed_idx;
    completed_idx.clear();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].completed) {
        completed_idx.push_back(i);
      }
    }
    if (completed_idx.size() > needed) {
      std::stable_sort(completed_idx.begin(), completed_idx.end(), [&](size_t a, size_t b) {
        return outcomes[a].time_spent_s < outcomes[b].time_spent_s;
      });
      for (size_t j = needed; j < completed_idx.size(); ++j) {
        ClientRoundOutcome& abandoned = outcomes[completed_idx[j]];
        abandoned.completed = false;
        abandoned.reason = DropoutReason::kRejected;
      }
    }
  }

  // Server ingestion (DESIGN.md §15): every surviving upload is one arrival
  // at the server's ingress; the overload injector may permute the arrival
  // order, re-deliver uploads at-least-once, and replay stale past uploads —
  // with stampede episodes multiplying the redundant slots. The admission
  // gate (when enabled) rules on the whole burst in arrival order. A
  // redundant delivery that passes the gate — or meets an unguarded server —
  // is re-processed in full: its upload wire cost is charged as waste and
  // its (possibly stale) content re-enters aggregation below.
  struct RedundantDelivery {
    size_t client_id = 0;
    double quality = 0.0;
    double staleness = 0.0;
    double weight = 1.0;
  };
  std::vector<RedundantDelivery> redundant_admitted;
  if (overload_.enabled() || admission_.enabled()) {
    struct IngressDelivery {
      AdmissionController::Arrival arrival;
      size_t idx = 0;          // index into outcomes/observations
      bool redundant = false;  // a duplicate or replay, not the upload itself
      TechniqueKind technique = TechniqueKind::kNone;
      double quality = 0.0;
      double upload_comm_s = 0.0;
      double upload_mb = 0.0;
    };
    // The quality the server would aggregate for this upload; recomputable
    // because the Byzantine draw is (round, client)-keyed and const.
    auto quality_of = [&](const ClientRoundOutcome& o) {
      double q = 1.0 - EffectOf(o.technique).accuracy_impact;
      if (o.byzantine) {
        q = injector_.AttackedQuality(q, round, o.client_id);
      }
      return q;
    };
    std::vector<size_t> arrival_order;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].completed) {
        arrival_order.push_back(i);
      }
    }
    overload_.MaybeReorder(round, arrival_order);
    std::vector<IngressDelivery> deliveries;
    auto fresh_delivery = [&](size_t i) {
      IngressDelivery d;
      d.arrival.client_id = outcomes[i].client_id;
      d.arrival.round = round;
      d.arrival.attempt = 0;
      d.arrival.staleness = 0.0;
      d.idx = i;
      d.technique = outcomes[i].technique;
      d.quality = quality_of(outcomes[i]);
      d.upload_comm_s = 0.5 * outcomes[i].costs.comm_time_s;  // upload leg
      d.upload_mb = 0.5 * outcomes[i].costs.traffic_mb;
      const double u = selector_->IngestUtility(d.arrival.client_id);
      d.arrival.utility = u > 0.0 ? u : d.quality;
      return d;
    };
    for (size_t i : arrival_order) {
      deliveries.push_back(fresh_delivery(i));
    }
    if (overload_.enabled()) {
      // At-least-once duplicates carry the exact key of the upload they
      // copy, which is what lets idempotent admission fold them.
      for (size_t i : arrival_order) {
        const size_t copies = overload_.DuplicateCopies(round, outcomes[i].client_id);
        for (size_t c = 0; c < copies; ++c) {
          IngressDelivery d = fresh_delivery(i);
          d.redundant = true;
          deliveries.push_back(d);
        }
      }
      // Replays re-deliver the client's last *accepted* upload — what a
      // retransmit buffer would still hold — at its original round key.
      for (size_t i = 0; i < selected.size(); ++i) {
        const LoggedUpload* logged = update_log_.Get(selected[i]);
        if (logged == nullptr || logged->round >= round) {
          continue;
        }
        const size_t slots = overload_.ReplaySlots(round, selected[i]);
        for (size_t s = 0; s < slots; ++s) {
          IngressDelivery d;
          d.arrival.client_id = selected[i];
          d.arrival.round = logged->round;
          d.arrival.attempt = 0;
          d.arrival.staleness = static_cast<double>(round - logged->round);
          // A stale upload ranks below fresh ones under utility-priority
          // shedding, more so the older it is.
          d.arrival.utility = logged->quality / (1.0 + d.arrival.staleness);
          d.idx = i;
          d.redundant = true;
          d.technique = static_cast<TechniqueKind>(logged->technique);
          d.quality = logged->quality;
          d.upload_comm_s = logged->upload_comm_s;
          d.upload_mb = logged->upload_mb;
          deliveries.push_back(d);
        }
      }
    }
    std::vector<AdmissionController::Verdict> verdicts;
    if (admission_.enabled()) {
      std::vector<AdmissionController::Arrival> arrivals;
      arrivals.reserve(deliveries.size());
      for (const IngressDelivery& d : deliveries) {
        arrivals.push_back(d.arrival);
      }
      verdicts = admission_.Admit(round, arrivals, &admission_tracker_);
    } else {
      AdmissionController::Verdict pass;
      pass.admitted = true;
      verdicts.assign(deliveries.size(), pass);
    }
    for (size_t i = 0; i < deliveries.size(); ++i) {
      const IngressDelivery& d = deliveries[i];
      const AdmissionController::Verdict& v = verdicts[i];
      if (!d.redundant) {
        if (!v.admitted) {
          // A legitimate upload turned away at ingress (shed / rate-limited):
          // the round closes without it and phase 3 below books it like any
          // other dropout.
          outcomes[d.idx].completed = false;
          outcomes[d.idx].reason = v.reason;
        }
        continue;
      }
      if (v.admitted) {
        accountant_.Record(0.0, d.upload_comm_s, 0.0, false);
        redundant_mb_ += d.upload_mb;
        RedundantDelivery red;
        red.client_id = d.arrival.client_id;
        red.quality = d.quality;
        red.staleness = d.arrival.staleness;
        red.weight = v.weight;
        redundant_admitted.push_back(red);
      } else {
        // Rejected at the doorstep before any processing: one tracker record
        // and one participated=false policy report — no waste charge and no
        // selector/guard/cooldown side effects, so folding a duplicate
        // leaves the model trajectory bit-identical to never receiving it.
        tracker_.Record(d.arrival.client_id, d.technique, false, v.reason);
        CountDropout(v.reason, dropout_breakdown_);
        if (policy_ != nullptr) {
          policy_->Report(d.arrival.client_id, observations[d.idx], global, d.technique, false,
                          0.0);
        }
      }
    }
  }

  // Partial-work salvage (DESIGN.md §16): an interruption that left
  // measurable progress (crash, deadline miss, departure, timed-out upload)
  // no longer forfeits the client's work. Partials clearing the
  // min-progress bar form a second admission burst — keyed with a dedicated
  // attempt id so a partial can never fold into (or be folded by) the
  // client's full upload — and the admitted ones re-enter aggregation below
  // at step-count weight. Salvage converts already-spent compute: it never
  // extends the round, re-charges communication, or counts toward the
  // cohort close.
  if (config_.salvage.enabled) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const ClientRoundOutcome& o = outcomes[i];
      if (o.completed || o.salvage_fraction <= 0.0) {
        continue;
      }
      const bool interrupted = o.reason == DropoutReason::kCrashed ||
                               o.reason == DropoutReason::kMissedDeadline ||
                               o.reason == DropoutReason::kDeparted ||
                               o.reason == DropoutReason::kTransferTimedOut;
      if (!interrupted) {
        continue;
      }
      if (o.salvage_fraction < config_.salvage.min_progress) {
        salvage_tracker_.RecordPartialBelowMin();
        continue;
      }
      candidates.push_back(i);
    }
    std::vector<AdmissionController::Verdict> verdicts;
    if (admission_.enabled() && !candidates.empty()) {
      std::vector<AdmissionController::Arrival> arrivals;
      arrivals.reserve(candidates.size());
      for (size_t i : candidates) {
        AdmissionController::Arrival a;
        a.client_id = outcomes[i].client_id;
        a.round = round;
        a.attempt = kPartialUpdateAttempt;
        const double u = selector_->IngestUtility(a.client_id);
        a.utility = (u > 0.0 ? u : 1.0) * outcomes[i].salvage_fraction;
        arrivals.push_back(a);
      }
      verdicts = admission_.Admit(round, arrivals, &admission_tracker_);
    } else {
      AdmissionController::Verdict pass;
      pass.admitted = true;
      verdicts.assign(candidates.size(), pass);
    }
    const double upload_payload_mb = GetModelProfile(config_.model).weight_mb;
    for (size_t j = 0; j < candidates.size(); ++j) {
      ClientRoundOutcome& o = outcomes[candidates[j]];
      if (!verdicts[j].admitted) {
        salvage_tracker_.RecordPartialRejected();
        continue;
      }
      o.salvaged = true;
      // Acked upload bytes the salvage reuses; zero for training
      // interruptions, where nothing of the update reached the wire.
      const double acked_mb =
          o.reason == DropoutReason::kTransferTimedOut
              ? o.salvage_fraction * upload_payload_mb * EffectOf(o.technique).comm_mult
              : 0.0;
      salvage_tracker_.RecordPartialSalvaged(o.salvage_steps, o.salvage_fraction, acked_mb);
    }
  }

  // Phase 3 (sequential, selection order): bookkeeping, so the accountant's
  // floating-point sums accumulate in a fixed order.
  for (size_t i = 0; i < selected.size(); ++i) {
    Client& client = clients_[selected[i]];
    const ClientRoundOutcome& outcome = outcomes[i];
    ++client.times_selected;
    if (outcome.completed) {
      ++client.times_completed;
    }
    client.last_round_duration_s = outcome.time_spent_s;
    client.UpdateDeadlineDiff(outcome.deadline_diff);

    // A salvaged partial converts the interrupted spend into useful work;
    // the round still records it as a dropout (completed stays false).
    accountant_.Record(outcome.costs.train_time_s, outcome.costs.comm_time_s,
                       outcome.costs.peak_memory_mb, outcome.completed || outcome.salvaged);
    tracker_.Record(selected[i], techniques[i], outcome.completed, outcome.reason);
    guard_.Observe(techniques[i], outcome.completed, outcome.reason, round);
    if (outcome.transfer_attempts > 0) {
      transport_tracker_.Record(outcome.transfer_attempts, outcome.costs.traffic_mb,
                                outcome.retransmitted_mb, outcome.salvaged_mb,
                                outcome.transfer_progress_mb, outcome.transfer_backoff_s,
                                outcome.reason == DropoutReason::kTransferTimedOut);
    }
    CountDropout(outcome.reason, dropout_breakdown_);
    if (tree_on) {
      if (outcome.reason == DropoutReason::kEdgeOrphaned) {
        topo_tracker_.RecordOrphaned(1);
      } else if (tree_.Reparented(selected[i])) {
        topo_tracker_.RecordReparented(1);
      }
    }
    if (config_.faults.retry_cooldown_rounds > 0 &&
        (outcome.reason == DropoutReason::kCrashed ||
         outcome.reason == DropoutReason::kCorrupted)) {
      // Retry-with-cooldown: a crashed or quarantined client sits out the
      // next few rounds before the selectors consider it again.
      client.cooldown_until_round = round + 1 + config_.faults.retry_cooldown_rounds;
    }
  }

  // Aggregate the successful updates into the convergence model. A Byzantine
  // completer submits an adversarially crafted (but validation-passing)
  // quality; the configured aggregation rule then gets its say before the
  // surrogate folds the contributions in.
  const double accuracy_before = surrogate_->GlobalAccuracy();
  std::vector<ClientContribution>& contributions = scratch_.contributions;
  contributions.clear();
  double round_duration = 0.0;
  size_t accepted = 0;
  size_t byzantine_selected = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.byzantine) {
      ++byzantine_selected;
    }
    if (outcome.completed) {
      ClientContribution contribution;
      contribution.client_id = outcome.client_id;
      contribution.quality = 1.0 - EffectOf(outcome.technique).accuracy_impact;
      if (outcome.byzantine) {
        contribution.quality =
            injector_.AttackedQuality(contribution.quality, round, outcome.client_id);
      }
      contributions.push_back(contribution);
      if (overload_.enabled()) {
        // Remember the accepted upload: the replay fault re-delivers exactly
        // this entry in a later round.
        LoggedUpload entry;
        entry.round = round;
        entry.quality = contribution.quality;
        entry.upload_comm_s = 0.5 * outcome.costs.comm_time_s;  // upload leg
        entry.upload_mb = 0.5 * outcome.costs.traffic_mb;
        entry.technique = static_cast<uint32_t>(outcome.technique);
        update_log_.Record(outcome.client_id, entry);
      }
      round_duration = std::max(round_duration, outcome.time_spent_s);
      ++accepted;
    }
  }
  // Admitted partials re-enter aggregation at step-count weight: the quality
  // is the same as a full update from this client (the completed steps are
  // real steps at full quality), while the weight scales its mass in the
  // round mean by the completed fraction — a 40%-trained partial can never
  // outvote a full update, and the round's mean quality is not diluted.
  if (config_.salvage.enabled) {
    for (const auto& outcome : outcomes) {
      if (!outcome.salvaged) {
        continue;
      }
      ClientContribution contribution;
      contribution.client_id = outcome.client_id;
      contribution.quality = 1.0 - EffectOf(outcome.technique).accuracy_impact;
      if (outcome.byzantine) {
        contribution.quality =
            injector_.AttackedQuality(contribution.quality, round, outcome.client_id);
      }
      contribution.weight = outcome.salvage_fraction;
      contributions.push_back(contribution);
    }
  }
  // Admitted redundant deliveries re-enter aggregation as extra
  // contributions: a duplicate double-weights its client, a replay injects a
  // stale (staleness-discounted) copy — both dilute round quality, which is
  // exactly the damage the admission gate exists to stop. They are re-counts
  // of already-closed uploads, so they never extend the round or count
  // toward the cohort.
  for (const RedundantDelivery& red : redundant_admitted) {
    ClientContribution contribution;
    contribution.client_id = red.client_id;
    contribution.quality = red.quality * red.weight;
    contribution.staleness = red.staleness;
    contributions.push_back(contribution);
  }

  // Edge tier (DESIGN.md §13): group the accepted contributions under their
  // effective (post-failover) edges, fold each group with the edge
  // aggregation rule, let Byzantine edges tamper with the partial they
  // forward, carry each partial over the (possibly lossy) inter-tier link,
  // apply the root's patience (adaptive deadline over per-edge round times,
  // edge over-selection), and re-validate what arrives. Whatever survives —
  // concatenated in edge order — is what the root aggregates.
  if (tree_on && !contributions.empty()) {
    const size_t num_edges = tree_.num_edges();
    std::vector<std::vector<ClientContribution>> groups(num_edges);
    std::vector<double> edge_elapsed(num_edges, 0.0);
    for (const auto& contribution : contributions) {
      groups[tree_.EffectiveEdge(contribution.client_id)].push_back(contribution);
    }
    for (const auto& outcome : outcomes) {
      if (outcome.completed) {
        const size_t edge = tree_.EffectiveEdge(outcome.client_id);
        edge_elapsed[edge] = std::max(edge_elapsed[edge], outcome.time_spent_s);
      }
    }
    const double partial_mb = GetModelProfile(config_.model).weight_mb;
    std::vector<uint8_t> delivered(num_edges, 0);
    for (size_t edge = 0; edge < num_edges; ++edge) {
      if (groups[edge].empty()) {
        continue;
      }
      AggregatorStats edge_stats;
      ApplyQualityAggregation(config_.topology.edge_aggregator, groups[edge], &edge_stats);
      topo_tracker_.RecordEdgeAggExclusions(edge_stats.updates_clipped +
                                            edge_stats.krum_rejections +
                                            edge_stats.updates_trimmed);
      if (edge_injector_.enabled() && scratch_.edge_decisions[edge].byzantine) {
        for (auto& c : groups[edge]) {
          c.quality = edge_injector_.TamperedQuality(c.quality, round, edge);
        }
        topo_tracker_.RecordTampered();
      }
      bool ok = true;
      if (edge_transport_.enabled()) {
        // Losing the partial loses every client update behind it: the
        // blast-radius asymmetry that makes edge links worth hardening.
        const TransferResult res =
            edge_transport_.TryDeliver(round, edge, partial_mb, TransferLeg::kUpload, true);
        topo_tracker_.RecordPartial(res.delivered, res.attempts, res.wire_mb,
                                    res.retransmitted_mb);
        ok = res.delivered;
      } else {
        topo_tracker_.RecordPartial(true, 0, 0.0, 0.0);
      }
      delivered[edge] = ok ? 1 : 0;
    }
    std::vector<size_t> arrived;
    for (size_t edge = 0; edge < num_edges; ++edge) {
      if (!groups[edge].empty() && delivered[edge]) {
        arrived.push_back(edge);
      }
    }
    if (edge_deadline_ctrl_.enabled()) {
      const double root_patience = edge_deadline_ctrl_.CurrentDeadline();
      std::vector<size_t> in_time;
      for (size_t edge : arrived) {
        if (edge_elapsed[edge] <= root_patience) {
          in_time.push_back(edge);
        } else {
          topo_tracker_.RecordLatePartial();
        }
      }
      arrived.swap(in_time);
    }
    if (config_.topology.edge_overcommit > 1.0) {
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(static_cast<double>(num_edges) /
                                           config_.topology.edge_overcommit)));
      if (arrived.size() > keep) {
        std::stable_sort(arrived.begin(), arrived.end(),
                         [&](size_t a, size_t b) { return edge_elapsed[a] < edge_elapsed[b]; });
        for (size_t j = keep; j < arrived.size(); ++j) {
          topo_tracker_.RecordLatePartial();
        }
        arrived.resize(keep);
        std::sort(arrived.begin(), arrived.end());
      }
    }
    if (edge_deadline_ctrl_.enabled()) {
      // Every delivered partial (late or not) feeds the estimate, in edge
      // order, so the controller sees the tree's true pace.
      for (size_t edge = 0; edge < num_edges; ++edge) {
        if (!groups[edge].empty() && delivered[edge]) {
          edge_deadline_ctrl_.Observe(edge, edge_elapsed[edge], 0.0);
        }
      }
    }
    contributions.clear();
    for (size_t edge : arrived) {
      size_t rejected = 0;
      for (const auto& c : groups[edge]) {
        if (IsValidUpdateQuality(c.quality)) {
          contributions.push_back(c);
        } else {
          ++rejected;
        }
      }
      if (rejected > 0) {
        topo_tracker_.RecordTamperedRejections(rejected);
      }
    }
  }
  // Fraction of completed client updates that made it through the tree to
  // the root — the guard's per-tier health signal. 1 on the star topology.
  const size_t reached_root = contributions.size();
  AggregatorStats agg_stats;
  ApplyQualityAggregation(config_.aggregator, contributions, &agg_stats);
  agg_tracker_.Record(byzantine_selected, agg_stats);
  surrogate_->RoundUpdate(contributions);
  const double accuracy_delta = surrogate_->GlobalAccuracy() - accuracy_before;

  // Feedback to the tuning policy and the selector.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const auto& outcome = outcomes[i];
    if (policy_ != nullptr) {
      // The accuracy credit a client earns is the round's global improvement
      // scaled by the quality of its own (possibly optimized) update, so the
      // agent feels the accuracy cost of aggressive accelerations.
      const double client_accuracy_credit = guard_.SanitizeReward(
          accuracy_delta * (1.0 - EffectOf(outcome.technique).accuracy_impact));
      policy_->Report(outcome.client_id, observations[i], global, outcome.technique,
                      outcome.completed, client_accuracy_credit);
    }
    selector_->OnOutcome(outcome.client_id, outcome.completed, outcome.time_spent_s,
                         round_deadline_s_);
    if (transport_.enabled()) {
      // Effective (post-retransmission) link speed, so bandwidth-aware
      // selectors rank clients by what their links actually deliver.
      selector_->OnTransfer(outcome.client_id, outcome.effective_mbps,
                            clients_[outcome.client_id].network().NominalMbps());
    }
    if (deadline_ctrl_.enabled() && outcome.time_spent_s > 0.0) {
      deadline_ctrl_.Observe(outcome.client_id, outcome.time_spent_s, outcome.effective_mbps);
    }
  }

  // A synchronous server waits out the deadline when it could not close the
  // round with a full cohort. With over-selection, `needed` early
  // completions close the round immediately — the mechanism that shortens
  // mean round duration under injected failures.
  if (accepted < needed) {
    round_duration = round_deadline_s_;
  }

  // Self-healing hook (DESIGN.md §11): grade the round's end state, snapshot
  // it when healthy, roll the surrogate and policy back to the last known
  // good state when diverging. The rollback (if any) happens before the
  // round's accuracy is recorded, so the history reflects the restored
  // trajectory.
  {
    HealthSignal health;
    health.metric = surrogate_->GlobalAccuracy();
    health.loss = 1.0 - health.metric;
    if (tree_on && accepted > 0) {
      health.coverage = static_cast<double>(reached_root) / static_cast<double>(accepted);
    }
    guard_.EndRound(
        round, health,
        [this](CheckpointWriter& w) {
          surrogate_->SaveState(w);
          w.Bool(policy_ != nullptr);
          if (policy_ != nullptr) {
            policy_->SaveState(w);
          }
        },
        [this](CheckpointReader& r) {
          surrogate_->LoadState(r);
          const bool had_policy = r.Bool();
          if (had_policy && policy_ != nullptr) {
            policy_->LoadState(r);
          }
        });
  }

  now_s_ += round_duration + kRoundOverheadS;
  accuracy_history_.push_back(surrogate_->GlobalAccuracy());
  ++rounds_run_;
  if (!config_.pool_round_scratch) {
    scratch_.Release();
  }
}

ExperimentResult SyncEngine::Snapshot() const {
  ExperimentResult result;
  const std::vector<double> accuracies = surrogate_->AllClientAccuracies();
  result.accuracy_avg = Mean(accuracies);
  result.accuracy_top10 = TopFractionMean(accuracies, 0.10);
  result.accuracy_bottom10 = BottomFractionMean(accuracies, 0.10);
  result.global_accuracy = surrogate_->GlobalAccuracy();
  result.total_selected = tracker_.TotalSelected();
  result.total_completed = tracker_.TotalCompleted();
  result.total_dropouts = tracker_.TotalDropouts();
  result.never_selected = tracker_.NeverSelected();
  result.never_completed = tracker_.NeverCompleted();
  result.dropout_breakdown = dropout_breakdown_;
  result.rejected_updates = rejected_updates_;
  result.byzantine_selected = agg_tracker_.TotalByzantineSelected();
  result.krum_rejections = agg_tracker_.TotalKrumRejections();
  result.updates_trimmed = agg_tracker_.TotalTrimmed();
  result.transfer_attempts = transport_tracker_.TotalAttempts();
  result.wire_mb = transport_tracker_.TotalWireMb();
  result.retransmitted_mb = transport_tracker_.TotalRetransmittedMb();
  result.salvaged_mb = transport_tracker_.TotalSalvagedMb();
  result.transfer_backoff_s = transport_tracker_.TotalBackoffS();
  result.useful = accountant_.Useful();
  result.wasted = accountant_.Wasted();
  result.wall_clock_hours = now_s_ / 3600.0;
  result.per_technique = tracker_.PerTechnique();
  result.per_technique_dropouts = tracker_.DropoutsByTechnique();
  result.guard_snapshots = guard_.tracker().Snapshots();
  result.watchdog_triggers = guard_.tracker().WatchdogTriggers();
  result.rollbacks = guard_.tracker().Rollbacks();
  result.quarantined_actions = guard_.tracker().MaskedActions();
  result.quarantine_openings = guard_.tracker().QuarantineOpenings();
  result.rejected_rewards = guard_.tracker().RejectedRewards();
  result.safe_mode_rounds = guard_.tracker().SafeModeRounds();
  result.edge_crashes = topo_tracker_.EdgeCrashes();
  result.edge_blackouts = topo_tracker_.EdgeBlackouts();
  result.reparented_clients = topo_tracker_.ReparentedClients();
  result.orphaned_clients = topo_tracker_.OrphanedClients();
  result.partials_forwarded = topo_tracker_.PartialsForwarded();
  result.partials_lost = topo_tracker_.PartialsLost();
  result.tampered_partials = topo_tracker_.TamperedPartials();
  result.tampered_rejections = topo_tracker_.TamperedRejections();
  result.late_partials = topo_tracker_.LatePartials();
  result.tier1_wire_mb = topo_tracker_.Tier1WireMb();
  result.tier1_retransmitted_mb = topo_tracker_.Tier1RetransmittedMb();
  result.recovery_restarts = recovery_tracker_.Restarts();
  result.recovery_archives_skipped = recovery_tracker_.ArchivesSkipped();
  result.recovery_rounds_replayed = recovery_tracker_.RoundsReplayed();
  result.recovery_checkpoints_written = recovery_tracker_.CheckpointsWritten();
  result.recovery_checkpoints_failed = recovery_tracker_.CheckpointsFailed();
  result.admission_admitted = admission_tracker_.Admitted();
  result.admission_deduplicated = admission_tracker_.Deduplicated();
  result.admission_shed = admission_tracker_.Shed();
  result.admission_rate_limited = admission_tracker_.RateLimited();
  result.admission_replay_rejected = admission_tracker_.ReplayRejected();
  result.admission_peak_queue_depth = admission_tracker_.PeakQueueDepth();
  result.redundant_mb = redundant_mb_;
  result.partials_salvaged = salvage_tracker_.PartialsSalvaged();
  result.partials_below_min = salvage_tracker_.PartialsBelowMin();
  result.partials_rejected = salvage_tracker_.PartialsRejected();
  result.salvaged_steps = salvage_tracker_.SalvagedSteps();
  result.salvaged_progress_mb = salvage_tracker_.SalvagedProgressMb();
  result.backups_planned = salvage_tracker_.BackupsPlanned();
  result.backups_won = salvage_tracker_.BackupsWon();
  result.backups_redundant = salvage_tracker_.BackupsRedundant();
  result.deadline_misses_averted = salvage_tracker_.DeadlineMissesAverted();
  result.transfer_progress_mb = transport_tracker_.TotalProgressMb();
  result.accuracy_history = accuracy_history_;
  result.per_client_selected = tracker_.selected();
  result.per_client_completed = tracker_.completed();
  return result;
}

ExperimentResult SyncEngine::Run() {
  for (size_t round = rounds_run_; round < config_.rounds; ++round) {
    RunRound(round);
  }
  return Snapshot();
}

void SyncEngine::SaveState(CheckpointWriter& w) const {
  w.F64(now_s_);
  w.Size(rounds_run_);
  w.Size(rejected_updates_);
  w.Size(dropout_breakdown_.unavailable);
  w.Size(dropout_breakdown_.out_of_memory);
  w.Size(dropout_breakdown_.missed_deadline);
  w.Size(dropout_breakdown_.departed);
  w.Size(dropout_breakdown_.crashed);
  w.Size(dropout_breakdown_.corrupted);
  w.Size(dropout_breakdown_.rejected);
  w.Size(dropout_breakdown_.transfer_timed_out);
  w.Size(dropout_breakdown_.edge_orphaned);
  w.Size(dropout_breakdown_.shed);
  w.Size(dropout_breakdown_.duplicate);
  w.Size(dropout_breakdown_.replayed);
  w.Size(dropout_breakdown_.rate_limited);
  w.Size(dropout_breakdown_.backup_covered);
  w.Size(dropout_breakdown_.backup_redundant);
  w.F64Vec(accuracy_history_);
  w.Size(clients_.size());
  for (const auto& client : clients_) {
    client.SaveState(w);
  }
  surrogate_->SaveState(w);
  accountant_.SaveState(w);
  tracker_.SaveState(w);
  injector_.SaveState(w);
  selector_->SaveState(w);
  w.Bool(policy_ != nullptr);
  if (policy_ != nullptr) {
    policy_->SaveState(w);
  }
  agg_tracker_.SaveState(w);
  w.F64(round_deadline_s_);
  transport_tracker_.SaveState(w);
  deadline_ctrl_.SaveState(w);
  guard_.SaveState(w);
  edge_injector_.SaveState(w);
  tree_.SaveState(w);
  topo_tracker_.SaveState(w);
  edge_deadline_ctrl_.SaveState(w);
  admission_.SaveState(w);
  update_log_.SaveState(w);
  admission_tracker_.SaveState(w);
  w.F64(redundant_mb_);
  salvage_tracker_.SaveState(w);
  scheduler_.SaveState(w);
  // The RecoveryTracker stays the final section of every engine payload:
  // the recovery tests strip it off the tail to compare training state.
  recovery_tracker_.SaveState(w);
}

void SyncEngine::LoadState(CheckpointReader& r) {
  now_s_ = r.F64();
  rounds_run_ = r.Size();
  rejected_updates_ = r.Size();
  dropout_breakdown_.unavailable = r.Size();
  dropout_breakdown_.out_of_memory = r.Size();
  dropout_breakdown_.missed_deadline = r.Size();
  dropout_breakdown_.departed = r.Size();
  dropout_breakdown_.crashed = r.Size();
  dropout_breakdown_.corrupted = r.Size();
  dropout_breakdown_.rejected = r.Size();
  dropout_breakdown_.transfer_timed_out = r.Size();
  dropout_breakdown_.edge_orphaned = r.Size();
  dropout_breakdown_.shed = r.Size();
  dropout_breakdown_.duplicate = r.Size();
  dropout_breakdown_.replayed = r.Size();
  dropout_breakdown_.rate_limited = r.Size();
  dropout_breakdown_.backup_covered = r.Size();
  dropout_breakdown_.backup_redundant = r.Size();
  accuracy_history_ = r.F64Vec();
  const size_t n = r.Size();
  // A failed reader (truncated/corrupted archive) returns zeros; that is the
  // caller's error to report, not a process-aborting invariant violation.
  FLOATFL_CHECK_MSG(n == clients_.size() || !r.ok(), "checkpoint population size mismatch");
  if (n != clients_.size()) {
    return;
  }
  for (auto& client : clients_) {
    client.LoadState(r);
  }
  surrogate_->LoadState(r);
  accountant_.LoadState(r);
  tracker_.LoadState(r);
  injector_.LoadState(r);
  selector_->LoadState(r);
  const bool had_policy = r.Bool();
  FLOATFL_CHECK_MSG(had_policy == (policy_ != nullptr) || !r.ok(),
                    "checkpoint policy presence mismatch");
  if (had_policy != (policy_ != nullptr)) {
    return;
  }
  if (policy_ != nullptr) {
    policy_->LoadState(r);
  }
  agg_tracker_.LoadState(r);
  round_deadline_s_ = r.F64();
  transport_tracker_.LoadState(r);
  deadline_ctrl_.LoadState(r);
  guard_.LoadState(r);
  edge_injector_.LoadState(r);
  tree_.LoadState(r);
  topo_tracker_.LoadState(r);
  edge_deadline_ctrl_.LoadState(r);
  admission_.LoadState(r);
  update_log_.LoadState(r);
  admission_tracker_.LoadState(r);
  redundant_mb_ = r.F64();
  salvage_tracker_.LoadState(r);
  scheduler_.LoadState(r);
  recovery_tracker_.LoadState(r);
}

}  // namespace floatfl
