#include "src/fl/sync_engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace floatfl {
namespace {

// Server-side aggregation and bookkeeping gap between rounds, seconds.
constexpr double kRoundOverheadS = 10.0;

}  // namespace

SyncEngine::SyncEngine(const ExperimentConfig& config, Selector* selector, TuningPolicy* policy)
    : config_(config),
      selector_(selector),
      policy_(policy),
      clients_(BuildPopulation(GetDatasetSpec(config.dataset), config.num_clients, config.alpha,
                               config.interference, config.seed)),
      tracker_(config.num_clients) {
  const size_t threads = ResolveThreadCount(config.num_threads);
  if (threads > 1) {
    // The calling thread participates in every ParallelFor, so `threads`
    // total threads do client work.
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  FLOATFL_CHECK(selector_ != nullptr);
  FLOATFL_CHECK(config.clients_per_round > 0);
  if (config_.deadline_s <= 0.0) {
    config_.deadline_s = AutoDeadlineSeconds(config_, clients_);
  }
  reference_ = ComputePopulationReference(clients_);
  std::vector<ClientShard> shards;
  shards.reserve(clients_.size());
  for (const auto& c : clients_) {
    shards.push_back(c.shard());
  }
  surrogate_ = std::make_unique<SurrogateAccuracyModel>(
      SurrogateConfigFor(GetDatasetSpec(config.dataset),
                         static_cast<double>(config.clients_per_round)),
      shards);
}

ClientRoundOutcome SyncEngine::SimulateClient(Client& client, double now_s,
                                              TechniqueKind technique) const {
  ClientRoundOutcome outcome;
  outcome.client_id = client.id();
  outcome.technique = technique;

  const ModelProfile& model = GetModelProfile(config_.model);
  const DatasetSpec& dataset = GetDatasetSpec(config_.dataset);
  const ResourceAvailability avail = client.interference().At(now_s);

  RoundCostInputs inputs;
  inputs.model = &model;
  inputs.dataset = &dataset;
  inputs.local_samples = client.shard().total;
  inputs.epochs = config_.epochs;
  inputs.batch_size = config_.batch_size;
  inputs.technique = technique;
  inputs.device_gflops = client.compute().GflopsAt(now_s);
  inputs.bandwidth_mbps = client.network().BandwidthMbpsAt(now_s);
  inputs.device_memory_gb = client.compute().MemoryGb();
  inputs.availability = avail;
  outcome.costs = ComputeRoundCosts(inputs);

  const double deadline = config_.deadline_s;
  if (config_.assume_no_dropouts) {
    outcome.completed = true;
    outcome.time_spent_s = std::min(outcome.costs.total_time_s, deadline);
    return outcome;
  }

  if (!client.availability().IsAvailableAt(now_s)) {
    // Selected while offline: the server pushed a task that is never picked
    // up; only the model download attempt is charged.
    outcome.reason = DropoutReason::kUnavailable;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s *= 0.5;  // download leg only
    outcome.costs.peak_memory_mb = 0.0;
    outcome.time_spent_s = outcome.costs.comm_time_s;
    return outcome;
  }
  if (outcome.costs.out_of_memory) {
    // Training never starts; the model download is wasted.
    outcome.reason = DropoutReason::kOutOfMemory;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s *= 0.5;
    outcome.time_spent_s = outcome.costs.comm_time_s;
    return outcome;
  }
  if (outcome.costs.total_time_s > deadline) {
    // Straggler: works until the deadline, then the round closes without it.
    outcome.reason = DropoutReason::kMissedDeadline;
    outcome.deadline_diff = (outcome.costs.total_time_s - deadline) / deadline;
    const double frac = deadline / outcome.costs.total_time_s;
    outcome.costs.train_time_s *= frac;
    outcome.costs.comm_time_s *= frac;
    outcome.time_spent_s = deadline;
    return outcome;
  }
  if (!client.availability().AvailableFor(now_s, outcome.costs.total_time_s)) {
    // The device leaves (battery, user activity) mid-round.
    outcome.reason = DropoutReason::kDeparted;
    const double available = std::max(0.0, client.availability().PeriodEndAfter(now_s) - now_s);
    const double frac = std::min(1.0, available / outcome.costs.total_time_s);
    outcome.costs.train_time_s *= frac;
    outcome.costs.comm_time_s *= frac;
    outcome.time_spent_s = available;
    outcome.deadline_diff = (outcome.costs.total_time_s - available) / deadline;
    return outcome;
  }
  outcome.completed = true;
  outcome.time_spent_s = outcome.costs.total_time_s;
  return outcome;
}

void SyncEngine::RunRound(size_t round) {
  const std::vector<size_t> selected =
      selector_->Select(round, now_s_, config_.clients_per_round, clients_);

  GlobalObservation global;
  global.batch_size = config_.batch_size;
  global.epochs = config_.epochs;
  global.participants = config_.clients_per_round;

  // Phase 1 (sequential): observe each client and let the policy decide,
  // preserving the policy's internal draw order across thread counts.
  std::vector<ClientObservation> observations;
  std::vector<TechniqueKind> techniques;
  observations.reserve(selected.size());
  techniques.reserve(selected.size());
  for (size_t id : selected) {
    FLOATFL_CHECK(id < clients_.size());
    Client& client = clients_[id];
    observations.push_back(ObserveClient(client, now_s_, reference_));
    techniques.push_back(policy_ != nullptr ? policy_->Decide(id, observations.back(), global)
                                            : TechniqueKind::kNone);
  }

  // Phase 2 (parallel): simulate the selected clients. Each task touches
  // only its own client's trace state (selectors sample without
  // replacement), and outcomes land in an index-ordered buffer.
  std::vector<ClientRoundOutcome> outcomes(selected.size());
  ParallelFor(pool_.get(), selected.size(), [&](size_t i) {
    outcomes[i] = SimulateClient(clients_[selected[i]], now_s_, techniques[i]);
  });

  // Phase 3 (sequential, selection order): bookkeeping, so the accountant's
  // floating-point sums accumulate in a fixed order.
  for (size_t i = 0; i < selected.size(); ++i) {
    Client& client = clients_[selected[i]];
    const ClientRoundOutcome& outcome = outcomes[i];
    ++client.times_selected;
    if (outcome.completed) {
      ++client.times_completed;
    }
    client.last_round_duration_s = outcome.time_spent_s;
    client.UpdateDeadlineDiff(outcome.deadline_diff);

    accountant_.Record(outcome.costs.train_time_s, outcome.costs.comm_time_s,
                       outcome.costs.peak_memory_mb, outcome.completed);
    tracker_.Record(selected[i], techniques[i], outcome.completed);
    switch (outcome.reason) {
      case DropoutReason::kUnavailable:
        ++dropout_breakdown_.unavailable;
        break;
      case DropoutReason::kOutOfMemory:
        ++dropout_breakdown_.out_of_memory;
        break;
      case DropoutReason::kMissedDeadline:
        ++dropout_breakdown_.missed_deadline;
        break;
      case DropoutReason::kDeparted:
        ++dropout_breakdown_.departed;
        break;
      case DropoutReason::kNone:
        break;
    }
  }

  // Aggregate the successful updates into the convergence model.
  const double accuracy_before = surrogate_->GlobalAccuracy();
  std::vector<ClientContribution> contributions;
  double round_duration = 0.0;
  bool any_dropout = false;
  for (const auto& outcome : outcomes) {
    if (outcome.completed) {
      ClientContribution contribution;
      contribution.client_id = outcome.client_id;
      contribution.quality = 1.0 - EffectOf(outcome.technique).accuracy_impact;
      contributions.push_back(contribution);
      round_duration = std::max(round_duration, outcome.time_spent_s);
    } else {
      any_dropout = true;
    }
  }
  surrogate_->RoundUpdate(contributions);
  const double accuracy_delta = surrogate_->GlobalAccuracy() - accuracy_before;

  // Feedback to the tuning policy and the selector.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const auto& outcome = outcomes[i];
    if (policy_ != nullptr) {
      // The accuracy credit a client earns is the round's global improvement
      // scaled by the quality of its own (possibly optimized) update, so the
      // agent feels the accuracy cost of aggressive accelerations.
      const double client_accuracy_credit =
          accuracy_delta * (1.0 - EffectOf(outcome.technique).accuracy_impact);
      policy_->Report(outcome.client_id, observations[i], global, outcome.technique,
                      outcome.completed, client_accuracy_credit);
    }
    selector_->OnOutcome(outcome.client_id, outcome.completed, outcome.time_spent_s,
                         config_.deadline_s);
  }

  // A synchronous server waits out the deadline if anyone is missing.
  if (any_dropout) {
    round_duration = config_.deadline_s;
  }
  now_s_ += round_duration + kRoundOverheadS;
  accuracy_history_.push_back(surrogate_->GlobalAccuracy());
  ++rounds_run_;
}

ExperimentResult SyncEngine::Snapshot() const {
  ExperimentResult result;
  const std::vector<double> accuracies = surrogate_->AllClientAccuracies();
  result.accuracy_avg = Mean(accuracies);
  result.accuracy_top10 = TopFractionMean(accuracies, 0.10);
  result.accuracy_bottom10 = BottomFractionMean(accuracies, 0.10);
  result.global_accuracy = surrogate_->GlobalAccuracy();
  result.total_selected = tracker_.TotalSelected();
  result.total_completed = tracker_.TotalCompleted();
  result.total_dropouts = tracker_.TotalDropouts();
  result.never_selected = tracker_.NeverSelected();
  result.never_completed = tracker_.NeverCompleted();
  result.dropout_breakdown = dropout_breakdown_;
  result.useful = accountant_.Useful();
  result.wasted = accountant_.Wasted();
  result.wall_clock_hours = now_s_ / 3600.0;
  result.per_technique = tracker_.PerTechnique();
  result.accuracy_history = accuracy_history_;
  result.per_client_selected = tracker_.selected();
  result.per_client_completed = tracker_.completed();
  return result;
}

ExperimentResult SyncEngine::Run() {
  for (size_t round = rounds_run_; round < config_.rounds; ++round) {
    RunRound(round);
  }
  return Snapshot();
}

}  // namespace floatfl
