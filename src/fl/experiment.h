// Experiment configuration and result records shared by the synchronous and
// asynchronous engines and by every bench binary.
#ifndef SRC_FL_EXPERIMENT_H_
#define SRC_FL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/admission/admission_config.h"
#include "src/agg/aggregator_config.h"
#include "src/data/dataset.h"
#include "src/failure/fault_config.h"
#include "src/guard/guard_config.h"
#include "src/metrics/participation_tracker.h"
#include "src/metrics/resource_accountant.h"
#include "src/models/model_zoo.h"
#include "src/net/adaptive_deadline.h"
#include "src/opt/technique.h"
#include "src/salvage/salvage_config.h"
#include "src/topology/topology_config.h"
#include "src/trace/interference.h"

namespace floatfl {

struct ExperimentConfig {
  // Population and schedule (paper defaults, Section 6.1).
  size_t num_clients = 200;
  size_t clients_per_round = 30;
  size_t rounds = 300;
  size_t epochs = 5;
  size_t batch_size = 20;
  // Synchronous round deadline, seconds. 0 = auto-calibrate to twice the
  // population-median nominal round time (see AutoDeadlineSeconds).
  double deadline_s = 0.0;
  DatasetId dataset = DatasetId::kFemnist;
  ModelId model = ModelId::kResNet34;
  double alpha = 0.1;
  InterferenceScenario interference = InterferenceScenario::kDynamic;
  uint64_t seed = 42;
  // Figure-3 counterfactual: pretend every selected client completes.
  bool assume_no_dropouts = false;
  // FedBuff parameters (async engine only).
  size_t async_concurrency = 100;
  size_t async_buffer = 30;
  // Worker threads for per-client simulation. 0 = hardware_concurrency();
  // 1 = fully sequential (today's exact path). Results are bit-for-bit
  // identical for every value — see DESIGN.md "Determinism & parallelism".
  size_t num_threads = 0;
  // Reuse the engine's per-round scratch vectors across rounds instead of
  // re-allocating them each round (DESIGN.md §12). Scratch contents never
  // outlive one round, so results are bit-for-bit identical either way;
  // the toggle exists so bench/perf_harness can measure the before/after.
  // Excluded from checkpoint fingerprints, like num_threads.
  bool pool_round_scratch = true;
  // Fault injection and failure handling (DESIGN.md §8). The default
  // (all-zero) FaultConfig is a strict no-op: no fault draws happen and the
  // engines behave bit-for-bit as if the subsystem did not exist.
  FaultConfig faults;
  // Server-side aggregation rule (DESIGN.md §9). For the surrogate engines
  // the robust rules act on contribution qualities (src/agg/quality_agg.h);
  // the default kFedAvg is a strict pass-through.
  AggregatorConfig aggregator;
  // Server-side adaptive sync deadline (DESIGN.md §10). Default off: the
  // sync engine uses the static (auto-calibrated or explicit) deadline
  // byte-identically.
  AdaptiveDeadlineConfig adaptive_deadline;
  // Self-healing guard: divergence watchdog + last-known-good rollback +
  // action quarantine (DESIGN.md §11). Default off: strict no-op, every
  // pre-guard golden byte-identical.
  GuardConfig guard;
  // Hierarchical aggregation tree: clients -> edge aggregators -> root, with
  // edge-level fault injection and deterministic failover (DESIGN.md §13).
  // Default (num_edges == 0) keeps the flat star topology bit-for-bit.
  // Honored by the sync engine; the async engine keeps star semantics and
  // refuses an enabled topology at construction.
  TopologyConfig topology;
  // Server-ingestion admission layer: bounded ingress queue + shedding,
  // idempotent duplicate folding, per-client rate limiting, and the async
  // bounded-staleness rule (DESIGN.md §15). Default off: strict byte-for-byte
  // no-op (async_max_staleness keeps its pinned pre-config default).
  AdmissionConfig admission;
  // Graceful degradation for stragglers: partial-work salvage and
  // speculative re-execution (DESIGN.md §16). Default off: all-or-nothing
  // rounds, every pre-salvage golden byte-identical. Speculation is honored
  // by the sync engine; the async engine has no round deadline and refuses
  // it at construction, like topology.
  SalvageConfig salvage;
};

// Aborts the process with a descriptive message when `config` violates an
// engine invariant. Called by every engine constructor so misconfigurations
// fail at construction, not rounds later.
void ValidateExperimentConfig(const ExperimentConfig& config);

// Why a selected client's round produced no aggregated update. Shared by the
// sync and async engines (and mapped onto by the real engine). The fixed
// underlying type lets metric/guard headers forward-declare the enum without
// pulling in this header.
enum class DropoutReason : uint32_t {
  kNone,
  kUnavailable,     // selected while offline (or during a network blackout)
  kOutOfMemory,
  kMissedDeadline,
  kDeparted,        // availability ended mid-round
  kCrashed,         // injected mid-training process crash
  kCorrupted,       // update failed server-side validation (quarantined)
  kRejected,        // valid but abandoned (over-selection closed the round)
  kTransferTimedOut,  // lossy transport exhausted retries / transfer budget
  kEdgeOrphaned,    // every edge in the client's failover chain was down
  kShed,            // bounded ingress queue full; shed per the configured policy
  kDuplicate,       // at-least-once re-delivery folded by idempotent admission
  kReplayed,        // stale upload from a past round, rejected by the age gate
  kRateLimited,     // the client's token bucket ran dry
  kBackupCovered,   // interrupted primary whose speculative backup delivered
  kBackupRedundant, // speculative execution that lost the first-valid-wins race
};

struct DropoutBreakdown {
  size_t unavailable = 0;   // selected while offline
  size_t out_of_memory = 0;
  size_t missed_deadline = 0;
  size_t departed = 0;      // availability ended mid-round
  size_t crashed = 0;       // injected mid-training crashes
  size_t corrupted = 0;     // updates quarantined by server-side validation
  size_t rejected = 0;      // abandoned by over-selection round close
  size_t transfer_timed_out = 0;  // lossy transport exhausted retries/budget
  size_t edge_orphaned = 0;  // no live edge aggregator to report to
  size_t shed = 0;           // shed by the bounded ingress queue
  size_t duplicate = 0;      // re-deliveries folded by idempotent admission
  size_t replayed = 0;       // stale replays rejected by the age gate
  size_t rate_limited = 0;   // deliveries refused by the token bucket
  size_t backup_covered = 0;   // interrupted primaries whose backup delivered
  size_t backup_redundant = 0; // speculative executions charged as redundant

  size_t Total() const {
    return unavailable + out_of_memory + missed_deadline + departed + crashed + corrupted +
           rejected + transfer_timed_out + edge_orphaned + shed + duplicate + replayed +
           rate_limited + backup_covered + backup_redundant;
  }
};

struct ExperimentResult {
  // Final per-client accuracy statistics (paper's Top-10% / avg / Bottom-10%).
  double accuracy_avg = 0.0;
  double accuracy_top10 = 0.0;
  double accuracy_bottom10 = 0.0;
  double global_accuracy = 0.0;

  size_t total_selected = 0;
  size_t total_completed = 0;
  size_t total_dropouts = 0;
  size_t never_selected = 0;
  size_t never_completed = 0;
  DropoutBreakdown dropout_breakdown;
  // Updates quarantined by server-side validation (subset of
  // dropout_breakdown.corrupted bookkeeping; kept as its own counter so
  // defenses are visible without decoding the breakdown).
  size_t rejected_updates = 0;
  // Attack-vs-defense totals (src/metrics/aggregation_tracker.h): selected
  // Byzantine attackers and the contributions the robust aggregation rule
  // excluded (trimmed tails, Krum rejections). All zero when no attack and
  // the default aggregator are configured.
  size_t byzantine_selected = 0;
  size_t krum_rejections = 0;
  size_t updates_trimmed = 0;
  // Lossy-transport totals (src/metrics/transport_tracker.h). All zero when
  // the transport is disabled. wire_mb is total bytes put on the wire
  // (payload + retransmissions) — the bytes-moved figure the perf harness
  // reports (DESIGN.md §12).
  size_t transfer_attempts = 0;
  double wire_mb = 0.0;
  double retransmitted_mb = 0.0;
  double salvaged_mb = 0.0;
  double transfer_backoff_s = 0.0;
  // Self-healing totals (src/metrics/guard_tracker.h). All zero when the
  // guard is disabled.
  size_t guard_snapshots = 0;
  size_t watchdog_triggers = 0;
  size_t rollbacks = 0;
  size_t quarantined_actions = 0;  // Decide() results masked to kNone
  size_t quarantine_openings = 0;  // per-technique cooldown windows opened
  size_t rejected_rewards = 0;
  size_t safe_mode_rounds = 0;
  // Hierarchical-topology totals (src/metrics/topology_tracker.h). All zero
  // on the flat star topology (num_edges == 0).
  size_t edge_crashes = 0;
  size_t edge_blackouts = 0;
  size_t reparented_clients = 0;
  size_t orphaned_clients = 0;
  size_t partials_forwarded = 0;
  size_t partials_lost = 0;
  size_t tampered_partials = 0;
  size_t tampered_rejections = 0;
  size_t late_partials = 0;
  double tier1_wire_mb = 0.0;
  double tier1_retransmitted_mb = 0.0;
  // Crash-recovery totals (src/metrics/recovery_tracker.h). All zero when no
  // RunSupervisor drives the run; cumulative across process lives because the
  // tracker rides inside the engine checkpoint (DESIGN.md §14).
  size_t recovery_restarts = 0;
  size_t recovery_archives_skipped = 0;
  size_t recovery_rounds_replayed = 0;
  size_t recovery_checkpoints_written = 0;
  size_t recovery_checkpoints_failed = 0;
  // Server-ingestion totals (src/metrics/admission_tracker.h). All zero when
  // the admission layer is disabled. redundant_mb is the wire volume of
  // duplicate/replay deliveries an unguarded server fully re-processed —
  // the wasted-work figure the admission gate exists to cut.
  size_t admission_admitted = 0;
  size_t admission_deduplicated = 0;
  size_t admission_shed = 0;
  size_t admission_rate_limited = 0;
  size_t admission_replay_rejected = 0;
  size_t admission_peak_queue_depth = 0;
  double redundant_mb = 0.0;
  // Graceful-degradation totals (src/metrics/salvage_tracker.h). All zero
  // when the salvage layer is disabled. transfer_progress_mb is the unique
  // acked payload bytes across every transfer — on timed-out transfers, the
  // salvageable-progress figure the partial-update path consumes, kept
  // distinct from salvaged_mb/redundant_mb so no byte is double-charged.
  size_t partials_salvaged = 0;
  size_t partials_below_min = 0;
  size_t partials_rejected = 0;
  uint64_t salvaged_steps = 0;
  double salvaged_progress_mb = 0.0;
  size_t backups_planned = 0;
  size_t backups_won = 0;
  size_t backups_redundant = 0;
  size_t deadline_misses_averted = 0;
  double transfer_progress_mb = 0.0;

  ResourceTotals useful;
  ResourceTotals wasted;
  double wall_clock_hours = 0.0;

  std::map<TechniqueKind, ParticipationTracker::TechniqueStats> per_technique;
  // Per-technique failure attribution: dropout counts keyed by the technique
  // the client was running, then by the raw DropoutReason value. Feeds the
  // guard's quarantine heuristic and is useful standalone.
  std::map<TechniqueKind, std::map<uint32_t, size_t>> per_technique_dropouts;
  std::vector<double> accuracy_history;       // global accuracy per round
  std::vector<size_t> per_client_selected;
  std::vector<size_t> per_client_completed;
};

}  // namespace floatfl

#endif  // SRC_FL_EXPERIMENT_H_
