#include "src/fl/async_engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/fl/cost_model.h"

namespace floatfl {

AsyncEngine::AsyncEngine(const ExperimentConfig& config, TuningPolicy* policy)
    : config_(config),
      policy_(policy),
      clients_(BuildPopulation(GetDatasetSpec(config.dataset), config.num_clients, config.alpha,
                               config.interference, config.seed)),
      tracker_(config.num_clients),
      rng_(config.seed ^ 0xA5F1C3D2E4B60789ULL),
      busy_(config.num_clients, false) {
  FLOATFL_CHECK(config.async_concurrency > 0);
  FLOATFL_CHECK(config.async_buffer > 0);
  const size_t threads = ResolveThreadCount(config.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  if (config_.deadline_s <= 0.0) {
    config_.deadline_s = AutoDeadlineSeconds(config_, clients_);
  }
  reference_ = ComputePopulationReference(clients_);
  std::vector<ClientShard> shards;
  shards.reserve(clients_.size());
  for (const auto& c : clients_) {
    shards.push_back(c.shard());
  }
  // The surrogate's participation target for async FL is the buffer size:
  // each aggregation folds in `async_buffer` updates.
  surrogate_ = std::make_unique<SurrogateAccuracyModel>(
      SurrogateConfigFor(GetDatasetSpec(config.dataset),
                         static_cast<double>(config.async_buffer)),
      shards);
}

ClientRoundOutcome AsyncEngine::SimulateAsyncClient(Client& client, double now_s,
                                                    TechniqueKind technique) const {
  ClientRoundOutcome outcome;
  outcome.client_id = client.id();
  outcome.technique = technique;

  const ModelProfile& model = GetModelProfile(config_.model);
  const DatasetSpec& dataset = GetDatasetSpec(config_.dataset);
  const ResourceAvailability avail = client.interference().At(now_s);

  RoundCostInputs inputs;
  inputs.model = &model;
  inputs.dataset = &dataset;
  inputs.local_samples = client.shard().total;
  inputs.epochs = config_.epochs;
  inputs.batch_size = config_.batch_size;
  inputs.technique = technique;
  inputs.device_gflops = client.compute().GflopsAt(now_s);
  inputs.bandwidth_mbps = client.network().BandwidthMbpsAt(now_s);
  inputs.device_memory_gb = client.compute().MemoryGb();
  inputs.availability = avail;
  outcome.costs = ComputeRoundCosts(inputs);

  if (config_.assume_no_dropouts) {
    outcome.completed = true;
    outcome.time_spent_s = outcome.costs.total_time_s;
    return outcome;
  }
  if (outcome.costs.out_of_memory) {
    outcome.reason = DropoutReason::kOutOfMemory;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s *= 0.5;
    outcome.costs.peak_memory_mb = 0.0;
    outcome.time_spent_s = outcome.costs.comm_time_s;
    return outcome;
  }
  // Async FL has no hard deadline, but a device that leaves mid-training
  // still loses its work.
  if (!client.availability().AvailableFor(now_s, outcome.costs.total_time_s)) {
    outcome.reason = DropoutReason::kDeparted;
    const double available = std::max(0.0, client.availability().PeriodEndAfter(now_s) - now_s);
    const double frac = std::min(1.0, available / std::max(1e-9, outcome.costs.total_time_s));
    outcome.costs.train_time_s *= frac;
    outcome.costs.comm_time_s *= frac;
    outcome.time_spent_s = available;
    // The overshoot relative to the sync deadline still informs the agent.
    outcome.deadline_diff =
        std::max(0.0, (outcome.costs.total_time_s - available) / config_.deadline_s);
    return outcome;
  }
  outcome.completed = true;
  outcome.time_spent_s = outcome.costs.total_time_s;
  return outcome;
}

void AsyncEngine::LaunchClients() {
  GlobalObservation global;
  global.batch_size = config_.batch_size;
  global.epochs = config_.epochs;
  global.participants = config_.async_concurrency;

  // Collect idle, currently-available clients.
  std::vector<size_t> candidates;
  for (const auto& client : clients_) {
    if (!busy_[client.id()]) {
      candidates.push_back(client.id());
    }
  }
  // Uniformly random launch order (FedBuff does not rank clients).
  // Phase 1 (sequential): pick the launch batch and run the policy, keeping
  // the RNG and policy draw order fixed across thread counts.
  const std::vector<size_t> order = rng_.Permutation(candidates.size());
  std::vector<InFlight> launches;
  for (size_t idx : order) {
    if (in_flight_.size() + launches.size() >= config_.async_concurrency) {
      break;
    }
    const size_t id = candidates[idx];
    Client& client = clients_[id];
    if (!config_.assume_no_dropouts && !client.availability().IsAvailableAt(now_s_)) {
      continue;
    }
    InFlight flight;
    flight.client_id = id;
    flight.start_version = version_;
    flight.observation = ObserveClient(client, now_s_, reference_);
    flight.technique =
        policy_ != nullptr ? policy_->Decide(id, flight.observation, global) : TechniqueKind::kNone;
    launches.push_back(flight);
    busy_[id] = true;
    ++client.times_selected;
  }

  // Phase 2 (parallel): simulate the batch. Each task touches only its own
  // client's trace state (launch ids are distinct by the busy_ guard).
  ParallelFor(pool_.get(), launches.size(), [&](size_t i) {
    InFlight& flight = launches[i];
    flight.outcome = SimulateAsyncClient(clients_[flight.client_id], now_s_, flight.technique);
    flight.finish_time_s = now_s_ + std::max(1.0, flight.outcome.time_spent_s);
  });

  // Phase 3 (sequential, launch order): commit to the in-flight set.
  for (auto& flight : launches) {
    in_flight_.push_back(flight);
  }
}

ExperimentResult AsyncEngine::Run() {
  GlobalObservation global;
  global.batch_size = config_.batch_size;
  global.epochs = config_.epochs;
  global.participants = config_.async_concurrency;

  while (version_ < config_.rounds) {
    LaunchClients();
    if (in_flight_.empty()) {
      // Nobody available right now; let time pass.
      now_s_ += 60.0;
      continue;
    }
    // Pop the earliest finisher.
    size_t next = 0;
    for (size_t i = 1; i < in_flight_.size(); ++i) {
      if (in_flight_[i].finish_time_s < in_flight_[next].finish_time_s) {
        next = i;
      }
    }
    InFlight flight = in_flight_[next];
    in_flight_[next] = in_flight_.back();
    in_flight_.pop_back();
    busy_[flight.client_id] = false;
    now_s_ = std::max(now_s_, flight.finish_time_s);

    Client& client = clients_[flight.client_id];
    const double staleness = static_cast<double>(version_ - flight.start_version);
    bool accepted = false;
    if (flight.outcome.completed && staleness <= kMaxStaleness) {
      ClientContribution contribution;
      contribution.client_id = flight.client_id;
      contribution.quality = 1.0 - EffectOf(flight.technique).accuracy_impact;
      contribution.staleness = staleness;
      buffer_.push_back(contribution);
      accepted = true;
      ++client.times_completed;
    } else {
      switch (flight.outcome.reason) {
        case DropoutReason::kOutOfMemory:
          ++dropout_breakdown_.out_of_memory;
          break;
        case DropoutReason::kDeparted:
          ++dropout_breakdown_.departed;
          break;
        default:
          // Completed but too stale: the work is discarded.
          ++dropout_breakdown_.missed_deadline;
          break;
      }
    }
    client.last_round_duration_s = flight.outcome.time_spent_s;
    client.UpdateDeadlineDiff(flight.outcome.deadline_diff);
    accountant_.Record(flight.outcome.costs.train_time_s, flight.outcome.costs.comm_time_s,
                       flight.outcome.costs.peak_memory_mb, accepted);
    tracker_.Record(flight.client_id, flight.technique, accepted);
    if (policy_ != nullptr) {
      const double client_accuracy_credit =
          last_accuracy_delta_ * (1.0 - EffectOf(flight.technique).accuracy_impact);
      policy_->Report(flight.client_id, flight.observation, global, flight.technique, accepted,
                      client_accuracy_credit);
    }

    if (buffer_.size() >= config_.async_buffer) {
      const double before = surrogate_->GlobalAccuracy();
      surrogate_->RoundUpdate(buffer_);
      last_accuracy_delta_ = surrogate_->GlobalAccuracy() - before;
      buffer_.clear();
      ++version_;
      accuracy_history_.push_back(surrogate_->GlobalAccuracy());
    }
  }

  ExperimentResult result;
  const std::vector<double> accuracies = surrogate_->AllClientAccuracies();
  result.accuracy_avg = Mean(accuracies);
  result.accuracy_top10 = TopFractionMean(accuracies, 0.10);
  result.accuracy_bottom10 = BottomFractionMean(accuracies, 0.10);
  result.global_accuracy = surrogate_->GlobalAccuracy();
  result.total_selected = tracker_.TotalSelected();
  result.total_completed = tracker_.TotalCompleted();
  result.total_dropouts = tracker_.TotalDropouts();
  result.never_selected = tracker_.NeverSelected();
  result.never_completed = tracker_.NeverCompleted();
  result.dropout_breakdown = dropout_breakdown_;
  result.useful = accountant_.Useful();
  result.wasted = accountant_.Wasted();
  result.wall_clock_hours = now_s_ / 3600.0;
  result.per_technique = tracker_.PerTechnique();
  result.accuracy_history = accuracy_history_;
  result.per_client_selected = tracker_.selected();
  result.per_client_completed = tracker_.completed();
  return result;
}

}  // namespace floatfl
