#include "src/fl/async_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/agg/quality_agg.h"
#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/failure/checkpoint_util.h"
#include "src/fl/cost_model.h"

namespace floatfl {

AsyncEngine::AsyncEngine(const ExperimentConfig& config, TuningPolicy* policy)
    : config_(config),
      policy_(policy),
      clients_(BuildPopulation(GetDatasetSpec(config.dataset), config.num_clients, config.alpha,
                               config.interference, config.seed)),
      tracker_(config.num_clients),
      rng_(config.seed ^ 0xA5F1C3D2E4B60789ULL),
      busy_(config.num_clients, false) {
  ValidateExperimentConfig(config_);
  // FedBuff's per-client pacing has no round boundary an edge tier could
  // aggregate at; the async engine keeps star semantics and refuses an
  // enabled topology rather than silently ignoring it.
  FLOATFL_CHECK_MSG(!config_.topology.enabled(),
                    "async engine does not support hierarchical topology");
  // Speculation hedges against a round deadline; async FL has none, so a
  // backup could never beat its primary to anything. Refuse rather than
  // silently ignore (partial-work salvage is supported).
  FLOATFL_CHECK_MSG(!config_.salvage.speculation,
                    "async engine does not support speculative re-execution");
  injector_ = FaultInjector(config_.faults, config_.seed, config_.num_clients);
  transport_ = Transport(config_.faults, config_.seed);
  guard_ = TrainingGuard(config_.guard);
  overload_ = OverloadInjector(config_.faults, config_.seed);
  admission_ = AdmissionController(config_.admission);
  update_log_ = UpdateLog(config_.num_clients);
  const size_t threads = ResolveThreadCount(config.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  if (config_.deadline_s <= 0.0) {
    config_.deadline_s = AutoDeadlineSeconds(config_, clients_);
  }
  reference_ = ComputePopulationReference(clients_);
  std::vector<ClientShard> shards;
  shards.reserve(clients_.size());
  for (const auto& c : clients_) {
    shards.push_back(c.shard());
  }
  // The surrogate's participation target for async FL is the buffer size:
  // each aggregation folds in `async_buffer` updates.
  surrogate_ = std::make_unique<SurrogateAccuracyModel>(
      SurrogateConfigFor(GetDatasetSpec(config.dataset),
                         static_cast<double>(config.async_buffer)),
      shards);
}

ClientRoundOutcome AsyncEngine::SimulateAsyncClient(Client& client, size_t transfer_round,
                                                    double now_s, TechniqueKind technique,
                                                    const FaultDecision& fault) const {
  ClientRoundOutcome outcome;
  outcome.client_id = client.id();
  outcome.technique = technique;

  const ModelProfile& model = GetModelProfile(config_.model);
  const DatasetSpec& dataset = GetDatasetSpec(config_.dataset);
  const ResourceAvailability avail = client.interference().At(now_s);

  RoundCostInputs inputs;
  inputs.model = &model;
  inputs.dataset = &dataset;
  inputs.local_samples = client.shard().total;
  inputs.epochs = config_.epochs;
  inputs.batch_size = config_.batch_size;
  inputs.technique = technique;
  inputs.device_gflops = client.compute().GflopsAt(now_s);
  inputs.bandwidth_mbps = client.network().BandwidthMbpsAt(now_s);
  inputs.device_memory_gb = client.compute().MemoryGb();
  inputs.availability = avail;
  outcome.costs = ComputeRoundCosts(inputs);

  // Salvage metadata (DESIGN.md §16); see SyncEngine::SimulateClient. Pure
  // arithmetic, filled in even when salvage is disabled.
  outcome.salvage_total_steps =
      TotalLocalSteps(inputs.local_samples, config_.epochs, config_.batch_size);
  auto mark_salvage = [&outcome](double trained_s, double train_time_s) {
    outcome.salvage_fraction =
        CompletedStepFraction(trained_s, train_time_s, outcome.salvage_total_steps);
    outcome.salvage_steps = static_cast<size_t>(std::llround(
        outcome.salvage_fraction * static_cast<double>(outcome.salvage_total_steps)));
  };

  if (config_.assume_no_dropouts) {
    // Injected faults still apply in the counterfactual (see SyncEngine).
    if (fault.crash) {
      mark_salvage(fault.crash_fraction * outcome.costs.total_time_s -
                       0.5 * outcome.costs.comm_time_s,
                   outcome.costs.train_time_s);
      outcome.reason = DropoutReason::kCrashed;
      outcome.costs.train_time_s *= fault.crash_fraction;
      outcome.costs.comm_time_s *= fault.crash_fraction;
      outcome.time_spent_s = fault.crash_fraction * outcome.costs.total_time_s;
      return outcome;
    }
    outcome.completed = true;
    outcome.time_spent_s = outcome.costs.total_time_s;
    if (fault.corrupt) {
      outcome.corrupted = true;
      outcome.corrupt_kind = fault.corrupt_kind;
    }
    outcome.byzantine = fault.byzantine;
    return outcome;
  }
  if (outcome.costs.out_of_memory) {
    outcome.reason = DropoutReason::kOutOfMemory;
    outcome.costs.train_time_s = 0.0;
    outcome.costs.comm_time_s *= 0.5;
    outcome.costs.peak_memory_mb = 0.0;
    outcome.time_spent_s = outcome.costs.comm_time_s;
    return outcome;
  }

  if (transport_.enabled()) {
    // Lossy-transport path (DESIGN.md §10). Async FL has no round deadline,
    // so transfers only fail by exhausting their retry budget; a timed-out
    // client simply surfaces late with nothing to aggregate.
    const CostEffect& effect = EffectOf(technique);
    const double kNoBudget = std::numeric_limits<double>::infinity();
    TransferOptions download_opts;
    download_opts.payload_mb = model.weight_mb;
    download_opts.start_s = now_s;
    download_opts.budget_s = kNoBudget;
    download_opts.leg = TransferLeg::kDownload;
    download_opts.resumable = true;
    download_opts.availability = avail.network;
    const TransferResult download =
        transport_.Transfer(transfer_round, client.id(), client.network(), download_opts);
    outcome.transfer_attempts = download.attempts;
    outcome.retransmitted_mb = download.retransmitted_mb;
    outcome.salvaged_mb = download.salvaged_mb;
    outcome.transfer_progress_mb = download.progress_mb;
    outcome.transfer_backoff_s = download.backoff_s;
    if (!download.delivered) {
      outcome.reason = DropoutReason::kTransferTimedOut;
      outcome.costs.train_time_s = 0.0;
      outcome.costs.comm_time_s = download.wire_time_s;
      outcome.costs.traffic_mb = download.wire_mb;
      outcome.costs.peak_memory_mb = 0.0;
      outcome.time_spent_s = download.elapsed_s;
      return outcome;
    }
    const double train_time = outcome.costs.train_time_s;
    TransferOptions upload_opts;
    upload_opts.payload_mb = model.weight_mb * effect.comm_mult;
    upload_opts.start_s = now_s + download.elapsed_s + train_time;
    upload_opts.budget_s = kNoBudget;
    upload_opts.leg = TransferLeg::kUpload;
    upload_opts.resumable = config_.faults.resumable_uploads;
    upload_opts.availability = avail.network;
    const TransferResult upload =
        transport_.Transfer(transfer_round, client.id(), client.network(), upload_opts);
    outcome.transfer_attempts += upload.attempts;
    outcome.retransmitted_mb += upload.retransmitted_mb;
    outcome.salvaged_mb += upload.salvaged_mb;
    outcome.transfer_progress_mb += upload.progress_mb;
    outcome.transfer_backoff_s += upload.backoff_s;
    const double total_time = download.elapsed_s + train_time + upload.elapsed_s;
    outcome.costs.comm_time_s = download.wire_time_s + upload.wire_time_s;
    outcome.costs.traffic_mb = download.wire_mb + upload.wire_mb;
    outcome.costs.total_time_s = total_time;
    if (fault.crash) {
      const double crash_time = fault.crash_fraction * total_time;
      if (client.availability().AvailableFor(now_s, crash_time)) {
        mark_salvage(crash_time - download.elapsed_s, train_time);
        outcome.reason = DropoutReason::kCrashed;
        outcome.costs.train_time_s *= fault.crash_fraction;
        outcome.costs.comm_time_s *= fault.crash_fraction;
        outcome.time_spent_s = crash_time;
        return outcome;
      }
    }
    if (!upload.delivered) {
      // Training finished; the salvageable partial is the acked prefix of
      // the upload the server already holds, measured in payload bytes.
      outcome.salvage_fraction =
          upload_opts.payload_mb > 0.0
              ? std::min(1.0, upload.progress_mb / upload_opts.payload_mb)
              : 0.0;
      outcome.salvage_steps =
          outcome.salvage_fraction > 0.0 ? outcome.salvage_total_steps : 0;
      outcome.reason = DropoutReason::kTransferTimedOut;
      outcome.time_spent_s = total_time;
      return outcome;
    }
    if (!client.availability().AvailableFor(now_s, total_time)) {
      outcome.reason = DropoutReason::kDeparted;
      const double available =
          std::max(0.0, client.availability().PeriodEndAfter(now_s) - now_s);
      mark_salvage(available - download.elapsed_s, train_time);
      const double frac = std::min(1.0, available / std::max(1e-9, total_time));
      outcome.costs.train_time_s *= frac;
      outcome.costs.comm_time_s *= frac;
      outcome.time_spent_s = available;
      outcome.deadline_diff =
          std::max(0.0, (total_time - available) / config_.deadline_s);
      return outcome;
    }
    outcome.completed = true;
    outcome.time_spent_s = total_time;
    const double transfer_secs = outcome.costs.comm_time_s + outcome.transfer_backoff_s;
    if (transfer_secs > 0.0) {
      outcome.effective_mbps =
          (download_opts.payload_mb + upload_opts.payload_mb) * 8.0 / transfer_secs;
    }
    if (fault.corrupt) {
      outcome.corrupted = true;
      outcome.corrupt_kind = fault.corrupt_kind;
    }
    outcome.byzantine = fault.byzantine;
    return outcome;
  }

  if (fault.crash) {
    // The process dies mid-round if the device is still around at that
    // point; otherwise the departure below ends the round first, benignly.
    const double crash_time = fault.crash_fraction * outcome.costs.total_time_s;
    if (client.availability().AvailableFor(now_s, crash_time)) {
      // The download (half the comm budget) precedes training.
      mark_salvage(crash_time - 0.5 * outcome.costs.comm_time_s, outcome.costs.train_time_s);
      outcome.reason = DropoutReason::kCrashed;
      outcome.costs.train_time_s *= fault.crash_fraction;
      outcome.costs.comm_time_s *= fault.crash_fraction;
      outcome.time_spent_s = crash_time;
      return outcome;
    }
  }
  // Async FL has no hard deadline, but a device that leaves mid-training
  // still loses its work.
  if (!client.availability().AvailableFor(now_s, outcome.costs.total_time_s)) {
    outcome.reason = DropoutReason::kDeparted;
    const double available = std::max(0.0, client.availability().PeriodEndAfter(now_s) - now_s);
    const double frac = std::min(1.0, available / std::max(1e-9, outcome.costs.total_time_s));
    mark_salvage(frac * outcome.costs.train_time_s, outcome.costs.train_time_s);
    outcome.costs.train_time_s *= frac;
    outcome.costs.comm_time_s *= frac;
    outcome.time_spent_s = available;
    // The overshoot relative to the sync deadline still informs the agent.
    outcome.deadline_diff =
        std::max(0.0, (outcome.costs.total_time_s - available) / config_.deadline_s);
    return outcome;
  }
  outcome.completed = true;
  outcome.time_spent_s = outcome.costs.total_time_s;
  if (fault.corrupt) {
    outcome.corrupted = true;
    outcome.corrupt_kind = fault.corrupt_kind;
  }
  outcome.byzantine = fault.byzantine;
  return outcome;
}

void AsyncEngine::LaunchClients() {
  // A network blackout cuts the server off entirely: no launches until the
  // window passes (in-flight clients keep training locally).
  if (injector_.enabled() && injector_.InBlackout(now_s_)) {
    return;
  }

  GlobalObservation global;
  global.batch_size = config_.batch_size;
  global.epochs = config_.epochs;
  global.participants = config_.async_concurrency;

  // Collect idle, currently-available clients (minus failure cooldowns,
  // keyed by the aggregation version — async FL's round analogue).
  std::vector<size_t>& candidates = scratch_.candidates;
  candidates.clear();
  for (const auto& client : clients_) {
    if (!busy_[client.id()] && client.cooldown_until_round <= version_) {
      candidates.push_back(client.id());
    }
  }
  // Uniformly random launch order (FedBuff does not rank clients).
  // Phase 1 (sequential): pick the launch batch and run the policy, keeping
  // the RNG and policy draw order fixed across thread counts. Fault draws
  // are keyed by the client's launch count, async FL's per-client round.
  const std::vector<size_t> order = rng_.Permutation(candidates.size());
  std::vector<InFlight>& launches = scratch_.launches;
  std::vector<FaultDecision>& faults = scratch_.faults;
  // Per-launch transport key: the client's launch count before this launch
  // (same key as the fault decision above).
  std::vector<size_t>& transfer_rounds = scratch_.transfer_rounds;
  launches.clear();
  faults.clear();
  transfer_rounds.clear();
  for (size_t idx : order) {
    if (in_flight_.size() + launches.size() >= config_.async_concurrency) {
      break;
    }
    const size_t id = candidates[idx];
    Client& client = clients_[id];
    if (!config_.assume_no_dropouts && !client.availability().IsAvailableAt(now_s_)) {
      continue;
    }
    InFlight flight;
    flight.client_id = id;
    flight.start_version = version_;
    flight.observation = ObserveClient(client, now_s_, reference_);
    // Decide always runs (fixed policy draw order); the guard may then mask
    // the action to kNone under safe mode or quarantine.
    flight.technique = guard_.Filter(
        policy_ != nullptr ? policy_->Decide(id, flight.observation, global) : TechniqueKind::kNone,
        version_);
    faults.push_back(injector_.enabled()
                         ? injector_.Decide(client.times_selected, id, now_s_)
                         : FaultDecision());
    transfer_rounds.push_back(client.times_selected);
    launches.push_back(flight);
    busy_[id] = true;
    ++client.times_selected;
  }

  // Phase 2 (parallel): simulate the batch. Each task touches only its own
  // client's trace state (launch ids are distinct by the busy_ guard).
  ParallelFor(pool_.get(), launches.size(), [&](size_t i) {
    InFlight& flight = launches[i];
    flight.outcome = SimulateAsyncClient(clients_[flight.client_id], transfer_rounds[i], now_s_,
                                         flight.technique, faults[i]);
    flight.finish_time_s = now_s_ + std::max(1.0, flight.outcome.time_spent_s);
  });

  // Phase 3 (sequential, launch order): commit to the in-flight set.
  for (auto& flight : launches) {
    in_flight_.push_back(flight);
  }
  if (!config_.pool_round_scratch) {
    scratch_.Release();
  }
}

void AsyncEngine::StepOnce() {
  injector_.BeginRound(version_);
  guard_.BeginRound(version_);

  GlobalObservation global;
  global.batch_size = config_.batch_size;
  global.epochs = config_.epochs;
  global.participants = config_.async_concurrency;

  LaunchClients();
  if (in_flight_.empty()) {
    // Nobody available right now; let time pass.
    now_s_ += 60.0;
    return;
  }
  // Pop the earliest finisher.
  size_t next = 0;
  for (size_t i = 1; i < in_flight_.size(); ++i) {
    if (in_flight_[i].finish_time_s < in_flight_[next].finish_time_s) {
      next = i;
    }
  }
  InFlight flight = in_flight_[next];
  in_flight_[next] = in_flight_.back();
  in_flight_.pop_back();
  busy_[flight.client_id] = false;
  now_s_ = std::max(now_s_, flight.finish_time_s);

  Client& client = clients_[flight.client_id];
  const double staleness = static_cast<double>(version_ - flight.start_version);
  bool accepted = false;
  DropoutReason drop_reason = DropoutReason::kNone;
  if (!flight.outcome.completed) {
    drop_reason = flight.outcome.reason == DropoutReason::kNone ? DropoutReason::kMissedDeadline
                                                                : flight.outcome.reason;
  } else if (staleness > config_.admission.async_max_staleness) {
    // Completed but too stale: the work is discarded. The bound is the old
    // hardcoded kMaxStaleness constant, now configurable (DESIGN.md §15);
    // its pinned default keeps this branch byte-identical.
    drop_reason = DropoutReason::kMissedDeadline;
  } else if (flight.outcome.corrupted &&
             !IsValidUpdateQuality(PoisonedQuality(flight.outcome.corrupt_kind))) {
    // Server-side validation quarantines the poisoned update.
    drop_reason = DropoutReason::kCorrupted;
    ++rejected_updates_;
  } else {
    ClientContribution contribution;
    contribution.client_id = flight.client_id;
    contribution.quality = 1.0 - EffectOf(flight.technique).accuracy_impact;
    if (flight.outcome.byzantine) {
      // The attack key uses the model version the attacker trained against —
      // both it and the byzantine flag ride in the serialized flight, so the
      // crafted quality is identical across thread counts and resumes.
      contribution.quality =
          injector_.AttackedQuality(contribution.quality, flight.start_version, flight.client_id);
    }
    contribution.staleness = staleness;
    bool admit_ok = true;
    if (!overload_.enabled() && !admission_.enabled()) {
      buffer_.push_back(contribution);
    } else {
      // Server ingestion (DESIGN.md §15): one retirement is one ingestion
      // burst — the delivered upload plus whatever at-least-once duplicates
      // of it and replays of the client's last accepted upload the overload
      // injector adds, keyed by the aggregation version. The admission gate
      // rules on the burst in arrival order; a redundant delivery that
      // passes (or meets an unguarded server) is re-processed in full —
      // waste plus an extra stale copy in the aggregation buffer.
      struct IngressDelivery {
        AdmissionController::Arrival arrival;
        bool redundant = false;
        TechniqueKind technique = TechniqueKind::kNone;
        double quality = 0.0;
        double upload_comm_s = 0.0;
        double upload_mb = 0.0;
      };
      // The launch count keys the upload (like the fault and transport
      // streams): a client can legitimately upload twice against the same
      // model version, so only true re-deliveries may share a dedup key.
      const uint64_t attempt =
          client.times_selected > 0 ? static_cast<uint64_t>(client.times_selected) - 1 : 0;
      std::vector<IngressDelivery> deliveries;
      IngressDelivery original;
      original.arrival.client_id = flight.client_id;
      original.arrival.round = flight.start_version;
      original.arrival.attempt = attempt;
      original.arrival.staleness = staleness;
      original.arrival.utility = contribution.quality;
      original.technique = flight.technique;
      original.quality = contribution.quality;
      original.upload_comm_s = 0.5 * flight.outcome.costs.comm_time_s;  // upload leg
      original.upload_mb = 0.5 * flight.outcome.costs.traffic_mb;
      deliveries.push_back(original);
      if (overload_.enabled()) {
        const size_t copies = overload_.DuplicateCopies(version_, flight.client_id);
        for (size_t c = 0; c < copies; ++c) {
          IngressDelivery d = original;
          d.redundant = true;
          deliveries.push_back(d);
        }
        const LoggedUpload* logged = update_log_.Get(flight.client_id);
        if (logged != nullptr && logged->round < version_) {
          const size_t slots = overload_.ReplaySlots(version_, flight.client_id);
          for (size_t s = 0; s < slots; ++s) {
            IngressDelivery d;
            d.arrival.client_id = flight.client_id;
            d.arrival.round = logged->round;
            d.arrival.attempt = logged->attempt;
            d.arrival.staleness = static_cast<double>(version_ - logged->round);
            // A stale upload ranks below fresh ones under utility-priority
            // shedding, more so the older it is.
            d.arrival.utility = logged->quality / (1.0 + d.arrival.staleness);
            d.redundant = true;
            d.technique = static_cast<TechniqueKind>(logged->technique);
            d.quality = logged->quality;
            d.upload_comm_s = logged->upload_comm_s;
            d.upload_mb = logged->upload_mb;
            deliveries.push_back(d);
          }
        }
      }
      std::vector<AdmissionController::Verdict> verdicts;
      if (admission_.enabled()) {
        std::vector<AdmissionController::Arrival> arrivals;
        arrivals.reserve(deliveries.size());
        for (const IngressDelivery& d : deliveries) {
          arrivals.push_back(d.arrival);
        }
        verdicts = admission_.Admit(version_, arrivals, &admission_tracker_);
      } else {
        AdmissionController::Verdict pass;
        pass.admitted = true;
        verdicts.assign(deliveries.size(), pass);
      }
      for (size_t i = 0; i < deliveries.size(); ++i) {
        const IngressDelivery& d = deliveries[i];
        const AdmissionController::Verdict& v = verdicts[i];
        if (!d.redundant) {
          if (v.admitted) {
            ClientContribution weighted = contribution;
            weighted.quality *= v.weight;
            buffer_.push_back(weighted);
          } else {
            admit_ok = false;
            drop_reason = v.reason;
          }
          continue;
        }
        if (v.admitted) {
          accountant_.Record(0.0, d.upload_comm_s, 0.0, false);
          redundant_mb_ += d.upload_mb;
          ClientContribution extra;
          extra.client_id = flight.client_id;
          extra.quality = d.quality * v.weight;
          extra.staleness = d.arrival.staleness;
          buffer_.push_back(extra);
        } else {
          // Rejected at the doorstep before any processing: one tracker
          // record and one participated=false policy report — no waste
          // charge and no guard/cooldown side effects.
          tracker_.Record(flight.client_id, d.technique, false, v.reason);
          CountDropout(v.reason, dropout_breakdown_);
          if (policy_ != nullptr) {
            policy_->Report(flight.client_id, flight.observation, global, d.technique, false,
                            0.0);
          }
        }
      }
    }
    if (admit_ok) {
      if (flight.outcome.byzantine) {
        ++pending_byzantine_;
      }
      accepted = true;
      ++client.times_completed;
      if (overload_.enabled()) {
        // Remember the accepted upload (at its original keys): the replay
        // fault re-delivers exactly this entry at a later version.
        LoggedUpload entry;
        entry.round = flight.start_version;
        entry.attempt = client.times_selected > 0
                            ? static_cast<uint64_t>(client.times_selected) - 1
                            : 0;
        entry.quality = contribution.quality;
        entry.upload_comm_s = 0.5 * flight.outcome.costs.comm_time_s;
        entry.upload_mb = 0.5 * flight.outcome.costs.traffic_mb;
        entry.technique = static_cast<uint32_t>(flight.technique);
        update_log_.Record(flight.client_id, entry);
      }
    }
  }
  // Partial-work salvage (DESIGN.md §16): an interrupted flight's completed
  // local steps re-enter the aggregation buffer at step-count weight instead
  // of being discarded — provided the partial clears the min-progress bar,
  // the bounded-staleness rule a full update would face, and (when enabled)
  // the admission gate under its dedicated partial attempt key. The
  // retirement still books as a dropout; only the spend flips to useful.
  bool salvaged = false;
  if (config_.salvage.enabled && !flight.outcome.completed &&
      staleness <= config_.admission.async_max_staleness) {
    const ClientRoundOutcome& o = flight.outcome;
    const bool interrupted = o.reason == DropoutReason::kCrashed ||
                             o.reason == DropoutReason::kDeparted ||
                             o.reason == DropoutReason::kTransferTimedOut;
    if (interrupted && o.salvage_fraction > 0.0) {
      if (o.salvage_fraction < config_.salvage.min_progress) {
        salvage_tracker_.RecordPartialBelowMin();
      } else {
        bool admit_partial = true;
        if (admission_.enabled()) {
          AdmissionController::Arrival a;
          a.client_id = flight.client_id;
          a.round = flight.start_version;
          // The partial namespace offset keeps the key distinct from the
          // launch-count key of the client's own full uploads.
          a.attempt = kPartialUpdateAttempt +
                      (client.times_selected > 0
                           ? static_cast<uint64_t>(client.times_selected) - 1
                           : 0);
          a.staleness = staleness;
          a.utility =
              (1.0 - EffectOf(flight.technique).accuracy_impact) * o.salvage_fraction;
          std::vector<AdmissionController::Arrival> arrivals;
          arrivals.push_back(a);
          const std::vector<AdmissionController::Verdict> verdicts =
              admission_.Admit(version_, arrivals, &admission_tracker_);
          admit_partial = verdicts[0].admitted;
        }
        if (!admit_partial) {
          salvage_tracker_.RecordPartialRejected();
        } else {
          salvaged = true;
          ClientContribution partial;
          partial.client_id = flight.client_id;
          partial.quality = 1.0 - EffectOf(flight.technique).accuracy_impact;
          if (o.byzantine) {
            partial.quality = injector_.AttackedQuality(partial.quality, flight.start_version,
                                                        flight.client_id);
            ++pending_byzantine_;
          }
          partial.staleness = staleness;
          partial.weight = o.salvage_fraction;
          buffer_.push_back(partial);
          const double acked_mb =
              o.reason == DropoutReason::kTransferTimedOut
                  ? o.salvage_fraction * GetModelProfile(config_.model).weight_mb *
                        EffectOf(flight.technique).comm_mult
                  : 0.0;
          salvage_tracker_.RecordPartialSalvaged(o.salvage_steps, o.salvage_fraction, acked_mb);
        }
      }
    }
  }
  if (!accepted) {
    CountDropout(drop_reason, dropout_breakdown_);
    if (config_.faults.retry_cooldown_rounds > 0 &&
        (drop_reason == DropoutReason::kCrashed || drop_reason == DropoutReason::kCorrupted)) {
      client.cooldown_until_round = version_ + 1 + config_.faults.retry_cooldown_rounds;
    }
  }
  client.last_round_duration_s = flight.outcome.time_spent_s;
  client.UpdateDeadlineDiff(flight.outcome.deadline_diff);
  accountant_.Record(flight.outcome.costs.train_time_s, flight.outcome.costs.comm_time_s,
                     flight.outcome.costs.peak_memory_mb, accepted || salvaged);
  tracker_.Record(flight.client_id, flight.technique, accepted, drop_reason);
  guard_.Observe(flight.technique, accepted, drop_reason, version_);
  if (flight.outcome.transfer_attempts > 0) {
    transport_tracker_.Record(flight.outcome.transfer_attempts, flight.outcome.costs.traffic_mb,
                              flight.outcome.retransmitted_mb, flight.outcome.salvaged_mb,
                              flight.outcome.transfer_progress_mb,
                              flight.outcome.transfer_backoff_s,
                              flight.outcome.reason == DropoutReason::kTransferTimedOut);
  }
  if (policy_ != nullptr) {
    const double client_accuracy_credit = guard_.SanitizeReward(
        last_accuracy_delta_ * (1.0 - EffectOf(flight.technique).accuracy_impact));
    policy_->Report(flight.client_id, flight.observation, global, flight.technique, accepted,
                    client_accuracy_credit);
  }

  if (buffer_.size() >= config_.async_buffer) {
    const double before = surrogate_->GlobalAccuracy();
    AggregatorStats agg_stats;
    ApplyQualityAggregation(config_.aggregator, buffer_, &agg_stats);
    agg_tracker_.Record(pending_byzantine_, agg_stats);
    pending_byzantine_ = 0;
    surrogate_->RoundUpdate(buffer_);
    last_accuracy_delta_ = surrogate_->GlobalAccuracy() - before;
    buffer_.clear();

    // Self-healing hook (DESIGN.md §11): grade the aggregation that just
    // happened; snapshot on improvement, roll the surrogate / reward state /
    // policy back to the last known good version on divergence. Runs before
    // the version bump so the restored accuracy is what the history records.
    {
      HealthSignal health;
      health.metric = surrogate_->GlobalAccuracy();
      health.loss = 1.0 - health.metric;
      guard_.EndRound(
          version_, health,
          [this](CheckpointWriter& w) {
            surrogate_->SaveState(w);
            w.F64(last_accuracy_delta_);
            w.Bool(policy_ != nullptr);
            if (policy_ != nullptr) {
              policy_->SaveState(w);
            }
          },
          [this](CheckpointReader& r) {
            surrogate_->LoadState(r);
            last_accuracy_delta_ = r.F64();
            const bool had_policy = r.Bool();
            if (had_policy && policy_ != nullptr) {
              policy_->LoadState(r);
            }
          });
    }

    ++version_;
    accuracy_history_.push_back(surrogate_->GlobalAccuracy());
  }
}

void AsyncEngine::RunUntil(size_t target_version) {
  while (version_ < target_version) {
    StepOnce();
  }
}

ExperimentResult AsyncEngine::Run() {
  RunUntil(config_.rounds);
  return Snapshot();
}

ExperimentResult AsyncEngine::Snapshot() const {
  ExperimentResult result;
  const std::vector<double> accuracies = surrogate_->AllClientAccuracies();
  result.accuracy_avg = Mean(accuracies);
  result.accuracy_top10 = TopFractionMean(accuracies, 0.10);
  result.accuracy_bottom10 = BottomFractionMean(accuracies, 0.10);
  result.global_accuracy = surrogate_->GlobalAccuracy();
  result.total_selected = tracker_.TotalSelected();
  result.total_completed = tracker_.TotalCompleted();
  result.total_dropouts = tracker_.TotalDropouts();
  result.never_selected = tracker_.NeverSelected();
  result.never_completed = tracker_.NeverCompleted();
  result.dropout_breakdown = dropout_breakdown_;
  result.rejected_updates = rejected_updates_;
  result.byzantine_selected = agg_tracker_.TotalByzantineSelected();
  result.krum_rejections = agg_tracker_.TotalKrumRejections();
  result.updates_trimmed = agg_tracker_.TotalTrimmed();
  result.transfer_attempts = transport_tracker_.TotalAttempts();
  result.wire_mb = transport_tracker_.TotalWireMb();
  result.retransmitted_mb = transport_tracker_.TotalRetransmittedMb();
  result.salvaged_mb = transport_tracker_.TotalSalvagedMb();
  result.transfer_backoff_s = transport_tracker_.TotalBackoffS();
  result.useful = accountant_.Useful();
  result.wasted = accountant_.Wasted();
  result.wall_clock_hours = now_s_ / 3600.0;
  result.per_technique = tracker_.PerTechnique();
  result.per_technique_dropouts = tracker_.DropoutsByTechnique();
  result.guard_snapshots = guard_.tracker().Snapshots();
  result.watchdog_triggers = guard_.tracker().WatchdogTriggers();
  result.rollbacks = guard_.tracker().Rollbacks();
  result.quarantined_actions = guard_.tracker().MaskedActions();
  result.quarantine_openings = guard_.tracker().QuarantineOpenings();
  result.rejected_rewards = guard_.tracker().RejectedRewards();
  result.safe_mode_rounds = guard_.tracker().SafeModeRounds();
  result.recovery_restarts = recovery_tracker_.Restarts();
  result.recovery_archives_skipped = recovery_tracker_.ArchivesSkipped();
  result.recovery_rounds_replayed = recovery_tracker_.RoundsReplayed();
  result.recovery_checkpoints_written = recovery_tracker_.CheckpointsWritten();
  result.recovery_checkpoints_failed = recovery_tracker_.CheckpointsFailed();
  result.admission_admitted = admission_tracker_.Admitted();
  result.admission_deduplicated = admission_tracker_.Deduplicated();
  result.admission_shed = admission_tracker_.Shed();
  result.admission_rate_limited = admission_tracker_.RateLimited();
  result.admission_replay_rejected = admission_tracker_.ReplayRejected();
  result.admission_peak_queue_depth = admission_tracker_.PeakQueueDepth();
  result.redundant_mb = redundant_mb_;
  result.partials_salvaged = salvage_tracker_.PartialsSalvaged();
  result.partials_below_min = salvage_tracker_.PartialsBelowMin();
  result.partials_rejected = salvage_tracker_.PartialsRejected();
  result.salvaged_steps = salvage_tracker_.SalvagedSteps();
  result.salvaged_progress_mb = salvage_tracker_.SalvagedProgressMb();
  result.transfer_progress_mb = transport_tracker_.TotalProgressMb();
  result.accuracy_history = accuracy_history_;
  result.per_client_selected = tracker_.selected();
  result.per_client_completed = tracker_.completed();
  return result;
}

namespace {

void SaveOutcome(CheckpointWriter& w, const ClientRoundOutcome& o) {
  w.Size(o.client_id);
  w.U32(static_cast<uint32_t>(o.technique));
  w.Bool(o.completed);
  w.U32(static_cast<uint32_t>(o.reason));
  w.F64(o.costs.train_time_s);
  w.F64(o.costs.comm_time_s);
  w.F64(o.costs.total_time_s);
  w.F64(o.costs.traffic_mb);
  w.F64(o.costs.peak_memory_mb);
  w.Bool(o.costs.out_of_memory);
  w.F64(o.time_spent_s);
  w.F64(o.deadline_diff);
  w.Bool(o.corrupted);
  w.U32(o.corrupt_kind);
  w.Bool(o.byzantine);
  w.Size(o.transfer_attempts);
  w.F64(o.retransmitted_mb);
  w.F64(o.salvaged_mb);
  w.F64(o.transfer_backoff_s);
  w.F64(o.effective_mbps);
  w.F64(o.transfer_progress_mb);
  w.F64(o.salvage_fraction);
  w.Size(o.salvage_steps);
  w.Size(o.salvage_total_steps);
  w.Bool(o.salvaged);
}

void LoadOutcome(CheckpointReader& r, ClientRoundOutcome& o) {
  o.client_id = r.Size();
  o.technique = static_cast<TechniqueKind>(r.U32());
  o.completed = r.Bool();
  o.reason = static_cast<DropoutReason>(r.U32());
  o.costs.train_time_s = r.F64();
  o.costs.comm_time_s = r.F64();
  o.costs.total_time_s = r.F64();
  o.costs.traffic_mb = r.F64();
  o.costs.peak_memory_mb = r.F64();
  o.costs.out_of_memory = r.Bool();
  o.time_spent_s = r.F64();
  o.deadline_diff = r.F64();
  o.corrupted = r.Bool();
  o.corrupt_kind = r.U32();
  o.byzantine = r.Bool();
  o.transfer_attempts = r.Size();
  o.retransmitted_mb = r.F64();
  o.salvaged_mb = r.F64();
  o.transfer_backoff_s = r.F64();
  o.effective_mbps = r.F64();
  o.transfer_progress_mb = r.F64();
  o.salvage_fraction = r.F64();
  o.salvage_steps = r.Size();
  o.salvage_total_steps = r.Size();
  o.salvaged = r.Bool();
}

}  // namespace

void AsyncEngine::SaveState(CheckpointWriter& w) const {
  w.F64(now_s_);
  w.Size(version_);
  w.F64(last_accuracy_delta_);
  w.Size(rejected_updates_);
  w.Size(dropout_breakdown_.unavailable);
  w.Size(dropout_breakdown_.out_of_memory);
  w.Size(dropout_breakdown_.missed_deadline);
  w.Size(dropout_breakdown_.departed);
  w.Size(dropout_breakdown_.crashed);
  w.Size(dropout_breakdown_.corrupted);
  w.Size(dropout_breakdown_.rejected);
  w.Size(dropout_breakdown_.transfer_timed_out);
  w.Size(dropout_breakdown_.shed);
  w.Size(dropout_breakdown_.duplicate);
  w.Size(dropout_breakdown_.replayed);
  w.Size(dropout_breakdown_.rate_limited);
  w.Size(dropout_breakdown_.backup_covered);
  w.Size(dropout_breakdown_.backup_redundant);
  w.F64Vec(accuracy_history_);
  SaveRng(w, rng_);
  w.Size(clients_.size());
  for (const auto& client : clients_) {
    client.SaveState(w);
  }
  w.BoolVec(busy_);
  w.Size(in_flight_.size());
  for (const auto& flight : in_flight_) {
    w.Size(flight.client_id);
    w.F64(flight.finish_time_s);
    w.Size(flight.start_version);
    w.U32(static_cast<uint32_t>(flight.technique));
    SaveOutcome(w, flight.outcome);
    w.F64(flight.observation.cpu_avail);
    w.F64(flight.observation.mem_avail);
    w.F64(flight.observation.net_avail);
    w.F64(flight.observation.deadline_diff);
  }
  w.Size(buffer_.size());
  for (const auto& contribution : buffer_) {
    w.Size(contribution.client_id);
    w.F64(contribution.quality);
    w.F64(contribution.staleness);
    w.F64(contribution.weight);
  }
  surrogate_->SaveState(w);
  accountant_.SaveState(w);
  tracker_.SaveState(w);
  injector_.SaveState(w);
  w.Bool(policy_ != nullptr);
  if (policy_ != nullptr) {
    policy_->SaveState(w);
  }
  w.Size(pending_byzantine_);
  agg_tracker_.SaveState(w);
  transport_tracker_.SaveState(w);
  guard_.SaveState(w);
  admission_.SaveState(w);
  update_log_.SaveState(w);
  admission_tracker_.SaveState(w);
  w.F64(redundant_mb_);
  salvage_tracker_.SaveState(w);
  // The RecoveryTracker stays the final section of every engine payload:
  // the recovery tests strip it off the tail to compare training state.
  recovery_tracker_.SaveState(w);
}

void AsyncEngine::LoadState(CheckpointReader& r) {
  now_s_ = r.F64();
  version_ = r.Size();
  last_accuracy_delta_ = r.F64();
  rejected_updates_ = r.Size();
  dropout_breakdown_.unavailable = r.Size();
  dropout_breakdown_.out_of_memory = r.Size();
  dropout_breakdown_.missed_deadline = r.Size();
  dropout_breakdown_.departed = r.Size();
  dropout_breakdown_.crashed = r.Size();
  dropout_breakdown_.corrupted = r.Size();
  dropout_breakdown_.rejected = r.Size();
  dropout_breakdown_.transfer_timed_out = r.Size();
  dropout_breakdown_.shed = r.Size();
  dropout_breakdown_.duplicate = r.Size();
  dropout_breakdown_.replayed = r.Size();
  dropout_breakdown_.rate_limited = r.Size();
  dropout_breakdown_.backup_covered = r.Size();
  dropout_breakdown_.backup_redundant = r.Size();
  accuracy_history_ = r.F64Vec();
  LoadRng(r, rng_);
  const size_t n = r.Size();
  // A failed reader (truncated/corrupted archive) returns zeros; that is the
  // caller's error to report, not a process-aborting invariant violation.
  FLOATFL_CHECK_MSG(n == clients_.size() || !r.ok(), "checkpoint population size mismatch");
  if (n != clients_.size()) {
    return;
  }
  for (auto& client : clients_) {
    client.LoadState(r);
  }
  busy_ = r.BoolVec();
  in_flight_.clear();
  const size_t flights = r.Size();
  for (size_t i = 0; i < flights && r.ok(); ++i) {
    InFlight flight;
    flight.client_id = r.Size();
    flight.finish_time_s = r.F64();
    flight.start_version = r.Size();
    flight.technique = static_cast<TechniqueKind>(r.U32());
    LoadOutcome(r, flight.outcome);
    flight.observation.cpu_avail = r.F64();
    flight.observation.mem_avail = r.F64();
    flight.observation.net_avail = r.F64();
    flight.observation.deadline_diff = r.F64();
    in_flight_.push_back(flight);
  }
  buffer_.clear();
  const size_t buffered = r.Size();
  for (size_t i = 0; i < buffered && r.ok(); ++i) {
    ClientContribution contribution;
    contribution.client_id = r.Size();
    contribution.quality = r.F64();
    contribution.staleness = r.F64();
    contribution.weight = r.F64();
    buffer_.push_back(contribution);
  }
  surrogate_->LoadState(r);
  accountant_.LoadState(r);
  tracker_.LoadState(r);
  injector_.LoadState(r);
  const bool had_policy = r.Bool();
  FLOATFL_CHECK_MSG(had_policy == (policy_ != nullptr) || !r.ok(),
                    "checkpoint policy presence mismatch");
  if (had_policy != (policy_ != nullptr)) {
    return;
  }
  if (policy_ != nullptr) {
    policy_->LoadState(r);
  }
  pending_byzantine_ = r.Size();
  agg_tracker_.LoadState(r);
  transport_tracker_.LoadState(r);
  guard_.LoadState(r);
  admission_.LoadState(r);
  update_log_.LoadState(r);
  admission_tracker_.LoadState(r);
  redundant_mb_ = r.F64();
  salvage_tracker_.LoadState(r);
  recovery_tracker_.LoadState(r);
}

}  // namespace floatfl
