#include "src/fl/real_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/data/dirichlet.h"
#include "src/failure/checkpoint_util.h"
#include "src/fl/cost_model.h"
#include "src/fl/experiment.h"
#include "src/opt/compress.h"
#include "src/opt/prune.h"
#include "src/opt/quantize.h"

namespace floatfl {
namespace {

// Overwrites a trained parameter vector with the configured poison: NaNs,
// Infs, or an exploded (scaled) norm.
void PoisonParams(std::vector<float>& params, uint32_t kind, double scale) {
  switch (kind) {
    case 0:
      std::fill(params.begin(), params.end(), std::numeric_limits<float>::quiet_NaN());
      break;
    case 1:
      std::fill(params.begin(), params.end(), std::numeric_limits<float>::infinity());
      break;
    default:
      for (float& p : params) {
        p = static_cast<float>(p * scale);
      }
      break;
  }
}

// Rewrites a completed (and already optimization-processed) update into the
// configured Byzantine attack, relative to the round's starting global
// parameters. Crafted to stay finite and within realistic norms, so it
// passes server validation — defeating it is the aggregator's job.
void ApplyByzantineAttack(std::vector<float>& params, const std::vector<float>& global,
                          const FaultConfig& faults, Rng attack_rng) {
  const double scale = faults.byzantine_scale;
  switch (faults.byzantine_mode) {
    case ByzantineMode::kSignFlip:
      for (size_t i = 0; i < params.size(); ++i) {
        const double delta = static_cast<double>(params[i]) - global[i];
        params[i] = static_cast<float>(global[i] - scale * delta);
      }
      break;
    case ByzantineMode::kScaledReplacement:
      for (size_t i = 0; i < params.size(); ++i) {
        const double delta = static_cast<double>(params[i]) - global[i];
        params[i] = static_cast<float>(global[i] + scale * delta);
      }
      break;
    case ByzantineMode::kGaussianNoise:
      for (float& p : params) {
        p = static_cast<float>(p + attack_rng.Normal(0.0, scale));
      }
      break;
    case ByzantineMode::kNone:
    default:
      break;
  }
}

// Server-side validation: every value finite and the update's L2 norm under
// the quarantine threshold.
bool ValidRealUpdate(const std::vector<float>& params, double norm_threshold) {
  double sq = 0.0;
  for (float p : params) {
    if (!std::isfinite(p)) {
      return false;
    }
    sq += static_cast<double>(p) * static_cast<double>(p);
  }
  return std::sqrt(sq) <= norm_threshold;
}

}  // namespace

RealFlEngine::RealFlEngine(const RealFlConfig& config)
    : config_(config),
      injector_(config.faults, config.seed, config.num_clients),
      aggregator_(MakeAggregator(config.aggregator)),
      transport_(config.faults, config.seed),
      rng_(config.seed),
      client_stream_root_(config.seed ^ 0x7C159E3779B97F4AULL) {
  FLOATFL_CHECK(config.num_clients > 0);
  FLOATFL_CHECK(config.clients_per_round > 0);
  FLOATFL_CHECK(config.num_classes >= 2);
  ValidateGuardConfig(config_.guard);
  guard_ = TrainingGuard(config_.guard);
  ValidateTopologyConfig(config_.topology);
  edge_injector_ = EdgeFaultInjector(config_.topology, config_.seed, config_.topology.num_edges);
  tree_ = AggregationTree(config_.topology, config_.num_clients);
  edge_transport_ = Transport(config_.topology.LinkFaultConfig(),
                              config_.seed ^ TopologyConfig::kEdgeLinkSeedSalt);
  edge_aggregator_ = MakeAggregator(config_.topology.edge_aggregator);
  ValidateAdmissionConfig(config_.admission);
  overload_ = OverloadInjector(config_.faults, config_.seed);
  admission_ = AdmissionController(config_.admission);
  ValidateSalvageConfig(config_.salvage);
  // No wall clock means no deadline race a backup could win; refuse rather
  // than silently ignore, like the async engine.
  FLOATFL_CHECK_MSG(!config_.salvage.speculation,
                    "real engine does not support speculative re-execution");
  update_log_ = UpdateLog(config_.num_clients);
  const size_t threads = ResolveThreadCount(config.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }

  task_ = std::make_unique<SyntheticTaskData>(config.num_classes, config.input_dim,
                                              config.class_separation, rng_);

  PartitionConfig partition;
  partition.num_clients = config.num_clients;
  partition.num_classes = config.num_classes;
  partition.alpha = config.alpha;
  partition.samples_median = 60.0;
  partition.samples_sigma = 0.4;
  partition.min_samples = 10;
  shards_ = PartitionDirichlet(partition, rng_);

  client_inputs_.resize(shards_.size());
  client_labels_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    task_->MaterializeShard(shards_[i], rng_, &client_inputs_[i], &client_labels_[i]);
  }

  model_dims_.push_back(config.input_dim);
  for (size_t h : config.hidden_dims) {
    model_dims_.push_back(h);
  }
  model_dims_.push_back(config.num_classes);
  global_ = std::make_unique<Mlp>(model_dims_, rng_);

  task_->MakeTestSet(config.test_samples_per_class, rng_, &test_inputs_, &test_labels_);
}

size_t RealFlEngine::DenseUpdateBytes() const { return global_->ParamCount() * sizeof(float); }

size_t RealFlEngine::FrozenLayersFor(TechniqueKind technique) const {
  const double frac = PartialTrainingFraction(technique);
  if (frac <= 0.0) {
    return 0;
  }
  // Freeze the leading fraction of layers, keeping at least the output layer
  // trainable.
  const size_t layers = global_->NumLayers();
  const size_t frozen = static_cast<size_t>(std::llround(frac * static_cast<double>(layers)));
  return std::min(frozen, layers - 1);
}

RealFlEngine::ProcessedUpdate RealFlEngine::ProcessUpload(std::vector<float> params,
                                                          TechniqueKind technique) const {
  ProcessedUpdate out;
  switch (technique) {
    case TechniqueKind::kQuant16:
    case TechniqueKind::kQuant8: {
      const int bits = QuantizationBits(technique);
      const QuantizedBlob blob = Quantize(params, bits);
      out.upload_bytes = blob.ByteSize();
      out.params = Dequantize(blob);
      double max_err = 0.0;
      for (size_t i = 0; i < params.size(); ++i) {
        max_err = std::max(max_err, std::fabs(static_cast<double>(params[i]) - out.params[i]));
      }
      out.max_error = max_err;
      return out;
    }
    case TechniqueKind::kPrune25:
    case TechniqueKind::kPrune50:
    case TechniqueKind::kPrune75: {
      double max_before = 0.0;
      std::vector<float> original = params;
      MagnitudePrune(params, PruningFraction(technique));
      for (size_t i = 0; i < params.size(); ++i) {
        max_before =
            std::max(max_before, std::fabs(static_cast<double>(original[i]) - params[i]));
      }
      out.upload_bytes = SparseEncodingBytes(params);
      out.params = std::move(params);
      out.max_error = max_before;
      return out;
    }
    case TechniqueKind::kCompressLossless: {
      // Quantize to 16 bits (near-lossless) then RLE-compress the codes,
      // falling back to the raw codes when the payload is incompressible
      // (dense weight noise) — as any real sender would.
      const QuantizedBlob blob = Quantize(params, 16);
      const size_t compressed = RleCompress(blob.data).size();
      out.upload_bytes = std::min(compressed, blob.data.size()) + sizeof(float) * 2;
      out.params = Dequantize(blob);
      double max_err = 0.0;
      for (size_t i = 0; i < params.size(); ++i) {
        max_err = std::max(max_err, std::fabs(static_cast<double>(params[i]) - out.params[i]));
      }
      out.max_error = max_err;
      return out;
    }
    case TechniqueKind::kNone:
    case TechniqueKind::kPartial25:
    case TechniqueKind::kPartial50:
    case TechniqueKind::kPartial75:
    default:
      // Partial training changes what gets *trained*, not the serialization.
      out.upload_bytes = params.size() * sizeof(float);
      out.params = std::move(params);
      return out;
  }
}

RealRoundStats RealFlEngine::RunRound(
    const std::function<TechniqueKind(size_t)>& choose_technique) {
  return RunRoundImpl(choose_technique, nullptr);
}

RealRoundStats RealFlEngine::RunRoundImpl(
    const std::function<TechniqueKind(size_t)>& choose_technique,
    const std::function<void(size_t, TechniqueKind, bool, double)>& report) {
  const std::vector<float> global_params = global_->GetParameters();
  const std::vector<size_t> order = rng_.Permutation(shards_.size());
  const size_t k = std::min(config_.clients_per_round, shards_.size());
  const size_t round = rounds_run_++;
  injector_.BeginRound(round);
  guard_.BeginRound(round);
  // Hierarchical topology (DESIGN.md §13): draw this round's edge fault
  // decisions and refresh the failover assignment before tasking anyone.
  const bool tree_on = tree_.enabled();
  if (tree_on) {
    edge_injector_.BeginRound(round);
    std::vector<EdgeFaultDecision>& edge_decisions = scratch_.edge_decisions;
    edge_decisions.assign(tree_.num_edges(), EdgeFaultDecision());
    for (size_t edge = 0; edge < edge_decisions.size(); ++edge) {
      edge_decisions[edge] = edge_injector_.Decide(round, edge);
      if (edge_decisions[edge].crash) {
        topo_tracker_.RecordEdgeCrash();
      } else if (edge_decisions[edge].blackout) {
        topo_tracker_.RecordEdgeBlackout();
      }
    }
    tree_.BeginRound(round, edge_decisions);
  }
  // Round-start test accuracy, the baseline for the policy's accuracy
  // credit. Only evaluated when someone consumes the credit.
  const double accuracy_before = report ? EvaluateAccuracy() : 0.0;

  // Phase 1 (sequential): technique choices — the callback may be stateful —
  // and fault draws (each from its own (round, client)-keyed stream). The
  // engine has no wall clock; the round index stands in for time, so
  // blackout windows are in round units. The guard gets a veto over every
  // chosen technique (safe mode / quarantine masks it to kNone).
  std::vector<TechniqueKind>& techniques = scratch_.techniques;
  std::vector<size_t>& frozen_layers = scratch_.frozen_layers;
  std::vector<FaultDecision>& faults = scratch_.faults;
  techniques.assign(k, TechniqueKind::kNone);
  frozen_layers.assign(k, 0);
  faults.assign(k, FaultDecision());
  for (size_t i = 0; i < k; ++i) {
    techniques[i] = guard_.Filter(choose_technique(order[i]), round);
    frozen_layers[i] = FrozenLayersFor(techniques[i]);
    if (injector_.enabled()) {
      faults[i] = injector_.Decide(round, order[i], static_cast<double>(round));
    }
  }
  // Graceful degradation (DESIGN.md §16): where inside its local work each
  // crash-faulted client was interrupted, from the injector's own salted
  // (round, client) streams, quantized to whole mini-batch steps. Sequential
  // and salvage-gated: with salvage off no draw happens and nothing changes.
  const bool salvage_on = config_.salvage.enabled;
  std::vector<double>& salvage_fractions = scratch_.salvage_fractions;
  std::vector<size_t>& salvage_steps = scratch_.salvage_steps;
  salvage_fractions.assign(k, 0.0);
  salvage_steps.assign(k, 0);
  if (salvage_on) {
    for (size_t i = 0; i < k; ++i) {
      if (!faults[i].crash || faults[i].blackout) {
        continue;  // blackout preempts: the client never even started
      }
      const size_t id = order[i];
      const size_t total =
          TotalLocalSteps(client_labels_[id].size(), config_.sgd.epochs, config_.sgd.batch_size);
      if (total == 0) {
        continue;
      }
      const double point = injector_.InterruptionPoint(round, id);
      salvage_steps[i] = static_cast<size_t>(point * static_cast<double>(total));
      salvage_fractions[i] =
          static_cast<double>(salvage_steps[i]) / static_cast<double>(total);
    }
  }

  // Phase 2 (parallel): local training and upload processing. Each client
  // trains on its own (round, client_id)-keyed RNG stream, so the trained
  // weights do not depend on which thread — or in which order — clients run.
  // A crashed (or blacked-out) client never delivers; a corrupted one
  // delivers a poisoned tensor.
  std::vector<ProcessedUpdate>& processed = scratch_.processed;
  std::vector<uint8_t>& delivered = scratch_.delivered;
  std::vector<TransferResult>& transfers = scratch_.transfers;
  processed.assign(k, ProcessedUpdate());
  delivered.assign(k, 1);
  transfers.assign(k, TransferResult());
  ParallelFor(pool_.get(), k, [&](size_t i) {
    if (tree_on && tree_.EffectiveEdge(order[i]) == AggregationTree::kOrphaned) {
      // No live edge to report to: the client is never tasked and trains
      // nothing (phase 3 attributes the orphan, not a crash).
      delivered[i] = 0;
      return;
    }
    const bool interrupted = faults[i].crash || faults[i].blackout;
    if (interrupted) {
      delivered[i] = 0;
      // Partial-work salvage (DESIGN.md §16): a crash-faulted client with a
      // qualifying interruption point still trains — the same shuffled batch
      // sequence, cut short at its drawn step count — and ships the partial.
      // Below min_progress the work is forfeited without training (phase 3
      // attributes the below-min discard).
      if (salvage_steps[i] == 0 || salvage_fractions[i] < config_.salvage.min_progress) {
        return;
      }
    }
    const size_t id = order[i];
    Rng client_rng = client_stream_root_.ForkKeyed(Rng::StreamKey(round, id));
    Mlp local(model_dims_, client_rng);
    local.SetParameters(global_params);
    SgdConfig sgd = config_.sgd;
    sgd.frozen_layers = frozen_layers[i];
    if (interrupted) {
      sgd.max_steps = salvage_steps[i];
    }
    TrainSgd(local, client_inputs_[id], client_labels_[id], sgd, client_rng);
    processed[i] = ProcessUpload(local.GetParameters(), techniques[i]);
    if (faults[i].corrupt) {
      PoisonParams(processed[i].params, faults[i].corrupt_kind, config_.faults.corrupt_scale);
    } else if (faults[i].byzantine) {
      ApplyByzantineAttack(processed[i].params, global_params, config_.faults,
                           injector_.AttackRng(round, id));
    }
    if (interrupted) {
      // The partial is recovered from the crashed client's last report; no
      // fresh upload transfer happens on its behalf.
      return;
    }
    if (transport_.enabled()) {
      // Lossy upload delivery over the *actual* serialized size, so heavier
      // uploads chunk into more loss draws. The engine has no wall clock;
      // TryDeliver charges bytes and retries, not time. (round, id)-keyed,
      // so thread order is irrelevant.
      const double payload_mb =
          static_cast<double>(processed[i].upload_bytes) / (1024.0 * 1024.0);
      transfers[i] = transport_.TryDeliver(round, id, payload_mb, TransferLeg::kUpload,
                                           config_.faults.resumable_uploads);
    }
  });

  // Phase 3 (sequential, selection order): server-side validation, then a
  // fixed-order reduction through the configured aggregator.
  std::vector<std::vector<float>>& updates = scratch_.updates;
  std::vector<double>& weights = scratch_.weights;
  updates.clear();
  weights.clear();
  RealRoundStats stats;
  double total_bytes = 0.0;
  double total_error = 0.0;
  std::vector<uint8_t>& participated = scratch_.participated;
  std::vector<DropoutReason>& reasons = scratch_.reasons;
  participated.assign(k, 0);
  reasons.assign(k, DropoutReason::kNone);
  std::vector<size_t> update_edges;  // effective edge per accepted update
  const bool ingest_on = overload_.enabled() || admission_.enabled();
  std::vector<size_t> passing;  // selection indices that reached the server door
  // Validated partial updates from interrupted clients (DESIGN.md §16),
  // collected in selection order and appended to the aggregate — behind the
  // admission gate, under the partial dedup namespace — after the fresh
  // uploads have been ruled on.
  struct PartialCandidate {
    size_t idx = 0;  // selection index
    std::vector<float> params;
    double fraction = 0.0;
    size_t steps = 0;
    double acked_mb = 0.0;
  };
  std::vector<PartialCandidate> partial_candidates;
  for (size_t i = 0; i < k; ++i) {
    if (faults[i].byzantine) {
      ++stats.byzantine_selected;
    }
    if (tree_on) {
      const size_t effective = tree_.EffectiveEdge(order[i]);
      if (effective == AggregationTree::kOrphaned) {
        ++stats.orphaned;
        topo_tracker_.RecordOrphaned(1);
        reasons[i] = DropoutReason::kEdgeOrphaned;
        continue;
      }
      if (effective != tree_.HomeEdge(order[i])) {
        ++stats.reparented;
        topo_tracker_.RecordReparented(1);
      }
    }
    if (!delivered[i]) {
      ++stats.crashed;
      reasons[i] = faults[i].blackout ? DropoutReason::kUnavailable : DropoutReason::kCrashed;
      // The client is a dropout either way (the guard and the policy see it
      // as one); salvage only decides whether its partial work survives.
      if (salvage_on && salvage_fractions[i] > 0.0) {
        if (salvage_fractions[i] < config_.salvage.min_progress) {
          ++stats.partials_below_min;
          salvage_tracker_.RecordPartialBelowMin();
        } else {
          // Progress normalization (DESIGN.md §16): a truncated run's delta
          // is roughly `fraction` of a full epoch's, so averaging the raw
          // partial into FedAvg drags the round's step back toward the stale
          // global. Extrapolate the delta to full-epoch scale — bounded by
          // 1 / min_progress — and let the samples x fraction aggregation
          // weight carry the reduced trust instead. Validation sees the
          // extrapolated tensor, so a poisoned partial is quarantined at the
          // amplitude it would actually enter aggregation with.
          std::vector<float> extrapolated = std::move(processed[i].params);
          const float inv_fraction = static_cast<float>(1.0 / salvage_fractions[i]);
          for (size_t j = 0; j < extrapolated.size(); ++j) {
            extrapolated[j] =
                global_params[j] + (extrapolated[j] - global_params[j]) * inv_fraction;
          }
          if (!ValidRealUpdate(extrapolated, config_.faults.reject_norm_threshold)) {
            ++stats.partials_rejected;
            salvage_tracker_.RecordPartialRejected();
          } else {
            PartialCandidate p;
            p.idx = i;
            p.params = std::move(extrapolated);
            p.fraction = salvage_fractions[i];
            p.steps = salvage_steps[i];
            partial_candidates.push_back(std::move(p));
          }
        }
      }
      continue;
    }
    if (transport_.enabled()) {
      transport_tracker_.Record(transfers[i].attempts, transfers[i].wire_mb,
                                transfers[i].retransmitted_mb, transfers[i].salvaged_mb,
                                transfers[i].progress_mb, transfers[i].backoff_s,
                                transfers[i].timed_out);
      stats.retransmitted_mb += transfers[i].retransmitted_mb;
      stats.salvaged_mb += transfers[i].salvaged_mb;
      if (!transfers[i].delivered) {
        // The trained update never survived the lossy link: nothing reaches
        // validation or aggregation intact.
        ++stats.transfer_timeouts;
        reasons[i] = DropoutReason::kTransferTimedOut;
        // Prefix-patch salvage (DESIGN.md §16): the acked byte prefix of the
        // serialized upload is real trained data; splice it over the round's
        // starting global parameters and weight by the acked fraction.
        if (salvage_on) {
          const double payload_mb =
              static_cast<double>(processed[i].upload_bytes) / (1024.0 * 1024.0);
          const double frac =
              payload_mb > 0.0 ? std::min(1.0, transfers[i].progress_mb / payload_mb) : 0.0;
          if (frac > 0.0 && frac < config_.salvage.min_progress) {
            ++stats.partials_below_min;
            salvage_tracker_.RecordPartialBelowMin();
          } else if (frac >= config_.salvage.min_progress) {
            std::vector<float> patched = global_params;
            const size_t prefix = std::min(
                patched.size(), static_cast<size_t>(frac * static_cast<double>(patched.size())));
            std::copy(processed[i].params.begin(), processed[i].params.begin() + prefix,
                      patched.begin());
            if (!ValidRealUpdate(patched, config_.faults.reject_norm_threshold)) {
              ++stats.partials_rejected;
              salvage_tracker_.RecordPartialRejected();
            } else {
              PartialCandidate p;
              p.idx = i;
              p.params = std::move(patched);
              p.fraction = frac;
              // Training finished in full; only the transfer was cut short.
              p.steps = TotalLocalSteps(client_labels_[order[i]].size(), config_.sgd.epochs,
                                        config_.sgd.batch_size);
              p.acked_mb = transfers[i].progress_mb;
              partial_candidates.push_back(std::move(p));
            }
          }
        }
        continue;
      }
    }
    if (!ValidRealUpdate(processed[i].params, config_.faults.reject_norm_threshold)) {
      ++stats.rejected_updates;
      reasons[i] = DropoutReason::kCorrupted;
      continue;
    }
    if (ingest_on) {
      // Admission decides this upload's fate below; defer the acceptance.
      passing.push_back(i);
      continue;
    }
    participated[i] = 1;
    total_bytes += static_cast<double>(processed[i].upload_bytes);
    total_error += processed[i].max_error;
    updates.push_back(std::move(processed[i].params));
    weights.push_back(static_cast<double>(shards_[order[i]].total));
    if (tree_on) {
      update_edges.push_back(tree_.EffectiveEdge(order[i]));
    }
  }
  if (ingest_on) {
    // Server ingestion (DESIGN.md §15): the round's validated uploads form
    // one ingestion burst — possibly reordered, duplicated, and joined by
    // replays of earlier accepted uploads — and the admission gate rules on
    // it in arrival order. An admitted redundant delivery is re-processed in
    // full: its parameter vector re-enters the FedAvg reduction and its wire
    // volume is booked as redundant; a doorstep rejection costs nothing.
    struct IngressDelivery {
      AdmissionController::Arrival arrival;
      size_t idx = 0;  // selection index
      bool redundant = false;
      bool replay = false;
      double upload_mb = 0.0;
    };
    std::vector<size_t> arrival_order = passing;
    overload_.MaybeReorder(round, arrival_order);
    auto fresh_delivery = [&](size_t i) {
      IngressDelivery d;
      d.arrival.client_id = order[i];
      d.arrival.round = round;
      d.arrival.attempt = 0;
      d.arrival.staleness = 0.0;
      // Utility-priority shedding keeps the data-rich uploads.
      d.arrival.utility = static_cast<double>(shards_[order[i]].total);
      d.idx = i;
      d.upload_mb = static_cast<double>(processed[i].upload_bytes) / (1024.0 * 1024.0);
      return d;
    };
    std::vector<IngressDelivery> deliveries;
    for (size_t i : arrival_order) {
      deliveries.push_back(fresh_delivery(i));
    }
    if (overload_.enabled()) {
      for (size_t i : arrival_order) {
        const size_t copies = overload_.DuplicateCopies(round, order[i]);
        for (size_t c = 0; c < copies; ++c) {
          IngressDelivery d = fresh_delivery(i);
          d.redundant = true;
          deliveries.push_back(d);
        }
      }
      for (size_t i = 0; i < k; ++i) {
        const LoggedUpload* logged = update_log_.Get(order[i]);
        if (logged == nullptr || logged->round >= round) {
          continue;
        }
        const size_t slots = overload_.ReplaySlots(round, order[i]);
        for (size_t s = 0; s < slots; ++s) {
          IngressDelivery d;
          d.arrival.client_id = order[i];
          d.arrival.round = logged->round;
          d.arrival.attempt = logged->attempt;
          d.arrival.staleness = static_cast<double>(round - logged->round);
          d.arrival.utility = logged->weight / (1.0 + d.arrival.staleness);
          d.idx = i;
          d.redundant = true;
          d.replay = true;
          d.upload_mb = logged->upload_mb;
          deliveries.push_back(d);
        }
      }
    }
    std::vector<AdmissionController::Verdict> verdicts;
    if (admission_.enabled()) {
      std::vector<AdmissionController::Arrival> arrivals;
      arrivals.reserve(deliveries.size());
      for (const IngressDelivery& d : deliveries) {
        arrivals.push_back(d.arrival);
      }
      verdicts = admission_.Admit(round, arrivals, &admission_tracker_);
    } else {
      AdmissionController::Verdict pass;
      pass.admitted = true;
      verdicts.assign(deliveries.size(), pass);
    }
    for (size_t n = 0; n < deliveries.size(); ++n) {
      const IngressDelivery& d = deliveries[n];
      const AdmissionController::Verdict& v = verdicts[n];
      const size_t i = d.idx;
      if (!v.admitted) {
        switch (v.reason) {
          case DropoutReason::kDuplicate:
            ++stats.deduplicated;
            break;
          case DropoutReason::kShed:
            ++stats.shed;
            break;
          case DropoutReason::kRateLimited:
            ++stats.rate_limited;
            break;
          case DropoutReason::kReplayed:
            ++stats.replay_rejected;
            break;
          default:
            break;
        }
        if (!d.redundant) {
          reasons[i] = v.reason;
        } else if (report) {
          // A doorstep-rejected redundant still costs the policy one
          // participated=false report — the delivery happened, the server
          // just refused to process it.
          report(order[i], techniques[i], false, 0.0);
        }
        continue;
      }
      ++stats.admitted;
      if (!d.redundant) {
        participated[i] = 1;
        total_bytes += static_cast<double>(processed[i].upload_bytes);
        total_error += processed[i].max_error;
        // Copies, not moves: duplicates of this upload may still arrive.
        updates.push_back(processed[i].params);
        weights.push_back(static_cast<double>(shards_[order[i]].total) * v.weight);
        if (tree_on) {
          update_edges.push_back(tree_.EffectiveEdge(order[i]));
        }
        if (overload_.enabled()) {
          // Remember the accepted upload: the replay fault re-delivers
          // exactly this entry (same dedup key) in a later round.
          LoggedUpload entry;
          entry.round = round;
          entry.attempt = 0;
          entry.upload_mb = d.upload_mb;
          entry.technique = static_cast<uint32_t>(techniques[i]);
          entry.params = processed[i].params;
          entry.weight = static_cast<double>(shards_[order[i]].total);
          update_log_.Record(order[i], entry);
        }
      } else if (!d.replay) {
        stats.redundant_upload_mb += d.upload_mb;
        updates.push_back(processed[i].params);
        weights.push_back(static_cast<double>(shards_[order[i]].total) * v.weight);
        if (tree_on) {
          update_edges.push_back(tree_.EffectiveEdge(order[i]));
        }
      } else {
        const LoggedUpload* logged = update_log_.Get(order[i]);
        stats.redundant_upload_mb += d.upload_mb;
        updates.push_back(logged->params);
        weights.push_back(logged->weight * v.weight);
        if (tree_on) {
          update_edges.push_back(tree_.EffectiveEdge(order[i]));
        }
      }
    }
    stats.peak_queue_depth = admission_tracker_.PeakQueueDepth();
  }
  if (!partial_candidates.empty()) {
    // Partial updates enter through the same admission gate as fresh uploads
    // (one burst, selection order) under the partial dedup namespace, with
    // utility discounted by the completed-work fraction so shedding drops
    // the thinnest partials first. An admitted partial re-enters FedAvg at
    // step-fraction weight; the client itself stays a dropout.
    std::vector<AdmissionController::Verdict> verdicts;
    if (admission_.enabled()) {
      std::vector<AdmissionController::Arrival> arrivals;
      arrivals.reserve(partial_candidates.size());
      for (const PartialCandidate& p : partial_candidates) {
        AdmissionController::Arrival a;
        a.client_id = order[p.idx];
        a.round = round;
        a.attempt = kPartialUpdateAttempt;
        a.staleness = 0.0;
        a.utility = static_cast<double>(shards_[order[p.idx]].total) * p.fraction;
        arrivals.push_back(a);
      }
      verdicts = admission_.Admit(round, arrivals, &admission_tracker_);
      stats.peak_queue_depth = admission_tracker_.PeakQueueDepth();
    } else {
      AdmissionController::Verdict pass;
      pass.admitted = true;
      verdicts.assign(partial_candidates.size(), pass);
    }
    for (size_t n = 0; n < partial_candidates.size(); ++n) {
      PartialCandidate& p = partial_candidates[n];
      if (!verdicts[n].admitted) {
        ++stats.partials_rejected;
        salvage_tracker_.RecordPartialRejected();
        continue;
      }
      ++stats.partials_salvaged;
      stats.salvaged_steps += p.steps;
      salvage_tracker_.RecordPartialSalvaged(p.steps, p.fraction, p.acked_mb);
      updates.push_back(std::move(p.params));
      weights.push_back(static_cast<double>(shards_[order[p.idx]].total) * p.fraction *
                        verdicts[n].weight);
      if (tree_on) {
        update_edges.push_back(tree_.EffectiveEdge(order[p.idx]));
      }
    }
  }
  // Failure attribution for the guard's quarantine (selection order).
  for (size_t i = 0; i < k; ++i) {
    guard_.Observe(techniques[i], participated[i] != 0, reasons[i], round);
  }

  AggregatorStats agg_stats;
  // With ingestion active, `updates` may carry admitted redundant deliveries
  // on top of the originals; participant accounting counts only the latter.
  const size_t accepted_clients = updates.size();
  size_t original_accepted = accepted_clients;
  if (ingest_on) {
    original_accepted = 0;
    for (size_t i = 0; i < k; ++i) {
      original_accepted += participated[i];
    }
  }
  size_t clients_at_root = accepted_clients;
  if (tree_on && !updates.empty()) {
    // Edge tier (DESIGN.md §13): fold each effective edge's cohort into one
    // parameter-space partial with the edge aggregation rule, let Byzantine
    // edges tamper with theirs, carry each partial over the (possibly lossy)
    // inter-tier link, and re-validate at the root. The root then aggregates
    // partials — weighted by their cohorts' sample counts — instead of raw
    // client updates. Losing one partial loses its whole cohort.
    clients_at_root = 0;
    const double partial_mb = static_cast<double>(DenseUpdateBytes()) / (1024.0 * 1024.0);
    std::vector<std::vector<float>> partials;
    std::vector<double> partial_weights;
    std::vector<std::vector<float>> group_updates;
    std::vector<double> group_weights;
    for (size_t edge = 0; edge < tree_.num_edges(); ++edge) {
      group_updates.clear();
      group_weights.clear();
      double cohort_weight = 0.0;
      for (size_t u = 0; u < updates.size(); ++u) {
        if (update_edges[u] == edge) {
          group_updates.push_back(std::move(updates[u]));
          group_weights.push_back(weights[u]);
          cohort_weight += weights[u];
        }
      }
      if (group_updates.empty()) {
        continue;
      }
      AggregatorStats edge_stats;
      std::vector<float> partial =
          edge_aggregator_->Aggregate(group_updates, group_weights, global_params, &edge_stats);
      topo_tracker_.RecordEdgeAggExclusions(edge_stats.updates_clipped +
                                            edge_stats.krum_rejections +
                                            edge_stats.updates_trimmed);
      if (edge_injector_.enabled() && scratch_.edge_decisions[edge].byzantine) {
        FaultConfig tamper;
        tamper.byzantine_mode = config_.topology.edge_byzantine_mode;
        tamper.byzantine_scale = config_.topology.edge_byzantine_scale;
        ApplyByzantineAttack(partial, global_params, tamper,
                             edge_injector_.AttackRng(round, edge));
        topo_tracker_.RecordTampered();
        ++stats.tampered_partials;
      }
      if (edge_transport_.enabled()) {
        const TransferResult res =
            edge_transport_.TryDeliver(round, edge, partial_mb, TransferLeg::kUpload, true);
        topo_tracker_.RecordPartial(res.delivered, res.attempts, res.wire_mb,
                                    res.retransmitted_mb);
        if (!res.delivered) {
          ++stats.partials_lost;
          continue;
        }
      } else {
        topo_tracker_.RecordPartial(true, 0, 0.0, 0.0);
      }
      if (!ValidRealUpdate(partial, config_.faults.reject_norm_threshold)) {
        topo_tracker_.RecordTamperedRejections(1);
        ++stats.tampered_rejections;
        continue;
      }
      clients_at_root += group_updates.size();
      partials.push_back(std::move(partial));
      partial_weights.push_back(cohort_weight);
    }
    updates.swap(partials);
    weights.swap(partial_weights);
  }
  if (!updates.empty()) {
    global_->SetParameters(aggregator_->Aggregate(updates, weights, global_params, &agg_stats));
  }
  agg_tracker_.Record(stats.byzantine_selected, agg_stats);
  stats.updates_clipped = agg_stats.updates_clipped;
  stats.krum_rejections = agg_stats.krum_rejections;
  stats.updates_trimmed = agg_stats.updates_trimmed;

  stats.participants = original_accepted;
  stats.mean_upload_bytes = original_accepted == 0 ? 0.0 : total_bytes / original_accepted;
  stats.mean_update_error = original_accepted == 0 ? 0.0 : total_error / original_accepted;
  stats.test_accuracy = EvaluateAccuracy();
  stats.test_loss = EvaluateLoss();

  // Policy feedback: every selected client reports, dropouts included, with
  // the round's test-accuracy delta scaled by its technique's quality.
  if (report) {
    const double accuracy_delta = stats.test_accuracy - accuracy_before;
    for (size_t i = 0; i < k; ++i) {
      const double credit = guard_.SanitizeReward(
          accuracy_delta * (1.0 - EffectOf(techniques[i]).accuracy_impact));
      report(order[i], techniques[i], participated[i] != 0, credit);
    }
  }

  // Self-healing hook (DESIGN.md §11): snapshot the global model (and the
  // attached policy) when the test metrics are healthy; restore the last
  // known good pair when they diverge. Runs after the policy feedback so the
  // rollback also discards any Q-updates the bad round just taught.
  {
    HealthSignal health;
    health.metric = stats.test_accuracy;
    health.loss = stats.test_loss;
    if (tree_on && accepted_clients > 0) {
      health.coverage =
          static_cast<double>(clients_at_root) / static_cast<double>(accepted_clients);
    }
    const bool rolled_back = guard_.EndRound(
        round, health,
        [this](CheckpointWriter& w) {
          w.F32Vec(global_->GetParameters());
          w.Bool(policy_ != nullptr);
          if (policy_ != nullptr) {
            policy_->SaveState(w);
          }
        },
        [this](CheckpointReader& r) {
          const std::vector<float> params = r.F32Vec();
          FLOATFL_CHECK_MSG(params.size() == global_->ParamCount(),
                            "guard snapshot model parameter count mismatch");
          global_->SetParameters(params);
          const bool had_policy = r.Bool();
          if (had_policy && policy_ != nullptr) {
            policy_->LoadState(r);
          }
        });
    if (rolled_back) {
      stats.rolled_back = true;
      stats.test_accuracy = EvaluateAccuracy();
      stats.test_loss = EvaluateLoss();
    }
  }
  if (!config_.pool_round_scratch) {
    scratch_.Release();
  }
  return stats;
}

RealRoundStats RealFlEngine::RunRound(TechniqueKind technique) {
  return RunRound([technique](size_t) { return technique; });
}

RealRoundStats RealFlEngine::RunRoundWithPolicy() {
  FLOATFL_CHECK_MSG(policy_ != nullptr, "RunRoundWithPolicy requires an attached policy");
  GlobalObservation global;
  global.batch_size = config_.sgd.batch_size;
  global.epochs = config_.sgd.epochs;
  global.participants = config_.clients_per_round;
  // The real engine has no interference/availability traces; every client
  // presents the neutral observation and the policy differentiates through
  // the per-client feedback it accumulates.
  const ClientObservation neutral;
  return RunRoundImpl(
      [&](size_t id) { return policy_->Decide(id, neutral, global); },
      [&](size_t id, TechniqueKind technique, bool ok, double credit) {
        policy_->Report(id, neutral, global, technique, ok, credit);
      });
}

double RealFlEngine::EvaluateAccuracy() {
  return global_->EvaluateAccuracy(test_inputs_, test_labels_);
}

double RealFlEngine::EvaluateLoss() { return global_->EvaluateLoss(test_inputs_, test_labels_); }

void RealFlEngine::SaveState(CheckpointWriter& w) const {
  w.Size(rounds_run_);
  SaveRng(w, rng_);
  SaveRng(w, client_stream_root_);
  w.F32Vec(global_->GetParameters());
  injector_.SaveState(w);
  aggregator_->SaveState(w);
  agg_tracker_.SaveState(w);
  transport_tracker_.SaveState(w);
  w.Bool(policy_ != nullptr);
  if (policy_ != nullptr) {
    policy_->SaveState(w);
  }
  guard_.SaveState(w);
  edge_injector_.SaveState(w);
  tree_.SaveState(w);
  topo_tracker_.SaveState(w);
  edge_aggregator_->SaveState(w);
  admission_.SaveState(w);
  update_log_.SaveState(w);
  admission_tracker_.SaveState(w);
  salvage_tracker_.SaveState(w);
  // The RecoveryTracker stays the final section of every engine payload:
  // the recovery tests strip it off the tail to compare training state.
  recovery_tracker_.SaveState(w);
}

void RealFlEngine::LoadState(CheckpointReader& r) {
  rounds_run_ = r.Size();
  LoadRng(r, rng_);
  LoadRng(r, client_stream_root_);
  const std::vector<float> params = r.F32Vec();
  FLOATFL_CHECK_MSG(params.size() == global_->ParamCount() || !r.ok(),
                    "checkpoint model parameter count mismatch");
  if (r.ok()) {
    global_->SetParameters(params);
  }
  injector_.LoadState(r);
  aggregator_->LoadState(r);
  agg_tracker_.LoadState(r);
  transport_tracker_.LoadState(r);
  const bool had_policy = r.Bool();
  FLOATFL_CHECK_MSG(had_policy == (policy_ != nullptr) || !r.ok(),
                    "checkpoint policy presence mismatch");
  if (had_policy != (policy_ != nullptr)) {
    return;
  }
  if (policy_ != nullptr) {
    policy_->LoadState(r);
  }
  guard_.LoadState(r);
  edge_injector_.LoadState(r);
  tree_.LoadState(r);
  topo_tracker_.LoadState(r);
  edge_aggregator_->LoadState(r);
  admission_.LoadState(r);
  update_log_.LoadState(r);
  admission_tracker_.LoadState(r);
  salvage_tracker_.LoadState(r);
  recovery_tracker_.LoadState(r);
}

}  // namespace floatfl
