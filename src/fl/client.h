// Simulated FL client: a device (compute/network/availability/interference
// traces) plus its local data shard and participation history.
#ifndef SRC_FL_CLIENT_H_
#define SRC_FL_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/failure/checkpoint_io.h"
#include "src/trace/availability_trace.h"
#include "src/trace/compute_trace.h"
#include "src/trace/interference.h"
#include "src/trace/network_trace.h"

namespace floatfl {

class Client {
 public:
  Client(size_t id, ClientShard shard, ComputeTrace compute, NetworkTrace network,
         AvailabilityTrace availability, InterferenceModel interference);

  size_t id() const { return id_; }
  const ClientShard& shard() const { return shard_; }
  ComputeTrace& compute() { return compute_; }
  const ComputeTrace& compute() const { return compute_; }
  NetworkTrace& network() { return network_; }
  const NetworkTrace& network() const { return network_; }
  AvailabilityTrace& availability() { return availability_; }
  InterferenceModel& interference() { return interference_; }

  // Participation history (used by selectors and the human-feedback state).
  size_t times_selected = 0;
  size_t times_completed = 0;
  // Duration of the client's last attempted round, seconds (0 if never ran).
  double last_round_duration_s = 0.0;
  // Smoothed deadline overshoot as a fraction of the deadline — the paper's
  // "deadline difference" human feedback: how much this client *typically*
  // deviates from the prescribed round deadline. An EWMA so one rescued
  // round does not erase a chronic straggler's profile.
  double last_deadline_diff = 0.0;

  // Smoothing weights for every per-client profile EWMA: the deadline
  // difference here, and the AdaptiveDeadlineController's round-time and
  // transfer-throughput estimates (src/net/adaptive_deadline.h), which must
  // forget at the same rate so the controller's view of a client ages in
  // step with the human-feedback signal. 0.7/0.3 keeps ~70 % of the history
  // per observation: one rescued round does not erase a chronic straggler's
  // profile, but ~5 observations turn the estimate over.
  // Written as literals (not 1.0 - retain): 0.3 and 1.0 - 0.7 differ in the
  // last ulp, and the goldens pin the literal arithmetic.
  static constexpr double kProfileEwmaRetain = 0.7;
  static constexpr double kProfileEwmaObserve = 0.3;

  void UpdateDeadlineDiff(double observed) {
    last_deadline_diff = kProfileEwmaRetain * last_deadline_diff + kProfileEwmaObserve * observed;
  }
  // Most recent observed on-period length, for REFL-style window prediction.
  double observed_window_s = 0.0;
  // First round this client may be selected again after a crash or a
  // quarantined update (retry-with-cooldown, DESIGN.md §8). 0 = no cooldown.
  // Selectors deprioritize clients with cooldown_until_round > round.
  size_t cooldown_until_round = 0;

  // Checkpoint/resume: participation history plus the four trace processes.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  size_t id_;
  ClientShard shard_;
  ComputeTrace compute_;
  NetworkTrace network_;
  AvailabilityTrace availability_;
  InterferenceModel interference_;
};

// Builds a full client population for an experiment: Dirichlet shards plus
// per-client device traces (70 % 4G / 30 % 5G as in mixed mobile fleets).
std::vector<Client> BuildPopulation(const DatasetSpec& spec, size_t num_clients, double alpha,
                                    InterferenceScenario interference, uint64_t seed);

}  // namespace floatfl

#endif  // SRC_FL_CLIENT_H_
