// Fixed-size work pool for deterministic parallel client simulation.
//
// The FL engines fan per-client work out across a ThreadPool via ParallelFor
// and collect results into index-ordered buffers, so the set of values
// computed — and therefore every downstream floating-point reduction — is
// identical for any worker count. Determinism is a property of the call
// sites (disjoint per-index state, ordered collection); the pool itself only
// guarantees that every submitted task runs exactly once and that exceptions
// propagate to the waiter.
//
// ParallelFor is reentrant: a task may itself call ParallelFor on the same
// pool. Waiters never block idly while the queue is non-empty — they help
// drain it — so nested fan-outs cannot deadlock even when every worker is
// occupied by an outer-level task.
#ifndef SRC_SIM_THREAD_POOL_H_
#define SRC_SIM_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace floatfl {

class ThreadPool {
 public:
  // Spawns `num_workers` worker threads (0 is allowed; every ParallelFor
  // then runs inline on the caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Enqueues `fn`; the future reports completion and rethrows anything the
  // task threw.
  std::future<void> Submit(std::function<void()> fn);

  // Runs one queued task on the calling thread if any is pending. Used by
  // waiters to help drain the queue (this is what makes nested ParallelFor
  // safe). Returns false when the queue was empty.
  bool TryRunOneTask();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Maps an ExperimentConfig-style thread count to an effective one:
// 0 = hardware_concurrency() (at least 1), anything else is taken verbatim.
size_t ResolveThreadCount(size_t requested);

// Runs fn(i) for every i in [0, n), splitting the range into contiguous
// chunks across the pool's workers plus the calling thread, and blocks until
// all of them finish. With a null pool (or no workers, or n <= 1) the loop
// runs inline in index order — the engines' num_threads == 1 path.
//
// If one or more invocations throw, every chunk still runs to its own
// completion or failure, and the exception of the lowest-indexed failing
// chunk is rethrown — deterministic for a deterministic fn.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace floatfl

#endif  // SRC_SIM_THREAD_POOL_H_
