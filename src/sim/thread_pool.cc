#include "src/sim/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "src/common/check.h"

namespace floatfl {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    FLOATFL_CHECK_MSG(!stop_, "Submit after ThreadPool shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::TryRunOneTask() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_workers() == 0 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const size_t chunks = std::min(n, pool->num_workers() + 1);
  const auto chunk_begin = [n, chunks](size_t c) { return c * n / chunks; };

  // Chunks 1..chunks-1 go to the pool; the caller runs chunk 0 itself.
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = chunk_begin(c);
    const size_t end = chunk_begin(c + 1);
    futures.push_back(pool->Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        fn(i);
      }
    }));
  }

  std::exception_ptr caller_error;
  try {
    const size_t end = chunk_begin(1);
    for (size_t i = 0; i < end; ++i) {
      fn(i);
    }
  } catch (...) {
    caller_error = std::current_exception();
  }

  // Wait for every chunk, helping drain the queue instead of blocking so a
  // nested ParallelFor issued from inside a task cannot deadlock the pool.
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool->TryRunOneTask()) {
        future.wait_for(std::chrono::microseconds(50));
      }
    }
  }
  if (caller_error != nullptr) {
    std::rethrow_exception(caller_error);
  }
  for (auto& future : futures) {
    future.get();  // rethrows the lowest-indexed pool-chunk failure
  }
}

}  // namespace floatfl
