// Analytic convergence model for paper-scale FL runs.
//
// Training ResNet-34 for 200 clients x 300 rounds is replaced by a
// saturating convergence curve whose per-round progress depends on exactly
// the factors the paper's claims hinge on:
//   * how many selected clients actually delivered an update (dropouts
//     directly slow and cap convergence),
//   * how much of the (non-IID) data distribution the successful cohort
//     covers (selection bias lowers the achievable ceiling),
//   * the accuracy impact of the straggler optimizations applied to each
//     update (aggressive pruning/quantization add noise),
//   * staleness of async updates (FedBuff).
// Per-client accuracy additionally degrades with the divergence of the
// client's local distribution from the global one, scaled by how rarely the
// client's data made it into the aggregate — reproducing the paper's
// top-10% / average / bottom-10% spread (Figures 3, 5, 6, 12, 13).
// See DESIGN.md §3 for the substitution rationale.
#ifndef SRC_MODELS_SURROGATE_ACCURACY_H_
#define SRC_MODELS_SURROGATE_ACCURACY_H_

#include <cstddef>
#include <vector>

#include "src/data/dataset.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

struct SurrogateConfig {
  double max_accuracy = 0.8;
  double initial_accuracy = 0.05;
  double convergence_rate = 0.03;
  // Expected successful participants per round (K in the paper's setups).
  double participation_target = 30.0;
  // Strength of per-client non-IID penalty (0 disables).
  double divergence_penalty = 0.45;
  // Per-round contribution discount per unit of staleness.
  double staleness_discount = 0.15;
};

SurrogateConfig SurrogateConfigFor(const DatasetSpec& spec, double participation_target);

struct ClientContribution {
  size_t client_id = 0;
  // 1 - accuracy impact of the optimization applied to this update (1 = a
  // full-quality update, lower for aggressive pruning/quantization).
  double quality = 1.0;
  // Staleness in aggregation rounds (0 for synchronous FL).
  double staleness = 0.0;
  // Completed-work weight in (0, 1]: 1 for a full update, the completed-step
  // (or acked-byte) fraction for a salvaged partial (DESIGN.md §16). The
  // weight scales the contribution symmetrically — numerator AND denominator
  // of the round-quality average — so a partial adds its fraction of
  // participation without diluting the cohort's quality, and weight 1.0 is
  // bit-identical to the pre-salvage arithmetic.
  double weight = 1.0;
};

class SurrogateAccuracyModel {
 public:
  SurrogateAccuracyModel(const SurrogateConfig& config, const std::vector<ClientShard>& shards);

  // Advances the global accuracy by one aggregation round given the updates
  // that were successfully aggregated.
  void RoundUpdate(const std::vector<ClientContribution>& successful);

  double GlobalAccuracy() const { return global_accuracy_; }

  // Per-client test accuracy (global accuracy discounted by non-IID
  // mismatch for clients whose data rarely reached the aggregate).
  double ClientAccuracy(size_t client_id) const;
  std::vector<double> AllClientAccuracies() const;

  // Fraction of the population's data mass held by clients that have ever
  // contributed a successful update.
  double DataCoverage() const;

  size_t NumClients() const { return divergence_.size(); }
  size_t RoundsSimulated() const { return rounds_; }

  // Checkpoint/resume of the mutable convergence state (the shard-derived
  // divergence/share tables are rebuilt deterministically at construction).
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  SurrogateConfig config_;
  double global_accuracy_;
  size_t rounds_ = 0;
  // Smoothed quality of aggregated updates; sustained aggressive
  // optimization (low quality) lowers the achievable accuracy ceiling, which
  // is the Figure-5 trade-off between participation and accuracy.
  double quality_ewma_ = 1.0;
  std::vector<double> divergence_;     // L1 label divergence per client, [0,2]
  std::vector<double> data_share_;     // client's share of total samples
  std::vector<double> contrib_ewma_;   // smoothed successful-participation level
  std::vector<bool> ever_contributed_;
  std::vector<double> global_dist_;
  std::vector<ClientShard> shards_;
};

}  // namespace floatfl

#endif  // SRC_MODELS_SURROGATE_ACCURACY_H_
