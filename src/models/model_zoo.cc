#include "src/models/model_zoo.h"

#include "src/common/check.h"

namespace floatfl {
namespace {

// FLOPs: published forward-pass figures x3 for backward; weights: params x 4
// bytes / 2^20; activation memory per batch sample from standard profiling.
const ModelProfile kProfiles[] = {
    {ModelId::kResNet18, "ResNet-18", 11'689'512, 5.4, 44.6, 23.0},
    {ModelId::kResNet34, "ResNet-34", 21'797'672, 11.0, 83.2, 34.0},
    {ModelId::kResNet50, "ResNet-50", 25'557'032, 12.3, 97.5, 103.0},
    {ModelId::kShuffleNetV2, "ShuffleNetV2", 2'278'604, 0.44, 8.7, 12.0},
    {ModelId::kSpeechCnn, "SpeechCNN", 540'000, 0.11, 2.1, 4.0},
};

}  // namespace

const ModelProfile& GetModelProfile(ModelId id) {
  for (const auto& p : kProfiles) {
    if (p.id == id) {
      return p;
    }
  }
  FLOATFL_CHECK_MSG(false, "unknown model id");
  return kProfiles[0];
}

}  // namespace floatfl
