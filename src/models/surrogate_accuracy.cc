#include "src/models/surrogate_accuracy.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace floatfl {
namespace {

// Caps for the adversarial-damage path in RoundUpdate: per-update damage is
// bounded (one absurd negative quality cannot zero a run) and the decay per
// round is a fixed fraction of the accuracy gained so far.
constexpr double kMaxDamagePerUpdate = 8.0;
constexpr double kPoisonDecay = 0.25;

}  // namespace

SurrogateConfig SurrogateConfigFor(const DatasetSpec& spec, double participation_target) {
  SurrogateConfig config;
  config.max_accuracy = spec.max_accuracy;
  config.initial_accuracy = spec.initial_accuracy;
  config.convergence_rate = spec.convergence_rate;
  config.participation_target = participation_target;
  return config;
}

SurrogateAccuracyModel::SurrogateAccuracyModel(const SurrogateConfig& config,
                                               const std::vector<ClientShard>& shards)
    : config_(config), global_accuracy_(config.initial_accuracy), shards_(shards) {
  FLOATFL_CHECK(!shards.empty());
  FLOATFL_CHECK(config.participation_target > 0.0);
  global_dist_ = GlobalLabelDistribution(shards_);
  divergence_.reserve(shards_.size());
  data_share_.reserve(shards_.size());
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += static_cast<double>(shard.total);
  }
  for (const auto& shard : shards_) {
    divergence_.push_back(LabelDivergence(shard, global_dist_));
    data_share_.push_back(total > 0.0 ? static_cast<double>(shard.total) / total : 0.0);
  }
  contrib_ewma_.assign(shards_.size(), 0.0);
  ever_contributed_.assign(shards_.size(), false);
}

void SurrogateAccuracyModel::RoundUpdate(const std::vector<ClientContribution>& successful) {
  ++rounds_;
  // Decay everyone's smoothed contribution level, then credit this round's
  // successful contributors.
  for (auto& c : contrib_ewma_) {
    c *= 0.995;
  }
  double effective_updates = 0.0;
  // Adversarial pressure: contributions with *negative* quality — the
  // quality-space shadow of a model-replacement attack
  // (FaultInjector::AttackedQuality) — actively drag the global accuracy
  // back toward its initial value instead of merely contributing nothing.
  // Per-update damage is capped so one absurd magnitude cannot zero the run.
  double damage = 0.0;
  std::vector<double> cohort_dist(global_dist_.size(), 0.0);
  double cohort_mass = 0.0;
  // Sum of contribution weights — the denominator of the round-quality
  // average. Full updates weigh 1.0, salvaged partials their completed-work
  // fraction (DESIGN.md §16); with all-1.0 weights the sum equals
  // successful.size() exactly, so the pre-salvage arithmetic is preserved
  // bit-for-bit.
  double weight_total = 0.0;
  for (const auto& contribution : successful) {
    FLOATFL_CHECK(contribution.client_id < shards_.size());
    const double discount =
        1.0 / (1.0 + config_.staleness_discount * std::max(0.0, contribution.staleness));
    const double quality = std::clamp(contribution.quality, 0.0, 1.0);
    if (contribution.quality < 0.0) {
      damage += std::min(-contribution.quality, kMaxDamagePerUpdate) * discount *
                contribution.weight;
    }
    effective_updates += quality * discount * contribution.weight;
    weight_total += contribution.weight;
    const size_t id = contribution.client_id;
    contrib_ewma_[id] =
        std::min(1.0, contrib_ewma_[id] + 0.15 * quality * discount * contribution.weight);
    ever_contributed_[id] = true;
    for (size_t k = 0; k < cohort_dist.size(); ++k) {
      cohort_dist[k] += static_cast<double>(shards_[id].class_counts[k]) * contribution.weight;
    }
    cohort_mass += static_cast<double>(shards_[id].total) * contribution.weight;
  }
  if (effective_updates <= 0.0 && damage <= 0.0) {
    // A wholly failed round contributes nothing (the paper: progress made by
    // dropped clients is lost).
    return;
  }
  if (effective_updates > 0.0) {
    // Participation factor: sub-linear in the number of effective updates,
    // saturating slightly above the target (diminishing returns of more
    // parallel clients per round).
    const double participation =
        std::min(1.25, effective_updates / config_.participation_target);
    // Cohort bias: L1 divergence of this round's aggregated data from the
    // global distribution, normalized to [0, 1].
    double round_divergence = 0.0;
    if (cohort_mass > 0.0) {
      for (size_t k = 0; k < cohort_dist.size(); ++k) {
        round_divergence += std::fabs(cohort_dist[k] / cohort_mass - global_dist_[k]);
      }
      round_divergence *= 0.5;
    }
    const double rate = config_.convergence_rate * std::pow(participation, 0.6) *
                        (1.0 - 0.5 * round_divergence);
    // Smoothed update quality: persistent aggressive optimization (8-bit
    // quantization, 75 % pruning/partial training on every update) caps the
    // accuracy the federation can reach, not just its speed.
    const double round_quality =
        effective_updates > 0.0 && weight_total > 0.0 ? effective_updates / weight_total : 1.0;
    quality_ewma_ += 0.1 * (round_quality - quality_ewma_);
    const double quality_factor = std::clamp(1.0 - 1.2 * (1.0 - quality_ewma_), 0.5, 1.0);
    // Achievable ceiling grows with cumulative data coverage: a model that has
    // never seen 40% of the data mass cannot reach full accuracy.
    const double coverage = DataCoverage();
    const double ceiling = config_.initial_accuracy +
                           (config_.max_accuracy - config_.initial_accuracy) *
                               (0.35 + 0.65 * coverage) * quality_factor;
    if (global_accuracy_ < ceiling) {
      global_accuracy_ += rate * (ceiling - global_accuracy_);
    }
    global_accuracy_ =
        std::clamp(global_accuracy_, config_.initial_accuracy, config_.max_accuracy);
  }
  if (damage > 0.0) {
    // Aggregated poisoning decays accuracy toward the initial value, scaled
    // by how much of a target-sized cohort the attackers amount to. With 20%
    // scaled-replacement attackers at scale 3 this erases ~15% of the gap
    // above initial accuracy per round — fast enough that an unguarded run
    // visibly collapses and a divergence watchdog has something to catch.
    const double pressure = std::min(1.0, damage / config_.participation_target);
    global_accuracy_ -= kPoisonDecay * pressure * (global_accuracy_ - config_.initial_accuracy);
    global_accuracy_ =
        std::clamp(global_accuracy_, config_.initial_accuracy, config_.max_accuracy);
  }
}

double SurrogateAccuracyModel::ClientAccuracy(size_t client_id) const {
  FLOATFL_CHECK(client_id < divergence_.size());
  const double mismatch = 0.5 * divergence_[client_id];  // [0, 1]
  const double neglect = 1.0 - std::min(1.0, contrib_ewma_[client_id]);
  const double penalty = config_.divergence_penalty * mismatch * neglect;
  return std::max(0.0, global_accuracy_ * (1.0 - penalty));
}

std::vector<double> SurrogateAccuracyModel::AllClientAccuracies() const {
  std::vector<double> out(divergence_.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = ClientAccuracy(i);
  }
  return out;
}

double SurrogateAccuracyModel::DataCoverage() const {
  double covered = 0.0;
  for (size_t i = 0; i < data_share_.size(); ++i) {
    if (ever_contributed_[i]) {
      covered += data_share_[i];
    }
  }
  return covered;
}

void SurrogateAccuracyModel::SaveState(CheckpointWriter& w) const {
  w.F64(global_accuracy_);
  w.Size(rounds_);
  w.F64(quality_ewma_);
  w.F64Vec(contrib_ewma_);
  w.BoolVec(ever_contributed_);
}

void SurrogateAccuracyModel::LoadState(CheckpointReader& r) {
  global_accuracy_ = r.F64();
  rounds_ = r.Size();
  quality_ewma_ = r.F64();
  contrib_ewma_ = r.F64Vec();
  ever_contributed_ = r.BoolVec();
}

}  // namespace floatfl
