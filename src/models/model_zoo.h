// Cost profiles of the DNN architectures used in the paper's evaluation.
//
// The simulator never executes these networks; it charges their compute
// (training FLOPs/sample), communication (weight bytes up + down) and memory
// (weights + activations) costs against the client's simulated resources,
// exactly as FedScale does. Parameter/FLOP numbers follow the standard
// published figures for each architecture.
#ifndef SRC_MODELS_MODEL_ZOO_H_
#define SRC_MODELS_MODEL_ZOO_H_

#include <cstddef>
#include <string>

namespace floatfl {

enum class ModelId {
  kResNet18,
  kResNet34,
  kResNet50,
  kShuffleNetV2,
  kSpeechCnn,
};

struct ModelProfile {
  ModelId id;
  std::string name;
  size_t param_count;
  // Training cost (forward + backward) per sample, in GFLOP.
  double train_gflops_per_sample;
  // Serialized model update size in MB (fp32 weights).
  double weight_mb;
  // Peak training memory per sample of batch, in MB (activations + grads).
  double activation_mb_per_sample;
};

const ModelProfile& GetModelProfile(ModelId id);

}  // namespace floatfl

#endif  // SRC_MODELS_MODEL_ZOO_H_
