#include "src/topology/topology_config.h"

#include "src/agg/aggregator.h"
#include "src/common/check.h"

namespace floatfl {

FaultConfig TopologyConfig::LinkFaultConfig() const {
  FaultConfig link;
  link.transport = EdgeLinkLossy();
  link.chunk_loss_prob = edge_link_loss_prob;
  link.link_blackout_prob = edge_link_blackout_prob;
  link.transport_chunk_mb = edge_chunk_mb;
  link.max_transfer_retries = edge_max_retries;
  // Partial aggregates are re-derivable server-side state; retries always
  // salvage acknowledged chunks (range requests are free between servers).
  link.resumable_uploads = true;
  return link;
}

void ValidateTopologyConfig(const TopologyConfig& config) {
  FLOATFL_CHECK_MSG(config.edge_overcommit >= 1.0, "topology.edge_overcommit must be >= 1.0");
  FLOATFL_CHECK_MSG(config.edge_crash_prob >= 0.0 && config.edge_crash_prob <= 1.0,
                    "topology.edge_crash_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.edge_blackout_prob >= 0.0 && config.edge_blackout_prob <= 1.0,
                    "topology.edge_blackout_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.edge_flaky_fraction >= 0.0 && config.edge_flaky_fraction <= 1.0,
                    "topology.edge_flaky_fraction must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.edge_flaky_enter_prob >= 0.0 && config.edge_flaky_enter_prob <= 1.0,
                    "topology.edge_flaky_enter_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.edge_flaky_exit_prob >= 0.0 && config.edge_flaky_exit_prob <= 1.0,
                    "topology.edge_flaky_exit_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.edge_flaky_crash_prob >= 0.0 && config.edge_flaky_crash_prob <= 1.0,
                    "topology.edge_flaky_crash_prob must be in [0, 1]");
  FLOATFL_CHECK_MSG(
      config.edge_byzantine_fraction >= 0.0 && config.edge_byzantine_fraction <= 1.0,
      "topology.edge_byzantine_fraction must be in [0, 1]");
  FLOATFL_CHECK_MSG(config.edge_byzantine_scale >= 0.0,
                    "topology.edge_byzantine_scale must be non-negative");
  FLOATFL_CHECK_MSG(config.edge_link_loss_prob >= 0.0 && config.edge_link_loss_prob < 1.0,
                    "topology.edge_link_loss_prob must be in [0, 1)");
  FLOATFL_CHECK_MSG(
      config.edge_link_blackout_prob >= 0.0 && config.edge_link_blackout_prob < 1.0,
      "topology.edge_link_blackout_prob must be in [0, 1)");
  FLOATFL_CHECK_MSG(config.edge_chunk_mb > 0.0, "topology.edge_chunk_mb must be positive");
  FLOATFL_CHECK_MSG(
      config.edge_adaptive_deadline.min_factor > 0.0 &&
          config.edge_adaptive_deadline.min_factor <= config.edge_adaptive_deadline.max_factor,
      "topology.edge_adaptive_deadline factors must satisfy 0 < min_factor <= max_factor");
  FLOATFL_CHECK_MSG(config.edge_adaptive_deadline.headroom > 0.0,
                    "topology.edge_adaptive_deadline.headroom must be positive");
  ValidateAggregatorConfig(config.edge_aggregator);
}

}  // namespace floatfl
