// Hierarchical aggregation topology (DESIGN.md §13).
//
// Arranges the client population under a two-tier tree: clients report to a
// configurable number of edge aggregators, each edge folds its cohort with
// its own aggregation rule and forwards one partial aggregate to the root
// over a (possibly lossy) inter-tier link. Edges are a fault domain of their
// own — they can crash, black out, run flaky Markov episodes, or turn
// Byzantine and tamper with the partial they forward — and the recovery
// policy (deterministic failover to sibling edges, per-edge retry cooldowns,
// root-side over-selection of edges) decides how gracefully the system
// degrades when they do.
//
// A default-constructed TopologyConfig (num_edges == 0) is a strict no-op:
// the engines keep their single-server star semantics bit-for-bit, no edge
// fault draws happen, and every pre-topology golden stays byte-identical.
#ifndef SRC_TOPOLOGY_TOPOLOGY_CONFIG_H_
#define SRC_TOPOLOGY_TOPOLOGY_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/agg/aggregator_config.h"
#include "src/failure/fault_config.h"
#include "src/net/adaptive_deadline.h"

namespace floatfl {

struct TopologyConfig {
  // Number of edge aggregators between the clients and the root. 0 keeps the
  // flat star topology (strict no-op); >= 1 routes every client through its
  // home edge `client_id % num_edges`.
  size_t num_edges = 0;

  // --- Recovery policy ----------------------------------------------------
  // Reparent the clients of a down edge to the next live sibling in ring
  // order. Off = those clients are orphaned for the round (they are never
  // tasked and count as DropoutReason::kEdgeOrphaned).
  bool failover = true;
  // Rounds a *crashed* edge sits out before it may aggregate again (its
  // clients fail over or orphan meanwhile). Blackouts are transient and
  // carry no cooldown.
  size_t edge_retry_cooldown_rounds = 2;
  // Root-side over-selection of edges: the tree is provisioned with more
  // edges than the root strictly waits for, and the root closes the round
  // after the first ceil(num_edges / edge_overcommit) partials (ordered by
  // edge elapsed time, edge index breaking ties). Later partials are
  // abandoned and counted as late. 1.0 = wait for every live edge. Only
  // meaningful on engines with a wall clock (sync).
  double edge_overcommit = 1.0;

  // --- Edge faults (keyed (seed, round, edge), DESIGN.md §13) -------------
  // Per edge-round probability the edge process crashes: its cohort fails
  // over (or orphans) and the edge cools down for edge_retry_cooldown_rounds.
  double edge_crash_prob = 0.0;
  // Per edge-round probability of a transient outage: same in-round effect
  // as a crash but no cooldown — the edge is back next round.
  double edge_blackout_prob = 0.0;
  // Markov two-state flaky edges, mirroring the client model: a seeded
  // edge_flaky_fraction of edges is eligible; eligible edges enter/leave the
  // flaky state with the given per-round probabilities and suffer
  // edge_flaky_crash_prob *additional* crash probability while flaky.
  double edge_flaky_fraction = 0.0;
  double edge_flaky_enter_prob = 0.0;
  double edge_flaky_exit_prob = 0.0;
  double edge_flaky_crash_prob = 0.0;

  // --- Byzantine edge ------------------------------------------------------
  // A seeded edge_byzantine_fraction of edges tampers with the partial
  // aggregate it forwards (membership drawn once from the seed, like client
  // colluders). The root's validation catches out-of-band tampering
  // (tampered-partial rejections); in-band tampering is the root
  // aggregation rule's problem.
  ByzantineMode edge_byzantine_mode = ByzantineMode::kNone;
  double edge_byzantine_fraction = 0.0;
  double edge_byzantine_scale = 3.0;

  // --- Inter-tier link (edge -> root, src/net semantics) ------------------
  // The partial-aggregate upload is a chunked lossy transfer keyed
  // (seed', round, edge): per-chunk loss, mid-transfer blackouts, bounded
  // retries. Exhausting the retries loses the whole partial — every update
  // behind it — for the round. Both probabilities zero = loss-free link
  // (no transport draws at all).
  double edge_link_loss_prob = 0.0;
  double edge_link_blackout_prob = 0.0;
  double edge_chunk_mb = 1.0;
  size_t edge_max_retries = 4;

  // --- Per-tier aggregation and deadline ----------------------------------
  // Aggregation rule each edge applies to its cohort before forwarding
  // (default plain FedAvg / pass-through). The root keeps using the engine's
  // top-level AggregatorConfig.
  AggregatorConfig edge_aggregator;
  // Root-tier adaptive deadline over per-edge round times: partials slower
  // than the controller's proposal are dropped as late. Default off. Only
  // meaningful on engines with a wall clock (sync).
  AdaptiveDeadlineConfig edge_adaptive_deadline;

  bool enabled() const { return num_edges > 0; }

  // True when any edge-level fault can fire.
  bool EdgeFaultsEnabled() const {
    return enabled() &&
           (edge_crash_prob > 0.0 || edge_blackout_prob > 0.0 ||
            (edge_flaky_fraction > 0.0 && edge_flaky_crash_prob > 0.0));
  }

  // True when the Byzantine edge adversary can act.
  bool EdgeAttacksEnabled() const {
    return enabled() && edge_byzantine_mode != ByzantineMode::kNone &&
           edge_byzantine_fraction > 0.0 && edge_byzantine_scale > 0.0;
  }

  // True when the edge -> root link must route through the lossy transport.
  bool EdgeLinkLossy() const {
    return enabled() && (edge_link_loss_prob > 0.0 || edge_link_blackout_prob > 0.0);
  }

  // The src/net FaultConfig describing the inter-tier link, for constructing
  // the root's Transport over the edge uplinks.
  FaultConfig LinkFaultConfig() const;

  // Salt decorrelating the inter-tier transport streams from the client-tier
  // transport, which keys the same (round, index) coordinate space.
  static constexpr uint64_t kEdgeLinkSeedSalt = 0x1F83D9ABFB41BD6BULL;
};

// Aborts with a descriptive message when `config` violates a topology
// invariant. Called by every engine constructor (topology enabled or not, so
// a bad config fails fast even before someone raises num_edges).
void ValidateTopologyConfig(const TopologyConfig& config);

}  // namespace floatfl

#endif  // SRC_TOPOLOGY_TOPOLOGY_CONFIG_H_
