// The two-tier client -> edge -> root aggregation tree and its failover
// policy (DESIGN.md §13).
//
// Membership is static and derived from the config alone: client c reports
// to home edge c % num_edges. What changes round to round is which edges are
// up. BeginRound folds the round's EdgeFaultDecisions and the per-edge crash
// cooldowns into an up/down mask and — when failover is on — assigns every
// down edge a deterministic foster: the first live sibling scanning ring
// order from the next index. All of it is pure arithmetic over the decisions
// (no RNG, no floating point), so the assignment is bit-identical for every
// thread count and across checkpoint boundaries.
#ifndef SRC_TOPOLOGY_AGGREGATION_TREE_H_
#define SRC_TOPOLOGY_AGGREGATION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/failure/checkpoint_io.h"
#include "src/failure/edge_fault_injector.h"
#include "src/topology/topology_config.h"

namespace floatfl {

class AggregationTree {
 public:
  // No edge in the chain can take the client this round.
  static constexpr size_t kOrphaned = static_cast<size_t>(-1);

  // Disabled tree (star topology): every query answers as if the root were
  // the only aggregator.
  AggregationTree() = default;
  AggregationTree(const TopologyConfig& config, size_t num_clients);

  bool enabled() const { return config_.enabled(); }
  size_t num_edges() const { return config_.num_edges; }

  size_t HomeEdge(size_t client_id) const {
    return enabled() ? client_id % config_.num_edges : 0;
  }

  // Applies one round's edge fault decisions: refreshes the up/down mask
  // (crashed, blacked out, or cooling edges are down), starts crash
  // cooldowns, and recomputes the foster assignment. Call once per round
  // from sequential code, before any routing query.
  void BeginRound(size_t round, const std::vector<EdgeFaultDecision>& decisions);

  bool EdgeUp(size_t edge) const { return edge < up_.size() && up_[edge] != 0; }
  // True while `edge` sits out a crash cooldown at the given round.
  bool EdgeCooling(size_t edge, size_t round) const {
    return edge < cooldown_until_.size() && round < cooldown_until_[edge];
  }
  // The live edge standing in for a down `edge` this round (the edge itself
  // when up); kOrphaned when failover is off or every edge is down.
  size_t StandinFor(size_t edge) const;

  // The edge that aggregates `client_id` this round after failover:
  // its home edge when up, the home edge's foster otherwise, kOrphaned when
  // no edge can take it.
  size_t EffectiveEdge(size_t client_id) const;
  // True when the client runs under a foster edge this round.
  bool Reparented(size_t client_id) const {
    const size_t effective = EffectiveEdge(client_id);
    return effective != kOrphaned && effective != HomeEdge(client_id);
  }

  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  TopologyConfig config_;
  size_t num_clients_ = 0;
  // Per-edge first round at which a crashed edge may rejoin.
  std::vector<size_t> cooldown_until_;
  // This round's mask and foster assignment (recomputed by BeginRound;
  // serialized so a checkpoint captures the failover state bit-exactly).
  std::vector<uint8_t> up_;
  std::vector<size_t> foster_;
};

}  // namespace floatfl

#endif  // SRC_TOPOLOGY_AGGREGATION_TREE_H_
