#include "src/topology/aggregation_tree.h"

#include "src/common/check.h"

namespace floatfl {

AggregationTree::AggregationTree(const TopologyConfig& config, size_t num_clients)
    : config_(config), num_clients_(num_clients) {
  if (!config_.enabled()) {
    return;
  }
  cooldown_until_.assign(config_.num_edges, 0);
  up_.assign(config_.num_edges, 1);
  foster_.assign(config_.num_edges, kOrphaned);
}

void AggregationTree::BeginRound(size_t round, const std::vector<EdgeFaultDecision>& decisions) {
  if (!config_.enabled()) {
    return;
  }
  FLOATFL_CHECK_MSG(decisions.size() == config_.num_edges,
                    "edge decision count / topology size mismatch");
  const size_t num_edges = config_.num_edges;
  for (size_t edge = 0; edge < num_edges; ++edge) {
    const bool cooling = round < cooldown_until_[edge];
    const EdgeFaultDecision& d = decisions[edge];
    // A cooling edge is down regardless of this round's draws; a fresh crash
    // (re)starts the cooldown clock.
    if (d.crash) {
      cooldown_until_[edge] = round + 1 + config_.edge_retry_cooldown_rounds;
    }
    up_[edge] = (cooling || d.crash || d.blackout) ? 0 : 1;
  }
  for (size_t edge = 0; edge < num_edges; ++edge) {
    foster_[edge] = kOrphaned;
    if (up_[edge] || !config_.failover) {
      continue;
    }
    // First live sibling scanning ring order from the next index: every
    // server computes the same assignment without coordination.
    for (size_t step = 1; step < num_edges; ++step) {
      const size_t candidate = (edge + step) % num_edges;
      if (up_[candidate]) {
        foster_[edge] = candidate;
        break;
      }
    }
  }
}

size_t AggregationTree::StandinFor(size_t edge) const {
  if (!config_.enabled() || edge >= up_.size()) {
    return kOrphaned;
  }
  return up_[edge] ? edge : foster_[edge];
}

size_t AggregationTree::EffectiveEdge(size_t client_id) const {
  if (!config_.enabled()) {
    return 0;
  }
  return StandinFor(HomeEdge(client_id));
}

void AggregationTree::SaveState(CheckpointWriter& w) const {
  w.SizeVec(cooldown_until_);
  w.U8Vec(up_);
  w.SizeVec(foster_);
}

void AggregationTree::LoadState(CheckpointReader& r) {
  cooldown_until_ = r.SizeVec();
  up_ = r.U8Vec();
  foster_ = r.SizeVec();
}

}  // namespace floatfl
