// Per-client log of the last accepted upload (DESIGN.md §15).
//
// The overload injector's replay fault re-delivers a client's most recent
// accepted upload — exactly what a retransmit buffer would hold. The log
// keeps one entry per client: the round it was accepted at, the
// quality-space contribution (surrogate engines) or parameter vector +
// FedAvg weight (real engine), and the delivery cost a redundant
// re-processing of it charges. Populated only while overload faults are
// active; serialized with the engine so replays are bit-exact across
// resumes.
#ifndef SRC_ADMISSION_UPDATE_LOG_H_
#define SRC_ADMISSION_UPDATE_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/failure/checkpoint_io.h"

namespace floatfl {

struct LoggedUpload {
  bool valid = false;
  uint64_t round = 0;
  // Launch count at upload time — the dedup key's attempt component, so a
  // replay within the dedup window folds onto the original's key.
  uint64_t attempt = 0;
  double quality = 0.0;
  // Redundant-delivery processing cost: the upload leg's comm seconds and
  // wire MB, charged as waste when an unguarded server re-processes it.
  double upload_comm_s = 0.0;
  double upload_mb = 0.0;
  uint32_t technique = 0;
  // Real engine only: the accepted parameter vector and its FedAvg weight.
  std::vector<float> params;
  double weight = 0.0;
};

class UpdateLog {
 public:
  UpdateLog() = default;
  explicit UpdateLog(size_t num_clients) : entries_(num_clients) {}

  void Record(size_t client_id, LoggedUpload entry) {
    entry.valid = true;
    entries_[client_id] = std::move(entry);
  }

  // The client's last accepted upload, or nullptr if it never had one.
  const LoggedUpload* Get(size_t client_id) const {
    const LoggedUpload& e = entries_[client_id];
    return e.valid ? &e : nullptr;
  }

  size_t size() const { return entries_.size(); }

  void SaveState(CheckpointWriter& w) const {
    w.Size(entries_.size());
    for (const LoggedUpload& e : entries_) {
      w.Bool(e.valid);
      if (!e.valid) {
        continue;
      }
      w.U64(e.round);
      w.U64(e.attempt);
      w.F64(e.quality);
      w.F64(e.upload_comm_s);
      w.F64(e.upload_mb);
      w.U32(e.technique);
      w.F32Vec(e.params);
      w.F64(e.weight);
    }
  }
  void LoadState(CheckpointReader& r) {
    const size_t n = r.Size();
    entries_.clear();
    for (size_t i = 0; i < n && r.ok(); ++i) {
      entries_.emplace_back();
      LoggedUpload& e = entries_.back();
      e.valid = r.Bool();
      if (!e.valid) {
        continue;
      }
      e.round = r.U64();
      e.attempt = r.U64();
      e.quality = r.F64();
      e.upload_comm_s = r.F64();
      e.upload_mb = r.F64();
      e.technique = r.U32();
      e.params = r.F32Vec();
      e.weight = r.F64();
    }
  }

 private:
  std::vector<LoggedUpload> entries_;
};

}  // namespace floatfl

#endif  // SRC_ADMISSION_UPDATE_LOG_H_
