// Deterministic server-ingestion gate (DESIGN.md §15).
//
// Every engine funnels its delivered uploads — plus whatever duplicates,
// replays and stampede bursts the overload injector adds — through one
// Admit() call per ingestion burst. The gate applies, per arrival and in
// arrival order: (1) idempotent deduplication keyed (client, round,
// attempt), (2) replay-age rejection, (3) per-client token-bucket rate
// limiting, (4) the bounded ingress queue with the configured shedding
// policy. Everything is plain sequential bookkeeping over deterministic
// inputs — no RNG draws — so admission is trivially thread-count invariant;
// the dedup window and token buckets serialize for bit-exact resume.
#ifndef SRC_ADMISSION_ADMISSION_CONTROLLER_H_
#define SRC_ADMISSION_ADMISSION_CONTROLLER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/admission/admission_config.h"
#include "src/failure/checkpoint_io.h"
#include "src/metrics/admission_tracker.h"

namespace floatfl {

enum class DropoutReason : uint32_t;

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(const AdmissionConfig& config) : config_(config) {}

  // One delivery attempt reaching the server's ingress.
  struct Arrival {
    size_t client_id = 0;
    // Round (sync/real) or start version (async) the upload belongs to.
    uint64_t round = 0;
    // Delivery attempt number; injected at-least-once duplicates carry the
    // attempt of the delivery they duplicate, which is what lets the dedup
    // key fold them.
    uint64_t attempt = 0;
    // Age of the upload in aggregation rounds (0 for a fresh upload).
    double staleness = 0.0;
    // Shedding priority under SheddingPolicy::kUtilityPriority: the sync
    // engine passes the selector's utility score, the others update quality.
    double utility = 0.0;
  };

  struct Verdict {
    bool admitted = false;
    // kNone when admitted; kDuplicate / kReplayed / kRateLimited / kShed
    // otherwise.
    DropoutReason reason{};
    // Contribution weight of an admitted arrival (staleness downweighting;
    // 1.0 unless enabled).
    double weight = 1.0;
  };

  bool enabled() const { return config_.enabled(); }
  const AdmissionConfig& config() const { return config_; }

  // Gates one ordered ingestion burst arriving at `now_round`. Returns one
  // verdict per arrival, same order. Records per-verdict counters and the
  // burst's peak queue depth into `tracker` (may be null).
  std::vector<Verdict> Admit(uint64_t now_round, const std::vector<Arrival>& arrivals,
                             AdmissionTracker* tracker);

  // Checkpoint/resume of the gate's cross-round state: the dedup window and
  // the token buckets. (The ingress queue drains within a burst and has no
  // cross-round state.)
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  // (client, round, attempt) — sorted so serialization is deterministic.
  using DedupKey = std::tuple<uint64_t, uint64_t, uint64_t>;
  struct Bucket {
    double tokens = 0.0;
    uint64_t last_refill_round = 0;
  };

  AdmissionConfig config_;
  std::set<DedupKey> seen_;
  std::map<uint64_t, Bucket> buckets_;
};

}  // namespace floatfl

#endif  // SRC_ADMISSION_ADMISSION_CONTROLLER_H_
