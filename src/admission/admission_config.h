// Configuration of the server-ingestion (admission) layer (DESIGN.md §15).
//
// The admission gate sits between update delivery and aggregation on every
// engine: a bounded ingress queue with a configurable shedding policy,
// idempotent (deduplicated) admission keyed by (client, round, attempt),
// per-client token-bucket rate limiting, and — for the async engine — the
// bounded-staleness acceptance rule promoted from the old hardcoded
// kMaxStaleness constant, with an optional staleness-downweighting mode.
// A default-constructed AdmissionConfig disables every gate: the engines
// behave byte-for-byte as if the layer did not exist.
#ifndef SRC_ADMISSION_ADMISSION_CONFIG_H_
#define SRC_ADMISSION_ADMISSION_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace floatfl {

// What to evict when an arrival finds the bounded ingress queue full.
enum class SheddingPolicy : uint32_t {
  // Reject the incoming arrival; everything already queued stays.
  kDropNewest = 0,
  // Evict the earliest-queued arrival and admit the incoming one.
  kDropOldest = 1,
  // Evict the queued arrival with the largest staleness (earliest among
  // ties); the incoming arrival is rejected instead when it is at least as
  // stale as everything queued.
  kDropStalest = 2,
  // Evict the queued arrival with the lowest utility score (the sync engine
  // feeds the selector's per-client utility; the other engines fall back to
  // update quality). The incoming arrival is rejected instead when its
  // utility does not beat the queued minimum.
  kUtilityPriority = 3,
};

struct AdmissionConfig {
  // Bounded ingress queue capacity per ingestion burst (a round's deliveries
  // on the sync/real engines, a retirement burst on the async engine).
  // 0 = unbounded queue: nothing is ever shed.
  size_t queue_capacity = 0;
  // Eviction rule applied when an arrival finds the queue full.
  SheddingPolicy shed_policy = SheddingPolicy::kDropNewest;

  // Idempotent admission: remember accepted (client, round, attempt) keys
  // and fold re-deliveries of the same key into one accepted update
  // (DropoutReason::kDuplicate). Keys older than dedup_window_rounds are
  // forgotten — a replay from beyond the window is the replay gate's job.
  bool dedup = false;
  size_t dedup_window_rounds = 4;

  // Replay rejection: refuse uploads older than max_update_age rounds
  // (DropoutReason::kReplayed). With max_update_age == 0 only current-round
  // uploads are admitted. Off by default.
  bool reject_replays = false;
  size_t max_update_age = 0;

  // Per-client deterministic token bucket: each client earns
  // rate_tokens_per_round tokens per round (capped at rate_bucket_cap, which
  // defaults to the refill amount when left 0) and every delivery attempt
  // spends one. An empty bucket rejects the delivery
  // (DropoutReason::kRateLimited). 0 = no rate limiting.
  double rate_tokens_per_round = 0.0;
  double rate_bucket_cap = 0.0;

  // Async bounded-staleness acceptance (the old AsyncEngine::kMaxStaleness
  // constant, now configurable). Updates staler than this are discarded as
  // DropoutReason::kMissedDeadline, exactly as before; the pinned default
  // keeps every pre-admission golden byte-identical.
  double async_max_staleness = 10.0;

  // Staleness downweighting: instead of admitting stale updates at full
  // weight, scale their contribution by 1 / (1 + staleness_decay *
  // staleness). Applies to every engine's admitted arrivals; off by default.
  bool staleness_downweight = false;
  double staleness_decay = 0.25;

  // True when any ingress gate can reject or reweight an arrival. The
  // async_max_staleness field is deliberately excluded: it replaces a
  // pre-existing engine constant and is active (at its pinned default) even
  // when the admission layer itself is off.
  bool enabled() const {
    return queue_capacity > 0 || dedup || reject_replays || rate_tokens_per_round > 0.0 ||
           staleness_downweight;
  }

  // Effective bucket capacity (the refill amount when rate_bucket_cap is 0).
  double BucketCap() const {
    return rate_bucket_cap > 0.0 ? rate_bucket_cap : rate_tokens_per_round;
  }

  // Contribution weight of an admitted arrival with the given staleness.
  double StalenessWeight(double staleness) const {
    if (!staleness_downweight || staleness <= 0.0) {
      return 1.0;
    }
    return 1.0 / (1.0 + staleness_decay * staleness);
  }
};

// Aborts the process with a descriptive message when `config` violates an
// admission-layer invariant. Called from ValidateExperimentConfig and the
// real engine's constructor so misconfigurations fail at construction.
void ValidateAdmissionConfig(const AdmissionConfig& config);

}  // namespace floatfl

#endif  // SRC_ADMISSION_ADMISSION_CONFIG_H_
