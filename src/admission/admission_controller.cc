#include "src/admission/admission_controller.h"

#include <algorithm>

#include "src/fl/experiment.h"

namespace floatfl {

std::vector<AdmissionController::Verdict> AdmissionController::Admit(
    uint64_t now_round, const std::vector<Arrival>& arrivals, AdmissionTracker* tracker) {
  std::vector<Verdict> verdicts(arrivals.size());
  // Forget dedup keys older than the window: an upload from round r is
  // remembered while now_round - r <= dedup_window_rounds; beyond that a
  // re-delivery is the replay gate's problem, not the dedup map's.
  if (config_.dedup) {
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (std::get<1>(*it) + config_.dedup_window_rounds < now_round) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const auto reject = [&](size_t i, DropoutReason reason) {
    verdicts[i].admitted = false;
    verdicts[i].reason = reason;
  };

  // Indices (into `arrivals`) currently holding a slot in the ingress queue.
  // The whole burst drains at the end of the call, so admitted == queued.
  std::vector<size_t> queue;
  size_t peak_depth = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    // Gate 1: idempotent admission. A key the window has already seen folds
    // into the earlier delivery, whatever became of it.
    if (config_.dedup) {
      const DedupKey key{a.client_id, a.round, a.attempt};
      if (!seen_.insert(key).second) {
        reject(i, DropoutReason::kDuplicate);
        if (tracker != nullptr) {
          tracker->RecordDeduplicated();
        }
        continue;
      }
    }
    // Gate 2: replay age. Uploads older than max_update_age rounds carry
    // nothing the current model wants.
    if (config_.reject_replays && a.round + config_.max_update_age < now_round) {
      reject(i, DropoutReason::kReplayed);
      if (tracker != nullptr) {
        tracker->RecordReplayRejected();
      }
      continue;
    }
    // Gate 3: per-client token bucket, lazily refilled to now_round. A
    // client first seen mid-run starts with a full bucket.
    if (config_.rate_tokens_per_round > 0.0) {
      const double cap = config_.BucketCap();
      auto [it, fresh] = buckets_.try_emplace(a.client_id, Bucket{cap, now_round});
      Bucket& bucket = it->second;
      if (!fresh && now_round > bucket.last_refill_round) {
        const double rounds_passed =
            static_cast<double>(now_round - bucket.last_refill_round);
        bucket.tokens = std::min(cap, bucket.tokens +
                                          rounds_passed * config_.rate_tokens_per_round);
        bucket.last_refill_round = now_round;
      }
      if (bucket.tokens < 1.0) {
        reject(i, DropoutReason::kRateLimited);
        if (tracker != nullptr) {
          tracker->RecordRateLimited();
        }
        continue;
      }
      bucket.tokens -= 1.0;
    }
    // Gate 4: the bounded ingress queue. A full queue sheds per policy —
    // either the incoming arrival or a queued one whose verdict flips.
    if (config_.queue_capacity > 0 && queue.size() >= config_.queue_capacity) {
      size_t evict = queue.size();  // sentinel: shed the incoming arrival
      switch (config_.shed_policy) {
        case SheddingPolicy::kDropNewest:
          break;
        case SheddingPolicy::kDropOldest:
          evict = 0;
          break;
        case SheddingPolicy::kDropStalest: {
          // Stalest of queue ∪ {incoming}; ties keep the queued entry order
          // stable and prefer evicting the earliest-queued.
          size_t worst = 0;
          for (size_t q = 1; q < queue.size(); ++q) {
            if (arrivals[queue[q]].staleness > arrivals[queue[worst]].staleness) {
              worst = q;
            }
          }
          if (a.staleness < arrivals[queue[worst]].staleness) {
            evict = worst;
          }
          break;
        }
        case SheddingPolicy::kUtilityPriority: {
          // Lowest-utility of queue ∪ {incoming}; the incoming arrival must
          // strictly beat the queued minimum to displace it.
          size_t worst = 0;
          for (size_t q = 1; q < queue.size(); ++q) {
            if (arrivals[queue[q]].utility < arrivals[queue[worst]].utility) {
              worst = q;
            }
          }
          if (a.utility > arrivals[queue[worst]].utility) {
            evict = worst;
          }
          break;
        }
      }
      if (tracker != nullptr) {
        tracker->RecordShed();
      }
      if (evict == queue.size()) {
        reject(i, DropoutReason::kShed);
        continue;
      }
      reject(queue[evict], DropoutReason::kShed);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(evict));
    }
    queue.push_back(i);
    peak_depth = std::max(peak_depth, queue.size());
  }

  for (size_t idx : queue) {
    verdicts[idx].admitted = true;
    verdicts[idx].reason = DropoutReason::kNone;
    verdicts[idx].weight = config_.StalenessWeight(arrivals[idx].staleness);
  }
  if (tracker != nullptr) {
    tracker->RecordAdmitted(queue.size());
    tracker->RecordQueueDepth(peak_depth);
  }
  return verdicts;
}

void AdmissionController::SaveState(CheckpointWriter& w) const {
  w.Size(seen_.size());
  for (const DedupKey& key : seen_) {
    w.U64(std::get<0>(key));
    w.U64(std::get<1>(key));
    w.U64(std::get<2>(key));
  }
  w.Size(buckets_.size());
  for (const auto& [client, bucket] : buckets_) {
    w.U64(client);
    w.F64(bucket.tokens);
    w.U64(bucket.last_refill_round);
  }
}

void AdmissionController::LoadState(CheckpointReader& r) {
  seen_.clear();
  const size_t keys = r.Size();
  for (size_t i = 0; i < keys && r.ok(); ++i) {
    const uint64_t client = r.U64();
    const uint64_t round = r.U64();
    const uint64_t attempt = r.U64();
    seen_.insert(DedupKey{client, round, attempt});
  }
  buckets_.clear();
  const size_t buckets = r.Size();
  for (size_t i = 0; i < buckets && r.ok(); ++i) {
    const uint64_t client = r.U64();
    Bucket bucket;
    bucket.tokens = r.F64();
    bucket.last_refill_round = r.U64();
    buckets_.emplace(client, bucket);
  }
}

}  // namespace floatfl
