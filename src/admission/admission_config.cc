#include "src/admission/admission_config.h"

#include "src/common/check.h"

namespace floatfl {

void ValidateAdmissionConfig(const AdmissionConfig& config) {
  FLOATFL_CHECK_MSG(config.shed_policy == SheddingPolicy::kDropNewest ||
                        config.shed_policy == SheddingPolicy::kDropOldest ||
                        config.shed_policy == SheddingPolicy::kDropStalest ||
                        config.shed_policy == SheddingPolicy::kUtilityPriority,
                    "unknown shedding policy");
  FLOATFL_CHECK_MSG(!config.dedup || config.dedup_window_rounds > 0,
                    "dedup requires a positive dedup_window_rounds");
  FLOATFL_CHECK_MSG(config.rate_tokens_per_round >= 0.0,
                    "rate_tokens_per_round must be non-negative");
  FLOATFL_CHECK_MSG(config.rate_bucket_cap >= 0.0, "rate_bucket_cap must be non-negative");
  FLOATFL_CHECK_MSG(config.rate_bucket_cap == 0.0 ||
                        config.rate_bucket_cap >= config.rate_tokens_per_round,
                    "rate_bucket_cap must be at least rate_tokens_per_round");
  FLOATFL_CHECK_MSG(config.async_max_staleness >= 0.0,
                    "async_max_staleness must be non-negative");
  FLOATFL_CHECK_MSG(config.staleness_decay >= 0.0, "staleness_decay must be non-negative");
  FLOATFL_CHECK_MSG(!config.staleness_downweight || config.staleness_decay > 0.0,
                    "staleness_downweight requires a positive staleness_decay");
}

}  // namespace floatfl
