// Synthetic per-client network bandwidth process.
//
// Stand-in for the commercial 4G/5G smartphone traces of Narayanan et al.
// [50] used by the paper. What the simulator consumes from those traces is a
// temporally correlated, heavy-tailed, occasionally-zero bandwidth signal per
// client; we reproduce that with a regime-switching (good / degraded /
// outage) mean-reverting log-AR(1) process with distinct 4G and 5G
// parameterizations. See DESIGN.md §3.
#ifndef SRC_TRACE_NETWORK_TRACE_H_
#define SRC_TRACE_NETWORK_TRACE_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

enum class NetworkKind { kFourG, kFiveG };

class NetworkTrace {
 public:
  NetworkTrace(NetworkKind kind, uint64_t seed);

  // Degenerate trace pinned at `mbps` forever: no regime switches, no AR(1)
  // noise. Used by the transport layer's closed-form equivalence tests and
  // by deadline-calibration edge cases (mbps may be 0).
  static NetworkTrace Constant(double mbps);

  // Bandwidth in Mbps at simulated time `time_s` (seconds). The process is
  // evaluated in fixed steps; queries MUST be non-decreasing in time — the
  // engines advance monotonically, and the transport layer integrates over
  // a private copy rather than rewinding the shared trace. A regressing
  // query aborts (FLOATFL_CHECK): silently returning the current value
  // would hide bugs where a straggler's look-ahead perturbs another
  // client's bandwidth path.
  double BandwidthMbpsAt(double time_s);

  // Long-run median of the good regime (used for provisioning estimates).
  double NominalMbps() const { return nominal_mbps_; }

  NetworkKind kind() const { return kind_; }

  // Checkpoint/resume of the mutable regime/AR(1) process.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  void Step();

  NetworkKind kind_;
  Rng rng_;
  double nominal_mbps_;
  double sigma_;           // log-space innovation scale
  double revert_;          // AR(1) mean reversion per step
  double outage_prob_;     // per-step chance of entering an outage
  double degrade_prob_;    // per-step chance of entering a degraded regime
  double recover_prob_;    // per-step chance of leaving a bad regime
  int regime_ = 0;         // 0 good, 1 degraded, 2 outage
  double log_dev_ = 0.0;   // deviation from regime median, log space
  double current_mbps_;
  double current_time_ = 0.0;
  // Most recent query time: enforces the monotonic-query contract.
  double last_query_s_ = 0.0;
  // Timestamp of the last completed BandwidthMbpsAt call. A repeat query at
  // this exact time short-circuits to current_mbps_ (see trace_memo.h).
  // Deliberately NOT serialized: resume takes the full path once and
  // checkpoint bytes stay identical to the pre-memo layout. Negative
  // sentinel so a first query at t=0 is never mistaken for a repeat.
  double memo_query_s_ = -1.0;
  static constexpr double kStepSeconds = 10.0;
};

}  // namespace floatfl

#endif  // SRC_TRACE_NETWORK_TRACE_H_
