#include "src/trace/interference.h"

#include <algorithm>
#include <cmath>

#include "src/failure/checkpoint_util.h"
#include "src/trace/trace_memo.h"

namespace floatfl {
namespace {

double Clamp01(double x) { return std::clamp(x, 0.02, 1.0); }

}  // namespace

std::string ToString(InterferenceScenario scenario) {
  switch (scenario) {
    case InterferenceScenario::kNone:
      return "none";
    case InterferenceScenario::kStatic:
      return "static";
    case InterferenceScenario::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

InterferenceModel::InterferenceModel(InterferenceScenario scenario, uint64_t seed)
    : scenario_(scenario), rng_(seed) {
  switch (scenario_) {
    case InterferenceScenario::kNone:
      static_level_ = {1.0, 1.0, 1.0};
      break;
    case InterferenceScenario::kStatic:
      // High-priority apps hold a fixed share; FL keeps roughly 30–70 %.
      static_level_.cpu = rng_.Uniform(0.30, 0.70);
      static_level_.memory = rng_.Uniform(0.40, 0.80);
      static_level_.network = rng_.Uniform(0.30, 0.70);
      break;
    case InterferenceScenario::kDynamic:
      // Dynamic fluctuates around a per-client mean level.
      static_level_.cpu = rng_.Uniform(0.30, 0.90);
      static_level_.memory = rng_.Uniform(0.40, 0.90);
      static_level_.network = rng_.Uniform(0.30, 0.90);
      break;
  }
  current_ = static_level_;
}

ResourceAvailability InterferenceModel::At(double time_s) {
  if (scenario_ != InterferenceScenario::kDynamic) {
    return static_level_;
  }
  // Same-timestamp fast path (see trace_memo.h): the catch-up loop below is
  // a no-op at an already-reached timestamp, so returning the cached value
  // is bit-identical and draws no RNG.
  if (time_s == memo_query_s_ && TraceQueryMemoEnabled()) {
    return current_;
  }
  memo_query_s_ = time_s;
  // Fast-forward long gaps (see NetworkTrace::BandwidthMbpsAt).
  constexpr double kMaxCatchupSteps = 4096.0;
  if (time_s - current_time_ > kStepSeconds * kMaxCatchupSteps) {
    current_time_ = time_s - kStepSeconds * (kMaxCatchupSteps / 2.0);
  }
  while (current_time_ + kStepSeconds <= time_s) {
    dev_cpu_ = 0.88 * dev_cpu_ + 0.12 * rng_.Normal();
    dev_mem_ = 0.92 * dev_mem_ + 0.08 * rng_.Normal();
    dev_net_ = 0.85 * dev_net_ + 0.15 * rng_.Normal();
    current_.cpu = Clamp01(static_level_.cpu * std::exp(0.45 * dev_cpu_));
    current_.memory = Clamp01(static_level_.memory * std::exp(0.30 * dev_mem_));
    current_.network = Clamp01(static_level_.network * std::exp(0.55 * dev_net_));
    current_time_ += kStepSeconds;
  }
  return current_;
}

void InterferenceModel::SaveState(CheckpointWriter& w) const {
  SaveRng(w, rng_);
  w.F64(dev_cpu_);
  w.F64(dev_mem_);
  w.F64(dev_net_);
  w.F64(current_time_);
  w.F64(current_.cpu);
  w.F64(current_.memory);
  w.F64(current_.network);
}

void InterferenceModel::LoadState(CheckpointReader& r) {
  // Invalidate the memo: the restored process may sit at an earlier time
  // than this object's last query (see NetworkTrace::LoadState).
  memo_query_s_ = -1.0;
  LoadRng(r, rng_);
  dev_cpu_ = r.F64();
  dev_mem_ = r.F64();
  dev_net_ = r.F64();
  current_time_ = r.F64();
  current_.cpu = r.F64();
  current_.memory = r.F64();
  current_.network = r.F64();
}

}  // namespace floatfl
