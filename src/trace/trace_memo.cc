#include "src/trace/trace_memo.h"

namespace floatfl {
namespace {

bool g_trace_query_memo = true;

}  // namespace

void SetTraceQueryMemo(bool enabled) { g_trace_query_memo = enabled; }

bool TraceQueryMemoEnabled() { return g_trace_query_memo; }

}  // namespace floatfl
