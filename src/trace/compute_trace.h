// Synthetic per-client device compute capability.
//
// Stand-in for the AI-Benchmark mobile/edge compute trace [27] (950 devices,
// 25 models) used by the paper: a device-tier population (flagship / mid /
// budget / IoT) with log-normal within-tier spread, matching the >10x
// training-speed spread the real trace exhibits, plus slow drift over time
// (thermal throttling, background load).
#ifndef SRC_TRACE_COMPUTE_TRACE_H_
#define SRC_TRACE_COMPUTE_TRACE_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

enum class DeviceTier { kFlagship, kMid, kBudget, kIot };

class ComputeTrace {
 public:
  // Samples a tier from the population mix and a device speed within it.
  static ComputeTrace SampleDevice(uint64_t seed);

  ComputeTrace(DeviceTier tier, double base_gflops, uint64_t seed);

  DeviceTier tier() const { return tier_; }
  double BaseGflops() const { return base_gflops_; }

  // Effective training throughput (GFLOP/s) at `time_s`, including slow
  // drift. Monotonic-time contract as in NetworkTrace.
  double GflopsAt(double time_s);

  // Device memory capacity in GB available to apps.
  double MemoryGb() const { return memory_gb_; }

  // Checkpoint/resume of the mutable drift process (static device
  // parameters are rebuilt deterministically from the experiment seed).
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  DeviceTier tier_;
  double base_gflops_;
  double memory_gb_;
  Rng rng_;
  double drift_ = 0.0;           // log-space AR(1) deviation
  double current_time_ = 0.0;
  double current_gflops_;
  // Same-timestamp memo (see trace_memo.h); not serialized, negative
  // sentinel so a first query at t=0 takes the full path.
  double memo_query_s_ = -1.0;
  static constexpr double kStepSeconds = 30.0;
};

}  // namespace floatfl

#endif  // SRC_TRACE_COMPUTE_TRACE_H_
