#include "src/trace/network_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/failure/checkpoint_util.h"
#include "src/trace/trace_memo.h"

namespace floatfl {

NetworkTrace::NetworkTrace(NetworkKind kind, uint64_t seed) : kind_(kind), rng_(seed) {
  if (kind == NetworkKind::kFourG) {
    // Commercial 4G: tens of Mbps median, strong variability, occasional
    // dead zones (walking/driving traces in [50]).
    nominal_mbps_ = 14.0;
    sigma_ = 0.35;
    revert_ = 0.85;
    outage_prob_ = 0.008;
    degrade_prob_ = 0.03;
    recover_prob_ = 0.35;
  } else {
    // Commercial 5G: order-of-magnitude higher median but far spikier, with
    // frequent fallbacks to much lower rates (coverage holes).
    nominal_mbps_ = 160.0;
    sigma_ = 0.55;
    revert_ = 0.75;
    outage_prob_ = 0.010;
    degrade_prob_ = 0.06;
    recover_prob_ = 0.35;
  }
  // Start with a per-client baseline spread (different users see different
  // typical speeds even on the same technology).
  nominal_mbps_ = rng_.LogNormal(nominal_mbps_, 0.4);
  current_mbps_ = nominal_mbps_;
}

void NetworkTrace::Step() {
  if (sigma_ == 0.0) {
    // Degenerate Constant() trace: pinned forever (even below the 0.01 Mbps
    // floor the stochastic process enforces — Constant(0) must stay 0).
    return;
  }
  // Regime transitions.
  const double u = rng_.NextDouble();
  if (regime_ == 0) {
    if (u < outage_prob_) {
      regime_ = 2;
    } else if (u < outage_prob_ + degrade_prob_) {
      regime_ = 1;
    }
  } else {
    if (u < recover_prob_) {
      regime_ = 0;
    } else if (regime_ == 1 && u > 1.0 - outage_prob_) {
      regime_ = 2;
    }
  }
  // Log-space AR(1) around the regime median.
  log_dev_ = revert_ * log_dev_ + sigma_ * rng_.Normal();
  double median = nominal_mbps_;
  if (regime_ == 1) {
    median *= 0.25;
  } else if (regime_ == 2) {
    median *= 0.005;  // effectively unusable, but never exactly zero
  }
  current_mbps_ = std::max(0.01, median * std::exp(log_dev_));
}

NetworkTrace NetworkTrace::Constant(double mbps) {
  NetworkTrace trace(NetworkKind::kFourG, 0);
  trace.nominal_mbps_ = mbps;
  trace.sigma_ = 0.0;
  trace.revert_ = 0.0;
  trace.outage_prob_ = 0.0;
  trace.degrade_prob_ = 0.0;
  trace.recover_prob_ = 1.0;
  trace.regime_ = 0;
  trace.log_dev_ = 0.0;
  trace.current_mbps_ = mbps;
  return trace;
}

double NetworkTrace::BandwidthMbpsAt(double time_s) {
  // Same-timestamp fast path: the catch-up loop below is a no-op when the
  // trace already advanced to time_s (repeat queries draw no RNG), so the
  // cached value is provably the one the full path would return. Memo state
  // is not checkpointed; a post-resume query just takes the full path once.
  if (time_s == memo_query_s_ && TraceQueryMemoEnabled()) {
    return current_mbps_;
  }
  FLOATFL_CHECK_MSG(time_s >= last_query_s_,
                    "NetworkTrace queried backwards in time (monotonic contract)");
  memo_query_s_ = time_s;
  last_query_s_ = time_s;
  // Fast-forward across very long gaps: the regime process is ergodic, so
  // after thousands of steps the exact path is irrelevant — burn a bounded
  // number of steps to land in a stationary state instead of iterating
  // through the whole gap.
  constexpr double kMaxCatchupSteps = 4096.0;
  if (time_s - current_time_ > kStepSeconds * kMaxCatchupSteps) {
    current_time_ = time_s - kStepSeconds * (kMaxCatchupSteps / 2.0);
  }
  while (current_time_ + kStepSeconds <= time_s) {
    Step();
    current_time_ += kStepSeconds;
  }
  return current_mbps_;
}

void NetworkTrace::SaveState(CheckpointWriter& w) const {
  SaveRng(w, rng_);
  w.U32(static_cast<uint32_t>(regime_));
  w.F64(log_dev_);
  w.F64(current_mbps_);
  w.F64(current_time_);
  w.F64(last_query_s_);
}

void NetworkTrace::LoadState(CheckpointReader& r) {
  // Restoring may rewind the process to an earlier time than the last query
  // on this object; a stale memo hit would then skip a needed catch-up.
  memo_query_s_ = -1.0;
  LoadRng(r, rng_);
  regime_ = static_cast<int>(r.U32());
  log_dev_ = r.F64();
  current_mbps_ = r.F64();
  current_time_ = r.F64();
  last_query_s_ = r.F64();
}

}  // namespace floatfl
