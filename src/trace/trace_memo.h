// Global toggle for same-timestamp trace-query memoization (DESIGN.md §12).
//
// The engines query each client's network / compute / interference traces
// more than once per round at the *same* simulated timestamp (ObserveClient
// samples them for the policy, then SimulateClient samples them again for
// the cost model). At an already-reached timestamp the traces' catch-up
// loops are no-ops by construction, so a repeated query returns the cached
// last value and consumes no RNG draws — returning it directly is provably
// bit-identical. The memo is the fast path for that case.
//
// The toggle exists for the perf harness (bench/perf_harness runs every
// trace scenario with the memo off and on to keep the before/after entry in
// BENCH_trace.json honest) and for the bit-exactness regression tests
// (tests/perf/trace_memo_test.cc). Default: enabled. The memo fields are
// deliberately not checkpointed — the first post-resume query takes the full
// path and produces the same value, keeping checkpoint bytes identical to
// the pre-memo layout.
#ifndef SRC_TRACE_TRACE_MEMO_H_
#define SRC_TRACE_TRACE_MEMO_H_

namespace floatfl {

// Enables/disables the same-timestamp memo on all traces process-wide.
// Not thread-safe against concurrent trace queries; flip it between runs
// (the bench and tests do), not mid-round.
void SetTraceQueryMemo(bool enabled);
bool TraceQueryMemoEnabled();

}  // namespace floatfl

#endif  // SRC_TRACE_TRACE_MEMO_H_
