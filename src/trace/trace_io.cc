#include "src/trace/trace_io.h"

#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace floatfl {

double SampledSeries::At(double time_s) const {
  FLOATFL_CHECK(!values.empty());
  FLOATFL_CHECK(step_seconds > 0.0);
  if (time_s <= 0.0) {
    return values.front();
  }
  const size_t idx = static_cast<size_t>(time_s / step_seconds);
  if (idx >= values.size()) {
    return values.back();
  }
  return values[idx];
}

bool WriteSeriesCsv(const std::string& path, const SampledSeries& series) {
  if (series.values.empty() || series.step_seconds <= 0.0) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "time_s,value\n");
  for (size_t i = 0; i < series.values.size(); ++i) {
    std::fprintf(f, "%.6f,%.9g\n", static_cast<double>(i) * series.step_seconds,
                 series.values[i]);
  }
  std::fclose(f);
  return true;
}

bool ReadSeriesCsv(const std::string& path, SampledSeries* series) {
  FLOATFL_CHECK(series != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char header[256];
  if (std::fgets(header, sizeof(header), f) == nullptr) {
    std::fclose(f);
    return false;
  }
  series->values.clear();
  series->step_seconds = 0.0;
  double prev_time = 0.0;
  double time = 0.0;
  double value = 0.0;
  bool first = true;
  while (std::fscanf(f, "%lf,%lf", &time, &value) == 2) {
    if (!first && series->step_seconds == 0.0) {
      series->step_seconds = time - prev_time;
      if (series->step_seconds <= 0.0) {
        std::fclose(f);
        return false;
      }
    } else if (!first) {
      // Constant step required (within tolerance).
      if (std::fabs((time - prev_time) - series->step_seconds) >
          1e-6 * series->step_seconds + 1e-9) {
        std::fclose(f);
        return false;
      }
    }
    series->values.push_back(value);
    prev_time = time;
    first = false;
  }
  std::fclose(f);
  if (series->values.empty()) {
    return false;
  }
  if (series->step_seconds == 0.0) {
    series->step_seconds = 1.0;  // single row: arbitrary step
  }
  return true;
}

}  // namespace floatfl
