// On-device interference from co-located applications (Section 4.3).
//
// Three scenarios from the paper:
//  - kNone:    all client resources are dedicated to FL training.
//  - kStatic:  high-priority co-located apps consume a fixed share, drawn
//              once per client.
//  - kDynamic: concurrent apps claim resources that fluctuate over time
//              (bounded AR(1) per resource). The paper focuses on this one
//              as the realistic setting.
#ifndef SRC_TRACE_INTERFERENCE_H_
#define SRC_TRACE_INTERFERENCE_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

enum class InterferenceScenario { kNone, kStatic, kDynamic };

std::string ToString(InterferenceScenario scenario);

// Fractions of each resource available to FL training, each in [0, 1].
struct ResourceAvailability {
  double cpu = 1.0;
  double memory = 1.0;
  double network = 1.0;
};

class InterferenceModel {
 public:
  InterferenceModel(InterferenceScenario scenario, uint64_t seed);

  // Availability fractions at simulated time `time_s` (monotonic-time
  // contract as in the other traces).
  ResourceAvailability At(double time_s);

  InterferenceScenario scenario() const { return scenario_; }

  // Checkpoint/resume of the mutable AR(1) state.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  InterferenceScenario scenario_;
  Rng rng_;
  ResourceAvailability static_level_;
  // Dynamic state: AR(1) deviations per resource.
  double dev_cpu_ = 0.0;
  double dev_mem_ = 0.0;
  double dev_net_ = 0.0;
  double current_time_ = 0.0;
  ResourceAvailability current_;
  // Same-timestamp memo (see trace_memo.h); not serialized, negative
  // sentinel so a first query at t=0 takes the full path.
  double memo_query_s_ = -1.0;
  static constexpr double kStepSeconds = 15.0;
};

}  // namespace floatfl

#endif  // SRC_TRACE_INTERFERENCE_H_
