// CSV export and replay of client traces.
//
// FedScale ships its device traces as data files (the artifact's
// benchmark/dataset/data/device_info/); this module provides the analogous
// facility: sample any of the synthetic processes onto a fixed time grid,
// write the series as CSV, and replay a CSV as a trace. Replayed traces let
// experiments pin the exact resource timeline across runs (or substitute
// externally collected measurements) independent of the stochastic
// generators.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

namespace floatfl {

struct SampledSeries {
  double step_seconds = 0.0;
  std::vector<double> values;

  // Value at an arbitrary time via step-hold; clamps beyond the last sample.
  double At(double time_s) const;
  bool Empty() const { return values.empty(); }
  double DurationSeconds() const {
    return step_seconds * static_cast<double>(values.size());
  }
};

// Writes "time_s,value" rows with a one-line header. Returns false on I/O
// failure.
bool WriteSeriesCsv(const std::string& path, const SampledSeries& series);

// Parses a CSV written by WriteSeriesCsv (or any two-column time,value file
// with a constant step and a header line). Returns false on parse failure.
bool ReadSeriesCsv(const std::string& path, SampledSeries* series);

// Replayable trace: wraps a SampledSeries behind the same monotonic-time
// query contract the generated traces use.
class ReplayTrace {
 public:
  explicit ReplayTrace(SampledSeries series) : series_(std::move(series)) {}

  double ValueAt(double time_s) const { return series_.At(time_s); }
  const SampledSeries& series() const { return series_; }

 private:
  SampledSeries series_;
};

}  // namespace floatfl

#endif  // SRC_TRACE_TRACE_IO_H_
