#include "src/trace/compute_trace.h"

#include <algorithm>
#include <cmath>

#include "src/failure/checkpoint_util.h"
#include "src/trace/trace_memo.h"

namespace floatfl {
namespace {

struct TierParams {
  DeviceTier tier;
  double weight;        // population share
  double median_gflops; // training-effective throughput
  double sigma;
  double median_mem_gb;
};

// Effective on-device *training* throughput is far below peak inference
// numbers; medians chosen so the population spans roughly 1.5–80 GFLOP/s,
// a >10x spread as in AI-Benchmark.
constexpr TierParams kTiers[] = {
    {DeviceTier::kFlagship, 0.20, 48.0, 0.30, 8.0},
    {DeviceTier::kMid, 0.40, 18.0, 0.35, 6.0},
    {DeviceTier::kBudget, 0.35, 8.0, 0.40, 3.0},
    {DeviceTier::kIot, 0.05, 3.5, 0.45, 1.5},
};

}  // namespace

ComputeTrace ComputeTrace::SampleDevice(uint64_t seed) {
  Rng rng(seed);
  const double u = rng.NextDouble();
  double acc = 0.0;
  const TierParams* chosen = &kTiers[0];
  for (const auto& t : kTiers) {
    acc += t.weight;
    if (u < acc) {
      chosen = &t;
      break;
    }
  }
  const double gflops = rng.LogNormal(chosen->median_gflops, chosen->sigma);
  return ComputeTrace(chosen->tier, gflops, rng.NextU64());
}

ComputeTrace::ComputeTrace(DeviceTier tier, double base_gflops, uint64_t seed)
    : tier_(tier), base_gflops_(base_gflops), rng_(seed), current_gflops_(base_gflops) {
  double median_mem = 4.0;
  for (const auto& t : kTiers) {
    if (t.tier == tier) {
      median_mem = t.median_mem_gb;
      break;
    }
  }
  memory_gb_ = rng_.LogNormal(median_mem, 0.25);
}

double ComputeTrace::GflopsAt(double time_s) {
  // Same-timestamp fast path (see trace_memo.h): the catch-up loop below is
  // a no-op at an already-reached timestamp, so returning the cached value
  // is bit-identical and draws no RNG.
  if (time_s == memo_query_s_ && TraceQueryMemoEnabled()) {
    return current_gflops_;
  }
  memo_query_s_ = time_s;
  // Fast-forward long gaps (see NetworkTrace::BandwidthMbpsAt).
  constexpr double kMaxCatchupSteps = 4096.0;
  if (time_s - current_time_ > kStepSeconds * kMaxCatchupSteps) {
    current_time_ = time_s - kStepSeconds * (kMaxCatchupSteps / 2.0);
  }
  while (current_time_ + kStepSeconds <= time_s) {
    // Slow log-space AR(1): thermal throttling and background load cause
    // sustained (minutes-long) throughput swings of up to ~2x.
    drift_ = 0.95 * drift_ + 0.08 * rng_.Normal();
    current_gflops_ = std::max(0.05 * base_gflops_, base_gflops_ * std::exp(drift_));
    current_time_ += kStepSeconds;
  }
  return current_gflops_;
}

void ComputeTrace::SaveState(CheckpointWriter& w) const {
  SaveRng(w, rng_);
  w.F64(drift_);
  w.F64(current_time_);
  w.F64(current_gflops_);
}

void ComputeTrace::LoadState(CheckpointReader& r) {
  // Invalidate the memo: the restored process may sit at an earlier time
  // than this object's last query (see NetworkTrace::LoadState).
  memo_query_s_ = -1.0;
  LoadRng(r, rng_);
  drift_ = r.F64();
  current_time_ = r.F64();
  current_gflops_ = r.F64();
}

}  // namespace floatfl
