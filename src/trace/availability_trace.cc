#include "src/trace/availability_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/failure/checkpoint_util.h"

namespace floatfl {

AvailabilityTrace::AvailabilityTrace(uint64_t seed, double mean_on_s, double mean_off_s)
    : rng_(seed), mean_on_(mean_on_s), mean_off_(mean_off_s) {
  FLOATFL_CHECK(mean_on_s > 0.0 && mean_off_s > 0.0);
  // Random initial phase.
  const bool start_on = rng_.Bernoulli(mean_on_ / (mean_on_ + mean_off_));
  const double first = rng_.Exponential(start_on ? mean_on_ : mean_off_);
  segments_.push_back({0.0, first, start_on});
}

void AvailabilityTrace::ExtendTo(double time_s) {
  // Fast-forward across very long gaps: the on/off renewal process is
  // ergodic, so restart it near the queried time instead of materializing
  // millions of intermediate segments (also keeps SegmentAt's scan bounded).
  const double horizon = 64.0 * (mean_on_ + mean_off_);
  if (time_s - segments_.back().end > horizon) {
    const double restart = time_s - horizon;
    const bool start_on = rng_.Bernoulli(mean_on_ / (mean_on_ + mean_off_));
    const double first = rng_.Exponential(start_on ? mean_on_ : mean_off_);
    segments_.clear();
    segments_.push_back({restart, restart + first, start_on});
  }
  while (segments_.back().end <= time_s) {
    const Segment& last = segments_.back();
    const bool next_on = !last.on;
    // Diurnal modulation: availability periods are longer at "night"
    // (devices idle and charging). Period of 24 simulated hours.
    const double phase = std::sin(2.0 * M_PI * last.end / 86400.0);
    const double mean = next_on ? mean_on_ * (1.0 + 0.5 * phase) : mean_off_ * (1.0 - 0.3 * phase);
    const double dur = rng_.Exponential(std::max(60.0, mean));
    segments_.push_back({last.end, last.end + dur, next_on});
  }
}

const AvailabilityTrace::Segment& AvailabilityTrace::SegmentAt(double time_s) {
  FLOATFL_CHECK(time_s >= 0.0);
  ExtendTo(time_s);
  // Queries are near-monotonic; scan from the back.
  for (size_t i = segments_.size(); i-- > 0;) {
    if (segments_[i].start <= time_s && time_s < segments_[i].end) {
      return segments_[i];
    }
  }
  return segments_.back();
}

bool AvailabilityTrace::IsAvailableAt(double time_s) { return SegmentAt(time_s).on; }

double AvailabilityTrace::PeriodEndAfter(double time_s) { return SegmentAt(time_s).end; }

bool AvailabilityTrace::AvailableFor(double start_s, double duration_s) {
  const Segment& seg = SegmentAt(start_s);
  return seg.on && seg.end >= start_s + duration_s;
}

void AvailabilityTrace::SaveState(CheckpointWriter& w) const {
  SaveRng(w, rng_);
  w.Size(segments_.size());
  for (const Segment& seg : segments_) {
    w.F64(seg.start);
    w.F64(seg.end);
    w.Bool(seg.on);
  }
}

void AvailabilityTrace::LoadState(CheckpointReader& r) {
  LoadRng(r, rng_);
  const size_t n = r.Size();
  segments_.clear();
  segments_.reserve(n);
  for (size_t i = 0; i < n && r.ok(); ++i) {
    Segment seg;
    seg.start = r.F64();
    seg.end = r.F64();
    seg.on = r.Bool();
    segments_.push_back(seg);
  }
}

}  // namespace floatfl
