// Synthetic per-client availability (energy/charging/willingness) process.
//
// Stand-in for the smartphone availability trace of Yang et al. [76]: an
// alternating-renewal on/off process with diurnal modulation. A client can
// only be selected while available and drops out of a round if availability
// ends before it finishes (battery drained, user reclaimed the device).
#ifndef SRC_TRACE_AVAILABILITY_TRACE_H_
#define SRC_TRACE_AVAILABILITY_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/failure/checkpoint_io.h"

namespace floatfl {

class AvailabilityTrace {
 public:
  // mean_on_s / mean_off_s: mean durations of available/unavailable periods.
  AvailabilityTrace(uint64_t seed, double mean_on_s = 9000.0, double mean_off_s = 3000.0);

  bool IsAvailableAt(double time_s);

  // Time at which the current period (on or off) ends, > time_s.
  double PeriodEndAfter(double time_s);

  // True iff the client stays available over the whole [start, start+dur).
  bool AvailableFor(double start_s, double duration_s);

  // Checkpoint/resume: the materialized segments plus the RNG stream, so a
  // restored trace continues the exact same renewal process.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  struct Segment {
    double start;
    double end;
    bool on;
  };

  void ExtendTo(double time_s);
  const Segment& SegmentAt(double time_s);

  Rng rng_;
  double mean_on_;
  double mean_off_;
  std::vector<Segment> segments_;
};

}  // namespace floatfl

#endif  // SRC_TRACE_AVAILABILITY_TRACE_H_
