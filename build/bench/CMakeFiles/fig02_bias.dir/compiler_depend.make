# Empty compiler generated dependencies file for fig02_bias.
# This may be replaced when dependencies are built.
