file(REMOVE_RECURSE
  "CMakeFiles/fig02_bias.dir/fig02_bias.cpp.o"
  "CMakeFiles/fig02_bias.dir/fig02_bias.cpp.o.d"
  "fig02_bias"
  "fig02_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
