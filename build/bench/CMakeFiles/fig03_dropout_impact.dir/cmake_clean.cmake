file(REMOVE_RECURSE
  "CMakeFiles/fig03_dropout_impact.dir/fig03_dropout_impact.cpp.o"
  "CMakeFiles/fig03_dropout_impact.dir/fig03_dropout_impact.cpp.o.d"
  "fig03_dropout_impact"
  "fig03_dropout_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dropout_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
