# Empty dependencies file for fig03_dropout_impact.
# This may be replaced when dependencies are built.
