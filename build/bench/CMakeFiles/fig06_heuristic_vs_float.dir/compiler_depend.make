# Empty compiler generated dependencies file for fig06_heuristic_vs_float.
# This may be replaced when dependencies are built.
