file(REMOVE_RECURSE
  "CMakeFiles/fig10_qtable_scenarios.dir/fig10_qtable_scenarios.cpp.o"
  "CMakeFiles/fig10_qtable_scenarios.dir/fig10_qtable_scenarios.cpp.o.d"
  "fig10_qtable_scenarios"
  "fig10_qtable_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_qtable_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
