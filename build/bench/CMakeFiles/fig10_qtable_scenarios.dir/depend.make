# Empty dependencies file for fig10_qtable_scenarios.
# This may be replaced when dependencies are built.
