file(REMOVE_RECURSE
  "CMakeFiles/fig04_resource_variation.dir/fig04_resource_variation.cpp.o"
  "CMakeFiles/fig04_resource_variation.dir/fig04_resource_variation.cpp.o.d"
  "fig04_resource_variation"
  "fig04_resource_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_resource_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
