# Empty compiler generated dependencies file for fig04_resource_variation.
# This may be replaced when dependencies are built.
