# Empty dependencies file for fig08_agent_overhead.
# This may be replaced when dependencies are built.
