file(REMOVE_RECURSE
  "CMakeFiles/fig08_agent_overhead.dir/fig08_agent_overhead.cpp.o"
  "CMakeFiles/fig08_agent_overhead.dir/fig08_agent_overhead.cpp.o.d"
  "fig08_agent_overhead"
  "fig08_agent_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_agent_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
