# Empty compiler generated dependencies file for fig13_openimage.
# This may be replaced when dependencies are built.
