file(REMOVE_RECURSE
  "CMakeFiles/fig13_openimage.dir/fig13_openimage.cpp.o"
  "CMakeFiles/fig13_openimage.dir/fig13_openimage.cpp.o.d"
  "fig13_openimage"
  "fig13_openimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_openimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
