# Empty compiler generated dependencies file for fig09_finetune.
# This may be replaced when dependencies are built.
