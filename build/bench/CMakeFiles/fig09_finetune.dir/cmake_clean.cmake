file(REMOVE_RECURSE
  "CMakeFiles/fig09_finetune.dir/fig09_finetune.cpp.o"
  "CMakeFiles/fig09_finetune.dir/fig09_finetune.cpp.o.d"
  "fig09_finetune"
  "fig09_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
