file(REMOVE_RECURSE
  "CMakeFiles/stability_seeds.dir/stability_seeds.cpp.o"
  "CMakeFiles/stability_seeds.dir/stability_seeds.cpp.o.d"
  "stability_seeds"
  "stability_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
