# Empty compiler generated dependencies file for stability_seeds.
# This may be replaced when dependencies are built.
