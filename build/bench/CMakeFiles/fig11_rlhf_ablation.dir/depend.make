# Empty dependencies file for fig11_rlhf_ablation.
# This may be replaced when dependencies are built.
