file(REMOVE_RECURSE
  "CMakeFiles/fig11_rlhf_ablation.dir/fig11_rlhf_ablation.cpp.o"
  "CMakeFiles/fig11_rlhf_ablation.dir/fig11_rlhf_ablation.cpp.o.d"
  "fig11_rlhf_ablation"
  "fig11_rlhf_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rlhf_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
