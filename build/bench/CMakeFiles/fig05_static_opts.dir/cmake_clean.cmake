file(REMOVE_RECURSE
  "CMakeFiles/fig05_static_opts.dir/fig05_static_opts.cpp.o"
  "CMakeFiles/fig05_static_opts.dir/fig05_static_opts.cpp.o.d"
  "fig05_static_opts"
  "fig05_static_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_static_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
