# Empty dependencies file for fig05_static_opts.
# This may be replaced when dependencies are built.
