# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/fl_test[1]_include.cmake")
include("/root/repo/build/tests/selection_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
