file(REMOVE_RECURSE
  "CMakeFiles/trace_test.dir/trace/availability_trace_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/availability_trace_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/compute_trace_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/compute_trace_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/interference_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/interference_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/network_trace_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/network_trace_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/trace_io_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/trace_io_test.cc.o.d"
  "trace_test"
  "trace_test.pdb"
  "trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
