
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/availability_trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace/availability_trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/availability_trace_test.cc.o.d"
  "/root/repo/tests/trace/compute_trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace/compute_trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/compute_trace_test.cc.o.d"
  "/root/repo/tests/trace/interference_test.cc" "tests/CMakeFiles/trace_test.dir/trace/interference_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/interference_test.cc.o.d"
  "/root/repo/tests/trace/network_trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace/network_trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/network_trace_test.cc.o.d"
  "/root/repo/tests/trace/trace_io_test.cc" "tests/CMakeFiles/trace_test.dir/trace/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/trace_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/floatfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
