
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/calibration_test.cc" "tests/CMakeFiles/core_test.dir/core/calibration_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/calibration_test.cc.o.d"
  "/root/repo/tests/core/controller_test.cc" "tests/CMakeFiles/core_test.dir/core/controller_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/controller_test.cc.o.d"
  "/root/repo/tests/core/per_client_controller_test.cc" "tests/CMakeFiles/core_test.dir/core/per_client_controller_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/per_client_controller_test.cc.o.d"
  "/root/repo/tests/core/q_table_test.cc" "tests/CMakeFiles/core_test.dir/core/q_table_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/q_table_test.cc.o.d"
  "/root/repo/tests/core/rlhf_agent_test.cc" "tests/CMakeFiles/core_test.dir/core/rlhf_agent_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rlhf_agent_test.cc.o.d"
  "/root/repo/tests/core/state_encoder_test.cc" "tests/CMakeFiles/core_test.dir/core/state_encoder_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/state_encoder_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/floatfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
