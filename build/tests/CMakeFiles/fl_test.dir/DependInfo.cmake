
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/async_engine_test.cc" "tests/CMakeFiles/fl_test.dir/fl/async_engine_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/async_engine_test.cc.o.d"
  "/root/repo/tests/fl/client_test.cc" "tests/CMakeFiles/fl_test.dir/fl/client_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/client_test.cc.o.d"
  "/root/repo/tests/fl/cost_model_test.cc" "tests/CMakeFiles/fl_test.dir/fl/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/cost_model_test.cc.o.d"
  "/root/repo/tests/fl/real_engine_test.cc" "tests/CMakeFiles/fl_test.dir/fl/real_engine_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/real_engine_test.cc.o.d"
  "/root/repo/tests/fl/sync_engine_test.cc" "tests/CMakeFiles/fl_test.dir/fl/sync_engine_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/sync_engine_test.cc.o.d"
  "/root/repo/tests/fl/vfl_engine_test.cc" "tests/CMakeFiles/fl_test.dir/fl/vfl_engine_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/vfl_engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/floatfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
