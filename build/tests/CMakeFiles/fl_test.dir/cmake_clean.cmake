file(REMOVE_RECURSE
  "CMakeFiles/fl_test.dir/fl/async_engine_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/async_engine_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/client_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/client_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/cost_model_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/cost_model_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/real_engine_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/real_engine_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/sync_engine_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/sync_engine_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/vfl_engine_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/vfl_engine_test.cc.o.d"
  "fl_test"
  "fl_test.pdb"
  "fl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
