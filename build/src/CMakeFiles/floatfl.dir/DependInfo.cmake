
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/discretizer.cc" "src/CMakeFiles/floatfl.dir/common/discretizer.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/common/discretizer.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/floatfl.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/floatfl.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/floatfl.dir/common/table.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/common/table.cc.o.d"
  "/root/repo/src/core/float_controller.cc" "src/CMakeFiles/floatfl.dir/core/float_controller.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/core/float_controller.cc.o.d"
  "/root/repo/src/core/heuristic_policy.cc" "src/CMakeFiles/floatfl.dir/core/heuristic_policy.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/core/heuristic_policy.cc.o.d"
  "/root/repo/src/core/per_client_controller.cc" "src/CMakeFiles/floatfl.dir/core/per_client_controller.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/core/per_client_controller.cc.o.d"
  "/root/repo/src/core/q_table.cc" "src/CMakeFiles/floatfl.dir/core/q_table.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/core/q_table.cc.o.d"
  "/root/repo/src/core/rlhf_agent.cc" "src/CMakeFiles/floatfl.dir/core/rlhf_agent.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/core/rlhf_agent.cc.o.d"
  "/root/repo/src/core/state_encoder.cc" "src/CMakeFiles/floatfl.dir/core/state_encoder.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/core/state_encoder.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/floatfl.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dirichlet.cc" "src/CMakeFiles/floatfl.dir/data/dirichlet.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/data/dirichlet.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/floatfl.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/data/synthetic.cc.o.d"
  "/root/repo/src/fl/async_engine.cc" "src/CMakeFiles/floatfl.dir/fl/async_engine.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/async_engine.cc.o.d"
  "/root/repo/src/fl/client.cc" "src/CMakeFiles/floatfl.dir/fl/client.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/client.cc.o.d"
  "/root/repo/src/fl/cost_model.cc" "src/CMakeFiles/floatfl.dir/fl/cost_model.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/cost_model.cc.o.d"
  "/root/repo/src/fl/observation.cc" "src/CMakeFiles/floatfl.dir/fl/observation.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/observation.cc.o.d"
  "/root/repo/src/fl/real_engine.cc" "src/CMakeFiles/floatfl.dir/fl/real_engine.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/real_engine.cc.o.d"
  "/root/repo/src/fl/sync_engine.cc" "src/CMakeFiles/floatfl.dir/fl/sync_engine.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/sync_engine.cc.o.d"
  "/root/repo/src/fl/vfl_engine.cc" "src/CMakeFiles/floatfl.dir/fl/vfl_engine.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/fl/vfl_engine.cc.o.d"
  "/root/repo/src/metrics/participation_tracker.cc" "src/CMakeFiles/floatfl.dir/metrics/participation_tracker.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/metrics/participation_tracker.cc.o.d"
  "/root/repo/src/metrics/resource_accountant.cc" "src/CMakeFiles/floatfl.dir/metrics/resource_accountant.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/metrics/resource_accountant.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/CMakeFiles/floatfl.dir/models/model_zoo.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/models/surrogate_accuracy.cc" "src/CMakeFiles/floatfl.dir/models/surrogate_accuracy.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/models/surrogate_accuracy.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/floatfl.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/floatfl.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/floatfl.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/floatfl.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/nn/tensor.cc.o.d"
  "/root/repo/src/opt/compress.cc" "src/CMakeFiles/floatfl.dir/opt/compress.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/opt/compress.cc.o.d"
  "/root/repo/src/opt/prune.cc" "src/CMakeFiles/floatfl.dir/opt/prune.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/opt/prune.cc.o.d"
  "/root/repo/src/opt/quantize.cc" "src/CMakeFiles/floatfl.dir/opt/quantize.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/opt/quantize.cc.o.d"
  "/root/repo/src/opt/technique.cc" "src/CMakeFiles/floatfl.dir/opt/technique.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/opt/technique.cc.o.d"
  "/root/repo/src/selection/oort_selector.cc" "src/CMakeFiles/floatfl.dir/selection/oort_selector.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/selection/oort_selector.cc.o.d"
  "/root/repo/src/selection/random_selector.cc" "src/CMakeFiles/floatfl.dir/selection/random_selector.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/selection/random_selector.cc.o.d"
  "/root/repo/src/selection/refl_selector.cc" "src/CMakeFiles/floatfl.dir/selection/refl_selector.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/selection/refl_selector.cc.o.d"
  "/root/repo/src/trace/availability_trace.cc" "src/CMakeFiles/floatfl.dir/trace/availability_trace.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/trace/availability_trace.cc.o.d"
  "/root/repo/src/trace/compute_trace.cc" "src/CMakeFiles/floatfl.dir/trace/compute_trace.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/trace/compute_trace.cc.o.d"
  "/root/repo/src/trace/interference.cc" "src/CMakeFiles/floatfl.dir/trace/interference.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/trace/interference.cc.o.d"
  "/root/repo/src/trace/network_trace.cc" "src/CMakeFiles/floatfl.dir/trace/network_trace.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/trace/network_trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/floatfl.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/floatfl.dir/trace/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
