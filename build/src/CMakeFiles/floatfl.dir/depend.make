# Empty dependencies file for floatfl.
# This may be replaced when dependencies are built.
