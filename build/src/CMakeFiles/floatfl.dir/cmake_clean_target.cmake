file(REMOVE_RECURSE
  "libfloatfl.a"
)
