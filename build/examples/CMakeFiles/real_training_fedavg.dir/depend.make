# Empty dependencies file for real_training_fedavg.
# This may be replaced when dependencies are built.
