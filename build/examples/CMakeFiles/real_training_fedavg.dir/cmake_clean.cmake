file(REMOVE_RECURSE
  "CMakeFiles/real_training_fedavg.dir/real_training_fedavg.cpp.o"
  "CMakeFiles/real_training_fedavg.dir/real_training_fedavg.cpp.o.d"
  "real_training_fedavg"
  "real_training_fedavg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_training_fedavg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
