file(REMOVE_RECURSE
  "CMakeFiles/pretrain_finetune.dir/pretrain_finetune.cpp.o"
  "CMakeFiles/pretrain_finetune.dir/pretrain_finetune.cpp.o.d"
  "pretrain_finetune"
  "pretrain_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
