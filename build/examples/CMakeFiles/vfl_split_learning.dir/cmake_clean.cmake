file(REMOVE_RECURSE
  "CMakeFiles/vfl_split_learning.dir/vfl_split_learning.cpp.o"
  "CMakeFiles/vfl_split_learning.dir/vfl_split_learning.cpp.o.d"
  "vfl_split_learning"
  "vfl_split_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfl_split_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
