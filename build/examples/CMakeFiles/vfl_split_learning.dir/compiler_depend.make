# Empty compiler generated dependencies file for vfl_split_learning.
# This may be replaced when dependencies are built.
