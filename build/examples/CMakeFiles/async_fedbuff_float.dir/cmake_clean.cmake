file(REMOVE_RECURSE
  "CMakeFiles/async_fedbuff_float.dir/async_fedbuff_float.cpp.o"
  "CMakeFiles/async_fedbuff_float.dir/async_fedbuff_float.cpp.o.d"
  "async_fedbuff_float"
  "async_fedbuff_float.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_fedbuff_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
