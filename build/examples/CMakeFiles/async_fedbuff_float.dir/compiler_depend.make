# Empty compiler generated dependencies file for async_fedbuff_float.
# This may be replaced when dependencies are built.
