# Empty compiler generated dependencies file for femnist_dynamic_interference.
# This may be replaced when dependencies are built.
