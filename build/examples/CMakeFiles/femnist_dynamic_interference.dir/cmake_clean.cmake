file(REMOVE_RECURSE
  "CMakeFiles/femnist_dynamic_interference.dir/femnist_dynamic_interference.cpp.o"
  "CMakeFiles/femnist_dynamic_interference.dir/femnist_dynamic_interference.cpp.o.d"
  "femnist_dynamic_interference"
  "femnist_dynamic_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/femnist_dynamic_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
