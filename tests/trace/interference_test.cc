#include "src/trace/interference.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/stats.h"

namespace floatfl {
namespace {

TEST(InterferenceTest, NoneLeavesEverythingAvailable) {
  InterferenceModel model(InterferenceScenario::kNone, 1);
  for (double t = 0.0; t < 7200.0; t += 60.0) {
    const ResourceAvailability a = model.At(t);
    EXPECT_DOUBLE_EQ(a.cpu, 1.0);
    EXPECT_DOUBLE_EQ(a.memory, 1.0);
    EXPECT_DOUBLE_EQ(a.network, 1.0);
  }
}

TEST(InterferenceTest, StaticIsConstantOverTime) {
  InterferenceModel model(InterferenceScenario::kStatic, 2);
  const ResourceAvailability first = model.At(0.0);
  EXPECT_LT(first.cpu, 1.0);
  for (double t = 60.0; t < 7200.0; t += 60.0) {
    const ResourceAvailability a = model.At(t);
    EXPECT_DOUBLE_EQ(a.cpu, first.cpu);
    EXPECT_DOUBLE_EQ(a.memory, first.memory);
    EXPECT_DOUBLE_EQ(a.network, first.network);
  }
}

TEST(InterferenceTest, DynamicFluctuatesWithinBounds) {
  InterferenceModel model(InterferenceScenario::kDynamic, 3);
  std::vector<double> cpu;
  for (double t = 0.0; t < 36000.0; t += 15.0) {
    const ResourceAvailability a = model.At(t);
    EXPECT_GE(a.cpu, 0.02);
    EXPECT_LE(a.cpu, 1.0);
    EXPECT_GE(a.memory, 0.02);
    EXPECT_LE(a.memory, 1.0);
    EXPECT_GE(a.network, 0.02);
    EXPECT_LE(a.network, 1.0);
    cpu.push_back(a.cpu);
  }
  // Genuinely dynamic: meaningful spread over time.
  EXPECT_GT(Percentile(cpu, 90.0) - Percentile(cpu, 10.0), 0.05);
}

TEST(InterferenceTest, ScenariosToString) {
  EXPECT_EQ(ToString(InterferenceScenario::kNone), "none");
  EXPECT_EQ(ToString(InterferenceScenario::kStatic), "static");
  EXPECT_EQ(ToString(InterferenceScenario::kDynamic), "dynamic");
}

TEST(InterferenceTest, DifferentClientsDifferentStaticLevels) {
  InterferenceModel a(InterferenceScenario::kStatic, 10);
  InterferenceModel b(InterferenceScenario::kStatic, 11);
  EXPECT_NE(a.At(0.0).cpu, b.At(0.0).cpu);
}

TEST(InterferenceTest, DeterministicForSeed) {
  InterferenceModel a(InterferenceScenario::kDynamic, 21);
  InterferenceModel b(InterferenceScenario::kDynamic, 21);
  for (double t = 0.0; t < 3600.0; t += 15.0) {
    EXPECT_DOUBLE_EQ(a.At(t).cpu, b.At(t).cpu);
    EXPECT_DOUBLE_EQ(a.At(t).network, b.At(t).network);
  }
}

}  // namespace
}  // namespace floatfl
