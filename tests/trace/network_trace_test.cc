#include "src/trace/network_trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/stats.h"

namespace floatfl {
namespace {

TEST(NetworkTraceTest, BandwidthAlwaysPositive) {
  NetworkTrace trace(NetworkKind::kFourG, 1);
  for (double t = 0.0; t < 36000.0; t += 10.0) {
    EXPECT_GT(trace.BandwidthMbpsAt(t), 0.0);
  }
}

TEST(NetworkTraceTest, DeterministicForSeed) {
  NetworkTrace a(NetworkKind::kFiveG, 42);
  NetworkTrace b(NetworkKind::kFiveG, 42);
  for (double t = 0.0; t < 3600.0; t += 30.0) {
    EXPECT_DOUBLE_EQ(a.BandwidthMbpsAt(t), b.BandwidthMbpsAt(t));
  }
}

TEST(NetworkTraceTest, FiveGTypicallyFasterThanFourG) {
  // Across a population of seeds, median 5G bandwidth must clearly exceed 4G.
  std::vector<double> four_g;
  std::vector<double> five_g;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    NetworkTrace f4(NetworkKind::kFourG, seed);
    NetworkTrace f5(NetworkKind::kFiveG, seed + 1000);
    for (double t = 0.0; t < 7200.0; t += 60.0) {
      four_g.push_back(f4.BandwidthMbpsAt(t));
      five_g.push_back(f5.BandwidthMbpsAt(t));
    }
  }
  EXPECT_GT(Percentile(five_g, 50.0), 3.0 * Percentile(four_g, 50.0));
}

TEST(NetworkTraceTest, TemporallyCorrelated) {
  // Consecutive samples must be far more similar than distant ones
  // (the whole point of replacing the real traces with an AR process).
  NetworkTrace trace(NetworkKind::kFourG, 7);
  std::vector<double> series;
  for (double t = 0.0; t < 72000.0; t += 10.0) {
    series.push_back(trace.BandwidthMbpsAt(t));
  }
  double adjacent_diff = 0.0;
  double distant_diff = 0.0;
  const size_t lag = 300;
  for (size_t i = 0; i + lag < series.size(); ++i) {
    adjacent_diff += std::abs(series[i + 1] - series[i]);
    distant_diff += std::abs(series[i + lag] - series[i]);
  }
  EXPECT_LT(adjacent_diff, distant_diff);
}

TEST(NetworkTraceTest, ExperiencesOutages) {
  // Over a long horizon a 4G client should occasionally see near-zero rates.
  NetworkTrace trace(NetworkKind::kFourG, 12);
  double min_seen = 1e18;
  for (double t = 0.0; t < 7.0 * 86400.0; t += 10.0) {
    min_seen = std::min(min_seen, trace.BandwidthMbpsAt(t));
  }
  EXPECT_LT(min_seen, 0.5);
}

TEST(NetworkTraceDeathTest, BackwardsQueryAborts) {
  // The monotonic-query contract: a regressing query would silently alias
  // one client's look-ahead into another's bandwidth path, so it aborts.
  NetworkTrace trace(NetworkKind::kFourG, 9);
  trace.BandwidthMbpsAt(1000.0);
  EXPECT_DEATH(trace.BandwidthMbpsAt(500.0), "monotonic");
}

TEST(NetworkTraceTest, RepeatedQueryAtSameTimeAllowed) {
  // Equal-time re-queries are fine (several transfers can start at the same
  // simulated instant); only strictly backwards queries violate the contract.
  NetworkTrace trace(NetworkKind::kFourG, 9);
  const double at_1000 = trace.BandwidthMbpsAt(1000.0);
  EXPECT_DOUBLE_EQ(trace.BandwidthMbpsAt(1000.0), at_1000);
}

TEST(NetworkTraceTest, ConstantTraceIsPinned) {
  NetworkTrace trace = NetworkTrace::Constant(12.5);
  EXPECT_DOUBLE_EQ(trace.NominalMbps(), 12.5);
  for (double t = 0.0; t < 86400.0; t += 97.0) {
    EXPECT_DOUBLE_EQ(trace.BandwidthMbpsAt(t), 12.5);
  }
}

TEST(NetworkTraceTest, ConstantZeroTraceStaysZero) {
  // Degenerate zero-bandwidth client for deadline-calibration edge cases.
  NetworkTrace trace = NetworkTrace::Constant(0.0);
  EXPECT_DOUBLE_EQ(trace.NominalMbps(), 0.0);
  EXPECT_DOUBLE_EQ(trace.BandwidthMbpsAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.BandwidthMbpsAt(3600.0), 0.0);
}

TEST(NetworkTraceTest, OutageRegimeEnteredAndRecovered) {
  // The regime-switching process must actually visit the outage regime
  // (near-zero bandwidth) and come back: over a week a 4G client sees both
  // sub-0.5 Mbps samples and, afterwards, samples above half nominal again.
  NetworkTrace trace(NetworkKind::kFourG, 12);
  const double nominal = trace.NominalMbps();
  bool saw_outage = false;
  bool recovered_after_outage = false;
  for (double t = 0.0; t < 7.0 * 86400.0; t += 10.0) {
    const double bw = trace.BandwidthMbpsAt(t);
    if (bw < 0.5) {
      saw_outage = true;
    } else if (saw_outage && bw > 0.5 * nominal) {
      recovered_after_outage = true;
      break;
    }
  }
  EXPECT_TRUE(saw_outage);
  EXPECT_TRUE(recovered_after_outage);
}

TEST(NetworkTraceTest, OutagesAreRareInFiveG) {
  // Outages must be the exception, not the rule: the fraction of near-zero
  // samples over a long 5G horizon stays small.
  NetworkTrace trace(NetworkKind::kFiveG, 3);
  size_t outage_samples = 0;
  size_t total = 0;
  for (double t = 0.0; t < 7.0 * 86400.0; t += 10.0) {
    if (trace.BandwidthMbpsAt(t) < 1.0) {
      ++outage_samples;
    }
    ++total;
  }
  EXPECT_LT(static_cast<double>(outage_samples), 0.10 * static_cast<double>(total));
}

TEST(NetworkTraceTest, NominalWithinSaneRange) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    NetworkTrace f4(NetworkKind::kFourG, seed);
    EXPECT_GT(f4.NominalMbps(), 1.0);
    EXPECT_LT(f4.NominalMbps(), 200.0);
    NetworkTrace f5(NetworkKind::kFiveG, seed);
    EXPECT_GT(f5.NominalMbps(), 10.0);
    EXPECT_LT(f5.NominalMbps(), 2000.0);
  }
}

}  // namespace
}  // namespace floatfl
