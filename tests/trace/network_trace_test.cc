#include "src/trace/network_trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/stats.h"

namespace floatfl {
namespace {

TEST(NetworkTraceTest, BandwidthAlwaysPositive) {
  NetworkTrace trace(NetworkKind::kFourG, 1);
  for (double t = 0.0; t < 36000.0; t += 10.0) {
    EXPECT_GT(trace.BandwidthMbpsAt(t), 0.0);
  }
}

TEST(NetworkTraceTest, DeterministicForSeed) {
  NetworkTrace a(NetworkKind::kFiveG, 42);
  NetworkTrace b(NetworkKind::kFiveG, 42);
  for (double t = 0.0; t < 3600.0; t += 30.0) {
    EXPECT_DOUBLE_EQ(a.BandwidthMbpsAt(t), b.BandwidthMbpsAt(t));
  }
}

TEST(NetworkTraceTest, FiveGTypicallyFasterThanFourG) {
  // Across a population of seeds, median 5G bandwidth must clearly exceed 4G.
  std::vector<double> four_g;
  std::vector<double> five_g;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    NetworkTrace f4(NetworkKind::kFourG, seed);
    NetworkTrace f5(NetworkKind::kFiveG, seed + 1000);
    for (double t = 0.0; t < 7200.0; t += 60.0) {
      four_g.push_back(f4.BandwidthMbpsAt(t));
      five_g.push_back(f5.BandwidthMbpsAt(t));
    }
  }
  EXPECT_GT(Percentile(five_g, 50.0), 3.0 * Percentile(four_g, 50.0));
}

TEST(NetworkTraceTest, TemporallyCorrelated) {
  // Consecutive samples must be far more similar than distant ones
  // (the whole point of replacing the real traces with an AR process).
  NetworkTrace trace(NetworkKind::kFourG, 7);
  std::vector<double> series;
  for (double t = 0.0; t < 72000.0; t += 10.0) {
    series.push_back(trace.BandwidthMbpsAt(t));
  }
  double adjacent_diff = 0.0;
  double distant_diff = 0.0;
  const size_t lag = 300;
  for (size_t i = 0; i + lag < series.size(); ++i) {
    adjacent_diff += std::abs(series[i + 1] - series[i]);
    distant_diff += std::abs(series[i + lag] - series[i]);
  }
  EXPECT_LT(adjacent_diff, distant_diff);
}

TEST(NetworkTraceTest, ExperiencesOutages) {
  // Over a long horizon a 4G client should occasionally see near-zero rates.
  NetworkTrace trace(NetworkKind::kFourG, 12);
  double min_seen = 1e18;
  for (double t = 0.0; t < 7.0 * 86400.0; t += 10.0) {
    min_seen = std::min(min_seen, trace.BandwidthMbpsAt(t));
  }
  EXPECT_LT(min_seen, 0.5);
}

TEST(NetworkTraceTest, EarlierQueryReturnsCurrentValue) {
  NetworkTrace trace(NetworkKind::kFourG, 9);
  const double at_1000 = trace.BandwidthMbpsAt(1000.0);
  EXPECT_DOUBLE_EQ(trace.BandwidthMbpsAt(500.0), at_1000);
}

TEST(NetworkTraceTest, NominalWithinSaneRange) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    NetworkTrace f4(NetworkKind::kFourG, seed);
    EXPECT_GT(f4.NominalMbps(), 1.0);
    EXPECT_LT(f4.NominalMbps(), 200.0);
    NetworkTrace f5(NetworkKind::kFiveG, seed);
    EXPECT_GT(f5.NominalMbps(), 10.0);
    EXPECT_LT(f5.NominalMbps(), 2000.0);
  }
}

}  // namespace
}  // namespace floatfl
