#include "src/trace/availability_trace.h"

#include <gtest/gtest.h>

namespace floatfl {
namespace {

TEST(AvailabilityTraceTest, PeriodEndIsInTheFuture) {
  AvailabilityTrace trace(1);
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    EXPECT_GT(trace.PeriodEndAfter(t), t);
  }
}

TEST(AvailabilityTraceTest, StateConstantWithinPeriod) {
  AvailabilityTrace trace(2);
  const bool state = trace.IsAvailableAt(1000.0);
  const double end = trace.PeriodEndAfter(1000.0);
  // Probe a point strictly inside the same period.
  const double inside = 1000.0 + (end - 1000.0) * 0.5;
  EXPECT_EQ(trace.IsAvailableAt(inside), state);
}

TEST(AvailabilityTraceTest, StateFlipsAtPeriodEnd) {
  AvailabilityTrace trace(3);
  const bool state = trace.IsAvailableAt(0.0);
  const double end = trace.PeriodEndAfter(0.0);
  EXPECT_EQ(trace.IsAvailableAt(end + 1.0), !state);
}

TEST(AvailabilityTraceTest, AvailableForChecksWholeWindow) {
  AvailabilityTrace trace(4);
  // Find an "on" period and check AvailableFor around its boundary.
  double t = 0.0;
  while (!trace.IsAvailableAt(t)) {
    t = trace.PeriodEndAfter(t) + 1.0;
  }
  const double end = trace.PeriodEndAfter(t);
  const double slack = end - t;
  EXPECT_TRUE(trace.AvailableFor(t, slack * 0.5));
  EXPECT_FALSE(trace.AvailableFor(t, slack + 10.0));
}

TEST(AvailabilityTraceTest, UnavailableMeansNotAvailableForAnything) {
  AvailabilityTrace trace(5);
  double t = 0.0;
  while (trace.IsAvailableAt(t)) {
    t = trace.PeriodEndAfter(t) + 1.0;
  }
  EXPECT_FALSE(trace.AvailableFor(t, 1.0));
}

TEST(AvailabilityTraceTest, LongRunOnFractionMatchesMeans) {
  // mean_on 3000 / mean_off 1000 -> ~75 % availability.
  AvailabilityTrace trace(6, 3000.0, 1000.0);
  int on = 0;
  int total = 0;
  for (double t = 0.0; t < 30.0 * 86400.0; t += 120.0) {
    on += trace.IsAvailableAt(t) ? 1 : 0;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(on) / total, 0.75, 0.08);
}

TEST(AvailabilityTraceTest, DeterministicForSeed) {
  AvailabilityTrace a(9);
  AvailabilityTrace b(9);
  for (double t = 0.0; t < 86400.0; t += 300.0) {
    EXPECT_EQ(a.IsAvailableAt(t), b.IsAvailableAt(t));
  }
}

}  // namespace
}  // namespace floatfl
