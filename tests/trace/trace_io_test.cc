#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/trace/network_trace.h"

namespace floatfl {
namespace {

TEST(SampledSeriesTest, StepHoldLookup) {
  SampledSeries series;
  series.step_seconds = 10.0;
  series.values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(series.At(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(series.At(0.0), 1.0);
  EXPECT_DOUBLE_EQ(series.At(9.9), 1.0);
  EXPECT_DOUBLE_EQ(series.At(10.0), 2.0);
  EXPECT_DOUBLE_EQ(series.At(25.0), 3.0);
  EXPECT_DOUBLE_EQ(series.At(1e9), 3.0);
  EXPECT_DOUBLE_EQ(series.DurationSeconds(), 30.0);
}

TEST(TraceIoTest, CsvRoundTrip) {
  SampledSeries series;
  series.step_seconds = 5.0;
  series.values = {12.5, 0.001, 99.75, 3.14159};
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_TRUE(WriteSeriesCsv(path, series));
  SampledSeries loaded;
  ASSERT_TRUE(ReadSeriesCsv(path, &loaded));
  ASSERT_EQ(loaded.values.size(), series.values.size());
  EXPECT_DOUBLE_EQ(loaded.step_seconds, series.step_seconds);
  for (size_t i = 0; i < series.values.size(); ++i) {
    EXPECT_NEAR(loaded.values[i], series.values[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsEmptyAndMissing) {
  SampledSeries empty;
  EXPECT_FALSE(WriteSeriesCsv("/tmp/never_written.csv", empty));
  SampledSeries out;
  EXPECT_FALSE(ReadSeriesCsv("/nonexistent/file.csv", &out));
}

TEST(TraceIoTest, ExportedNetworkTraceReplays) {
  // Sample a generated 4G trace onto a grid, export, reload, and verify the
  // replay matches the sampled values at grid-aligned times.
  NetworkTrace trace(NetworkKind::kFourG, 77);
  SampledSeries series;
  series.step_seconds = 10.0;
  for (double t = 0.0; t < 3600.0; t += 10.0) {
    series.values.push_back(trace.BandwidthMbpsAt(t));
  }
  const std::string path = ::testing::TempDir() + "/network_replay.csv";
  ASSERT_TRUE(WriteSeriesCsv(path, series));
  SampledSeries loaded;
  ASSERT_TRUE(ReadSeriesCsv(path, &loaded));
  const ReplayTrace replay(loaded);
  EXPECT_NEAR(replay.ValueAt(0.0), series.values[0], 1e-6);
  EXPECT_NEAR(replay.ValueAt(1000.0), series.values[100], 1e-6);
  EXPECT_NEAR(replay.ValueAt(3595.0), series.values.back(), 1e-6);
  std::remove(path.c_str());
}

TEST(TraceIoTest, SingleRowGetsDefaultStep) {
  const std::string path = ::testing::TempDir() + "/single_row.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "time_s,value\n0.0,42.0\n");
  std::fclose(f);
  SampledSeries loaded;
  ASSERT_TRUE(ReadSeriesCsv(path, &loaded));
  EXPECT_EQ(loaded.values.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.At(999.0), 42.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace floatfl
