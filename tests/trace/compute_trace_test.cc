#include "src/trace/compute_trace.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/stats.h"

namespace floatfl {
namespace {

TEST(ComputeTraceTest, SampleDeviceCoversTiers) {
  std::map<DeviceTier, int> counts;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    ++counts[ComputeTrace::SampleDevice(seed).tier()];
  }
  EXPECT_GT(counts[DeviceTier::kFlagship], 0);
  EXPECT_GT(counts[DeviceTier::kMid], 0);
  EXPECT_GT(counts[DeviceTier::kBudget], 0);
  EXPECT_GT(counts[DeviceTier::kIot], 0);
  // Mid tier is the most common per the population mix.
  EXPECT_GT(counts[DeviceTier::kMid], counts[DeviceTier::kIot]);
}

TEST(ComputeTraceTest, PopulationSpansWideSpeedRange) {
  // The AI-Benchmark trace shows a >10x training-speed spread; the synthetic
  // population must reproduce that.
  std::vector<double> speeds;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    speeds.push_back(ComputeTrace::SampleDevice(seed).BaseGflops());
  }
  EXPECT_GT(Percentile(speeds, 95.0) / Percentile(speeds, 5.0), 10.0);
}

TEST(ComputeTraceTest, ThroughputPositiveAndBounded) {
  ComputeTrace trace(DeviceTier::kMid, 20.0, 3);
  for (double t = 0.0; t < 36000.0; t += 30.0) {
    const double g = trace.GflopsAt(t);
    EXPECT_GT(g, 0.0);
    EXPECT_GE(g, 0.05 * 20.0);  // throttling floor
  }
}

TEST(ComputeTraceTest, DriftChangesThroughputOverTime) {
  ComputeTrace trace(DeviceTier::kFlagship, 50.0, 5);
  const double early = trace.GflopsAt(0.0);
  bool changed = false;
  for (double t = 60.0; t < 7200.0; t += 60.0) {
    if (std::abs(trace.GflopsAt(t) - early) > 1.0) {
      changed = true;
      break;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(ComputeTraceTest, MemoryCapacityPositive) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    const ComputeTrace device = ComputeTrace::SampleDevice(seed);
    EXPECT_GT(device.MemoryGb(), 0.2);
    EXPECT_LT(device.MemoryGb(), 64.0);
  }
}

TEST(ComputeTraceTest, DeterministicForSeed) {
  ComputeTrace a = ComputeTrace::SampleDevice(77);
  ComputeTrace b = ComputeTrace::SampleDevice(77);
  EXPECT_EQ(a.tier(), b.tier());
  EXPECT_DOUBLE_EQ(a.BaseGflops(), b.BaseGflops());
  for (double t = 0.0; t < 3600.0; t += 30.0) {
    EXPECT_DOUBLE_EQ(a.GflopsAt(t), b.GflopsAt(t));
  }
}

}  // namespace
}  // namespace floatfl
