#include "src/recovery/checkpoint_ring.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/failure/durable_file.h"

namespace floatfl {
namespace {

class CheckpointRingTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/ring_test_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveTree();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  }
  void TearDown() override { RemoveTree(); }

  void RemoveTree() {
    // The ring only ever holds flat files; a shallow sweep is enough.
    CheckpointRing ring(dir_, 0);
    ring.SweepTemps();
    for (size_t round : ring.Rounds()) {
      std::remove(ring.PathFor(round).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  void Touch(const std::string& name, const std::string& bytes = "x") {
    std::ofstream out(dir_ + "/" + name, std::ios::binary);
    out << bytes;
  }

  std::string dir_;
};

TEST_F(CheckpointRingTest, PathForIsZeroPaddedAndStable) {
  CheckpointRing ring(dir_, 3);
  EXPECT_EQ(ring.PathFor(42), dir_ + "/ckpt-0000000042.flck");
  EXPECT_EQ(ring.PathFor(0), dir_ + "/ckpt-0000000000.flck");
  EXPECT_EQ(ring.PathFor(1234567890), dir_ + "/ckpt-1234567890.flck");
}

TEST_F(CheckpointRingTest, RoundsListsArchivesAscendingIgnoringForeignFiles) {
  CheckpointRing ring(dir_, 3);
  Touch("ckpt-0000000010.flck");
  Touch("ckpt-0000000002.flck");
  Touch("ckpt-0000000007.flck");
  Touch("ckpt-0000000005.flck.tmp");  // in-flight: not an archive
  Touch("notes.txt");                 // foreign: never touched
  Touch("ckpt-badstamp.flck");        // malformed stamp
  EXPECT_EQ(ring.Rounds(), (std::vector<size_t>{2, 7, 10}));
  std::remove((dir_ + "/notes.txt").c_str());
  std::remove((dir_ + "/ckpt-badstamp.flck").c_str());
}

TEST_F(CheckpointRingTest, FurthestNamedRoundIncludesTornTemps) {
  CheckpointRing ring(dir_, 3);
  Touch("ckpt-0000000004.flck");
  EXPECT_EQ(ring.FurthestNamedRound(), 4u);
  // A torn temp from a killed writer proves a later round was reached even
  // though no archive for it survived — the rounds-replayed evidence.
  Touch("ckpt-0000000009.flck.tmp");
  EXPECT_EQ(ring.FurthestNamedRound(), 9u);
}

TEST_F(CheckpointRingTest, SweepTempsRemovesOnlyTemps) {
  CheckpointRing ring(dir_, 3);
  Touch("ckpt-0000000004.flck");
  Touch("ckpt-0000000006.flck.tmp");
  Touch("ckpt-0000000008.flck.tmp");
  Touch("keepme.tmp");  // foreign (no valid stamp): left alone
  EXPECT_EQ(ring.SweepTemps(), 2u);
  EXPECT_EQ(ring.Rounds(), (std::vector<size_t>{4}));
  struct stat st;
  EXPECT_EQ(::stat((dir_ + "/keepme.tmp").c_str(), &st), 0);
  std::remove((dir_ + "/keepme.tmp").c_str());
}

TEST_F(CheckpointRingTest, CollectKeepsNewestDepthArchives) {
  CheckpointRing ring(dir_, 2);
  for (size_t round : {3, 6, 9, 12, 15}) {
    Touch("ckpt-" + std::string(10 - std::to_string(round).size(), '0') +
          std::to_string(round) + ".flck");
  }
  EXPECT_EQ(ring.Collect(), 3u);
  EXPECT_EQ(ring.Rounds(), (std::vector<size_t>{12, 15}));
  EXPECT_EQ(ring.Collect(), 0u);  // idempotent once within depth
}

TEST_F(CheckpointRingTest, MissingDirectoryIsEmptyNotFatal) {
  CheckpointRing ring(dir_ + "/nope", 3);
  EXPECT_TRUE(ring.Rounds().empty());
  EXPECT_EQ(ring.FurthestNamedRound(), 0u);
  EXPECT_EQ(ring.SweepTemps(), 0u);
  EXPECT_EQ(ring.Collect(), 0u);
}

TEST_F(CheckpointRingTest, EnsureDirCreatesOneLevel) {
  const std::string fresh = dir_ + "/fresh";
  CheckpointRing ring(fresh, 3);
  EXPECT_TRUE(ring.EnsureDir());
  struct stat st;
  ASSERT_EQ(::stat(fresh.c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  EXPECT_TRUE(ring.EnsureDir());  // idempotent
  ::rmdir(fresh.c_str());
  // Two missing levels cannot be created; a file in the way cannot either.
  EXPECT_FALSE(CheckpointRing(dir_ + "/a/b", 3).EnsureDir());
  Touch("blocked");
  EXPECT_FALSE(CheckpointRing(dir_ + "/blocked", 3).EnsureDir());
  std::remove((dir_ + "/blocked").c_str());
  EXPECT_FALSE(CheckpointRing("", 3).EnsureDir());
}

}  // namespace
}  // namespace floatfl
