#include "src/recovery/crash_plan.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace floatfl {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

TEST(CrashPlanTest, DefaultPlanNeverFires) {
  CrashPlan plan;
  for (size_t round = 0; round < 100; ++round) {
    for (size_t site = 0; site < kNumCrashSites; ++site) {
      EXPECT_FALSE(plan.FiresAt(round, static_cast<CrashSite>(site)));
    }
    EXPECT_EQ(plan.DiskFaultAt(round), DiskFault::kNone);
  }
  EXPECT_EQ(plan.KillsFired(), 0u);
}

TEST(CrashPlanTest, KeyedDrawsAreReplayIdentical) {
  CrashPlanConfig config;
  config.seed = 7;
  config.crash_prob = 0.3;
  config.short_write_prob = 0.2;
  config.enospc_prob = 0.2;
  // Two plans walking the same (round, site) grid must agree everywhere:
  // the draws are pure functions of (seed, round, site), not chain state —
  // exactly what a killed-and-relaunched life relies on when it replays.
  CrashPlan a(config);
  CrashPlan b(config);
  for (size_t round = 0; round < 50; ++round) {
    for (size_t site = 0; site < kNumCrashSites; ++site) {
      EXPECT_EQ(a.FiresAt(round, static_cast<CrashSite>(site)),
                b.FiresAt(round, static_cast<CrashSite>(site)));
    }
    EXPECT_EQ(a.DiskFaultAt(round), b.DiskFaultAt(round));
  }
  EXPECT_EQ(a.KillsFired(), b.KillsFired());
  EXPECT_GT(a.KillsFired(), 0u);  // 0.3 over 250 draws: must fire sometimes
}

TEST(CrashPlanTest, DirectedPlanFiresExactlyOnceAtItsSite) {
  CrashPlanConfig config;
  config.directed = true;
  config.trigger_round = 5;
  config.trigger_site = CrashSite::kAfterRename;
  CrashPlan plan(config);
  // Earlier rounds and other sites never fire.
  for (size_t round = 0; round < 5; ++round) {
    for (size_t site = 0; site < kNumCrashSites; ++site) {
      EXPECT_FALSE(plan.FiresAt(round, static_cast<CrashSite>(site)));
    }
  }
  EXPECT_FALSE(plan.FiresAt(5, CrashSite::kMidWrite));
  EXPECT_TRUE(plan.FiresAt(5, CrashSite::kAfterRename));
  // One-shot: spent forever after.
  EXPECT_FALSE(plan.FiresAt(5, CrashSite::kAfterRename));
  EXPECT_FALSE(plan.FiresAt(6, CrashSite::kAfterRename));
  EXPECT_EQ(plan.KillsFired(), 1u);
}

TEST(CrashPlanTest, DirectedDiskFaultFiresOnce) {
  CrashPlanConfig config;
  config.directed = true;
  config.trigger_round = 3;
  config.trigger_disk_fault = DiskFault::kEnospc;
  CrashPlan plan(config);
  EXPECT_EQ(plan.DiskFaultAt(2), DiskFault::kNone);
  EXPECT_EQ(plan.DiskFaultAt(3), DiskFault::kEnospc);
  EXPECT_EQ(plan.DiskFaultAt(3), DiskFault::kNone);
  EXPECT_EQ(plan.DiskFaultAt(4), DiskFault::kNone);
}

TEST(CrashPlanTest, SiteAndFaultNamesAreStable) {
  EXPECT_STREQ(CrashSiteName(CrashSite::kBeforeSave), "before-save");
  EXPECT_STREQ(CrashSiteName(CrashSite::kMidWrite), "mid-write");
  EXPECT_STREQ(CrashSiteName(CrashSite::kAfterTempBeforeRename), "after-temp-before-rename");
  EXPECT_STREQ(CrashSiteName(CrashSite::kAfterRename), "after-rename");
  EXPECT_STREQ(CrashSiteName(CrashSite::kMidRound), "mid-round");
  EXPECT_STREQ(DiskFaultName(DiskFault::kShortWrite), "short-write");
  EXPECT_STREQ(DiskFaultName(DiskFault::kEnospc), "enospc");
  EXPECT_STREQ(DiskFaultName(DiskFault::kUnwritableDir), "unwritable-dir");
}

// --- FaultyDurableFile: every window leaves exactly the disk state a kill
// at that instant would leave.

std::string Payload() {
  std::string bytes;
  for (int i = 0; i < 64; ++i) {
    bytes.push_back(static_cast<char>('A' + (i % 26)));
  }
  return bytes;
}

struct StagedWrite {
  bool ok = false;
  bool crashed = false;
  bool final_exists = false;
  std::string final_bytes;
  bool temp_exists = false;
  std::string temp_bytes;
};

StagedWrite WriteUnder(CrashPlanConfig config, const std::string& name) {
  config.hard_kill = false;  // soft mode: the test process must survive
  CrashPlan plan(config);
  FaultyDurableFile io(&plan);
  const std::string path = TempPath(name);
  const std::string tmp = path + DurableFile::TempSuffix();
  std::remove(path.c_str());
  std::remove(tmp.c_str());
  io.Arm(config.trigger_round);
  StagedWrite staged;
  staged.ok = io.Write(path, Payload());
  staged.crashed = io.crashed();
  staged.final_exists = Exists(path);
  staged.final_bytes = staged.final_exists ? ReadAll(path) : "";
  staged.temp_exists = Exists(tmp);
  staged.temp_bytes = staged.temp_exists ? ReadAll(tmp) : "";
  std::remove(path.c_str());
  std::remove(tmp.c_str());
  return staged;
}

CrashPlanConfig DirectedAt(CrashSite site) {
  CrashPlanConfig config;
  config.directed = true;
  config.trigger_site = site;
  config.torn_byte = 16;
  return config;
}

TEST(FaultyDurableFileTest, MidWriteLeavesTornTempOnly) {
  const StagedWrite staged = WriteUnder(DirectedAt(CrashSite::kMidWrite), "faulty_midwrite.bin");
  EXPECT_FALSE(staged.ok);
  EXPECT_TRUE(staged.crashed);
  EXPECT_FALSE(staged.final_exists);
  ASSERT_TRUE(staged.temp_exists);
  EXPECT_EQ(staged.temp_bytes, Payload().substr(0, 16));
}

TEST(FaultyDurableFileTest, AfterTempBeforeRenameLeavesFullTempNoFinal) {
  const StagedWrite staged =
      WriteUnder(DirectedAt(CrashSite::kAfterTempBeforeRename), "faulty_afttemp.bin");
  EXPECT_FALSE(staged.ok);
  EXPECT_TRUE(staged.crashed);
  EXPECT_FALSE(staged.final_exists);
  ASSERT_TRUE(staged.temp_exists);
  EXPECT_EQ(staged.temp_bytes, Payload());
}

TEST(FaultyDurableFileTest, AfterRenameLeavesDurableFinal) {
  const StagedWrite staged =
      WriteUnder(DirectedAt(CrashSite::kAfterRename), "faulty_aftrename.bin");
  EXPECT_FALSE(staged.ok);  // crashed after the archive landed
  EXPECT_TRUE(staged.crashed);
  ASSERT_TRUE(staged.final_exists);
  EXPECT_EQ(staged.final_bytes, Payload());
  EXPECT_FALSE(staged.temp_exists);
}

TEST(FaultyDurableFileTest, ShortWriteFailsWithTornTempAndNoCrash) {
  CrashPlanConfig config;
  config.directed = true;
  config.trigger_disk_fault = DiskFault::kShortWrite;
  config.torn_byte = 8;
  const StagedWrite staged = WriteUnder(config, "faulty_short.bin");
  EXPECT_FALSE(staged.ok);
  EXPECT_FALSE(staged.crashed);  // non-fatal: the save failed, the run lives
  EXPECT_FALSE(staged.final_exists);
  ASSERT_TRUE(staged.temp_exists);
  EXPECT_EQ(staged.temp_bytes, Payload().substr(0, 8));
}

TEST(FaultyDurableFileTest, EnospcFailsWithEmptyTemp) {
  CrashPlanConfig config;
  config.directed = true;
  config.trigger_disk_fault = DiskFault::kEnospc;
  const StagedWrite staged = WriteUnder(config, "faulty_enospc.bin");
  EXPECT_FALSE(staged.ok);
  EXPECT_FALSE(staged.crashed);
  EXPECT_FALSE(staged.final_exists);
  ASSERT_TRUE(staged.temp_exists);
  EXPECT_EQ(staged.temp_bytes, "");
}

TEST(FaultyDurableFileTest, UnwritableDirFailsTouchingNothing) {
  CrashPlanConfig config;
  config.directed = true;
  config.trigger_disk_fault = DiskFault::kUnwritableDir;
  const StagedWrite staged = WriteUnder(config, "faulty_unwritable.bin");
  EXPECT_FALSE(staged.ok);
  EXPECT_FALSE(staged.crashed);
  EXPECT_FALSE(staged.final_exists);
  EXPECT_FALSE(staged.temp_exists);
}

TEST(FaultyDurableFileTest, NullPlanIsPlainDurableWrite) {
  FaultyDurableFile io(nullptr);
  const std::string path = TempPath("faulty_passthrough.bin");
  io.Arm(0);
  ASSERT_TRUE(io.Write(path, Payload()));
  EXPECT_FALSE(io.crashed());
  EXPECT_EQ(ReadAll(path), Payload());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace floatfl
