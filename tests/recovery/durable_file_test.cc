#include "src/failure/durable_file.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/failure/checkpoint_io.h"

namespace floatfl {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

TEST(DurableFileTest, WritesBytesAndLeavesNoTemp) {
  const std::string path = TempPath("durable_basic.bin");
  const std::string bytes = "hello durable world";
  ASSERT_TRUE(DefaultDurableFile().Write(path, bytes));
  EXPECT_EQ(ReadAll(path), bytes);
  EXPECT_FALSE(Exists(path + DurableFile::TempSuffix()));
  std::remove(path.c_str());
}

TEST(DurableFileTest, OverwritesAtomically) {
  const std::string path = TempPath("durable_overwrite.bin");
  ASSERT_TRUE(DefaultDurableFile().Write(path, "old contents, longer"));
  ASSERT_TRUE(DefaultDurableFile().Write(path, "new"));
  EXPECT_EQ(ReadAll(path), "new");
  std::remove(path.c_str());
}

TEST(DurableFileTest, EmptyPayloadIsWritable) {
  const std::string path = TempPath("durable_empty.bin");
  ASSERT_TRUE(DefaultDurableFile().Write(path, ""));
  EXPECT_TRUE(Exists(path));
  EXPECT_EQ(ReadAll(path), "");
  std::remove(path.c_str());
}

TEST(DurableFileTest, EmptyPathFails) {
  EXPECT_FALSE(DefaultDurableFile().Write("", "bytes"));
}

TEST(DurableFileTest, NonexistentParentDirectoryFails) {
  EXPECT_FALSE(
      DefaultDurableFile().Write(TempPath("no_such_dir/nested/file.bin"), "bytes"));
}

TEST(DurableFileTest, DirectoryTargetFailsAndLeavesDirectory) {
  const std::string dir = TempPath("durable_dir_target");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  EXPECT_FALSE(DefaultDurableFile().Write(dir, "bytes"));
  struct stat st;
  ASSERT_EQ(::stat(dir.c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  ::rmdir(dir.c_str());
}

// The checkpoint reader must refuse what the writer can never produce.
TEST(DurableFileTest, ReaderRefusesEmptyPathAndDirectories) {
  CheckpointReader r("");
  EXPECT_FALSE(CheckpointReader::FromFile("", &r));
  const std::string dir = TempPath("reader_dir_target");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  CheckpointReader r2("");
  EXPECT_FALSE(CheckpointReader::FromFile(dir, &r2));
  ::rmdir(dir.c_str());
}

TEST(DurableFileTest, WriteFileWithInjectedIoMatchesDefault) {
  const std::string a = TempPath("durable_injected_a.bin");
  const std::string b = TempPath("durable_injected_b.bin");
  CheckpointWriter w;
  w.U64(0x1122334455667788ull);
  w.F64Vec({1.0, 2.0, 3.0});
  ASSERT_TRUE(w.WriteFile(a));
  ASSERT_TRUE(w.WriteFile(b, DefaultDurableFile()));
  EXPECT_EQ(ReadAll(a), ReadAll(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
}  // namespace floatfl
