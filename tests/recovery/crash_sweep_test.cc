// The kill-anywhere acceptance sweep (DESIGN.md §14): for each of the four
// engines and each named crashpoint, a run soft-killed at that site and
// relaunched from the ring must finish with training state bit-identical to
// an uninterrupted golden. Soft kills stage the disk byte-for-byte as a real
// kill would (tests/recovery/crash_plan_test.cc proves that per-window) and
// unwind instead of dying, so the whole sweep runs in-process and
// sanitizer-clean; the fork/_Exit path is proven by kill_harness_test.cc.
#include <gtest/gtest.h>

#include <string>

#include "src/recovery/crash_plan.h"
#include "src/recovery/run_supervisor.h"
#include "tests/recovery/engine_harness.h"

namespace floatfl {
namespace {

using testutil::AsyncHarness;
using testutil::RealHarness;
using testutil::SyncHarness;
using testutil::TrainingState;
using testutil::VflHarness;
using testutil::WipeRingDir;

template <typename Harness>
void RunCrashSweep() {
  Harness harness;
  const size_t total = Harness::kTotalRounds;

  // Uninterrupted golden, driven through a disabled supervisor (the strict
  // no-op pass-through) so both sides use the same default step.
  harness.Fresh();
  {
    RunSupervisor<typename Harness::Engine> golden_supervisor(RecoveryConfig{}, harness.get());
    ASSERT_EQ(golden_supervisor.RecoverAndRun(total), SupervisedOutcome::kCompleted);
  }
  const std::string golden = TrainingState(harness.get());

  for (size_t site_index = 0; site_index < kNumCrashSites; ++site_index) {
    const CrashSite site = static_cast<CrashSite>(site_index);
    SCOPED_TRACE(std::string(Harness::kName) + " killed at " + CrashSiteName(site));

    RecoveryConfig recovery;
    recovery.enabled = true;
    recovery.dir = testing::TempDir() + "/sweep_" + Harness::kName + "_" + CrashSiteName(site);
    recovery.checkpoint_every = 2;
    recovery.ring_depth = 3;
    WipeRingDir(recovery.dir);

    CrashPlanConfig plan_config;
    plan_config.directed = true;
    plan_config.trigger_round = total / 2;
    plan_config.trigger_site = site;
    plan_config.hard_kill = false;  // soft: record + unwind, same disk bytes
    CrashPlan plan(plan_config);

    // Process lives: each one constructs everything from scratch, recovers
    // from the ring, and runs. The directed plan is one-shot, so exactly one
    // life dies and the next completes.
    size_t lives = 0;
    bool killed_once = false;
    for (; lives < 5; ++lives) {
      harness.Fresh();
      RunSupervisor<typename Harness::Engine> supervisor(recovery, harness.get());
      supervisor.SetCrashPlan(&plan);
      supervisor.Recover();
      if (supervisor.Run(total) == SupervisedOutcome::kCompleted) {
        break;
      }
      killed_once = true;
    }
    ASSERT_LT(lives, 5u);
    EXPECT_TRUE(killed_once);
    EXPECT_EQ(plan.KillsFired(), 1u);

    EXPECT_EQ(TrainingState(harness.get()), golden);
    // The surviving life restored from the ring, and the cumulative tracker
    // (serialized inside the engine) remembers it.
    EXPECT_EQ(harness.get().recovery_tracker().Restarts(), 1u);
    WipeRingDir(recovery.dir);
  }
}

TEST(CrashSweepTest, SyncEngineRecoversBitIdenticalFromEverySite) {
  RunCrashSweep<SyncHarness>();
}

TEST(CrashSweepTest, AsyncEngineRecoversBitIdenticalFromEverySite) {
  RunCrashSweep<AsyncHarness>();
}

TEST(CrashSweepTest, RealEngineRecoversBitIdenticalFromEverySite) {
  RunCrashSweep<RealHarness>();
}

TEST(CrashSweepTest, VflEngineRecoversBitIdenticalFromEverySite) {
  RunCrashSweep<VflHarness>();
}

// Stochastic endurance: keyed random kills at a high rate, as many lives as
// it takes — the run must still converge to the golden bit-for-bit.
TEST(CrashSweepTest, StochasticKillsStillConvergeToGolden) {
  SyncHarness harness;
  const size_t total = SyncHarness::kTotalRounds;
  harness.Fresh();
  {
    RunSupervisor<SyncEngine> golden_supervisor(RecoveryConfig{}, harness.get());
    ASSERT_EQ(golden_supervisor.RecoverAndRun(total), SupervisedOutcome::kCompleted);
  }
  const std::string golden = TrainingState(harness.get());

  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = testing::TempDir() + "/sweep_stochastic";
  recovery.checkpoint_every = 2;
  recovery.ring_depth = 3;
  WipeRingDir(recovery.dir);

  CrashPlanConfig plan_config;
  plan_config.seed = 99;
  plan_config.crash_prob = 0.05;
  plan_config.short_write_prob = 0.1;
  CrashPlan plan(plan_config);

  size_t lives = 0;
  for (; lives < 200; ++lives) {
    harness.Fresh();
    RunSupervisor<SyncEngine> supervisor(recovery, harness.get());
    supervisor.SetCrashPlan(&plan);
    supervisor.Recover();
    if (supervisor.Run(total) == SupervisedOutcome::kCompleted) {
      break;
    }
  }
  ASSERT_LT(lives, 200u);
  EXPECT_EQ(TrainingState(harness.get()), golden);
  // One kill per dead life; restarts can lag kills (a life killed before the
  // first archive existed leaves nothing to restore).
  EXPECT_EQ(plan.KillsFired(), lives);
  EXPECT_LE(harness.get().recovery_tracker().Restarts(), lives);
  WipeRingDir(recovery.dir);
}

}  // namespace
}  // namespace floatfl
