// Shared fixtures for the recovery test suite: one small, fault-seasoned
// configuration per engine, a Fresh() factory that rebuilds the engine (and
// its selector, for the sync engine) from scratch the way a relaunched
// process would, and TrainingState() — the engine's serialized state minus
// the trailing RecoveryTracker section, i.e. everything that must be
// bit-identical between an interrupted-and-recovered run and an
// uninterrupted golden (the tracker itself is *supposed* to differ: it
// counts the restarts).
#ifndef TESTS_RECOVERY_ENGINE_HARNESS_H_
#define TESTS_RECOVERY_ENGINE_HARNESS_H_

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/failure/checkpoint_io.h"
#include "src/fl/async_engine.h"
#include "src/fl/real_engine.h"
#include "src/fl/sync_engine.h"
#include "src/fl/vfl_engine.h"
#include "src/recovery/checkpoint_ring.h"
#include "src/selection/random_selector.h"

namespace floatfl {
namespace testutil {

inline ExperimentConfig RecoverySyncConfig() {
  ExperimentConfig config;
  config.num_clients = 30;
  config.clients_per_round = 6;
  config.rounds = 10;
  config.seed = 11;
  config.num_threads = 1;
  config.faults.crash_prob = 0.1;
  config.faults.corrupt_prob = 0.05;
  return config;
}

inline RealFlConfig RecoveryRealConfig() {
  RealFlConfig config;
  config.num_clients = 8;
  config.clients_per_round = 4;
  config.num_classes = 3;
  config.input_dim = 8;
  config.hidden_dims = {12};
  config.test_samples_per_class = 10;
  config.seed = 7;
  config.num_threads = 1;
  config.faults.crash_prob = 0.15;
  return config;
}

inline VflConfig RecoveryVflConfig() {
  VflConfig config;
  config.num_parties = 3;
  config.features_per_party = 5;
  config.embedding_dim = 6;
  config.num_classes = 4;
  config.train_samples = 120;
  config.test_samples = 80;
  config.seed = 31;
  config.faults.crash_prob = 0.15;
  return config;
}

// Serialized engine state with the trailing RecoveryTracker section removed
// (it is always the final section of every engine's payload, fixed-width).
template <typename Engine>
std::string TrainingState(const Engine& engine) {
  CheckpointWriter full;
  engine.SaveState(full);
  CheckpointWriter tail;
  engine.recovery_tracker().SaveState(tail);
  return full.buffer().substr(0, full.buffer().size() - tail.buffer().size());
}

inline void WipeRingDir(const std::string& dir) {
  CheckpointRing ring(dir, 0);
  ring.SweepTemps();
  for (size_t round : ring.Rounds()) {
    std::remove(ring.PathFor(round).c_str());
  }
  ::rmdir(dir.c_str());
}

struct SyncHarness {
  using Engine = SyncEngine;
  static constexpr const char* kName = "sync";
  static constexpr size_t kTotalRounds = 10;
  ExperimentConfig config = RecoverySyncConfig();
  std::unique_ptr<RandomSelector> selector;
  std::unique_ptr<SyncEngine> engine;
  void Fresh() {
    selector = std::make_unique<RandomSelector>(config.seed);
    engine = std::make_unique<SyncEngine>(config, selector.get(), nullptr);
  }
  SyncEngine& get() { return *engine; }
};

struct AsyncHarness {
  using Engine = AsyncEngine;
  static constexpr const char* kName = "async";
  static constexpr size_t kTotalRounds = 10;
  ExperimentConfig config;
  std::unique_ptr<AsyncEngine> engine;
  AsyncHarness() {
    config = RecoverySyncConfig();
    config.async_concurrency = 12;
    config.async_buffer = 4;
  }
  void Fresh() { engine = std::make_unique<AsyncEngine>(config, nullptr); }
  AsyncEngine& get() { return *engine; }
};

struct RealHarness {
  using Engine = RealFlEngine;
  static constexpr const char* kName = "real";
  static constexpr size_t kTotalRounds = 6;
  RealFlConfig config = RecoveryRealConfig();
  std::unique_ptr<RealFlEngine> engine;
  void Fresh() { engine = std::make_unique<RealFlEngine>(config); }
  RealFlEngine& get() { return *engine; }
};

struct VflHarness {
  using Engine = VflEngine;
  static constexpr const char* kName = "vfl";
  static constexpr size_t kTotalRounds = 6;
  VflConfig config = RecoveryVflConfig();
  std::unique_ptr<VflEngine> engine;
  void Fresh() { engine = std::make_unique<VflEngine>(config); }
  VflEngine& get() { return *engine; }
};

}  // namespace testutil
}  // namespace floatfl

#endif  // TESTS_RECOVERY_ENGINE_HARNESS_H_
