// The fork/relaunch kill harness (DESIGN.md §14): a real child process is
// hard-killed (std::_Exit, SIGKILL semantics — no destructors, no flushes)
// at every named crashpoint on every engine, then relaunched from scratch;
// the relaunched child must recover from the ring and finish with training
// state bit-identical to an uninterrupted golden. This is the end-to-end
// proof that the soft-kill sweep (crash_sweep_test.cc) models real process
// death faithfully. All configs run num_threads = 1: forking a process with
// live worker threads is undefined-behavior territory the harness has no
// business in.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "src/failure/durable_file.h"
#include "src/recovery/crash_plan.h"
#include "src/recovery/run_supervisor.h"
#include "tests/recovery/engine_harness.h"

namespace floatfl {
namespace {

using testutil::AsyncHarness;
using testutil::RealHarness;
using testutil::SyncHarness;
using testutil::TrainingState;
using testutil::VflHarness;
using testutil::WipeRingDir;

// Runs one process life in a forked child: fresh engine, recover, run. With
// a plan, the child dies mid-run via std::_Exit(87); without one it writes
// its final training state to `out_path` and exits 0. Returns the child's
// raw wait status.
template <typename Harness>
int RunChildLife(const RecoveryConfig& recovery, const CrashPlanConfig* plan_config,
                 const std::string& out_path) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    Harness harness;
    harness.Fresh();
    RunSupervisor<typename Harness::Engine> supervisor(recovery, harness.get());
    CrashPlan plan;
    if (plan_config != nullptr) {
      plan = CrashPlan(*plan_config);
      supervisor.SetCrashPlan(&plan);
    }
    supervisor.Recover();
    const SupervisedOutcome outcome = supervisor.Run(Harness::kTotalRounds);
    if (outcome == SupervisedOutcome::kCompleted && !out_path.empty()) {
      if (!DefaultDurableFile().Write(out_path, TrainingState(harness.get()))) {
        std::_Exit(2);
      }
    }
    // A hard-kill plan never reaches here; a clean life exits 0.
    std::_Exit(outcome == SupervisedOutcome::kCompleted ? 0 : 1);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

template <typename Harness>
void RunKillHarness() {
  Harness harness;
  harness.Fresh();
  {
    RunSupervisor<typename Harness::Engine> golden_supervisor(RecoveryConfig{}, harness.get());
    ASSERT_EQ(golden_supervisor.RecoverAndRun(Harness::kTotalRounds),
              SupervisedOutcome::kCompleted);
  }
  const std::string golden = TrainingState(harness.get());

  for (size_t site_index = 0; site_index < kNumCrashSites; ++site_index) {
    const CrashSite site = static_cast<CrashSite>(site_index);
    SCOPED_TRACE(std::string(Harness::kName) + " hard-killed at " + CrashSiteName(site));

    RecoveryConfig recovery;
    recovery.enabled = true;
    recovery.dir =
        testing::TempDir() + "/kill_" + Harness::kName + "_" + CrashSiteName(site);
    recovery.checkpoint_every = 2;
    recovery.ring_depth = 3;
    WipeRingDir(recovery.dir);
    const std::string out_path = recovery.dir + "_state.bin";
    std::remove(out_path.c_str());

    CrashPlanConfig plan_config;
    plan_config.directed = true;
    plan_config.trigger_round = Harness::kTotalRounds / 2;
    plan_config.trigger_site = site;
    plan_config.hard_kill = true;  // std::_Exit(87) on the spot

    // Life 1: dies at the crashpoint with the planned exit code.
    const int first = RunChildLife<Harness>(recovery, &plan_config, "");
    ASSERT_TRUE(WIFEXITED(first));
    ASSERT_EQ(WEXITSTATUS(first), CrashPlan::kKillExitCode);

    // Life 2: a clean relaunch recovers from the ring and completes.
    const int second = RunChildLife<Harness>(recovery, nullptr, out_path);
    ASSERT_TRUE(WIFEXITED(second));
    ASSERT_EQ(WEXITSTATUS(second), 0);

    EXPECT_EQ(ReadAll(out_path), golden);
    std::remove(out_path.c_str());
    WipeRingDir(recovery.dir);
  }
}

TEST(KillHarnessTest, SyncEngineSurvivesHardKillAtEverySite) {
  RunKillHarness<SyncHarness>();
}

TEST(KillHarnessTest, AsyncEngineSurvivesHardKillAtEverySite) {
  RunKillHarness<AsyncHarness>();
}

TEST(KillHarnessTest, RealEngineSurvivesHardKillAtEverySite) {
  RunKillHarness<RealHarness>();
}

TEST(KillHarnessTest, VflEngineSurvivesHardKillAtEverySite) {
  RunKillHarness<VflHarness>();
}

}  // namespace
}  // namespace floatfl
