#include "src/recovery/run_supervisor.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/failure/checkpoint_io.h"
#include "src/failure/checkpointer.h"
#include "src/fl/async_engine.h"
#include "src/fl/real_engine.h"
#include "src/fl/sync_engine.h"
#include "src/fl/vfl_engine.h"
#include "src/selection/random_selector.h"

namespace floatfl {
namespace {

std::string FreshRingDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/supervisor_" + name;
  CheckpointRing ring(dir, 0);
  ring.SweepTemps();
  for (size_t round : ring.Rounds()) {
    std::remove(ring.PathFor(round).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

void WipeRing(const CheckpointRing& ring) {
  ring.SweepTemps();
  for (size_t round : ring.Rounds()) {
    std::remove(ring.PathFor(round).c_str());
  }
  ::rmdir(ring.dir().c_str());
}

ExperimentConfig SmallSyncConfig() {
  ExperimentConfig config;
  config.num_clients = 30;
  config.clients_per_round = 6;
  config.rounds = 10;
  config.seed = 11;
  config.num_threads = 1;
  config.faults.crash_prob = 0.1;
  config.faults.corrupt_prob = 0.05;
  return config;
}

RealFlConfig SmallRealConfig() {
  RealFlConfig config;
  config.num_clients = 8;
  config.clients_per_round = 4;
  config.num_classes = 3;
  config.input_dim = 8;
  config.hidden_dims = {12};
  config.test_samples_per_class = 10;
  config.seed = 7;
  config.num_threads = 1;
  return config;
}

VflConfig SmallVflConfig() {
  VflConfig config;
  config.num_parties = 3;
  config.features_per_party = 5;
  config.embedding_dim = 6;
  config.num_classes = 4;
  config.train_samples = 120;
  config.test_samples = 80;
  config.seed = 31;
  return config;
}

template <typename Engine>
std::string SerializedState(const Engine& engine) {
  CheckpointWriter w;
  engine.SaveState(w);
  return w.buffer();
}

// --- Default-off strict no-op: a disabled supervisor is a pass-through on
// every engine, byte-identical to driving the engine's own loop.

TEST(RunSupervisorTest, DisabledSupervisorIsByteIdenticalOnSyncEngine) {
  const ExperimentConfig config = SmallSyncConfig();
  RandomSelector plain_sel(config.seed);
  SyncEngine plain(config, &plain_sel, nullptr);
  plain.Run();

  RandomSelector sup_sel(config.seed);
  SyncEngine supervised(config, &sup_sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(RecoveryConfig{}, supervised);
  EXPECT_EQ(supervisor.Recover(), 0u);
  EXPECT_EQ(supervisor.RecoverAndRun(config.rounds), SupervisedOutcome::kCompleted);
  EXPECT_EQ(SerializedState(plain), SerializedState(supervised));
  EXPECT_EQ(supervisor.report().checkpoints_written, 0u);
  EXPECT_EQ(supervised.recovery_tracker().CheckpointsWritten(), 0u);
}

TEST(RunSupervisorTest, DisabledSupervisorIsByteIdenticalOnAsyncEngine) {
  ExperimentConfig config = SmallSyncConfig();
  config.async_concurrency = 12;
  config.async_buffer = 4;
  AsyncEngine plain(config, nullptr);
  plain.Run();

  AsyncEngine supervised(config, nullptr);
  RunSupervisor<AsyncEngine> supervisor(RecoveryConfig{}, supervised);
  EXPECT_EQ(supervisor.RecoverAndRun(config.rounds), SupervisedOutcome::kCompleted);
  EXPECT_EQ(SerializedState(plain), SerializedState(supervised));
}

TEST(RunSupervisorTest, DisabledSupervisorIsByteIdenticalOnRealEngine) {
  const RealFlConfig config = SmallRealConfig();
  const size_t rounds = 5;
  RealFlEngine plain(config);
  for (size_t r = 0; r < rounds; ++r) {
    plain.RunRound(TechniqueKind::kNone);
  }

  RealFlEngine supervised(config);
  RunSupervisor<RealFlEngine> supervisor(RecoveryConfig{}, supervised);
  EXPECT_EQ(supervisor.RecoverAndRun(rounds), SupervisedOutcome::kCompleted);
  EXPECT_EQ(SerializedState(plain), SerializedState(supervised));
}

TEST(RunSupervisorTest, DisabledSupervisorIsByteIdenticalOnVflEngine) {
  const VflConfig config = SmallVflConfig();
  const size_t epochs = 6;
  VflEngine plain(config);
  for (size_t e = 0; e < epochs; ++e) {
    plain.TrainEpoch(TechniqueKind::kNone);
  }

  VflEngine supervised(config);
  RunSupervisor<VflEngine> supervisor(RecoveryConfig{}, supervised);
  EXPECT_EQ(supervisor.RecoverAndRun(epochs), SupervisedOutcome::kCompleted);
  EXPECT_EQ(SerializedState(plain), SerializedState(supervised));
}

// --- Enabled supervision without faults: the durability machinery itself
// must not perturb the run.

TEST(RunSupervisorTest, EnabledSupervisionDoesNotChangeResults) {
  const ExperimentConfig config = SmallSyncConfig();
  RandomSelector plain_sel(config.seed);
  SyncEngine plain(config, &plain_sel, nullptr);
  const ExperimentResult expected = plain.Run();

  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = FreshRingDir("enabled_noop");
  recovery.checkpoint_every = 3;
  recovery.ring_depth = 2;
  RandomSelector sup_sel(config.seed);
  SyncEngine supervised(config, &sup_sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(recovery, supervised);
  EXPECT_EQ(supervisor.RecoverAndRun(config.rounds), SupervisedOutcome::kCompleted);
  const ExperimentResult actual = supervised.Snapshot();

  // Training results identical; only the recovery accounting differs (the
  // supervised run wrote checkpoints, the plain one did not).
  EXPECT_EQ(expected.global_accuracy, actual.global_accuracy);
  EXPECT_EQ(expected.accuracy_history, actual.accuracy_history);
  EXPECT_EQ(expected.total_selected, actual.total_selected);
  EXPECT_EQ(expected.total_completed, actual.total_completed);
  EXPECT_EQ(expected.wall_clock_hours, actual.wall_clock_hours);
  EXPECT_EQ(actual.recovery_restarts, 0u);
  EXPECT_GT(actual.recovery_checkpoints_written, 0u);
  WipeRing(supervisor.ring());
}

TEST(RunSupervisorTest, CadenceAndFinalRoundArchivesWithRetention) {
  const ExperimentConfig config = SmallSyncConfig();
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = FreshRingDir("cadence");
  recovery.checkpoint_every = 3;
  recovery.ring_depth = 2;
  RandomSelector sel(config.seed);
  SyncEngine engine(config, &sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(recovery, engine);
  EXPECT_EQ(supervisor.RecoverAndRun(config.rounds), SupervisedOutcome::kCompleted);
  // Saves at rounds 3, 6, 9 (cadence) and 10 (final); retention keeps the
  // newest ring_depth = 2.
  EXPECT_EQ(supervisor.ring().Rounds(), (std::vector<size_t>{9, 10}));
  EXPECT_EQ(supervisor.report().checkpoints_written, 4u);
  EXPECT_EQ(supervisor.report().checkpoints_collected, 2u);
  EXPECT_EQ(engine.recovery_tracker().CheckpointsWritten(), 4u);
  WipeRing(supervisor.ring());
}

// --- Recovery: a fresh process restores the newest good archive and
// finishes bit-identically; a corrupt newest archive falls back to an older
// one.

TEST(RunSupervisorTest, RecoverRestoresNewestArchiveAndFinishesBitIdentical) {
  const ExperimentConfig config = SmallSyncConfig();
  RandomSelector golden_sel(config.seed);
  SyncEngine golden(config, &golden_sel, nullptr);
  golden.Run();

  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = FreshRingDir("recover_basic");
  recovery.checkpoint_every = 2;
  recovery.ring_depth = 3;

  // Life 1: run 6 of 10 rounds (archives at 2, 4, 6), then "die".
  {
    RandomSelector sel(config.seed);
    SyncEngine engine(config, &sel, nullptr);
    RunSupervisor<SyncEngine> supervisor(recovery, engine);
    supervisor.Recover();
    EXPECT_EQ(supervisor.Run(6), SupervisedOutcome::kCompleted);
  }

  // Life 2: a fresh engine recovers at round 6 and finishes.
  RandomSelector sel(config.seed);
  SyncEngine engine(config, &sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(recovery, engine);
  EXPECT_EQ(supervisor.Recover(), 6u);
  EXPECT_TRUE(supervisor.report().recovered);
  EXPECT_EQ(supervisor.report().archives_skipped, 0u);
  EXPECT_EQ(supervisor.Run(config.rounds), SupervisedOutcome::kCompleted);

  const ExperimentResult actual = engine.Snapshot();
  const ExperimentResult expected = golden.Snapshot();
  EXPECT_EQ(expected.global_accuracy, actual.global_accuracy);
  EXPECT_EQ(expected.accuracy_history, actual.accuracy_history);
  EXPECT_EQ(expected.wall_clock_hours, actual.wall_clock_hours);
  EXPECT_EQ(actual.recovery_restarts, 1u);
  WipeRing(supervisor.ring());
}

TEST(RunSupervisorTest, CorruptNewestArchiveFallsBackToOlderOne) {
  const ExperimentConfig config = SmallSyncConfig();
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = FreshRingDir("recover_fallback");
  recovery.checkpoint_every = 2;
  recovery.ring_depth = 3;

  {
    RandomSelector sel(config.seed);
    SyncEngine engine(config, &sel, nullptr);
    RunSupervisor<SyncEngine> supervisor(recovery, engine);
    EXPECT_EQ(supervisor.RecoverAndRun(6), SupervisedOutcome::kCompleted);
  }

  // Flip a byte in the middle of the newest archive (round 6): its payload
  // hash no longer verifies, so recovery must fall back to round 4.
  CheckpointRing ring(recovery.dir, recovery.ring_depth);
  const std::string newest = ring.PathFor(6);
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    char byte = 0;
    f.seekg(64);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(64);
    f.write(&byte, 1);
  }

  RandomSelector sel(config.seed);
  SyncEngine engine(config, &sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(recovery, engine);
  EXPECT_EQ(supervisor.Recover(), 4u);
  EXPECT_TRUE(supervisor.report().recovered);
  EXPECT_EQ(supervisor.report().archives_skipped, 1u);
  // Rounds 5 and 6 were provably reached (the round-6 stamp) but their work
  // was lost with the corrupt archive: two rounds to replay.
  EXPECT_EQ(supervisor.report().rounds_replayed, 2u);
  EXPECT_EQ(engine.recovery_tracker().ArchivesSkipped(), 1u);
  WipeRing(supervisor.ring());
}

TEST(RunSupervisorTest, AllArchivesCorruptMeansFreshStart) {
  const ExperimentConfig config = SmallSyncConfig();
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = FreshRingDir("recover_all_corrupt");
  recovery.checkpoint_every = 4;
  recovery.ring_depth = 3;

  {
    RandomSelector sel(config.seed);
    SyncEngine engine(config, &sel, nullptr);
    RunSupervisor<SyncEngine> supervisor(recovery, engine);
    EXPECT_EQ(supervisor.RecoverAndRun(8), SupervisedOutcome::kCompleted);
  }

  CheckpointRing ring(recovery.dir, recovery.ring_depth);
  for (size_t round : ring.Rounds()) {
    std::ofstream out(ring.PathFor(round), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }

  RandomSelector sel(config.seed);
  SyncEngine engine(config, &sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(recovery, engine);
  EXPECT_EQ(supervisor.Recover(), 0u);
  EXPECT_FALSE(supervisor.report().recovered);
  EXPECT_EQ(supervisor.report().archives_skipped, 2u);
  // A fresh start still finishes the run correctly from round 0.
  EXPECT_EQ(supervisor.Run(8), SupervisedOutcome::kCompleted);
  EXPECT_EQ(engine.RoundsRun(), 8u);
  WipeRing(supervisor.ring());
}

// --- Disk faults are survived, counted, and do not perturb training.

TEST(RunSupervisorTest, DiskFaultIsCountedAndSurvived) {
  const ExperimentConfig config = SmallSyncConfig();
  RandomSelector golden_sel(config.seed);
  SyncEngine golden(config, &golden_sel, nullptr);
  const ExperimentResult expected = golden.Run();

  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.dir = FreshRingDir("disk_fault");
  recovery.checkpoint_every = 3;
  recovery.ring_depth = 2;

  CrashPlanConfig plan_config;
  plan_config.directed = true;
  plan_config.trigger_kill = false;  // fault-only: no kill anywhere
  plan_config.trigger_round = 3;     // the first save attempt
  plan_config.trigger_disk_fault = DiskFault::kShortWrite;
  CrashPlan plan(plan_config);

  RandomSelector sel(config.seed);
  SyncEngine engine(config, &sel, nullptr);
  RunSupervisor<SyncEngine> supervisor(recovery, engine);
  supervisor.SetCrashPlan(&plan);
  EXPECT_EQ(supervisor.RecoverAndRun(config.rounds), SupervisedOutcome::kCompleted);

  EXPECT_EQ(supervisor.report().checkpoints_failed, 1u);
  EXPECT_EQ(supervisor.report().checkpoints_written, 3u);  // rounds 6, 9, 10
  const ExperimentResult actual = engine.Snapshot();
  EXPECT_EQ(expected.global_accuracy, actual.global_accuracy);
  EXPECT_EQ(expected.accuracy_history, actual.accuracy_history);
  EXPECT_EQ(actual.recovery_checkpoints_failed, 1u);
  WipeRing(supervisor.ring());
}

// --- Thread-count invariance: supervised archives and results are
// bit-identical across num_threads, like everything else in the house.

TEST(RunSupervisorTest, SupervisedRunIsThreadCountInvariant) {
  std::string reference_state;
  std::string reference_archive;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ExperimentConfig config = SmallSyncConfig();
    config.num_threads = threads;
    RecoveryConfig recovery;
    recovery.enabled = true;
    recovery.dir = FreshRingDir("threads_" + std::to_string(threads));
    recovery.checkpoint_every = 5;
    recovery.ring_depth = 2;
    RandomSelector sel(config.seed);
    SyncEngine engine(config, &sel, nullptr);
    RunSupervisor<SyncEngine> supervisor(recovery, engine);
    EXPECT_EQ(supervisor.RecoverAndRun(config.rounds), SupervisedOutcome::kCompleted);
    const std::string state = SerializedState(engine);
    std::ifstream in(supervisor.ring().PathFor(config.rounds), std::ios::binary);
    const std::string archive{std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>()};
    ASSERT_FALSE(archive.empty());
    if (reference_state.empty()) {
      reference_state = state;
      reference_archive = archive;
    } else {
      EXPECT_EQ(state, reference_state) << "num_threads=" << threads;
      EXPECT_EQ(archive, reference_archive) << "num_threads=" << threads;
    }
    WipeRing(supervisor.ring());
  }
}

// --- Config validation: an enabled config with invalid knobs aborts.

TEST(RunSupervisorDeathTest, EnabledConfigRequiresDirCadenceAndDepth) {
  RecoveryConfig no_dir;
  no_dir.enabled = true;
  no_dir.checkpoint_every = 2;
  no_dir.ring_depth = 2;
  EXPECT_DEATH(ValidateRecoveryConfig(no_dir), "dir");

  RecoveryConfig no_cadence;
  no_cadence.enabled = true;
  no_cadence.dir = "/tmp/x";
  no_cadence.checkpoint_every = 0;
  EXPECT_DEATH(ValidateRecoveryConfig(no_cadence), "checkpoint_every");

  RecoveryConfig no_depth;
  no_depth.enabled = true;
  no_depth.dir = "/tmp/x";
  no_depth.ring_depth = 0;
  EXPECT_DEATH(ValidateRecoveryConfig(no_depth), "ring_depth");
}

}  // namespace
}  // namespace floatfl
