#include "src/models/model_zoo.h"

#include <gtest/gtest.h>

namespace floatfl {
namespace {

TEST(ModelZooTest, AllModelsLookUp) {
  for (ModelId id : {ModelId::kResNet18, ModelId::kResNet34, ModelId::kResNet50,
                     ModelId::kShuffleNetV2, ModelId::kSpeechCnn}) {
    const ModelProfile& p = GetModelProfile(id);
    EXPECT_EQ(p.id, id);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.param_count, 0u);
    EXPECT_GT(p.train_gflops_per_sample, 0.0);
    EXPECT_GT(p.weight_mb, 0.0);
    EXPECT_GT(p.activation_mb_per_sample, 0.0);
  }
}

TEST(ModelZooTest, WeightBytesConsistentWithParamCount) {
  // fp32 weights: weight_mb ~ params * 4 / 2^20 (within 10 %).
  for (ModelId id : {ModelId::kResNet18, ModelId::kResNet34, ModelId::kResNet50,
                     ModelId::kShuffleNetV2}) {
    const ModelProfile& p = GetModelProfile(id);
    const double expected_mb = static_cast<double>(p.param_count) * 4.0 / (1024.0 * 1024.0);
    EXPECT_NEAR(p.weight_mb, expected_mb, expected_mb * 0.10) << p.name;
  }
}

TEST(ModelZooTest, RelativeOrderings) {
  const ModelProfile& r18 = GetModelProfile(ModelId::kResNet18);
  const ModelProfile& r34 = GetModelProfile(ModelId::kResNet34);
  const ModelProfile& r50 = GetModelProfile(ModelId::kResNet50);
  const ModelProfile& shuffle = GetModelProfile(ModelId::kShuffleNetV2);
  EXPECT_LT(r18.param_count, r34.param_count);
  EXPECT_LT(r34.param_count, r50.param_count);
  EXPECT_LT(r18.train_gflops_per_sample, r34.train_gflops_per_sample);
  EXPECT_LT(shuffle.train_gflops_per_sample, r18.train_gflops_per_sample);
  EXPECT_LT(shuffle.weight_mb, r18.weight_mb);
}

}  // namespace
}  // namespace floatfl
