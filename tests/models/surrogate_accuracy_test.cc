#include "src/models/surrogate_accuracy.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/dirichlet.h"

namespace floatfl {
namespace {

std::vector<ClientShard> MakeShards(size_t n, double alpha, uint64_t seed) {
  Rng rng(seed);
  PartitionConfig config;
  config.num_clients = n;
  config.num_classes = 10;
  config.alpha = alpha;
  return PartitionDirichlet(config, rng);
}

SurrogateConfig MakeConfig() {
  SurrogateConfig config;
  config.max_accuracy = 0.8;
  config.initial_accuracy = 0.1;
  config.convergence_rate = 0.05;
  config.participation_target = 10.0;
  return config;
}

std::vector<ClientContribution> FullCohort(size_t from, size_t count, double quality = 1.0,
                                           double staleness = 0.0) {
  std::vector<ClientContribution> cohort;
  for (size_t i = 0; i < count; ++i) {
    cohort.push_back({from + i, quality, staleness});
  }
  return cohort;
}

TEST(SurrogateTest, StartsAtInitialAccuracy) {
  const auto shards = MakeShards(20, 1.0, 1);
  SurrogateAccuracyModel model(MakeConfig(), shards);
  EXPECT_DOUBLE_EQ(model.GlobalAccuracy(), 0.1);
  EXPECT_EQ(model.DataCoverage(), 0.0);
}

TEST(SurrogateTest, ImprovesWithSuccessfulRounds) {
  const auto shards = MakeShards(20, 1.0, 2);
  SurrogateAccuracyModel model(MakeConfig(), shards);
  for (int round = 0; round < 100; ++round) {
    model.RoundUpdate(FullCohort(0, 10));
  }
  EXPECT_GT(model.GlobalAccuracy(), 0.5);
  EXPECT_LE(model.GlobalAccuracy(), 0.8);
}

TEST(SurrogateTest, EmptyRoundMakesNoProgress) {
  const auto shards = MakeShards(20, 1.0, 3);
  SurrogateAccuracyModel model(MakeConfig(), shards);
  const double before = model.GlobalAccuracy();
  model.RoundUpdate({});
  EXPECT_DOUBLE_EQ(model.GlobalAccuracy(), before);
}

TEST(SurrogateTest, MoreParticipantsConvergeFaster) {
  const auto shards = MakeShards(40, 1.0, 4);
  SurrogateAccuracyModel few(MakeConfig(), shards);
  SurrogateAccuracyModel many(MakeConfig(), shards);
  for (int round = 0; round < 60; ++round) {
    few.RoundUpdate(FullCohort(static_cast<size_t>(round) % 38, 2));
    many.RoundUpdate(FullCohort(static_cast<size_t>(round) % 30, 10));
  }
  EXPECT_GT(many.GlobalAccuracy(), few.GlobalAccuracy());
}

TEST(SurrogateTest, StalenessSlowsProgress) {
  const auto shards = MakeShards(20, 1.0, 5);
  SurrogateAccuracyModel fresh(MakeConfig(), shards);
  SurrogateAccuracyModel stale(MakeConfig(), shards);
  for (int round = 0; round < 40; ++round) {
    fresh.RoundUpdate(FullCohort(0, 10, 1.0, 0.0));
    stale.RoundUpdate(FullCohort(0, 10, 1.0, 8.0));
  }
  EXPECT_GT(fresh.GlobalAccuracy(), stale.GlobalAccuracy());
}

TEST(SurrogateTest, LowQualityUpdatesCapAccuracy) {
  const auto shards = MakeShards(20, 1.0, 6);
  SurrogateAccuracyModel clean(MakeConfig(), shards);
  SurrogateAccuracyModel noisy(MakeConfig(), shards);
  for (int round = 0; round < 300; ++round) {
    clean.RoundUpdate(FullCohort(0, 10, 1.0));
    noisy.RoundUpdate(FullCohort(0, 10, 0.85));
  }
  EXPECT_GT(clean.GlobalAccuracy(), noisy.GlobalAccuracy() + 0.02);
}

TEST(SurrogateTest, NeglectedSkewedClientsHaveWorseAccuracy) {
  // Heavily non-IID shards; only clients 0..9 ever contribute.
  const auto shards = MakeShards(30, 0.05, 7);
  SurrogateAccuracyModel model(MakeConfig(), shards);
  for (int round = 0; round < 100; ++round) {
    model.RoundUpdate(FullCohort(0, 10));
  }
  double contributors = 0.0;
  double neglected = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    contributors += model.ClientAccuracy(i);
  }
  for (size_t i = 10; i < 30; ++i) {
    neglected += model.ClientAccuracy(i);
  }
  EXPECT_GT(contributors / 10.0, neglected / 20.0);
}

TEST(SurrogateTest, CoverageTracksContributingDataMass) {
  const auto shards = MakeShards(10, 1.0, 8);
  SurrogateAccuracyModel model(MakeConfig(), shards);
  model.RoundUpdate(FullCohort(0, 5));
  const double coverage = model.DataCoverage();
  EXPECT_GT(coverage, 0.0);
  EXPECT_LT(coverage, 1.0);
  model.RoundUpdate(FullCohort(5, 5));
  EXPECT_NEAR(model.DataCoverage(), 1.0, 1e-9);
}

TEST(SurrogateTest, AccuracyNeverExceedsMax) {
  const auto shards = MakeShards(20, 10.0, 9);
  SurrogateAccuracyModel model(MakeConfig(), shards);
  for (int round = 0; round < 2000; ++round) {
    model.RoundUpdate(FullCohort(0, 20));
  }
  EXPECT_LE(model.GlobalAccuracy(), 0.8 + 1e-9);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_GE(model.ClientAccuracy(i), 0.0);
    EXPECT_LE(model.ClientAccuracy(i), 0.8 + 1e-9);
  }
}

TEST(SurrogateTest, ConfigForDatasetCopiesCurveParameters) {
  const DatasetSpec& spec = GetDatasetSpec(DatasetId::kCifar10);
  const SurrogateConfig config = SurrogateConfigFor(spec, 30.0);
  EXPECT_DOUBLE_EQ(config.max_accuracy, spec.max_accuracy);
  EXPECT_DOUBLE_EQ(config.initial_accuracy, spec.initial_accuracy);
  EXPECT_DOUBLE_EQ(config.convergence_rate, spec.convergence_rate);
  EXPECT_DOUBLE_EQ(config.participation_target, 30.0);
}

}  // namespace
}  // namespace floatfl
