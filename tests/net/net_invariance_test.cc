// Thread-count invariance of the lossy transport path.
//
// With chunk loss, mid-transfer blackouts and the adaptive deadline all
// active, runs at num_threads in {1, 2, 8} must stay bit-for-bit identical:
// every transport draw is keyed by (seed, round, client, leg, attempt) and
// never by execution order. This is the `net` analogue of
// tests/sim/determinism_test.cc.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/fl/async_engine.h"
#include "src/fl/real_engine.h"
#include "src/fl/sync_engine.h"
#include "src/selection/oort_selector.h"

namespace floatfl {
namespace {

constexpr std::array<size_t, 3> kThreadCounts = {1, 2, 8};

ExperimentConfig LossyConfig(size_t num_threads) {
  ExperimentConfig config;
  config.num_clients = 30;
  config.clients_per_round = 8;
  config.rounds = 12;
  config.dataset = DatasetId::kFemnist;
  config.model = ModelId::kShuffleNetV2;
  config.interference = InterferenceScenario::kDynamic;
  config.seed = 555;
  config.async_concurrency = 20;
  config.async_buffer = 6;
  config.num_threads = num_threads;
  config.faults.chunk_loss_prob = 0.08;
  config.faults.link_blackout_prob = 0.05;
  config.faults.max_transfer_retries = 3;
  config.adaptive_deadline.enabled = true;
  return config;
}

void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.accuracy_history.size(), b.accuracy_history.size());
  for (size_t i = 0; i < a.accuracy_history.size(); ++i) {
    EXPECT_EQ(a.accuracy_history[i], b.accuracy_history[i]) << "round " << i;
  }
  EXPECT_EQ(a.accuracy_avg, b.accuracy_avg);
  EXPECT_EQ(a.global_accuracy, b.global_accuracy);
  EXPECT_EQ(a.total_selected, b.total_selected);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.total_dropouts, b.total_dropouts);
  EXPECT_EQ(a.dropout_breakdown.missed_deadline, b.dropout_breakdown.missed_deadline);
  EXPECT_EQ(a.dropout_breakdown.transfer_timed_out, b.dropout_breakdown.transfer_timed_out);
  EXPECT_EQ(a.useful.compute_hours, b.useful.compute_hours);
  EXPECT_EQ(a.useful.comm_hours, b.useful.comm_hours);
  EXPECT_EQ(a.wasted.comm_hours, b.wasted.comm_hours);
  EXPECT_EQ(a.wall_clock_hours, b.wall_clock_hours);
  EXPECT_EQ(a.per_client_selected, b.per_client_selected);
  EXPECT_EQ(a.per_client_completed, b.per_client_completed);
  // The transport accounting itself must be order-invariant too.
  EXPECT_EQ(a.transfer_attempts, b.transfer_attempts);
  EXPECT_EQ(a.retransmitted_mb, b.retransmitted_mb);
  EXPECT_EQ(a.salvaged_mb, b.salvaged_mb);
  EXPECT_EQ(a.transfer_backoff_s, b.transfer_backoff_s);
}

TEST(NetInvarianceTest, SyncEngineLossyTransportIsThreadCountInvariant) {
  auto run = [](size_t num_threads) {
    const ExperimentConfig config = LossyConfig(num_threads);
    OortSelector selector(config.seed, config.num_clients);
    SyncEngine engine(config, &selector, nullptr);
    return engine.Run();
  };
  const ExperimentResult baseline = run(kThreadCounts[0]);
  // The lossy path must actually be exercised, not vacuously equal.
  EXPECT_GT(baseline.transfer_attempts, 0u);
  EXPECT_GT(baseline.retransmitted_mb, 0.0);
  for (size_t t = 1; t < kThreadCounts.size(); ++t) {
    SCOPED_TRACE("num_threads=" + std::to_string(kThreadCounts[t]));
    ExpectSameResult(baseline, run(kThreadCounts[t]));
  }
}

TEST(NetInvarianceTest, AsyncEngineLossyTransportIsThreadCountInvariant) {
  auto run = [](size_t num_threads) {
    ExperimentConfig config = LossyConfig(num_threads);
    AsyncEngine engine(config, nullptr);
    return engine.Run();
  };
  const ExperimentResult baseline = run(kThreadCounts[0]);
  EXPECT_GT(baseline.transfer_attempts, 0u);
  for (size_t t = 1; t < kThreadCounts.size(); ++t) {
    SCOPED_TRACE("num_threads=" + std::to_string(kThreadCounts[t]));
    ExpectSameResult(baseline, run(kThreadCounts[t]));
  }
}

TEST(NetInvarianceTest, RealEngineLossyTransportIsThreadCountInvariant) {
  auto run = [](size_t num_threads) {
    RealFlConfig config;
    config.num_clients = 10;
    config.clients_per_round = 5;
    config.num_classes = 3;
    config.input_dim = 8;
    config.hidden_dims = {12};
    config.test_samples_per_class = 10;
    config.seed = 11;
    config.num_threads = num_threads;
    config.faults.chunk_loss_prob = 0.15;
    config.faults.link_blackout_prob = 0.1;
    config.faults.transport_chunk_mb = 0.01;  // real uploads are ~KB-sized
    RealFlEngine engine(config);
    RealRoundStats last;
    for (size_t r = 0; r < 6; ++r) {
      last = engine.RunRound(TechniqueKind::kQuant8);
    }
    return std::make_pair(last, engine.global_model().GetParameters());
  };
  const auto baseline = run(kThreadCounts[0]);
  for (size_t t = 1; t < kThreadCounts.size(); ++t) {
    SCOPED_TRACE("num_threads=" + std::to_string(kThreadCounts[t]));
    const auto other = run(kThreadCounts[t]);
    EXPECT_EQ(baseline.first.test_accuracy, other.first.test_accuracy);
    EXPECT_EQ(baseline.first.participants, other.first.participants);
    EXPECT_EQ(baseline.first.transfer_timeouts, other.first.transfer_timeouts);
    EXPECT_EQ(baseline.first.retransmitted_mb, other.first.retransmitted_mb);
    EXPECT_EQ(baseline.first.salvaged_mb, other.first.salvaged_mb);
    EXPECT_EQ(baseline.second, other.second);
  }
}

}  // namespace
}  // namespace floatfl
