// Golden kill-and-resume under lossy transport (checkpoint format v3).
//
// With chunk loss, link blackouts and (for sync) the adaptive deadline all
// active, run 50 rounds, checkpoint, restore into freshly constructed
// objects, run 50 more — and the result must be bit-for-bit identical to an
// uninterrupted 100-round run. Covers all four engines; the transport
// tracker, deadline controller and selector net-factor EWMAs are all part of
// the serialized state, so any missed field shows up as a golden mismatch.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "src/failure/checkpointer.h"
#include "src/fl/async_engine.h"
#include "src/fl/real_engine.h"
#include "src/fl/sync_engine.h"
#include "src/fl/vfl_engine.h"
#include "src/selection/oort_selector.h"
#include "src/selection/refl_selector.h"

namespace floatfl {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

ExperimentConfig LossyExperiment() {
  ExperimentConfig config;
  config.num_clients = 40;
  config.clients_per_round = 8;
  config.rounds = 100;
  config.seed = 808;
  config.model = ModelId::kShuffleNetV2;
  config.interference = InterferenceScenario::kDynamic;
  config.async_concurrency = 20;
  config.async_buffer = 6;
  config.faults.chunk_loss_prob = 0.1;
  config.faults.link_blackout_prob = 0.05;
  config.faults.max_transfer_retries = 3;
  config.faults.crash_prob = 0.05;  // transport composes with legacy faults
  return config;
}

void ExpectResultsIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.accuracy_history, b.accuracy_history);
  EXPECT_EQ(a.accuracy_avg, b.accuracy_avg);
  EXPECT_EQ(a.global_accuracy, b.global_accuracy);
  EXPECT_EQ(a.total_selected, b.total_selected);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.total_dropouts, b.total_dropouts);
  EXPECT_EQ(a.dropout_breakdown.missed_deadline, b.dropout_breakdown.missed_deadline);
  EXPECT_EQ(a.dropout_breakdown.crashed, b.dropout_breakdown.crashed);
  EXPECT_EQ(a.dropout_breakdown.transfer_timed_out, b.dropout_breakdown.transfer_timed_out);
  EXPECT_EQ(a.useful.compute_hours, b.useful.compute_hours);
  EXPECT_EQ(a.useful.comm_hours, b.useful.comm_hours);
  EXPECT_EQ(a.wasted.comm_hours, b.wasted.comm_hours);
  EXPECT_EQ(a.wall_clock_hours, b.wall_clock_hours);
  EXPECT_EQ(a.per_client_selected, b.per_client_selected);
  EXPECT_EQ(a.per_client_completed, b.per_client_completed);
  EXPECT_EQ(a.transfer_attempts, b.transfer_attempts);
  EXPECT_EQ(a.retransmitted_mb, b.retransmitted_mb);
  EXPECT_EQ(a.salvaged_mb, b.salvaged_mb);
  EXPECT_EQ(a.transfer_backoff_s, b.transfer_backoff_s);
}

TEST(NetResumeTest, SyncEngineLossyGoldenResume) {
  // Oort + adaptive deadline: the checkpoint must carry the selector's
  // net-factor EWMAs, the deadline controller and the transport tracker.
  ExperimentConfig config = LossyExperiment();
  config.adaptive_deadline.enabled = true;
  const std::string path = TempPath("net_sync_resume.ckpt");

  OortSelector full_sel(config.seed, config.num_clients);
  SyncEngine full(config, &full_sel, nullptr);
  const ExperimentResult expected = full.Run();
  EXPECT_GT(expected.transfer_attempts, 0u);
  EXPECT_GT(expected.dropout_breakdown.transfer_timed_out +
                expected.dropout_breakdown.missed_deadline,
            0u);

  OortSelector half_sel(config.seed, config.num_clients);
  SyncEngine half(config, &half_sel, nullptr);
  for (size_t round = 0; round < config.rounds / 2; ++round) {
    half.RunRound(round);
  }
  ASSERT_TRUE(Checkpointer::Save(path, half));

  OortSelector resumed_sel(config.seed, config.num_clients);
  SyncEngine resumed(config, &resumed_sel, nullptr);
  ASSERT_TRUE(Checkpointer::Restore(path, resumed));
  EXPECT_EQ(resumed.RoundsRun(), config.rounds / 2);
  ExpectResultsIdentical(expected, resumed.Run());
  std::remove(path.c_str());
}

TEST(NetResumeTest, SyncEngineReflLossyGoldenResume) {
  // REFL's effective-bandwidth eligibility is stateful too.
  ExperimentConfig config = LossyExperiment();
  config.rounds = 60;
  const std::string path = TempPath("net_sync_refl_resume.ckpt");

  ReflSelector full_sel(config.seed, config.num_clients);
  SyncEngine full(config, &full_sel, nullptr);
  const ExperimentResult expected = full.Run();

  ReflSelector half_sel(config.seed, config.num_clients);
  SyncEngine half(config, &half_sel, nullptr);
  for (size_t round = 0; round < config.rounds / 2; ++round) {
    half.RunRound(round);
  }
  ASSERT_TRUE(Checkpointer::Save(path, half));

  ReflSelector resumed_sel(config.seed, config.num_clients);
  SyncEngine resumed(config, &resumed_sel, nullptr);
  ASSERT_TRUE(Checkpointer::Restore(path, resumed));
  ExpectResultsIdentical(expected, resumed.Run());
  std::remove(path.c_str());
}

TEST(NetResumeTest, AsyncEngineLossyGoldenResume) {
  ExperimentConfig config = LossyExperiment();
  const std::string path = TempPath("net_async_resume.ckpt");

  AsyncEngine full(config, nullptr);
  const ExperimentResult expected = full.Run();
  EXPECT_GT(expected.transfer_attempts, 0u);

  AsyncEngine half(config, nullptr);
  half.RunUntil(config.rounds / 2);
  ASSERT_TRUE(Checkpointer::Save(path, half));

  AsyncEngine resumed(config, nullptr);
  ASSERT_TRUE(Checkpointer::Restore(path, resumed));
  EXPECT_EQ(resumed.Version(), config.rounds / 2);
  ExpectResultsIdentical(expected, resumed.Run());
  std::remove(path.c_str());
}

TEST(NetResumeTest, RealEngineLossyGoldenResume) {
  RealFlConfig config;
  config.num_clients = 8;
  config.clients_per_round = 4;
  config.num_classes = 3;
  config.input_dim = 8;
  config.hidden_dims = {12};
  config.test_samples_per_class = 10;
  config.seed = 19;
  config.num_threads = 1;
  config.faults.chunk_loss_prob = 0.2;
  config.faults.link_blackout_prob = 0.1;
  config.faults.transport_chunk_mb = 0.01;
  const std::string path = TempPath("net_real_resume.ckpt");
  const size_t total_rounds = 6;

  RealFlEngine full(config);
  RealRoundStats expected;
  for (size_t r = 0; r < total_rounds; ++r) {
    expected = full.RunRound(TechniqueKind::kQuant8);
  }

  RealFlEngine half(config);
  for (size_t r = 0; r < total_rounds / 2; ++r) {
    half.RunRound(TechniqueKind::kQuant8);
  }
  ASSERT_TRUE(Checkpointer::Save(path, half));

  RealFlEngine resumed(config);
  ASSERT_TRUE(Checkpointer::Restore(path, resumed));
  RealRoundStats actual;
  for (size_t r = total_rounds / 2; r < total_rounds; ++r) {
    actual = resumed.RunRound(TechniqueKind::kQuant8);
  }

  EXPECT_EQ(full.global_model().GetParameters(), resumed.global_model().GetParameters());
  EXPECT_EQ(expected.test_accuracy, actual.test_accuracy);
  EXPECT_EQ(expected.participants, actual.participants);
  EXPECT_EQ(expected.transfer_timeouts, actual.transfer_timeouts);
  EXPECT_EQ(expected.retransmitted_mb, actual.retransmitted_mb);
  EXPECT_EQ(expected.salvaged_mb, actual.salvaged_mb);
  EXPECT_EQ(full.transport_tracker().TotalAttempts(), resumed.transport_tracker().TotalAttempts());
  std::remove(path.c_str());
}

TEST(NetResumeTest, VflEngineLossyGoldenResume) {
  VflConfig config;
  config.num_parties = 3;
  config.features_per_party = 5;
  config.embedding_dim = 6;
  config.num_classes = 4;
  config.train_samples = 120;
  config.test_samples = 80;
  config.seed = 37;
  config.faults.chunk_loss_prob = 0.2;
  config.faults.link_blackout_prob = 0.1;
  config.faults.transport_chunk_mb = 0.05;
  const std::string path = TempPath("net_vfl_resume.ckpt");
  const size_t total_epochs = 8;

  VflEngine full(config);
  VflRoundStats expected;
  for (size_t e = 0; e < total_epochs; ++e) {
    expected = full.TrainEpoch(TechniqueKind::kQuant8);
  }

  VflEngine half(config);
  for (size_t e = 0; e < total_epochs / 2; ++e) {
    half.TrainEpoch(TechniqueKind::kQuant8);
  }
  ASSERT_TRUE(Checkpointer::Save(path, half));

  VflEngine resumed(config);
  ASSERT_TRUE(Checkpointer::Restore(path, resumed));
  VflRoundStats actual;
  for (size_t e = total_epochs / 2; e < total_epochs; ++e) {
    actual = resumed.TrainEpoch(TechniqueKind::kQuant8);
  }

  EXPECT_EQ(expected.train_loss, actual.train_loss);
  EXPECT_EQ(expected.test_accuracy, actual.test_accuracy);
  EXPECT_EQ(expected.parties_timed_out, actual.parties_timed_out);
  EXPECT_EQ(expected.retransmitted_mb, actual.retransmitted_mb);
  EXPECT_EQ(expected.salvaged_mb, actual.salvaged_mb);
  CheckpointWriter full_state;
  full.SaveState(full_state);
  CheckpointWriter resumed_state;
  resumed.SaveState(resumed_state);
  EXPECT_EQ(full_state.buffer(), resumed_state.buffer());
  std::remove(path.c_str());
}

TEST(NetResumeTest, OldVersionCheckpointRefused) {
  // A v2 header (or any foreign version) must be rejected up front: the v3
  // payload layout grew transport state an old reader cannot place.
  ExperimentConfig config = LossyExperiment();
  config.rounds = 4;
  const std::string path = TempPath("net_version_refused.ckpt");

  OortSelector selector(config.seed, config.num_clients);
  SyncEngine engine(config, &selector, nullptr);
  engine.RunRound(0);
  ASSERT_TRUE(Checkpointer::Save(path, engine));

  // Corrupt the version field (bytes 4..7 of the little-endian header).
  std::string bytes;
  {
    CheckpointReader r("");
    ASSERT_TRUE(CheckpointReader::FromFile(path, &r));
  }
  std::ifstream in(path, std::ios::binary);
  bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GE(bytes.size(), 8u);
  bytes[4] = 2;  // pretend this is a v2 checkpoint
  bytes[5] = bytes[6] = bytes[7] = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  OortSelector fresh_sel(config.seed, config.num_clients);
  SyncEngine fresh(config, &fresh_sel, nullptr);
  EXPECT_FALSE(Checkpointer::Restore(path, fresh));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace floatfl
