// Empty-state save/restore (DESIGN.md §10): a TransportTracker with zero
// recorded transfers and an AdaptiveDeadlineController with zero observed
// rounds must round-trip through SaveState/LoadState bit-exactly — the
// degenerate "checkpoint taken before anything happened" case every
// freshly-constructed engine hits.
#include <gtest/gtest.h>

#include "src/failure/checkpoint_io.h"
#include "src/metrics/transport_tracker.h"
#include "src/net/adaptive_deadline.h"

namespace floatfl {
namespace {

TEST(EmptyStateTest, TransportTrackerZeroTransfersRoundTrips) {
  const TransportTracker fresh;
  CheckpointWriter w;
  fresh.SaveState(w);

  TransportTracker restored;
  restored.Record(3, 12.0, 4.0, 1.0, 0.5, 2.5, true);  // dirty, then overwritten
  CheckpointReader r(w.buffer());
  restored.LoadState(r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.AtEnd());

  EXPECT_EQ(restored.TotalTransfers(), 0u);
  EXPECT_EQ(restored.TotalAttempts(), 0u);
  EXPECT_EQ(restored.TotalTimeouts(), 0u);
  EXPECT_EQ(restored.TotalWireMb(), 0.0);
  EXPECT_EQ(restored.TotalRetransmittedMb(), 0.0);
  EXPECT_EQ(restored.TotalSalvagedMb(), 0.0);
  EXPECT_EQ(restored.TotalBackoffS(), 0.0);

  // Re-serialization is byte-identical: nothing drifted through the trip.
  CheckpointWriter w2;
  restored.SaveState(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(EmptyStateTest, AdaptiveDeadlineControllerZeroRoundsRoundTrips) {
  AdaptiveDeadlineConfig config;
  config.enabled = true;
  const AdaptiveDeadlineController fresh(config, 16, 30.0);
  CheckpointWriter w;
  fresh.SaveState(w);

  AdaptiveDeadlineController restored(config, 16, 30.0);
  restored.Observe(4, 12.0, 80.0);  // dirty, then overwritten
  CheckpointReader r(w.buffer());
  restored.LoadState(r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.AtEnd());

  // With no observed client the proposal is still the base deadline, and no
  // client has a throughput estimate.
  EXPECT_EQ(restored.CurrentDeadline(), 30.0);
  EXPECT_EQ(restored.CurrentDeadline(), fresh.CurrentDeadline());
  for (size_t c = 0; c < 16; ++c) {
    EXPECT_EQ(restored.ThroughputEstimate(c), 0.0);
  }

  CheckpointWriter w2;
  restored.SaveState(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(EmptyStateTest, DefaultConstructedControllerRoundTrips) {
  // The disabled default (what a star-topology engine embeds for the edge
  // tier) must survive the trip too: empty vectors, zero base deadline.
  const AdaptiveDeadlineController fresh;
  CheckpointWriter w;
  fresh.SaveState(w);

  AdaptiveDeadlineController restored;
  CheckpointReader r(w.buffer());
  restored.LoadState(r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_FALSE(restored.enabled());

  CheckpointWriter w2;
  restored.SaveState(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

}  // namespace
}  // namespace floatfl
