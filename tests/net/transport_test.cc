// Unit tests of the deterministic lossy transport (DESIGN.md §10).
//
// The two load-bearing contracts: (1) with every knob zeroed a transfer over
// a constant-bandwidth link reproduces the cost model's closed-form comm
// time bit-for-bit; (2) every outcome is a pure function of
// (seed, round, client, leg, attempt) — independent of call order, other
// transfers, and thread count.
#include "src/net/transport.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/fl/cost_model.h"
#include "src/fl/experiment.h"

namespace floatfl {
namespace {

FaultConfig TransportOnly() {
  FaultConfig faults;
  faults.transport = true;  // force-enable with all loss knobs zeroed
  return faults;
}

FaultConfig LossyConfig(double chunk_loss, double blackout = 0.0) {
  FaultConfig faults;
  faults.chunk_loss_prob = chunk_loss;
  faults.link_blackout_prob = blackout;
  return faults;
}

TransferOptions Opts(double payload_mb, double budget_s, TransferLeg leg = TransferLeg::kUpload) {
  TransferOptions opts;
  opts.payload_mb = payload_mb;
  opts.budget_s = budget_s;
  opts.leg = leg;
  return opts;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TransportTest, DisabledByDefault) {
  EXPECT_FALSE(Transport().enabled());
  EXPECT_FALSE(Transport(FaultConfig{}, 1).enabled());
  EXPECT_TRUE(Transport(TransportOnly(), 1).enabled());
  EXPECT_TRUE(Transport(LossyConfig(0.05), 1).enabled());
  EXPECT_TRUE(Transport(LossyConfig(0.0, 0.05), 1).enabled());
}

TEST(TransportTest, ZeroConfigMatchesCostModelExactly) {
  // Acceptance: a zero-config Transfer over a constant-bandwidth trace must
  // reproduce ComputeRoundCosts' comm time bit-for-bit (EXPECT_EQ on the
  // doubles, not approximate), for the full round traffic in one transfer.
  const Transport transport(TransportOnly(), 99);
  const ModelProfile& model = GetModelProfile(ModelId::kResNet34);

  RoundCostInputs in;
  in.model = &model;
  in.dataset = &GetDatasetSpec(DatasetId::kFemnist);
  in.local_samples = 100;
  in.epochs = 5;
  in.batch_size = 20;
  in.technique = TechniqueKind::kQuant8;
  in.device_gflops = 20.0;
  in.bandwidth_mbps = 17.3;
  in.device_memory_gb = 8.0;
  in.availability.network = 0.6;
  const RoundCosts costs = ComputeRoundCosts(in);

  NetworkTrace trace = NetworkTrace::Constant(17.3);
  TransferOptions opts = Opts(costs.traffic_mb, kInf);
  opts.availability = 0.6;
  const TransferResult result = transport.Transfer(3, 7, trace, opts);

  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.wire_time_s, costs.comm_time_s);
  EXPECT_EQ(result.elapsed_s, costs.comm_time_s);
  EXPECT_EQ(result.wire_mb, costs.traffic_mb);
  EXPECT_EQ(result.retransmitted_mb, 0.0);
  EXPECT_EQ(result.salvaged_mb, 0.0);
  EXPECT_EQ(result.backoff_s, 0.0);
  EXPECT_FALSE(result.timed_out);
}

TEST(TransportTest, AvailabilityFloorMatchesCostModel) {
  // Zero network availability clamps to the same 0.02 floor as the cost
  // model instead of dividing by zero.
  const Transport transport(TransportOnly(), 5);
  NetworkTrace trace = NetworkTrace::Constant(10.0);
  TransferOptions opts = Opts(4.0, kInf);
  opts.availability = 0.0;
  const TransferResult result = transport.Transfer(0, 0, trace, opts);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.wire_time_s, 4.0 * 8.0 / (10.0 * 0.02));
}

TEST(TransportTest, EmptyPayloadDeliversInstantly) {
  const Transport transport(LossyConfig(0.5), 1);
  NetworkTrace trace = NetworkTrace::Constant(1.0);
  const TransferResult result = transport.Transfer(0, 0, trace, Opts(0.0, kInf));
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.elapsed_s, 0.0);
  EXPECT_EQ(result.wire_mb, 0.0);
}

TEST(TransportTest, TransferIsDeterministicAndOrderIndependent) {
  // Same coordinates => identical result, no matter what other transfers the
  // Transport has served in between (it is const and never advances state).
  const Transport a(LossyConfig(0.2, 0.1), 42);
  const Transport b(LossyConfig(0.2, 0.1), 42);
  NetworkTrace trace_a = NetworkTrace::Constant(8.0);
  const TransferResult first = a.Transfer(5, 11, trace_a, Opts(20.0, 400.0));
  // Interleave unrelated transfers on `b` before the matching call.
  for (size_t r = 0; r < 4; ++r) {
    NetworkTrace scratch = NetworkTrace::Constant(8.0);
    b.Transfer(r, r + 1, scratch, Opts(6.0, 100.0));
  }
  NetworkTrace trace_b = NetworkTrace::Constant(8.0);
  const TransferResult second = b.Transfer(5, 11, trace_b, Opts(20.0, 400.0));
  EXPECT_EQ(first.elapsed_s, second.elapsed_s);
  EXPECT_EQ(first.wire_time_s, second.wire_time_s);
  EXPECT_EQ(first.wire_mb, second.wire_mb);
  EXPECT_EQ(first.retransmitted_mb, second.retransmitted_mb);
  EXPECT_EQ(first.salvaged_mb, second.salvaged_mb);
  EXPECT_EQ(first.backoff_s, second.backoff_s);
  EXPECT_EQ(first.attempts, second.attempts);
  EXPECT_EQ(first.delivered, second.delivered);
}

TEST(TransportTest, LegsDrawIndependentStreams) {
  // The download and upload of one (round, client) must not share a stream:
  // over many rounds their loss patterns diverge.
  const Transport transport(LossyConfig(0.3), 7);
  NetworkTrace trace = NetworkTrace::Constant(50.0);
  bool differ = false;
  for (size_t round = 0; round < 20 && !differ; ++round) {
    const TransferResult down =
        transport.Transfer(round, 1, trace, Opts(10.0, kInf, TransferLeg::kDownload));
    const TransferResult up =
        transport.Transfer(round, 1, trace, Opts(10.0, kInf, TransferLeg::kUpload));
    differ = down.wire_mb != up.wire_mb || down.attempts != up.attempts;
  }
  EXPECT_TRUE(differ);
}

TEST(TransportTest, SharedTraceIsNeverPerturbed) {
  // Transfer integrates over a private copy: the caller's trace must answer
  // the same queries afterwards as an untouched twin.
  const Transport transport(LossyConfig(0.2), 3);
  NetworkTrace shared(NetworkKind::kFourG, 21);
  NetworkTrace twin(NetworkKind::kFourG, 21);
  TransferOptions opts = Opts(25.0, 500.0);
  opts.start_s = 100.0;
  transport.Transfer(0, 0, shared, opts);
  for (double t = 100.0; t < 2000.0; t += 50.0) {
    EXPECT_EQ(shared.BandwidthMbpsAt(t), twin.BandwidthMbpsAt(t));
  }
}

TEST(TransportTest, LossCausesRetransmissionsButEventualDelivery) {
  const Transport transport(LossyConfig(0.3), 13);
  NetworkTrace trace = NetworkTrace::Constant(40.0);
  size_t delivered = 0;
  bool saw_retransmission = false;
  for (size_t round = 0; round < 30; ++round) {
    const TransferResult result = transport.Transfer(round, 2, trace, Opts(30.0, kInf));
    if (result.delivered) {
      ++delivered;
    }
    if (result.retransmitted_mb > 0.0) {
      saw_retransmission = true;
      EXPECT_GT(result.wire_mb, 30.0);
      EXPECT_GT(result.attempts, 1u);
      EXPECT_GT(result.backoff_s, 0.0);
    }
  }
  // 30 % loss with 4 retries: essentially everything lands eventually.
  EXPECT_GT(delivered, 25u);
  EXPECT_TRUE(saw_retransmission);
}

TEST(TransportTest, ResumableSalvagesAckedChunks) {
  // On the identical coordinates, the resumable transfer salvages its acked
  // prefix while the restart-from-scratch one re-wires it: strictly fewer
  // retransmitted MB, and the salvage accounting is exact
  // (wire == payload + retransmitted - nothing, salvage tracked separately).
  const Transport transport(LossyConfig(0.25, 0.2), 17);
  NetworkTrace trace = NetworkTrace::Constant(25.0);
  double resumable_retx = 0.0;
  double restart_retx = 0.0;
  double salvaged = 0.0;
  for (size_t round = 0; round < 40; ++round) {
    TransferOptions opts = Opts(20.0, kInf);
    opts.resumable = true;
    const TransferResult res = transport.Transfer(round, 9, trace, opts);
    opts.resumable = false;
    const TransferResult restart = transport.Transfer(round, 9, trace, opts);
    resumable_retx += res.retransmitted_mb;
    restart_retx += restart.retransmitted_mb;
    salvaged += res.salvaged_mb;
    EXPECT_EQ(restart.salvaged_mb, 0.0);
  }
  EXPECT_GT(salvaged, 0.0);
  EXPECT_LT(resumable_retx, restart_retx);
}

TEST(TransportTest, BudgetExhaustionTimesOut) {
  // A 100 MB payload over a 1 Mbps link needs 800 s of wire time; a 10 s
  // budget must fail without charging more than the budget.
  const Transport transport(TransportOnly(), 1);
  NetworkTrace trace = NetworkTrace::Constant(1.0);
  const TransferResult result = transport.Transfer(0, 0, trace, Opts(100.0, 10.0));
  EXPECT_FALSE(result.delivered);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.elapsed_s, 10.0);
  EXPECT_LE(result.wire_time_s, 10.0);
  EXPECT_LT(result.wire_mb, 100.0);
}

TEST(TransportTest, RetryExhaustionTimesOut) {
  // Certain blackout at the very start of every attempt: nothing ever lands
  // and the transfer gives up after max_transfer_retries + 1 attempts.
  FaultConfig faults = LossyConfig(0.0, 0.999999);
  faults.max_transfer_retries = 2;
  const Transport transport(faults, 23);
  NetworkTrace trace = NetworkTrace::Constant(10.0);
  size_t timed_out = 0;
  for (size_t round = 0; round < 20; ++round) {
    const TransferResult result = transport.Transfer(round, 0, trace, Opts(50.0, kInf));
    if (result.timed_out) {
      ++timed_out;
      EXPECT_FALSE(result.delivered);
      EXPECT_LE(result.attempts, 3u);
    }
  }
  EXPECT_GT(timed_out, 15u);
}

TEST(TransportTest, TryDeliverZeroConfigAlwaysDelivers) {
  const Transport transport(TransportOnly(), 31);
  for (size_t round = 0; round < 10; ++round) {
    const TransferResult result =
        transport.TryDeliver(round, round + 3, 12.5, TransferLeg::kUpload, true);
    EXPECT_TRUE(result.delivered);
    EXPECT_EQ(result.attempts, 1u);
    EXPECT_EQ(result.wire_mb, 12.5);
    EXPECT_EQ(result.retransmitted_mb, 0.0);
  }
}

TEST(TransportTest, TryDeliverIsDeterministic) {
  const Transport a(LossyConfig(0.3, 0.1), 77);
  const Transport b(LossyConfig(0.3, 0.1), 77);
  for (size_t round = 0; round < 10; ++round) {
    const TransferResult ra = a.TryDeliver(round, 4, 15.0, TransferLeg::kUpload, true);
    const TransferResult rb = b.TryDeliver(round, 4, 15.0, TransferLeg::kUpload, true);
    EXPECT_EQ(ra.wire_mb, rb.wire_mb);
    EXPECT_EQ(ra.retransmitted_mb, rb.retransmitted_mb);
    EXPECT_EQ(ra.salvaged_mb, rb.salvaged_mb);
    EXPECT_EQ(ra.attempts, rb.attempts);
    EXPECT_EQ(ra.delivered, rb.delivered);
  }
}

TEST(TransportTest, BackoffGrowsExponentiallyUnderForcedRetries) {
  // With certain chunk loss every attempt fails; the accumulated backoff
  // must follow the capped exponential schedule with jitter in [0.5, 1.5):
  // sum over attempts 1..4 of min(30, 2^(k-1)) * jitter, so total backoff
  // lies in [0.5, 1.5) * (1 + 2 + 4 + 8) for 4 retries.
  FaultConfig faults = LossyConfig(0.999999);
  faults.max_transfer_retries = 4;
  const Transport transport(faults, 3);
  NetworkTrace trace = NetworkTrace::Constant(100.0);
  const TransferResult result = transport.Transfer(0, 0, trace, Opts(2.0, kInf));
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.attempts, 5u);
  EXPECT_GE(result.backoff_s, 0.5 * 15.0);
  EXPECT_LT(result.backoff_s, 1.5 * 15.0);
}

}  // namespace
}  // namespace floatfl
