// Acceptance scenario (ISSUE PR 4): resumable uploads must pay off.
//
// At 10 % chunk loss, flipping faults.resumable_uploads from restart-from-
// scratch to resumable must STRICTLY reduce both (a) the clients lost to the
// deadline — missed_deadline + transfer_timed_out dropouts — and (b) the
// total retransmitted MB. This is the end-to-end justification for the
// salvage logic: fewer wasted bytes AND more clients inside the round.
#include <gtest/gtest.h>

#include "src/fl/sync_engine.h"
#include "src/selection/random_selector.h"

namespace floatfl {
namespace {

ExperimentResult RunLossy(bool resumable_uploads) {
  ExperimentConfig config;
  config.num_clients = 40;
  config.clients_per_round = 10;
  config.rounds = 40;
  config.seed = 4242;
  config.model = ModelId::kResNet34;  // chunky payloads: salvage matters
  config.interference = InterferenceScenario::kDynamic;
  config.faults.chunk_loss_prob = 0.10;
  config.faults.resumable_uploads = resumable_uploads;
  RandomSelector selector(config.seed);
  SyncEngine engine(config, &selector, nullptr);
  return engine.Run();
}

TEST(LossyScenarioTest, ResumableUploadsStrictlyReduceDropoutsAndWaste) {
  const ExperimentResult resumable = RunLossy(true);
  const ExperimentResult restart = RunLossy(false);

  // The scenario must actually bite in both arms.
  EXPECT_GT(restart.transfer_attempts, 0u);
  EXPECT_GT(resumable.transfer_attempts, 0u);
  EXPECT_GT(restart.retransmitted_mb, 0.0);

  const size_t resumable_deadline_losses = resumable.dropout_breakdown.missed_deadline +
                                           resumable.dropout_breakdown.transfer_timed_out;
  const size_t restart_deadline_losses = restart.dropout_breakdown.missed_deadline +
                                         restart.dropout_breakdown.transfer_timed_out;
  EXPECT_LT(resumable_deadline_losses, restart_deadline_losses);
  EXPECT_LT(resumable.retransmitted_mb, restart.retransmitted_mb);
  // And the flip side of fewer dropouts: more completed client-rounds.
  EXPECT_GE(resumable.total_completed, restart.total_completed);
}

}  // namespace
}  // namespace floatfl
