// Unit tests of the server-side adaptive sync deadline (DESIGN.md §10).
#include "src/net/adaptive_deadline.h"

#include <gtest/gtest.h>

#include "src/failure/checkpoint_io.h"
#include "src/fl/client.h"

namespace floatfl {
namespace {

AdaptiveDeadlineConfig Enabled() {
  AdaptiveDeadlineConfig config;
  config.enabled = true;
  return config;
}

TEST(AdaptiveDeadlineTest, DisabledByDefault) {
  EXPECT_FALSE(AdaptiveDeadlineController().enabled());
  EXPECT_FALSE(AdaptiveDeadlineController(AdaptiveDeadlineConfig{}, 10, 100.0).enabled());
  EXPECT_TRUE(AdaptiveDeadlineController(Enabled(), 10, 100.0).enabled());
}

TEST(AdaptiveDeadlineTest, BaseDeadlineUntilFirstObservation) {
  AdaptiveDeadlineController ctrl(Enabled(), 10, 100.0);
  EXPECT_EQ(ctrl.CurrentDeadline(), 100.0);
  ctrl.Observe(3, 50.0, 12.0);
  EXPECT_NE(ctrl.CurrentDeadline(), 100.0);
}

TEST(AdaptiveDeadlineTest, SingleClientHeadroomTimesEstimate) {
  AdaptiveDeadlineController ctrl(Enabled(), 10, 100.0);
  ctrl.Observe(0, 50.0, 10.0);
  // headroom 2.5 x the (single-observation-seeded) estimate, inside bounds.
  EXPECT_EQ(ctrl.CurrentDeadline(), 2.5 * 50.0);
}

TEST(AdaptiveDeadlineTest, EwmaUsesSharedProfileConstants) {
  // The estimates must age at Client::kProfileEwmaRetain/Observe, seeded
  // with the first observation rather than decayed from zero.
  AdaptiveDeadlineController ctrl(Enabled(), 4, 100.0);
  ctrl.Observe(1, 40.0, 8.0);
  ctrl.Observe(1, 80.0, 16.0);
  const double expected_time =
      Client::kProfileEwmaRetain * 40.0 + Client::kProfileEwmaObserve * 80.0;
  const double expected_tput =
      Client::kProfileEwmaRetain * 8.0 + Client::kProfileEwmaObserve * 16.0;
  EXPECT_EQ(ctrl.CurrentDeadline(), 2.5 * expected_time);
  EXPECT_EQ(ctrl.ThroughputEstimate(1), expected_tput);
}

TEST(AdaptiveDeadlineTest, TightensOnFastPopulationButClampsAtMinFactor) {
  AdaptiveDeadlineController ctrl(Enabled(), 8, 100.0);
  for (size_t id = 0; id < 8; ++id) {
    ctrl.Observe(id, 1.0, 50.0);  // everyone finishes in 1 s
  }
  // Proposal 2.5 s would undercut min_factor x base = 50 s.
  EXPECT_EQ(ctrl.CurrentDeadline(), 0.5 * 100.0);
}

TEST(AdaptiveDeadlineTest, RelaxesOnSlowPopulationButClampsAtMaxFactor) {
  AdaptiveDeadlineController ctrl(Enabled(), 8, 100.0);
  for (size_t id = 0; id < 8; ++id) {
    ctrl.Observe(id, 5000.0, 0.1);  // pathological stragglers
  }
  EXPECT_EQ(ctrl.CurrentDeadline(), 3.0 * 100.0);
}

TEST(AdaptiveDeadlineTest, MedianIgnoresUnseenClients) {
  // Two fast clients observed out of 100: the median is over the observed
  // two, not dragged to zero by the 98 silent entries.
  AdaptiveDeadlineController ctrl(Enabled(), 100, 100.0);
  ctrl.Observe(7, 60.0, 5.0);
  ctrl.Observe(93, 60.0, 5.0);
  EXPECT_EQ(ctrl.CurrentDeadline(), 2.5 * 60.0);
}

TEST(AdaptiveDeadlineTest, NonPositiveThroughputSkipsThroughputEwma) {
  // Rounds with no transfer (throughput <= 0) must not decay the link
  // estimate toward zero.
  AdaptiveDeadlineController ctrl(Enabled(), 2, 100.0);
  ctrl.Observe(0, 50.0, 20.0);
  ctrl.Observe(0, 50.0, 0.0);
  ctrl.Observe(0, 50.0, -1.0);
  EXPECT_EQ(ctrl.ThroughputEstimate(0), 20.0);
  EXPECT_EQ(ctrl.ThroughputEstimate(1), 0.0);  // never observed
}

TEST(AdaptiveDeadlineTest, StateRoundTripsByteIdentically) {
  AdaptiveDeadlineController ctrl(Enabled(), 5, 80.0);
  ctrl.Observe(0, 30.0, 12.0);
  ctrl.Observe(2, 90.0, 4.0);
  ctrl.Observe(2, 70.0, 6.0);

  CheckpointWriter w;
  ctrl.SaveState(w);
  AdaptiveDeadlineController restored(Enabled(), 5, 80.0);
  CheckpointReader r(w.buffer());
  restored.LoadState(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(restored.CurrentDeadline(), ctrl.CurrentDeadline());
  for (size_t id = 0; id < 5; ++id) {
    EXPECT_EQ(restored.ThroughputEstimate(id), ctrl.ThroughputEstimate(id));
  }
  CheckpointWriter again;
  restored.SaveState(again);
  EXPECT_EQ(again.buffer(), w.buffer());
}

TEST(AdaptiveDeadlineDeathTest, EnabledNeedsPositiveBaseDeadline) {
  EXPECT_DEATH(AdaptiveDeadlineController(Enabled(), 4, 0.0),
               "positive base deadline");
}

}  // namespace
}  // namespace floatfl
